// Quickstart: the smallest end-to-end Specure campaign.
//
// Configures the MiniBOOM PUT, runs the offline IFT phase (IFG -> PDLC),
// fuzzes for a few hundred iterations with Leakage Path coverage feedback,
// and prints the campaign summary plus any findings.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/specure.hpp"

int main() {
  using namespace specure;

  core::EngineOptions options;
  options.rng_seed = 42;
  options.detector.monitor_cache = true;  // also watch for Spectre residue

  core::SpecureEngine engine(options);
  std::printf("offline phase: %zu signals, %zu flow edges, %zu PDLCs\n",
              engine.offline().ifg.node_count(),
              engine.offline().ifg.edge_count(), engine.offline().pdlc.size());

  const core::CampaignResult result = engine.run(300);

  std::printf("campaign: %zu iterations in %.2fs\n", result.history.size(),
              result.seconds);
  std::printf("  speculative windows: %zu (%zu misspeculated)\n",
              result.total_windows, result.mispredicted_windows);
  std::printf("  LP coverage: %zu / %zu channels\n",
              result.history.back().covered_pdlc, result.pdlc_total);
  std::printf("  code coverage points: %zu\n",
              result.history.back().coverage_points);
  std::printf("  findings: %zu\n", result.vulns.size());
  for (const auto& vuln : result.vulns) {
    std::printf("   - [%s] %s (window opened at cycle %llu), %s\n",
                core::vuln_kind_name(vuln.kind).data(),
                vuln.sink_signal.c_str(),
                static_cast<unsigned long long>(vuln.window.start_cycle),
                vuln.cwe.c_str());
  }
  return 0;
}
