// Quickstart: the smallest end-to-end Specure campaign on the new
// declarative API.
//
// Builds a CampaignSpec from the "cache-monitor" preset (Spectre residue
// watched too), runs it through a Session with live event observers, and
// prints the campaign summary plus any findings.
//
// Build & run:  ./build/quickstart
#include <cstdio>

#include "core/session.hpp"

int main() {
  using namespace specure;

  core::CampaignSpec spec = core::CampaignSpec::preset("cache-monitor");
  spec.rng_seed = 42;
  spec.budget.iterations = 300;

  core::Session session(spec);
  std::printf("offline phase: %zu signals, %zu flow edges, %zu PDLCs\n",
              session.offline().ifg.node_count(),
              session.offline().ifg.edge_count(),
              session.offline().pdlc.size());

  // Events stream in strictly-merged iteration order while the campaign
  // runs — no polling, no stop-lambda contortions.
  session.on_vuln([](const core::VulnEvent& e) {
    std::printf("  ! finding at iteration %llu: %s\n",
                static_cast<unsigned long long>(e.iteration),
                core::finding_key(e.report).c_str());
  });

  const core::CampaignResult result = session.run();

  std::printf("campaign: %zu iterations in %.2fs\n", result.history.size(),
              result.seconds);
  std::printf("  speculative windows: %zu (%zu misspeculated)\n",
              result.total_windows, result.mispredicted_windows);
  std::printf("  LP coverage: %zu / %zu channels\n",
              result.history.back().covered_pdlc, result.pdlc_total);
  std::printf("  code coverage points: %zu\n",
              result.history.back().coverage_points);
  std::printf("  findings: %zu\n", result.vulns.size());
  for (const auto& vuln : result.vulns) {
    std::printf("   - [%s] %s (window opened at cycle %llu), %s\n",
                core::vuln_kind_name(vuln.kind).data(),
                vuln.sink_signal.c_str(),
                static_cast<unsigned long long>(vuln.window.start_cycle),
                vuln.cwe.c_str());
  }
  return 0;
}
