// RTL IFT audit: the hardware-agnostic path of the offline phase.
//
// Specure's front-end is not tied to MiniBOOM: any synthesizable-subset
// Verilog design can be parsed, elaborated, turned into an IFG, labeled
// with the architectural-register database and searched for potential
// direct leakage channels. This example audits a small hand-written
// pipelined core fragment with a deliberately-planted direct path from a
// line-fill buffer into an architectural register, prints every PDLC with
// its witness path, and writes the IFG as ifg.dot (Graphviz).
//
// Build & run:  ./build/examples/rtl_ift_audit
#include <cstdio>
#include <fstream>

#include "core/offline.hpp"
#include "ift/arch_regs.hpp"

namespace {

// A compact write-back pipeline fragment: fetch/decode stubs, a fill
// buffer in the load unit (microarchitectural), the architectural
// register x5, and the mwait-style CSR timer with a planted direct path
// from the cache metadata.
constexpr const char* kDesign = R"(
// Audited design: wb_core
module fill_buffer(input clk, input [63:0] refill, output [63:0] data);
  reg [63:0] buf_q;
  always @(posedge clk) buf_q <= refill;
  assign data = buf_q;
endmodule

module regfile(input clk, input we, input [63:0] wdata, output [63:0] x5);
  reg [63:0] x5;
  always @(posedge clk)
    if (we) x5 <= wdata;
endmodule

module csr_unit(input clk, input line_change, output [63:0] mwait_timer);
  reg [63:0] mwait_timer;
  always @(posedge clk)
    if (line_change) mwait_timer <= 64'd0;
    else mwait_timer <= mwait_timer - 64'd1;
endmodule

module wb_core(input clk, input [63:0] mem_refill, input wb_en,
               input line_change, output [63:0] arch_x5,
               output [63:0] timer);
  wire [63:0] fill_data;
  fill_buffer fb (.clk(clk), .refill(mem_refill), .data(fill_data));
  regfile rf (.clk(clk), .we(wb_en), .wdata(fill_data), .x5(arch_x5));
  csr_unit csrs (.clk(clk), .line_change(line_change),
                 .mwait_timer(timer));
endmodule
)";

}  // namespace

int main() {
  using namespace specure;

  const core::OfflineResult off = core::run_offline_phase_rtl(
      kDesign, "wb_core", ift::ArchRegDb::riscv());

  std::printf("audited module: wb_core\n");
  std::printf("  IFG: %zu signals, %zu flow edges (%.4fs)\n",
              off.ifg.node_count(), off.ifg.edge_count(), off.ifg_seconds);

  std::size_t arch = 0, uarch_regs = 0;
  for (ift::NodeId i = 0; i < off.ifg.node_count(); ++i) {
    const auto& node = off.ifg.node(i);
    if (node.role == ift::Role::kArchitectural) ++arch;
    if (node.role == ift::Role::kMicroarchitectural && node.is_register) {
      ++uarch_regs;
    }
  }
  std::printf("  architectural sinks: %zu, microarchitectural registers: "
              "%zu\n",
              arch, uarch_regs);

  std::printf("\npotential direct leakage channels (%zu):\n",
              off.pdlc.size());
  for (const auto& channel : off.pdlc.channels()) {
    std::printf("  %s ->", off.ifg.node(channel.source).name.c_str());
    for (std::size_t i = 1; i + 1 < channel.path.size(); ++i) {
      std::printf(" %s ->", off.ifg.node(channel.path[i]).name.c_str());
    }
    std::printf(" %s\n", off.ifg.node(channel.sink).name.c_str());
  }

  std::ofstream dot("ifg.dot");
  off.ifg.write_dot(dot);
  std::printf("\nIFG written to ifg.dot (render with: dot -Tsvg ifg.dot)\n");
  return 0;
}
