// Spectre hunt: reproduce the paper's Spectre experiment (§4.2,
// "Detecting Spectre Vulnerabilities") — the "cache-monitor" preset adds
// the data cache to the monitored sinks, and the campaign runs with the
// special transient-window seeds until both Spectre classes are found.
// Stop conditions compose on the Session: one per Spectre class, joined
// by a small AND-combinator over the typed event stream. Prints the
// findings with their root-cause reports and the Misspeculation Table.
//
// Build & run:  ./build/spectre_hunt
#include <cstdio>

#include "core/mst.hpp"
#include "core/session.hpp"

int main() {
  using namespace specure;

  core::CampaignSpec spec = core::CampaignSpec::preset("cache-monitor");
  spec.rng_seed = 7;
  spec.budget.iterations = 5000;

  core::Session session(spec);

  // Watch the typed vuln event stream for the two Spectre classes, and
  // stop once both appeared (add_stop conditions OR together, so the
  // AND lives in the observer state).
  bool v1 = false, v2 = false;
  session.on_vuln([&](const core::VulnEvent& e) {
    const std::string key = core::finding_key(e.report);
    const bool indirect = e.report.window.has_indirect_opener();
    if (key.find("cache-residue") != std::string::npos && !indirect) {
      v1 = true;
    }
    if (indirect) v2 = true;
    std::printf("  iteration %-6llu %s-class finding: %s\n",
                static_cast<unsigned long long>(e.iteration),
                indirect ? "v2" : "v1", key.c_str());
  });
  session.add_stop([&](const core::CampaignResult&) { return v1 && v2; });

  const core::CampaignResult result = session.run();

  std::printf("Spectre hunt finished after %zu iterations (%.2fs)\n",
              result.history.size(), result.seconds);
  for (const auto& [key, iteration] : result.first_detection) {
    std::printf("  %-45s first seen at iteration %llu\n", key.c_str(),
                static_cast<unsigned long long>(iteration));
  }
  std::printf("\nFindings with root-cause reports:\n");
  for (const auto& vuln : result.vulns) {
    std::printf("  [%s] residue in %s, window [%llu, %llu], %s opener\n",
                core::vuln_kind_name(vuln.kind).data(),
                vuln.sink_signal.c_str(),
                static_cast<unsigned long long>(vuln.window.start_cycle),
                static_cast<unsigned long long>(vuln.window.end_cycle),
                vuln.window.has_indirect_opener() ? "indirect (v2-class)"
                                                  : "conditional (v1-class)");
    for (std::size_t i = 0; i < vuln.root_causes.size() && i < 3; ++i) {
      std::printf("      root cause: %s\n",
                  vuln.root_causes[i].source_signal.c_str());
    }
  }
  std::printf("\nMisspeculation Table (sample):\n");
  std::printf("  ID\tStart\tEnd\tInstruction\tInstruction(Readable)\n");
  for (std::size_t i = 0; i < result.mst_sample.size() && i < 8; ++i) {
    std::printf("  %s\n",
                core::format_mst_row(i + 1, result.mst_sample[i]).c_str());
  }
  return 0;
}
