// Spectre hunt: reproduce the paper's Spectre experiment (§4.2,
// "Detecting Spectre Vulnerabilities") — the data cache is added to the
// monitored sinks and the campaign runs with the special transient-window
// seeds until both Spectre classes are found. Prints the findings with
// their root-cause reports and the Misspeculation Table of the run.
//
// Build & run:  ./build/examples/spectre_hunt
#include <cstdio>

#include "core/mst.hpp"
#include "core/specure.hpp"

int main() {
  using namespace specure;

  core::EngineOptions options;
  options.rng_seed = 7;
  options.detector.monitor_cache = true;
  options.fuzzer.use_special_seeds = true;  // §3.2 window-opener seeds

  core::SpecureEngine engine(options);
  const core::CampaignResult result = engine.run(
      5000, [](const core::CampaignResult& r) {
        bool v1 = false, v2 = false;
        for (const auto& [key, it] : r.first_detection) {
          v1 |= key.find("cache-residue") != std::string::npos &&
                key.find(":conditional") != std::string::npos;
          v2 |= key.find(":indirect") != std::string::npos;
        }
        return v1 && v2;
      });

  std::printf("Spectre hunt finished after %zu iterations (%.2fs)\n",
              result.history.size(), result.seconds);
  for (const auto& [key, iteration] : result.first_detection) {
    std::printf("  %-45s first seen at iteration %llu\n", key.c_str(),
                static_cast<unsigned long long>(iteration));
  }
  std::printf("\nFindings with root-cause reports:\n");
  for (const auto& vuln : result.vulns) {
    std::printf("  [%s] residue in %s, window [%llu, %llu], %s opener\n",
                core::vuln_kind_name(vuln.kind).data(),
                vuln.sink_signal.c_str(),
                static_cast<unsigned long long>(vuln.window.start_cycle),
                static_cast<unsigned long long>(vuln.window.end_cycle),
                vuln.window.has_indirect_opener() ? "indirect (v2-class)"
                                                  : "conditional (v1-class)");
    for (std::size_t i = 0; i < vuln.root_causes.size() && i < 3; ++i) {
      std::printf("      root cause: %s\n",
                  vuln.root_causes[i].source_signal.c_str());
    }
  }
  std::printf("\nMisspeculation Table (sample):\n");
  std::printf("  ID\tStart\tEnd\tInstruction\tInstruction(Readable)\n");
  for (std::size_t i = 0; i < result.mst_sample.size() && i < 8; ++i) {
    std::printf("  %s\n",
                core::format_mst_row(i + 1, result.mst_sample[i]).c_str());
  }
  return 0;
}
