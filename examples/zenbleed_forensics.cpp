// Zenbleed forensics: a single-input deep dive instead of a fuzzing
// campaign. Builds the Zenbleed proof-of-concept by hand with the
// ProgramBuilder API (arm zenbleed_en, open a mispredicted window, write a
// register on the wrong path), runs it on MiniBOOM with the emulation
// compiled in, and walks the whole analysis pipeline manually:
// MST extraction -> leakage detection -> vulnerability report with the
// PDLC-witnessed root cause. Also dumps the waveform as zenbleed.vcd for
// inspection in GTKWave.
//
// Build & run:  ./build/examples/zenbleed_forensics
#include <cstdio>

#include "core/leakage.hpp"
#include "core/mst.hpp"
#include "core/offline.hpp"
#include "core/vuln_detect.hpp"
#include "riscv/disasm.hpp"
#include "riscv/program.hpp"
#include "snapshot/vcd.hpp"

int main() {
  using namespace specure;
  using riscv::Op;
  namespace csr = riscv::csr;
  constexpr std::uint8_t A0 = 10, T0 = 5, T1 = 6, T2 = 7;

  // --- the proof-of-concept input --------------------------------------
  riscv::ProgramBuilder b;
  b.li(T1, 1);
  b.csrrw(0, csr::kZenbleedEn, T1);   // arm the vulnerable optimization
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(T0, 1);
  b.branch(Op::kBeq, T0, T0, "safe"); // always taken; predicted not-taken
  b.addi(T2, 0, 0x5e);                // transient write — must roll back
  b.label("safe");
  b.nop();
  b.ecall();
  const riscv::Program poc = b.build();

  std::printf("PoC program (%zu instructions):\n", poc.code.size());
  for (std::size_t i = 0; i < poc.code.size(); ++i) {
    const std::uint64_t pc = riscv::kCodeBase + i * 4;
    std::printf("  %llx: %s\n", static_cast<unsigned long long>(pc),
                riscv::disassemble(poc.code[i], pc).c_str());
  }

  // --- PUT with the Zenbleed emulation ----------------------------------
  sim::CoreConfig cfg;
  cfg.vuln.zenbleed_emulation = true;

  const core::OfflineResult offline = core::run_offline_phase(cfg);
  sim::Simulator simulator(cfg);
  const sim::RunResult run = simulator.run(poc);

  const auto windows = core::extract_mst(run.trace);
  std::printf("\n%zu speculative window(s):\n", windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    std::printf("  %s%s\n", core::format_mst_row(i + 1, windows[i]).c_str(),
                windows[i].mispredicted ? "   <- misspeculated" : "");
  }

  const auto leaks = core::detect_leakage(run.trace, windows);
  for (const auto& leak : leaks) {
    std::printf("\nwindow [%llu, %llu]: %zu signals changed across the "
                "rolled-back window\n",
                static_cast<unsigned long long>(leak.window.start_cycle),
                static_cast<unsigned long long>(leak.window.end_cycle),
                leak.deltas.size());
  }

  core::VulnerabilityDetector detector(offline.ifg, offline.pdlc,
                                       simulator.signal_db(), {});
  const auto reports = detector.analyze(run, windows);
  std::printf("\n%zu vulnerability report(s):\n", reports.size());
  for (const auto& rep : reports) {
    std::printf("  [%s] architectural sink %s: 0x%llx -> 0x%llx (%s)\n",
                core::vuln_kind_name(rep.kind).data(), rep.sink_signal.c_str(),
                static_cast<unsigned long long>(rep.before),
                static_cast<unsigned long long>(rep.after), rep.cwe.c_str());
    for (const auto& rc : rep.root_causes) {
      std::printf("      leakage path:");
      for (const auto& hop : rc.path) std::printf(" %s ->", hop.c_str());
      std::printf(" (sink)\n");
    }
  }

  snapshot::write_vcd_file("zenbleed.vcd", run.trace, "miniboom");
  std::printf("\nwaveform written to zenbleed.vcd (%zu cycles)\n",
              run.trace.size());
  return 0;
}
