// Sweep coverage: N scenarios running concurrently over one shared
// thread pool produce exactly the results each spec produces alone
// (scenario-level parallelism is invisible to campaign outcomes), errors
// are captured per row without sinking the sweep, and the comparison
// renderers emit well-formed output.
#include <gtest/gtest.h>

#include <sstream>

#include "core/session.hpp"
#include "core/sweep.hpp"

namespace specure::core {
namespace {

CampaignSpec sweep_spec(const char* preset, std::uint64_t iterations,
                        std::uint64_t seed) {
  CampaignSpec spec = CampaignSpec::preset(preset);
  spec.rng_seed = seed;
  spec.batch_size = 8;
  spec.budget.iterations = iterations;
  return spec;
}

TEST(Sweep, TwoPresetsConcurrentlyMatchSoloRuns) {
  Sweep sweep;
  sweep.add(sweep_spec("lp", 40, 9));
  sweep.add(sweep_spec("codecov", 40, 9));

  std::size_t done_calls = 0;
  sweep.on_scenario_done(
      [&](std::size_t index, const SweepOutcome& row) {
        ++done_calls;
        EXPECT_LT(index, 2u);
        EXPECT_TRUE(row.ok());
      });
  const auto rows = sweep.run(2);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(done_calls, 2u);
  EXPECT_EQ(rows[0].spec.name, "lp");
  EXPECT_EQ(rows[1].spec.name, "codecov");

  for (const SweepOutcome& row : rows) {
    ASSERT_TRUE(row.ok()) << row.error;
    ASSERT_EQ(row.result.history.size(), 40u);
    // A sweep row is bit-identical to running its spec alone.
    const CampaignResult solo = Session(row.spec).run();
    EXPECT_EQ(row.result.history.back().covered_pdlc,
              solo.history.back().covered_pdlc);
    EXPECT_EQ(row.result.history.back().coverage_points,
              solo.history.back().coverage_points);
    EXPECT_EQ(row.result.first_detection, solo.first_detection);
    EXPECT_EQ(row.result.total_windows, solo.total_windows);
  }
  // The two feedback modes really ran as different scenarios.
  EXPECT_EQ(rows[0].spec.feedback, FeedbackMode::kLeakagePath);
  EXPECT_EQ(rows[1].spec.feedback, FeedbackMode::kCodeCoverage);
}

TEST(Sweep, InvalidScenarioFailsItsRowOnly) {
  Sweep sweep;
  sweep.add(sweep_spec("default", 20, 1));
  CampaignSpec broken = sweep_spec("default", 20, 1);
  broken.name = "broken";
  broken.core.dcache_line_bytes = 12;  // fails validation inside Session
  sweep.add(broken);

  const auto rows = sweep.run();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[0].ok());
  EXPECT_EQ(rows[0].result.history.size(), 20u);
  ASSERT_FALSE(rows[1].ok());
  EXPECT_NE(rows[1].error.find("power of two"), std::string::npos)
      << rows[1].error;
}

TEST(Sweep, TableListsEveryScenario) {
  Sweep sweep;
  sweep.add(sweep_spec("lp", 20, 2));
  sweep.add(sweep_spec("no-spec", 20, 2));
  const auto rows = sweep.run();

  std::ostringstream os;
  Sweep::write_table(os, rows);
  const std::string table = os.str();
  EXPECT_NE(table.find("scenario"), std::string::npos);
  EXPECT_NE(table.find("iters/sec"), std::string::npos);
  EXPECT_NE(table.find("lp"), std::string::npos);
  EXPECT_NE(table.find("no-spec"), std::string::npos);
  // The no-speculation control must report zero findings.
  EXPECT_TRUE(rows[1].result.vulns.empty());
}

TEST(Sweep, JsonIsBalancedAndCarriesSpecs) {
  Sweep sweep;
  sweep.add(sweep_spec("lp", 10, 3));
  sweep.add(sweep_spec("codecov", 10, 3));
  const auto rows = sweep.run();

  std::ostringstream os;
  Sweep::write_json(os, rows);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"scenarios\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"lp\""), std::string::npos);
  EXPECT_NE(json.find("\"feedback\": \"codecov\""), std::string::npos);
  EXPECT_NE(json.find("\"spec\": {"), std::string::npos);

  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(Sweep, EmptySweepIsANoOp) {
  Sweep sweep;
  EXPECT_TRUE(sweep.run().empty());
}

}  // namespace
}  // namespace specure::core
