#include <gtest/gtest.h>

#include <set>

#include "riscv/program.hpp"
#include "rtl/parser.hpp"
#include "sim/core.hpp"
#include "sim/structure.hpp"

namespace specure::sim {
namespace {

namespace csr = riscv::csr;
using riscv::Op;
using riscv::Program;
using riscv::ProgramBuilder;

constexpr std::uint8_t A0 = 10, A1 = 11, T0 = 5, T1 = 6, T2 = 7, RA = 1;

std::uint64_t final_sig(const RunResult& res, const snapshot::SignalDb& db,
                        const std::string& name) {
  return res.trace[res.trace.size() - 1].values[db.id_of(name)];
}

std::uint64_t final_x(const RunResult& res, const snapshot::SignalDb& db,
                      unsigned reg) {
  return final_sig(res, db, "core.rf.x" + std::to_string(reg));
}

/// Build a program that triggers one guaranteed misprediction (PHT starts
/// weakly-not-taken, the branch is always taken) with `wrong_path`
/// instructions on the squashed fall-through path.
Program mispredict_program(const std::vector<std::uint32_t>& wrong_path,
                           const std::vector<std::uint32_t>& prologue = {}) {
  ProgramBuilder b;
  for (auto w : prologue) b.raw(w);
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(T0, 1);
  b.branch(Op::kBeq, T0, T0, "target");  // always taken, predicted not-taken
  for (auto w : wrong_path) b.raw(w);
  b.label("target");
  b.nop();
  b.ecall();
  return b.build();
}

TEST(Sim, AluBasics) {
  ProgramBuilder b;
  b.li(T0, 40).li(T1, 2).add(T2, T0, T1).ecall();
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(b.build());
  EXPECT_TRUE(res.halted_clean);
  EXPECT_EQ(final_x(res, sim.signal_db(), T2), 42u);
}

struct AluCase {
  const char* name;
  Op op;
  std::int64_t a, b;
  std::uint64_t expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, RegisterRegister) {
  const AluCase& c = GetParam();
  ProgramBuilder b;
  b.li(T0, c.a).li(T1, c.b).raw(riscv::enc_r(c.op, T2, T0, T1)).ecall();
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(b.build());
  EXPECT_EQ(final_x(res, sim.signal_db(), T2), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table, AluSemantics,
    ::testing::Values(
        AluCase{"add", Op::kAdd, 5, 7, 12},
        AluCase{"add_negative", Op::kAdd, -5, 2,
                static_cast<std::uint64_t>(-3)},
        AluCase{"sub", Op::kSub, 5, 7, static_cast<std::uint64_t>(-2)},
        AluCase{"sll", Op::kSll, 1, 12, 1u << 12},
        AluCase{"slt_true", Op::kSlt, -1, 0, 1},
        AluCase{"slt_false", Op::kSlt, 0, -1, 0},
        AluCase{"sltu_wraps", Op::kSltu, -1, 1, 0},
        AluCase{"xor", Op::kXor, 0xff, 0x0f, 0xf0},
        AluCase{"srl", Op::kSrl, 0x100, 4, 0x10},
        AluCase{"sra_negative", Op::kSra, -16, 2,
                static_cast<std::uint64_t>(-4)},
        AluCase{"or", Op::kOr, 0xf0, 0x0f, 0xff},
        AluCase{"and", Op::kAnd, 0xfc, 0x3f, 0x3c},
        AluCase{"addw_truncates", Op::kAddw, 0x7fffffff, 1,
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(INT32_MIN))},
        AluCase{"subw", Op::kSubw, 0, 1, static_cast<std::uint64_t>(-1)},
        AluCase{"mul", Op::kMul, 6, 7, 42},
        AluCase{"mulh", Op::kMulh, -1, -1, 0},
        AluCase{"div", Op::kDiv, 42, 6, 7},
        AluCase{"div_by_zero", Op::kDivu, 42, 0, ~0ULL},
        AluCase{"rem", Op::kRem, 43, 6, 1},
        AluCase{"rem_by_zero", Op::kRem, 43, 0, 43}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Sim, StoreLoadRoundTrip) {
  ProgramBuilder b;
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(T0, 0x1122334455667788LL);
  b.sd(T0, A0, 16);
  b.ld(T1, A0, 16);
  b.ecall();
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(b.build());
  EXPECT_EQ(final_x(res, sim.signal_db(), T1), 0x1122334455667788ULL);
}

TEST(Sim, LoadSignExtension) {
  ProgramBuilder b;
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(T0, 0xff);
  b.raw(riscv::enc_s(Op::kSb, A0, T0, 0));
  b.lb(T1, A0, 0);                        // sign-extended: -1
  b.raw(riscv::enc_i(Op::kLbu, T2, A0, 0));  // zero-extended: 255
  b.ecall();
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(b.build());
  EXPECT_EQ(final_x(res, sim.signal_db(), T1), ~0ULL);
  EXPECT_EQ(final_x(res, sim.signal_db(), T2), 0xffu);
}

TEST(Sim, InitialDataImageVisible) {
  ProgramBuilder b;
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.ld(T0, A0, 8);
  b.ecall();
  b.data_u64(8, 0xdeadbeefcafef00dULL);
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(b.build());
  EXPECT_EQ(final_x(res, sim.signal_db(), T0), 0xdeadbeefcafef00dULL);
}

TEST(Sim, BranchDirections) {
  // Taken branch skips the poison write; not-taken branch executes it.
  for (bool equal : {true, false}) {
    ProgramBuilder b;
    b.li(T0, 1).li(T1, equal ? 1 : 2);
    b.branch(Op::kBeq, T0, T1, "skip");
    b.li(T2, 99);
    b.label("skip");
    b.ecall();
    Simulator sim{CoreConfig{}};
    const RunResult res = sim.run(b.build());
    EXPECT_EQ(final_x(res, sim.signal_db(), T2), equal ? 0u : 99u);
  }
}

TEST(Sim, CountdownLoopCommits) {
  ProgramBuilder b;
  b.li(T0, 5).li(T1, 0);
  b.label("loop");
  b.addi(T1, T1, 3);
  b.addi(T0, T0, -1);
  b.branch(Op::kBne, T0, 0, "loop");
  b.ecall();
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(b.build());
  EXPECT_TRUE(res.halted_clean);
  EXPECT_EQ(final_x(res, sim.signal_db(), T1), 15u);
}

TEST(Sim, MispredictionRollsBackArchState) {
  const Program p = mispredict_program({
      riscv::enc_i(Op::kAddi, T2, 0, 99),  // wrong-path write to x7
  });
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(p);
  EXPECT_TRUE(res.halted_clean);
  EXPECT_EQ(final_x(res, sim.signal_db(), T2), 0u);
}

TEST(Sim, SquashedInstructionsDoNotCommit) {
  const Program p = mispredict_program({
      riscv::enc_i(Op::kAddi, T2, 0, 99),
  });
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(p);
  for (const auto& c : res.commits) {
    EXPECT_NE(c.inst, riscv::enc_i(Op::kAddi, T2, 0, 99))
        << "squashed instruction leaked into the commit stream";
  }
}

TEST(Sim, SpeculativeWindowVisibleInSnapshots) {
  const Program p = mispredict_program({riscv::enc_nop()});
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(p);
  const auto& db = sim.signal_db();
  const auto unsafe_id = db.id_of("core.rob.unsafe");
  const auto mispred_id = db.id_of("core.rob.brupdate_mispredict");
  bool saw_window = false, saw_mispredict = false;
  for (std::size_t i = 0; i < res.trace.size(); ++i) {
    saw_window |= res.trace[i].values[unsafe_id] != 0;
    saw_mispredict |= res.trace[i].values[mispred_id] != 0;
  }
  EXPECT_TRUE(saw_window);
  EXPECT_TRUE(saw_mispredict);
}

TEST(Sim, SpecInstReportsWindowOpener) {
  ProgramBuilder b;
  b.li(T0, 1);
  b.branch(Op::kBeq, T0, T0, "t");
  b.nop();
  b.label("t");
  b.ecall();
  const Program p = b.build();
  // Find the branch word.
  std::uint32_t branch_word = 0;
  for (auto w : p.code) {
    if (riscv::is_branch(riscv::decode(w).op)) branch_word = w;
  }
  ASSERT_NE(branch_word, 0u);
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(p);
  const auto inst_id = sim.signal_db().id_of("core.rob.spec_inst");
  bool seen = false;
  for (std::size_t i = 0; i < res.trace.size(); ++i) {
    seen |= res.trace[i].values[inst_id] == branch_word;
  }
  EXPECT_TRUE(seen);
}

TEST(Sim, WrongPathLoadLeavesCacheResidue) {
  // The wrong path loads from kDataBase+0x200; nothing on the correct path
  // touches that line. Spectre residue: the fill must survive the squash.
  const std::uint64_t target = riscv::kDataBase + 0x200;
  const Program p = mispredict_program({
      riscv::enc_i(Op::kLd, T2, A0, 0x200),
  });
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(p);
  EXPECT_EQ(final_x(res, sim.signal_db(), T2), 0u) << "load must be squashed";
  const auto& db = sim.signal_db();
  const auto& last = res.trace[res.trace.size() - 1];
  bool resident = false;
  const CoreConfig cfg;
  for (unsigned s = 0; s < cfg.dcache_sets; ++s) {
    for (unsigned w = 0; w < cfg.dcache_ways; ++w) {
      const std::string base =
          "core.dcache.tag_" + std::to_string(s) + "_" + std::to_string(w);
      const std::string vbase =
          "core.dcache.valid_" + std::to_string(s) + "_" + std::to_string(w);
      if (last.values[db.id_of(vbase)] != 0 &&
          last.values[db.id_of(base)] ==
              (target & ~static_cast<std::uint64_t>(cfg.dcache_line_bytes - 1))) {
        resident = true;
      }
    }
  }
  EXPECT_TRUE(resident) << "speculative fill did not persist";
}

TEST(Sim, ZenbleedSuppressesRollback) {
  ProgramBuilder setup;
  setup.li(T1, 1);
  setup.csrrw(0, csr::kZenbleedEn, T1);
  const auto prologue = setup.build().code;
  const Program p = mispredict_program(
      {riscv::enc_i(Op::kAddi, T2, 0, 99)}, prologue);

  CoreConfig cfg;
  cfg.vuln.zenbleed_emulation = true;
  Simulator sim{cfg};
  const RunResult res = sim.run(p);
  EXPECT_EQ(final_x(res, sim.signal_db(), T2), 99u)
      << "Zenbleed: wrong-path write must persist architecturally";
}

TEST(Sim, ZenbleedInactiveWithoutCsrArm) {
  // Emulation compiled in but zenbleed_en == 0: normal rollback.
  const Program p = mispredict_program({riscv::enc_i(Op::kAddi, T2, 0, 99)});
  CoreConfig cfg;
  cfg.vuln.zenbleed_emulation = true;
  Simulator sim{cfg};
  const RunResult res = sim.run(p);
  EXPECT_EQ(final_x(res, sim.signal_db(), T2), 0u);
}

TEST(Sim, ZenbleedInactiveWithoutEmulation) {
  ProgramBuilder setup;
  setup.li(T1, 1);
  setup.csrrw(0, csr::kZenbleedEn, T1);
  const Program p = mispredict_program({riscv::enc_i(Op::kAddi, T2, 0, 99)},
                                       setup.build().code);
  Simulator sim{CoreConfig{}};  // emulation off
  const RunResult res = sim.run(p);
  EXPECT_EQ(final_x(res, sim.signal_db(), T2), 0u);
}

TEST(Sim, MwaitSpeculativeLoadClearsTimer) {
  // Arm the monitor on kDataBase+0x300, then let a *squashed* wrong-path
  // load fill that line: the timer must drop to 0/1 although the load
  // never architecturally executed — the paper's (M)WAIT leak.
  ProgramBuilder setup;
  setup.li(A1, static_cast<std::int64_t>(riscv::kDataBase + 0x300));
  setup.csrrw(0, csr::kMonitorAddr, A1);
  setup.li(T1, 1);
  setup.csrrw(0, csr::kMwaitEn, T1);
  const Program p = mispredict_program({riscv::enc_i(Op::kLd, T2, A0, 0x300)},
                                       setup.build().code);
  CoreConfig cfg;
  cfg.vuln.mwait_emulation = true;
  Simulator sim{cfg};
  const RunResult res = sim.run(p);
  const std::uint64_t timer =
      final_sig(res, sim.signal_db(), "core.csr.mwait_timer");
  EXPECT_LE(timer, 1u) << "monitored-line change must clear the timer";
}

TEST(Sim, MwaitTimerCountsDownWithoutTrigger) {
  ProgramBuilder b;
  b.li(T1, 1);
  b.csrrw(0, csr::kMwaitEn, T1);
  for (int i = 0; i < 8; ++i) b.nop();
  b.ecall();
  CoreConfig cfg;
  cfg.vuln.mwait_emulation = true;
  Simulator sim{cfg};
  const RunResult res = sim.run(b.build());
  const std::uint64_t timer =
      final_sig(res, sim.signal_db(), "core.csr.mwait_timer");
  EXPECT_GT(timer, 1u);
  EXPECT_LT(timer, cfg.mwait_timer_start);
}

TEST(Sim, MwaitCommittedStoreAlsoClears) {
  // Committed store to the monitored line: the *intended* wake behaviour.
  ProgramBuilder b;
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(A1, static_cast<std::int64_t>(riscv::kDataBase + 0x40));
  b.csrrw(0, csr::kMonitorAddr, A1);
  b.li(T1, 1);
  b.csrrw(0, csr::kMwaitEn, T1);
  b.li(T0, 7);
  b.sd(T0, A0, 0x40);
  b.ecall();
  CoreConfig cfg;
  cfg.vuln.mwait_emulation = true;
  Simulator sim{cfg};
  const RunResult res = sim.run(b.build());
  EXPECT_LE(final_sig(res, sim.signal_db(), "core.csr.mwait_timer"), 1u);
}

TEST(Sim, MwaitDisabledNoTimerActivity) {
  ProgramBuilder b;
  b.li(T1, 1);
  b.csrrw(0, csr::kMwaitEn, T1);
  for (int i = 0; i < 4; ++i) b.nop();
  b.ecall();
  Simulator sim{CoreConfig{}};  // mwait emulation off
  const RunResult res = sim.run(b.build());
  EXPECT_EQ(final_sig(res, sim.signal_db(), "core.csr.mwait_timer"), 0u);
}

TEST(Sim, CsrReadWriteSemantics) {
  ProgramBuilder b;
  b.li(T0, 0xf0);
  b.csrrw(0, csr::kMscratch, T0);      // mscratch = 0xf0
  b.li(T1, 0x0f);
  b.csrrs(T2, csr::kMscratch, T1);     // T2 = 0xf0; mscratch |= 0x0f
  b.csrrs(28, csr::kMscratch, 0);      // x28 = 0xff
  b.ecall();
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(b.build());
  EXPECT_EQ(final_x(res, sim.signal_db(), T2), 0xf0u);
  EXPECT_EQ(final_x(res, sim.signal_db(), 28), 0xffu);
}

TEST(Sim, JalAndJalrCallReturn) {
  ProgramBuilder b;
  b.li(T0, 0);
  b.jal(RA, "func");
  b.addi(T0, T0, 1);   // executes after return
  b.ecall();
  b.label("func");
  b.addi(T0, T0, 7);
  b.jalr(0, RA, 0);
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(b.build());
  EXPECT_TRUE(res.halted_clean);
  EXPECT_EQ(final_x(res, sim.signal_db(), T0), 8u);
}

TEST(Sim, IllegalInstructionHalts) {
  ProgramBuilder b;
  b.nop().raw(0xffffffff).nop();
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(b.build());
  EXPECT_TRUE(res.halted_clean);
  // The trailing nop must not commit.
  EXPECT_EQ(res.instructions_committed, 2u);  // nop + illegal(trap)
}

TEST(Sim, MaxCyclesBoundsInfiniteLoop) {
  ProgramBuilder b;
  b.label("spin");
  b.jal(0, "spin");
  CoreConfig cfg;
  cfg.max_cycles = 300;
  Simulator sim{cfg};
  const RunResult res = sim.run(b.build());
  EXPECT_EQ(res.cycles, 300u);
  EXPECT_FALSE(res.halted_clean);
}

TEST(Sim, DeterministicAcrossRuns) {
  util::Rng rng(31337);
  const Program p = riscv::random_program(rng, 80);
  Simulator sim{CoreConfig{}};
  const RunResult r1 = sim.run(p);
  const RunResult r2 = sim.run(p);
  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  for (std::size_t i = 0; i < r1.trace.size(); ++i) {
    ASSERT_EQ(r1.trace[i].values, r2.trace[i].values) << "cycle " << i;
  }
  EXPECT_EQ(r1.commits.size(), r2.commits.size());
}

TEST(Sim, RandomProgramsTerminate) {
  util::Rng rng(4242);
  Simulator sim{CoreConfig{}};
  for (int i = 0; i < 25; ++i) {
    const Program p = riscv::random_program(rng, 1 + rng.below(120));
    const RunResult res = sim.run(p);
    EXPECT_LE(res.cycles, CoreConfig{}.max_cycles);
    EXPECT_EQ(res.trace.size(), res.cycles);
  }
}

TEST(Sim, CoverageAccumulates) {
  util::Rng rng(7);
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(riscv::random_program(rng, 60));
  EXPECT_GT(res.coverage.point_count(), 0u);
  EXPECT_GT(res.coverage.toggle_bits(), 0u);
}

TEST(Sim, CommitLogMatchesCommittedCount) {
  ProgramBuilder b;
  b.li(T0, 3).addi(T0, T0, 1).ecall();
  Simulator sim{CoreConfig{}};
  const RunResult res = sim.run(b.build());
  EXPECT_EQ(res.commits.size(), res.instructions_committed);
  // Commit cycles must be monotonically non-decreasing.
  for (std::size_t i = 1; i < res.commits.size(); ++i) {
    EXPECT_LE(res.commits[i - 1].cycle, res.commits[i].cycle);
  }
}

// ------------------------------------------------------------ structure --

TEST(Structure, SignalsMatchSignalDb) {
  const CoreConfig cfg;
  Simulator sim{cfg};
  const auto descs = describe_signals(cfg);
  ASSERT_EQ(sim.signal_db().size(), descs.size());
  for (std::size_t i = 0; i < descs.size(); ++i) {
    EXPECT_EQ(sim.signal_db().info(static_cast<std::uint32_t>(i)).name,
              descs[i].name);
  }
}

TEST(Structure, IfgContainsVulnPathsOnlyWhenConfigured) {
  CoreConfig plain;
  const ift::Ifg g0 = build_ifg(plain);
  CoreConfig vuln = plain;
  vuln.vuln.mwait_emulation = true;
  vuln.vuln.zenbleed_emulation = true;
  const ift::Ifg g1 = build_ifg(vuln);

  auto has_edge = [](const ift::Ifg& g, const std::string& a,
                     const std::string& b) {
    const auto ia = g.find(a), ib = g.find(b);
    if (ia == ift::kInvalidNode || ib == ift::kInvalidNode) return false;
    for (auto s : g.successors(ia)) {
      if (s == ib) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_edge(g0, "core.dcache.valid_0_0", "core.csr.mwait_timer"));
  EXPECT_TRUE(has_edge(g1, "core.dcache.valid_0_0", "core.csr.mwait_timer"));
  EXPECT_FALSE(has_edge(g0, "core.csr.zenbleed_en",
                        "core.rename.maptable_5"));
  EXPECT_TRUE(has_edge(g1, "core.csr.zenbleed_en",
                       "core.rename.maptable_5"));
}

TEST(Structure, IfgRolesLabeled) {
  const ift::Ifg g = build_ifg(CoreConfig{});
  EXPECT_EQ(g.node(g.id_of("core.rf.x7")).role, ift::Role::kArchitectural);
  EXPECT_EQ(g.node(g.id_of("core.csr.mstatus")).role,
            ift::Role::kArchitectural);
  EXPECT_EQ(g.node(g.id_of("core.prf.p9")).role,
            ift::Role::kMicroarchitectural);
  EXPECT_EQ(g.node(g.id_of("core.exec.result")).role, ift::Role::kWire);
}

TEST(Structure, VerilogRoundTripsThroughRtlFrontend) {
  CoreConfig cfg;
  cfg.vuln.mwait_emulation = true;
  cfg.vuln.zenbleed_emulation = true;
  const std::string verilog = emit_structural_verilog(cfg);
  const auto design = rtl::parse(verilog);
  const auto elab = rtl::elaborate(design, "core");

  auto flat = [](std::string name) {
    for (char& c : name) {
      if (c == '.') c = '$';
    }
    return "core." + name;
  };

  // Every structural signal must exist with the right width and register
  // flag; every structural flow must exist as an elaborated flow.
  const ift::Ifg g = build_ifg(cfg);
  // +1: the generated module's clk input (clocks carry no flow).
  ASSERT_EQ(elab.signal_count(), g.node_count() + 1);
  for (ift::NodeId i = 0; i < g.node_count(); ++i) {
    const auto* sig = elab.find(flat(g.node(i).name));
    ASSERT_NE(sig, nullptr) << g.node(i).name;
    EXPECT_EQ(sig->width, g.node(i).width) << g.node(i).name;
    EXPECT_EQ(sig->is_register, g.node(i).is_register) << g.node(i).name;
  }
  std::set<std::pair<std::string, std::string>> elab_flows;
  for (const auto& [s, t] : elab.flows()) {
    elab_flows.emplace(elab.signals()[s].name, elab.signals()[t].name);
  }
  std::size_t structural_edges = 0;
  for (ift::NodeId i = 0; i < g.node_count(); ++i) {
    for (ift::NodeId j : g.successors(i)) {
      EXPECT_TRUE(
          elab_flows.count({flat(g.node(i).name), flat(g.node(j).name)}))
          << g.node(i).name << " -> " << g.node(j).name;
      ++structural_edges;
    }
  }
  EXPECT_EQ(elab_flows.size(), structural_edges);
}

}  // namespace
}  // namespace specure::sim
