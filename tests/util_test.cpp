#include <gtest/gtest.h>

#include <set>

#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace specure::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // All four values should appear.
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(Rng, Uniform01InRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ForkIndependent) {
  Rng parent(21);
  Rng child = parent.fork();
  // Child stream should not equal the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 3);
}

TEST(Bits, Mask) {
  EXPECT_EQ(mask(0), 0u);
  EXPECT_EQ(mask(1), 1u);
  EXPECT_EQ(mask(12), 0xfffu);
  EXPECT_EQ(mask(64), ~0ULL);
}

TEST(Bits, Extract) {
  EXPECT_EQ(bits(0xdeadbeef, 0, 4), 0xfu);
  EXPECT_EQ(bits(0xdeadbeef, 28, 4), 0xdu);
  EXPECT_EQ(bit(0x8, 3), 1u);
  EXPECT_EQ(bit(0x8, 2), 0u);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sext(0xfff, 12), -1);
  EXPECT_EQ(sext(0x7ff, 12), 0x7ff);
  EXPECT_EQ(sext(0x800, 12), -2048);
  EXPECT_EQ(sext(0xffffffff, 32), -1);
  EXPECT_EQ(sext(5, 64), 5);
}

TEST(Bits, ToggledBits) {
  EXPECT_EQ(toggled_bits(0, 0), 0u);
  EXPECT_EQ(toggled_bits(0, 0xff), 8u);
  EXPECT_EQ(toggled_bits(0b1010, 0b0101), 4u);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("top.df1.q", "top."));
  EXPECT_FALSE(starts_with("top", "top."));
  EXPECT_TRUE(ends_with("rob_unsafe", "unsafe"));
  EXPECT_FALSE(ends_with("q", "df1.q"));
}

TEST(Strings, Hex) {
  EXPECT_EQ(hex(0xdeadbeef), "deadbeef");
  EXPECT_EQ(hex(0, 4), "0000");
  EXPECT_EQ(hex0x(255), "0xff");
  EXPECT_EQ(hex(0x1, 8), "00000001");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"x"}, "."), "x");
}

}  // namespace
}  // namespace specure::util
