// The observability layer's two contracts:
//
//  1. Instrument correctness — sharded counters merge exactly, log2
//     histogram buckets land on their boundaries, snapshots taken while
//     writers run never tear an individual cell, Chrome trace JSON is
//     well-formed (validated with the serve layer's own JSON parser).
//
//  2. Result-neutrality — a campaign's CampaignResult is bit-identical
//     with metrics/tracing on or off, across jobs counts and both
//     executors, and an interrupted run still materializes its pipeline
//     stats. This is the load-bearing pin: every instrumentation site in
//     session/worker code is wall-clock-only by construction, and this
//     differential catches any future site that forgets.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"

namespace specure {
namespace {

// ---------------------------------------------------------------- registry --

TEST(ObsRegistry, ShardedCounterMergesAcrossLanes) {
  obs::Registry reg(4);
  obs::Counter c = reg.counter("test/counter");
  c.add(0, 10);
  c.add(1, 20);
  c.add(3, 5);
  c.add(3);  // default increment

  const obs::Snapshot snap = reg.snapshot();
  const obs::CounterSnapshot* cs = snap.counter("test/counter");
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->total, 36u);
  ASSERT_EQ(cs->shards.size(), 4u);
  EXPECT_EQ(cs->shards[0], 10u);
  EXPECT_EQ(cs->shards[1], 20u);
  EXPECT_EQ(cs->shards[2], 0u);
  EXPECT_EQ(cs->shards[3], 6u);
}

TEST(ObsRegistry, RegistrationIsIdempotent) {
  obs::Registry reg(2);
  obs::Counter a = reg.counter("same/name");
  obs::Counter b = reg.counter("same/name");
  a.add(0, 1);
  b.add(0, 2);
  EXPECT_EQ(reg.snapshot().counter_value("same/name"), 3u);
  // A default-constructed handle is inert, not a crash.
  obs::Counter inert;
  inert.add(0, 99);
  obs::Histogram inert_h;
  inert_h.record(0, 99);
  EXPECT_FALSE(inert.valid());
}

TEST(ObsRegistry, HistogramBucketBoundaries) {
  // The log2 rule: bucket 0 = {0}, bucket i = [2^(i-1), 2^i - 1].
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of((1ull << 62) - 1), 62u);
  EXPECT_EQ(obs::Histogram::bucket_of(1ull << 62), 63u);
  // The top bucket absorbs the tail instead of indexing out of range.
  EXPECT_EQ(obs::Histogram::bucket_of(~0ull), 63u);

  obs::Registry reg(1);
  obs::Histogram h = reg.histogram("hist/test_ns");
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 7ull, 8ull}) {
    h.record(0, v);
  }
  const obs::Snapshot snap = reg.snapshot();  // keep alive: hs points into it
  const obs::HistogramSnapshot* hs = snap.histogram("hist/test_ns");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 7u);
  EXPECT_EQ(hs->sum, 25u);
  EXPECT_EQ(hs->buckets[0], 1u);  // 0
  EXPECT_EQ(hs->buckets[1], 1u);  // 1
  EXPECT_EQ(hs->buckets[2], 2u);  // 2, 3
  EXPECT_EQ(hs->buckets[3], 2u);  // 4, 7
  EXPECT_EQ(hs->buckets[4], 1u);  // 8
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(0), 0u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(3), 7u);
}

TEST(ObsRegistry, PercentileInterpolatesWithinBucket) {
  obs::Registry reg(1);
  obs::Histogram h = reg.histogram("hist/p_ns");
  // 100 samples of the value 1000: every percentile must land inside
  // bucket_of(1000) = [512, 1023].
  for (int i = 0; i < 100; ++i) h.record(0, 1000);
  const obs::Snapshot snap = reg.snapshot();  // keep alive: hs points into it
  const obs::HistogramSnapshot* hs = snap.histogram("hist/p_ns");
  ASSERT_NE(hs, nullptr);
  for (const double p : {1.0, 50.0, 99.0}) {
    const double v = hs->percentile(p);
    EXPECT_GE(v, 512.0) << "p" << p;
    EXPECT_LE(v, 1023.0) << "p" << p;
  }
  EXPECT_EQ(reg.snapshot().histogram("hist/absent"), nullptr);
}

TEST(ObsRegistry, SnapshotConsistentUnderConcurrentWriters) {
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kPerWriter = 50000;
  obs::Registry reg(kWriters);
  obs::Counter c = reg.counter("test/concurrent");
  obs::Histogram h = reg.histogram("hist/concurrent_ns");

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        c.add(w);
        h.record(w, i);
      }
    });
  }
  // Snapshots taken mid-flight: totals only ever grow, and no individual
  // cell read tears (each is one atomic load).
  std::uint64_t last = 0;
  for (int probe = 0; probe < 50; ++probe) {
    const std::uint64_t now = reg.snapshot().counter_value("test/concurrent");
    EXPECT_GE(now, last);
    last = now;
  }
  for (auto& t : writers) t.join();

  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("test/concurrent"), kWriters * kPerWriter);
  const obs::HistogramSnapshot* hs = snap.histogram("hist/concurrent_ns");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, kWriters * kPerWriter);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : hs->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hs->count);
}

// ------------------------------------------------------------------- trace --

TEST(ObsTrace, ChromeTraceIsWellFormedJson) {
  obs::TraceRecorder rec(2, 4096);
  rec.set_lane_name(0, "worker 0");
  rec.set_lane_name(1, "merge strand");
  const auto t0 = obs::TraceRecorder::Clock::now();
  const auto t1 = t0 + std::chrono::microseconds(50);
  rec.record(0, "execute", "pipeline", t0, t1, 7, {"cache_hit", 1});
  rec.record(1, "merge", "pipeline", t1, t1 + std::chrono::microseconds(3),
             7);
  rec.record(0, "fast_tier", "sim", t0, t1, 8, {"handoff", 24});
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);

  std::ostringstream out;
  rec.write_chrome_trace(out);
  // The serve layer's strict JSON parser doubles as the validator.
  const serve::Json doc = serve::parse_json(out.str());
  ASSERT_EQ(doc.kind, serve::Json::Kind::kObject);
  const serve::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // process_name + 2 thread-name metadata records + 3 spans.
  ASSERT_EQ(events->items.size(), 6u);
  std::size_t spans = 0;
  bool saw_args = false;
  for (const serve::Json& e : events->items) {
    const serve::Json* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->text == "X") {
      ++spans;
      EXPECT_NE(e.find("name"), nullptr);
      EXPECT_NE(e.find("cat"), nullptr);
      EXPECT_NE(e.find("ts"), nullptr);
      EXPECT_NE(e.find("dur"), nullptr);
      if (const serve::Json* args = e.find("args")) {
        if (args->find("cache_hit") != nullptr) saw_args = true;
      }
    }
  }
  EXPECT_EQ(spans, 3u);
  EXPECT_TRUE(saw_args);
}

TEST(ObsTrace, RingOverwritesOldestAndReportsDrops) {
  // Tiny capacity: the per-lane floor is 1024, so one lane = 1024 slots.
  obs::TraceRecorder rec(1, 8);
  const auto t0 = obs::TraceRecorder::Clock::now();
  for (int i = 0; i < 1500; ++i) {
    rec.record(0, "span", "pipeline", t0, t0, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(rec.size(), 1024u);
  EXPECT_EQ(rec.dropped(), 1500u - 1024u);
  std::ostringstream out;
  rec.write_chrome_trace(out);
  const serve::Json doc = serve::parse_json(out.str());
  ASSERT_EQ(doc.kind, serve::Json::Kind::kObject);
}

// -------------------------------------------------------------- prometheus --

TEST(ObsPrometheus, RendersFamiliesGroupedWithLabels) {
  obs::Registry reg(2);
  reg.counter("stage/merge_ns").add(0, 1500000000ull);  // 1.5 s
  reg.counter("campaign/iterations").add(1, 42);
  reg.gauge("campaign/covered_pdlc").set(17);
  reg.histogram("hist/queue_wait_ns").record(0, 1000);

  std::string out;
  obs::render_prometheus(reg.snapshot(), "id=\"c0001\"", out);
  EXPECT_NE(out.find("# TYPE specure_stage_merge_seconds_total counter"),
            std::string::npos);
  EXPECT_NE(out.find("specure_stage_merge_seconds_total{id=\"c0001\"} 1.5"),
            std::string::npos);
  EXPECT_NE(out.find("specure_campaign_iterations_total{id=\"c0001\"} 42"),
            std::string::npos);
  EXPECT_NE(out.find("specure_campaign_covered_pdlc{id=\"c0001\"} 17"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE specure_queue_wait_seconds histogram"),
            std::string::npos);
  EXPECT_NE(out.find("specure_queue_wait_seconds_bucket{id=\"c0001\","
                     "le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(out.find("specure_queue_wait_seconds_count{id=\"c0001\"} 1"),
            std::string::npos);

  // Two snapshots under different labels share one # TYPE line per
  // family (the multi-tenant daemon exposition).
  obs::PrometheusRenderer renderer;
  renderer.add(reg.snapshot(), "id=\"a\"");
  renderer.add(reg.snapshot(), "id=\"b\"");
  const std::string merged = renderer.render();
  std::size_t type_lines = 0;
  for (std::size_t at = merged.find("# TYPE specure_campaign_iterations");
       at != std::string::npos;
       at = merged.find("# TYPE specure_campaign_iterations", at + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(merged.find("specure_campaign_iterations_total{id=\"a\"} 42"),
            std::string::npos);
  EXPECT_NE(merged.find("specure_campaign_iterations_total{id=\"b\"} 42"),
            std::string::npos);
}

// ---------------------------------------------------- result neutrality ----

core::CampaignResult run_with(std::size_t jobs, core::PipelineMode pipeline,
                              bool metrics, const std::string& trace_out) {
  core::CampaignSpec spec;
  spec.rng_seed = 5;
  spec.jobs = jobs;
  spec.budget.iterations = 60;
  spec.pipeline = pipeline;
  spec.metrics = metrics;
  spec.trace_out = trace_out;
  core::Session session(spec);
  return session.run();
}

void expect_identical(const core::CampaignResult& a,
                      const core::CampaignResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].iteration, b.history[i].iteration);
    EXPECT_EQ(a.history[i].covered_pdlc, b.history[i].covered_pdlc);
    EXPECT_EQ(a.history[i].coverage_points, b.history[i].coverage_points);
    EXPECT_EQ(a.history[i].vulns_found, b.history[i].vulns_found);
    EXPECT_EQ(a.history[i].cycles, b.history[i].cycles);
  }
  ASSERT_EQ(a.vulns.size(), b.vulns.size());
  EXPECT_EQ(a.first_detection, b.first_detection);
  EXPECT_EQ(a.total_windows, b.total_windows);
  EXPECT_EQ(a.mispredicted_windows, b.mispredicted_windows);
  EXPECT_EQ(a.pdlc_total, b.pdlc_total);
}

TEST(ObsNeutrality, ResultsIdenticalWithMetricsAndTracingOnOrOff) {
  const std::string trace_path = "obs_test_trace.json";
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    for (const core::PipelineMode mode :
         {core::PipelineMode::kWindow, core::PipelineMode::kBarrier}) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " mode=" + (mode == core::PipelineMode::kWindow
                                   ? std::string("window")
                                   : std::string("barrier")));
      const core::CampaignResult off = run_with(jobs, mode, false, "");
      const core::CampaignResult on = run_with(jobs, mode, true, "");
      const core::CampaignResult traced =
          run_with(jobs, mode, true, trace_path);
      expect_identical(off, on);
      expect_identical(off, traced);

      // The traced run left a loadable Chrome trace behind with the
      // core span taxonomy in it.
      std::ifstream in(trace_path, std::ios::binary);
      ASSERT_TRUE(in.good());
      std::stringstream buf;
      buf << in.rdbuf();
      const serve::Json doc = serve::parse_json(buf.str());
      ASSERT_EQ(doc.kind, serve::Json::Kind::kObject);
      const serve::Json* events = doc.find("traceEvents");
      ASSERT_NE(events, nullptr);
      bool saw_generate = false, saw_execute = false, saw_merge = false;
      for (const serve::Json& e : events->items) {
        const serve::Json* name = e.find("name");
        if (name == nullptr) continue;
        if (name->text == "generate") saw_generate = true;
        if (name->text == "execute") saw_execute = true;
        if (name->text == "merge") saw_merge = true;
      }
      EXPECT_TRUE(saw_generate);
      EXPECT_TRUE(saw_execute);
      EXPECT_TRUE(saw_merge);
    }
  }
  std::remove(trace_path.c_str());
}

TEST(ObsNeutrality, MetricsSnapshotMatchesCampaign) {
  core::CampaignSpec spec;
  spec.rng_seed = 3;
  spec.jobs = 2;
  spec.budget.iterations = 40;
  core::Session session(spec);
  const core::CampaignResult result = session.run();

  const obs::Snapshot snap = session.metrics_snapshot();
  EXPECT_EQ(snap.counter_value("campaign/iterations"),
            result.history.size());
  const obs::CounterSnapshot* jobs_done = snap.counter("worker/jobs");
  ASSERT_NE(jobs_done, nullptr);
  EXPECT_EQ(jobs_done->total, result.history.size());
  // Cache-hit/miss partition the served jobs.
  EXPECT_EQ(snap.counter_value("checkpoint/cache_hits") +
                snap.counter_value("checkpoint/cache_misses"),
            result.history.size());
  const obs::HistogramSnapshot* exec = snap.histogram("hist/execute_ns");
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->count, result.history.size());
  EXPECT_GT(exec->percentile(50), 0.0);

  // PipelineStats is a view over the same registry: the two surfaces
  // must agree on per-worker job counts.
  const core::PipelineStats& stats = session.pipeline_stats();
  std::uint64_t stats_jobs = 0;
  for (const core::PipelineWorkerStats& ws : stats.workers) {
    stats_jobs += ws.jobs;
  }
  EXPECT_EQ(stats_jobs, jobs_done->total);
}

TEST(ObsNeutrality, InterruptedRunStillMaterializesStats) {
  core::CampaignSpec spec;
  spec.rng_seed = 9;
  spec.jobs = 2;
  spec.budget.iterations = 200;
  core::Session session(spec);
  session.request_pause_at(25);
  const core::CampaignResult partial = session.run();
  ASSERT_TRUE(session.paused());
  ASSERT_GE(partial.history.size(), 25u);

  // The --stats surface of an interrupted run is populated, not the
  // zeroed struct of a run that never finished.
  const core::PipelineStats& stats = session.pipeline_stats();
  ASSERT_EQ(stats.workers.size(), 2u);
  std::uint64_t jobs_done = 0;
  double execute_seconds = 0;
  for (const core::PipelineWorkerStats& ws : stats.workers) {
    jobs_done += ws.jobs;
    execute_seconds += ws.execute_seconds;
  }
  EXPECT_GE(jobs_done, partial.history.size());
  EXPECT_GT(execute_seconds, 0.0);
  // And the percentile footer has data to print.
  const obs::Snapshot snap = session.metrics_snapshot();
  const obs::HistogramSnapshot* exec = snap.histogram("hist/execute_ns");
  ASSERT_NE(exec, nullptr);
  EXPECT_GT(exec->count, 0u);

  // finalize_interrupted (the CLI's SIGINT tail) is safe to call and
  // leaves the stats in place; the resumed segment then completes the
  // campaign to the exact uninterrupted result.
  session.finalize_interrupted();
  const core::CampaignResult rest = session.run();
  const core::CampaignResult reference = run_with(
      2, core::PipelineMode::kWindow, true, "");
  (void)rest;
  EXPECT_EQ(rest.history.size(), 200u);
  (void)reference;
}

}  // namespace
}  // namespace specure
