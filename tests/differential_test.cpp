// Differential and property tests between the speculative MiniBOOM
// pipeline and the sequential reference ISS.
//
// Core hyper-property of a *correct* speculative processor: with no
// vulnerability emulation armed, speculation is architecturally invisible
// — the committed register state after any program equals the sequential
// reference's state. The Zenbleed emulation is exactly a violation of
// this property, which the last tests confirm.
#include <gtest/gtest.h>

#include "core/mst.hpp"
#include "riscv/program.hpp"
#include "sim/core.hpp"
#include "sim/iss.hpp"

namespace specure::sim {
namespace {

namespace csr = riscv::csr;
using riscv::Op;
using riscv::Program;

std::array<std::uint64_t, 32> final_regs(const RunResult& res,
                                         const snapshot::SignalDb& db) {
  std::array<std::uint64_t, 32> out{};
  const auto& last = res.trace[res.trace.size() - 1];
  for (unsigned i = 0; i < 32; ++i) {
    out[i] = last.values[db.id_of("core.rf.x" + std::to_string(i))];
  }
  return out;
}

class RandomProgramEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramEquivalence, CommittedStateMatchesReference) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
  Simulator simulator{CoreConfig{}};
  // One Iss and one IssResult for the whole loop: every run resets to
  // power-on state, and the buffer-reusing overload decodes each program
  // once into the Iss's internal DecodedInst array.
  Iss iss{CoreConfig{}};
  IssResult ref;
  int compared = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Program p = riscv::random_program(rng, 20 + rng.below(100));
    const RunResult run = simulator.run(p);
    if (!run.halted_clean) continue;  // hit max_cycles: partial execution
    iss.run(p, ref);
    if (!ref.halted_clean) continue;
    const auto pipeline_regs = final_regs(run, simulator.signal_db());
    for (unsigned r = 1; r < 32; ++r) {
      ASSERT_EQ(pipeline_regs[r], ref.regs[r])
          << "x" << r << " diverged, trial " << trial << ", param "
          << GetParam();
    }
    ++compared;
  }
  EXPECT_GT(compared, 0) << "no clean runs to compare";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEquivalence,
                         ::testing::Range(0, 12));

TEST(Differential, SpeculationInvisibleDespiteMisprediction) {
  // A program with heavy, guaranteed misprediction: final state must
  // still match the reference exactly.
  riscv::ProgramBuilder b;
  b.li(10, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(5, 0).li(6, 10);
  b.label("loop");
  b.ld(7, 10, 0);
  b.sd(7, 10, 8);
  b.addi(5, 5, 1);
  b.branch(Op::kBlt, 5, 6, "loop");  // alternating history -> mispredicts
  b.ecall();
  const Program p = b.build();

  Simulator simulator{CoreConfig{}};
  const RunResult run = simulator.run(p);
  ASSERT_TRUE(run.halted_clean);
  // The run must actually have misspeculated for this test to mean much.
  const auto windows = core::extract_mst(run.trace);
  bool mispredicted = false;
  for (const auto& w : windows) mispredicted |= w.mispredicted;
  ASSERT_TRUE(mispredicted);

  Iss iss{CoreConfig{}};
  const IssResult ref = iss.run(p);
  const auto regs = final_regs(run, simulator.signal_db());
  for (unsigned r = 1; r < 32; ++r) EXPECT_EQ(regs[r], ref.regs[r]) << r;
}

TEST(Differential, ZenbleedBreaksEquivalence) {
  // The emulated vulnerability is precisely a violation of the
  // speculation-invisibility property.
  riscv::ProgramBuilder b;
  b.li(6, 1);
  b.csrrw(0, csr::kZenbleedEn, 6);
  b.li(5, 1);
  b.branch(Op::kBeq, 5, 5, "t");
  b.addi(7, 0, 99);  // transient
  b.label("t");
  b.nop();
  b.ecall();
  const Program p = b.build();

  CoreConfig cfg;
  cfg.vuln.zenbleed_emulation = true;
  Simulator simulator{cfg};
  const RunResult run = simulator.run(p);
  Iss iss{cfg};
  const IssResult ref = iss.run(p);
  const auto regs = final_regs(run, simulator.signal_db());
  EXPECT_EQ(ref.regs[7], 0u);   // reference never executes the wrong path
  EXPECT_EQ(regs[7], 99u);      // the pipeline leaks it
}

TEST(Differential, IssEcallStops) {
  riscv::ProgramBuilder b;
  b.li(5, 3).ecall().li(5, 9);
  Iss iss{CoreConfig{}};
  const IssResult res = iss.run(b.build());
  EXPECT_TRUE(res.halted_clean);
  EXPECT_EQ(res.regs[5], 3u);
}

TEST(Differential, IssBoundsInfiniteLoops) {
  riscv::ProgramBuilder b;
  b.label("spin");
  b.jal(0, "spin");
  Iss iss{CoreConfig{}};
  const IssResult res = iss.run(b.build(), 500);
  EXPECT_FALSE(res.halted_clean);
  EXPECT_EQ(res.instructions, 500u);
}

TEST(Differential, IssCsrSemantics) {
  riscv::ProgramBuilder b;
  b.li(5, 0xf0);
  b.csrrw(0, csr::kMscratch, 5);
  b.li(6, 0x0f);
  b.csrrs(7, csr::kMscratch, 6);
  b.ecall();
  Iss iss{CoreConfig{}};
  const IssResult res = iss.run(b.build());
  EXPECT_EQ(res.regs[7], 0xf0u);
  EXPECT_EQ(iss.csr().read(csr::kMscratch), 0xffu);
}

TEST(Differential, MemoryStateMatchesReference) {
  // Squashed stores must never reach memory: the final data image of the
  // speculative pipeline equals the sequential reference's for every
  // cleanly-halting random program.
  util::Rng rng(2025);
  Simulator simulator{CoreConfig{}};
  Iss iss{CoreConfig{}};  // reused across trials (power-on reset per run)
  IssResult ref;
  int compared = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Program p = riscv::random_program(rng, 60);
    const RunResult run = simulator.run(p);
    if (!run.halted_clean) continue;
    iss.run(p, ref);
    if (!ref.halted_clean) continue;
    ASSERT_EQ(run.final_data, iss.memory().data_image()) << "trial " << trial;
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

}  // namespace
}  // namespace specure::sim
