// Tiered-execution differential suite: the fast-functional prefix tier
// plus detailed continuation must be *bit-identical* to a cold detailed
// run — same delta trace event stream, commit log, coverage points and
// toggle counts, cycle count, end state. Also covers the handoff edge
// cases (index 0, index past the program end, trap inside the prefix),
// the run_fast_prefix boundary checkpoint, checkpointed tiered runs, and
// the dense-trace fallback.
#include <gtest/gtest.h>

#include <stdexcept>

#include "fuzz/corpus.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/seeds.hpp"
#include "riscv/encode.hpp"
#include "riscv/program.hpp"
#include "sim/core.hpp"
#include "sim/fast_tier.hpp"
#include "util/rng.hpp"

namespace specure {
namespace {

using riscv::Op;
using riscv::Program;

// ------------------------------------------------------------ helpers ----

void expect_trace_identical(const snapshot::Trace& a,
                            const snapshot::Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.event_count(), b.event_count());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a.cycle_at(t), b.cycle_at(t)) << "tick " << t;
    ASSERT_EQ(a.tick_begin(t), b.tick_begin(t)) << "tick " << t;
    ASSERT_EQ(a.tick_end(t), b.tick_end(t)) << "tick " << t;
    for (std::size_t e = a.tick_begin(t); e < a.tick_end(t); ++e) {
      ASSERT_EQ(a.event_id(e), b.event_id(e)) << "tick " << t;
      ASSERT_EQ(a.event_value(e), b.event_value(e))
          << "tick " << t << " id " << a.event_id(e);
    }
  }
  if (!a.empty()) {
    EXPECT_EQ(a[a.size() - 1].values, b[b.size() - 1].values);
  }
}

void expect_run_identical(const sim::RunResult& a, const sim::RunResult& b) {
  expect_trace_identical(a.trace, b.trace);
  ASSERT_EQ(a.commits.size(), b.commits.size());
  for (std::size_t i = 0; i < a.commits.size(); ++i) {
    EXPECT_EQ(a.commits[i].cycle, b.commits[i].cycle) << "commit " << i;
    EXPECT_EQ(a.commits[i].pc, b.commits[i].pc) << "commit " << i;
    EXPECT_EQ(a.commits[i].inst, b.commits[i].inst) << "commit " << i;
    EXPECT_EQ(a.commits[i].writes_rd, b.commits[i].writes_rd);
    EXPECT_EQ(a.commits[i].rd, b.commits[i].rd);
    EXPECT_EQ(a.commits[i].writes_csr, b.commits[i].writes_csr);
    EXPECT_EQ(a.commits[i].csr, b.commits[i].csr);
    EXPECT_EQ(a.commits[i].is_store, b.commits[i].is_store);
    EXPECT_EQ(a.commits[i].store_addr, b.commits[i].store_addr);
  }
  EXPECT_EQ(a.coverage.points(), b.coverage.points());
  EXPECT_EQ(a.coverage.toggle_bits(), b.coverage.toggle_bits());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions_committed, b.instructions_committed);
  EXPECT_EQ(a.halted_clean, b.halted_clean);
  EXPECT_EQ(a.final_data, b.final_data);
}

const sim::Simulator& shared_sim() {
  static sim::Simulator sim{sim::CoreConfig{}};
  return sim;
}

/// Run both tiers and assert bit-identity; returns the tiered result's
/// stats delta for callers that assert on telemetry.
sim::TierStats expect_tiered_identical(const sim::Simulator& sim,
                                       const Program& program,
                                       bool loads_arm) {
  sim::RunResult detailed = sim.run(program);
  sim::RunResult tiered(&sim.signal_db());
  const riscv::DecodedProgram& dec = sim.decode(program);
  const std::size_t handoff = fuzz::handoff_index(dec, loads_arm);
  sim::TierStats stats;
  sim.run_tiered(program, handoff, tiered, &stats, &dec);
  expect_run_identical(detailed, tiered);
  return stats;
}

/// Corpus-shaped programs: seeds then mutation products, like a campaign.
std::vector<Program> sample_programs(std::size_t count, std::uint64_t seed) {
  fuzz::FuzzerOptions options;
  fuzz::Fuzzer fuzzer(options, seed);
  std::vector<Program> out;
  for (std::size_t i = 0; i < count; ++i) out.push_back(fuzzer.next());
  return out;
}

/// `n` straight-line ALU/load/store instructions, then a branch window —
/// the workload shape the fast tier exists for.
Program long_prefix_gadget(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  riscv::ProgramBuilder b;
  b.li(10, static_cast<std::int64_t>(riscv::kDataBase));
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.below(5)) {
      case 0: b.addi(11, 11, static_cast<std::int64_t>(rng.below(64))); break;
      case 1: b.xor_(12, 11, 12); break;
      case 2: b.lw(13, 10, static_cast<std::int64_t>(8 * rng.below(16))); break;
      case 3: b.sw(13, 10, static_cast<std::int64_t>(8 * rng.below(16))); break;
      default: b.add(14, 13, 11); break;
    }
  }
  b.branch(Op::kBne, 11, 12, "past");
  b.addi(15, 15, 1);
  b.label("past");
  b.ecall();
  std::vector<std::uint8_t> data(256);
  for (auto& byte : data) byte = static_cast<std::uint8_t>(rng.below(256));
  return b.with_data(std::move(data)).build();
}

// --------------------------------------------- handoff-scan semantics ----

TEST(HandoffScan, StopsAtFirstArmingInstruction) {
  auto dec_of = [](std::vector<std::uint32_t> code) {
    riscv::DecodedProgram dec;
    dec.build(code);
    return dec;
  };
  const std::uint32_t nop = riscv::enc_nop();
  // Each trigger op must stop the scan at its own index.
  const std::vector<std::uint32_t> triggers = {
      riscv::enc_b(Op::kBeq, 0, 0, 8),
      riscv::enc_j(0, 8),
      riscv::enc_i(Op::kJalr, 0, 1, 0),
      riscv::enc_csr(Op::kCsrrs, 5, 0, 0x301),
      riscv::enc_ecall(),
  };
  for (const std::uint32_t word : triggers) {
    const auto dec = dec_of({nop, nop, word, nop});
    EXPECT_EQ(fuzz::handoff_index(dec, false), 2u);
  }
  // Loads arm only under the cache-monitoring policy.
  const std::uint32_t load = riscv::enc_i(Op::kLw, 5, 10, 0);
  const auto with_load = dec_of({nop, load, nop});
  EXPECT_EQ(fuzz::handoff_index(with_load, false), 3u);
  EXPECT_EQ(fuzz::handoff_index(with_load, true), 1u);
  // Illegal words are fast-executable (the trap-halt path), and a fully
  // straight-line program hands off past its end.
  const auto with_illegal = dec_of({nop, 0u, nop});
  EXPECT_EQ(fuzz::handoff_index(with_illegal, false), 3u);
}

// ----------------------------------------------- tiered == detailed ----

TEST(TieredDifferential, FuzzCorpusBitIdentical) {
  const sim::Simulator& sim = shared_sim();
  sim::TierStats total;
  for (const auto& program : sample_programs(24, 7)) {
    const sim::TierStats s = expect_tiered_identical(sim, program, false);
    total.fast_runs += s.fast_runs;
    total.fallbacks += s.fallbacks;
  }
  // The corpus must actually exercise both paths for this suite to mean
  // anything.
  EXPECT_GT(total.fast_runs + total.fallbacks, 0u);
}

TEST(TieredDifferential, SeedProgramsBitIdentical) {
  const sim::Simulator& sim = shared_sim();
  util::Rng rng(9);
  expect_tiered_identical(sim, fuzz::make_branch_mispredict_seed(rng).program,
                          false);
  expect_tiered_identical(sim, fuzz::make_bti_seed(rng).program, false);
  for (int i = 0; i < 4; ++i) {
    expect_tiered_identical(sim, riscv::random_program(rng, 48 + 24 * i),
                            false);
  }
}

TEST(TieredDifferential, LoadsArmPolicyStillBitIdentical) {
  // An earlier (more conservative) handoff must not change the result —
  // only how much of the prefix the fast tier gets to run.
  const sim::Simulator& sim = shared_sim();
  for (const auto& program : sample_programs(12, 21)) {
    expect_tiered_identical(sim, program, true);
  }
  expect_tiered_identical(sim, long_prefix_gadget(96, 3), true);
}

TEST(TieredDifferential, LongPrefixGadgetHandsOff) {
  const sim::TierStats stats =
      expect_tiered_identical(shared_sim(), long_prefix_gadget(128, 5), false);
  EXPECT_EQ(stats.fast_runs, 1u);
  EXPECT_EQ(stats.handoffs, 1u);
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_GT(stats.fast_cycles, 64u);
}

// ------------------------------------------------------- edge cases ----

TEST(TieredDifferential, HandoffAtZeroIsPureDetailedRun) {
  // First instruction is a branch: nothing for the fast tier to do.
  riscv::ProgramBuilder b;
  b.branch(Op::kBeq, 0, 0, "out");
  b.addi(5, 5, 1);
  b.label("out");
  b.ecall();
  const Program program = b.build();
  const sim::TierStats stats =
      expect_tiered_identical(shared_sim(), program, false);
  EXPECT_EQ(stats.fast_runs, 0u);
  EXPECT_EQ(stats.fast_cycles, 0u);
  EXPECT_EQ(stats.fallbacks, 1u);
}

TEST(TieredDifferential, HandoffPastEndCompletesInFastTier) {
  // Straight-line program with no arming instruction at all: it falls off
  // the end (off-image fetch -> decode-invalid trap) and the entire run,
  // including that trap halt, stays in the fast tier.
  riscv::ProgramBuilder b;
  b.li(10, static_cast<std::int64_t>(riscv::kDataBase));
  for (int i = 0; i < 24; ++i) b.addi(11, 11, 3);
  b.sd(11, 10, 0);
  const Program program = b.build();
  const riscv::DecodedProgram& dec = shared_sim().decode(program);
  ASSERT_EQ(fuzz::handoff_index(dec, false), program.code.size());
  const sim::TierStats stats =
      expect_tiered_identical(shared_sim(), program, false);
  EXPECT_EQ(stats.fast_runs, 1u);
  EXPECT_EQ(stats.fast_completions, 1u);
  EXPECT_EQ(stats.handoffs, 0u);
}

TEST(TieredDifferential, IllegalWordInsidePrefixTrapsIdentically) {
  riscv::ProgramBuilder b;
  for (int i = 0; i < 8; ++i) b.addi(11, 11, 1);
  b.raw(0);  // illegal: decode-invalid trap inside the prefix
  b.addi(12, 12, 1);
  const sim::TierStats stats =
      expect_tiered_identical(shared_sim(), b.build(), false);
  EXPECT_EQ(stats.fast_completions, 1u);
}

TEST(TieredDifferential, HandoffIndexIsDefensivelyClamped) {
  // A caller passing a too-late handoff (e.g. a stale scan) must not let
  // the fast tier run a branch: the simulator re-clamps to the static
  // scan of the program it was actually given.
  const Program program = long_prefix_gadget(32, 11);
  const sim::Simulator& sim = shared_sim();
  sim::RunResult detailed = sim.run(program);
  sim::RunResult tiered(&sim.signal_db());
  sim.run_tiered(program, program.code.size() + 64, tiered);
  expect_run_identical(detailed, tiered);
}

// ------------------------------------- boundary checkpoint & resume ----

TEST(TieredDifferential, FastPrefixBoundaryResumesLikeAnyCheckpoint) {
  const Program program = long_prefix_gadget(64, 13);
  const sim::Simulator& sim = shared_sim();
  sim::RunResult prefix(&sim.signal_db());
  sim::Checkpoint boundary;
  const sim::FastPrefixOutcome outcome =
      sim.run_fast_prefix(program, fuzz::handoff_index(sim.decode(program), false),
                          prefix, boundary);
  ASSERT_EQ(outcome, sim::FastPrefixOutcome::kHandoff);
  EXPECT_EQ(boundary.cycle, prefix.cycles);
  EXPECT_EQ(boundary.commit_count, prefix.commits.size());

  sim::RunResult resumed(&sim.signal_db());
  sim.run_from(boundary, prefix.trace, prefix.commits, program, resumed);
  expect_run_identical(sim.run(program), resumed);
}

TEST(TieredDifferential, FastPrefixAtZeroReportsNone) {
  riscv::ProgramBuilder b;
  b.branch(Op::kBeq, 0, 0, "out");
  b.label("out");
  b.ecall();
  const sim::Simulator& sim = shared_sim();
  sim::RunResult prefix(&sim.signal_db());
  sim::Checkpoint boundary;
  EXPECT_EQ(sim.run_fast_prefix(b.build(), 0, prefix, boundary),
            sim::FastPrefixOutcome::kNone);
}

// ------------------------------------------------ checkpointed runs ----

TEST(TieredDifferential, CheckpointedTieredBitIdenticalAndPostHandoffOnly) {
  const sim::Simulator& sim = shared_sim();
  sim::CheckpointOptions options;
  options.interval = 16;
  for (const auto& program : sample_programs(8, 33)) {
    sim::RunResult detailed(&sim.signal_db());
    std::vector<sim::Checkpoint> detailed_cps;
    sim.run(program, options, detailed_cps, detailed);

    sim::RunResult tiered(&sim.signal_db());
    std::vector<sim::Checkpoint> tiered_cps;
    const riscv::DecodedProgram& dec = sim.decode(program);
    const std::size_t handoff = fuzz::handoff_index(dec, false);
    sim::TierStats stats;
    sim.run_tiered(program, handoff, options, tiered_cps, tiered, &stats,
                   &dec);
    expect_run_identical(detailed, tiered);

    // No prefix checkpoints: the fast tier substitutes for shallow
    // resumes, so every emitted checkpoint lies at/past the boundary.
    const std::uint64_t boundary_cycles = stats.fast_cycles;
    for (const auto& cp : tiered_cps) {
      EXPECT_GE(cp.cycle, boundary_cycles);
    }
    // Any emitted checkpoint must remain a valid resume point.
    if (!tiered_cps.empty()) {
      const sim::Checkpoint& cp = tiered_cps.back();
      sim::RunResult resumed(&sim.signal_db());
      sim.run_from(cp, tiered.trace, tiered.commits, program, resumed);
      expect_run_identical(detailed, resumed);
    }
  }
}

// ---------------------------------------------- dense-trace fallback ----

TEST(TieredDifferential, DenseTraceFallsBackToDetailed) {
  sim::CoreConfig cfg;
  cfg.record_dense_trace = true;
  const sim::Simulator sim(cfg);
  const Program program = long_prefix_gadget(32, 17);
  sim::RunResult tiered(&sim.signal_db());
  sim::TierStats stats;
  sim.run_tiered(program, fuzz::handoff_index(sim.decode(program), false),
                 tiered, &stats);
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.fast_runs, 0u);
  ASSERT_NE(tiered.dense_trace, nullptr);
  expect_run_identical(sim.run(program), tiered);

  sim::CheckpointOptions options;
  std::vector<sim::Checkpoint> cps;
  sim::RunResult out(&sim.signal_db());
  EXPECT_THROW(sim.run_tiered(program, 4, options, cps, out),
               std::runtime_error);
}

}  // namespace
}  // namespace specure
