#include <gtest/gtest.h>

#include <sstream>

#include "ift/arch_regs.hpp"
#include "ift/ifg.hpp"
#include "ift/pdlc.hpp"
#include "rtl/parser.hpp"

namespace specure::ift {
namespace {

// Small synthetic processor-shaped design: a microarchitectural buffer that
// flows through a wire into an architectural register, plus an isolated
// microarch register.
Ifg make_toy_ifg() {
  Ifg g;
  const NodeId buf = g.add_node("core.lsu.fill_buffer", 64, true,
                                Role::kMicroarchitectural);
  const NodeId wire = g.add_node("core.wb.wdata", 64, false, Role::kWire);
  const NodeId x5 = g.add_node("core.rf.x5", 64, true, Role::kArchitectural);
  const NodeId iso = g.add_node("core.bp.ghist", 16, true,
                                Role::kMicroarchitectural);
  (void)iso;
  g.add_edge(buf, wire);
  g.add_edge(wire, x5);
  return g;
}

TEST(Ifg, NodeAndEdgeBasics) {
  Ifg g = make_toy_ifg();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.node(g.id_of("core.rf.x5")).role, Role::kArchitectural);
  EXPECT_EQ(g.find("nonexistent"), kInvalidNode);
  EXPECT_THROW(g.id_of("nonexistent"), std::runtime_error);
}

TEST(Ifg, DuplicateNodeThrows) {
  Ifg g;
  g.add_node("a");
  EXPECT_THROW(g.add_node("a"), std::runtime_error);
}

TEST(Ifg, SelfLoopAndDuplicateEdgesDropped) {
  Ifg g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, a);
  g.add_edge(a, b);
  g.add_edge(a, b);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Ifg, EdgeToUnknownNodeThrows) {
  Ifg g;
  const NodeId a = g.add_node("a");
  EXPECT_THROW(g.add_edge(a, 42), std::runtime_error);
}

TEST(Ifg, SuccessorsAndPredecessors) {
  Ifg g = make_toy_ifg();
  const NodeId wire = g.id_of("core.wb.wdata");
  ASSERT_EQ(g.successors(wire).size(), 1u);
  ASSERT_EQ(g.predecessors(wire).size(), 1u);
  EXPECT_EQ(g.node(g.successors(wire)[0]).name, "core.rf.x5");
  EXPECT_EQ(g.node(g.predecessors(wire)[0]).name, "core.lsu.fill_buffer");
}

TEST(Ifg, RoleQueries) {
  Ifg g = make_toy_ifg();
  EXPECT_EQ(g.nodes_with_role(Role::kArchitectural).size(), 1u);
  EXPECT_EQ(g.nodes_with_role(Role::kMicroarchitectural).size(), 2u);
  EXPECT_EQ(g.register_nodes().size(), 3u);
}

TEST(Ifg, DotOutputContainsNodes) {
  Ifg g = make_toy_ifg();
  std::ostringstream os;
  g.write_dot(os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("core.lsu.fill_buffer"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Ifg, FromElaboratedListing1) {
  const auto design = rtl::parse(R"(
    module D_FF(input d, input clk, output q);
      reg q;
      always @(posedge clk) q <= d;
    endmodule
    module top(input clk, input i, output o);
      reg q1;
      D_FF df1 (.d(i), .clk(clk), .q(q1));
      D_FF df2 (.d(q1), .clk(clk), .q(o));
    endmodule
  )");
  const Ifg g = Ifg::from_elaborated(rtl::elaborate(design, "top"));
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_EQ(g.node(g.id_of("top.df1.q")).role, Role::kMicroarchitectural);
  EXPECT_TRUE(g.node(g.id_of("top.df1.q")).is_register);
}

// -------------------------------------------------------------- ArchRegDb --

TEST(ArchRegDb, RiscvContainsIsaState) {
  const ArchRegDb db = ArchRegDb::riscv();
  // 32 GPR + 32 FPR + pc + 12 CSRs + 3 MMIO = 80.
  EXPECT_EQ(db.size(), 80u);
  EXPECT_TRUE(db.is_architectural("core.rf.x0"));
  EXPECT_TRUE(db.is_architectural("core.rf.x31"));
  EXPECT_TRUE(db.is_architectural("core.fp.f15"));
  EXPECT_TRUE(db.is_architectural("core.frontend.pc"));
  EXPECT_TRUE(db.is_architectural("core.csr.mstatus"));
  EXPECT_TRUE(db.is_architectural("core.csr.mwait_timer"));
  EXPECT_TRUE(db.is_architectural("core.csr.zenbleed_en"));
  EXPECT_TRUE(db.is_architectural("soc.clint.mtimecmp"));
}

TEST(ArchRegDb, MicroarchNamesNotMatched) {
  const ArchRegDb db = ArchRegDb::riscv();
  EXPECT_FALSE(db.is_architectural("core.rob.unsafe"));
  EXPECT_FALSE(db.is_architectural("core.lsu.fill_buffer"));
  EXPECT_FALSE(db.is_architectural("core.bp.btb_tag_3"));
  EXPECT_FALSE(db.is_architectural("core.rename.maptable"));
  EXPECT_FALSE(db.is_architectural("core.dcache.valid_0"));
}

TEST(ArchRegDb, BankIndexSuffixMatching) {
  ArchRegDb db;
  db.add({"x", "test", false});
  EXPECT_TRUE(db.is_architectural("rf.x_17"));
  EXPECT_FALSE(db.is_architectural("rf.y_17"));
}

TEST(ArchRegDb, LabelSetsRoles) {
  Ifg g;
  g.add_node("core.rf.x1", 64, true, Role::kMicroarchitectural);
  g.add_node("core.rob.head", 5, true, Role::kMicroarchitectural);
  const ArchRegDb db = ArchRegDb::riscv();
  const std::size_t labeled = db.label(g);
  EXPECT_EQ(labeled, 1u);
  EXPECT_EQ(g.node(g.id_of("core.rf.x1")).role, Role::kArchitectural);
  EXPECT_EQ(g.node(g.id_of("core.rob.head")).role,
            Role::kMicroarchitectural);
}

TEST(ArchRegDb, CustomEntries) {
  ArchRegDb db;
  db.add({"uart_tx", "custom-mmio", true});
  EXPECT_TRUE(db.is_architectural("soc.uart.uart_tx"));
  EXPECT_EQ(db.entries()[0].source, "custom-mmio");
}

// ------------------------------------------------------------------ PDLC --

TEST(Pdlc, ToyChannelFound) {
  const Ifg g = make_toy_ifg();
  const PdlcList list = extract_pdlc(g);
  ASSERT_EQ(list.size(), 1u);
  const Pdlc& ch = list[0];
  EXPECT_EQ(g.node(ch.source).name, "core.lsu.fill_buffer");
  EXPECT_EQ(g.node(ch.sink).name, "core.rf.x5");
  ASSERT_EQ(ch.path.size(), 3u);
  EXPECT_EQ(ch.path.front(), ch.source);
  EXPECT_EQ(ch.path.back(), ch.sink);
}

TEST(Pdlc, IsolatedRegisterYieldsNoChannel) {
  const Ifg g = make_toy_ifg();
  const PdlcList list = extract_pdlc(g);
  for (const auto& ch : list.channels()) {
    EXPECT_NE(g.node(ch.source).name, "core.bp.ghist");
  }
}

TEST(Pdlc, ForwardAndReverseAgreeOnChannelPairs) {
  // Build a dense-ish random DAG and compare the channel pair sets.
  Ifg g;
  std::vector<NodeId> ids;
  for (int i = 0; i < 40; ++i) {
    const bool reg = i % 3 == 0;
    const Role role = (i % 10 == 0) ? Role::kArchitectural
                      : reg         ? Role::kMicroarchitectural
                                    : Role::kWire;
    ids.push_back(g.add_node("n" + std::to_string(i), 8, reg, role));
  }
  // Edges only forward in index order => DAG.
  for (int i = 0; i < 40; ++i) {
    for (int j = i + 1; j < 40; j += (i % 4) + 2) {
      g.add_edge(ids[i], ids[j]);
    }
  }
  PdlcOptions fwd;
  fwd.reverse = false;
  const PdlcList rlist = extract_pdlc(g);
  const PdlcList flist = extract_pdlc(g, fwd);
  std::set<std::pair<NodeId, NodeId>> rpairs, fpairs;
  for (const auto& ch : rlist.channels()) rpairs.emplace(ch.source, ch.sink);
  for (const auto& ch : flist.channels()) fpairs.emplace(ch.source, ch.sink);
  EXPECT_EQ(rpairs, fpairs);
}

TEST(Pdlc, PathsAreRealIfgPaths) {
  const Ifg g = make_toy_ifg();
  const PdlcList list = extract_pdlc(g);
  for (const auto& ch : list.channels()) {
    for (std::size_t i = 0; i + 1 < ch.path.size(); ++i) {
      const auto& succs = g.successors(ch.path[i]);
      EXPECT_NE(std::find(succs.begin(), succs.end(), ch.path[i + 1]),
                succs.end())
          << "broken path edge at " << g.node(ch.path[i]).name;
    }
  }
}

TEST(Pdlc, ChannelsStopAtIntermediateRegisters) {
  // m1 -> w -> m2(reg) -> x1(arch). m1's flows are laundered through m2, so
  // the only channel from m1 ends at... nothing: m1 reaches x1 only through
  // the opaque register m2. Channels: (m2 -> x1) only.
  Ifg g;
  const NodeId m1 = g.add_node("m1", 8, true, Role::kMicroarchitectural);
  const NodeId w = g.add_node("w", 8, false, Role::kWire);
  const NodeId m2 = g.add_node("m2", 8, true, Role::kMicroarchitectural);
  const NodeId x1 = g.add_node("rf.x1", 64, true, Role::kArchitectural);
  g.add_edge(m1, w);
  g.add_edge(w, m2);
  g.add_edge(m2, x1);
  const PdlcList list = extract_pdlc(g);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].source, m2);
  EXPECT_EQ(list[0].sink, x1);
}

TEST(Pdlc, MultipleSinksIndexed) {
  Ifg g;
  const NodeId m = g.add_node("m", 8, true, Role::kMicroarchitectural);
  const NodeId a1 = g.add_node("rf.x1", 64, true, Role::kArchitectural);
  const NodeId a2 = g.add_node("rf.x2", 64, true, Role::kArchitectural);
  g.add_edge(m, a1);
  g.add_edge(m, a2);
  const PdlcList list = extract_pdlc(g);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.by_sink(a1).size(), 1u);
  EXPECT_EQ(list.by_sink(a2).size(), 1u);
  EXPECT_EQ(list.by_source(m).size(), 2u);
  EXPECT_TRUE(list.by_sink(999).empty());
}

TEST(Pdlc, NonRegisterSourcesOptIn) {
  Ifg g;
  // A microarchitectural *wire* (e.g. a forwarding path), not a register.
  const NodeId m = g.add_node("fwd", 8, false, Role::kMicroarchitectural);
  const NodeId a = g.add_node("rf.x1", 64, true, Role::kArchitectural);
  g.add_edge(m, a);
  EXPECT_EQ(extract_pdlc(g).size(), 0u);
  PdlcOptions opts;
  opts.register_sources_only = false;
  EXPECT_EQ(extract_pdlc(g, opts).size(), 1u);
}

TEST(Pdlc, CyclicGraphTerminates) {
  Ifg g;
  const NodeId m = g.add_node("m", 8, true, Role::kMicroarchitectural);
  const NodeId w1 = g.add_node("w1", 8, false, Role::kWire);
  const NodeId w2 = g.add_node("w2", 8, false, Role::kWire);
  const NodeId a = g.add_node("rf.x1", 64, true, Role::kArchitectural);
  g.add_edge(m, w1);
  g.add_edge(w1, w2);
  g.add_edge(w2, w1);  // combinational loop
  g.add_edge(w2, a);
  const PdlcList list = extract_pdlc(g);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].source, m);
}

TEST(Pdlc, EndToEndFromRtl) {
  // Pipeline: secret (microarch reg) -> staging wire -> x1 (arch reg).
  const auto design = rtl::parse(R"(
    module cpu(input clk, input [63:0] in, output [63:0] out);
      reg [63:0] spec_buffer;
      reg [63:0] x1;
      wire [63:0] fwd;
      always @(posedge clk) spec_buffer <= in;
      assign fwd = spec_buffer ^ 64'h1;
      always @(posedge clk) x1 <= fwd;
      assign out = x1;
    endmodule
  )");
  Ifg g = Ifg::from_elaborated(rtl::elaborate(design, "cpu"));
  const ArchRegDb db = ArchRegDb::riscv();
  EXPECT_EQ(db.label(g), 1u);  // cpu.x1
  const PdlcList list = extract_pdlc(g);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(g.node(list[0].source).name, "cpu.spec_buffer");
  EXPECT_EQ(g.node(list[0].sink).name, "cpu.x1");
}

}  // namespace
}  // namespace specure::ift
