#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rtl/elaborate.hpp"
#include "rtl/lexer.hpp"
#include "rtl/parser.hpp"

namespace specure::rtl {
namespace {

// The paper's Listing 1: a top module with two D-FFs.
constexpr const char* kListing1 = R"(
module D_FF(input d, input clk, output q);
  reg q;
  always @(posedge clk)
    q <= d;
endmodule
module top(input clk, input i, output o);
  reg q1;
  D_FF df1 (.d(i), .clk(clk), .q(q1));
  D_FF df2 (.d(q1), .clk(clk), .q(o));
endmodule
)";

TEST(Lexer, BasicTokens) {
  const auto toks = lex("module foo; assign a = b + 4'hF; endmodule");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_TRUE(toks[0].is_kw("module"));
  EXPECT_EQ(toks[1].kind, TokKind::kIdent);
  EXPECT_EQ(toks[1].text, "foo");
  EXPECT_EQ(toks.back().kind, TokKind::kEof);
}

TEST(Lexer, BasedLiterals) {
  auto toks = lex("4'b1010 8'hff 12'd100 'h1F 16'hDEAD");
  ASSERT_EQ(toks.size(), 6u);  // 5 numbers + EOF
  EXPECT_EQ(toks[0].value, 10u);
  EXPECT_EQ(toks[0].width, 4u);
  EXPECT_EQ(toks[1].value, 0xffu);
  EXPECT_EQ(toks[1].width, 8u);
  EXPECT_EQ(toks[2].value, 100u);
  EXPECT_EQ(toks[3].value, 0x1fu);
  EXPECT_EQ(toks[4].value, 0xdeadu);
}

TEST(Lexer, XZBitsTreatedAsZero) {
  auto toks = lex("4'b1x0z");
  EXPECT_EQ(toks[0].value, 0b1000u);
}

TEST(Lexer, UnderscoresInLiterals) {
  auto toks = lex("32'hdead_beef 1_000");
  EXPECT_EQ(toks[0].value, 0xdeadbeefu);
  EXPECT_EQ(toks[1].value, 1000u);
}

TEST(Lexer, CommentsSkipped) {
  auto toks = lex("a // line comment\n b /* block\ncomment */ c");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, DirectivesSkipped) {
  auto toks = lex("`timescale 1ns/1ps\nmodule");
  EXPECT_TRUE(toks[0].is_kw("module"));
}

TEST(Lexer, MultiCharPuncts) {
  auto toks = lex("a <= b == c && d << 2");
  EXPECT_TRUE(toks[1].is_punct("<="));
  EXPECT_TRUE(toks[3].is_punct("=="));
  EXPECT_TRUE(toks[5].is_punct("&&"));
  EXPECT_TRUE(toks[7].is_punct("<<"));
}

TEST(Lexer, UnterminatedCommentThrows) {
  EXPECT_THROW(lex("a /* never closed"), LexError);
}

TEST(Lexer, PositionsTracked) {
  auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
}

TEST(Parser, Listing1Structure) {
  const Design d = parse(kListing1);
  ASSERT_EQ(d.modules.size(), 2u);
  const Module* dff = d.find("D_FF");
  ASSERT_NE(dff, nullptr);
  EXPECT_EQ(dff->port_order.size(), 3u);
  EXPECT_EQ(dff->always_blocks.size(), 1u);
  EXPECT_FALSE(dff->always_blocks[0].combinational);
  const Module* top = d.find("top");
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->instances.size(), 2u);
  EXPECT_EQ(top->instances[0].instance_name, "df1");
  EXPECT_EQ(top->instances[0].connections.size(), 3u);
}

TEST(Parser, ClassicPortStyle) {
  const Design d = parse(R"(
    module m(a, b, y);
      input a, b;
      output y;
      assign y = a & b;
    endmodule
  )");
  const Module* m = d.find("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->port_order.size(), 3u);
  EXPECT_EQ(m->nets.size(), 3u);
  EXPECT_EQ(m->assigns.size(), 1u);
}

TEST(Parser, VectorsAndParameters) {
  const Design d = parse(R"(
    module m #(parameter W = 8) (input [W-1:0] a, output [W-1:0] y);
      parameter DEPTH = 4;
      wire [W-1:0] tmp;
      assign tmp = a + DEPTH;
      assign y = tmp;
    endmodule
  )");
  const Module* m = d.find("m");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->params.size(), 2u);
  EXPECT_EQ(m->params[0].name, "W");
}

TEST(Parser, IfElseCase) {
  const Design d = parse(R"(
    module m(input clk, input [1:0] sel, input a, input b, output reg y);
      always @(posedge clk) begin
        if (sel == 2'b00) y <= a;
        else if (sel == 2'b01) y <= b;
        else begin
          case (sel)
            2'b10: y <= a & b;
            default: y <= 1'b0;
          endcase
        end
      end
    endmodule
  )");
  ASSERT_NE(d.find("m"), nullptr);
  EXPECT_EQ(d.find("m")->always_blocks.size(), 1u);
}

TEST(Parser, TernaryAndConcat) {
  const Design d = parse(R"(
    module m(input s, input [3:0] a, input [3:0] b, output [7:0] y);
      assign y = s ? {a, b} : {b, a};
    endmodule
  )");
  const Module* m = d.find("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->assigns[0].rhs->kind, ExprKind::kTernary);
}

TEST(Parser, BitAndPartSelect) {
  const Design d = parse(R"(
    module m(input [7:0] a, output y, output [3:0] z);
      assign y = a[3];
      assign z = a[7:4];
    endmodule
  )");
  const Module* m = d.find("m");
  EXPECT_EQ(m->assigns[0].rhs->kind, ExprKind::kIndex);
  EXPECT_EQ(m->assigns[1].rhs->kind, ExprKind::kRange);
}

TEST(Parser, MemoryDeclaration) {
  const Design d = parse(R"(
    module m(input clk, input [3:0] addr, input [7:0] wdata, output [7:0] rdata);
      reg [7:0] mem [0:15];
      always @(posedge clk) mem[addr] <= wdata;
      assign rdata = mem[addr];
    endmodule
  )");
  const Module* m = d.find("m");
  bool found_mem = false;
  for (const auto& n : m->nets) {
    if (n.name == "mem") {
      found_mem = true;
      EXPECT_NE(n.array_msb, nullptr);
    }
  }
  EXPECT_TRUE(found_mem);
}

TEST(Parser, PositionalConnections) {
  const Design d = parse(R"(
    module inv(input a, output y); assign y = !a; endmodule
    module top(input i, output o);
      inv u0 (i, o);
    endmodule
  )");
  const Module* top = d.find("top");
  ASSERT_EQ(top->instances.size(), 1u);
  EXPECT_TRUE(top->instances[0].connections[0].port.empty());
}

TEST(Parser, SyntaxErrorsThrow) {
  EXPECT_THROW(parse("module m(input a; endmodule"), ParseError);
  EXPECT_THROW(parse("module m(); wire w endmodule"), ParseError);
  EXPECT_THROW(parse("garbage"), ParseError);
  EXPECT_THROW(parse("module m(); always begin x = 1; end endmodule"),
               ParseError);  // missing sensitivity list
}

// ------------------------------------------------------- elaboration ----

TEST(Elaborate, Listing1MatchesPaperExactly) {
  const Design d = parse(kListing1);
  const ElaboratedDesign e = elaborate(d, "top");

  // Paper: R has 10 signals.
  const std::set<std::string> expected_signals = {
      "top.q1",      "top.clk",     "top.i",       "top.o",
      "top.df1.d",   "top.df1.q",   "top.df1.clk", "top.df2.d",
      "top.df2.clk", "top.df2.q"};
  std::set<std::string> actual;
  for (const auto& s : e.signals()) actual.insert(s.name);
  EXPECT_EQ(actual, expected_signals);

  // Paper: F has 8 edges (note: clk does NOT flow into q).
  const std::set<std::pair<std::string, std::string>> expected_flows = {
      {"top.clk", "top.df1.clk"}, {"top.clk", "top.df2.clk"},
      {"top.i", "top.df1.d"},     {"top.df1.d", "top.df1.q"},
      {"top.df1.q", "top.q1"},    {"top.q1", "top.df2.d"},
      {"top.df2.d", "top.df2.q"}, {"top.df2.q", "top.o"}};
  std::set<std::pair<std::string, std::string>> flows;
  for (const auto& [src, dst] : e.flows()) {
    flows.emplace(e.signals()[src].name, e.signals()[dst].name);
  }
  EXPECT_EQ(flows, expected_flows);
}

TEST(Elaborate, RegistersDetected) {
  const Design d = parse(kListing1);
  const ElaboratedDesign e = elaborate(d, "top");
  EXPECT_TRUE(e.find("top.df1.q")->is_register);
  EXPECT_TRUE(e.find("top.df2.q")->is_register);
  EXPECT_FALSE(e.find("top.clk")->is_register);
  EXPECT_FALSE(e.find("top.i")->is_register);
}

TEST(Elaborate, TopPortsFlagged) {
  const Design d = parse(kListing1);
  const ElaboratedDesign e = elaborate(d, "top");
  EXPECT_TRUE(e.find("top.i")->is_top_input);
  EXPECT_TRUE(e.find("top.o")->is_top_output);
  EXPECT_FALSE(e.find("top.df1.q")->is_top_input);
}

TEST(Elaborate, WidthsFromParameters) {
  const Design d = parse(R"(
    module child #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
      assign y = a;
    endmodule
    module top(input [15:0] i, output [15:0] o);
      child #(.W(16)) c (.a(i), .y(o));
    endmodule
  )");
  const ElaboratedDesign e = elaborate(d, "top");
  EXPECT_EQ(e.find("top.c.a")->width, 16u);
  EXPECT_EQ(e.find("top.i")->width, 16u);
}

TEST(Elaborate, ImplicitFlowsFromConditions) {
  const Design d = parse(R"(
    module m(input clk, input sel, input a, output reg y);
      always @(posedge clk) begin
        if (sel) y <= a;
      end
    endmodule
  )");
  {
    const ElaboratedDesign e = elaborate(d, "m");
    std::set<std::pair<std::string, std::string>> flows;
    for (const auto& [s, t] : e.flows())
      flows.emplace(e.signals()[s].name, e.signals()[t].name);
    EXPECT_TRUE(flows.count({"m.sel", "m.y"}));
    EXPECT_TRUE(flows.count({"m.a", "m.y"}));
    EXPECT_FALSE(flows.count({"m.clk", "m.y"}));  // clocks never flow
  }
  {
    ElabOptions opts;
    opts.implicit_flows = false;
    const ElaboratedDesign e = elaborate(d, "m", opts);
    std::set<std::pair<std::string, std::string>> flows;
    for (const auto& [s, t] : e.flows())
      flows.emplace(e.signals()[s].name, e.signals()[t].name);
    EXPECT_FALSE(flows.count({"m.sel", "m.y"}));
    EXPECT_TRUE(flows.count({"m.a", "m.y"}));
  }
}

TEST(Elaborate, MemoryAddressFlowsToData) {
  const Design d = parse(R"(
    module m(input clk, input [3:0] addr, input [7:0] wdata, output [7:0] rdata);
      reg [7:0] mem [0:15];
      always @(posedge clk) mem[addr] <= wdata;
      assign rdata = mem[addr];
    endmodule
  )");
  const ElaboratedDesign e = elaborate(d, "m");
  std::set<std::pair<std::string, std::string>> flows;
  for (const auto& [s, t] : e.flows())
    flows.emplace(e.signals()[s].name, e.signals()[t].name);
  EXPECT_TRUE(flows.count({"m.addr", "m.mem"}));
  EXPECT_TRUE(flows.count({"m.wdata", "m.mem"}));
  EXPECT_TRUE(flows.count({"m.mem", "m.rdata"}));
  EXPECT_TRUE(flows.count({"m.addr", "m.rdata"}));
}

TEST(Elaborate, CaseLabelsAreImplicitSources) {
  const Design d = parse(R"(
    module m(input clk, input [1:0] sel, input a, input b, output reg y);
      always @(posedge clk)
        case (sel)
          2'b00: y <= a;
          default: y <= b;
        endcase
    endmodule
  )");
  const ElaboratedDesign e = elaborate(d, "m");
  std::set<std::pair<std::string, std::string>> flows;
  for (const auto& [s, t] : e.flows())
    flows.emplace(e.signals()[s].name, e.signals()[t].name);
  EXPECT_TRUE(flows.count({"m.sel", "m.y"}));
}

TEST(Elaborate, DeepHierarchy) {
  const Design d = parse(R"(
    module leaf(input a, output y); assign y = ~a; endmodule
    module mid(input a, output y);
      wire t;
      leaf l1 (.a(a), .y(t));
      leaf l2 (.a(t), .y(y));
    endmodule
    module top(input i, output o);
      mid m1 (.a(i), .y(o));
    endmodule
  )");
  const ElaboratedDesign e = elaborate(d, "top");
  EXPECT_TRUE(e.has("top.m1.l1.a"));
  EXPECT_TRUE(e.has("top.m1.l2.y"));
  EXPECT_TRUE(e.has("top.m1.t"));
}

TEST(Elaborate, MissingModuleThrows) {
  const Design d = parse("module top(input i, output o); ghost g(.a(i), .y(o)); endmodule");
  EXPECT_THROW(elaborate(d, "top"), ElabError);
  EXPECT_THROW(elaborate(d, "nonexistent"), ElabError);
}

TEST(Elaborate, UnknownPortThrows) {
  const Design d = parse(R"(
    module inv(input a, output y); assign y = !a; endmodule
    module top(input i, output o);
      inv u (.bogus(i), .y(o));
    endmodule
  )");
  EXPECT_THROW(elaborate(d, "top"), ElabError);
}

TEST(Elaborate, DuplicateFlowsDeduplicated) {
  const Design d = parse(R"(
    module m(input a, output x, output y);
      assign x = a + a + a;
      assign y = a;
    endmodule
  )");
  const ElaboratedDesign e = elaborate(d, "m");
  int a_to_x = 0;
  for (const auto& [s, t] : e.flows()) {
    if (e.signals()[s].name == "m.a" && e.signals()[t].name == "m.x") ++a_to_x;
  }
  EXPECT_EQ(a_to_x, 1);
}

TEST(Elaborate, ConstantsProduceNoFlows) {
  const Design d = parse(R"(
    module m(output [7:0] y);
      assign y = 8'hff;
    endmodule
  )");
  const ElaboratedDesign e = elaborate(d, "m");
  EXPECT_EQ(e.flow_count(), 0u);
}

}  // namespace
}  // namespace specure::rtl
