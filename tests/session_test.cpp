// Session coverage: the typed event/observer API, composable stop
// conditions (budgets + custom), and the batch-determinism contract
// holding through the new path (including the deprecated SpecureEngine
// shim delegating onto it).
#include <gtest/gtest.h>

#include <vector>

#include "core/session.hpp"
#include "core/specure.hpp"

namespace specure::core {
namespace {

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].iteration, b.history[i].iteration);
    EXPECT_EQ(a.history[i].covered_pdlc, b.history[i].covered_pdlc);
    EXPECT_EQ(a.history[i].coverage_points, b.history[i].coverage_points);
    EXPECT_EQ(a.history[i].vulns_found, b.history[i].vulns_found);
    EXPECT_EQ(a.history[i].cycles, b.history[i].cycles);
  }
  EXPECT_EQ(a.first_detection, b.first_detection);
  EXPECT_EQ(a.total_windows, b.total_windows);
  EXPECT_EQ(a.mispredicted_windows, b.mispredicted_windows);
  EXPECT_EQ(a.pdlc_total, b.pdlc_total);
}

CampaignSpec small_spec(std::uint64_t iterations, std::uint64_t seed,
                        std::size_t batch = 8) {
  CampaignSpec spec = CampaignSpec::preset("zenbleed");
  spec.rng_seed = seed;
  spec.batch_size = batch;
  spec.jobs = 1;
  spec.budget.iterations = iterations;
  return spec;
}

TEST(Session, InvalidSpecThrowsAtConstruction) {
  CampaignSpec spec;
  spec.batch_size = 0;
  EXPECT_THROW(Session{spec}, SpecError);
}

TEST(Session, EventsAreConsistentWithTheResult) {
  CampaignSpec spec = small_spec(120, 5);
  spec.progress_interval = 25;
  Session session(spec);

  std::vector<std::uint64_t> progress_iters;
  std::size_t coverage_events = 0;
  std::size_t lp_gain_from_events = 0;
  std::size_t vuln_events = 0;
  std::size_t batch_events = 0;
  std::uint64_t last_merged = 0;
  session.on_progress([&](const ProgressEvent& e) {
        EXPECT_EQ(e.budget_iterations, 120u);
        progress_iters.push_back(e.iteration);
      })
      .on_new_coverage([&](const CoverageEvent& e) {
        ++coverage_events;
        lp_gain_from_events += e.new_lp_channels;
        EXPECT_GT(e.new_lp_channels + e.new_coverage_points, 0u);
      })
      .on_vuln([&](const VulnEvent& e) {
        ++vuln_events;
        EXPECT_FALSE(e.report.sink_signal.empty());
        EXPECT_GT(e.iteration, 0u);
      })
      .on_batch_merged([&](const BatchEvent& e) {
        ++batch_events;
        EXPECT_EQ(e.batch_jobs, 8u);
        EXPECT_GT(e.merged_iterations, last_merged);
        last_merged = e.merged_iterations;
      });

  const CampaignResult result = session.run();
  ASSERT_EQ(result.history.size(), 120u);

  // Progress fired at the configured cadence, in order.
  ASSERT_GE(progress_iters.size(), 4u);
  for (std::size_t i = 0; i < progress_iters.size(); ++i) {
    EXPECT_EQ(progress_iters[i], 25u * (i + 1));
  }
  // One vuln event per distinct finding, and the coverage events account
  // for every LP channel the campaign covered.
  EXPECT_EQ(vuln_events, result.vulns.size());
  EXPECT_EQ(lp_gain_from_events, result.history.back().covered_pdlc);
  EXPECT_GT(coverage_events, 0u);
  EXPECT_EQ(batch_events, 120u / 8u);
}

TEST(Session, ObserversDoNotPerturbTheCampaign) {
  Session bare(small_spec(96, 33, 16));
  Session observed(small_spec(96, 33, 16));
  std::size_t noise = 0;
  observed.on_new_coverage([&](const CoverageEvent&) { ++noise; })
      .on_batch_merged([&](const BatchEvent&) { ++noise; })
      .on_vuln([&](const VulnEvent&) { ++noise; });
  expect_identical(bare.run(), observed.run());
  EXPECT_GT(noise, 0u);
}

TEST(Session, DeterministicAcrossWorkerCounts) {
  CampaignSpec serial = small_spec(96, 33, 16);
  CampaignSpec parallel = small_spec(96, 33, 16);
  parallel.jobs = 4;
  expect_identical(Session(serial).run(), Session(parallel).run());
}

TEST(Session, CustomStopConditionsCompose) {
  // Two stops OR together: whichever triggers first ends the campaign.
  Session session(small_spec(1000, 22, 16));
  session.add_stop(Session::stop_after_iterations(7));
  session.add_stop(Session::stop_after_iterations(500));
  const CampaignResult result = session.run();
  EXPECT_EQ(result.history.size(), 7u);
}

TEST(Session, MaxVulnsBudgetStops) {
  CampaignSpec spec = small_spec(3500, 1, 1);
  spec.budget.max_vulns = 1;
  const CampaignResult result = Session(spec).run();
  // One merge can surface several distinct findings at once, so the
  // budget is a threshold, not an exact count.
  ASSERT_GE(result.vulns.size(), 1u);
  // Stopped at the discovering iteration, not the full budget.
  EXPECT_LT(result.history.size(), 3500u);
  for (const auto& [key, iteration] : result.first_detection) {
    EXPECT_EQ(iteration, result.history.size()) << key;
  }
}

TEST(Session, PlateauBudgetStopsAfterFlatCoverage) {
  CampaignSpec spec = small_spec(5000, 3, 16);
  spec.budget.plateau = 40;
  const CampaignResult result = Session(spec).run();
  ASSERT_LT(result.history.size(), 5000u);
  // The last `plateau` merged iterations produced no new LP coverage.
  const std::size_t n = result.history.size();
  const std::size_t final_lp = result.history[n - 1].covered_pdlc;
  EXPECT_EQ(result.history[n - 40].covered_pdlc, final_lp);
  EXPECT_GT(final_lp, 0u);
}

TEST(Session, PlateauIsDeterministic) {
  CampaignSpec spec = small_spec(5000, 3, 16);
  spec.budget.plateau = 40;
  const CampaignResult a = Session(spec).run();
  spec.jobs = 3;
  const CampaignResult b = Session(spec).run();
  expect_identical(a, b);
}

TEST(Session, WallClockBudgetStops) {
  CampaignSpec spec = small_spec(2000000, 9, 4);
  spec.budget.max_seconds = 0.05;
  const CampaignResult result = Session(spec).run();
  EXPECT_LT(result.history.size(), 2000000u);
  EXPECT_GE(result.seconds, 0.05);
}

TEST(Session, RepeatedRunsAreIndependentCampaigns) {
  Session session(small_spec(40, 11, 8));
  const CampaignResult first = session.run();
  const CampaignResult second = session.run();
  expect_identical(first, second);
}

TEST(Session, StopOnFindingHelper) {
  CampaignSpec spec = small_spec(3500, 1, 1);
  Session session(spec);
  session.add_stop(Session::stop_on_finding("core.rf."));
  const CampaignResult result = session.run();
  if (!result.vulns.empty()) {
    bool matched = false;
    for (const auto& [key, iter] : result.first_detection) {
      matched |= key.find("core.rf.") != std::string::npos;
    }
    EXPECT_TRUE(matched);
    EXPECT_LT(result.history.size(), 3500u);
  }
}

TEST(EngineShim, MatchesSessionExactly) {
  EngineOptions opts;
  opts.rng_seed = 33;
  opts.jobs = 2;
  opts.batch_size = 16;
  opts.core.vuln.zenbleed_emulation = true;
  SpecureEngine engine(opts);
  const CampaignResult via_shim = engine.run(96);

  CampaignSpec spec = opts.to_spec();
  spec.budget.iterations = 96;
  const CampaignResult via_session = Session(spec).run();
  expect_identical(via_shim, via_session);
}

TEST(EngineShim, RepeatedRunsDoNotStackStopConditions) {
  EngineOptions opts;
  opts.rng_seed = 22;
  opts.batch_size = 8;
  SpecureEngine engine(opts);
  const auto limited = engine.run(
      100, [](const CampaignResult& r) { return r.history.size() >= 5; });
  EXPECT_EQ(limited.history.size(), 5u);
  // The previous run's stop must not leak into this one.
  const auto full = engine.run(30);
  EXPECT_EQ(full.history.size(), 30u);
}

TEST(EngineShim, JobsDefaultIsAllHardwareThreads) {
  // The library and CLI defaults are unified: jobs == 0 means every
  // hardware thread (clipped to the batch size, which defaults to 1).
  const EngineOptions opts;
  EXPECT_EQ(opts.jobs, 0u);
  const CampaignSpec spec;
  EXPECT_EQ(spec.jobs, 0u);
}

}  // namespace
}  // namespace specure::core
