#include <gtest/gtest.h>

#include <set>

#include "fuzz/corpus.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/seeds.hpp"
#include "riscv/decode.hpp"
#include "sim/core.hpp"

namespace specure::fuzz {
namespace {

using riscv::Program;

Program sample_program(util::Rng& rng, std::size_t len = 32) {
  return riscv::random_program(rng, len);
}

class MutationOpTest : public ::testing::TestWithParam<int> {};

TEST_P(MutationOpTest, ProducesValidProgram) {
  const auto op = static_cast<MutationOp>(GetParam());
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  for (int trial = 0; trial < 50; ++trial) {
    const Program in = sample_program(rng, 1 + rng.below(40));
    const Program out = apply_mutation(in, op, rng);
    EXPECT_FALSE(out.code.empty());
    // Mutation must not explode the program size by more than one instr.
    EXPECT_LE(out.code.size(), in.code.size() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, MutationOpTest,
                         ::testing::Range(0, static_cast<int>(
                                                 MutationOp::kCount)),
                         [](const auto& info) {
                           return std::string(mutation_name(
                               static_cast<MutationOp>(info.param)));
                         });

TEST(Mutator, BitFlipChangesExactlyOneWord) {
  util::Rng rng(5);
  const Program in = sample_program(rng);
  const Program out = apply_mutation(in, MutationOp::kBitFlip, rng);
  ASSERT_EQ(in.code.size(), out.code.size());
  int diffs = 0;
  for (std::size_t i = 0; i < in.code.size(); ++i) {
    if (in.code[i] != out.code[i]) {
      ++diffs;
      EXPECT_EQ(__builtin_popcount(in.code[i] ^ out.code[i]), 1);
    }
  }
  EXPECT_EQ(diffs, 1);
}

TEST(Mutator, DeleteShrinksByOne) {
  util::Rng rng(6);
  const Program in = sample_program(rng, 10);
  const Program out = apply_mutation(in, MutationOp::kDeleteInstruction, rng);
  EXPECT_EQ(out.code.size(), 9u);
}

TEST(Mutator, DeleteNeverEmpties) {
  util::Rng rng(7);
  Program p;
  p.code.push_back(riscv::enc_nop());
  const Program out = apply_mutation(p, MutationOp::kDeleteInstruction, rng);
  EXPECT_EQ(out.code.size(), 1u);
}

TEST(Mutator, CloneGrowsByOne) {
  util::Rng rng(8);
  const Program in = sample_program(rng, 10);
  const Program out = apply_mutation(in, MutationOp::kCloneInstruction, rng);
  EXPECT_EQ(out.code.size(), 11u);
}

TEST(Mutator, ReplaceKeepsDecodability) {
  util::Rng rng(9);
  Program p = sample_program(rng, 20);
  for (int i = 0; i < 100; ++i) {
    p = apply_mutation(p, MutationOp::kReplaceInstruction, rng);
  }
  std::size_t valid = 0;
  for (std::uint32_t w : p.code) valid += riscv::decode(w).valid();
  EXPECT_EQ(valid, p.code.size());
}

TEST(Mutator, ImmediateTweakKeepsOpcode) {
  util::Rng rng(10);
  Program p;
  p.code.push_back(riscv::enc_i(riscv::Op::kAddi, 5, 6, 100));
  const Program out = apply_mutation(p, MutationOp::kMutateImmediate, rng);
  const auto d = riscv::decode(out.code[0]);
  EXPECT_EQ(d.op, riscv::Op::kAddi);
  EXPECT_EQ(d.rd, 5);
  EXPECT_EQ(d.rs1, 6);
}

TEST(Mutator, StackedMutationRespectsBounds) {
  util::Rng rng(11);
  MutatorOptions opts;
  opts.max_code_len = 16;
  opts.max_data_len = 32;
  Program p = sample_program(rng, 15);
  for (int i = 0; i < 200; ++i) {
    p = mutate(p, rng, opts);
    EXPECT_LE(p.code.size(), opts.max_code_len);
    EXPECT_LE(p.data.size(), opts.max_data_len);
    EXPECT_FALSE(p.code.empty());
  }
}

TEST(Mutator, SpliceCombinesPrograms) {
  util::Rng rng(12);
  Program a, b;
  for (int i = 0; i < 8; ++i) a.code.push_back(riscv::enc_i(riscv::Op::kAddi, 1, 1, 1));
  for (int i = 0; i < 8; ++i) b.code.push_back(riscv::enc_i(riscv::Op::kAddi, 2, 2, 2));
  bool saw_mix = false;
  for (int i = 0; i < 50; ++i) {
    const Program s = splice(a, b, rng);
    EXPECT_FALSE(s.code.empty());
    bool has_a = false, has_b = false;
    for (auto w : s.code) {
      has_a |= w == a.code[0];
      has_b |= w == b.code[0];
    }
    saw_mix |= has_a && has_b;
  }
  EXPECT_TRUE(saw_mix);
}

TEST(Mutator, DeterministicGivenSeed) {
  util::Rng r1(77), r2(77);
  const Program in = sample_program(r1);
  util::Rng m1(42), m2(42);
  EXPECT_EQ(mutate(in, m1), mutate(in, m2));
}

// ---------------------------------------------------------------- seeds --

TEST(Seeds, SpecialSeedsBuild) {
  util::Rng rng(1);
  const auto seeds = special_seeds(rng);
  ASSERT_EQ(seeds.size(), 3u);
  std::set<std::string> names;
  for (const auto& s : seeds) {
    names.insert(s.name);
    EXPECT_FALSE(s.program.code.empty());
    for (std::uint32_t w : s.program.code) {
      EXPECT_TRUE(riscv::decode(w).valid()) << s.name;
    }
  }
  EXPECT_TRUE(names.count("branch_mispredict"));
  EXPECT_TRUE(names.count("branch_target_injection"));
  EXPECT_TRUE(names.count("rsb_manipulation"));
}

class SpecialSeedWindows : public ::testing::TestWithParam<int> {};

TEST_P(SpecialSeedWindows, OpensMispredictedWindow) {
  // Every special seed must actually create at least one *mispredicted*
  // speculative window on the PUT — that is their entire purpose.
  util::Rng rng(2);
  const auto seeds = special_seeds(rng);
  const auto& seed = seeds[static_cast<std::size_t>(GetParam())];
  sim::Simulator sim{sim::CoreConfig{}};
  const auto res = sim.run(seed.program);
  const auto& db = sim.signal_db();
  const auto mid = db.id_of("core.rob.brupdate_mispredict");
  bool mispredicted = false;
  for (std::size_t i = 0; i < res.trace.size(); ++i) {
    mispredicted |= res.trace[i].values[mid] != 0;
  }
  EXPECT_TRUE(mispredicted) << seed.name;
}

INSTANTIATE_TEST_SUITE_P(All, SpecialSeedWindows, ::testing::Range(0, 3),
                         [](const auto& info) {
                           switch (info.param) {
                             case 0: return "branch_mispredict";
                             case 1: return "bti";
                             default: return "rsb";
                           }
                         });

TEST(Seeds, RandomSeedsRequestedCount) {
  util::Rng rng(3);
  const auto seeds = random_seeds(rng, 5, 30);
  EXPECT_EQ(seeds.size(), 5u);
  for (const auto& s : seeds) EXPECT_GE(s.program.code.size(), 30u - 5);
}

// --------------------------------------------------------------- corpus --

TEST(Corpus, AddAndSelect) {
  util::Rng rng(4);
  Corpus corpus(8);
  for (int i = 0; i < 5; ++i) {
    corpus.add(sample_program(rng, 4), "seed" + std::to_string(i), 0);
  }
  EXPECT_EQ(corpus.size(), 5u);
  for (int i = 0; i < 50; ++i) {
    const auto& e = corpus.select(rng);
    EXPECT_FALSE(e.program.code.empty());
  }
}

TEST(Corpus, EvictsAtCapacity) {
  util::Rng rng(5);
  Corpus corpus(4);
  for (int i = 0; i < 20; ++i) {
    corpus.add(sample_program(rng, 4), "x", static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(corpus.size(), 4u);
}

TEST(Corpus, EnergyDecaysWithSelection) {
  util::Rng rng(6);
  Corpus corpus(4);
  corpus.add(sample_program(rng, 4), "only", 0);
  const double before = corpus.entries()[0].energy;
  for (int i = 0; i < 10; ++i) corpus.select(rng);
  EXPECT_LT(corpus.entries()[0].energy, before);
  EXPECT_EQ(corpus.entries()[0].hits, 10u);
}

TEST(Fuzzer, ReplaysSeedsFirst) {
  FuzzerOptions opts;
  opts.random_seed_count = 2;
  Fuzzer fuzzer(opts, 99);
  // 3 special + 2 random seeds replayed before mutations start.
  std::set<std::size_t> seed_sizes;
  for (int i = 0; i < 5; ++i) {
    const Program p = fuzzer.next();
    EXPECT_FALSE(p.code.empty());
  }
  EXPECT_EQ(fuzzer.corpus().size(), 5u);
  EXPECT_EQ(fuzzer.iteration(), 5u);
}

TEST(Fuzzer, WithoutSpecialSeeds) {
  FuzzerOptions opts;
  opts.use_special_seeds = false;
  opts.random_seed_count = 2;
  Fuzzer fuzzer(opts, 99);
  fuzzer.next();
  fuzzer.next();
  fuzzer.next();  // first mutation round
  EXPECT_EQ(fuzzer.corpus().size(), 2u);
}

TEST(Fuzzer, InterestingInputsEnterCorpus) {
  FuzzerOptions opts;
  opts.random_seed_count = 1;
  opts.use_special_seeds = false;
  Fuzzer fuzzer(opts, 7);
  fuzzer.next();
  const Program p = fuzzer.next();
  const std::size_t before = fuzzer.corpus().size();
  fuzzer.report_interesting(p);
  EXPECT_EQ(fuzzer.corpus().size(), before + 1);
}

TEST(Fuzzer, DeterministicCampaign) {
  FuzzerOptions opts;
  Fuzzer f1(opts, 123), f2(opts, 123);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(f1.next(), f2.next());
  }
}

}  // namespace
}  // namespace specure::fuzz
