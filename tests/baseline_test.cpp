#include <gtest/gtest.h>

#include "baseline/exhaustive.hpp"
#include "baseline/specdoctor.hpp"
#include "fuzz/seeds.hpp"
#include "riscv/program.hpp"

namespace specure::baseline {
namespace {

namespace csr = riscv::csr;
using riscv::Op;
using riscv::ProgramBuilder;

constexpr std::uint8_t A0 = 10, T0 = 5, T1 = 6, T2 = 7, T3 = 28, T4 = 29;

TEST(Specdoctor, ComponentHashStableForSecretIndependentRun) {
  // A program that never touches the secret region: both secret variants
  // must hash identically for every instrumented component.
  ProgramBuilder b;
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.ld(T0, A0, 0);
  b.sd(T0, A0, 8);
  b.ecall();
  sim::Simulator sim{sim::CoreConfig{}};
  auto p1 = b.build();
  auto p2 = p1;
  p1.data.resize(1024, 0);
  p2.data.resize(1024, 0);
  for (std::size_t i = 512; i < 576; ++i) p2.data[i] = 0xee;
  const auto r1 = sim.run(p1);
  const auto r2 = sim.run(p2);
  EXPECT_EQ(component_hash(r1, sim.signal_db(), "core.dcache."),
            component_hash(r2, sim.signal_db(), "core.dcache."));
  EXPECT_EQ(component_hash(r1, sim.signal_db(), "core.bp."),
            component_hash(r2, sim.signal_db(), "core.bp."));
}

TEST(Specdoctor, SecretDependentAddressDiverges) {
  // Load a secret byte and use it as an address index: the cache metadata
  // must diverge between the two secret variants.
  ProgramBuilder b;
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.ld(T3, A0, 512);                          // secret qword
  b.raw(riscv::enc_i(Op::kAndi, T3, T3, 1023));
  b.slli(T3, T3, 3);
  b.raw(riscv::enc_i(Op::kAndi, T3, T3, 2047));
  b.add(T4, A0, T3);
  b.ld(T2, T4, 0);                            // secret-indexed access
  b.ecall();
  sim::Simulator sim{sim::CoreConfig{}};
  auto p1 = b.build();
  auto p2 = p1;
  p1.data.resize(2048, 0);
  p2.data.resize(2048, 0);
  for (std::size_t i = 512; i < 576; ++i) {
    p1.data[i] = static_cast<std::uint8_t>(0x11 + i);
    p2.data[i] = static_cast<std::uint8_t>(0xee + i);
  }
  const auto r1 = sim.run(p1);
  const auto r2 = sim.run(p2);
  EXPECT_NE(component_hash(r1, sim.signal_db(), "core.dcache."),
            component_hash(r2, sim.signal_db(), "core.dcache."));
}

TEST(Specdoctor, CampaignRunsAndIsBounded) {
  SpecdoctorOptions opts;
  opts.fuzzer.use_special_seeds = false;
  opts.rng_seed = 3;
  SpecdoctorFuzzer fuzzer(opts);
  const auto res = fuzzer.run(30);
  EXPECT_EQ(res.iterations_run, 30u);
}

TEST(Specdoctor, CannotSeeMwaitLeak) {
  // Even when an (M)WAIT leak is armed and triggered, SpecDoctor's
  // instrumented-module comparison has no view of the timer CSR, and the
  // leak does not depend on the secret bytes: no finding may name it.
  SpecdoctorOptions opts;
  opts.core.vuln.mwait_emulation = true;
  opts.rng_seed = 4;
  SpecdoctorFuzzer fuzzer(opts);
  const auto res = fuzzer.run(60);
  for (const auto& f : res.findings) {
    EXPECT_EQ(f.component.find("csr"), std::string::npos);
  }
}

TEST(Specdoctor, StopPredicateHonored) {
  SpecdoctorOptions opts;
  opts.rng_seed = 5;
  SpecdoctorFuzzer fuzzer(opts);
  const auto res = fuzzer.run(1000, [](const SpecdoctorResult& r) {
    return r.iterations_run >= 9;
  });
  EXPECT_EQ(res.iterations_run, 9u);
}

TEST(Exhaustive, FindsSpectreResidueWithinSmallDepth) {
  ExhaustiveOptions opts;
  opts.max_depth = 3;
  opts.state_budget = 400;
  ExhaustiveChecker checker(opts);
  const auto res = checker.run();
  bool cache_residue = false;
  for (const auto& f : res.findings) {
    cache_residue |= f.kind == core::VulnKind::kCacheResidue;
  }
  EXPECT_TRUE(cache_residue)
      << "bounded enumeration must find the branch+double-load residue";
}

TEST(Exhaustive, BudgetExhaustionReported) {
  ExhaustiveOptions opts;
  opts.max_depth = 8;
  opts.state_budget = 50;  // tiny budget: state explosion bites
  ExhaustiveChecker checker(opts);
  const auto res = checker.run();
  EXPECT_TRUE(res.budget_exhausted);
  EXPECT_EQ(res.sequences_tried, 50u);
}

TEST(Exhaustive, MissesCsrArmedVulnerabilities) {
  // The reduced alphabet has no CSR instructions: Zenbleed/(M)WAIT stay
  // invisible no matter the budget.
  ExhaustiveOptions opts;
  opts.core.vuln.mwait_emulation = true;
  opts.core.vuln.zenbleed_emulation = true;
  opts.max_depth = 3;
  opts.state_budget = 300;
  ExhaustiveChecker checker(opts);
  const auto res = checker.run();
  for (const auto& f : res.findings) {
    EXPECT_NE(f.sink_signal, "core.csr.mwait_timer");
    EXPECT_EQ(f.sink_signal.find("core.rf."), std::string::npos);
  }
}

TEST(Exhaustive, AlphabetHasNoCsrInstructions) {
  for (std::uint32_t w : ExhaustiveChecker::alphabet()) {
    EXPECT_FALSE(riscv::is_csr(riscv::decode(w).op));
  }
}

}  // namespace
}  // namespace specure::baseline
