#include <gtest/gtest.h>

#include <sstream>
#include <utility>
#include <vector>

#include "core/report.hpp"

namespace specure::core {
namespace {

CampaignResult sample_result() {
  CampaignResult r;
  r.pdlc_total = 6242;
  r.total_windows = 10;
  r.mispredicted_windows = 4;
  r.seconds = 1.5;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    IterationRecord rec;
    rec.iteration = i;
    rec.covered_pdlc = i * 10;
    rec.coverage_points = i;
    rec.vulns_found = i >= 5 ? 1 : 0;
    r.history.push_back(rec);
  }
  VulnReport v;
  v.kind = VulnKind::kDirectLeak;
  v.sink_signal = "core.rf.x7";
  v.before = 0;
  v.after = 99;
  v.window.start_cycle = 8;
  v.window.end_cycle = 28;
  v.window.inst = 0x00528463;  // BEQ
  v.window.pc = 0x80000018;
  v.root_causes.push_back(
      {"core.rename.maptable_7", {"core.rename.maptable_7", "core.rf.x7"}});
  r.first_detection[finding_key(v)] = 5;
  r.vulns.push_back(std::move(v));
  SpecWindow w;
  w.start_cycle = 8;
  w.end_cycle = 28;
  w.inst = 0x00528463;
  w.pc = 0x80000018;
  w.mispredicted = true;
  r.mst_sample.push_back(w);
  return r;
}

TEST(Report, TextContainsFindingsAndMst) {
  std::ostringstream os;
  write_text_report(os, sample_result());
  const std::string text = os.str();
  EXPECT_NE(text.find("direct-leak"), std::string::npos);
  EXPECT_NE(text.find("core.rf.x7"), std::string::npos);
  EXPECT_NE(text.find("CWE-1342"), std::string::npos);
  EXPECT_NE(text.find("core.rename.maptable_7"), std::string::npos);
  EXPECT_NE(text.find("first detected at iteration 5"), std::string::npos);
  EXPECT_NE(text.find("Misspeculation Table"), std::string::npos);
  EXPECT_NE(text.find("BEQ"), std::string::npos);
}

TEST(Report, JsonWellFormedAndComplete) {
  const std::string json = json_report(sample_result());
  // Structural spot checks (no JSON library in the toolchain).
  EXPECT_NE(json.find("\"campaign\""), std::string::npos);
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  EXPECT_NE(json.find("\"direct-leak\""), std::string::npos);
  EXPECT_NE(json.find("\"pdlc_total\": 6242"), std::string::npos);
  EXPECT_NE(json.find("\"after\": 99"), std::string::npos);
  EXPECT_NE(json.find("\"history\""), std::string::npos);
  // Balanced braces/brackets.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(Report, JsonHistoryDownsampled) {
  const std::string json = json_report(sample_result(), 5);
  std::size_t count = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"iteration\"", pos)) != std::string::npos; ++pos) {
    ++count;
  }
  EXPECT_LE(count, 6u);
  EXPECT_GE(count, 4u);
}

TEST(Report, JsonEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Report, TextEchoesTheScenario) {
  CampaignSpec spec = CampaignSpec::preset("zenbleed");
  spec.rng_seed = 77;
  std::ostringstream os;
  write_text_report(os, sample_result(), &spec);
  const std::string text = os.str();
  EXPECT_NE(text.find("scenario:              zenbleed"), std::string::npos);
  EXPECT_NE(text.find("feedback:              lp"), std::string::npos);
  EXPECT_NE(text.find("rng seed:              77"), std::string::npos);
  EXPECT_NE(text.find("zenbleed=on"), std::string::npos);
}

// Minimal scanner for the flat {"key": value, ...} spec object the
// report embeds (no nested objects inside it, by construction).
std::vector<std::pair<std::string, std::string>> parse_flat_object(
    const std::string& object) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while ((pos = object.find('"', pos)) != std::string::npos) {
    const std::size_t key_end = object.find('"', pos + 1);
    const std::string key = object.substr(pos + 1, key_end - pos - 1);
    std::size_t value_begin = object.find(':', key_end) + 1;
    while (object[value_begin] == ' ') ++value_begin;
    std::size_t value_end;
    if (object[value_begin] == '"') {
      value_end = object.find('"', value_begin + 1) + 1;
      out.emplace_back(key, object.substr(value_begin + 1,
                                          value_end - value_begin - 2));
    } else {
      value_end = object.find_first_of(",}", value_begin);
      out.emplace_back(key, object.substr(value_begin,
                                          value_end - value_begin));
    }
    pos = value_end;
  }
  return out;
}

TEST(Report, JsonSpecEchoRoundTripsIntoAnEqualSpec) {
  CampaignSpec spec = CampaignSpec::preset("cache-monitor");
  spec.set("rob_entries", "32");
  spec.rng_seed = 123;
  spec.budget.iterations = 20;

  const CampaignResult result = sample_result();
  const std::string json = json_report(result, 64, &spec);

  // Extract the flat "spec" object.
  const std::size_t begin = json.find("\"spec\": {");
  ASSERT_NE(begin, std::string::npos);
  const std::size_t open = json.find('{', begin);
  const std::size_t close = json.find('}', open);
  const std::string object = json.substr(open, close - open + 1);

  // Re-applying every echoed key yields the original spec.
  CampaignSpec rebuilt;
  for (const auto& [key, value] : parse_flat_object(object)) {
    rebuilt.set(key, value);
  }
  EXPECT_TRUE(rebuilt == spec);
  EXPECT_EQ(rebuilt.core.rob_entries, 32u);
  EXPECT_EQ(rebuilt.rng_seed, 123u);
  EXPECT_TRUE(rebuilt.detector.monitor_cache);

  // The result fields still match the campaign that was reported.
  EXPECT_NE(json.find("\"iterations\": " +
                      std::to_string(result.history.size())),
            std::string::npos);
  EXPECT_NE(json.find("\"pdlc_total\": " +
                      std::to_string(result.pdlc_total)),
            std::string::npos);

  // Without a spec the report omits the echo (back-compat schema).
  EXPECT_EQ(json_report(result).find("\"spec\""), std::string::npos);
}

TEST(Report, EmptyCampaign) {
  CampaignResult empty;
  std::ostringstream text, json;
  write_text_report(text, empty);
  write_json_report(json, empty);
  EXPECT_NE(text.str().find("findings:              0"), std::string::npos);
  EXPECT_NE(json.str().find("\"findings\": ["), std::string::npos);
}

}  // namespace
}  // namespace specure::core
