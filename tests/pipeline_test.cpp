// Differential coverage for the pipelined sliding-window campaign
// executor (core/session.cpp) and its lock-free plumbing (util/ring.hpp,
// util/atomic_bitset.hpp).
//
// The contract under test: `pipeline = window` (the default) and
// `pipeline = barrier` (the batch-synchronous reference) implement the
// same generation schedule — job k is generated from merged state through
// iteration k - batch_size — so their CampaignResults are bit-identical
// for every worker count, under adversarial worker timing, and across
// mid-window stops.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "util/atomic_bitset.hpp"
#include "util/ring.hpp"

namespace specure::core {
namespace {

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].iteration, b.history[i].iteration);
    EXPECT_EQ(a.history[i].covered_pdlc, b.history[i].covered_pdlc);
    EXPECT_EQ(a.history[i].coverage_points, b.history[i].coverage_points);
    EXPECT_EQ(a.history[i].vulns_found, b.history[i].vulns_found);
    EXPECT_EQ(a.history[i].cycles, b.history[i].cycles);
  }
  ASSERT_EQ(a.vulns.size(), b.vulns.size());
  for (std::size_t i = 0; i < a.vulns.size(); ++i) {
    EXPECT_EQ(finding_key(a.vulns[i]), finding_key(b.vulns[i]));
    EXPECT_EQ(a.vulns[i].sink_signal, b.vulns[i].sink_signal);
    EXPECT_EQ(a.vulns[i].before, b.vulns[i].before);
    EXPECT_EQ(a.vulns[i].after, b.vulns[i].after);
    EXPECT_EQ(a.vulns[i].program, b.vulns[i].program);
  }
  EXPECT_EQ(a.first_detection, b.first_detection);
  ASSERT_EQ(a.mst_sample.size(), b.mst_sample.size());
  for (std::size_t i = 0; i < a.mst_sample.size(); ++i) {
    EXPECT_EQ(a.mst_sample[i].start_cycle, b.mst_sample[i].start_cycle);
    EXPECT_EQ(a.mst_sample[i].end_cycle, b.mst_sample[i].end_cycle);
    EXPECT_EQ(a.mst_sample[i].inst, b.mst_sample[i].inst);
  }
  EXPECT_EQ(a.total_windows, b.total_windows);
  EXPECT_EQ(a.mispredicted_windows, b.mispredicted_windows);
  EXPECT_EQ(a.pdlc_total, b.pdlc_total);
}

CampaignSpec make_spec(const std::string& preset, PipelineMode mode,
                       std::size_t jobs, std::uint64_t iterations,
                       std::uint64_t seed) {
  CampaignSpec spec = CampaignSpec::preset(preset);
  spec.rng_seed = seed;
  spec.jobs = jobs;
  spec.batch_size = 16;
  spec.budget.iterations = iterations;
  spec.pipeline = mode;
  spec.progress_interval = 0;
  return spec;
}

CampaignResult run_campaign(const std::string& preset, PipelineMode mode,
                            std::size_t jobs, std::uint64_t iterations,
                            std::uint64_t seed) {
  Session session(make_spec(preset, mode, jobs, iterations, seed));
  return session.run();
}

void expect_window_matches_barrier(const std::string& preset,
                                   std::uint64_t iterations,
                                   std::uint64_t seed) {
  const CampaignResult barrier =
      run_campaign(preset, PipelineMode::kBarrier, 4, iterations, seed);
  for (const std::size_t jobs : {1u, 2u, 4u}) {
    const CampaignResult window =
        run_campaign(preset, PipelineMode::kWindow, jobs, iterations, seed);
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    expect_identical(barrier, window);
  }
}

TEST(Pipeline, WindowMatchesBarrierDefaultSeed7) {
  expect_window_matches_barrier("default", 120, 7);
}

TEST(Pipeline, WindowMatchesBarrierDefaultSeed9) {
  expect_window_matches_barrier("default", 120, 9);
}

TEST(Pipeline, WindowMatchesBarrierFullSeed7) {
  expect_window_matches_barrier("full", 80, 7);
}

TEST(Pipeline, WindowMatchesBarrierFullSeed9) {
  // The full preset reliably produces findings at this seed, so the
  // comparison covers the detector/dedup/VCD-pending path end to end.
  const CampaignResult barrier =
      run_campaign("full", PipelineMode::kBarrier, 4, 80, 9);
  EXPECT_FALSE(barrier.vulns.empty());
  const CampaignResult window =
      run_campaign("full", PipelineMode::kWindow, 4, 80, 9);
  expect_identical(barrier, window);
}

TEST(Pipeline, InOrderMergeUnderAdversarialWorkerDelays) {
  // Per-job pseudo-random delays force completions back into the merger
  // far out of iteration order; the reorder window must still merge in
  // strict iteration order and reproduce the undelayed reference.
  const CampaignResult reference =
      run_campaign("default", PipelineMode::kBarrier, 4, 80, 7);
  Session delayed(make_spec("default", PipelineMode::kWindow, 4, 80, 7));
  delayed.set_test_job_delay([](const fuzz::FuzzJob& job, std::size_t) {
    const std::uint64_t h = job.iteration * 2654435761u;
    std::this_thread::sleep_for(
        std::chrono::microseconds(100 * ((h >> 16) % 6)));
  });
  expect_identical(reference, delayed.run());
}

TEST(Pipeline, StopConditionMidWindowIsConsistentAcrossModes) {
  // A stop that fires mid-window (7 merges into a 16-wide window) must
  // leave both executors at exactly the same campaign state.
  const auto run_stopped = [](PipelineMode mode) {
    Session session(make_spec("default", mode, 4, 200, 7));
    session.add_stop([](const CampaignResult& r) {
      return r.history.size() >= 7;
    });
    return session.run();
  };
  const CampaignResult barrier = run_stopped(PipelineMode::kBarrier);
  const CampaignResult window = run_stopped(PipelineMode::kWindow);
  EXPECT_EQ(barrier.history.size(), 7u);
  expect_identical(barrier, window);
}

TEST(Pipeline, SpecKeyRoundTripsAndRejectsJunk) {
  CampaignSpec spec;
  EXPECT_EQ(spec.pipeline, PipelineMode::kWindow);  // the default
  spec.set("pipeline", "barrier");
  EXPECT_EQ(spec.pipeline, PipelineMode::kBarrier);
  const CampaignSpec reloaded = CampaignSpec::from_toml_string(spec.to_toml());
  EXPECT_EQ(reloaded.pipeline, PipelineMode::kBarrier);
  EXPECT_THROW(spec.set("pipeline", "turbo"), SpecError);
}

TEST(Pipeline, PipelineStatsCoverEveryJob) {
  Session session(make_spec("default", PipelineMode::kWindow, 2, 48, 7));
  session.run();
  const PipelineStats& stats = session.pipeline_stats();
  ASSERT_EQ(stats.workers.size(), 2u);
  std::uint64_t jobs = 0;
  for (const PipelineWorkerStats& ws : stats.workers) jobs += ws.jobs;
  EXPECT_EQ(jobs, 48u);
  EXPECT_GT(stats.workers[0].execute_seconds +
                stats.workers[1].execute_seconds,
            0.0);
}

// ---------------------------------------------------------------- rings --

TEST(SpscRing, FifoOrderAndWrapAround) {
  util::SpscRing<std::uint32_t> ring(4);
  for (int round = 0; round < 10; ++round) {  // wrap several times
    for (std::uint32_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(ring.push(round * 4 + i));
    }
    std::uint32_t out = 0;
    for (std::uint32_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(ring.pop(out));
      EXPECT_EQ(out, static_cast<std::uint32_t>(round * 4 + i));
    }
    EXPECT_FALSE(ring.pop(out));  // empty again
  }
}

TEST(SpscRing, PopWaitDrainsAfterClose) {
  util::SpscRing<std::uint32_t> ring(8);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  ring.close();
  std::uint32_t out = 0;
  ASSERT_TRUE(ring.pop_wait(out));  // closed but not drained
  EXPECT_EQ(out, 1u);
  ASSERT_TRUE(ring.pop_wait(out));
  EXPECT_EQ(out, 2u);
  EXPECT_FALSE(ring.pop_wait(out));  // closed and drained: returns, no hang
}

TEST(SpscRing, ThreadedProducerConsumer) {
  constexpr std::uint32_t kItems = 50000;
  util::SpscRing<std::uint32_t> ring(64);
  std::thread producer([&ring] {
    for (std::uint32_t i = 0; i < kItems; ++i) {
      while (!ring.push(i)) std::this_thread::yield();
    }
    ring.close();
  });
  std::uint32_t expected = 0;
  std::uint32_t out = 0;
  while (ring.pop_wait(out)) {
    ASSERT_EQ(out, expected);  // SPSC must preserve order exactly
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(MpscRing, ThreadedProducersAllItemsArriveOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 20000;
  util::MpscRing<std::uint32_t> ring(128);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        const auto value =
            static_cast<std::uint32_t>(p * kPerProducer + i);
        while (!ring.push(value)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint8_t> seen(kProducers * kPerProducer, 0);
  std::size_t received = 0;
  std::uint32_t out = 0;
  while (received < kProducers * kPerProducer) {
    if (!ring.pop_wait(out)) break;
    ASSERT_LT(out, seen.size());
    ASSERT_EQ(seen[out], 0) << "duplicate delivery of " << out;
    seen[out] = 1;
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
}

TEST(MpscRing, PushReportsFull) {
  util::MpscRing<std::uint32_t> ring(2);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_FALSE(ring.push(3));  // full: reports instead of overwriting
  std::uint32_t out = 0;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 1u);
  EXPECT_TRUE(ring.push(3));  // slot freed
}

TEST(AtomicBitset, SetTestClear) {
  util::AtomicBitset bits(200);
  EXPECT_EQ(bits.size(), 200u);
  EXPECT_FALSE(bits.test(0));
  EXPECT_FALSE(bits.test(199));
  bits.set(0);
  bits.set(63);
  bits.set(64);  // word boundary
  bits.set(199);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(199));
  EXPECT_FALSE(bits.test(1));
  bits.clear();
  EXPECT_FALSE(bits.test(0));
  EXPECT_FALSE(bits.test(199));
}

TEST(AtomicBitset, ConcurrentSettersConverge) {
  constexpr std::size_t kBits = 4096;
  util::AtomicBitset bits(kBits);
  std::vector<std::thread> setters;
  for (std::size_t t = 0; t < 4; ++t) {
    setters.emplace_back([&bits, t] {
      for (std::size_t i = t; i < kBits; i += 4) bits.set(i);
    });
  }
  for (auto& s : setters) s.join();
  for (std::size_t i = 0; i < kBits; ++i) {
    ASSERT_TRUE(bits.test(i)) << "bit " << i << " lost";
  }
}

}  // namespace
}  // namespace specure::core
