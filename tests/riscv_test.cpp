#include <gtest/gtest.h>

#include "riscv/decode.hpp"
#include "riscv/disasm.hpp"
#include "riscv/encode.hpp"
#include "riscv/program.hpp"
#include "util/rng.hpp"

namespace specure::riscv {
namespace {

TEST(Decode, Addi) {
  // addi x1, x2, -5
  const auto d = decode(enc_i(Op::kAddi, 1, 2, -5));
  EXPECT_EQ(d.op, Op::kAddi);
  EXPECT_EQ(d.rd, 1);
  EXPECT_EQ(d.rs1, 2);
  EXPECT_EQ(d.imm, -5);
}

TEST(Decode, KnownWordsFromSpec) {
  // Hand-checked encodings.
  EXPECT_EQ(decode(0x00000013).op, Op::kAddi);   // nop = addi x0,x0,0
  EXPECT_EQ(decode(0x00000073).op, Op::kEcall);
  EXPECT_EQ(decode(0x00100073).op, Op::kEbreak);
  EXPECT_EQ(decode(0x0000006f).op, Op::kJal);    // jal x0, 0
}

TEST(Decode, PaperTable1Instruction) {
  // Table 1 row 1: FBEC52E3 = BGE S8, T5, -60 (relative); the paper renders
  // the absolute target 0x800025B0.
  const auto d = decode(0xFBEC52E3);
  EXPECT_EQ(d.op, Op::kBge);
  EXPECT_EQ(d.rs1, 24);  // S8 = x24
  EXPECT_EQ(d.rs2, 30);  // T5 = x30
  const std::string text = disassemble(d, 0x800025B0 - static_cast<std::uint64_t>(d.imm));
  EXPECT_EQ(text, "BGE S8, T5, 0x800025B0");
}

TEST(Decode, PaperTable1SecondInstruction) {
  // Table 1 row 2: FB6F42E3 = BLT T5, S6, target.
  const auto d = decode(0xFB6F42E3);
  EXPECT_EQ(d.op, Op::kBlt);
  EXPECT_EQ(d.rs1, 30);  // T5
  EXPECT_EQ(d.rs2, 22);  // S6
}

TEST(Decode, IllegalWordsZeroFields) {
  const auto d = decode(0xffffffff);
  EXPECT_EQ(d.op, Op::kIllegal);
  EXPECT_EQ(d.rd, 0);
  EXPECT_EQ(d.imm, 0);
  EXPECT_FALSE(d.valid());
}

TEST(Decode, CsrFields) {
  const auto d = decode(enc_csr(Op::kCsrrw, 3, 4, csr::kMwaitEn));
  EXPECT_EQ(d.op, Op::kCsrrw);
  EXPECT_EQ(d.rd, 3);
  EXPECT_EQ(d.rs1, 4);
  EXPECT_EQ(d.csr, csr::kMwaitEn);
}

TEST(Decode, CsrImmediateUsesZimm) {
  const auto d = decode(enc_csr(Op::kCsrrwi, 5, 17, csr::kZenbleedEn));
  EXPECT_EQ(d.op, Op::kCsrrwi);
  EXPECT_EQ(d.zimm, 17);
  EXPECT_EQ(d.csr, csr::kZenbleedEn);
}

// ---- Round-trip property tests over every op/format ----

class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, EncodeDecodeRoundTrip) {
  const Op op = static_cast<Op>(GetParam());
  if (op == Op::kIllegal || op == Op::kCount) return;
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 1);
  for (int trial = 0; trial < 64; ++trial) {
    const std::uint8_t rd = static_cast<std::uint8_t>(rng.below(32));
    const std::uint8_t rs1 = static_cast<std::uint8_t>(rng.below(32));
    const std::uint8_t rs2 = static_cast<std::uint8_t>(rng.below(32));
    std::int64_t imm = 0;
    std::uint16_t csr_addr = 0;
    switch (format_of(op)) {
      case Format::kI:
        if (op == Op::kSlli || op == Op::kSrli || op == Op::kSrai) {
          imm = static_cast<std::int64_t>(rng.below(64));
        } else if (op == Op::kSlliw || op == Op::kSrliw || op == Op::kSraiw) {
          imm = static_cast<std::int64_t>(rng.below(32));
        } else {
          imm = static_cast<std::int64_t>(rng.below(4096)) - 2048;
        }
        break;
      case Format::kS:
        imm = static_cast<std::int64_t>(rng.below(4096)) - 2048;
        break;
      case Format::kB:
        imm = (static_cast<std::int64_t>(rng.below(4096)) - 2048) * 2;
        break;
      case Format::kU:
        imm = (static_cast<std::int64_t>(rng.below(1 << 20)) - (1 << 19))
              << 12;
        break;
      case Format::kJ:
        imm = (static_cast<std::int64_t>(rng.below(1 << 20)) - (1 << 19)) * 2;
        break;
      case Format::kCsr:
      case Format::kCsrImm:
        csr_addr = csr::kImplemented[rng.below(csr::kImplemented.size())];
        break;
      default:
        break;
    }
    const std::uint32_t word = encode(op, rd, rs1, rs2, imm, csr_addr);
    const DecodedInst d = decode(word);
    ASSERT_EQ(d.op, op) << "op " << mnemonic(op) << " trial " << trial;
    switch (format_of(op)) {
      case Format::kR:
        EXPECT_EQ(d.rd, rd);
        EXPECT_EQ(d.rs1, rs1);
        EXPECT_EQ(d.rs2, rs2);
        break;
      case Format::kI:
        EXPECT_EQ(d.rd, rd);
        EXPECT_EQ(d.rs1, rs1);
        EXPECT_EQ(d.imm, imm);
        break;
      case Format::kS:
        EXPECT_EQ(d.rs1, rs1);
        EXPECT_EQ(d.rs2, rs2);
        EXPECT_EQ(d.imm, imm);
        break;
      case Format::kB:
        EXPECT_EQ(d.rs1, rs1);
        EXPECT_EQ(d.rs2, rs2);
        EXPECT_EQ(d.imm, imm);
        break;
      case Format::kU:
        EXPECT_EQ(d.rd, rd);
        EXPECT_EQ(d.imm, imm);
        break;
      case Format::kJ:
        EXPECT_EQ(d.rd, rd);
        EXPECT_EQ(d.imm, imm);
        break;
      case Format::kCsr:
        EXPECT_EQ(d.rd, rd);
        EXPECT_EQ(d.rs1, rs1);
        EXPECT_EQ(d.csr, csr_addr);
        break;
      case Format::kCsrImm:
        EXPECT_EQ(d.rd, rd);
        EXPECT_EQ(d.zimm, rs1);
        EXPECT_EQ(d.csr, csr_addr);
        break;
      case Format::kSys:
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, RoundTripTest,
                         ::testing::Range(1,
                                          static_cast<int>(Op::kCount)),
                         [](const auto& info) {
                           return std::string(
                               mnemonic(static_cast<Op>(info.param)));
                         });

TEST(Disasm, LoadStoreRendering) {
  EXPECT_EQ(disassemble(enc_i(Op::kLd, 11, 10, 16), 0), "LD A1, 16(A0)");
  EXPECT_EQ(disassemble(enc_s(Op::kSd, 10, 11, -8), 0), "SD A1, -8(A0)");
}

TEST(Disasm, CsrRendering) {
  EXPECT_EQ(disassemble(enc_csr(Op::kCsrrw, 0, 5, csr::kMonitorAddr), 0),
            "CSRRW ZERO, monitor_addr, T0");
  EXPECT_EQ(disassemble(enc_csr(Op::kCsrrwi, 0, 1, csr::kMwaitEn), 0),
            "CSRRWI ZERO, mwait_en, 1");
}

TEST(Disasm, IllegalRendering) {
  EXPECT_EQ(disassemble(0xffffffffu, 0), "ILLEGAL");
}

TEST(Disasm, UnknownCsrRendersReassemblableAddress) {
  // CSRs outside the implemented set must print their address, not the
  // information-losing "csr_unknown" (the repro.S writer depends on it).
  const std::uint32_t word = enc_csr(Op::kCsrrs, 3, 4, 0x7c0);
  const std::string text = disassemble(word, 0);
  EXPECT_NE(text.find("0x7c0"), std::string::npos);
  EXPECT_EQ(assemble(text, 0), word);
}

TEST(Disasm, AssembleRoundTripsEveryGeneratorInstruction) {
  // disasm(encode(x)) must be stable text for every instruction the
  // fuzzer's generator can emit: assembling the rendering at the same pc
  // reproduces the exact word. 4096 draws cover all op/format classes
  // (ALU, shifts, branches both directions, loads/stores, the full CSR
  // pool including unimplemented addresses, JAL/JALR).
  util::Rng rng(99);
  for (int i = 0; i < 4096; ++i) {
    const std::size_t len = 16 + rng.below(240);
    const std::size_t index = rng.below(len);
    const std::uint32_t word = random_instruction(rng, index, len);
    const std::uint64_t pc = kCodeBase + index * 4;
    const std::string text = disassemble(word, pc);
    EXPECT_EQ(assemble(text, pc), word)
        << "index " << index << ": " << text;
  }
}

TEST(Disasm, AssembleRoundTripsDirectedEdgeCases) {
  const std::uint64_t pc = kCodeBase + 0x40;
  const std::uint32_t words[] = {
      enc_b(Op::kBge, 24, 30, -32),        // backward branch
      enc_b(Op::kBltu, 1, 2, 0x1e0),       // forward branch
      enc_i(Op::kSrai, 7, 8, 63),          // RV64 6-bit shamt
      enc_i(Op::kAddi, 5, 6, -2048),       // most negative I imm
      enc_u(Op::kLui, 9, -0x80000000ll),   // top of the U range
      enc_u(Op::kAuipc, 9, 0x7ffff000),
      encode(Op::kJal, 1, 0, 0, -16),      // backward jump
      enc_i(Op::kJalr, 0, 1, 0),           // plain ret
      enc_s(Op::kSb, 10, 11, -1),
      enc_csr(Op::kCsrrci, 2, 31, csr::kZenbleedEn),
      enc_nop(),
      enc_ecall(),
      encode(Op::kEbreak, 0, 0, 0, 0),
      encode(Op::kFence, 0, 0, 0, 0),
  };
  for (const std::uint32_t word : words) {
    EXPECT_EQ(assemble(disassemble(word, pc), pc), word)
        << disassemble(word, pc);
  }
  EXPECT_THROW(assemble("BOGUS A0, A1", pc), std::runtime_error);
  EXPECT_THROW(assemble("ADD A0, A1", pc), std::runtime_error);
  EXPECT_THROW(assemble("LD A0, zz(A1)", pc), std::runtime_error);
}

TEST(Program, ByteRoundTrip) {
  util::Rng rng(5);
  for (int i = 0; i < 32; ++i) {
    const Program p = random_program(rng, 1 + rng.below(64));
    const Program q = Program::from_bytes(p.to_bytes());
    EXPECT_EQ(p, q);
  }
}

TEST(Program, FromBytesToleratesTruncation) {
  util::Rng rng(6);
  const Program p = random_program(rng, 16);
  auto bytes = p.to_bytes();
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut));
    const Program q = Program::from_bytes(prefix);  // Must not crash.
    EXPECT_LE(q.code.size(), p.code.size());
  }
}

TEST(ProgramBuilder, LabelsResolve) {
  ProgramBuilder b;
  b.li(5, 100)
      .label("loop")
      .addi(5, 5, -1)
      .branch(Op::kBne, 5, 0, "loop")
      .nop();
  const Program p = b.build();
  // The branch should point back to "loop".
  const DecodedInst d = decode(p.code[p.code.size() - 2]);
  EXPECT_EQ(d.op, Op::kBne);
  EXPECT_EQ(d.imm, -4);
}

TEST(ProgramBuilder, ForwardLabel) {
  ProgramBuilder b;
  b.branch(Op::kBeq, 0, 0, "end").nop().nop().label("end").nop();
  const Program p = b.build();
  const DecodedInst d = decode(p.code[0]);
  EXPECT_EQ(d.imm, 12);
}

TEST(ProgramBuilder, UndefinedLabelThrows) {
  ProgramBuilder b;
  b.jal(0, "nowhere");
  EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(ProgramBuilder, LiMateralizesValues) {
  // li followed by a real decode: check LUI/ADDI pair semantics for
  // representative values, including ones with the sign-extension quirk.
  for (std::int64_t v : {0LL, 1LL, -1LL, 2047LL, 2048LL, -2048LL, 0x12345000LL,
                         0x12345FFFLL, static_cast<long long>(kDataBase)}) {
    ProgramBuilder b;
    b.li(7, v);
    const Program p = b.build();
    // Emulate the LUI/ADDI/SLLI materialization sequence.
    std::int64_t x7 = 0;
    for (std::uint32_t w : p.code) {
      const DecodedInst d = decode(w);
      if (d.op == Op::kLui) {
        x7 = d.imm;
      } else if (d.op == Op::kAddi) {
        x7 = (d.rs1 == 7 ? x7 : 0) + d.imm;
      } else if (d.op == Op::kSlli) {
        x7 <<= d.imm;
      }
    }
    EXPECT_EQ(x7, v) << "li " << v;
  }
}

TEST(Program, DataU64Helper) {
  ProgramBuilder b;
  b.nop().data_u64(8, 0x1122334455667788ULL);
  const Program p = b.build();
  ASSERT_GE(p.data.size(), 16u);
  EXPECT_EQ(p.data[8], 0x88);
  EXPECT_EQ(p.data[15], 0x11);
}

TEST(RandomProgram, InstructionsMostlyValid) {
  util::Rng rng(99);
  const Program p = random_program(rng, 200);
  std::size_t valid = 0;
  for (std::uint32_t w : p.code) valid += decode(w).valid();
  // The generator emits only valid encodings.
  EXPECT_EQ(valid, p.code.size());
}

TEST(RandomProgram, BranchOffsetsStayInProgram) {
  util::Rng rng(123);
  const std::size_t len = 64;
  const Program p = random_program(rng, len);
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const DecodedInst d = decode(p.code[i]);
    if (is_branch(d.op)) {
      const std::int64_t target =
          static_cast<std::int64_t>(i) + d.imm / 4;
      EXPECT_GE(target, 0);
      EXPECT_LE(target, static_cast<std::int64_t>(len) + 8);
    }
  }
}

TEST(Isa, Classifiers) {
  EXPECT_TRUE(is_branch(Op::kBge));
  EXPECT_FALSE(is_branch(Op::kJal));
  EXPECT_TRUE(is_jump(Op::kJalr));
  EXPECT_TRUE(is_load(Op::kLwu));
  EXPECT_FALSE(is_load(Op::kSw));
  EXPECT_TRUE(is_store(Op::kSb));
  EXPECT_TRUE(is_csr(Op::kCsrrci));
  EXPECT_TRUE(is_control_flow(Op::kBeq));
  EXPECT_FALSE(is_control_flow(Op::kAdd));
}

TEST(Isa, AccessSizes) {
  EXPECT_EQ(access_size(Op::kLb), 1u);
  EXPECT_EQ(access_size(Op::kLhu), 2u);
  EXPECT_EQ(access_size(Op::kSw), 4u);
  EXPECT_EQ(access_size(Op::kLd), 8u);
  EXPECT_EQ(access_size(Op::kAdd), 0u);
}

TEST(Isa, CsrNames) {
  EXPECT_EQ(csr::name(csr::kMwaitEn), "mwait_en");
  EXPECT_EQ(csr::name(csr::kMonitorAddr), "monitor_addr");
  EXPECT_EQ(csr::name(csr::kMwaitTimer), "mwait_timer");
  EXPECT_EQ(csr::name(csr::kZenbleedEn), "zenbleed_en");
  EXPECT_EQ(csr::name(0x7ff), "csr_unknown");
}

}  // namespace
}  // namespace specure::riscv
