// Triage subsystem coverage: structural leakage signatures (the dedup
// axis), the parallel deterministic minimizer, repro bundles, the
// Session triage stage, and the JSON report round-trip feeding
// `specure triage REPORT.json`.
//
// The acceptance contract pinned here: a full-preset finding minimizes
// to <= 25% of its original program length, the minimized repro
// re-triggers the *identical* signature when its repro.toml is run
// through a fresh Session (the `specure run repro.toml` path), and
// minimization output is bit-identical across jobs=1 and jobs=4.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/report.hpp"
#include "core/session.hpp"
#include "riscv/disasm.hpp"
#include "triage/repro.hpp"
#include "triage/signature.hpp"
#include "triage/triage.hpp"

namespace specure {
namespace {

using core::CampaignResult;
using core::CampaignSpec;
using core::Session;
using core::VulnReport;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "specure_triage/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// The shared short full-preset campaign every pipeline test reuses:
/// finds the special-seed cache-residue leaks within 10 iterations.
CampaignSpec full_spec() {
  CampaignSpec spec = CampaignSpec::preset("full");
  spec.rng_seed = 1;
  spec.batch_size = 4;
  spec.jobs = 1;
  spec.budget.iterations = 10;
  spec.progress_interval = 0;
  return spec;
}

// ---------------------------------------------------------- signatures --

TEST(Signature, NormalizeStructureStripsEntryIndices) {
  EXPECT_EQ(triage::normalize_structure("core.dcache.tag_0_1"),
            "core.dcache.tag");
  EXPECT_EQ(triage::normalize_structure("core.rename.maptable_31"),
            "core.rename.maptable");
  EXPECT_EQ(triage::normalize_structure("core.rf.x7"), "core.rf.x7");
  EXPECT_EQ(triage::normalize_structure("core.lsu.addr"), "core.lsu.addr");
}

TEST(Signature, DistinguishesDisjointTaintPaths) {
  VulnReport a;
  a.kind = core::VulnKind::kDirectLeak;
  a.sink_signal = "core.rf.x7";
  a.window.mispredicted = true;
  a.root_causes.push_back(
      {"core.bpred.ghist", {"core.bpred.ghist", "core.rf.x7"}});
  VulnReport b = a;
  b.root_causes.clear();
  b.root_causes.push_back(
      {"core.tlb.vpn_3",
       {"core.tlb.vpn_3", "core.lsu.addr", "core.rf.x7"}});

  const std::string key_a = triage::compute_signature(a, {"core.rf.x7"}).key();
  const std::string key_b = triage::compute_signature(b, {"core.rf.x7"}).key();
  // Same kind+sink — the old finding_key collapses these two mechanisms.
  EXPECT_EQ(core::finding_key(a), core::finding_key(b));
  EXPECT_NE(key_a, key_b);
  // The coarse key stays a prefix, so substring stops keep matching.
  EXPECT_EQ(key_a.rfind(core::finding_key(a), 0), 0u);
  EXPECT_EQ(key_b.rfind(core::finding_key(b), 0), 0u);
  EXPECT_NE(triage::signature_digest(key_a), triage::signature_digest(key_b));
  EXPECT_EQ(triage::signature_digest(key_a), triage::signature_digest(key_a));
}

// Regression for the finding_key collision: two findings with the same
// kind+sink but disjoint taint paths must both survive merger dedup.
TEST(Triage, MergerRetainsDistinctSignaturesInOneCoarseBucket) {
  const sim::CoreConfig cfg;
  const core::OfflineResult offline = core::run_offline_phase(cfg);
  const sim::Simulator sim(cfg);
  core::ResultMerger merger(offline, sim.signal_db(),
                            core::FeedbackMode::kLeakagePath,
                            core::LpPolicy::kAllSignals, 4);

  const auto report_with = [](const std::string& source) {
    VulnReport r;
    r.kind = core::VulnKind::kDirectLeak;
    r.sink_signal = "core.rf.x7";
    r.root_causes.push_back({source, {source, "core.rf.x7"}});
    r.signature = triage::compute_signature(r, {"core.rf.x7"}).key();
    return r;
  };

  core::WorkerResult result;
  result.iteration = 1;
  result.reports.push_back(report_with("core.bpred.ghist"));
  result.reports.push_back(report_with("core.tlb.vpn_0"));
  EXPECT_TRUE(merger.merge(std::move(result)));

  const CampaignResult& r = merger.result();
  ASSERT_EQ(r.vulns.size(), 2u);  // the old axis deduped these to one
  EXPECT_EQ(r.first_detection.size(), 2u);
  EXPECT_EQ(core::coarse_bucket_count(r), 1u);
}

// --------------------------------------------------------- minimization --

TEST(Triage, FullPresetMinimizesToQuarterAndIsJobsInvariant) {
  Session session(full_spec());
  const CampaignResult result = session.run();
  ASSERT_GE(result.vulns.size(), 2u);

  std::vector<triage::TriageInput> inputs;
  for (const VulnReport& v : result.vulns) {
    EXPECT_FALSE(v.signature.empty());
    EXPECT_FALSE(v.program.empty());
    inputs.push_back({v.signature, v.program});
  }
  // Distinct signatures per finding (pinned on the full preset).
  EXPECT_NE(inputs[0].signature, inputs[1].signature);

  triage::TriageOptions serial;
  serial.mode = core::TriageMode::kOn;
  serial.jobs = 1;
  triage::TriageOptions parallel = serial;
  parallel.jobs = 4;
  const triage::TriageReport one =
      triage::run_triage(session.spec(), session.offline(), inputs, serial);
  const triage::TriageReport four =
      triage::run_triage(session.spec(), session.offline(), inputs, parallel);

  ASSERT_EQ(one.findings.size(), inputs.size());
  ASSERT_EQ(four.findings.size(), inputs.size());
  bool quarter = false;
  for (std::size_t i = 0; i < one.findings.size(); ++i) {
    const triage::TriagedFinding& f = one.findings[i];
    EXPECT_TRUE(f.reproduced);
    EXPECT_FALSE(f.leak_instructions.empty());
    EXPECT_LT(f.minimized.code.size(), f.original.code.size());
    // Bit-identical minimization for any jobs count at a fixed seed.
    EXPECT_EQ(f.minimized.code, four.findings[i].minimized.code);
    EXPECT_EQ(f.minimized.data, four.findings[i].minimized.data);
    EXPECT_EQ(f.leak_instructions, four.findings[i].leak_instructions);
    if (f.minimized.code.size() * 4 <= f.original.code.size()) quarter = true;
  }
  // The acceptance floor: at least one finding reduces to <= 25%.
  EXPECT_TRUE(quarter);
}

// ------------------------------------------------------- repro bundles --

TEST(Triage, ReproBundleVerifiesAndReRunsThroughASession) {
  const std::string out = temp_dir("bundles");
  Session session(full_spec());
  const CampaignResult result = session.run();
  ASSERT_FALSE(result.vulns.empty());

  std::vector<triage::TriageInput> inputs;
  for (const VulnReport& v : result.vulns) {
    inputs.push_back({v.signature, v.program});
  }
  triage::TriageOptions options;
  options.mode = core::TriageMode::kFull;
  options.out_dir = out;
  options.jobs = 1;
  const triage::TriageReport triaged =
      triage::run_triage(session.spec(), session.offline(), inputs, options);

  for (const triage::TriagedFinding& f : triaged.findings) {
    ASSERT_FALSE(f.bundle_dir.empty());
    EXPECT_TRUE(f.verified) << f.signature;
    EXPECT_TRUE(std::filesystem::exists(f.bundle_dir + "/repro.S"));
    EXPECT_TRUE(std::filesystem::exists(f.bundle_dir + "/repro.toml"));
    EXPECT_TRUE(std::filesystem::exists(f.bundle_dir + "/repro.vcd"));

    // repro.S: leak annotations present, and every instruction line is
    // re-assemblable to the exact word it was disassembled from.
    std::ifstream asm_in(f.bundle_dir + "/repro.S");
    std::string line;
    bool leak_marked = false;
    std::size_t parsed = 0;
    while (std::getline(asm_in, line)) {
      if (line.find("# leak") != std::string::npos) leak_marked = true;
      if (line.rfind("    ", 0) != 0) continue;
      std::istringstream fields(line);
      std::string pc_hex, word_hex;
      fields >> pc_hex >> word_hex;
      pc_hex.pop_back();  // trailing ':'
      const std::uint64_t pc = std::stoull(pc_hex, nullptr, 16);
      const std::uint32_t word =
          static_cast<std::uint32_t>(std::stoul(word_hex, nullptr, 16));
      std::string text = line.substr(line.find(word_hex) + word_hex.size());
      const std::size_t comment = text.find('#');
      if (comment != std::string::npos) text = text.substr(0, comment);
      while (!text.empty() && (text.front() == ' ')) text.erase(0, 1);
      while (!text.empty() && (text.back() == ' ')) text.pop_back();
      EXPECT_EQ(riscv::assemble(text, pc), word) << text;
      ++parsed;
    }
    EXPECT_TRUE(leak_marked);
    EXPECT_EQ(parsed, f.minimized.code.size());

    // The `specure run repro.toml` path: a fresh Session over the saved
    // spec must re-trigger the identical signature in one iteration.
    const CampaignSpec repro = CampaignSpec::load(f.bundle_dir + "/repro.toml");
    EXPECT_EQ(repro.budget.iterations, 1u);
    Session rerun(repro);
    const CampaignResult res = rerun.run();
    EXPECT_EQ(res.first_detection.count(f.signature), 1u) << f.signature;
  }
}

// ------------------------------------------------------ session wiring --

TEST(Triage, SessionTriageStageFiresEventsWithoutPerturbingTheCampaign) {
  CampaignSpec off_spec = full_spec();
  Session off_session(off_spec);
  const CampaignResult baseline = off_session.run();
  EXPECT_EQ(off_session.triage_report(), nullptr);

  CampaignSpec on_spec = full_spec();
  on_spec.triage = core::TriageMode::kOn;
  Session on_session(on_spec);
  std::vector<std::string> event_digests;
  on_session.on_finding_minimized(
      [&](const triage::MinimizedEvent& e) {
        EXPECT_TRUE(e.reproduced);
        EXPECT_LT(e.minimized_len, e.original_len);
        EXPECT_TRUE(e.bundle_dir.empty());  // bundles need triage=full
        event_digests.push_back(e.digest);
      });
  const CampaignResult triaged = on_session.run();

  // The triage stage runs after the campaign: results are identical.
  EXPECT_EQ(baseline.first_detection, triaged.first_detection);
  EXPECT_EQ(baseline.history.size(), triaged.history.size());

  const triage::TriageReport* report = on_session.triage_report();
  ASSERT_NE(report, nullptr);
  ASSERT_EQ(report->findings.size(), triaged.vulns.size());
  ASSERT_EQ(event_digests.size(), report->findings.size());
  for (std::size_t i = 0; i < report->findings.size(); ++i) {
    EXPECT_EQ(event_digests[i], report->findings[i].digest);
  }
}

// ------------------------------------------------- JSON report round-trip --

TEST(Triage, JsonReportRoundTripsIntoTriageInputs) {
  Session session(full_spec());
  const CampaignResult result = session.run();
  ASSERT_FALSE(result.vulns.empty());

  const CampaignSpec spec = session.spec();
  std::istringstream in(core::json_report(result, 64, &spec));
  const core::ParsedReport parsed = core::parse_json_report(in);
  EXPECT_TRUE(parsed.has_spec);
  EXPECT_EQ(parsed.spec.name, spec.name);
  EXPECT_EQ(parsed.spec.rng_seed, spec.rng_seed);
  EXPECT_TRUE(parsed.spec.detector.monitor_cache);
  ASSERT_EQ(parsed.findings.size(), result.vulns.size());
  for (std::size_t i = 0; i < parsed.findings.size(); ++i) {
    EXPECT_EQ(parsed.findings[i].signature, result.vulns[i].signature);
    EXPECT_EQ(parsed.findings[i].program, result.vulns[i].program);
  }
}

TEST(Triage, ParseJsonReportRejectsPreTriageReports) {
  std::istringstream in(
      "{\"findings\": [{\"kind\": \"direct-leak\", \"sink\": \"x\"}]}");
  EXPECT_THROW(core::parse_json_report(in), core::SpecError);
}

// ------------------------------------------------------------- replay --

TEST(Triage, ReplayProgramIsServedAsIterationOne) {
  riscv::Program replay;
  replay.code = {0x00100093, 0x00000073};  // ADDI RA,ZERO,1; ECALL
  replay.data = {1, 2, 3};

  fuzz::FuzzerOptions options;
  options.replay_program_hex = replay.to_hex();
  fuzz::Fuzzer fuzzer(options, 7);
  const auto batch = fuzzer.next_batch(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].program, replay);

  CampaignSpec spec;
  spec.fuzzer.replay_program_hex = replay.to_hex();
  EXPECT_NO_THROW(spec.validate());
  // The key round-trips through the TOML subset.
  const CampaignSpec reloaded =
      CampaignSpec::from_toml_string(spec.to_toml());
  EXPECT_EQ(reloaded.fuzzer.replay_program_hex, replay.to_hex());

  spec.fuzzer.replay_program_hex = "zz";
  EXPECT_THROW(spec.validate(), core::SpecError);
}

TEST(Triage, FullModeRequiresAnOutDir) {
  CampaignSpec spec;
  spec.triage = core::TriageMode::kFull;
  spec.triage_out.clear();
  EXPECT_THROW(spec.validate(), core::SpecError);
}

}  // namespace
}  // namespace specure
