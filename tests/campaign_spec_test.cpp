// CampaignSpec coverage: preset registry, key=value overrides with
// did-you-mean hints, validation messages, the TOML-subset round trip,
// and the acceptance property that a saved spec reloads to a
// bit-identical campaign result at a fixed seed.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/campaign_spec.hpp"
#include "core/session.hpp"
#include "sim/config.hpp"

namespace specure::core {
namespace {

std::string error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const SpecError& e) {
    return e.what();
  }
  return "";
}

TEST(CampaignSpecPresets, RegistryCoversTheEvaluationMatrix) {
  const auto& infos = CampaignSpec::presets();
  const auto has = [&](const std::string& name) {
    for (const auto& info : infos) {
      if (info.name == name) return true;
    }
    return false;
  };
  for (const char* name : {"default", "lp", "codecov", "mwait", "zenbleed",
                           "no-spec", "cache-monitor", "full"}) {
    EXPECT_TRUE(has(name)) << name;
  }

  EXPECT_TRUE(CampaignSpec::preset("zenbleed").core.vuln.zenbleed_emulation);
  EXPECT_TRUE(CampaignSpec::preset("mwait").core.vuln.mwait_emulation);
  EXPECT_TRUE(CampaignSpec::preset("cache-monitor").detector.monitor_cache);
  EXPECT_EQ(CampaignSpec::preset("codecov").feedback,
            FeedbackMode::kCodeCoverage);
  EXPECT_EQ(CampaignSpec::preset("no-spec").core.branch_resolve_latency, 1u);
  const CampaignSpec full = CampaignSpec::preset("full");
  EXPECT_TRUE(full.core.vuln.mwait_emulation);
  EXPECT_TRUE(full.core.vuln.zenbleed_emulation);
  EXPECT_TRUE(full.detector.monitor_cache);
  // Every preset validates out of the box and carries its own name.
  for (const auto& info : infos) {
    const CampaignSpec spec = CampaignSpec::preset(info.name);
    EXPECT_EQ(spec.name, info.name);
    EXPECT_NO_THROW(spec.validate()) << info.name;
  }
}

TEST(CampaignSpecPresets, UnknownNameSuggestsClosest) {
  const std::string msg =
      error_of([] { CampaignSpec::preset("zenblead"); });
  EXPECT_NE(msg.find("unknown preset"), std::string::npos) << msg;
  EXPECT_NE(msg.find("zenbleed"), std::string::npos) << msg;
}

TEST(CampaignSpecOverrides, SetParsesEveryValueKind) {
  CampaignSpec spec;
  spec.set("rob_entries", "32");
  EXPECT_EQ(spec.core.rob_entries, 32u);
  spec.set("zenbleed", "true");
  EXPECT_TRUE(spec.core.vuln.zenbleed_emulation);
  spec.set("feedback", "codecov");
  EXPECT_EQ(spec.feedback, FeedbackMode::kCodeCoverage);
  spec.set("lp_policy", "endpoints");
  EXPECT_EQ(spec.lp_policy, LpPolicy::kEndpoints);
  spec.set("max_seconds", "1.5");
  EXPECT_DOUBLE_EQ(spec.budget.max_seconds, 1.5);
  spec.set("name", "custom");
  EXPECT_EQ(spec.name, "custom");
  spec.apply_override("iterations=123");
  EXPECT_EQ(spec.budget.iterations, 123u);
  spec.apply_override(" batch = 4 ");  // whitespace tolerated
  EXPECT_EQ(spec.batch_size, 4u);
}

TEST(CampaignSpecOverrides, UnknownKeySuggestsClosest) {
  CampaignSpec spec;
  const std::string msg =
      error_of([&] { spec.set("rob_entrees", "4"); });
  EXPECT_NE(msg.find("unknown spec key"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rob_entries"), std::string::npos) << msg;
}

TEST(CampaignSpecOverrides, BadValuesNameTheKeyAndExpectedForm) {
  CampaignSpec spec;
  EXPECT_NE(error_of([&] { spec.set("rob_entries", "lots"); })
                .find("not a non-negative integer"),
            std::string::npos);
  EXPECT_NE(error_of([&] { spec.set("mwait", "maybe"); }).find("true/false"),
            std::string::npos);
  EXPECT_NE(error_of([&] { spec.set("feedback", "toggle"); })
                .find("lp | codecov"),
            std::string::npos);
  EXPECT_NE(error_of([&] { spec.apply_override("no-equals-here"); })
                .find("key=value"),
            std::string::npos);
}

TEST(CampaignSpecValidate, ListsEveryProblemWithActionableText) {
  CampaignSpec spec;
  spec.core.dcache_line_bytes = 12;  // not a power of two
  spec.batch_size = 0;
  spec.budget.iterations = 0;
  const std::string msg = error_of([&] { spec.validate(); });
  EXPECT_NE(msg.find("power of two"), std::string::npos) << msg;
  EXPECT_NE(msg.find("batch must be >= 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("iterations must be >= 1"), std::string::npos) << msg;
}

TEST(CampaignSpecValidate, SimLayerProblemsSurface) {
  EXPECT_FALSE(sim::validate_config(sim::CoreConfig{}).size());
  sim::CoreConfig cfg;
  cfg.rob_entries = 1;
  cfg.phys_regs = 16;
  const auto problems = sim::validate_config(cfg);
  ASSERT_EQ(problems.size(), 2u);
  EXPECT_NE(problems[0].find("rob_entries"), std::string::npos);
  EXPECT_NE(problems[1].find("phys_regs"), std::string::npos);
}

TEST(CampaignSpecValidate, CorePresetRegistry) {
  sim::CoreConfig cfg;
  EXPECT_TRUE(sim::lookup_core_preset("no-spec", cfg));
  EXPECT_EQ(cfg.branch_resolve_latency, 1u);
  EXPECT_FALSE(sim::lookup_core_preset("nope", cfg));
  EXPECT_FALSE(sim::core_preset_names().empty());
}

TEST(CampaignSpecToml, RoundTripIsExact) {
  CampaignSpec spec = CampaignSpec::preset("mwait");
  spec.set("rob_entries", "32");
  spec.set("seed", "99");
  spec.set("feedback", "codecov");
  spec.budget.plateau = 250;
  spec.budget.max_seconds = 2.5;

  const CampaignSpec reloaded = CampaignSpec::from_toml_string(spec.to_toml());
  EXPECT_TRUE(spec == reloaded);
  EXPECT_EQ(reloaded.core.rob_entries, 32u);
  EXPECT_EQ(reloaded.rng_seed, 99u);
  EXPECT_EQ(reloaded.feedback, FeedbackMode::kCodeCoverage);
  EXPECT_EQ(reloaded.budget.plateau, 250u);
  EXPECT_DOUBLE_EQ(reloaded.budget.max_seconds, 2.5);
}

TEST(CampaignSpecToml, PresetKeySeedsTheSpec) {
  const CampaignSpec spec = CampaignSpec::from_toml_string(
      "# comment\n"
      "preset = \"zenbleed\"\n"
      "[core]\n"
      "rob_entries = 24  # trailing comment\n");
  EXPECT_TRUE(spec.core.vuln.zenbleed_emulation);
  EXPECT_EQ(spec.core.rob_entries, 24u);
  EXPECT_EQ(spec.name, "zenbleed");
}

TEST(CampaignSpecToml, ErrorsCarryLineNumbers) {
  EXPECT_NE(error_of([] {
              CampaignSpec::from_toml_string("[core]\nrob_entrees = 4\n");
            }).find("line 2"),
            std::string::npos);
  EXPECT_NE(error_of([] {
              CampaignSpec::from_toml_string("[quantum]\n");
            }).find("unknown section"),
            std::string::npos);
  EXPECT_NE(error_of([] {
              CampaignSpec::from_toml_string("just words\n");
            }).find("key = value"),
            std::string::npos);
  EXPECT_NE(error_of([] {
              CampaignSpec::from_toml_string(
                  "preset = \"a\"\npreset = \"b\"\n");
            }).find("duplicate"),
            std::string::npos);
}

TEST(CampaignSpecToml, SaveLoadReproducesTheCampaignBitIdentically) {
  CampaignSpec spec = CampaignSpec::preset("zenbleed");
  spec.rng_seed = 5;
  spec.batch_size = 8;
  spec.budget.iterations = 60;

  const std::string path = ::testing::TempDir() + "spec_roundtrip.toml";
  spec.save(path);
  const CampaignSpec reloaded = CampaignSpec::load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(spec == reloaded);

  const CampaignResult a = Session(spec).run();
  const CampaignResult b = Session(reloaded).run();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].covered_pdlc, b.history[i].covered_pdlc);
    EXPECT_EQ(a.history[i].coverage_points, b.history[i].coverage_points);
    EXPECT_EQ(a.history[i].cycles, b.history[i].cycles);
  }
  EXPECT_EQ(a.first_detection, b.first_detection);
  EXPECT_EQ(a.total_windows, b.total_windows);
  EXPECT_EQ(a.mispredicted_windows, b.mispredicted_windows);
}

TEST(CampaignSpecToml, LoadMissingFileFails) {
  EXPECT_NE(error_of([] { CampaignSpec::load("/nonexistent/x.toml"); })
                .find("cannot open"),
            std::string::npos);
}

TEST(CampaignSpecFields, KeysAreUniqueAndCoverEveryField) {
  const auto keys = CampaignSpec::keys();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j]);
    }
  }
  // Every rendered field re-applies through set() — the contract the
  // TOML loader and the JSON spec echo both rely on.
  const CampaignSpec original = CampaignSpec::preset("full");
  CampaignSpec rebuilt;
  for (const SpecField& f : original.fields()) {
    rebuilt.set(f.key, f.value);
  }
  EXPECT_TRUE(original == rebuilt);
}

}  // namespace
}  // namespace specure::core
