// Checkpointed incremental simulation: Trace::fork_at edge cases,
// fuzz::first_divergence, Simulator checkpoint emission, and the core
// contract — run_from(checkpoint, mutant) is bit-identical to a cold run
// of the mutant whenever the mutation's first divergent instruction lies
// beyond the checkpoint's fetch watermark.
#include <gtest/gtest.h>

#include <sstream>

#include "core/campaign_scheduler.hpp"
#include "core/campaign_spec.hpp"
#include "core/campaign_worker.hpp"
#include "core/offline.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/mutator.hpp"
#include "sim/core.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/vcd.hpp"
#include "util/rng.hpp"

namespace specure {
namespace {

using riscv::Program;

// ------------------------------------------------------------ helpers ----

snapshot::SignalDb tiny_db() {
  snapshot::SignalDb db;
  db.add("t.a", 64, snapshot::SignalClass::kMicroarchitectural, true);
  db.add("t.b", 32, snapshot::SignalClass::kArchitectural, true);
  db.add("t.c", 1, snapshot::SignalClass::kWire, false);
  return db;
}

/// Record `ticks` pseudo-random cycles into a fresh trace.
snapshot::Trace record_random(const snapshot::SignalDb& db, std::size_t ticks,
                              std::uint64_t seed, std::size_t from = 0,
                              snapshot::Trace* continue_into = nullptr) {
  util::Rng rng(seed);
  snapshot::Trace local(&db);
  snapshot::Trace& t = continue_into != nullptr ? *continue_into : local;
  for (std::size_t i = 0; i < ticks; ++i) {
    const std::uint64_t a = rng.below(4);
    const std::uint64_t b = rng.below(3);
    const std::uint64_t c = rng.below(2);
    if (i < from) continue;  // consume the same RNG stream, skip recording
    t.begin_cycle(i + 1);
    t.record(0, a);
    t.record(1, b);
    t.record(2, c);
  }
  return t;
}

void expect_trace_identical(const snapshot::Trace& a,
                            const snapshot::Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.event_count(), b.event_count());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a.cycle_at(t), b.cycle_at(t));
    ASSERT_EQ(a.tick_begin(t), b.tick_begin(t));
    ASSERT_EQ(a.tick_end(t), b.tick_end(t));
    for (std::size_t e = a.tick_begin(t); e < a.tick_end(t); ++e) {
      ASSERT_EQ(a.event_id(e), b.event_id(e));
      ASSERT_EQ(a.event_value(e), b.event_value(e));
    }
  }
  if (!a.empty()) {
    const auto last_a = a[a.size() - 1];
    const auto last_b = b[b.size() - 1];
    EXPECT_EQ(last_a.values, last_b.values);
  }
  EXPECT_EQ(a.memory_bytes(), b.memory_bytes());
}

std::string vcd_of(const snapshot::Trace& t) {
  std::ostringstream os;
  snapshot::write_vcd(os, t);
  return os.str();
}

void expect_run_identical(const sim::RunResult& a, const sim::RunResult& b) {
  expect_trace_identical(a.trace, b.trace);
  ASSERT_EQ(a.commits.size(), b.commits.size());
  for (std::size_t i = 0; i < a.commits.size(); ++i) {
    EXPECT_EQ(a.commits[i].cycle, b.commits[i].cycle);
    EXPECT_EQ(a.commits[i].pc, b.commits[i].pc);
    EXPECT_EQ(a.commits[i].inst, b.commits[i].inst);
    EXPECT_EQ(a.commits[i].writes_rd, b.commits[i].writes_rd);
    EXPECT_EQ(a.commits[i].rd, b.commits[i].rd);
    EXPECT_EQ(a.commits[i].writes_csr, b.commits[i].writes_csr);
    EXPECT_EQ(a.commits[i].csr, b.commits[i].csr);
    EXPECT_EQ(a.commits[i].is_store, b.commits[i].is_store);
    EXPECT_EQ(a.commits[i].store_addr, b.commits[i].store_addr);
  }
  EXPECT_EQ(a.coverage.points(), b.coverage.points());
  EXPECT_EQ(a.coverage.toggle_bits(), b.coverage.toggle_bits());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions_committed, b.instructions_committed);
  EXPECT_EQ(a.halted_clean, b.halted_clean);
  EXPECT_EQ(a.final_data, b.final_data);
}

/// Draw a corpus-shaped program: seeds then mutations, like a campaign.
std::vector<Program> sample_programs(std::size_t count, std::uint64_t seed) {
  fuzz::FuzzerOptions options;
  fuzz::Fuzzer fuzzer(options, seed);
  std::vector<Program> out;
  for (std::size_t i = 0; i < count; ++i) out.push_back(fuzzer.next());
  return out;
}

// ------------------------------------------------- Trace::fork_at edges ----

TEST(TraceFork, AtCycleZeroThrowsNamingCoveredRange) {
  const snapshot::SignalDb db = tiny_db();
  const snapshot::Trace t = record_random(db, 10, 1);
  try {
    t.fork_at(0);
    FAIL() << "fork_at(0) did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("covers cycles 1..10"),
              std::string::npos)
        << e.what();
  }
}

TEST(TraceFork, PastEndThrowsNamingCoveredRange) {
  const snapshot::SignalDb db = tiny_db();
  const snapshot::Trace t = record_random(db, 10, 1);
  try {
    t.fork_at(11);
    FAIL() << "fork_at past end did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("covers cycles 1..10"),
              std::string::npos)
        << e.what();
  }
}

TEST(TraceFork, EmptyTraceThrows) {
  const snapshot::SignalDb db = tiny_db();
  const snapshot::Trace t(&db);
  EXPECT_THROW(t.fork_at(1), std::runtime_error);
}

TEST(TraceFork, PrefixMatchesColdRecordingEverywhere) {
  // Forking at cycle c then continuing must be byte-identical to having
  // recorded the whole stream cold — across keyframe boundaries
  // (interval 64: ticks 63/64/65), the first tick, and the last.
  const snapshot::SignalDb db = tiny_db();
  const std::size_t kTicks = 200;
  const snapshot::Trace full = record_random(db, kTicks, 42);
  for (const std::size_t cut : {std::size_t{1}, std::size_t{2},
                                std::size_t{63}, std::size_t{64},
                                std::size_t{65}, std::size_t{128},
                                std::size_t{129}, std::size_t{199},
                                std::size_t{200}}) {
    snapshot::Trace forked = full.fork_at(cut);
    ASSERT_EQ(forked.size(), cut);
    // The prefix alone must equal a cold recording of the prefix.
    const snapshot::Trace cold_prefix = record_random(db, cut, 42);
    expect_trace_identical(forked, cold_prefix);
    // Continue recording into the fork; the result must equal the full
    // cold recording (events, keyframes, materialization, VCD bytes).
    record_random(db, kTicks, 42, cut, &forked);
    expect_trace_identical(forked, full);
    for (std::uint64_t c = 1; c <= kTicks; c += 37) {
      EXPECT_EQ(forked.at_cycle(c).values, full.at_cycle(c).values);
    }
    EXPECT_EQ(vcd_of(forked), vcd_of(full));
  }
}

TEST(TraceFork, ForkIntoReusesBuffersAndRebinds) {
  const snapshot::SignalDb db = tiny_db();
  const snapshot::Trace full = record_random(db, 100, 9);
  snapshot::Trace out(&db);
  full.fork_into(64, out);
  EXPECT_EQ(out.size(), 64u);
  full.fork_into(7, out);  // shrink in place
  EXPECT_EQ(out.size(), 7u);
  expect_trace_identical(out, full.fork_at(7));
}

TEST(TraceReset, KeepsSchemaDropsData) {
  const snapshot::SignalDb db = tiny_db();
  snapshot::Trace t = record_random(db, 80, 3);
  EXPECT_GT(t.event_count(), 0u);
  t.reset();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.event_count(), 0u);
  // Recording after reset behaves like a fresh trace.
  record_random(db, 80, 3, 0, &t);
  expect_trace_identical(t, record_random(db, 80, 3));
}

// ------------------------------------------------- first_divergence ------

TEST(FirstDivergence, IdenticalProgramsNeverDiverge) {
  const auto progs = sample_programs(4, 11);
  for (const auto& p : progs) {
    EXPECT_EQ(fuzz::first_divergence(p, p), fuzz::kNoDivergence);
  }
}

TEST(FirstDivergence, FirstDifferingWord) {
  Program a;
  a.code = {1, 2, 3, 4, 5};
  Program b = a;
  b.code[3] = 99;
  EXPECT_EQ(fuzz::first_divergence(a, b), 3u);
  EXPECT_EQ(fuzz::first_divergence(b, a), 3u);
}

TEST(FirstDivergence, LengthChangeCapsAtShorterLength) {
  Program a;
  a.code = {1, 2, 3, 4, 5};
  Program longer = a;
  longer.code.push_back(6);  // differs first at index 5 == min length
  EXPECT_EQ(fuzz::first_divergence(a, longer), 5u);
  Program shorter = a;
  shorter.code.pop_back();  // words agree, but the length probe differs
  EXPECT_EQ(fuzz::first_divergence(a, shorter), 4u);
  // An early delete shifts everything after it.
  Program del = a;
  del.code.erase(del.code.begin() + 1);
  EXPECT_EQ(fuzz::first_divergence(a, del), 1u);
}

TEST(FirstDivergence, DataDifferenceIsCycleZero) {
  Program a;
  a.code = {1, 2, 3};
  a.data = {0, 0, 7};
  Program b = a;
  b.data[2] = 8;
  EXPECT_EQ(fuzz::first_divergence(a, b), 0u);
  // Trailing zeros are not a difference (zero-padded comparison).
  Program c = a;
  c.data.push_back(0);
  c.code[2] = 9;
  EXPECT_EQ(fuzz::first_divergence(a, c), 2u);
}

// ---------------------------------------------- checkpoint emission ------

TEST(SimulatorCheckpoint, EmissionShapeAndOrdering) {
  const sim::CoreConfig cfg;
  const sim::Simulator sim(cfg);
  const auto progs = sample_programs(6, 5);
  sim::RunResult res(&sim.signal_db());
  std::vector<sim::Checkpoint> points;
  for (const auto& p : progs) {
    sim.run(p, sim::CheckpointOptions{}, points, res);
    if (res.cycles < 16) continue;
    ASSERT_FALSE(points.empty()) << "no checkpoints for a " << res.cycles
                                 << "-cycle run";
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_LE(points[i].cycle, res.cycles);
      EXPECT_EQ(points[i].state.cycle, points[i].cycle);
      EXPECT_LE(points[i].commit_count, res.commits.size());
      EXPECT_GT(points[i].memory_bytes(), 0u);
      if (i > 0) {
        EXPECT_GT(points[i].cycle, points[i - 1].cycle);
        EXPECT_GT(points[i].fetch_watermark, points[i - 1].fetch_watermark)
            << "same-watermark points must have been coalesced";
      }
    }
  }
}

TEST(SimulatorCheckpoint, DenseTraceRecordingIsRejected) {
  sim::CoreConfig cfg;
  cfg.record_dense_trace = true;
  const sim::Simulator sim(cfg);
  const auto progs = sample_programs(1, 5);
  sim::RunResult res(&sim.signal_db());
  std::vector<sim::Checkpoint> points;
  EXPECT_THROW(sim.run(progs[0], sim::CheckpointOptions{}, points, res),
               std::runtime_error);
}

// ------------------------------------------------- run_from == run -------

TEST(RunFrom, BitIdenticalToColdRunForEveryValidCheckpoint) {
  const sim::CoreConfig cfg;
  const sim::Simulator sim(cfg);
  util::Rng rng(123);
  const auto parents = sample_programs(5, 77);

  std::size_t resumes_checked = 0;
  for (const auto& parent : parents) {
    sim::RunResult parent_run(&sim.signal_db());
    std::vector<sim::Checkpoint> points;
    sim.run(parent, sim::CheckpointOptions{}, points, parent_run);

    for (int m = 0; m < 8; ++m) {
      const Program child = fuzz::mutate(parent, rng);
      const std::size_t divergence = fuzz::first_divergence(parent, child);
      const sim::RunResult cold = sim.run(child);
      for (const sim::Checkpoint& cp : points) {
        if (cp.fetch_watermark >= divergence) continue;
        sim::RunResult resumed(&sim.signal_db());
        sim.run_from(cp, parent_run.trace, parent_run.commits, child,
                     resumed);
        expect_run_identical(resumed, cold);
        ++resumes_checked;
      }
    }
  }
  EXPECT_GT(resumes_checked, 20u)
      << "mutation sampling produced too few resumable checkpoints for the "
         "contract to be meaningfully pinned";
}

TEST(RunFrom, ForkedRunVcdByteIdenticalToColdRun) {
  const sim::CoreConfig cfg;
  const sim::Simulator sim(cfg);
  util::Rng rng(31);
  const auto parents = sample_programs(3, 15);
  std::size_t checked = 0;
  for (const auto& parent : parents) {
    sim::RunResult parent_run(&sim.signal_db());
    std::vector<sim::Checkpoint> points;
    sim.run(parent, sim::CheckpointOptions{}, points, parent_run);
    const Program child = fuzz::mutate(parent, rng);
    const std::size_t divergence = fuzz::first_divergence(parent, child);
    for (const sim::Checkpoint& cp : points) {
      if (cp.fetch_watermark >= divergence) continue;
      sim::RunResult resumed(&sim.signal_db());
      sim.run_from(cp, parent_run.trace, parent_run.commits, child, resumed);
      EXPECT_EQ(vcd_of(resumed.trace), vcd_of(sim.run(child).trace));
      ++checked;
      break;  // one deep checkpoint per parent suffices for the VCD check
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(RunFrom, CommitPrefixOverrunThrows) {
  const sim::CoreConfig cfg;
  const sim::Simulator sim(cfg);
  const auto progs = sample_programs(1, 5);
  sim::RunResult parent_run(&sim.signal_db());
  std::vector<sim::Checkpoint> points;
  sim.run(progs[0], sim::CheckpointOptions{}, points, parent_run);
  ASSERT_FALSE(points.empty());
  sim::Checkpoint broken = points.back();
  broken.commit_count = parent_run.commits.size() + 1;
  sim::RunResult out(&sim.signal_db());
  EXPECT_THROW(sim.run_from(broken, parent_run.trace, parent_run.commits,
                            progs[0], out),
               std::runtime_error);
}

// -------------------------------------------- worker checkpoint cache ----

core::WorkerResult process_job(core::CampaignWorker& worker,
                               const fuzz::FuzzJob& job) {
  return worker.process(job);
}

void expect_worker_result_identical(const core::WorkerResult& a,
                                    const core::WorkerResult& b) {
  EXPECT_EQ(a.iteration, b.iteration);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].start_cycle, b.windows[i].start_cycle);
    EXPECT_EQ(a.windows[i].end_cycle, b.windows[i].end_cycle);
    EXPECT_EQ(a.windows[i].inst, b.windows[i].inst);
    EXPECT_EQ(a.windows[i].mispredicted, b.windows[i].mispredicted);
  }
  EXPECT_EQ(a.lp_hits, b.lp_hits);
  EXPECT_EQ(a.coverage.points(), b.coverage.points());
  EXPECT_EQ(a.coverage.toggle_bits(), b.coverage.toggle_bits());
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(core::dedup_key(a.reports[i]), core::dedup_key(b.reports[i]));
  }
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(WorkerCheckpointCache, FastPathMatchesColdPathJobForJob) {
  core::CampaignSpec spec;  // default preset
  const core::OfflineResult offline =
      core::run_offline_phase(spec.core, spec.pdlc);
  core::WorkerCheckpointOptions on;
  core::WorkerCheckpointOptions off;
  off.enabled = false;
  core::CampaignWorker fast(spec.core, offline, spec.lp_policy,
                            spec.detector, on);
  core::CampaignWorker cold(spec.core, offline, spec.lp_policy,
                            spec.detector, off);

  core::CampaignScheduler scheduler(spec.fuzzer, 21, 160);
  std::size_t resumed_before = 0;
  while (true) {
    const auto batch = scheduler.next_batch(16);
    if (batch.empty()) break;
    for (const auto& job : batch) {
      expect_worker_result_identical(process_job(fast, job),
                                     process_job(cold, job));
      // Everything with coverage feeds back so mutation fan-out exists.
      scheduler.feedback(job.program, job.iteration);
    }
  }
  resumed_before = fast.checkpoint_stats().resumed;
  EXPECT_GT(resumed_before, 0u) << "the fast path never engaged";
  EXPECT_EQ(cold.checkpoint_stats().resumed, 0u);
  EXPECT_GT(fast.checkpoint_stats().insertions, 0u);
}

TEST(WorkerCheckpointCache, TinyBudgetEvictsAndStaysCorrect) {
  core::CampaignSpec spec;
  const core::OfflineResult offline =
      core::run_offline_phase(spec.core, spec.pdlc);
  core::WorkerCheckpointOptions tiny;
  tiny.cache_bytes = 1 << 20;  // 1 MiB: forces continuous eviction
  core::WorkerCheckpointOptions off;
  off.enabled = false;
  core::CampaignWorker fast(spec.core, offline, spec.lp_policy,
                            spec.detector, tiny);
  core::CampaignWorker cold(spec.core, offline, spec.lp_policy,
                            spec.detector, off);
  core::CampaignScheduler scheduler(spec.fuzzer, 9, 80);
  while (true) {
    const auto batch = scheduler.next_batch(8);
    if (batch.empty()) break;
    for (const auto& job : batch) {
      expect_worker_result_identical(process_job(fast, job),
                                     process_job(cold, job));
      scheduler.feedback(job.program, job.iteration);
    }
  }
  EXPECT_LE(fast.checkpoint_cache().total_bytes(), tiny.cache_bytes);
}

TEST(CheckpointCache, HashCollisionDegradesToMiss) {
  const sim::CoreConfig cfg;
  const sim::Simulator sim(cfg);
  const auto progs = sample_programs(2, 3);
  core::CheckpointCache cache(64 << 20);
  core::CheckpointStats stats;
  core::CheckpointCache::Entry entry;
  entry.program = progs[0];
  sim::RunResult run(&sim.signal_db());
  sim.run(progs[0], sim::CheckpointOptions{}, entry.points, run);
  entry.trace = std::move(run.trace);
  entry.commits = std::move(run.commits);
  ASSERT_NE(cache.insert(progs[0].hash(), std::move(entry), stats), nullptr);
  // Same key, different program: must miss, not resume the wrong parent.
  EXPECT_EQ(cache.find(progs[0].hash(), progs[1]), nullptr);
  EXPECT_NE(cache.find(progs[0].hash(), progs[0]), nullptr);
}

}  // namespace
}  // namespace specure
