// Campaign-level differential pinning for checkpointed incremental
// simulation: at a fixed seed, the entire CampaignResult (history,
// findings by signature, first-detection map, MST sample, coverage
// curves) must be bit-identical between checkpoint=on and checkpoint=off
// for jobs ∈ {1, 4}, on the default and full presets.
#include <gtest/gtest.h>

#include "core/campaign_spec.hpp"
#include "core/session.hpp"

namespace specure::core {
namespace {

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].iteration, b.history[i].iteration);
    EXPECT_EQ(a.history[i].covered_pdlc, b.history[i].covered_pdlc);
    EXPECT_EQ(a.history[i].coverage_points, b.history[i].coverage_points);
    EXPECT_EQ(a.history[i].vulns_found, b.history[i].vulns_found);
    EXPECT_EQ(a.history[i].cycles, b.history[i].cycles);
  }
  ASSERT_EQ(a.vulns.size(), b.vulns.size());
  for (std::size_t i = 0; i < a.vulns.size(); ++i) {
    EXPECT_EQ(dedup_key(a.vulns[i]), dedup_key(b.vulns[i]));
    EXPECT_EQ(finding_key(a.vulns[i]), finding_key(b.vulns[i]));
    EXPECT_EQ(a.vulns[i].sink_signal, b.vulns[i].sink_signal);
    EXPECT_EQ(a.vulns[i].before, b.vulns[i].before);
    EXPECT_EQ(a.vulns[i].after, b.vulns[i].after);
    EXPECT_EQ(a.vulns[i].program, b.vulns[i].program);
  }
  EXPECT_EQ(a.first_detection, b.first_detection);
  ASSERT_EQ(a.mst_sample.size(), b.mst_sample.size());
  for (std::size_t i = 0; i < a.mst_sample.size(); ++i) {
    EXPECT_EQ(a.mst_sample[i].start_cycle, b.mst_sample[i].start_cycle);
    EXPECT_EQ(a.mst_sample[i].end_cycle, b.mst_sample[i].end_cycle);
    EXPECT_EQ(a.mst_sample[i].inst, b.mst_sample[i].inst);
  }
  EXPECT_EQ(a.total_windows, b.total_windows);
  EXPECT_EQ(a.mispredicted_windows, b.mispredicted_windows);
  EXPECT_EQ(a.pdlc_total, b.pdlc_total);
}

CampaignResult run_campaign(const std::string& preset, bool checkpoint,
                            std::size_t jobs, std::uint64_t iterations,
                            std::uint64_t seed,
                            TierMode tier = TierMode::kFast) {
  CampaignSpec spec = CampaignSpec::preset(preset);
  spec.rng_seed = seed;
  spec.jobs = jobs;
  spec.batch_size = 16;
  spec.budget.iterations = iterations;
  spec.checkpoint = checkpoint;
  spec.tier = tier;
  spec.progress_interval = 0;
  Session session(std::move(spec));
  return session.run();
}

TEST(CheckpointDifferential, DefaultPresetJobs1) {
  expect_identical(run_campaign("default", true, 1, 200, 7),
                   run_campaign("default", false, 1, 200, 7));
}

TEST(CheckpointDifferential, DefaultPresetJobs4) {
  expect_identical(run_campaign("default", true, 4, 200, 7),
                   run_campaign("default", false, 4, 200, 7));
}

TEST(CheckpointDifferential, FullPresetJobs1) {
  const CampaignResult on = run_campaign("full", true, 1, 120, 9);
  const CampaignResult off = run_campaign("full", false, 1, 120, 9);
  // The full preset must actually produce findings for the comparison to
  // cover the detector path end to end.
  EXPECT_FALSE(on.vulns.empty());
  expect_identical(on, off);
}

TEST(CheckpointDifferential, FullPresetJobs4) {
  expect_identical(run_campaign("full", true, 4, 120, 9),
                   run_campaign("full", false, 4, 120, 9));
}

TEST(CheckpointDifferential, CheckpointOnIsJobCountInvariant) {
  expect_identical(run_campaign("full", true, 1, 120, 5),
                   run_campaign("full", true, 4, 120, 5));
}

TEST(CheckpointDifferential, TinyCacheBudgetStillIdentical) {
  CampaignSpec spec = CampaignSpec::preset("default");
  spec.rng_seed = 13;
  spec.jobs = 2;
  spec.batch_size = 16;
  spec.budget.iterations = 150;
  spec.checkpoint = true;
  spec.checkpoint_cache_mb = 1;  // constant eviction pressure
  spec.progress_interval = 0;
  Session tiny(std::move(spec));
  expect_identical(tiny.run(), run_campaign("default", false, 2, 150, 13));
}

// ---- tiered execution: tier=fast must never change a CampaignResult ----

TEST(TieredCampaignDifferential, DefaultPresetMatrix) {
  // One detailed baseline against the full tier=fast matrix:
  // checkpoint on|off × jobs 1|4 (the fast tier composes with the
  // checkpoint fast path — cache hits past the handoff still win).
  const CampaignResult detailed =
      run_campaign("default", true, 1, 200, 7, TierMode::kDetailed);
  for (const bool checkpoint : {true, false}) {
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
      expect_identical(detailed, run_campaign("default", checkpoint, jobs,
                                              200, 7, TierMode::kFast));
    }
  }
}

TEST(TieredCampaignDifferential, FullPresetMatrix) {
  // The full preset monitors the data cache, so loads arm the handoff
  // scan (the most conservative fast-tier policy) — and it actually
  // produces findings, covering the detector path end to end.
  const CampaignResult detailed =
      run_campaign("full", true, 1, 120, 9, TierMode::kDetailed);
  EXPECT_FALSE(detailed.vulns.empty());
  for (const bool checkpoint : {true, false}) {
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
      expect_identical(detailed, run_campaign("full", checkpoint, jobs, 120,
                                              9, TierMode::kFast));
    }
  }
}

TEST(TieredCampaignDifferential, TierSpecKeyRoundTrip) {
  CampaignSpec spec;
  EXPECT_EQ(spec.tier, TierMode::kFast);  // fast is the default
  spec.set("tier", "detailed");
  EXPECT_EQ(spec.tier, TierMode::kDetailed);
  const CampaignSpec reloaded = CampaignSpec::from_toml_string(spec.to_toml());
  EXPECT_EQ(reloaded, spec);
  spec.set("tier", "fast");
  EXPECT_EQ(spec.tier, TierMode::kFast);
  EXPECT_THROW(spec.set("tier", "warp"), SpecError);
}

TEST(CheckpointDifferential, SpecKeysRoundTrip) {
  CampaignSpec spec;
  EXPECT_TRUE(spec.checkpoint);
  spec.set("checkpoint", "off");
  EXPECT_FALSE(spec.checkpoint);
  spec.set("checkpoint_cache_mb", "8");
  EXPECT_EQ(spec.checkpoint_cache_mb, 8u);
  const CampaignSpec reloaded = CampaignSpec::from_toml_string(spec.to_toml());
  EXPECT_EQ(reloaded, spec);
  spec.set("checkpoint", "on");
  spec.set("checkpoint_cache_mb", "0");
  EXPECT_THROW(spec.validate(), SpecError);
}

}  // namespace
}  // namespace specure::core
