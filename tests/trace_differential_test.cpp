// Trace differential suite: replay identical programs through the
// retained dense reference recorder (CoreConfig::record_dense_trace) and
// the delta-native Trace, and assert every query the Online Phase
// detectors use answers identically — materialization, diff,
// toggle-derived change counts, change masks, pulse detection — plus VCD
// byte-equivalence and a golden-file round-trip through the reader.
#include <gtest/gtest.h>

#include <sstream>

#include "core/coverage_calc.hpp"
#include "core/mst.hpp"
#include "core/offline.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/seeds.hpp"
#include "riscv/program.hpp"
#include "sim/core.hpp"
#include "snapshot/vcd.hpp"
#include "util/rng.hpp"

namespace specure {
namespace {

// The simulator owns the SignalDb every trace points into, so it must
// outlive the RunResults the tests hold — one shared static instance.
sim::RunResult dual_run(const riscv::Program& program) {
  static sim::Simulator sim = [] {
    sim::CoreConfig cfg;
    cfg.record_dense_trace = true;
    return sim::Simulator(cfg);
  }();
  sim::RunResult run = sim.run(program);
  EXPECT_NE(run.dense_trace, nullptr);
  return run;
}

std::vector<riscv::Program> corpus() {
  std::vector<riscv::Program> programs;
  util::Rng rng(11);
  programs.push_back(fuzz::make_branch_mispredict_seed(rng).program);
  programs.push_back(fuzz::make_bti_seed(rng).program);
  for (int i = 0; i < 3; ++i) {
    programs.push_back(riscv::random_program(rng, 64 + 32 * i));
  }
  return programs;
}

TEST(TraceDifferential, EveryTickMaterializesIdentically) {
  for (const auto& program : corpus()) {
    const sim::RunResult run = dual_run(program);
    const snapshot::DenseTrace& dense = *run.dense_trace;
    ASSERT_EQ(run.trace.size(), dense.size());
    for (std::size_t i = 0; i < dense.size(); ++i) {
      const snapshot::Snapshot snap = run.trace[i];
      ASSERT_EQ(snap.cycle, dense[i].cycle) << "tick " << i;
      ASSERT_EQ(snap.values, dense[i].values) << "tick " << i;
    }
  }
}

TEST(TraceDifferential, WindowDiffMatchesDenseSnapshotDiff) {
  for (const auto& program : corpus()) {
    const sim::RunResult run = dual_run(program);
    const snapshot::DenseTrace& dense = *run.dense_trace;
    const auto windows = core::extract_mst(run.trace);
    for (const auto& w : windows) {
      const auto delta = run.trace.diff(w.start_cycle, w.end_cycle);
      const auto ref = snapshot::diff(dense.at_cycle(w.start_cycle),
                                      dense.at_cycle(w.end_cycle));
      ASSERT_EQ(delta.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(delta[i].id, ref[i].id);
        EXPECT_EQ(delta[i].before, ref[i].before);
        EXPECT_EQ(delta[i].after, ref[i].after);
      }
    }
  }
}

TEST(TraceDifferential, ChangeCountsAndMasksMatchDense) {
  for (const auto& program : corpus()) {
    const sim::RunResult run = dual_run(program);
    const snapshot::DenseTrace& dense = *run.dense_trace;
    const std::uint64_t last = run.trace.cycle_at(run.trace.size() - 1);
    // Windows of several shapes: detector windows, whole trace, clipped
    // and fully out-of-range.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges = {
        {0, last}, {1, last}, {last / 2, last}, {3, 17}, {last, last + 40}};
    for (const auto& w : core::extract_mst(run.trace)) {
      ranges.emplace_back(w.start_cycle, w.end_cycle);
    }
    for (const auto& [from, to] : ranges) {
      EXPECT_EQ(run.trace.change_counts(from, to),
                dense.change_counts(from, to))
          << "window [" << from << ", " << to << "]";
      EXPECT_EQ(run.trace.changed_mask(from, to), dense.changed_mask(from, to))
          << "window [" << from << ", " << to << "]";
    }
  }
}

TEST(TraceDifferential, ToggleCoverageMatchesDenseRecomputation) {
  for (const auto& program : corpus()) {
    const sim::RunResult run = dual_run(program);
    const snapshot::DenseTrace& dense = *run.dense_trace;
    std::uint64_t ref_toggles = 0;
    for (std::size_t i = 1; i < dense.size(); ++i) {
      ref_toggles += snapshot::toggle_count(dense[i - 1], dense[i]);
    }
    EXPECT_EQ(run.coverage.toggle_bits(), ref_toggles);
  }
}

TEST(TraceDifferential, AnyNonzeroMatchesDenseScan) {
  for (const auto& program : corpus()) {
    const sim::RunResult run = dual_run(program);
    const snapshot::DenseTrace& dense = *run.dense_trace;
    const auto id = run.trace.db().id_of("core.lsu.tainted_access");
    const auto mispred = run.trace.db().id_of("core.rob.brupdate_mispredict");
    const std::uint64_t last = run.trace.cycle_at(run.trace.size() - 1);
    for (const snapshot::SignalId sig : {id, mispred}) {
      for (const auto& [from, to] :
           std::vector<std::pair<std::uint64_t, std::uint64_t>>{
               {1, last}, {1, last / 2}, {last / 2, last}}) {
        bool ref = false;
        for (std::uint64_t c = from + 1; c <= to; ++c) {
          if (dense.at_cycle(c).values[sig] != 0) {
            ref = true;
            break;
          }
        }
        EXPECT_EQ(run.trace.any_nonzero(sig, from, to), ref)
            << "signal " << sig << " window (" << from << ", " << to << "]";
      }
    }
  }
}

TEST(TraceDifferential, LpCoverageIdenticalOnBothPaths) {
  const core::OfflineResult off = core::run_offline_phase(sim::CoreConfig{});
  for (const auto& program : corpus()) {
    const sim::RunResult run = dual_run(program);
    const auto windows = core::extract_mst(run.trace);
    core::LpCoverageMap delta_map(off.ifg, off.pdlc, run.trace.db());
    core::LpCoverageMap dense_map(off.ifg, off.pdlc, run.trace.db());
    delta_map.update(run.trace, windows);
    dense_map.update(*run.dense_trace, windows);
    EXPECT_EQ(delta_map.covered_mask(), dense_map.covered_mask());
  }
}

TEST(TraceDifferential, VcdWritersAreByteIdentical) {
  for (const auto& program : corpus()) {
    const sim::RunResult run = dual_run(program);
    std::ostringstream from_delta, from_dense;
    snapshot::write_vcd(from_delta, run.trace, "miniboom");
    snapshot::write_vcd(from_dense, *run.dense_trace, "miniboom");
    EXPECT_EQ(from_delta.str(), from_dense.str());
  }
}

TEST(TraceDifferential, VcdRoundTripRestoresEveryValue) {
  util::Rng rng(23);
  const sim::RunResult run = dual_run(riscv::random_program(rng, 96));
  std::ostringstream os;
  snapshot::write_vcd(os, run.trace);
  std::istringstream is(os.str());
  const snapshot::VcdData parsed = snapshot::read_vcd(is);

  const snapshot::SignalDb& db = run.trace.db();
  ASSERT_EQ(parsed.names.size(), db.size());
  ASSERT_EQ(parsed.cycles.size(), run.trace.size());
  for (std::size_t t = 0; t < run.trace.size(); ++t) {
    const snapshot::Snapshot snap = run.trace[t];
    ASSERT_EQ(parsed.cycles[t], snap.cycle);
    for (snapshot::SignalId i = 0; i < db.size(); ++i) {
      const unsigned width = db.info(i).width;
      const std::uint64_t mask =
          width >= 64 ? ~0ULL : ((1ULL << width) - 1);
      ASSERT_EQ(parsed.values[t][i], snap.values[i] & mask)
          << "tick " << t << " signal " << db.info(i).name;
    }
  }
}

TEST(TraceDifferential, WindowVcdMatchesWholeTraceTail) {
  util::Rng rng(29);
  const sim::RunResult run =
      dual_run(fuzz::make_branch_mispredict_seed(rng).program);
  const auto windows = core::extract_mst(run.trace);
  ASSERT_FALSE(windows.empty());
  const auto& w = windows.front();

  std::ostringstream os;
  snapshot::write_vcd_window(os, run.trace, w.start_cycle, w.end_cycle);
  std::istringstream is(os.str());
  const snapshot::VcdData parsed = snapshot::read_vcd(is);

  ASSERT_FALSE(parsed.cycles.empty());
  EXPECT_EQ(parsed.cycles.front(), w.start_cycle);
  EXPECT_EQ(parsed.cycles.back(), w.end_cycle);
  for (std::size_t t = 0; t < parsed.cycles.size(); ++t) {
    const snapshot::Snapshot snap = run.trace.at_cycle(parsed.cycles[t]);
    for (snapshot::SignalId i = 0; i < run.trace.db().size(); ++i) {
      const unsigned width = run.trace.db().info(i).width;
      const std::uint64_t mask =
          width >= 64 ? ~0ULL : ((1ULL << width) - 1);
      ASSERT_EQ(parsed.values[t][i], snap.values[i] & mask);
    }
  }
}

// --- Dirty-set capture sufficiency matrix -------------------------------
//
// The non-dense capture path walks only the signal ids the components
// marked dirty this cycle (Trace::record_dirty); the dense config forces
// the full per-cycle sweep through the very same Trace. A component that
// under-marks — forgets one store-side LRU rotation, one rolled-back
// map-table entry, one TLB fill — makes the two event streams diverge,
// so byte-comparing them proves the dirty set is a superset of every
// actual change (and record()'s no-op on unchanged values makes a
// superset exact).

sim::CoreConfig preset_cfg(const char* name) {
  sim::CoreConfig cfg;
  EXPECT_TRUE(sim::lookup_core_preset(name, cfg)) << name;
  return cfg;
}

/// Everything the campaign consumes must be bit-identical: the event
/// stream (via VCD byte-compare, which serializes every change event),
/// toggle coverage, the commit log, and the architectural end state.
void expect_bit_identical(const sim::RunResult& a, const sim::RunResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  std::ostringstream va, vb;
  snapshot::write_vcd(va, a.trace, "miniboom");
  snapshot::write_vcd(vb, b.trace, "miniboom");
  EXPECT_EQ(va.str(), vb.str());
  EXPECT_EQ(a.coverage.toggle_bits(), b.coverage.toggle_bits());
  EXPECT_EQ(a.instructions_committed, b.instructions_committed);
  EXPECT_EQ(a.halted_clean, b.halted_clean);
  EXPECT_EQ(a.final_data, b.final_data);
  ASSERT_EQ(a.commits.size(), b.commits.size());
  for (std::size_t i = 0; i < a.commits.size(); ++i) {
    const auto& x = a.commits[i];
    const auto& y = b.commits[i];
    EXPECT_EQ(x.cycle, y.cycle) << "commit " << i;
    EXPECT_EQ(x.pc, y.pc) << "commit " << i;
    EXPECT_EQ(x.inst, y.inst) << "commit " << i;
    EXPECT_EQ(x.writes_rd, y.writes_rd) << "commit " << i;
    EXPECT_EQ(x.rd, y.rd) << "commit " << i;
    EXPECT_EQ(x.writes_csr, y.writes_csr) << "commit " << i;
    EXPECT_EQ(x.csr, y.csr) << "commit " << i;
    EXPECT_EQ(x.is_store, y.is_store) << "commit " << i;
    EXPECT_EQ(x.store_addr, y.store_addr) << "commit " << i;
  }
}

TEST(TraceDifferential, DirtyCaptureMatchesDenseSweepAcrossConfigs) {
  // Every core preset exercises a different mark surface: mwait drives
  // the CSR timer chain (dcache monitored-line hook), zenbleed the
  // rollback suppression path, no-spec the degenerate pipeline, full
  // everything at once. The corpus covers wrong-path execution and
  // mispredict rollback (branch-mispredict and BTI seeds) plus random
  // programs.
  for (const char* preset :
       {"default", "no-spec", "mwait", "zenbleed", "full"}) {
    sim::CoreConfig cfg = preset_cfg(preset);
    sim::Simulator dirty_sim(cfg);
    cfg.record_dense_trace = true;
    sim::Simulator dense_sim(cfg);
    for (const auto& program : corpus()) {
      const sim::RunResult dirty = dirty_sim.run(program);
      const sim::RunResult dense = dense_sim.run(program);
      SCOPED_TRACE(preset);
      expect_bit_identical(dirty, dense);
    }
  }
}

TEST(TraceDifferential, TieredDirtyCaptureMatchesDenseUnderLoadsArm) {
  // The fast tier shares the capture engine; a tiered run (both handoff
  // policies — loads_arm is the cache-monitoring detector's conservative
  // scan) must produce the dense reference's exact event stream.
  sim::CoreConfig cfg = preset_cfg("full");
  sim::Simulator tiered_sim(cfg);
  cfg.record_dense_trace = true;
  sim::Simulator dense_sim(cfg);
  for (const auto& program : corpus()) {
    const sim::RunResult dense = dense_sim.run(program);
    for (const bool loads_arm : {false, true}) {
      const auto& dec = tiered_sim.decode(program);
      const std::size_t handoff = fuzz::handoff_index(dec, loads_arm);
      sim::RunResult tiered(&tiered_sim.signal_db());
      tiered_sim.run_tiered(program, handoff, tiered, nullptr, &dec);
      SCOPED_TRACE(loads_arm ? "loads_arm" : "branches_only");
      expect_bit_identical(tiered, dense);
    }
  }
}

TEST(TraceDifferential, CheckpointResumeMidKeyframeMatchesColdRun) {
  // A resumed run's first captured cycle relies on the forked trace's
  // live array plus that cycle's own dirty marks — no full re-sweep. The
  // 24-cycle cadence forces checkpoints off the 64-tick keyframe grid,
  // so the fork lands mid-keyframe (the replay-heavy path).
  sim::Simulator s{sim::CoreConfig{}};
  for (const auto& program : corpus()) {
    sim::RunResult cold(&s.signal_db());
    s.run(program, cold);
    sim::CheckpointOptions opts;
    opts.interval = 24;
    std::vector<sim::Checkpoint> checkpoints;
    sim::RunResult parent(&s.signal_db());
    s.run(program, opts, checkpoints, parent);
    std::size_t tested = 0;
    for (const auto& ck : checkpoints) {
      if (ck.cycle % 64 == 0) continue;  // keyframe-aligned: easy case
      sim::RunResult resumed(&s.signal_db());
      s.run_from(ck, parent.trace, parent.commits, program, resumed);
      SCOPED_TRACE("checkpoint cycle " + std::to_string(ck.cycle));
      expect_bit_identical(resumed, cold);
      if (++tested == 3) break;  // bound test cost per program
    }
    EXPECT_GT(tested, 0u) << "no mid-keyframe checkpoint was saved";
  }
}

TEST(TraceDifferential, DeltaTraceIsAtLeastFiveTimesSmaller) {
  util::Rng rng(31);
  const sim::RunResult run = dual_run(riscv::random_program(rng, 128));
  ASSERT_GT(run.trace.size(), 100u);  // a real run, not a stub
  EXPECT_GE(run.dense_trace->memory_bytes(), 5 * run.trace.memory_bytes())
      << "delta trace lost its memory advantage: dense="
      << run.dense_trace->memory_bytes()
      << " delta=" << run.trace.memory_bytes();
}

}  // namespace
}  // namespace specure
