#include <gtest/gtest.h>

#include "core/coverage_calc.hpp"
#include "core/leakage.hpp"
#include "core/mst.hpp"
#include "core/offline.hpp"
#include "core/specure.hpp"
#include "core/vuln_detect.hpp"
#include "fuzz/seeds.hpp"
#include "riscv/program.hpp"

namespace specure::core {
namespace {

namespace csr = riscv::csr;
using riscv::Op;
using riscv::Program;
using riscv::ProgramBuilder;

constexpr std::uint8_t A0 = 10, A1 = 11, T0 = 5, T1 = 6, T2 = 7;

Program mispredict_program(const std::vector<std::uint32_t>& wrong_path,
                           const std::vector<std::uint32_t>& prologue = {}) {
  ProgramBuilder b;
  for (auto w : prologue) b.raw(w);
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(T0, 1);
  b.branch(Op::kBeq, T0, T0, "t");
  for (auto w : wrong_path) b.raw(w);
  b.label("t");
  b.nop();
  b.ecall();
  return b.build();
}

struct Pipeline {
  explicit Pipeline(sim::CoreConfig cfg, DetectorOptions dopt = {})
      : offline(run_offline_phase(cfg)),
        simulator(cfg),
        detector(offline.ifg, offline.pdlc, simulator.signal_db(), dopt) {}

  std::vector<VulnReport> analyze(const Program& p) {
    run = simulator.run(p);
    windows = extract_mst(run->trace);
    return detector.analyze(*run, windows);
  }

  OfflineResult offline;
  sim::Simulator simulator;
  VulnerabilityDetector detector;
  std::optional<sim::RunResult> run;
  std::vector<SpecWindow> windows;
};

// ------------------------------------------------------------------ MST --

TEST(Mst, FindsMispredictedWindow) {
  Pipeline pipe{sim::CoreConfig{}};
  pipe.analyze(mispredict_program({riscv::enc_nop()}));
  ASSERT_GE(pipe.windows.size(), 1u);
  const SpecWindow& w = pipe.windows[0];
  EXPECT_TRUE(w.mispredicted);
  EXPECT_GT(w.end_cycle, w.start_cycle);
  EXPECT_EQ(riscv::decode(w.inst).op, Op::kBeq);
}

TEST(Mst, NoWindowsInStraightLineCode) {
  ProgramBuilder b;
  b.li(T0, 1).addi(T0, T0, 2).ecall();
  Pipeline pipe{sim::CoreConfig{}};
  pipe.analyze(b.build());
  EXPECT_TRUE(pipe.windows.empty());
}

TEST(Mst, CorrectlyPredictedWindowNotMispredicted) {
  // A never-taken branch matches the predictor's reset state: the window
  // opens (branch unresolved) but resolves as correctly predicted.
  ProgramBuilder b;
  b.li(T0, 1).li(T1, 2);
  b.branch(Op::kBeq, T0, T1, "t");  // not taken, predicted not-taken
  b.nop();
  b.label("t");
  b.ecall();
  Pipeline pipe{sim::CoreConfig{}};
  pipe.analyze(b.build());
  ASSERT_EQ(pipe.windows.size(), 1u);
  EXPECT_FALSE(pipe.windows[0].mispredicted);
}

TEST(Mst, RowFormatMatchesPaperStyle) {
  SpecWindow w;
  w.start_cycle = 34594;
  w.end_cycle = 34625;
  w.inst = 0xFBEC52E3;
  w.pc = 0x800025B0 - static_cast<std::uint64_t>(
                          riscv::decode(0xFBEC52E3).imm);
  const std::string row = format_mst_row(1, w);
  EXPECT_NE(row.find("34594"), std::string::npos);
  EXPECT_NE(row.find("34625"), std::string::npos);
  EXPECT_NE(row.find("FBEC52E3"), std::string::npos);
  EXPECT_NE(row.find("BGE S8, T5, 0x800025B0"), std::string::npos);
}

// -------------------------------------------------------------- leakage --

TEST(Leakage, OnlyMispredictedWindowsAnalyzed) {
  Pipeline pipe{sim::CoreConfig{}};
  ProgramBuilder b;
  b.li(T0, 1).li(T1, 2);
  b.branch(Op::kBeq, T0, T1, "t");  // correctly predicted
  b.nop();
  b.label("t");
  b.ecall();
  pipe.analyze(b.build());
  const auto leaks = detect_leakage(pipe.run->trace, pipe.windows);
  EXPECT_TRUE(leaks.empty());
}

TEST(Leakage, SquashedWindowStillShowsMicroarchResidue) {
  Pipeline pipe{sim::CoreConfig{}};
  pipe.analyze(mispredict_program({riscv::enc_i(Op::kLd, T2, A0, 0x200)}));
  const auto leaks = detect_leakage(pipe.run->trace, pipe.windows);
  ASSERT_GE(leaks.size(), 1u);
  bool dcache_delta = false;
  for (const auto& d : leaks[0].deltas) {
    const auto& name = pipe.simulator.signal_db().info(d.id).name;
    dcache_delta |= name.rfind("core.dcache.", 0) == 0;
  }
  EXPECT_TRUE(dcache_delta) << "speculative cache fill must survive squash";
}

// ---------------------------------------------------------- vuln detect --

TEST(VulnDetect, ZenbleedDetectedWithRootCause) {
  ProgramBuilder setup;
  setup.li(T1, 1);
  setup.csrrw(0, csr::kZenbleedEn, T1);
  sim::CoreConfig cfg;
  cfg.vuln.zenbleed_emulation = true;
  Pipeline pipe{cfg};
  const auto reports = pipe.analyze(mispredict_program(
      {riscv::enc_i(Op::kAddi, T2, 0, 99)}, setup.build().code));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, VulnKind::kDirectLeak);
  EXPECT_EQ(reports[0].sink_signal, "core.rf.x7");
  EXPECT_EQ(reports[0].after, 99u);
  // Paper: root cause names the rename module / register file path.
  ASSERT_FALSE(reports[0].root_causes.empty());
  bool rename_named = false;
  for (const auto& rc : reports[0].root_causes) {
    rename_named |=
        rc.source_signal.rfind("core.rename.", 0) == 0 ||
        rc.source_signal.rfind("core.prf.", 0) == 0;
  }
  EXPECT_TRUE(rename_named);
  EXPECT_EQ(reports[0].cwe, "CWE-1342");
}

TEST(VulnDetect, MwaitDetectedWithDcacheRootCause) {
  ProgramBuilder setup;
  setup.li(A1, static_cast<std::int64_t>(riscv::kDataBase + 0x300));
  setup.csrrw(0, csr::kMonitorAddr, A1);
  setup.li(T1, 1);
  setup.csrrw(0, csr::kMwaitEn, T1);
  sim::CoreConfig cfg;
  cfg.vuln.mwait_emulation = true;
  Pipeline pipe{cfg};
  const auto reports = pipe.analyze(mispredict_program(
      {riscv::enc_i(Op::kLd, T2, A0, 0x300)}, setup.build().code));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].sink_signal, "core.csr.mwait_timer");
  ASSERT_FALSE(reports[0].root_causes.empty());
  // Paper: "direct leakage path between the data cache and mwait_timer".
  bool dcache_named = false;
  for (const auto& rc : reports[0].root_causes) {
    dcache_named |= rc.source_signal.rfind("core.dcache.", 0) == 0;
  }
  EXPECT_TRUE(dcache_named);
}

TEST(VulnDetect, NoFalsePositiveOnCleanMispredict) {
  Pipeline pipe{sim::CoreConfig{}};
  EXPECT_TRUE(pipe.analyze(mispredict_program({riscv::enc_nop()})).empty());
}

TEST(VulnDetect, NoFalsePositiveOnCommitsInsideWindow) {
  // An older slow divide commits while the window is open: the rf change
  // must be discharged by the commit log, not reported.
  ProgramBuilder b;
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(T0, 84).li(T1, 2);
  b.raw(riscv::enc_r(Op::kDiv, T2, T0, T1));  // slow op, commits late
  b.li(28, 1);
  b.branch(Op::kBeq, 28, 28, "t");  // mispredicted (taken)
  b.nop();
  b.label("t");
  b.nop();
  b.ecall();
  Pipeline pipe{sim::CoreConfig{}};
  EXPECT_TRUE(pipe.analyze(b.build()).empty());
}

TEST(VulnDetect, ZenbleedNotDetectedWhenEmulationOff) {
  ProgramBuilder setup;
  setup.li(T1, 1);
  setup.csrrw(0, csr::kZenbleedEn, T1);
  Pipeline pipe{sim::CoreConfig{}};  // emulation off
  EXPECT_TRUE(pipe.analyze(mispredict_program(
                      {riscv::enc_i(Op::kAddi, T2, 0, 99)},
                      setup.build().code))
                  .empty());
}

TEST(VulnDetect, SpectreSeedTriggersCacheResidueInMonitorMode) {
  util::Rng rng(1);
  const auto seed = fuzz::make_branch_mispredict_seed(rng);
  DetectorOptions dopt;
  dopt.monitor_cache = true;
  Pipeline pipe{sim::CoreConfig{}, dopt};
  const auto reports = pipe.analyze(seed.program);
  ASSERT_GE(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, VulnKind::kCacheResidue);
  EXPECT_FALSE(reports[0].root_causes.empty());
}

TEST(VulnDetect, CacheResidueRequiresMonitorMode) {
  util::Rng rng(1);
  const auto seed = fuzz::make_branch_mispredict_seed(rng);
  Pipeline pipe{sim::CoreConfig{}};  // monitor_cache off
  for (const auto& r : pipe.analyze(seed.program)) {
    EXPECT_NE(r.kind, VulnKind::kCacheResidue);
  }
}

TEST(VulnDetect, CacheResidueRequiresTaintedAccess) {
  // A wrong-path load with an *untainted* address changes the cache but is
  // not a Spectre gadget; monitor mode must not flag it.
  DetectorOptions dopt;
  dopt.monitor_cache = true;
  Pipeline pipe{sim::CoreConfig{}, dopt};
  const auto reports = pipe.analyze(
      mispredict_program({riscv::enc_i(Op::kLd, T2, A0, 0x200)}));
  EXPECT_TRUE(reports.empty());
}

// -------------------------------------------------------------- offline --

TEST(Offline, MiniBoomStats) {
  const OfflineResult off = run_offline_phase(sim::CoreConfig{});
  // Sanity bands for the default configuration (absolute numbers tracked
  // in EXPERIMENTS.md; the paper's BOOM has 162,631 signals / 9,048
  // channels — MiniBOOM is proportionally smaller).
  EXPECT_GT(off.ifg.node_count(), 200u);
  EXPECT_GT(off.ifg.edge_count(), 4000u);
  EXPECT_GT(off.pdlc.size(), 4000u);
  EXPECT_LT(off.pdlc.size(), 50'000u);
}

TEST(Offline, MwaitEmulationShortensDcacheToTimerPath) {
  // The dcache->CSR channel pair exists even without the emulation (a load
  // value can be CSR-written architecturally), but the emulation adds the
  // *direct* dcache->mwait_timer edge, so the witness path collapses to
  // length 2 — the root-cause report the paper shows.
  auto witness_len = [](const OfflineResult& off) -> std::size_t {
    const auto sink = off.ifg.id_of("core.csr.mwait_timer");
    const auto src = off.ifg.id_of("core.dcache.valid_0_0");
    for (std::size_t idx : off.pdlc.by_sink(sink)) {
      if (off.pdlc[idx].source == src) return off.pdlc[idx].path.size();
    }
    return 0;
  };
  sim::CoreConfig vuln;
  vuln.vuln.mwait_emulation = true;
  const std::size_t plain_len = witness_len(run_offline_phase({}));
  const std::size_t vuln_len = witness_len(run_offline_phase(vuln));
  EXPECT_GT(plain_len, 2u);  // indirect, through the load datapath
  EXPECT_EQ(vuln_len, 2u);   // direct leakage edge
}

TEST(Offline, RtlPathAgreesWithStructuralPath) {
  sim::CoreConfig cfg;
  cfg.vuln.mwait_emulation = true;
  const auto structural = run_offline_phase(cfg);
  const auto rtl = run_offline_phase_rtl(sim::emit_structural_verilog(cfg),
                                         "core", ift::ArchRegDb::riscv());
  EXPECT_EQ(rtl.pdlc.size(), structural.pdlc.size());
}

// -------------------------------------------------------- LP coverage ----

TEST(LpCoverage, GrowsDuringFuzzing) {
  EngineOptions opts;
  opts.rng_seed = 11;
  SpecureEngine engine(opts);
  const CampaignResult res = engine.run(60);
  ASSERT_EQ(res.history.size(), 60u);
  EXPECT_GT(res.history.back().covered_pdlc, 0u);
  // Monotone non-decreasing.
  for (std::size_t i = 1; i < res.history.size(); ++i) {
    EXPECT_GE(res.history[i].covered_pdlc, res.history[i - 1].covered_pdlc);
  }
}

TEST(LpCoverage, EndpointPolicyCoversAtLeastAsMuch) {
  const OfflineResult off = run_offline_phase(sim::CoreConfig{});
  sim::Simulator simulator{sim::CoreConfig{}};
  util::Rng rng(3);
  const auto seed = fuzz::make_branch_mispredict_seed(rng);
  const auto run = simulator.run(seed.program);
  const auto windows = extract_mst(run.trace);

  LpCoverageMap all(off.ifg, off.pdlc, simulator.signal_db(),
                    LpPolicy::kAllSignals);
  LpCoverageMap endpoints(off.ifg, off.pdlc, simulator.signal_db(),
                          LpPolicy::kEndpoints);
  all.update(run.trace, windows);
  endpoints.update(run.trace, windows);
  EXPECT_GE(endpoints.covered(), all.covered());
  EXPECT_EQ(all.total(), off.pdlc.size());
}

TEST(LpCoverage, DeltaPathMatchesDenseReferencePath) {
  const OfflineResult off = run_offline_phase(sim::CoreConfig{});
  sim::CoreConfig cfg;
  cfg.record_dense_trace = true;
  sim::Simulator simulator{cfg};
  util::Rng rng(4);
  const auto seed = fuzz::make_bti_seed(rng);
  const auto run = simulator.run(seed.program);
  ASSERT_NE(run.dense_trace, nullptr);
  const auto windows = extract_mst(run.trace);
  LpCoverageMap a(off.ifg, off.pdlc, simulator.signal_db());
  LpCoverageMap b(off.ifg, off.pdlc, simulator.signal_db());
  a.update(run.trace, windows);
  b.update(*run.dense_trace, windows);
  EXPECT_EQ(a.covered(), b.covered());
}

// ---------------------------------------------------------------- engine --

TEST(Engine, CampaignIsDeterministic) {
  EngineOptions opts;
  opts.rng_seed = 21;
  SpecureEngine e1(opts), e2(opts);
  const auto r1 = e1.run(40);
  const auto r2 = e2.run(40);
  ASSERT_EQ(r1.history.size(), r2.history.size());
  for (std::size_t i = 0; i < r1.history.size(); ++i) {
    EXPECT_EQ(r1.history[i].covered_pdlc, r2.history[i].covered_pdlc);
    EXPECT_EQ(r1.history[i].coverage_points, r2.history[i].coverage_points);
  }
  EXPECT_EQ(r1.vulns.size(), r2.vulns.size());
}

TEST(Engine, StopPredicateEndsEarly) {
  EngineOptions opts;
  opts.rng_seed = 22;
  SpecureEngine engine(opts);
  const auto res = engine.run(
      1000, [](const CampaignResult& r) { return r.history.size() >= 7; });
  EXPECT_EQ(res.history.size(), 7u);
}

TEST(Engine, FindsZenbleedByFuzzing) {
  // With the emulation armed, the fuzzer must find the Zenbleed leak in a
  // bounded number of iterations (CSR writes to zenbleed_en are in the
  // mutation vocabulary).
  EngineOptions opts;
  opts.core.vuln.zenbleed_emulation = true;
  opts.rng_seed = 1;
  SpecureEngine engine(opts);
  const auto res = engine.run(3500, [](const CampaignResult& r) {
    for (const auto& [key, iter] : r.first_detection) {
      if (key.find("core.rf.") != std::string::npos) return true;
    }
    return false;
  });
  bool found = false;
  for (const auto& [key, iter] : res.first_detection) {
    found |= key.find("core.rf.") != std::string::npos;
  }
  EXPECT_TRUE(found) << "zenbleed not found within 3500 iterations";
}

TEST(Engine, MstSampleCollected) {
  EngineOptions opts;
  opts.rng_seed = 23;
  SpecureEngine engine(opts);
  const auto res = engine.run(30);
  EXPECT_GT(res.total_windows, 0u);
  EXPECT_GT(res.mispredicted_windows, 0u);
  EXPECT_FALSE(res.mst_sample.empty());
  for (const auto& w : res.mst_sample) EXPECT_TRUE(w.mispredicted);
}

TEST(Engine, FindingKeysStable) {
  VulnReport r;
  r.kind = VulnKind::kDirectLeak;
  r.sink_signal = "core.rf.x7";
  EXPECT_EQ(finding_key(r), "direct-leak:core.rf.x7");
  r.kind = VulnKind::kCacheResidue;
  r.sink_signal = "core.dcache";
  EXPECT_EQ(finding_key(r), "cache-residue:core.dcache:conditional");
  r.window.opener_insts.push_back(riscv::enc_i(Op::kJalr, 0, 1, 0));
  EXPECT_EQ(finding_key(r), "cache-residue:core.dcache:indirect");
}

}  // namespace
}  // namespace specure::core
