#include <gtest/gtest.h>

#include <sstream>

#include "snapshot/signal_db.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/vcd.hpp"

namespace specure::snapshot {
namespace {

SignalDb make_db() {
  SignalDb db;
  db.add("core.a", 64, SignalClass::kMicroarchitectural, true);
  db.add("core.b", 8, SignalClass::kArchitectural, true);
  db.add("core.c", 1, SignalClass::kWire, false);
  return db;
}

Snapshot snap(std::uint64_t cycle, std::vector<std::uint64_t> vals) {
  Snapshot s;
  s.cycle = cycle;
  s.values = std::move(vals);
  return s;
}

TEST(SignalDb, AddAndLookup) {
  const SignalDb db = make_db();
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.id_of("core.b"), 1u);
  EXPECT_EQ(db.find("missing"), kInvalidSignal);
  EXPECT_THROW(db.id_of("missing"), std::runtime_error);
  EXPECT_TRUE(db.has("core.c"));
  EXPECT_EQ(db.info(0).width, 64u);
}

TEST(SignalDb, DuplicateThrows) {
  SignalDb db = make_db();
  EXPECT_THROW(db.add("core.a", 1), std::runtime_error);
}

TEST(SignalDb, ClassFilter) {
  const SignalDb db = make_db();
  EXPECT_EQ(db.with_class(SignalClass::kArchitectural).size(), 1u);
  EXPECT_EQ(db.with_class(SignalClass::kMicroarchitectural).size(), 1u);
  EXPECT_EQ(db.with_class(SignalClass::kWire).size(), 1u);
}

TEST(Snapshot, DiffFindsChanges) {
  const auto a = snap(10, {1, 2, 3});
  const auto b = snap(20, {1, 5, 3});
  const auto deltas = diff(a, b);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].id, 1u);
  EXPECT_EQ(deltas[0].before, 2u);
  EXPECT_EQ(deltas[0].after, 5u);
}

TEST(Snapshot, DiffIdenticalIsEmpty) {
  const auto a = snap(1, {7, 7, 7});
  EXPECT_TRUE(diff(a, a).empty());
}

TEST(Snapshot, DiffMismatchedSchemaThrows) {
  EXPECT_THROW(diff(snap(1, {1}), snap(2, {1, 2})), std::runtime_error);
}

TEST(Snapshot, ToggleCount) {
  const auto a = snap(1, {0b0000, 0xff});
  const auto b = snap(2, {0b1010, 0xff});
  EXPECT_EQ(toggle_count(a, b), 2u);
}

TEST(Trace, AtCycleContiguousLookup) {
  const SignalDb db = make_db();
  Trace t(&db);
  for (std::uint64_t c = 1; c <= 50; ++c) t.push(snap(c, {c, c, c}));
  EXPECT_EQ(t.at_cycle(1).values[0], 1u);
  EXPECT_EQ(t.at_cycle(37).values[0], 37u);
  EXPECT_EQ(t.at_cycle(50).values[0], 50u);
  EXPECT_THROW(t.at_cycle(51), std::runtime_error);
  EXPECT_THROW(t.at_cycle(0), std::runtime_error);
}

TEST(Trace, AtCycleErrorNamesCoveredRange) {
  const SignalDb db = make_db();
  Trace t(&db);
  for (std::uint64_t c = 5; c <= 9; ++c) t.push(snap(c, {c, 0, 0}));
  try {
    t.at_cycle(12);
    FAIL() << "expected out-of-range throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cycle 12"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("5..9"), std::string::npos);
  }
  EXPECT_THROW(Trace(&db).at_cycle(1), std::runtime_error);
}

TEST(Trace, NonContiguousCyclesFallBackToSearch) {
  const SignalDb db = make_db();
  Trace t(&db);
  for (const std::uint64_t c : {2u, 3u, 10u, 11u, 40u}) {
    t.push(snap(c, {c, c, c}));
  }
  EXPECT_EQ(t.at_cycle(10).values[1], 10u);
  EXPECT_EQ(t.at_cycle(40).values[2], 40u);
  EXPECT_THROW(t.at_cycle(12), std::runtime_error);
}

TEST(Trace, KeyframeCrossingMaterialization) {
  const SignalDb db = make_db();
  Trace t(&db);
  // Spans several keyframe intervals; signal 1 changes rarely so its
  // value must carry across keyframes correctly.
  const std::uint64_t n = 5 * Trace::kKeyframeInterval + 7;
  for (std::uint64_t c = 1; c <= n; ++c) {
    t.push(snap(c, {c, c / 100, c % 2}));
  }
  const std::uint64_t probes[] = {1, 63, 64, 65, 128, 200, 300, n - 1, n};
  for (const std::uint64_t c : probes) {
    const Snapshot s = t.at_cycle(c);
    EXPECT_EQ(s.values[0], c) << "cycle " << c;
    EXPECT_EQ(s.values[1], c / 100) << "cycle " << c;
    EXPECT_EQ(s.values[2], c % 2) << "cycle " << c;
    EXPECT_EQ(t.value_at(c, 1), c / 100) << "cycle " << c;
  }
}

TEST(Trace, RecordDetectsChangesAndCountsToggles) {
  const SignalDb db = make_db();
  Trace t(&db);
  t.begin_cycle(1);
  EXPECT_EQ(t.record(0, 0), 0u);   // initial zero: no event, no toggles
  EXPECT_EQ(t.record(1, 3), 2u);   // 0 -> 0b11
  EXPECT_EQ(t.record(2, 1), 1u);
  t.begin_cycle(2);
  EXPECT_EQ(t.record(0, 0), 0u);
  EXPECT_EQ(t.record(1, 3), 0u);   // unchanged: no event
  EXPECT_EQ(t.record(2, 0), 1u);
  EXPECT_EQ(t.event_count(), 3u);
  EXPECT_EQ(t.at_cycle(2).values[1], 3u);
}

TEST(Trace, RecordEnforcesOrdering) {
  const SignalDb db = make_db();
  Trace t(&db);
  EXPECT_THROW(t.record(0, 1), std::runtime_error);  // before begin_cycle
  t.begin_cycle(5);
  t.record(1, 7);
  EXPECT_THROW(t.record(1, 8), std::runtime_error);  // not ascending
  EXPECT_THROW(t.record(0, 8), std::runtime_error);
  EXPECT_THROW(t.begin_cycle(5), std::runtime_error);  // not increasing
  EXPECT_THROW(t.record(99, 1), std::runtime_error);   // outside schema
}

TEST(Trace, WindowDiffMatchesSnapshotDiff) {
  const SignalDb db = make_db();
  Trace t(&db);
  t.push(snap(1, {1, 0, 0}));
  t.push(snap(2, {2, 5, 0}));
  t.push(snap(3, {1, 5, 1}));  // signal 0 changed and changed back
  const auto deltas = t.diff(1, 3);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].id, 1u);
  EXPECT_EQ(deltas[0].before, 0u);
  EXPECT_EQ(deltas[0].after, 5u);
  EXPECT_EQ(deltas[1].id, 2u);
  EXPECT_TRUE(t.diff(2, 2).empty());
  EXPECT_THROW(t.diff(1, 9), std::runtime_error);
}

TEST(Trace, AnyNonzeroPulseDetection) {
  const SignalDb db = make_db();
  Trace t(&db);
  t.push(snap(1, {0, 0, 0}));
  t.push(snap(2, {0, 0, 1}));  // pulse at cycle 2
  t.push(snap(3, {0, 0, 0}));
  t.push(snap(4, {0, 0, 0}));
  EXPECT_TRUE(t.any_nonzero(2, 1, 3));
  EXPECT_FALSE(t.any_nonzero(2, 2, 4));  // (2, 4]: pulse already over
  EXPECT_FALSE(t.any_nonzero(0, 1, 4));
}

TEST(Trace, DeltaMemoryBeatsDenseRecorder) {
  const SignalDb db = make_db();
  Trace t(&db);
  DenseTrace dense(&db);
  // 1000 ticks, a change only every 4th tick — sparse, like real signals.
  for (std::uint64_t c = 1; c <= 1000; ++c) {
    const Snapshot s = snap(c, {c / 4, 7, 0});
    t.push(s);
    dense.push(s);
  }
  EXPECT_LT(t.memory_bytes(), dense.memory_bytes());
  // Queries agree between the two recorders.
  EXPECT_EQ(t.change_counts(10, 50), dense.change_counts(10, 50));
  EXPECT_EQ(t.changed_mask(0, 1000), dense.changed_mask(0, 1000));
}

TEST(Trace, ChangeCountsWindow) {
  const SignalDb db = make_db();
  Trace t(&db);
  // Signal 0 changes at cycles 2,3,4,5; signal 1 changes at cycle 4 only.
  t.push(snap(1, {0, 0, 0}));
  t.push(snap(2, {1, 0, 0}));
  t.push(snap(3, {2, 0, 0}));
  t.push(snap(4, {3, 9, 0}));
  t.push(snap(5, {4, 9, 0}));
  const auto counts = t.change_counts(2, 4);  // transitions at cycles 3..4
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(Trace, ChangedMask) {
  const SignalDb db = make_db();
  Trace t(&db);
  t.push(snap(1, {0, 0, 0}));
  t.push(snap(2, {1, 0, 0}));
  t.push(snap(3, {1, 0, 1}));
  const auto mask = t.changed_mask(1, 3);
  EXPECT_TRUE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_TRUE(mask[2]);
}

TEST(Trace, EmptyWindowNoChanges) {
  const SignalDb db = make_db();
  Trace t(&db);
  t.push(snap(1, {0, 0, 0}));
  t.push(snap(2, {5, 5, 5}));
  const auto counts = t.change_counts(5, 9);
  EXPECT_EQ(counts[0], 0u);
}

TEST(Vcd, ContainsHeaderAndChanges) {
  const SignalDb db = make_db();
  Trace t(&db);
  t.push(snap(1, {0xab, 1, 0}));
  t.push(snap(2, {0xab, 2, 1}));
  std::ostringstream os;
  write_vcd(os, t, "tb");
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$scope module tb $end"), std::string::npos);
  EXPECT_NE(vcd.find("core_a"), std::string::npos);
  EXPECT_NE(vcd.find("#1"), std::string::npos);
  EXPECT_NE(vcd.find("#2"), std::string::npos);
  // Unchanged signal 0 must appear once (initial dump) only.
  const std::string code0 = "!";  // first signal gets code index 0 -> '!'
  std::size_t occurrences = 0;
  for (std::size_t pos = 0; (pos = vcd.find(" " + code0 + "\n", pos)) !=
                            std::string::npos;
       ++pos) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
}

TEST(Vcd, SingleBitFormat) {
  SignalDb db;
  db.add("bit", 1);
  Trace t(&db);
  t.push(snap(1, {1}));
  std::ostringstream os;
  write_vcd(os, t);
  EXPECT_NE(os.str().find("1!"), std::string::npos);
}

}  // namespace
}  // namespace specure::snapshot
