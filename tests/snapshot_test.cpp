#include <gtest/gtest.h>

#include <sstream>

#include "snapshot/signal_db.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/vcd.hpp"

namespace specure::snapshot {
namespace {

SignalDb make_db() {
  SignalDb db;
  db.add("core.a", 64, SignalClass::kMicroarchitectural, true);
  db.add("core.b", 8, SignalClass::kArchitectural, true);
  db.add("core.c", 1, SignalClass::kWire, false);
  return db;
}

Snapshot snap(std::uint64_t cycle, std::vector<std::uint64_t> vals) {
  Snapshot s;
  s.cycle = cycle;
  s.values = std::move(vals);
  return s;
}

TEST(SignalDb, AddAndLookup) {
  const SignalDb db = make_db();
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.id_of("core.b"), 1u);
  EXPECT_EQ(db.find("missing"), kInvalidSignal);
  EXPECT_THROW(db.id_of("missing"), std::runtime_error);
  EXPECT_TRUE(db.has("core.c"));
  EXPECT_EQ(db.info(0).width, 64u);
}

TEST(SignalDb, DuplicateThrows) {
  SignalDb db = make_db();
  EXPECT_THROW(db.add("core.a", 1), std::runtime_error);
}

TEST(SignalDb, ClassFilter) {
  const SignalDb db = make_db();
  EXPECT_EQ(db.with_class(SignalClass::kArchitectural).size(), 1u);
  EXPECT_EQ(db.with_class(SignalClass::kMicroarchitectural).size(), 1u);
  EXPECT_EQ(db.with_class(SignalClass::kWire).size(), 1u);
}

TEST(Snapshot, DiffFindsChanges) {
  const auto a = snap(10, {1, 2, 3});
  const auto b = snap(20, {1, 5, 3});
  const auto deltas = diff(a, b);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].id, 1u);
  EXPECT_EQ(deltas[0].before, 2u);
  EXPECT_EQ(deltas[0].after, 5u);
}

TEST(Snapshot, DiffIdenticalIsEmpty) {
  const auto a = snap(1, {7, 7, 7});
  EXPECT_TRUE(diff(a, a).empty());
}

TEST(Snapshot, DiffMismatchedSchemaThrows) {
  EXPECT_THROW(diff(snap(1, {1}), snap(2, {1, 2})), std::runtime_error);
}

TEST(Snapshot, ToggleCount) {
  const auto a = snap(1, {0b0000, 0xff});
  const auto b = snap(2, {0b1010, 0xff});
  EXPECT_EQ(toggle_count(a, b), 2u);
}

TEST(Trace, AtCycleBinarySearch) {
  const SignalDb db = make_db();
  Trace t(&db);
  for (std::uint64_t c = 1; c <= 50; ++c) t.push(snap(c, {c, c, c}));
  EXPECT_EQ(t.at_cycle(1).values[0], 1u);
  EXPECT_EQ(t.at_cycle(37).values[0], 37u);
  EXPECT_EQ(t.at_cycle(50).values[0], 50u);
  EXPECT_THROW(t.at_cycle(51), std::runtime_error);
  EXPECT_THROW(t.at_cycle(0), std::runtime_error);
}

TEST(Trace, ChangeCountsWindow) {
  const SignalDb db = make_db();
  Trace t(&db);
  // Signal 0 changes at cycles 2,3,4,5; signal 1 changes at cycle 4 only.
  t.push(snap(1, {0, 0, 0}));
  t.push(snap(2, {1, 0, 0}));
  t.push(snap(3, {2, 0, 0}));
  t.push(snap(4, {3, 9, 0}));
  t.push(snap(5, {4, 9, 0}));
  const auto counts = t.change_counts(2, 4);  // transitions at cycles 3..4
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(Trace, ChangedMask) {
  const SignalDb db = make_db();
  Trace t(&db);
  t.push(snap(1, {0, 0, 0}));
  t.push(snap(2, {1, 0, 0}));
  t.push(snap(3, {1, 0, 1}));
  const auto mask = t.changed_mask(1, 3);
  EXPECT_TRUE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_TRUE(mask[2]);
}

TEST(Trace, EmptyWindowNoChanges) {
  const SignalDb db = make_db();
  Trace t(&db);
  t.push(snap(1, {0, 0, 0}));
  t.push(snap(2, {5, 5, 5}));
  const auto counts = t.change_counts(5, 9);
  EXPECT_EQ(counts[0], 0u);
}

TEST(Vcd, ContainsHeaderAndChanges) {
  const SignalDb db = make_db();
  Trace t(&db);
  t.push(snap(1, {0xab, 1, 0}));
  t.push(snap(2, {0xab, 2, 1}));
  std::ostringstream os;
  write_vcd(os, t, "tb");
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$scope module tb $end"), std::string::npos);
  EXPECT_NE(vcd.find("core_a"), std::string::npos);
  EXPECT_NE(vcd.find("#1"), std::string::npos);
  EXPECT_NE(vcd.find("#2"), std::string::npos);
  // Unchanged signal 0 must appear once (initial dump) only.
  const std::string code0 = "!";  // first signal gets code index 0 -> '!'
  std::size_t occurrences = 0;
  for (std::size_t pos = 0; (pos = vcd.find(" " + code0 + "\n", pos)) !=
                            std::string::npos;
       ++pos) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
}

TEST(Vcd, SingleBitFormat) {
  SignalDb db;
  db.add("bit", 1);
  Trace t(&db);
  t.push(snap(1, {1}));
  std::ostringstream os;
  write_vcd(os, t);
  EXPECT_NE(os.str().find("1!"), std::string::npos);
}

}  // namespace
}  // namespace specure::snapshot
