// Determinism and thread-safety coverage for the parallel campaign engine
// (scheduler → workers → merger, core/specure.hpp).
//
// The engine's contract: at a fixed rng_seed and batch_size, the
// CampaignResult is bit-identical regardless of the worker count, and
// batch_size == 1 reproduces the classic serial per-iteration feedback
// loop exactly.
#include <gtest/gtest.h>

#include "core/campaign_scheduler.hpp"
#include "core/coverage_calc.hpp"
#include "core/mst.hpp"
#include "core/offline.hpp"
#include "core/specure.hpp"
#include "core/vuln_detect.hpp"
#include "fuzz/corpus.hpp"
#include "sim/core.hpp"
#include "snapshot/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace specure::core {
namespace {

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].iteration, b.history[i].iteration);
    EXPECT_EQ(a.history[i].covered_pdlc, b.history[i].covered_pdlc);
    EXPECT_EQ(a.history[i].coverage_points, b.history[i].coverage_points);
    EXPECT_EQ(a.history[i].vulns_found, b.history[i].vulns_found);
    EXPECT_EQ(a.history[i].cycles, b.history[i].cycles);
  }
  ASSERT_EQ(a.vulns.size(), b.vulns.size());
  for (std::size_t i = 0; i < a.vulns.size(); ++i) {
    EXPECT_EQ(finding_key(a.vulns[i]), finding_key(b.vulns[i]));
    EXPECT_EQ(a.vulns[i].sink_signal, b.vulns[i].sink_signal);
    EXPECT_EQ(a.vulns[i].before, b.vulns[i].before);
    EXPECT_EQ(a.vulns[i].after, b.vulns[i].after);
  }
  EXPECT_EQ(a.first_detection, b.first_detection);
  ASSERT_EQ(a.mst_sample.size(), b.mst_sample.size());
  for (std::size_t i = 0; i < a.mst_sample.size(); ++i) {
    EXPECT_EQ(a.mst_sample[i].start_cycle, b.mst_sample[i].start_cycle);
    EXPECT_EQ(a.mst_sample[i].end_cycle, b.mst_sample[i].end_cycle);
    EXPECT_EQ(a.mst_sample[i].inst, b.mst_sample[i].inst);
  }
  EXPECT_EQ(a.total_windows, b.total_windows);
  EXPECT_EQ(a.mispredicted_windows, b.mispredicted_windows);
  EXPECT_EQ(a.pdlc_total, b.pdlc_total);
}

CampaignResult run_campaign(std::size_t jobs, std::size_t batch_size,
                            std::uint64_t iterations, std::uint64_t seed,
                            bool zenbleed = false) {
  EngineOptions opts;
  opts.rng_seed = seed;
  opts.jobs = jobs;
  opts.batch_size = batch_size;
  opts.core.vuln.zenbleed_emulation = zenbleed;
  SpecureEngine engine(opts);
  return engine.run(iterations);
}

TEST(CampaignParallel, Jobs4MatchesJobs1) {
  const auto serial = run_campaign(1, 16, 96, 33);
  const auto parallel = run_campaign(4, 16, 96, 33);
  expect_identical(serial, parallel);
}

TEST(CampaignParallel, OddWorkerCountAndBatchRemainder) {
  // 50 iterations over batches of 16 leaves a short tail batch; a worker
  // count that does not divide the batch stresses dynamic task claiming.
  const auto serial = run_campaign(1, 16, 50, 7);
  const auto parallel = run_campaign(3, 16, 50, 7);
  expect_identical(serial, parallel);
}

TEST(CampaignParallel, BatchSizeOneMatchesLegacyReferenceLoop) {
  // Hand-rolled replica of the pre-pipeline serial engine: per-iteration
  // feedback, one simulator, direct update() calls. The engine at
  // batch_size == 1 must reproduce it exactly for any worker count.
  EngineOptions opts;
  opts.rng_seed = 5;

  OfflineResult offline = run_offline_phase(opts.core, opts.pdlc);
  sim::Simulator simulator(opts.core);
  fuzz::Fuzzer fuzzer(opts.fuzzer, opts.rng_seed);
  LpCoverageMap lp(offline.ifg, offline.pdlc, simulator.signal_db(),
                   opts.lp_policy);
  VulnerabilityDetector detector(offline.ifg, offline.pdlc,
                                 simulator.signal_db(), opts.detector);
  sim::CoverageRecorder code_cov;

  const std::uint64_t kIters = 60;
  CampaignResult ref;
  ref.pdlc_total = offline.pdlc.size();
  for (std::uint64_t iter = 1; iter <= kIters; ++iter) {
    const riscv::Program program = fuzzer.next();
    const sim::RunResult run = simulator.run(program);
    const auto windows = extract_mst(run.trace);

    ref.total_windows += windows.size();
    for (const auto& w : windows) {
      ref.mispredicted_windows += w.mispredicted;
      if (ref.mst_sample.size() < opts.mst_sample_rows && w.mispredicted) {
        ref.mst_sample.push_back(w);
      }
    }
    const std::size_t lp_new = lp.update(run.trace, windows);
    const std::size_t cov_new = code_cov.merge(run.coverage);
    bool new_finding = false;
    for (auto& report : detector.analyze(run, windows)) {
      // Dedup axis is the structural signature (dedup_key), exactly as in
      // the merger; the coarse finding_key is only the report bucket.
      if (ref.first_detection.emplace(dedup_key(report), iter).second) {
        ref.vulns.push_back(std::move(report));
        new_finding = true;
      }
    }
    if (new_finding || lp_new > 0) fuzzer.report_interesting(program);

    IterationRecord rec;
    rec.iteration = iter;
    rec.covered_pdlc = lp.covered();
    rec.coverage_points = code_cov.point_count();
    rec.vulns_found = ref.vulns.size();
    rec.cycles = run.cycles;
    ref.history.push_back(rec);
  }

  const auto engine_serial = run_campaign(1, 1, kIters, opts.rng_seed);
  const auto engine_parallel = run_campaign(4, 1, kIters, opts.rng_seed);
  expect_identical(ref, engine_serial);
  expect_identical(ref, engine_parallel);
}

TEST(CampaignParallel, StopPredicateEndsMidBatch) {
  EngineOptions opts;
  opts.rng_seed = 22;
  opts.jobs = 4;
  opts.batch_size = 16;
  SpecureEngine engine(opts);
  const auto res = engine.run(
      1000, [](const CampaignResult& r) { return r.history.size() >= 7; });
  EXPECT_EQ(res.history.size(), 7u);
}

TEST(CampaignParallel, ThreadSafetySmoke) {
  // A longer armed campaign at full batch width; asserts campaign
  // invariants hold when every layer runs under real thread interleaving.
  const auto res = run_campaign(4, 32, 320, 1, /*zenbleed=*/true);
  ASSERT_EQ(res.history.size(), 320u);
  for (std::size_t i = 0; i < res.history.size(); ++i) {
    EXPECT_EQ(res.history[i].iteration, i + 1);
    if (i > 0) {
      EXPECT_GE(res.history[i].covered_pdlc, res.history[i - 1].covered_pdlc);
      EXPECT_GE(res.history[i].coverage_points,
                res.history[i - 1].coverage_points);
      EXPECT_GE(res.history[i].vulns_found, res.history[i - 1].vulns_found);
    }
  }
  EXPECT_EQ(res.vulns.size(), res.first_detection.size());
  EXPECT_GT(res.total_windows, 0u);
}

TEST(CampaignParallel, ZeroJobsResolvesToHardwareConcurrency) {
  EngineOptions opts;
  opts.jobs = 0;
  opts.batch_size = 8;
  SpecureEngine engine(opts);
  EXPECT_GE(engine.resolved_jobs(), 1u);
  EXPECT_LE(engine.resolved_jobs(), 8u);  // clipped to the batch size
}

TEST(ThreadPool, RunsEveryTaskExactlyOnceAndPropagatesErrors) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.contexts(), 4u);
  std::vector<std::atomic<int>> hits(103);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(hits.size(), [&](std::size_t task, std::size_t ctx) {
    ASSERT_LT(ctx, 4u);
    hits[task].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  EXPECT_THROW(
      pool.parallel_for(
          8,
          [](std::size_t task, std::size_t) {
            if (task == 3) throw std::runtime_error("boom");
          }),
      std::runtime_error);

  // The pool survives the failed batch and runs the next one.
  std::atomic<int> count{0};
  pool.parallel_for(5, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 5);
}

TEST(FuzzerBatch, BatchStreamMatchesSerialStream) {
  fuzz::FuzzerOptions fopts;
  fuzz::Fuzzer serial(fopts, 9);
  fuzz::Fuzzer batched(fopts, 9);
  std::vector<riscv::Program> expect;
  for (int i = 0; i < 12; ++i) expect.push_back(serial.next());
  const auto batch1 = batched.next_batch(5);
  const auto batch2 = batched.next_batch(7);
  ASSERT_EQ(batch1.size(), 5u);
  ASSERT_EQ(batch2.size(), 7u);
  std::vector<fuzz::FuzzJob> all(batch1);
  all.insert(all.end(), batch2.begin(), batch2.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].iteration, i + 1);
    EXPECT_EQ(all[i].program.code, expect[i].code);
  }
  // Per-iteration seeds are distinct and reproducible.
  fuzz::Fuzzer replay(fopts, 9);
  const auto again = replay.next_batch(12);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].rng_seed, again[i].rng_seed);
    if (i > 0) EXPECT_NE(all[i].rng_seed, all[i - 1].rng_seed);
  }
}

}  // namespace
}  // namespace specure::core
