// Configuration-sweep property tests: the pipeline's architectural
// behaviour and the detection pipeline's soundness must hold across the
// microarchitectural parameter space (ROB size, cache geometry, resolve
// latencies), and the whole finding surface must vanish on the
// no-speculation control configuration.
#include <gtest/gtest.h>

#include "core/offline.hpp"
#include "core/specure.hpp"
#include "fuzz/seeds.hpp"
#include "riscv/program.hpp"
#include "sim/core.hpp"
#include "sim/iss.hpp"

namespace specure::sim {
namespace {

namespace csr = riscv::csr;
using riscv::Op;
using riscv::Program;

struct SweepPoint {
  const char* name;
  unsigned rob;
  unsigned sets;
  unsigned ways;
  unsigned branch_latency;
  unsigned miss_latency;
};

CoreConfig make_config(const SweepPoint& p) {
  CoreConfig cfg;
  cfg.rob_entries = p.rob;
  cfg.dcache_sets = p.sets;
  cfg.dcache_ways = p.ways;
  cfg.branch_resolve_latency = p.branch_latency;
  cfg.load_miss_latency = p.miss_latency;
  return cfg;
}

class ConfigSweep : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(ConfigSweep, ArchitecturalEquivalenceWithReference) {
  const CoreConfig cfg = make_config(GetParam());
  Simulator simulator{cfg};
  util::Rng rng(808);
  int compared = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Program p = riscv::random_program(rng, 20 + rng.below(80));
    const RunResult run = simulator.run(p);
    if (!run.halted_clean) continue;
    Iss iss{cfg};
    const IssResult ref = iss.run(p);
    if (!ref.halted_clean) continue;
    const auto& last = run.trace[run.trace.size() - 1];
    for (unsigned r = 1; r < 32; ++r) {
      ASSERT_EQ(last.values[simulator.signal_db().id_of(
                    "core.rf.x" + std::to_string(r))],
                ref.regs[r])
          << GetParam().name << " x" << r;
    }
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST_P(ConfigSweep, ZenbleedPocDetectedEverywhere) {
  // The emulated leak must be found regardless of microarchitectural
  // parameters (as long as speculation exists).
  if (GetParam().branch_latency < 2) return;  // no window to leak through
  CoreConfig cfg = make_config(GetParam());
  cfg.vuln.zenbleed_emulation = true;

  riscv::ProgramBuilder b;
  b.li(6, 1);
  b.csrrw(0, csr::kZenbleedEn, 6);
  b.li(10, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(5, 1);
  b.branch(Op::kBeq, 5, 5, "t");
  b.addi(7, 0, 99);
  b.label("t");
  b.nop();
  b.ecall();

  const core::OfflineResult off = core::run_offline_phase(cfg);
  Simulator simulator{cfg};
  core::VulnerabilityDetector detector(off.ifg, off.pdlc,
                                       simulator.signal_db(), {});
  const RunResult run = simulator.run(b.build());
  const auto windows = core::extract_mst(run.trace);
  const auto reports = detector.analyze(run, windows);
  ASSERT_FALSE(reports.empty()) << GetParam().name;
  EXPECT_EQ(reports[0].sink_signal, "core.rf.x7") << GetParam().name;
}

TEST_P(ConfigSweep, OfflinePhaseScalesWithGeometry) {
  const CoreConfig cfg = make_config(GetParam());
  const core::OfflineResult off = core::run_offline_phase(cfg);
  // Signal count must track the cache geometry: 3 array signals per line
  // plus one LRU per set.
  const CoreConfig base;
  const core::OfflineResult base_off = core::run_offline_phase(base);
  const long line_delta =
      static_cast<long>(cfg.dcache_sets * cfg.dcache_ways) -
      static_cast<long>(base.dcache_sets * base.dcache_ways);
  const long set_delta = static_cast<long>(cfg.dcache_sets) -
                         static_cast<long>(base.dcache_sets);
  EXPECT_EQ(static_cast<long>(off.ifg.node_count()) -
                static_cast<long>(base_off.ifg.node_count()),
            3 * line_delta + set_delta);
}

INSTANTIATE_TEST_SUITE_P(
    Points, ConfigSweep,
    ::testing::Values(
        SweepPoint{"baseline", 16, 8, 2, 20, 12},
        SweepPoint{"tiny_rob", 4, 8, 2, 20, 12},
        SweepPoint{"big_rob", 32, 8, 2, 20, 12},
        SweepPoint{"small_cache", 16, 2, 1, 20, 12},
        SweepPoint{"big_cache", 16, 16, 4, 20, 12},
        SweepPoint{"short_window", 16, 8, 2, 4, 12},
        SweepPoint{"long_window", 16, 8, 2, 48, 12},
        SweepPoint{"slow_memory", 16, 8, 2, 20, 40},
        SweepPoint{"fast_memory", 16, 8, 2, 20, 3}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------- no-speculation control --

TEST(NoSpeculationControl, NoTransientExecutionHappens) {
  const CoreConfig cfg = no_speculation_config();
  Simulator simulator{cfg};
  util::Rng rng(7);
  const auto seeds = fuzz::special_seeds(rng);
  for (const auto& seed : seeds) {
    const RunResult run = simulator.run(seed.program);
    const auto& db = simulator.signal_db();
    const auto tainted = db.id_of("core.lsu.tainted_access");
    for (std::size_t i = 0; i < run.trace.size(); ++i) {
      ASSERT_EQ(run.trace[i].values[tainted], 0u)
          << seed.name << ": transient tainted access without speculation";
    }
  }
}

TEST(NoSpeculationControl, ZenbleedUnreachable) {
  CoreConfig cfg = no_speculation_config();
  cfg.vuln.zenbleed_emulation = true;

  riscv::ProgramBuilder b;
  b.li(6, 1);
  b.csrrw(0, csr::kZenbleedEn, 6);
  b.li(5, 1);
  b.branch(Op::kBeq, 5, 5, "t");
  b.addi(7, 0, 99);
  b.label("t");
  b.nop();
  b.ecall();

  Simulator simulator{cfg};
  const RunResult run = simulator.run(b.build());
  const auto& last = run.trace[run.trace.size() - 1];
  EXPECT_EQ(last.values[simulator.signal_db().id_of("core.rf.x7")], 0u)
      << "without a window nothing transient exists to leak";
}

TEST(NoSpeculationControl, CampaignFindsNothing) {
  core::EngineOptions opts;
  opts.core = no_speculation_config();
  opts.core.vuln.mwait_emulation = true;
  opts.core.vuln.zenbleed_emulation = true;
  opts.detector.monitor_cache = true;
  opts.rng_seed = 3;
  core::SpecureEngine engine(opts);
  const auto result = engine.run(300);
  EXPECT_TRUE(result.vulns.empty());
}

TEST(NoSpeculationControl, MispredictionsStillHappenArchitecturally) {
  // The control core still *predicts* (and trains); it just never lets
  // wrong-path work execute. Confirm it runs programs correctly.
  const CoreConfig cfg = no_speculation_config();
  Simulator simulator{cfg};
  riscv::ProgramBuilder b;
  b.li(5, 5).li(6, 0);
  b.label("loop");
  b.addi(6, 6, 2);
  b.addi(5, 5, -1);
  b.branch(Op::kBne, 5, 0, "loop");
  b.ecall();
  const RunResult run = simulator.run(b.build());
  EXPECT_TRUE(run.halted_clean);
  EXPECT_EQ(run.trace[run.trace.size() - 1]
                .values[simulator.signal_db().id_of("core.rf.x6")],
            10u);
}

}  // namespace
}  // namespace specure::sim
