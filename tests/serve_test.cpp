// Serve-layer coverage: durable campaign state (round-trip bit-identity,
// kill-at-any-boundary resume equivalence, corruption/version-skew
// rejection), the wire protocol (framing limits, line-numbered field
// errors, did-you-mean verbs), and the daemon itself (two concurrent
// tenants bit-identical to solo runs, shutdown-mid-campaign recovery).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "core/session.hpp"
#include "core/vuln_detect.hpp"
#include "serve/campaign_state.hpp"
#include "serve/campaign_store.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/state_io.hpp"
#include "util/fs.hpp"

namespace specure::serve {
namespace {

core::CampaignSpec small_spec(const std::string& preset,
                              std::uint64_t iterations, std::uint64_t seed,
                              std::size_t jobs) {
  core::CampaignSpec spec = core::CampaignSpec::preset(preset);
  spec.rng_seed = seed;
  spec.batch_size = 8;
  spec.jobs = jobs;
  spec.budget.iterations = iterations;
  spec.progress_interval = 10;
  return spec;
}

/// The result as JSON with the wall-clock zeroed — byte comparison then
/// means bit-identity of everything deterministic.
std::string normalized_report(const core::CampaignResult& result) {
  core::CampaignResult copy = result;
  copy.seconds = 0;
  return core::json_report(copy, 64, nullptr);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << bytes;
}

// ---- durable state: round trip + resume equivalence -----------------------

TEST(CampaignState, EncodeDecodeRoundTripIsBitIdentical) {
  const core::CampaignSpec spec = small_spec("default", 24, 7, 2);
  core::Session session(spec);
  std::vector<std::string> states;
  session.on_frontier([&](const core::CampaignFrontier& f) {
    states.push_back(encode_state(spec, f));
  });
  session.run();
  ASSERT_FALSE(states.empty());

  for (const std::string& bytes : states) {
    const CampaignState state = decode_state(bytes, "test");
    // Re-encoding the decoded state reproduces the input byte for byte:
    // nothing is lost, reordered or re-derived differently.
    EXPECT_EQ(encode_state(state.spec, state.frontier), bytes);
  }
}

TEST(CampaignState, SaveLoadFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "serve_roundtrip.state";
  const core::CampaignSpec spec = small_spec("default", 16, 3, 1);
  core::Session session(spec);
  std::string last;
  session.on_frontier([&](const core::CampaignFrontier& f) {
    save_state_file(path, spec, f);
    last = encode_state(spec, f);
  });
  session.run();
  ASSERT_FALSE(last.empty());
  EXPECT_EQ(read_file(path), last);

  const CampaignState loaded = load_state_file(path);
  EXPECT_TRUE(loaded.frontier.completed);
  EXPECT_EQ(encode_state(loaded.spec, loaded.frontier), last);
}

/// The tentpole contract: a campaign killed at ANY state-write point and
/// resumed produces a final result bit-identical to the uninterrupted
/// run — at fixed seed, for any jobs, across presets.
TEST(CampaignState, ResumeFromEveryBoundaryMatchesUninterrupted) {
  struct Case {
    const char* preset;
    std::uint64_t seed;
    std::size_t jobs;
    std::size_t sample;  ///< resume every Nth captured boundary
  };
  const Case cases[] = {
      {"default", 7, 1, 2},
      {"default", 9, 4, 2},
      {"full", 7, 4, 4},
      {"full", 9, 1, 4},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(c.preset) + " seed " + std::to_string(c.seed) +
                 " jobs " + std::to_string(c.jobs));
    const core::CampaignSpec spec =
        small_spec(c.preset, 20, c.seed, c.jobs);
    core::Session uninterrupted(spec);
    std::vector<std::string> states;
    uninterrupted.on_frontier([&](const core::CampaignFrontier& f) {
      if (!f.completed) states.push_back(encode_state(spec, f));
    });
    const std::string expected =
        normalized_report(uninterrupted.run());
    ASSERT_FALSE(states.empty());

    for (std::size_t i = 0; i < states.size(); i += c.sample) {
      CampaignState state = decode_state(states[i], "test");
      // Resume under the opposite worker count: jobs is result-neutral.
      core::CampaignSpec requested = state.spec;
      requested.jobs = c.jobs == 1 ? 4 : 1;
      core::Session resumed(resume_spec(state, requested));
      resumed.resume_from(std::move(state.frontier));
      EXPECT_EQ(normalized_report(resumed.run()), expected)
          << "resumed from boundary " << i << "/" << states.size();
    }
  }
}

TEST(CampaignState, CompletedStateResumesToStoredResultWithoutRerun) {
  const core::CampaignSpec spec = small_spec("default", 16, 5, 2);
  core::Session session(spec);
  std::string final_state;
  session.on_frontier([&](const core::CampaignFrontier& f) {
    if (f.completed) final_state = encode_state(spec, f);
  });
  const std::string expected = normalized_report(session.run());
  ASSERT_FALSE(final_state.empty());

  CampaignState state = decode_state(final_state, "test");
  core::Session resumed(resume_spec(state, state.spec));
  resumed.resume_from(std::move(state.frontier));
  // Must return the stored result — re-running would evaluate the stop
  // conditions one iteration late and could extend the campaign.
  const core::CampaignResult result = resumed.run();
  EXPECT_EQ(result.history.size(), 16u);
  EXPECT_EQ(normalized_report(result), expected);
}

// ---- durable state: rejection of bad files --------------------------------

class StateRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    const core::CampaignSpec spec = small_spec("default", 8, 2, 1);
    core::Session session(spec);
    session.on_frontier([&](const core::CampaignFrontier& f) {
      bytes_ = encode_state(spec, f);
    });
    session.run();
    ASSERT_FALSE(bytes_.empty());
    path_ = ::testing::TempDir() + "serve_reject.state";
  }

  std::string expect_load_error(const std::string& bytes) {
    write_file(path_, bytes);
    try {
      load_state_file(path_);
    } catch (const StateError& e) {
      return e.what();
    }
    ADD_FAILURE() << "load_state_file accepted a bad file";
    return "";
  }

  std::string bytes_;
  std::string path_;
};

TEST_F(StateRejection, TruncationAtEveryHeaderBoundaryIsNamed) {
  for (const std::size_t keep : {0u, 4u, 8u, 12u, 20u, 27u}) {
    const std::string message =
        expect_load_error(bytes_.substr(0, keep));
    EXPECT_NE(message.find(path_), std::string::npos) << message;
    EXPECT_NE(message.find("truncated"), std::string::npos) << message;
  }
  // Truncated payload (header intact): caught by the length check.
  const std::string message =
      expect_load_error(bytes_.substr(0, bytes_.size() - 5));
  EXPECT_NE(message.find("truncated"), std::string::npos) << message;
}

TEST_F(StateRejection, CorruptedPayloadFailsTheChecksum) {
  std::string corrupted = bytes_;
  corrupted[corrupted.size() / 2] ^= 0x40;
  const std::string message = expect_load_error(corrupted);
  EXPECT_NE(message.find("checksum"), std::string::npos) << message;
  EXPECT_NE(message.find(path_), std::string::npos) << message;
}

TEST_F(StateRejection, TrailingBytesAreRejected) {
  const std::string message = expect_load_error(bytes_ + "junk");
  EXPECT_NE(message.find("padded"), std::string::npos) << message;
}

TEST_F(StateRejection, WrongMagicNamesTheFormat) {
  std::string wrong = bytes_;
  wrong[0] = 'X';
  const std::string message = expect_load_error(wrong);
  EXPECT_NE(message.find("magic"), std::string::npos) << message;
}

TEST_F(StateRejection, VersionSkewIsRefusedNotMisparsed) {
  std::string skewed = bytes_;
  skewed[8] = static_cast<char>(kStateFormatVersion + 1);
  const std::string message = expect_load_error(skewed);
  EXPECT_NE(message.find("version"), std::string::npos) << message;
  EXPECT_NE(message.find(std::to_string(kStateFormatVersion + 1)),
            std::string::npos)
      << message;
}

TEST_F(StateRejection, ResultAffectingSpecChangeIsListed) {
  const CampaignState state = decode_state(bytes_, "test");
  core::CampaignSpec requested = state.spec;
  requested.rng_seed = 99;
  requested.budget.iterations = 1000;
  try {
    resume_spec(state, requested);
    FAIL() << "resume_spec accepted a seed change";
  } catch (const StateError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("seed"), std::string::npos) << message;
    EXPECT_NE(message.find("iterations"), std::string::npos) << message;
  }
  // The documented result-neutral keys do pass.
  core::CampaignSpec neutral = state.spec;
  neutral.jobs = 16;
  neutral.state_out = "elsewhere.bin";
  EXPECT_NO_THROW(resume_spec(state, neutral));
  const std::vector<std::string>& keys = result_neutral_keys();
  EXPECT_NE(std::find(keys.begin(), keys.end(), "jobs"), keys.end());
}

// ---- wire protocol --------------------------------------------------------

TEST(Protocol, UnknownVerbGetsDidYouMean) {
  try {
    parse_request("{\"verb\": \"submitt\"}");
    FAIL();
  } catch (const ProtocolError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("submitt"), std::string::npos) << message;
    EXPECT_NE(message.find("did you mean 'submit'"), std::string::npos)
        << message;
  }
}

TEST(Protocol, UnknownFieldIsRejectedWithItsLine) {
  try {
    parse_request("{\"verb\": \"status\",\n  \"idd\": \"c0001\"}");
    FAIL();
  } catch (const ProtocolError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
    EXPECT_NE(message.find("idd"), std::string::npos) << message;
    EXPECT_NE(message.find("did you mean 'id'"), std::string::npos) << message;
  }
}

TEST(Protocol, MissingRequiredFieldIsNamed) {
  try {
    parse_request("{\"verb\": \"submit\"}");
    FAIL();
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("spec"), std::string::npos);
  }
}

TEST(Protocol, MalformedJsonReportsTheLine) {
  try {
    parse_json("{\"a\": 1,\n\"b\": }");
    FAIL();
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Protocol, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t huge = kMaxFramePayload + 1;
  unsigned char prefix[4] = {
      static_cast<unsigned char>(huge & 0xff),
      static_cast<unsigned char>((huge >> 8) & 0xff),
      static_cast<unsigned char>((huge >> 16) & 0xff),
      static_cast<unsigned char>((huge >> 24) & 0xff)};
  ASSERT_EQ(::write(fds[0], prefix, 4), 4);
  std::string payload;
  EXPECT_THROW(read_frame(fds[1], payload), ProtocolError);
  ::close(fds[0]);
  ::close(fds[1]);

  EXPECT_THROW(write_frame(0, std::string(kMaxFramePayload + 1, 'x')),
               ProtocolError);
}

TEST(Protocol, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  write_frame(fds[0], "{\"verb\": \"list\"}");
  std::string payload;
  ASSERT_TRUE(read_frame(fds[1], payload));
  EXPECT_EQ(payload, "{\"verb\": \"list\"}");
  ::close(fds[0]);
  // Clean EOF after the peer closes between frames.
  EXPECT_FALSE(read_frame(fds[1], payload));
  ::close(fds[1]);
}

// ---- the daemon -----------------------------------------------------------

class ServeDaemon : public ::testing::Test {
 protected:
  /// Fresh store unless `keep_store` (the recovery test's restart).
  void start(const std::string& tag, bool keep_store = false) {
    root_ = ::testing::TempDir() + "serve_daemon_" + tag;
    socket_ = root_ + ".sock";
    if (!keep_store) std::filesystem::remove_all(root_);
    ServerOptions options;
    options.socket_path = socket_;
    options.store_root = root_;
    options.workers = 2;
    options.slice_iterations = 8;
    server_ = std::make_unique<Server>(options);
    thread_ = std::thread([this] { server_->run(); });
  }

  void stop() {
    if (server_) server_->shutdown();
    if (thread_.joinable()) thread_.join();
    server_.reset();
  }

  void TearDown() override { stop(); }

  std::string submit(const core::CampaignSpec& spec) {
    Client client(socket_);
    const Json reply = client.request("{\"verb\": \"submit\", \"spec\": \"" +
                                      escape_json(spec.to_toml()) + "\"}");
    const Json* id = reply.find("id");
    EXPECT_NE(id, nullptr);
    return id != nullptr ? id->text : "";
  }

  std::string wait_done(const std::string& id, int timeout_ms = 60000) {
    for (int waited = 0; waited < timeout_ms; waited += 20) {
      Client client(socket_);
      const Json reply = client.request("{\"verb\": \"status\", \"id\": \"" +
                                        id + "\"}");
      const Json* status = reply.find("status");
      if (status != nullptr &&
          (status->text == "done" || status->text == "failed")) {
        return status->text;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return "timeout";
  }

  std::string root_;
  std::string socket_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

TEST_F(ServeDaemon, TwoTenantsFinishBitIdenticalToSoloRuns) {
  start("two_tenants");
  const core::CampaignSpec spec_a = small_spec("default", 40, 5, 1);
  const core::CampaignSpec spec_b = small_spec("zenbleed", 40, 6, 1);
  const std::string id_a = submit(spec_a);
  const std::string id_b = submit(spec_b);
  ASSERT_EQ(id_a, "c0001");
  ASSERT_EQ(id_b, "c0002");
  EXPECT_EQ(wait_done(id_a), "done");
  EXPECT_EQ(wait_done(id_b), "done");

  core::Session solo_a(spec_a);
  core::Session solo_b(spec_b);
  const core::CampaignResult result_a = solo_a.run();
  const core::CampaignResult result_b = solo_b.run();

  // The stored JSON report carries live seconds; compare everything else
  // by re-parsing and normalizing both sides through the same renderer.
  for (const auto& [id, solo] :
       {std::pair<std::string, const core::CampaignResult*>{id_a, &result_a},
        {id_b, &result_b}}) {
    std::ifstream in(server_->store().report_json_path(id));
    ASSERT_TRUE(in) << id;
    core::ParsedReport parsed = core::parse_json_report(in);
    EXPECT_EQ(parsed.findings.size(), solo->vulns.size()) << id;
    for (std::size_t i = 0; i < parsed.findings.size(); ++i) {
      EXPECT_EQ(parsed.findings[i].signature,
                core::dedup_key(solo->vulns[i]))
          << id;
    }
  }
  // Byte-level check on the text reports, wall-clock lines excluded.
  const auto meaningful_lines = [](const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
      if (line.find("seconds") != std::string::npos ||
          line.find("iterations/sec") != std::string::npos) {
        continue;
      }
      lines.push_back(line);
    }
    return lines;
  };
  const std::pair<std::string, const core::CampaignResult*> tenants[] = {
      {id_a, &result_a}, {id_b, &result_b}};
  const core::CampaignSpec* specs[] = {&spec_a, &spec_b};
  for (std::size_t t = 0; t < 2; ++t) {
    const std::string& id = tenants[t].first;
    std::ostringstream fresh_os;
    core::write_text_report(fresh_os, *tenants[t].second, specs[t]);
    EXPECT_EQ(
        meaningful_lines(read_file(server_->store().report_text_path(id))),
        meaningful_lines(fresh_os.str()))
        << id;
  }
  // The event log is deterministic and ends at the final iteration.
  const std::string events =
      read_file(server_->store().events_path(id_a));
  EXPECT_NE(events.find("\"iteration\": 40"), std::string::npos);
}

TEST_F(ServeDaemon, ShutdownMidCampaignRecoversAndMatchesSolo) {
  start("recovery");
  const core::CampaignSpec spec = small_spec("default", 400, 7, 1);
  const std::string id = submit(spec);

  // Let it make some progress, then stop the daemon mid-campaign.
  for (int waited = 0; waited < 30000; waited += 10) {
    Client client(socket_);
    const Json reply =
        client.request("{\"verb\": \"status\", \"id\": \"" + id + "\"}");
    const Json* iters = reply.find("iterations");
    if (iters != nullptr && iters->number >= 8) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop();

  // The durable state must exist and point mid-campaign.
  const CampaignState state = load_state_file(root_ + "/" + id + "/state.bin");
  ASSERT_FALSE(state.frontier.completed);
  ASSERT_GT(state.frontier.merged, 0u);
  ASSERT_LT(state.frontier.merged, 400u);

  // A new daemon over the same store resumes and finishes the campaign.
  start("recovery", /*keep_store=*/true);
  EXPECT_EQ(wait_done(id), "done");

  core::Session solo(spec);
  const core::CampaignResult expected = solo.run();
  std::ifstream in(server_->store().report_json_path(id));
  ASSERT_TRUE(in);
  core::ParsedReport parsed = core::parse_json_report(in);
  EXPECT_EQ(parsed.findings.size(), expected.vulns.size());

  // Event log: one contiguous deterministic stream — the recovery
  // truncation plus re-emission must leave no duplicate and no gap.
  std::ifstream events(server_->store().events_path(id));
  std::string line;
  std::uint64_t last_progress = 0;
  std::size_t progress_events = 0;
  while (std::getline(events, line)) {
    const Json parsed_line = parse_json(line);
    const Json* event = parsed_line.find("event");
    const Json* iteration = parsed_line.find("iteration");
    ASSERT_NE(event, nullptr);
    ASSERT_NE(iteration, nullptr);
    if (event->text == "progress") {
      const auto iter = static_cast<std::uint64_t>(iteration->number);
      EXPECT_EQ(iter, last_progress + 10) << "gap or duplicate at " << iter;
      last_progress = iter;
      ++progress_events;
    }
  }
  EXPECT_EQ(progress_events, 40u);  // 400 iterations / progress_interval 10
}

TEST_F(ServeDaemon, MalformedFramesGetErrorsAndTheDaemonStaysUp) {
  start("malformed");
  {
    Client client(socket_);
    const Json reply = client.request("{\"verb\": \"submitt\"}");
    const Json* error = reply.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_NE(error->text.find("did you mean 'submit'"), std::string::npos);
  }
  {
    Client client(socket_);
    const Json reply = client.request("this is not json");
    ASSERT_NE(reply.find("error"), nullptr);
  }
  {
    Client client(socket_);
    const Json reply =
        client.request("{\"verb\": \"status\", \"id\": \"c9999\"}");
    const Json* error = reply.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_NE(error->text.find("c9999"), std::string::npos);
  }
  // After all of that the daemon still serves.
  Client client(socket_);
  const Json reply = client.request("{\"verb\": \"list\"}");
  EXPECT_NE(reply.find("campaigns"), nullptr);
}

TEST_F(ServeDaemon, PauseHaltsProgressAndResumeCompletes) {
  start("pause");
  const core::CampaignSpec spec = small_spec("default", 300, 3, 1);
  const std::string id = submit(spec);
  {
    Client client(socket_);
    const Json reply =
        client.request("{\"verb\": \"pause\", \"id\": \"" + id + "\"}");
    ASSERT_EQ(reply.find("error"), nullptr);
  }
  // Progress must stop within a slice.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::uint64_t frozen = 0;
  {
    Client client(socket_);
    const Json reply =
        client.request("{\"verb\": \"status\", \"id\": \"" + id + "\"}");
    frozen = static_cast<std::uint64_t>(reply.find("iterations")->number);
    EXPECT_EQ(reply.find("status")->text, "paused");
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  {
    Client client(socket_);
    const Json reply =
        client.request("{\"verb\": \"status\", \"id\": \"" + id + "\"}");
    EXPECT_EQ(static_cast<std::uint64_t>(reply.find("iterations")->number),
              frozen);
  }
  {
    Client client(socket_);
    const Json reply =
        client.request("{\"verb\": \"resume\", \"id\": \"" + id + "\"}");
    ASSERT_EQ(reply.find("error"), nullptr);
  }
  EXPECT_EQ(wait_done(id), "done");
}

}  // namespace
}  // namespace specure::serve
