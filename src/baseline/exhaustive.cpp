#include "baseline/exhaustive.hpp"

#include <chrono>
#include <set>

#include "core/mst.hpp"
#include "core/specure.hpp"
#include "core/offline.hpp"
#include "riscv/program.hpp"

namespace specure::baseline {

using riscv::Op;

namespace {
constexpr std::uint8_t A0 = 10, T0 = 5, T3 = 28, T4 = 29, T5 = 30, T6 = 31;

/// Macro alphabet: each symbol expands to a short instruction group. This
/// is the standard model reduction — no CSR instructions, no long arming
/// prefixes; exactly the reduction that makes the (M)WAIT/Zenbleed
/// emulations unreachable for the bounded method.
const std::vector<std::vector<std::uint32_t>>& macro_alphabet() {
  static const std::vector<std::vector<std::uint32_t>> kMacros = {
      // 0: always-taken branch (mispredicts on first encounter).
      {riscv::enc_b(Op::kBeq, T0, T0, 20)},
      // 1: never-taken branch.
      {riscv::enc_b(Op::kBne, T0, T0, 20)},
      // 2: direct load from the data region.
      {riscv::enc_i(Op::kLd, T3, A0, 0)},
      // 3: dependent dereference of the last loaded value (bounded).
      {riscv::enc_i(Op::kAndi, T3, T3, 1023),
       riscv::enc_r(Op::kAdd, T5, A0, T3),
       riscv::enc_i(Op::kLd, T4, T5, 0)},
      // 4: ALU filler.
      {riscv::enc_i(Op::kAddi, T6, T6, 1)},
      // 5: store to the data region.
      {riscv::enc_s(Op::kSd, A0, T6, 8)},
  };
  return kMacros;
}

riscv::Program sequence_to_program(const std::vector<unsigned>& seq) {
  riscv::ProgramBuilder b;
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(T0, 1);
  riscv::Program prologue = b.build();
  riscv::Program p;
  p.code = prologue.code;
  for (unsigned sym : seq) {
    for (std::uint32_t w : macro_alphabet()[sym]) p.code.push_back(w);
  }
  for (int i = 0; i < 6; ++i) p.code.push_back(riscv::enc_nop());
  p.code.push_back(riscv::enc_ecall());
  p.data.resize(2048);
  for (std::size_t i = 0; i < p.data.size(); ++i) {
    p.data[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  return p;
}

}  // namespace

std::vector<std::uint32_t> ExhaustiveChecker::alphabet() {
  std::vector<std::uint32_t> flat;
  for (const auto& m : macro_alphabet()) {
    flat.insert(flat.end(), m.begin(), m.end());
  }
  return flat;
}

ExhaustiveChecker::ExhaustiveChecker(const ExhaustiveOptions& options)
    : options_(options) {}

ExhaustiveResult ExhaustiveChecker::run() {
  const auto t0 = std::chrono::steady_clock::now();
  ExhaustiveResult result;

  const core::OfflineResult offline = core::run_offline_phase(options_.core);
  sim::Simulator sim(options_.core);
  core::DetectorOptions dopt;
  dopt.monitor_cache = options_.monitor_cache;
  core::VulnerabilityDetector detector(offline.ifg, offline.pdlc,
                                       sim.signal_db(), dopt);
  std::set<std::string> seen;

  const std::size_t nsym = macro_alphabet().size();
  for (unsigned depth = 1; depth <= options_.max_depth; ++depth) {
    std::vector<unsigned> seq(depth, 0);
    for (;;) {
      if (result.sequences_tried >= options_.state_budget) {
        result.budget_exhausted = true;
        result.seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        return result;
      }
      ++result.sequences_tried;
      const riscv::Program p = sequence_to_program(seq);
      const sim::RunResult run = sim.run(p);
      const auto windows = core::extract_mst(run.trace);
      for (auto& report : detector.analyze(run, windows)) {
        if (seen.insert(core::finding_key(report)).second) {
          result.findings.push_back(std::move(report));
        }
      }
      // Advance the odometer.
      std::size_t pos = 0;
      while (pos < depth && ++seq[pos] == nsym) {
        seq[pos] = 0;
        ++pos;
      }
      if (pos == depth) break;
    }
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

}  // namespace specure::baseline
