// Bounded-exhaustive checker — stand-in for the formal approach the paper
// cites as [14] (Fadiheh et al., an exhaustive/UPEC-style method that
// "suffers from state explosion").
//
// The checker enumerates all instruction sequences up to a given depth
// from a reduced instruction alphabet (the standard formal-model
// reduction) and runs each through the PUT with the Specure detector as
// its property oracle. The state budget caps the number of simulated
// sequences; when the budget is exhausted before the depth is covered,
// the result reports `budget_exhausted` — the state-explosion behaviour
// the paper contrasts against.
//
// Within small depths this finds Spectre v1/v2-class residues (short
// branch+load patterns), but the (M)WAIT / Zenbleed emulations need long
// CSR-arming prefixes that lie beyond any tractable bound.
#pragma once

#include <cstdint>
#include <vector>

#include "core/vuln_detect.hpp"
#include "sim/core.hpp"

namespace specure::baseline {

struct ExhaustiveOptions {
  sim::CoreConfig core;
  unsigned max_depth = 6;              ///< instructions per sequence
  std::uint64_t state_budget = 20000;  ///< max sequences simulated
  bool monitor_cache = true;
};

struct ExhaustiveResult {
  std::vector<core::VulnReport> findings;  ///< deduped by finding key
  std::uint64_t sequences_tried = 0;
  bool budget_exhausted = false;
  double seconds = 0;
};

class ExhaustiveChecker {
 public:
  explicit ExhaustiveChecker(const ExhaustiveOptions& options);

  ExhaustiveResult run();

  /// The reduced instruction alphabet used for enumeration.
  static std::vector<std::uint32_t> alphabet();

 private:
  ExhaustiveOptions options_;
};

}  // namespace specure::baseline
