#include "baseline/specdoctor.hpp"

#include <chrono>

#include "util/strings.hpp"

namespace specure::baseline {

namespace {

/// Modules SpecDoctor instruments, selected from known attack classes.
constexpr const char* kInstrumented[] = {"core.dcache.", "core.bp."};

riscv::Program with_secret(const riscv::Program& p, std::size_t offset,
                           std::size_t len, std::uint8_t fill) {
  riscv::Program out = p;
  if (out.data.size() < offset + len) out.data.resize(offset + len, 0);
  for (std::size_t i = 0; i < len; ++i) {
    out.data[offset + i] = static_cast<std::uint8_t>(fill + i);
  }
  return out;
}

}  // namespace

std::uint64_t component_hash(const sim::RunResult& run,
                             const snapshot::SignalDb& db,
                             const std::string& prefix) {
  const auto& last = run.trace[run.trace.size() - 1];
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (snapshot::SignalId i = 0; i < db.size(); ++i) {
    const std::string& name = db.info(i).name;
    if (!util::starts_with(name, prefix)) continue;
    // Hash *metadata* state only (tags/valid/LRU, predictor tables): the
    // line-content digests reflect the secret bytes directly, which would
    // make any cached secret diverge trivially — SpecDoctor instruments
    // the residency/shape state that side channels observe.
    if (util::starts_with(name, "core.dcache.data")) continue;
    h ^= last.values[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

SpecdoctorFuzzer::SpecdoctorFuzzer(const SpecdoctorOptions& options)
    : options_(options), sim_(options.core) {}

SpecdoctorResult SpecdoctorFuzzer::run(
    std::uint64_t iterations,
    const std::function<bool(const SpecdoctorResult&)>& stop) {
  const auto t0 = std::chrono::steady_clock::now();
  SpecdoctorResult result;
  fuzz::Fuzzer fuzzer(options_.fuzzer, options_.rng_seed);
  sim::CoverageRecorder cov;
  std::vector<std::string> reported;

  for (std::uint64_t iter = 1; iter <= iterations; ++iter) {
    result.iterations_run = iter;
    const riscv::Program base = fuzzer.next();
    const riscv::Program run_a =
        with_secret(base, options_.secret_offset, options_.secret_len, 0x11);
    const riscv::Program run_b =
        with_secret(base, options_.secret_offset, options_.secret_len, 0xee);

    const sim::RunResult res_a = sim_.run(run_a);
    const sim::RunResult res_b = sim_.run(run_b);

    // Coverage guidance: plain code coverage of the first run.
    const bool interesting = cov.merge(res_a.coverage) > 0;
    if (interesting) fuzzer.report_interesting(base);

    // Differential check over the instrumented modules only. Divergence in
    // the final architectural registers would be caught by SpecDoctor's
    // architectural comparison as well, but only when the secret reaches
    // them on a *committed* path — which is functional dataflow, not a
    // transient leak; we mirror the module-hash mechanism.
    for (const char* prefix : kInstrumented) {
      if (component_hash(res_a, sim_.signal_db(), prefix) !=
          component_hash(res_b, sim_.signal_db(), prefix)) {
        bool already = false;
        for (const auto& f : result.findings) already |= f.component == prefix;
        if (!already) result.findings.push_back({prefix, iter});
      }
    }
    if (stop && stop(result)) break;
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

}  // namespace specure::baseline
