// SpecDoctor-like differential fuzzer (the paper's main comparator [11]).
//
// Faithful to the published detection mechanism and to the limitations the
// paper calls out (§4.2):
//   1. differential fuzzing with *varied secrets*: each test input runs
//      twice with different secret bytes in a designated secret region;
//   2. only a fixed set of *instrumented modules* — chosen from known
//      attacks: the data cache and the branch predictor — is hashed and
//      compared between the two runs (plus the final architectural state);
//   3. plain code-coverage guidance, no leakage-path metric.
//
// Consequences reproduced here: it can catch Spectre-style secret-
// dependent cache/BTB divergence, but misses (M)WAIT (the timer CSR is not
// among the instrumented modules and does not depend on the secret value)
// and Zenbleed (the leaked register value does not reflect the varied
// secret unless the wrong path happens to read it, and the register file
// is not instrumented).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "sim/core.hpp"

namespace specure::baseline {

struct SpecdoctorOptions {
  sim::CoreConfig core;
  fuzz::FuzzerOptions fuzzer;
  /// Offset/length of the secret region inside the data image.
  std::size_t secret_offset = 256;
  std::size_t secret_len = 64;
  std::uint64_t rng_seed = 1;
};

struct SpecdoctorFinding {
  std::string component;  ///< instrumented module that diverged
  std::uint64_t iteration = 0;
};

struct SpecdoctorResult {
  std::vector<SpecdoctorFinding> findings;  ///< deduped by component
  std::uint64_t iterations_run = 0;
  double seconds = 0;
};

class SpecdoctorFuzzer {
 public:
  explicit SpecdoctorFuzzer(const SpecdoctorOptions& options);

  /// Run a differential campaign; stops early when `stop` returns true.
  SpecdoctorResult run(std::uint64_t iterations,
                       const std::function<bool(const SpecdoctorResult&)>&
                           stop = nullptr);

 private:
  SpecdoctorOptions options_;
  sim::Simulator sim_;
};

/// Hash of one instrumented component's state in the final snapshot.
/// Exposed for tests. Component is a signal-name prefix ("core.dcache.").
std::uint64_t component_hash(const sim::RunResult& run,
                             const snapshot::SignalDb& db,
                             const std::string& prefix);

}  // namespace specure::baseline
