#include "snapshot/signal_db.hpp"

#include <stdexcept>

namespace specure::snapshot {

SignalId SignalDb::add(std::string name, unsigned width, SignalClass cls,
                       bool is_register) {
  auto [it, inserted] =
      index_.emplace(name, static_cast<SignalId>(signals_.size()));
  if (!inserted) {
    throw std::runtime_error("SignalDb: duplicate signal " + name);
  }
  SignalInfo info;
  info.name = std::move(name);
  info.width = width;
  info.cls = cls;
  info.is_register = is_register;
  signals_.push_back(std::move(info));
  return it->second;
}

SignalId SignalDb::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidSignal : it->second;
}

SignalId SignalDb::id_of(const std::string& name) const {
  const SignalId id = find(name);
  if (id == kInvalidSignal) {
    throw std::runtime_error("SignalDb: unknown signal " + name);
  }
  return id;
}

std::vector<SignalId> SignalDb::with_class(SignalClass cls) const {
  std::vector<SignalId> out;
  for (SignalId i = 0; i < signals_.size(); ++i) {
    if (signals_[i].cls == cls) out.push_back(i);
  }
  return out;
}

}  // namespace specure::snapshot
