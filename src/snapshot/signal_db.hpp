// Signal schema shared by the simulator (producer) and the online-phase
// analyses (consumers). A SignalDb assigns stable ids to the PUT's named
// signals; a Snapshot is the vector of signal values at one clock cycle
// (the paper's "snapshot" in the Microarchitecture Visualizer, §3.2).
//
// All signals are at most 64 bits wide; wider structures (cache data
// arrays, register files) are registered element-wise, which is also how
// waveform dumps expose them.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace specure::snapshot {

using SignalId = std::uint32_t;
constexpr SignalId kInvalidSignal = ~0u;

/// Classification mirroring ift::Role, kept separate so the snapshot layer
/// does not depend on the graph layer.
enum class SignalClass : std::uint8_t {
  kWire,
  kMicroarchitectural,
  kArchitectural,
};

struct SignalInfo {
  std::string name;
  unsigned width = 64;
  SignalClass cls = SignalClass::kWire;
  bool is_register = false;
};

class SignalDb {
 public:
  SignalId add(std::string name, unsigned width,
               SignalClass cls = SignalClass::kWire, bool is_register = false);

  const SignalInfo& info(SignalId id) const { return signals_[id]; }
  std::size_t size() const { return signals_.size(); }
  SignalId find(const std::string& name) const;
  SignalId id_of(const std::string& name) const;  ///< throws if absent
  bool has(const std::string& name) const { return find(name) != kInvalidSignal; }

  const std::vector<SignalInfo>& signals() const { return signals_; }

  /// Ids of all signals with a given class.
  std::vector<SignalId> with_class(SignalClass cls) const;

 private:
  std::vector<SignalInfo> signals_;
  std::unordered_map<std::string, SignalId> index_;
};

}  // namespace specure::snapshot
