// Minimal VCD (Value Change Dump) writer/reader so traces can be
// inspected in GTKWave — the Microarchitecture Visualizer's "waveforms"
// output (§3.2). VCD is itself a delta format, so the writer streams the
// delta trace's change events directly: a full value dump at the first
// emitted cycle, then only the signals that changed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "snapshot/snapshot.hpp"

namespace specure::snapshot {

/// Write a whole trace as VCD. Hierarchical signal names are split on '.'
/// into VCD scopes.
void write_vcd(std::ostream& os, const Trace& trace,
               const std::string& top_scope = "specure");

/// Dense-reference overload, byte-identical to the delta writer for
/// equivalent traces (the trace differential suite asserts this).
void write_vcd(std::ostream& os, const DenseTrace& trace,
               const std::string& top_scope = "specure");

/// Write only the ticks with from <= cycle <= to: a full dump of the
/// window's first recorded cycle, then the change events inside it. This
/// is the per-vulnerability-window waveform export (`--vcd-out`).
void write_vcd_window(std::ostream& os, const Trace& trace,
                      std::uint64_t from, std::uint64_t to,
                      const std::string& top_scope = "specure");

/// Convenience: write to a file path; throws on I/O failure.
void write_vcd_file(const std::string& path, const Trace& trace,
                    const std::string& top_scope = "specure");

/// Windowed convenience writer; throws on I/O failure.
void write_vcd_window_file(const std::string& path, const Trace& trace,
                           std::uint64_t from, std::uint64_t to,
                           const std::string& top_scope = "specure");

/// Parsed VCD contents: the declared variables plus the dense value matrix
/// (values carried forward between change events), for round-trip checks
/// and external-waveform ingestion. Names are as written in the file
/// (hierarchy separators flattened to '_').
struct VcdData {
  std::vector<std::string> names;
  std::vector<unsigned> widths;
  std::vector<std::uint64_t> cycles;           ///< one entry per #timestamp
  std::vector<std::vector<std::uint64_t>> values;  ///< [cycle][signal]
};

/// Parse the VCD subset this module writes (binary/scalar value changes,
/// one scope level, `$var wire ...` declarations). Throws
/// std::runtime_error with context on malformed input.
VcdData read_vcd(std::istream& is);

}  // namespace specure::snapshot
