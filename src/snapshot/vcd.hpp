// Minimal VCD (Value Change Dump) writer so traces can be inspected in
// GTKWave — the Microarchitecture Visualizer's "waveforms" output (§3.2).
#pragma once

#include <iosfwd>
#include <string>

#include "snapshot/snapshot.hpp"

namespace specure::snapshot {

/// Write a whole trace as VCD. Hierarchical signal names are split on '.'
/// into VCD scopes.
void write_vcd(std::ostream& os, const Trace& trace,
               const std::string& top_scope = "specure");

/// Convenience: write to a file path; throws on I/O failure.
void write_vcd_file(const std::string& path, const Trace& trace,
                    const std::string& top_scope = "specure");

}  // namespace specure::snapshot
