#include "snapshot/snapshot.hpp"

#include <stdexcept>

#include "util/bits.hpp"

namespace specure::snapshot {

std::vector<SignalDelta> diff(const Snapshot& a, const Snapshot& b) {
  if (a.values.size() != b.values.size()) {
    throw std::runtime_error("snapshot diff: mismatched schemas");
  }
  std::vector<SignalDelta> out;
  for (SignalId i = 0; i < a.values.size(); ++i) {
    if (a.values[i] != b.values[i]) {
      out.push_back({i, a.values[i], b.values[i]});
    }
  }
  return out;
}

std::uint64_t toggle_count(const Snapshot& a, const Snapshot& b) {
  if (a.values.size() != b.values.size()) {
    throw std::runtime_error("snapshot toggle_count: mismatched schemas");
  }
  std::uint64_t total = 0;
  for (SignalId i = 0; i < a.values.size(); ++i) {
    total += util::toggled_bits(a.values[i], b.values[i]);
  }
  return total;
}

const Snapshot& Trace::at_cycle(std::uint64_t cycle) const {
  // Snapshots are pushed once per cycle starting at some base; binary
  // search by the stored cycle stamp.
  std::size_t lo = 0, hi = snaps_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (snaps_[mid].cycle < cycle) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= snaps_.size() || snaps_[lo].cycle != cycle) {
    throw std::runtime_error("trace: no snapshot for cycle " +
                             std::to_string(cycle));
  }
  return snaps_[lo];
}

std::vector<std::uint32_t> Trace::change_counts(std::uint64_t from,
                                                std::uint64_t to) const {
  std::vector<std::uint32_t> counts(db_->size(), 0);
  for (std::size_t i = 1; i < snaps_.size(); ++i) {
    const std::uint64_t c = snaps_[i].cycle;
    if (c <= from || c >= to + 1) continue;  // transitions inside (from, to]
    const auto& prev = snaps_[i - 1].values;
    const auto& cur = snaps_[i].values;
    for (SignalId s = 0; s < counts.size(); ++s) {
      counts[s] += prev[s] != cur[s];
    }
  }
  return counts;
}

std::vector<bool> Trace::changed_mask(std::uint64_t from,
                                      std::uint64_t to) const {
  const auto counts = change_counts(from, to);
  std::vector<bool> mask(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) mask[i] = counts[i] > 0;
  return mask;
}

TraceDeltas::TraceDeltas(const Trace& trace)
    : trace_(&trace),
      signal_count_(trace.empty() ? 0 : trace[0].values.size()) {
  per_cycle_.resize(trace.size());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const auto& prev = trace[i - 1].values;
    const auto& cur = trace[i].values;
    for (SignalId s = 0; s < signal_count_; ++s) {
      if (prev[s] != cur[s]) per_cycle_[i].push_back(s);
    }
  }
}

std::vector<bool> TraceDeltas::changed_mask(std::uint64_t from,
                                            std::uint64_t to) const {
  std::vector<bool> mask(signal_count_, false);
  const Trace& t = *trace_;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const std::uint64_t c = t[i].cycle;
    if (c <= from || c > to) continue;
    for (SignalId s : per_cycle_[i]) mask[s] = true;
  }
  return mask;
}

}  // namespace specure::snapshot
