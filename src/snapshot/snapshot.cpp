#include "snapshot/snapshot.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/bits.hpp"

namespace specure::snapshot {

std::vector<SignalDelta> diff(const Snapshot& a, const Snapshot& b) {
  if (a.values.size() != b.values.size()) {
    throw std::runtime_error("snapshot diff: mismatched schemas");
  }
  std::vector<SignalDelta> out;
  for (SignalId i = 0; i < a.values.size(); ++i) {
    if (a.values[i] != b.values[i]) {
      out.push_back({i, a.values[i], b.values[i]});
    }
  }
  return out;
}

std::uint64_t toggle_count(const Snapshot& a, const Snapshot& b) {
  if (a.values.size() != b.values.size()) {
    throw std::runtime_error("snapshot toggle_count: mismatched schemas");
  }
  std::uint64_t total = 0;
  for (SignalId i = 0; i < a.values.size(); ++i) {
    total += util::toggled_bits(a.values[i], b.values[i]);
  }
  return total;
}

// ------------------------------------------------------------------ Trace --

void Trace::begin_cycle(std::uint64_t cycle) {
  if (!cycles_.empty()) {
    if (cycle <= cycles_.back()) {
      throw std::runtime_error(
          "trace: cycles must be strictly increasing (got " +
          std::to_string(cycle) + " after " + std::to_string(cycles_.back()) +
          ")");
    }
    if (cycle != cycles_.back() + 1) contiguous_ = false;
  }
  if (live_.empty()) live_.assign(db_->size(), 0);
  // The previous tick is now complete; keyframe it on the interval grid so
  // keyframes_[k] always holds the state after tick k * kKeyframeInterval.
  const std::size_t done = cycles_.size();
  if (done >= 1 && (done - 1) % kKeyframeInterval == 0) {
    keyframes_.insert(keyframes_.end(), live_.begin(), live_.end());
  }
  cycles_.push_back(cycle);
  offsets_.push_back(event_ids_.size());
}

unsigned Trace::record(SignalId id, std::uint64_t value) {
  if (cycles_.empty()) {
    throw std::runtime_error("trace: record() before begin_cycle()");
  }
  if (id >= live_.size()) {
    throw std::runtime_error("trace: signal id " + std::to_string(id) +
                             " outside the schema (" +
                             std::to_string(live_.size()) + " signals)");
  }
  const std::size_t tick_start = offsets_.back();
  if (event_ids_.size() > tick_start && id <= event_ids_.back()) {
    throw std::runtime_error(
        "trace: record() ids must be strictly ascending within a tick");
  }
  const std::uint64_t prev = live_[id];
  if (value == prev) return 0;
  event_ids_.push_back(id);
  event_values_.push_back(value);
  live_[id] = value;
  return util::toggled_bits(prev, value);
}

void Trace::push(const Snapshot& snap) {
  if (snap.values.size() != db_->size()) {
    throw std::runtime_error("trace push: snapshot has " +
                             std::to_string(snap.values.size()) +
                             " values, schema has " +
                             std::to_string(db_->size()));
  }
  begin_cycle(snap.cycle);
  for (SignalId i = 0; i < snap.values.size(); ++i) record(i, snap.values[i]);
}

void Trace::reset() {
  cycles_.clear();
  offsets_.clear();
  event_ids_.clear();
  event_values_.clear();
  live_.clear();
  keyframes_.clear();
  contiguous_ = true;
}

Trace Trace::fork_at(std::uint64_t cycle) const {
  Trace out(db_);
  fork_into(cycle, out);
  return out;
}

void Trace::fork_into(std::uint64_t cycle, Trace& out) const {
  const std::size_t t = index_of(cycle);  // throws naming the covered range
  out.db_ = db_;
  out.cycles_.assign(cycles_.begin(), cycles_.begin() + t + 1);
  out.offsets_.assign(offsets_.begin(), offsets_.begin() + t + 1);
  const std::size_t events = tick_end(t);
  out.event_ids_.assign(event_ids_.begin(), event_ids_.begin() + events);
  out.event_values_.assign(event_values_.begin(),
                           event_values_.begin() + events);
  materialize(t, out.live_);
  // A cold recording of ticks 0..t would have keyframed the state after
  // tick m * kKeyframeInterval for every m with m * kKeyframeInterval
  // <= t - 1 (the keyframe is pushed when the *next* tick begins).
  const std::size_t keyframes = t == 0 ? 0 : (t - 1) / kKeyframeInterval + 1;
  out.keyframes_.assign(
      keyframes_.begin(),
      keyframes_.begin() +
          static_cast<std::ptrdiff_t>(keyframes * db_->size()));
  out.contiguous_ = cycles_[t] - cycles_[0] == t;
}

std::size_t Trace::memory_bytes() const {
  std::size_t bytes = 0;
  bytes += event_ids_.size() * sizeof(SignalId);
  bytes += event_values_.size() * sizeof(std::uint64_t);
  bytes += cycles_.size() * sizeof(std::uint64_t);
  bytes += offsets_.size() * sizeof(std::size_t);
  bytes += live_.size() * sizeof(std::uint64_t);
  bytes += keyframes_.size() * sizeof(std::uint64_t);
  return bytes;
}

std::size_t Trace::find_index(std::uint64_t cycle) const {
  if (cycles_.empty()) return static_cast<std::size_t>(-1);
  if (contiguous_) {
    if (cycle < cycles_.front() || cycle > cycles_.back()) {
      return static_cast<std::size_t>(-1);
    }
    return static_cast<std::size_t>(cycle - cycles_.front());
  }
  const auto it = std::lower_bound(cycles_.begin(), cycles_.end(), cycle);
  if (it == cycles_.end() || *it != cycle) {
    return static_cast<std::size_t>(-1);
  }
  return static_cast<std::size_t>(it - cycles_.begin());
}

std::size_t Trace::index_of(std::uint64_t cycle) const {
  const std::size_t idx = find_index(cycle);
  if (idx == static_cast<std::size_t>(-1)) {
    std::string msg = "trace: no snapshot for cycle " + std::to_string(cycle);
    if (cycles_.empty()) {
      msg += " (trace is empty)";
    } else {
      msg += " (trace covers cycles " + std::to_string(cycles_.front()) +
             ".." + std::to_string(cycles_.back()) + ")";
    }
    throw std::runtime_error(msg);
  }
  return idx;
}

std::size_t Trace::seed_from_keyframe(std::size_t index,
                                      std::vector<std::uint64_t>& out) const {
  const std::size_t n = db_->size();
  std::size_t k = index / kKeyframeInterval;
  const std::size_t frames = keyframe_count();
  if (k >= frames && frames > 0) k = frames - 1;
  if (k < frames) {
    out.assign(keyframes_.begin() + static_cast<std::ptrdiff_t>(k * n),
               keyframes_.begin() + static_cast<std::ptrdiff_t>((k + 1) * n));
    return k * kKeyframeInterval + 1;
  }
  out.assign(n, 0);
  return 0;
}

void Trace::materialize(std::size_t index,
                        std::vector<std::uint64_t>& out) const {
  if (index + 1 == cycles_.size()) {  // the common "last tick" fast path
    out = live_;
    return;
  }
  std::size_t tick = seed_from_keyframe(index, out);
  for (; tick <= index; ++tick) {
    for (std::size_t e = tick_begin(tick); e < tick_end(tick); ++e) {
      out[event_ids_[e]] = event_values_[e];
    }
  }
}

Snapshot Trace::at_cycle(std::uint64_t cycle) const {
  const std::size_t index = index_of(cycle);
  Snapshot snap;
  snap.cycle = cycle;
  materialize(index, snap.values);
  return snap;
}

Snapshot Trace::operator[](std::size_t index) const {
  Snapshot snap;
  snap.cycle = cycles_[index];
  materialize(index, snap.values);
  return snap;
}

std::uint64_t Trace::value_at(std::uint64_t cycle, SignalId id) const {
  const std::size_t index = index_of(cycle);
  if (index + 1 == cycles_.size()) return live_[id];
  std::size_t k = index / kKeyframeInterval;
  const std::size_t frames = keyframe_count();
  if (k >= frames && frames > 0) k = frames - 1;
  std::uint64_t v = 0;
  std::size_t tick = 0;
  if (k < frames) {
    v = keyframes_[k * db_->size() + id];
    tick = k * kKeyframeInterval + 1;
  }
  for (; tick <= index; ++tick) {
    for (std::size_t e = tick_begin(tick); e < tick_end(tick); ++e) {
      if (event_ids_[e] == id) v = event_values_[e];
    }
  }
  return v;
}

std::vector<SignalDelta> Trace::diff(std::uint64_t from,
                                     std::uint64_t to) const {
  const std::size_t a = index_of(from);
  const std::size_t b = index_of(to);
  if (b < a) throw std::runtime_error("trace diff: to-cycle before from-cycle");
  std::vector<std::uint64_t> before;
  materialize(a, before);

  // Signals touched by any event in ticks (a, b] are the only diff
  // candidates; a signal that changed and changed back is filtered by the
  // value comparison below.
  std::vector<SignalId> touched;
  for (std::size_t tick = a + 1; tick <= b; ++tick) {
    touched.insert(touched.end(), event_ids_.begin() + tick_begin(tick),
                   event_ids_.begin() + tick_end(tick));
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  std::vector<std::uint64_t> after;
  materialize(b, after);
  std::vector<SignalDelta> out;
  for (const SignalId id : touched) {
    if (before[id] != after[id]) out.push_back({id, before[id], after[id]});
  }
  return out;
}

std::vector<std::uint32_t> Trace::change_counts(std::uint64_t from,
                                                std::uint64_t to) const {
  std::vector<std::uint32_t> counts(db_->size(), 0);
  if (cycles_.empty()) return counts;
  // Recorded ticks with from < cycle <= to; the first tick never counts
  // (its events are the initial values, not transitions).
  auto lo = std::upper_bound(cycles_.begin(), cycles_.end(), from);
  auto hi = std::upper_bound(cycles_.begin(), cycles_.end(), to);
  std::size_t tick = static_cast<std::size_t>(lo - cycles_.begin());
  const std::size_t end = static_cast<std::size_t>(hi - cycles_.begin());
  if (tick == 0) tick = 1;
  for (; tick < end; ++tick) {
    for (std::size_t e = tick_begin(tick); e < tick_end(tick); ++e) {
      ++counts[event_ids_[e]];
    }
  }
  return counts;
}

std::vector<bool> Trace::changed_mask(std::uint64_t from,
                                      std::uint64_t to) const {
  std::vector<bool> mask(db_->size(), false);
  if (cycles_.empty()) return mask;
  auto lo = std::upper_bound(cycles_.begin(), cycles_.end(), from);
  auto hi = std::upper_bound(cycles_.begin(), cycles_.end(), to);
  std::size_t tick = static_cast<std::size_t>(lo - cycles_.begin());
  const std::size_t end = static_cast<std::size_t>(hi - cycles_.begin());
  if (tick == 0) tick = 1;
  for (; tick < end; ++tick) {
    for (std::size_t e = tick_begin(tick); e < tick_end(tick); ++e) {
      mask[event_ids_[e]] = true;
    }
  }
  return mask;
}

bool Trace::any_nonzero(SignalId id, std::uint64_t from,
                        std::uint64_t to) const {
  const std::size_t a = index_of(from);
  std::uint64_t v = value_at(from, id);
  auto hi = std::upper_bound(cycles_.begin(), cycles_.end(), to);
  const std::size_t end = static_cast<std::size_t>(hi - cycles_.begin());
  for (std::size_t tick = a + 1; tick < end; ++tick) {
    for (std::size_t e = tick_begin(tick); e < tick_end(tick); ++e) {
      if (event_ids_[e] == id) v = event_values_[e];
    }
    if (v != 0) return true;
  }
  return false;
}

// ------------------------------------------------------------- DenseTrace --

const Snapshot& DenseTrace::at_cycle(std::uint64_t cycle) const {
  std::size_t lo = 0, hi = snaps_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (snaps_[mid].cycle < cycle) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= snaps_.size() || snaps_[lo].cycle != cycle) {
    throw std::runtime_error("dense trace: no snapshot for cycle " +
                             std::to_string(cycle));
  }
  return snaps_[lo];
}

std::vector<std::uint32_t> DenseTrace::change_counts(std::uint64_t from,
                                                     std::uint64_t to) const {
  std::vector<std::uint32_t> counts(db_->size(), 0);
  for (std::size_t i = 1; i < snaps_.size(); ++i) {
    const std::uint64_t c = snaps_[i].cycle;
    if (c <= from || c > to) continue;  // transitions inside (from, to]
    const auto& prev = snaps_[i - 1].values;
    const auto& cur = snaps_[i].values;
    for (SignalId s = 0; s < counts.size(); ++s) {
      counts[s] += prev[s] != cur[s];
    }
  }
  return counts;
}

std::vector<bool> DenseTrace::changed_mask(std::uint64_t from,
                                           std::uint64_t to) const {
  const auto counts = change_counts(from, to);
  std::vector<bool> mask(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) mask[i] = counts[i] > 0;
  return mask;
}

std::size_t DenseTrace::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& s : snaps_) {
    bytes += sizeof(Snapshot) + s.values.size() * sizeof(std::uint64_t);
  }
  return bytes;
}

}  // namespace specure::snapshot
