// Delta-native run traces, snapshot materialization and window diffing.
// These are the data the Leakage Detector (§3.2) consumes: the diff between
// the microarchitectural state at the start and end of a misspeculated
// window yields the potential information-leakage locations.
//
// The paper's Online Phase is built on diffing per-cycle snapshots, but
// only a handful of signals change per cycle — so Trace records
// (cycle, signal, new_value) change events instead of materializing one
// full value vector per cycle. Memory is O(changes + keyframes) instead of
// O(cycles × signals), and every window query (diff, change_counts,
// changed_mask) walks only the events inside the window. Periodic
// keyframes (one full value vector every kKeyframeInterval ticks) keep
// random-access materialization O(1) amortized.
//
// DenseTrace is the retained dense reference recorder: one full Snapshot
// per cycle, the pre-delta representation. The simulator can record both
// side by side (CoreConfig::record_dense_trace), which is the oracle the
// trace differential suite replays against.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "snapshot/signal_db.hpp"

namespace specure::snapshot {

/// State of every registered signal at one clock cycle. Values are aligned
/// with SignalDb ids.
struct Snapshot {
  std::uint64_t cycle = 0;
  std::vector<std::uint64_t> values;

  std::uint64_t operator[](SignalId id) const { return values[id]; }
};

/// One changed signal between two snapshots.
struct SignalDelta {
  SignalId id = kInvalidSignal;
  std::uint64_t before = 0;
  std::uint64_t after = 0;
};

/// All signals whose value differs between `a` and `b` (a is "before").
std::vector<SignalDelta> diff(const Snapshot& a, const Snapshot& b);

/// Number of bit toggles between two snapshots, summed over all signals.
std::uint64_t toggle_count(const Snapshot& a, const Snapshot& b);

/// A delta-native run trace: an ordered stream of per-tick change events
/// against an implicit all-zero pre-reset state, plus periodic keyframes.
///
/// Recording (the simulator hot loop):
///   trace.begin_cycle(cycle);
///   for each signal id, ascending:  toggles += trace.record(id, value);
///
/// record() compares against the live previous-value array and appends an
/// event only when the value actually changed, returning the number of
/// toggled bits (the toggle-coverage increment). Ids must be recorded in
/// strictly ascending order within a tick and cycles must be strictly
/// increasing across ticks — both are enforced.
class Trace {
 public:
  /// One full value vector is kept every this many ticks, bounding the
  /// event replay a random-access materialization has to do.
  static constexpr std::size_t kKeyframeInterval = 64;

  explicit Trace(const SignalDb* db) : db_(db) {}

  // ---- recording --------------------------------------------------------
  /// Open a new tick. Cycles must be strictly increasing.
  void begin_cycle(std::uint64_t cycle);

  /// Record one signal's value for the open tick. Appends a change event
  /// iff the value differs from the previous tick's; returns the number of
  /// bits toggled (0 when unchanged). Ids must arrive in strictly
  /// ascending order within a tick.
  unsigned record(SignalId id, std::uint64_t value);

  /// Bulk dirty-set recorder — THE dirty-word scan loop, shared by the
  /// detailed core and the fast tier. Walks the set bits of `dirty_words`
  /// (one bit per signal id, ascending — which satisfies record()'s
  /// ordering contract), evaluates each via `value_fn(id)`, and records
  /// it for the open tick. Signals whose bit is clear are untouched: the
  /// live array keeps their previous value, which is exactly what a full
  /// sweep would have re-recorded (unchanged values append no event), so
  /// a conservative superset dirty set yields a byte-identical event
  /// stream. Returns the summed toggled-bit count.
  template <typename ValueFn>
  std::uint64_t record_dirty(const std::vector<std::uint64_t>& dirty_words,
                             ValueFn&& value_fn) {
    std::uint64_t toggles = 0;
    for (std::size_t w = 0; w < dirty_words.size(); ++w) {
      std::uint64_t bits = dirty_words[w];
      while (bits != 0) {
        const std::size_t id =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        toggles += record(static_cast<SignalId>(id), value_fn(id));
      }
    }
    return toggles;
  }

  /// Convenience recorder: one whole snapshot (all signals, SignalDb
  /// order). Equivalent to begin_cycle + record per signal.
  void push(const Snapshot& snap);

  /// Drop every recorded tick but keep the allocated column capacity, so
  /// a worker can reuse one Trace across runs without reallocating the
  /// event columns each iteration.
  void reset();

  // ---- forking (checkpoint resume) ---------------------------------------
  /// A trace holding exactly the ticks up to and including `cycle`, laid
  /// out byte-identically to what recording only those ticks would have
  /// produced (same events, same keyframe grid, same live array), and
  /// ready to continue recording from the next cycle. This is how a
  /// checkpoint-resumed run inherits its parent's event prefix. Throws
  /// std::runtime_error naming the covered range when `cycle` was never
  /// recorded (fork at cycle 0 or past end-of-trace).
  Trace fork_at(std::uint64_t cycle) const;

  /// Buffer-reusing fork: like fork_at, but fills `out` in place
  /// (reusing its column capacity). `out` is re-bound to this trace's
  /// SignalDb.
  void fork_into(std::uint64_t cycle, Trace& out) const;

  // ---- shape ------------------------------------------------------------
  std::size_t size() const { return cycles_.size(); }
  bool empty() const { return cycles_.empty(); }
  std::uint64_t cycle_at(std::size_t index) const { return cycles_[index]; }
  const SignalDb& db() const { return *db_; }
  std::size_t event_count() const { return event_ids_.size(); }

  /// Approximate heap footprint of the recorded trace (events, tick index,
  /// keyframes, live array) — the number the trace bench reports against
  /// the dense O(cycles × signals) representation.
  std::size_t memory_bytes() const;

  // ---- materialization --------------------------------------------------
  /// Full snapshot at a recorded cycle. O(1) for contiguous cycle stamps
  /// (O(log n) otherwise) to locate the tick, then O(signals + events
  /// since the nearest keyframe) to materialize. Throws std::runtime_error
  /// naming the cycle and the covered range when the cycle was never
  /// recorded.
  Snapshot at_cycle(std::uint64_t cycle) const;

  /// Full snapshot of the i-th recorded tick (by value — the dense vector
  /// is materialized on demand).
  Snapshot operator[](std::size_t index) const;

  /// One signal's value at a recorded cycle, without materializing the
  /// rest of the snapshot.
  std::uint64_t value_at(std::uint64_t cycle, SignalId id) const;

  // ---- window queries (the Online Phase detectors) -----------------------
  /// Signals whose value differs between the snapshots at cycles `from`
  /// and `to`, ascending by id — identical to diff(at_cycle(from),
  /// at_cycle(to)) but computed from the events between the two ticks.
  std::vector<SignalDelta> diff(std::uint64_t from, std::uint64_t to) const;

  /// Per-signal count of value *changes* (not bit toggles) at recorded
  /// cycles c with from < c <= to. Used by the LP coverage calculator,
  /// which asks how often PDLC signals toggled inside a speculative
  /// window. Out-of-range windows yield zero counts.
  std::vector<std::uint32_t> change_counts(std::uint64_t from,
                                           std::uint64_t to) const;

  /// Set of signal ids with at least one change at a recorded cycle in
  /// (from, to]. Cost: O(signals + events inside the window).
  std::vector<bool> changed_mask(std::uint64_t from, std::uint64_t to) const;

  /// True iff `id`'s value is non-zero at any recorded cycle c with
  /// from < c <= to (pulse detection, e.g. core.lsu.tainted_access).
  bool any_nonzero(SignalId id, std::uint64_t from, std::uint64_t to) const;

  /// Walk every recorded tick in order, tracking the values of `ids`.
  /// `fn(cycle, tracked)` is called once per tick with tracked[i] holding
  /// the value of ids[i] at that tick. Cost: O(ticks + total events).
  template <typename Fn>
  void scan(const std::vector<SignalId>& ids, Fn&& fn) const {
    std::vector<std::uint32_t> slot(db_->size(), ~0u);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      slot[ids[i]] = static_cast<std::uint32_t>(i);
    }
    std::vector<std::uint64_t> tracked(ids.size(), 0);
    for (std::size_t t = 0; t < cycles_.size(); ++t) {
      for (std::size_t e = tick_begin(t); e < tick_end(t); ++e) {
        const std::uint32_t s = slot[event_ids_[e]];
        if (s != ~0u) tracked[s] = event_values_[e];
      }
      fn(cycles_[t], tracked);
    }
  }

  // ---- event access (VCD writer, benches) --------------------------------
  std::size_t tick_begin(std::size_t index) const { return offsets_[index]; }
  std::size_t tick_end(std::size_t index) const {
    return index + 1 < offsets_.size() ? offsets_[index + 1]
                                       : event_ids_.size();
  }
  SignalId event_id(std::size_t e) const { return event_ids_[e]; }
  std::uint64_t event_value(std::size_t e) const { return event_values_[e]; }

 private:
  /// Tick index of a recorded cycle; throws with the covered range when
  /// the cycle was never recorded.
  std::size_t index_of(std::uint64_t cycle) const;
  /// Tick index of a recorded cycle, or npos when absent (no throw).
  std::size_t find_index(std::uint64_t cycle) const;
  /// Materialize the values after tick `index` into `out`.
  void materialize(std::size_t index, std::vector<std::uint64_t>& out) const;
  /// Seed `out` with the nearest keyframe at or before `index`; returns
  /// the first tick whose events still need replaying.
  std::size_t seed_from_keyframe(std::size_t index,
                                 std::vector<std::uint64_t>& out) const;

  const SignalDb* db_;
  std::vector<std::uint64_t> cycles_;    ///< per tick: cycle stamp
  std::vector<std::size_t> offsets_;     ///< per tick: first event index
  std::vector<SignalId> event_ids_;      ///< columnar change events
  std::vector<std::uint64_t> event_values_;
  /// Values after the last recorded tick — the simulator's previous-value
  /// array that record() detects changes against.
  std::vector<std::uint64_t> live_;
  /// Flat keyframe store, one frame of db_->size() values per
  /// kKeyframeInterval ticks: frame k (values after tick
  /// k * kKeyframeInterval) lives at [k * size, (k + 1) * size). Flat so
  /// recording allocates one growing buffer, not one vector per frame.
  std::vector<std::uint64_t> keyframes_;
  std::size_t keyframe_count() const {
    return db_->size() == 0 ? 0 : keyframes_.size() / db_->size();
  }
  bool contiguous_ = true;  ///< cycle stamps are base, base+1, base+2, ...
};

/// The dense reference recorder: the snapshot of every simulated cycle in
/// full, the representation the delta trace replaced. Kept as the oracle
/// for the trace differential suite and for dense-vs-delta benchmarking.
class DenseTrace {
 public:
  explicit DenseTrace(const SignalDb* db) : db_(db) {}

  void push(Snapshot snap) { snaps_.push_back(std::move(snap)); }
  std::size_t size() const { return snaps_.size(); }
  bool empty() const { return snaps_.empty(); }
  const Snapshot& at_cycle(std::uint64_t cycle) const;
  const Snapshot& operator[](std::size_t i) const { return snaps_[i]; }
  const SignalDb& db() const { return *db_; }

  /// Same query semantics as Trace, computed the dense way (full per-tick
  /// value-vector comparisons).
  std::vector<std::uint32_t> change_counts(std::uint64_t from,
                                           std::uint64_t to) const;
  std::vector<bool> changed_mask(std::uint64_t from, std::uint64_t to) const;

  std::size_t memory_bytes() const;

 private:
  const SignalDb* db_;
  std::vector<Snapshot> snaps_;
};

}  // namespace specure::snapshot
