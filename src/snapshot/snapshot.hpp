// Per-cycle state snapshots, snapshot diffing and whole-run traces.
// These are the data the Leakage Detector (§3.2) consumes: the diff between
// the snapshots at the start and end of a misspeculated window yields the
// potential information-leakage locations.
#pragma once

#include <cstdint>
#include <vector>

#include "snapshot/signal_db.hpp"

namespace specure::snapshot {

/// State of every registered signal at one clock cycle. Values are aligned
/// with SignalDb ids.
struct Snapshot {
  std::uint64_t cycle = 0;
  std::vector<std::uint64_t> values;

  std::uint64_t operator[](SignalId id) const { return values[id]; }
};

/// One changed signal between two snapshots.
struct SignalDelta {
  SignalId id = kInvalidSignal;
  std::uint64_t before = 0;
  std::uint64_t after = 0;
};

/// All signals whose value differs between `a` and `b` (a is "before").
std::vector<SignalDelta> diff(const Snapshot& a, const Snapshot& b);

/// Number of bit toggles between two snapshots, summed over all signals.
std::uint64_t toggle_count(const Snapshot& a, const Snapshot& b);

/// A run trace: the snapshot of every simulated cycle, in order.
class Trace {
 public:
  explicit Trace(const SignalDb* db) : db_(db) {}

  void push(Snapshot snap) { snaps_.push_back(std::move(snap)); }
  std::size_t size() const { return snaps_.size(); }
  bool empty() const { return snaps_.empty(); }
  const Snapshot& at_cycle(std::uint64_t cycle) const;
  const Snapshot& operator[](std::size_t i) const { return snaps_[i]; }
  const SignalDb& db() const { return *db_; }

  /// Per-signal count of value *changes* (not bit toggles) within the
  /// half-open cycle interval [from, to). Used by the LP coverage
  /// calculator, which asks how often PDLC signals toggled inside a
  /// speculative window.
  std::vector<std::uint32_t> change_counts(std::uint64_t from,
                                           std::uint64_t to) const;

  /// Set of signal ids whose value changed at least once in [from, to).
  std::vector<bool> changed_mask(std::uint64_t from, std::uint64_t to) const;

 private:
  const SignalDb* db_;
  std::vector<Snapshot> snaps_;
};

/// Precomputed per-cycle change lists for a trace. Building costs one
/// linear pass; afterwards window queries cost only the changes inside the
/// window, which makes per-window LP-coverage accounting cheap when a run
/// has many speculative windows.
class TraceDeltas {
 public:
  explicit TraceDeltas(const Trace& trace);

  /// Same semantics as Trace::changed_mask(from, to).
  std::vector<bool> changed_mask(std::uint64_t from, std::uint64_t to) const;

 private:
  const Trace* trace_;
  std::size_t signal_count_;
  /// per_cycle_[i]: signals whose value changed between trace[i-1] and
  /// trace[i].
  std::vector<std::vector<SignalId>> per_cycle_;
};

}  // namespace specure::snapshot
