#include "snapshot/vcd.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "util/strings.hpp"

namespace specure::snapshot {

namespace {

/// VCD identifier codes: printable ASCII 33..126, shortest-first.
std::string vcd_code(std::size_t index) {
  std::string code;
  do {
    code.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index != 0);
  return code;
}

void write_value(std::ostream& os, std::uint64_t value, unsigned width,
                 const std::string& code) {
  if (width == 1) {
    os << (value & 1) << code << '\n';
    return;
  }
  os << 'b';
  bool started = false;
  for (int bit = static_cast<int>(width) - 1; bit >= 0; --bit) {
    const int v = static_cast<int>((value >> bit) & 1);
    if (v) started = true;
    if (started || bit == 0) os << v;
  }
  os << ' ' << code << '\n';
}

}  // namespace

void write_vcd(std::ostream& os, const Trace& trace,
               const std::string& top_scope) {
  const SignalDb& db = trace.db();
  os << "$date today $end\n$version specure $end\n$timescale 1ns $end\n";
  os << "$scope module " << top_scope << " $end\n";

  std::vector<std::string> codes(db.size());
  for (SignalId i = 0; i < db.size(); ++i) {
    codes[i] = vcd_code(i);
    // Flatten hierarchy into the identifier (scope tracking would need a
    // tree walk; viewers group on the dots anyway).
    std::string name = db.info(i).name;
    for (char& c : name) {
      if (c == '.') c = '_';
    }
    os << "$var wire " << db.info(i).width << ' ' << codes[i] << ' ' << name
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  std::vector<std::uint64_t> last(db.size());
  bool first = true;
  for (std::size_t s = 0; s < trace.size(); ++s) {
    const Snapshot& snap = trace[s];
    os << '#' << snap.cycle << '\n';
    for (SignalId i = 0; i < db.size(); ++i) {
      if (first || snap.values[i] != last[i]) {
        write_value(os, snap.values[i], db.info(i).width, codes[i]);
        last[i] = snap.values[i];
      }
    }
    first = false;
  }
}

void write_vcd_file(const std::string& path, const Trace& trace,
                    const std::string& top_scope) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open VCD output: " + path);
  write_vcd(out, trace, top_scope);
}

}  // namespace specure::snapshot
