#include "snapshot/vcd.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/strings.hpp"

namespace specure::snapshot {

namespace {

/// VCD identifier codes: printable ASCII 33..126, shortest-first.
std::string vcd_code(std::size_t index) {
  std::string code;
  do {
    code.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index != 0);
  return code;
}

void write_value(std::ostream& os, std::uint64_t value, unsigned width,
                 const std::string& code) {
  if (width == 1) {
    os << (value & 1) << code << '\n';
    return;
  }
  os << 'b';
  bool started = false;
  for (int bit = static_cast<int>(width) - 1; bit >= 0; --bit) {
    const int v = static_cast<int>((value >> bit) & 1);
    if (v) started = true;
    if (started || bit == 0) os << v;
  }
  os << ' ' << code << '\n';
}

/// Header + per-signal identifier codes, shared by every writer.
std::vector<std::string> write_header(std::ostream& os, const SignalDb& db,
                                      const std::string& top_scope) {
  os << "$date today $end\n$version specure $end\n$timescale 1ns $end\n";
  os << "$scope module " << top_scope << " $end\n";
  std::vector<std::string> codes(db.size());
  for (SignalId i = 0; i < db.size(); ++i) {
    codes[i] = vcd_code(i);
    // Flatten hierarchy into the identifier (scope tracking would need a
    // tree walk; viewers group on the dots anyway).
    std::string name = db.info(i).name;
    for (char& c : name) {
      if (c == '.') c = '_';
    }
    os << "$var wire " << db.info(i).width << ' ' << codes[i] << ' ' << name
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";
  return codes;
}

}  // namespace

void write_vcd(std::ostream& os, const Trace& trace,
               const std::string& top_scope) {
  const SignalDb& db = trace.db();
  const auto codes = write_header(os, db, top_scope);
  if (trace.empty()) return;

  // First tick: full dump. Later ticks: exactly the change events — VCD's
  // own delta encoding, streamed without materializing any snapshot.
  const Snapshot first = trace[0];
  os << '#' << first.cycle << '\n';
  for (SignalId i = 0; i < db.size(); ++i) {
    write_value(os, first.values[i], db.info(i).width, codes[i]);
  }
  for (std::size_t t = 1; t < trace.size(); ++t) {
    os << '#' << trace.cycle_at(t) << '\n';
    for (std::size_t e = trace.tick_begin(t); e < trace.tick_end(t); ++e) {
      const SignalId id = trace.event_id(e);
      write_value(os, trace.event_value(e), db.info(id).width, codes[id]);
    }
  }
}

void write_vcd(std::ostream& os, const DenseTrace& trace,
               const std::string& top_scope) {
  const SignalDb& db = trace.db();
  const auto codes = write_header(os, db, top_scope);

  std::vector<std::uint64_t> last(db.size());
  bool first = true;
  for (std::size_t s = 0; s < trace.size(); ++s) {
    const Snapshot& snap = trace[s];
    os << '#' << snap.cycle << '\n';
    for (SignalId i = 0; i < db.size(); ++i) {
      if (first || snap.values[i] != last[i]) {
        write_value(os, snap.values[i], db.info(i).width, codes[i]);
        last[i] = snap.values[i];
      }
    }
    first = false;
  }
}

void write_vcd_window(std::ostream& os, const Trace& trace,
                      std::uint64_t from, std::uint64_t to,
                      const std::string& top_scope) {
  if (to < from) {
    throw std::runtime_error("vcd window: to-cycle before from-cycle");
  }
  const SignalDb& db = trace.db();
  const auto codes = write_header(os, db, top_scope);
  if (trace.empty()) return;

  const Snapshot start = trace.at_cycle(from);
  os << '#' << start.cycle << '\n';
  for (SignalId i = 0; i < db.size(); ++i) {
    write_value(os, start.values[i], db.info(i).width, codes[i]);
  }
  for (std::size_t t = 0; t < trace.size(); ++t) {
    const std::uint64_t c = trace.cycle_at(t);
    if (c <= from || c > to) continue;
    os << '#' << c << '\n';
    for (std::size_t e = trace.tick_begin(t); e < trace.tick_end(t); ++e) {
      const SignalId id = trace.event_id(e);
      write_value(os, trace.event_value(e), db.info(id).width, codes[id]);
    }
  }
}

void write_vcd_file(const std::string& path, const Trace& trace,
                    const std::string& top_scope) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open VCD output: " + path);
  write_vcd(out, trace, top_scope);
  if (!out.flush()) throw std::runtime_error("VCD write failed: " + path);
}

void write_vcd_window_file(const std::string& path, const Trace& trace,
                           std::uint64_t from, std::uint64_t to,
                           const std::string& top_scope) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open VCD output: " + path);
  write_vcd_window(out, trace, from, to, top_scope);
  if (!out.flush()) throw std::runtime_error("VCD write failed: " + path);
}

// ----------------------------------------------------------------- reader --

VcdData read_vcd(std::istream& is) {
  VcdData data;
  std::unordered_map<std::string, std::size_t> code_index;
  std::vector<std::uint64_t> current;
  bool have_time = false;

  auto index_of_code = [&code_index](const std::string& code) -> std::size_t {
    const auto it = code_index.find(code);
    if (it == code_index.end()) {
      throw std::runtime_error("vcd: value change for undeclared code '" +
                               code + "'");
    }
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view t = util::trim(line);
    if (t.empty()) continue;
    if (t[0] == '$') {
      // Only $var declarations carry state we need; other $-commands
      // ($date, $timescale, $scope, $enddefinitions, ...) are skipped.
      std::istringstream ss{std::string(t)};
      std::string word;
      ss >> word;
      if (word == "$var") {
        if (have_time) {
          // `current` is sized at the first timestamp; a late declaration
          // would index past it.
          throw std::runtime_error("vcd line " + std::to_string(line_no) +
                                   ": $var after the first timestamp");
        }
        std::string type, code, name;
        unsigned width = 0;
        ss >> type >> width >> code >> name;
        if (code.empty() || name.empty()) {
          throw std::runtime_error("vcd line " + std::to_string(line_no) +
                                   ": malformed $var");
        }
        if (!code_index.emplace(code, data.names.size()).second) {
          throw std::runtime_error("vcd line " + std::to_string(line_no) +
                                   ": duplicate identifier code '" + code +
                                   "'");
        }
        data.names.push_back(name);
        data.widths.push_back(width);
      }
      continue;
    }
    if (t[0] == '#') {
      std::uint64_t cycle = 0;
      try {
        cycle = std::stoull(std::string(t.substr(1)));
      } catch (const std::exception&) {
        throw std::runtime_error("vcd line " + std::to_string(line_no) +
                                 ": bad timestamp '" + std::string(t) + "'");
      }
      if (have_time) data.values.push_back(current);
      if (current.size() != code_index.size()) {
        current.assign(code_index.size(), 0);
      }
      data.cycles.push_back(cycle);
      have_time = true;
      continue;
    }
    if (!have_time) {
      throw std::runtime_error("vcd line " + std::to_string(line_no) +
                               ": value change before first timestamp");
    }
    if (t[0] == 'b') {
      const std::size_t sp = t.find(' ');
      if (sp == std::string_view::npos) {
        throw std::runtime_error("vcd line " + std::to_string(line_no) +
                                 ": malformed binary value");
      }
      std::uint64_t v = 0;
      for (const char c : t.substr(1, sp - 1)) {
        if (c != '0' && c != '1') {
          throw std::runtime_error("vcd line " + std::to_string(line_no) +
                                   ": non-binary digit '" + std::string(1, c) +
                                   "'");
        }
        v = (v << 1) | static_cast<std::uint64_t>(c - '0');
      }
      current[index_of_code(std::string(t.substr(sp + 1)))] = v;
    } else if (t[0] == '0' || t[0] == '1') {
      current[index_of_code(std::string(t.substr(1)))] =
          static_cast<std::uint64_t>(t[0] - '0');
    } else {
      throw std::runtime_error("vcd line " + std::to_string(line_no) +
                               ": unsupported value change '" +
                               std::string(t) + "'");
    }
  }
  if (have_time) data.values.push_back(current);
  return data;
}

}  // namespace specure::snapshot
