// The `specure serve` daemon: campaign-as-a-service over a Unix-domain
// socket.
//
//   Client                      Server
//   ------                      ------
//   submit {spec}        -->    store.create -> Tenant -> scheduled
//   status {id}          -->    lifecycle + live counters
//   events {id,from}     -->    events.jsonl streamed as frames (tail -f)
//   pause/resume/cancel  -->    tenant lifecycle transitions
//   list / shutdown      -->    inventory / graceful stop
//   metrics {id?}        -->    Prometheus text exposition (one or all)
//
// Execution model: every tenant campaign runs as a single-worker
// core::Session (jobs is result-neutral, so results stay bit-identical
// to any solo run). A runner thread repeatedly gathers the runnable
// tenants and executes one *slice* per tenant per round over one shared
// util::ThreadPool — per-tenant fair scheduling with a deterministic
// quantum. A slice is `request_pause_at(merged + slice) + run()`: the
// session pauses at the slice boundary, its frontier sink persists
// state.bin, and the next round continues from live in-memory state
// (the durable file is only read back at recovery).
//
// Durability: every tenant's resume frontier is written atomically to
// <store>/<id>/state.bin at each slice boundary (plus any configured
// cadence). Observer events append to events.jsonl *before* the state
// write, so at recovery the event log is truncated to iteration <=
// state.merged — the exact deterministic prefix — and the resumed
// campaign re-emits everything after it. A daemon killed with SIGKILL
// mid-campaign therefore restarts into a state where every tenant
// resumes and finishes with results bit-identical to an uninterrupted
// run.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "serve/campaign_store.hpp"
#include "util/thread_pool.hpp"

namespace specure::serve {

struct ServerOptions {
  std::string socket_path;   ///< Unix-domain socket to listen on
  std::string store_root;    ///< campaign store directory
  std::size_t workers = 0;   ///< shared pool contexts (0 = hardware threads)
  /// Fair-scheduling quantum: iterations each runnable tenant merges per
  /// round. Purely a scheduling knob — never affects results.
  std::uint64_t slice_iterations = 32;
  /// Extra state-write cadence in seconds within a slice (0 = only at
  /// slice boundaries, which always persist).
  double state_interval = 0;
};

class Server {
 public:
  /// Opens (or creates) the store, recovers every non-terminal campaign
  /// found in it, and binds the socket. Throws StateError/ProtocolError
  /// on an unusable store or socket path.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serve until shutdown(): starts the runner thread and accepts
  /// connections (one handler thread per connection).
  void run();

  /// Graceful stop, callable from any thread (and from run() itself via
  /// the shutdown verb): running campaigns pause at their next merge
  /// boundary and persist state, the accept loop ends, every connection
  /// is closed. Campaigns resume when the next daemon opens the store.
  void shutdown();

  const CampaignStore& store() const { return store_; }
  const ServerOptions& options() const { return options_; }

 private:
  struct Tenant {
    std::string id;
    core::CampaignSpec spec;  ///< as persisted (jobs forced to 1)
    std::unique_ptr<core::Session> session;
    std::string status;       ///< queued|running|paused|done|failed|cancelled
    std::string detail;       ///< failure message for status "failed"
    std::atomic<std::uint64_t> merged{0};
    std::atomic<std::uint64_t> vulns{0};
    std::ofstream events;     ///< append stream (merge-strand only)

    // Live-rate telemetry, updated by the frontier sink (merge strand)
    // and read by the status/metrics verbs. rate_merged / rate_stamp are
    // sink-private scratch (single writer, never read elsewhere); the
    // published rate is the atomic, in milli-iterations/second so it
    // stays a plain integer.
    std::atomic<std::uint64_t> rate_milli{0};
    /// Merged iteration of the last durable state write — the "events
    /// ahead of durable state" lag gauge is merged - last_state_merged.
    std::atomic<std::uint64_t> last_state_merged{0};
    std::uint64_t rate_merged = 0;
    std::chrono::steady_clock::time_point rate_stamp{};
  };

  void recover();
  Tenant& create_tenant(const std::string& id, core::CampaignSpec spec);
  void attach_session(Tenant& tenant);
  void run_slice(Tenant& tenant);
  void finish_tenant(Tenant& tenant, const core::CampaignResult& result);
  void fail_tenant(Tenant& tenant, const std::string& why);
  void runner_main();
  void handle_connection(int fd);
  std::string handle_request(const std::string& frame, int fd, bool& streamed);
  void stream_events(int fd, const std::string& id, std::uint64_t from,
                     bool follow);
  void set_status(Tenant& tenant, const std::string& status);
  /// Prometheus text exposition: daemon-wide families plus every
  /// tenant's session registry under an `id` label (`id` empty), or one
  /// tenant's families only (`id` given, assumed to exist).
  std::string render_metrics(const std::string& id);

  ServerOptions options_;
  CampaignStore store_;
  util::ThreadPool pool_;
  int listen_fd_ = -1;

  /// Daemon-wide instruments (single shard: slice completion and state
  /// writes are serialized per tenant and cheap enough to share a lane).
  obs::Registry daemon_metrics_{1};
  obs::Counter slices_;            ///< "daemon/slices"
  obs::Counter state_writes_;      ///< "daemon/state_writes"
  obs::Histogram state_write_ns_;  ///< "hist/daemon/state_write_ns"

  std::mutex mu_;  ///< guards tenants_ map topology + status strings
  std::condition_variable runnable_cv_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;

  std::atomic<bool> shutdown_{false};
  std::thread runner_;
  std::vector<std::thread> connections_;
  std::mutex conn_mu_;
  std::vector<int> open_fds_;  ///< live connection fds (closed on shutdown)
};

}  // namespace specure::serve
