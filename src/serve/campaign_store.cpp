#include "serve/campaign_store.hpp"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "serve/state_io.hpp"
#include "util/fs.hpp"

namespace specure::serve {

CampaignStore::CampaignStore(std::string root) : root_(std::move(root)) {
  const std::string reason = util::ensure_dir_writable(root_);
  if (!reason.empty()) {
    throw StateError("campaign store root '" + root_ + "' " + reason);
  }
}

std::string CampaignStore::create(const core::CampaignSpec& spec) {
  // Next dense id: one past the highest existing one (ids are never
  // reused, so a cancelled campaign's directory still claims its slot).
  unsigned next = 1;
  for (const std::string& id : ids()) {
    const unsigned n =
        static_cast<unsigned>(std::strtoul(id.c_str() + 1, nullptr, 10));
    next = std::max(next, n + 1);
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "c%04u", next);
  const std::string id = buf;

  const std::string reason = util::ensure_dir_writable(dir(id));
  if (!reason.empty()) {
    throw StateError("campaign directory '" + dir(id) + "' " + reason);
  }
  spec.save(spec_path(id));
  write_status(id, "queued");
  return id;
}

std::vector<std::string> CampaignStore::ids() const {
  std::vector<std::string> out;
  DIR* d = ::opendir(root_.c_str());
  if (d == nullptr) return out;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    // A campaign dir is 'c' + digits, nothing else.
    if (name.size() < 2 || name[0] != 'c') continue;
    if (name.find_first_not_of("0123456789", 1) != std::string::npos) continue;
    out.push_back(name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

bool CampaignStore::exists(const std::string& id) const {
  std::ifstream spec(spec_path(id));
  return static_cast<bool>(spec);
}

void CampaignStore::write_status(const std::string& id,
                                 const std::string& status) const {
  const std::string tmp = status_path(id) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw StateError("cannot write status file '" + tmp + "'");
    }
    out << status << "\n";
  }
  if (std::rename(tmp.c_str(), status_path(id).c_str()) != 0) {
    std::remove(tmp.c_str());
    throw StateError("cannot rename status file into place for '" + id + "'");
  }
}

std::string CampaignStore::read_status(const std::string& id) const {
  std::ifstream in(status_path(id));
  std::string line;
  if (!in || !std::getline(in, line)) return "";
  return line;
}

}  // namespace specure::serve
