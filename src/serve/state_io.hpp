// Byte-level primitives for the durable campaign state format
// (serve/campaign_state): a little-endian writer over a growable buffer
// and a bounds-checked reader whose every access is labelled, so a
// truncated or gnawed-on state file fails with "truncated while reading
// <field> at byte N" instead of UB or a silent garbage decode.
//
// All integers are little-endian regardless of host order; doubles
// travel as their IEEE-754 bit pattern in a u64. Strings and byte blobs
// are u64-length-prefixed.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace specure::serve {

/// Thrown for every campaign-state failure: unreadable file, bad magic,
/// version skew, checksum mismatch, truncation, or a resume against a
/// spec that would change the result. Messages are actionable — they
/// name the file, the offending byte/field, and what to do about it.
class StateError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a over a byte range — the state file's integrity checksum (same
/// hash family the corpus uses for program identity).
inline std::uint64_t fnv1a(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }
  void bytes(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  double f64(const char* what) {
    const std::uint64_t bits = u64(what);
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str(const char* what) {
    const std::uint64_t len = u64(what);
    // A length that exceeds what is left means the length itself is
    // corrupt — report it rather than trying a multi-GiB allocation.
    if (len > remaining()) {
      throw StateError("campaign state is truncated or corrupted: " +
                       std::string(what) + " at byte " +
                       std::to_string(pos_) + " claims " +
                       std::to_string(len) + " bytes but only " +
                       std::to_string(remaining()) + " remain");
    }
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }
  /// A count prefix for a repeated group: like u64, but additionally
  /// sanity-checked against the bytes left (each element needs at least
  /// `min_element_bytes`), so a corrupt count fails here, not OOM.
  std::uint64_t count(const char* what, std::size_t min_element_bytes) {
    const std::uint64_t n = u64(what);
    if (min_element_bytes != 0 && n > remaining() / min_element_bytes) {
      throw StateError("campaign state is truncated or corrupted: " +
                       std::string(what) + " at byte " +
                       std::to_string(pos_ - 8) + " claims " +
                       std::to_string(n) + " elements but only " +
                       std::to_string(remaining()) + " bytes remain");
    }
    return n;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n, const char* what) {
    if (remaining() < n) {
      throw StateError(
          "campaign state is truncated: reading " + std::string(what) +
          " at byte " + std::to_string(pos_) + " needs " + std::to_string(n) +
          " bytes but only " + std::to_string(remaining()) +
          " remain — the file was cut off mid-write; resume from an intact "
          "state file or restart the campaign without --resume");
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace specure::serve
