// The daemon's on-disk campaign store: one directory per submitted
// campaign, holding everything needed to observe it and to recover it
// after a restart (or a kill -9):
//
//   <root>/
//     c0001/
//       spec.toml     submitted spec (written once at submit)
//       state.bin     durable resume frontier (campaign_state format)
//       events.jsonl  observer event log, one JSON object per line
//       status        lifecycle: queued|running|paused|done|failed|cancelled
//       report.txt    final text report (written when the campaign ends)
//       report.json   final JSON report
//       metrics.prom  latest metrics snapshot (stamped at state writes)
//
// Campaign ids are dense ("c0001", "c0002", ...) and never reused within
// a store. The store itself is dumb — pure path bookkeeping and atomic
// small-file writes; all scheduling lives in serve::Server.
#pragma once

#include <string>
#include <vector>

#include "core/campaign_spec.hpp"

namespace specure::serve {

class CampaignStore {
 public:
  /// Open (creating if needed) a store rooted at `root`. Throws
  /// StateError when the root cannot be created or written.
  explicit CampaignStore(std::string root);

  const std::string& root() const { return root_; }

  /// Allocate the next campaign id, create its directory and persist the
  /// spec. Returns the id.
  std::string create(const core::CampaignSpec& spec);

  /// All campaign ids present on disk, sorted (restart recovery scan).
  std::vector<std::string> ids() const;
  bool exists(const std::string& id) const;

  std::string dir(const std::string& id) const { return root_ + "/" + id; }
  std::string spec_path(const std::string& id) const {
    return dir(id) + "/spec.toml";
  }
  std::string state_path(const std::string& id) const {
    return dir(id) + "/state.bin";
  }
  std::string events_path(const std::string& id) const {
    return dir(id) + "/events.jsonl";
  }
  std::string status_path(const std::string& id) const {
    return dir(id) + "/status";
  }
  std::string report_text_path(const std::string& id) const {
    return dir(id) + "/report.txt";
  }
  std::string report_json_path(const std::string& id) const {
    return dir(id) + "/report.json";
  }
  /// Latest Prometheus-text metrics snapshot, stamped by the tenant's
  /// frontier sink at every durable-state boundary (atomic tmp+rename,
  /// like status). Absent until the campaign's first state write.
  std::string metrics_path(const std::string& id) const {
    return dir(id) + "/metrics.prom";
  }

  /// Write the status file atomically (tmp + rename). The first line is
  /// the lifecycle word; any further lines are a human-readable detail
  /// (e.g. the failure message).
  void write_status(const std::string& id, const std::string& status) const;
  /// First line of the status file, or "" when absent.
  std::string read_status(const std::string& id) const;

 private:
  std::string root_;
};

}  // namespace specure::serve
