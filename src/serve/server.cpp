#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/report.hpp"
#include "core/vuln_detect.hpp"
#include "obs/prometheus.hpp"
#include "serve/campaign_state.hpp"
#include "serve/protocol.hpp"
#include "util/strings.hpp"

namespace specure::serve {

namespace {

/// Event log lines are deterministic on purpose: no wall-clock fields, so
/// the log a resumed campaign appends to is byte-identical to the
/// uninterrupted daemon's (and diffable in CI). Iteration order is pinned
/// by the merge strand.
std::string coverage_event_line(const core::CoverageEvent& e) {
  return "{\"event\": \"new_coverage\", \"iteration\": " +
         std::to_string(e.iteration) +
         ", \"new_lp\": " + std::to_string(e.new_lp_channels) +
         ", \"new_points\": " + std::to_string(e.new_coverage_points) +
         ", \"covered_pdlc\": " + std::to_string(e.covered_pdlc) +
         ", \"coverage_points\": " + std::to_string(e.coverage_points) + "}";
}

std::string finding_event_line(const core::VulnEvent& e) {
  return "{\"event\": \"finding\", \"iteration\": " +
         std::to_string(e.iteration) + ", \"key\": \"" +
         escape_json(core::finding_key(e.report)) + "\", \"sink\": \"" +
         escape_json(e.report.sink_signal) + "\", \"cwe\": \"" +
         escape_json(e.report.cwe) + "\"}";
}

std::string progress_event_line(const core::ProgressEvent& e) {
  return "{\"event\": \"progress\", \"iteration\": " +
         std::to_string(e.iteration) +
         ", \"budget\": " + std::to_string(e.budget_iterations) +
         ", \"covered_pdlc\": " + std::to_string(e.covered_pdlc) +
         ", \"coverage_points\": " + std::to_string(e.coverage_points) +
         ", \"vulns\": " + std::to_string(e.vulns) + "}";
}

bool is_terminal(const std::string& status) {
  return status == "done" || status == "failed" || status == "cancelled";
}

std::string fmt_rate(std::uint64_t milli) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(milli) / 1e3);
  return buf;
}

/// All complete lines of a file (a trailing unterminated fragment — a
/// write torn by SIGKILL — is ignored; it can only be an event past the
/// last durable state write, which the resumed campaign re-emits).
std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path, std::ios::binary);
  if (!in) return lines;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::size_t start = 0;
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') {
      lines.push_back(content.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      store_(options_.store_root),
      pool_(options_.workers != 0 ? options_.workers
                                  : std::thread::hardware_concurrency()) {
  // A client vanishing mid-stream must surface as a write error on that
  // connection, not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  if (options_.slice_iterations == 0) options_.slice_iterations = 32;

  slices_ = daemon_metrics_.counter("daemon/slices");
  state_writes_ = daemon_metrics_.counter("daemon/state_writes");
  state_write_ns_ = daemon_metrics_.histogram("hist/daemon/state_write_ns");

  recover();

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw ProtocolError(std::string("cannot create listen socket: ") +
                        std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ProtocolError("socket path too long: '" + options_.socket_path +
                        "'");
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // A stale socket file from a killed daemon would make bind fail; the
  // store directory is the real exclusion mechanism, so replace it.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ProtocolError("cannot bind '" + options_.socket_path +
                        "': " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ProtocolError("cannot listen on '" + options_.socket_path +
                        "': " + std::strerror(errno));
  }
}

Server::~Server() {
  shutdown();
  if (runner_.joinable()) runner_.join();
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(options_.socket_path.c_str());
}

void Server::set_status(Tenant& tenant, const std::string& status) {
  tenant.status = status;
  std::string file = status;
  if (!tenant.detail.empty()) file += "\n" + tenant.detail;
  store_.write_status(tenant.id, file);
}

Server::Tenant& Server::create_tenant(const std::string& id,
                                      core::CampaignSpec spec) {
  auto tenant = std::make_unique<Tenant>();
  tenant->id = id;
  tenant->spec = std::move(spec);
  tenant->events.open(store_.events_path(id),
                      std::ios::app | std::ios::binary);
  Tenant& ref = *tenant;
  {
    std::lock_guard<std::mutex> lk(mu_);
    tenants_[id] = std::move(tenant);
  }
  return ref;
}

void Server::attach_session(Tenant& tenant) {
  tenant.session = std::make_unique<core::Session>(tenant.spec);
  core::Session& session = *tenant.session;
  Tenant* t = &tenant;

  // Observer events append to the log *before* any state write at the
  // same boundary (merge_one fires observers; frontier sinks fire in
  // post_merge, strictly after) — the recovery truncation contract.
  session.on_new_coverage([t](const core::CoverageEvent& e) {
    t->events << coverage_event_line(e) << "\n";
    t->events.flush();
  });
  session.on_vuln([t](const core::VulnEvent& e) {
    t->events << finding_event_line(e) << "\n";
    t->events.flush();
  });
  session.on_progress([t](const core::ProgressEvent& e) {
    t->events << progress_event_line(e) << "\n";
    t->events.flush();
  });

  // Durable state: every pause/completion boundary persists (pauses fire
  // all sinks); state_interval adds an intra-slice wall-clock cadence.
  const double interval =
      options_.state_interval > 0 ? options_.state_interval : 1e18;
  const std::string state_path = store_.state_path(tenant.id);
  const std::string metrics_path = store_.metrics_path(tenant.id);
  session.on_frontier(
      [this, t, state_path, metrics_path](const core::CampaignFrontier& f) {
        const auto w0 = std::chrono::steady_clock::now();
        save_state_file(state_path, t->spec, f);
        const auto w1 = std::chrono::steady_clock::now();
        state_writes_.add(0);
        state_write_ns_.record(
            0, static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(w1 -
                                                                        w0)
                       .count()));

        // Live iteration rate over the window since the previous state
        // write (sink-private scratch; single writer — this strand).
        if (t->rate_stamp.time_since_epoch().count() != 0 &&
            f.merged > t->rate_merged) {
          const double dt =
              std::chrono::duration<double>(w0 - t->rate_stamp).count();
          if (dt > 0) {
            t->rate_milli.store(
                static_cast<std::uint64_t>(
                    static_cast<double>(f.merged - t->rate_merged) * 1e3 /
                    dt),
                std::memory_order_relaxed);
          }
        }
        t->rate_stamp = w0;
        t->rate_merged = f.merged;

        t->merged.store(f.merged, std::memory_order_relaxed);
        t->vulns.store(f.result.vulns.size(), std::memory_order_relaxed);
        t->last_state_merged.store(f.merged, std::memory_order_relaxed);

        // Stamp the tenant's latest registry snapshot next to its state
        // (atomic tmp+rename like status): scrapeable off disk even when
        // the daemon is gone.
        if (t->session != nullptr) {
          std::string prom;
          obs::render_prometheus(t->session->metrics_snapshot(),
                                 "id=\"" + escape_json(t->id) + "\"", prom);
          const std::string tmp = metrics_path + ".tmp";
          std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
          out << prom;
          out.close();
          std::rename(tmp.c_str(), metrics_path.c_str());
        }
      },
      interval);
}

void Server::recover() {
  for (const std::string& id : store_.ids()) {
    const std::string status = store_.read_status(id);
    if (is_terminal(status)) continue;  // finished before the restart
    try {
      core::CampaignSpec disk_spec =
          core::CampaignSpec::load(store_.spec_path(id));

      bool have_state = false;
      CampaignState state;
      {
        std::ifstream probe(store_.state_path(id), std::ios::binary);
        have_state = static_cast<bool>(probe);
      }
      if (have_state) {
        state = load_state_file(store_.state_path(id));
        // The daemon wrote both files, so this only ever adopts
        // wall-clock fields — but it still guards against a hand-edited
        // spec.toml silently changing the campaign.
        disk_spec = resume_spec(state, disk_spec);
      }

      // Truncate the event log to the durable prefix (iteration <=
      // state.merged): everything after the last state write is exactly
      // what the resumed campaign deterministically re-emits.
      const std::uint64_t merged = have_state ? state.frontier.merged : 0;
      std::vector<std::string> keep;
      for (const std::string& line : read_lines(store_.events_path(id))) {
        std::uint64_t iteration = 0;
        try {
          const Json parsed = parse_json(line);
          const Json* field = parsed.find("iteration");
          if (field == nullptr || field->kind != Json::Kind::kNumber) break;
          iteration = static_cast<std::uint64_t>(field->number);
        } catch (const ProtocolError&) {
          break;  // torn line: drop it and everything after
        }
        if (iteration > merged) break;
        keep.push_back(line);
      }
      {
        const std::string tmp = store_.events_path(id) + ".tmp";
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        for (const std::string& line : keep) out << line << "\n";
        out.close();
        std::rename(tmp.c_str(), store_.events_path(id).c_str());
      }

      Tenant& tenant = create_tenant(id, std::move(disk_spec));
      tenant.merged.store(merged, std::memory_order_relaxed);
      if (have_state) {
        tenant.vulns.store(state.frontier.result.vulns.size(),
                           std::memory_order_relaxed);
      }
      const bool completed = have_state && state.frontier.completed;
      attach_session(tenant);
      if (have_state) tenant.session->resume_from(std::move(state.frontier));
      if (completed) {
        // Crashed after the final state write but (possibly) before the
        // reports: run() hands back the stored result without re-running.
        finish_tenant(tenant, tenant.session->run());
      } else {
        set_status(tenant, status == "paused" ? "paused" : "running");
      }
    } catch (const std::exception& e) {
      // An unrecoverable campaign (corrupt state, unloadable spec) is
      // marked failed with the reason; the daemon still serves the rest.
      std::lock_guard<std::mutex> lk(mu_);
      auto it = tenants_.find(id);
      if (it != tenants_.end()) {
        it->second->detail = e.what();
        set_status(*it->second, "failed");
      } else {
        store_.write_status(id, std::string("failed\n") + e.what());
      }
    }
  }
}

void Server::run_slice(Tenant& tenant) {
  core::Session& session = *tenant.session;
  session.request_pause_at(tenant.merged.load(std::memory_order_relaxed) +
                           options_.slice_iterations);
  try {
    const core::CampaignResult result = session.run();
    slices_.add(0);
    tenant.merged.store(result.history.size(), std::memory_order_relaxed);
    tenant.vulns.store(result.vulns.size(), std::memory_order_relaxed);
    if (!session.paused()) {
      finish_tenant(tenant, result);
    }
    // Paused mid-campaign: the frontier sink already persisted state.bin
    // at the boundary; the tenant keeps its status and waits for the
    // next round (or stays paused/cancelled if a verb changed it).
  } catch (const std::exception& e) {
    fail_tenant(tenant, e.what());
  }
}

void Server::finish_tenant(Tenant& tenant,
                           const core::CampaignResult& result) {
  {
    std::ofstream text(store_.report_text_path(tenant.id), std::ios::trunc);
    core::write_text_report(text, result, &tenant.spec);
  }
  {
    std::ofstream json(store_.report_json_path(tenant.id), std::ios::trunc);
    core::write_json_report(json, result, 64, &tenant.spec);
  }
  std::lock_guard<std::mutex> lk(mu_);
  set_status(tenant, "done");
}

void Server::fail_tenant(Tenant& tenant, const std::string& why) {
  std::lock_guard<std::mutex> lk(mu_);
  tenant.detail = why;
  set_status(tenant, "failed");
}

void Server::runner_main() {
  std::vector<Tenant*> runnable;
  while (!shutdown_.load(std::memory_order_relaxed)) {
    runnable.clear();
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (auto& [id, tenant] : tenants_) {
        if (tenant->status == "running") runnable.push_back(tenant.get());
      }
    }
    if (runnable.empty()) {
      std::unique_lock<std::mutex> lk(mu_);
      runnable_cv_.wait_for(lk, std::chrono::milliseconds(50));
      continue;
    }
    // One slice per runnable tenant per round — fair scheduling with a
    // deterministic per-tenant quantum, multiplexed over the shared pool.
    pool_.parallel_for(runnable.size(), [&](std::size_t i, std::size_t) {
      run_slice(*runnable[i]);
    });
  }
}

void Server::run() {
  runner_ = std::thread([this] { runner_main(); });
  while (!shutdown_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      open_fds_.push_back(fd);
    }
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
  if (runner_.joinable()) runner_.join();
  {
    // Unblock any handler still parked in read()/poll().
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
}

void Server::shutdown() {
  if (shutdown_.exchange(true)) return;
  // Running campaigns stop at their next merge boundary; the pause path
  // fires every frontier sink, so each tenant's state.bin is current
  // before the runner round ends.
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, tenant] : tenants_) {
    if (tenant->session) tenant->session->request_pause();
  }
  runnable_cv_.notify_all();
}

void Server::handle_connection(int fd) {
  std::string frame;
  try {
    while (!shutdown_.load(std::memory_order_relaxed)) {
      if (!read_frame(fd, frame)) break;  // clean EOF
      bool streamed = false;
      const std::string response = handle_request(frame, fd, streamed);
      if (!streamed) write_frame(fd, response);
    }
  } catch (const ProtocolError& e) {
    // A malformed frame (oversized prefix, cut mid-frame) poisons the
    // stream — answer once if the socket still works, then drop the
    // connection. The daemon itself stays up.
    try {
      write_frame(fd, std::string("{\"error\": \"") + escape_json(e.what()) +
                          "\"}");
    } catch (...) {
    }
  } catch (...) {
  }
  std::lock_guard<std::mutex> lk(conn_mu_);
  const auto it = std::find(open_fds_.begin(), open_fds_.end(), fd);
  if (it != open_fds_.end()) {
    ::close(fd);
    open_fds_.erase(it);
  }
}

std::string Server::handle_request(const std::string& frame, int fd,
                                   bool& streamed) {
  try {
    const Request req = parse_request(frame);

    if (req.verb == "submit") {
      core::CampaignSpec spec =
          core::CampaignSpec::from_toml_string(req.spec_toml);
      // A tenant campaign runs single-worker inside the shared pool;
      // jobs is result-neutral, so this changes scheduling only.
      spec.set("jobs", "1");
      spec.validate();
      const std::string id = store_.create(spec);
      Tenant& tenant = create_tenant(id, std::move(spec));
      attach_session(tenant);
      {
        std::lock_guard<std::mutex> lk(mu_);
        set_status(tenant, "running");
      }
      runnable_cv_.notify_all();
      return "{\"ok\": true, \"id\": \"" + escape_json(id) + "\"}";
    }

    if (req.verb == "list") {
      std::string out = "{\"ok\": true, \"campaigns\": [";
      std::lock_guard<std::mutex> lk(mu_);
      bool first = true;
      for (const auto& [id, tenant] : tenants_) {
        if (!first) out += ", ";
        first = false;
        out += "{\"id\": \"" + escape_json(id) + "\", \"status\": \"" +
               escape_json(tenant->status) + "\", \"iterations\": " +
               std::to_string(tenant->merged.load(std::memory_order_relaxed)) +
               ", \"vulns\": " +
               std::to_string(tenant->vulns.load(std::memory_order_relaxed)) +
               "}";
      }
      return out + "]}";
    }

    if (req.verb == "metrics" && req.id.empty()) {
      // Daemon-wide scrape: daemon families plus every tenant under its
      // id label, one exposition.
      return "{\"ok\": true, \"metrics\": \"" +
             escape_json(render_metrics("")) + "\"}";
    }

    if (req.verb == "shutdown") {
      write_frame(fd, "{\"ok\": true, \"detail\": \"shutting down; campaigns "
                      "resume on the next start\"}");
      streamed = true;  // the response is already on the wire
      shutdown();
      return "";
    }

    // Every remaining verb addresses one campaign.
    Tenant* tenant = nullptr;
    {
      std::lock_guard<std::mutex> lk(mu_);
      const auto it = tenants_.find(req.id);
      if (it != tenants_.end()) tenant = it->second.get();
    }
    if (tenant == nullptr) {
      std::vector<std::string> known;
      {
        std::lock_guard<std::mutex> lk(mu_);
        for (const auto& [id, t] : tenants_) known.push_back(id);
      }
      std::string msg = "unknown campaign id '" + req.id + "'";
      const std::string hint = util::closest_match(req.id, known);
      if (!hint.empty()) msg += " — did you mean '" + hint + "'?";
      throw ProtocolError(msg);
    }

    if (req.verb == "metrics") {
      return "{\"ok\": true, \"metrics\": \"" +
             escape_json(render_metrics(req.id)) + "\"}";
    }

    if (req.verb == "status") {
      std::lock_guard<std::mutex> lk(mu_);
      std::string out = "{\"ok\": true, \"id\": \"" + escape_json(req.id) +
                        "\", \"status\": \"" + escape_json(tenant->status) +
                        "\", \"iterations\": " +
                        std::to_string(
                            tenant->merged.load(std::memory_order_relaxed)) +
                        ", \"vulns\": " +
                        std::to_string(
                            tenant->vulns.load(std::memory_order_relaxed)) +
                        ", \"budget\": " +
                        std::to_string(tenant->spec.budget.iterations) +
                        ", \"iters_per_sec\": " +
                        fmt_rate(tenant->rate_milli.load(
                            std::memory_order_relaxed));
      if (!tenant->detail.empty()) {
        out += ", \"detail\": \"" + escape_json(tenant->detail) + "\"";
      }
      return out + "}";
    }

    if (req.verb == "events") {
      streamed = true;
      stream_events(fd, req.id, req.from, req.follow);
      return "";
    }

    if (req.verb == "pause") {
      std::lock_guard<std::mutex> lk(mu_);
      if (is_terminal(tenant->status)) {
        throw ProtocolError("campaign '" + req.id + "' already ended (" +
                            tenant->status + ")");
      }
      if (tenant->status == "running") {
        set_status(*tenant, "paused");
        if (tenant->session) tenant->session->request_pause();
      }
      return "{\"ok\": true, \"id\": \"" + escape_json(req.id) +
             "\", \"status\": \"paused\"}";
    }

    if (req.verb == "resume") {
      std::lock_guard<std::mutex> lk(mu_);
      if (is_terminal(tenant->status)) {
        throw ProtocolError("campaign '" + req.id + "' already ended (" +
                            tenant->status + ")");
      }
      if (tenant->status == "paused") set_status(*tenant, "running");
      runnable_cv_.notify_all();
      return "{\"ok\": true, \"id\": \"" + escape_json(req.id) +
             "\", \"status\": \"running\"}";
    }

    if (req.verb == "cancel") {
      std::lock_guard<std::mutex> lk(mu_);
      if (!is_terminal(tenant->status)) {
        set_status(*tenant, "cancelled");
        if (tenant->session) tenant->session->request_pause();
      }
      return "{\"ok\": true, \"id\": \"" + escape_json(req.id) +
             "\", \"status\": \"" + escape_json(tenant->status) + "\"}";
    }

    throw ProtocolError("verb '" + req.verb + "' is not implemented");
  } catch (const std::exception& e) {
    return std::string("{\"error\": \"") + escape_json(e.what()) + "\"}";
  }
}

std::string Server::render_metrics(const std::string& id) {
  obs::PrometheusRenderer renderer;
  struct Target {
    std::string id;
    Tenant* tenant;
  };
  std::vector<Target> targets;
  std::size_t active = 0;
  std::size_t total = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [tid, tenant] : tenants_) {
      ++total;
      if (tenant->status == "running") ++active;
      if (id.empty() || tid == id) targets.push_back({tid, tenant.get()});
    }
  }
  if (id.empty()) {
    renderer.add(daemon_metrics_.snapshot(), "");
    renderer.add_sample("daemon/tenants", "gauge",
                        static_cast<double>(total), "");
    renderer.add_sample("daemon/tenants_active", "gauge",
                        static_cast<double>(active), "");
  }
  for (const Target& target : targets) {
    const std::string labels = "id=\"" + escape_json(target.id) + "\"";
    Tenant* t = target.tenant;
    // The session registry snapshot is mutex+atomic internally, safe to
    // take while the runner is mid-slice in the same session.
    if (t->session != nullptr) {
      renderer.add(t->session->metrics_snapshot(), labels);
    }
    renderer.add_sample(
        "tenant/iters_per_sec", "gauge",
        static_cast<double>(t->rate_milli.load(std::memory_order_relaxed)) /
            1e3,
        labels);
    const std::uint64_t merged = t->merged.load(std::memory_order_relaxed);
    const std::uint64_t durable =
        t->last_state_merged.load(std::memory_order_relaxed);
    renderer.add_sample(
        "tenant/events_lag_iterations", "gauge",
        static_cast<double>(merged > durable ? merged - durable : 0),
        labels);
    renderer.add_sample("tenant/budget_iterations", "gauge",
                        static_cast<double>(t->spec.budget.iterations),
                        labels);
  }
  return renderer.render();
}

void Server::stream_events(int fd, const std::string& id, std::uint64_t from,
                           bool follow) {
  const std::string path = store_.events_path(id);
  std::size_t sent = static_cast<std::size_t>(from);
  for (;;) {
    const std::vector<std::string> lines = read_lines(path);
    for (; sent < lines.size(); ++sent) write_frame(fd, lines[sent]);

    std::string status;
    std::uint64_t merged = 0;
    std::uint64_t vulns = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      const auto it = tenants_.find(id);
      if (it != tenants_.end()) {
        status = it->second->status;
        merged = it->second->merged.load(std::memory_order_relaxed);
        vulns = it->second->vulns.load(std::memory_order_relaxed);
      }
    }
    const bool detach = shutdown_.load(std::memory_order_relaxed);
    if (!follow || is_terminal(status) || detach) {
      write_frame(fd, "{\"event\": \"end\", \"status\": \"" +
                          escape_json(detach && !is_terminal(status)
                                          ? "detached"
                                          : status) +
                          "\", \"iterations\": " + std::to_string(merged) +
                          ", \"vulns\": " + std::to_string(vulns) + "}");
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace specure::serve
