// The serve wire protocol: length-prefixed JSON frames over a Unix-domain
// stream socket.
//
// Frame layout: a 4-byte little-endian payload length, then exactly that
// many bytes of UTF-8 JSON (one request or response object per frame —
// JSON-lines semantics with an explicit length so the reader never has
// to scan for delimiters inside string escapes). Payloads are capped at
// kMaxFramePayload; an oversized prefix is rejected *before* any
// allocation, so a malformed client cannot balloon the daemon.
//
// Requests are flat JSON objects: {"verb": "...", ...}. The verb table
// below defines the accepted fields per verb; unknown verbs get a
// did-you-mean hint (util::closest_match, same policy as the CLI), and
// unknown fields are rejected with the line number where they appear —
// the same contract as the TOML spec loader.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace specure::serve {

/// Hard cap on one frame's payload (1 MiB — a full campaign spec TOML is
/// under 4 KiB; events and status responses are far smaller).
constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Thrown for every protocol-layer failure: malformed frame, JSON parse
/// error, unknown verb/field, missing required field. The daemon turns
/// these into error responses and keeps the connection's peer state
/// intact — a bad frame never takes the server down.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// ---- framing over a connected socket fd ---------------------------------

/// Read one frame. Returns false on clean EOF (peer closed between
/// frames); throws ProtocolError on an oversized length prefix or a
/// connection cut mid-frame.
bool read_frame(int fd, std::string& payload);

/// Write one frame (length prefix + payload). Throws ProtocolError if
/// the payload exceeds kMaxFramePayload or the write fails.
void write_frame(int fd, std::string_view payload);

// ---- minimal JSON (the protocol subset) ----------------------------------

/// A parsed JSON value. Objects remember the source line of every key so
/// field errors can point at the offending line.
struct Json {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kObject,
    kArray
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string text;
  // kObject, in source order; parallel arrays because a nested struct
  // holding a Json by value would be an incomplete type, while
  // std::vector of an incomplete element type is fine in C++17.
  std::vector<std::string> keys;
  std::vector<int> key_lines;   ///< source line of each key
  std::vector<Json> values;     ///< parallel to keys
  std::vector<Json> items;      ///< kArray

  const Json* find(std::string_view key) const {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == key) return &values[i];
    }
    return nullptr;
  }
};

/// Parse one JSON document (objects, arrays, strings with \-escapes,
/// numbers, true/false/null). Throws ProtocolError with "line N:"
/// context on malformed input.
Json parse_json(std::string_view text);

/// Minimal JSON string escaping for response building (mirrors
/// core::json_escape; duplicated here so the protocol layer does not
/// pull in the report renderer).
std::string escape_json(std::string_view text);

// ---- requests -------------------------------------------------------------

/// One client request, decoded and field-validated.
struct Request {
  std::string verb;
  std::string id;         ///< campaign id (every verb except submit/list/shutdown)
  std::string spec_toml;  ///< submit: the CampaignSpec TOML text
  std::uint64_t from = 0; ///< events: first event index to stream
  bool follow = true;     ///< events: keep streaming until done
};

/// The verbs the daemon accepts, in protocol order (exported for the
/// CLI's did-you-mean hints and the docs).
const std::vector<std::string>& protocol_verbs();

/// Decode and validate one request frame: parse the JSON, check the verb
/// (did-you-mean on unknown), check every field against the verb's
/// accepted set (line-numbered rejection, did-you-mean), check required
/// fields are present and correctly typed. Throws ProtocolError.
Request parse_request(std::string_view frame);

// ---- client convenience ---------------------------------------------------

/// A blocking Unix-domain socket client speaking the frame protocol
/// (used by the specure CLI subcommands, the tests and the bench).
class Client {
 public:
  /// Connect, or throw ProtocolError naming the socket path.
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request frame and read one response frame.
  Json request(const std::string& payload);
  /// Send one request frame without waiting for a response.
  void send(const std::string& payload);
  /// Read the next frame (for streaming responses). Returns false on
  /// clean EOF.
  bool next(Json& out);
  /// Read the next frame without parsing (the CLI's `events` relay just
  /// reprints the payload). Returns false on clean EOF.
  bool next_raw(std::string& payload);

 private:
  int fd_ = -1;
};

}  // namespace specure::serve
