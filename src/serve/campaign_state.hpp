// Durable campaign state — the on-disk resume frontier.
//
// A state file is the whole deterministic future of a paused campaign:
// the embedded spec, the fuzzer state (RNG, iteration cursor, corpus,
// pending seeds), the in-flight window jobs, the merged CampaignResult
// (history, deduplicated findings, first-detection/signature set, MST
// sample), both coverage maps, and the session counters. A campaign
// killed at any merge boundary and resumed from its last state file
// produces a final CampaignResult bit-identical to the uninterrupted
// run at fixed seed, for any --jobs and either executor.
//
// File layout (all little-endian):
//   8  bytes  magic  "SPCSTATE"
//   4  bytes  format version (kStateFormatVersion)
//   8  bytes  payload length
//   8  bytes  FNV-1a checksum of the payload
//   N  bytes  payload (spec TOML first, then the frontier)
//
// Writes are atomic (temp file + rename), so a crash mid-write leaves
// the previous state intact; a partial temp file never has the final
// name. Loads verify magic, version, length and checksum before any
// field decode, and every decode failure names the field and byte
// offset (see state_io.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/campaign_spec.hpp"
#include "core/session.hpp"

namespace specure::serve {

/// Bump on any payload layout change. Old files are refused with a
/// version-skew message, never misparsed.
constexpr std::uint32_t kStateFormatVersion = 1;

struct CampaignState {
  core::CampaignSpec spec;          ///< the spec the campaign ran under
  core::CampaignFrontier frontier;  ///< resume point (core/session.hpp)
};

/// Serialize spec + frontier to the state-file byte format (header
/// included).
std::string encode_state(const core::CampaignSpec& spec,
                         const core::CampaignFrontier& frontier);

/// Decode a state image. `origin` names the source (file path) in error
/// messages. Throws StateError on bad magic, version skew, truncation or
/// checksum mismatch; throws core::SpecError if the embedded spec fails
/// to parse (a corruption the checksum would normally catch first).
CampaignState decode_state(std::string_view bytes, const std::string& origin);

/// Write atomically: serialize to `path` + ".tmp", then rename over
/// `path`. Throws StateError on I/O failure.
void save_state_file(const std::string& path, const core::CampaignSpec& spec,
                     const core::CampaignFrontier& frontier);

/// Read + decode a state file. Throws StateError with the path in every
/// message.
CampaignState load_state_file(const std::string& path);

/// Build the spec a resumed campaign runs under: the stored spec with
/// the *result-neutral* fields (jobs, pipeline, checkpoint knobs,
/// intervals, output paths) adopted from `requested`. Any difference in
/// a result-affecting field (seed, budgets, core config, fuzzer options,
/// detectors, ...) throws StateError listing every mismatched key —
/// resuming under a spec that changes the result would silently break
/// the bit-identity contract.
core::CampaignSpec resume_spec(const CampaignState& state,
                               const core::CampaignSpec& requested);

/// The result-neutral spec keys resume_spec() lets differ (exported for
/// the tests and the docs).
const std::vector<std::string>& result_neutral_keys();

}  // namespace specure::serve
