#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/strings.hpp"

namespace specure::serve {

namespace {

// Full read/write over a stream socket (EINTR-safe).
bool read_exact(int fd, void* buf, std::size_t size, bool eof_ok) {
  auto* out = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, out + got, size - got);
    if (n == 0) {
      if (eof_ok && got == 0) return false;
      throw ProtocolError("connection closed mid-frame (" +
                          std::to_string(got) + " of " + std::to_string(size) +
                          " bytes read)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("socket read failed: ") +
                          std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_exact(int fd, const void* buf, std::size_t size) {
  const auto* in = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, in + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("socket write failed: ") +
                          std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

bool read_frame(int fd, std::string& payload) {
  unsigned char prefix[4];
  if (!read_exact(fd, prefix, sizeof(prefix), /*eof_ok=*/true)) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                            (static_cast<std::uint32_t>(prefix[1]) << 8) |
                            (static_cast<std::uint32_t>(prefix[2]) << 16) |
                            (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (len > kMaxFramePayload) {
    throw ProtocolError("frame length prefix " + std::to_string(len) +
                        " exceeds the " + std::to_string(kMaxFramePayload) +
                        "-byte payload cap — rejecting before allocation");
  }
  payload.resize(len);
  if (len != 0) read_exact(fd, payload.data(), len, /*eof_ok=*/false);
  return true;
}

void write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw ProtocolError("refusing to send a " +
                        std::to_string(payload.size()) +
                        "-byte frame (cap is " +
                        std::to_string(kMaxFramePayload) + ")");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff)};
  write_exact(fd, prefix, sizeof(prefix));
  if (!payload.empty()) write_exact(fd, payload.data(), payload.size());
}

// ---- JSON parser ----------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the JSON value");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ProtocolError("line " + std::to_string(line_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Json v;
        v.kind = Json::Kind::kString;
        v.text = parse_string();
        return v;
      }
      case 't':
        if (consume_word("true")) {
          Json v;
          v.kind = Json::Kind::kBool;
          v.boolean = true;
          return v;
        }
        fail("invalid literal (expected true)");
      case 'f':
        if (consume_word("false")) {
          Json v;
          v.kind = Json::Kind::kBool;
          v.boolean = false;
          return v;
        }
        fail("invalid literal (expected false)");
      case 'n':
        if (consume_word("null")) return Json{};
        fail("invalid literal (expected null)");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      const int key_line = line_;
      if (peek() != '"') fail("expected a quoted object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.keys.push_back(std::move(key));
      v.key_lines.push_back(key_line);
      v.values.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') fail("raw newline inside a string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // The protocol only ever escapes control characters; encode the
          // code point as UTF-8 (BMP only — no surrogate pairs needed).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          fail(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a JSON value");
    Json v;
    v.kind = Json::Kind::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed number '" +
           std::string(text_.substr(start, pos_ - start)) + "'");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Json parse_json(std::string_view text) { return JsonParser(text).parse(); }

std::string escape_json(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---- request validation -----------------------------------------------------

namespace {

struct VerbDef {
  const char* verb;
  std::vector<std::string> fields;    ///< accepted (beyond "verb")
  std::vector<std::string> required;  ///< must be present
};

const std::vector<VerbDef>& verb_table() {
  static const std::vector<VerbDef> table = {
      {"submit", {"spec"}, {"spec"}},
      {"status", {"id"}, {"id"}},
      {"metrics", {"id"}, {}},
      {"events", {"id", "from", "follow"}, {"id"}},
      {"pause", {"id"}, {"id"}},
      {"resume", {"id"}, {"id"}},
      {"cancel", {"id"}, {"id"}},
      {"list", {}, {}},
      {"shutdown", {}, {}},
  };
  return table;
}

}  // namespace

const std::vector<std::string>& protocol_verbs() {
  static const std::vector<std::string> verbs = [] {
    std::vector<std::string> v;
    for (const VerbDef& def : verb_table()) v.push_back(def.verb);
    return v;
  }();
  return verbs;
}

Request parse_request(std::string_view frame) {
  const Json doc = parse_json(frame);
  if (doc.kind != Json::Kind::kObject) {
    throw ProtocolError("a request must be a JSON object, e.g. "
                        R"({"verb": "status", "id": "c0001"})");
  }
  const Json* verb = doc.find("verb");
  if (verb == nullptr || verb->kind != Json::Kind::kString) {
    throw ProtocolError(
        R"(request is missing the "verb" field (a string); known verbs: )" +
        util::join(protocol_verbs(), ", "));
  }

  const VerbDef* def = nullptr;
  for (const VerbDef& d : verb_table()) {
    if (verb->text == d.verb) {
      def = &d;
      break;
    }
  }
  if (def == nullptr) {
    std::string msg = "unknown verb '" + verb->text + "'";
    const std::string hint = util::closest_match(verb->text, protocol_verbs());
    if (!hint.empty()) msg += " — did you mean '" + hint + "'?";
    msg += " (known verbs: " + util::join(protocol_verbs(), ", ") + ")";
    throw ProtocolError(msg);
  }

  // Reject unknown fields with the line they appear on (the TOML loader's
  // contract, carried over to the wire).
  for (std::size_t i = 0; i < doc.keys.size(); ++i) {
    const std::string& key = doc.keys[i];
    if (key == "verb") continue;
    bool known = false;
    for (const std::string& f : def->fields) {
      if (key == f) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string msg = "line " + std::to_string(doc.key_lines[i]) +
                        ": unknown field '" + key + "' for verb '" +
                        def->verb + "'";
      std::vector<std::string> candidates = def->fields;
      candidates.emplace_back("verb");
      const std::string hint = util::closest_match(key, candidates);
      if (!hint.empty()) msg += " — did you mean '" + hint + "'?";
      throw ProtocolError(msg);
    }
  }
  for (const std::string& f : def->required) {
    if (doc.find(f) == nullptr) {
      throw ProtocolError("verb '" + std::string(def->verb) +
                          "' requires the field '" + f + "'");
    }
  }

  Request req;
  req.verb = verb->text;
  if (const Json* id = doc.find("id")) {
    if (id->kind != Json::Kind::kString) {
      throw ProtocolError("field 'id' must be a string campaign id");
    }
    req.id = id->text;
  }
  if (const Json* spec = doc.find("spec")) {
    if (spec->kind != Json::Kind::kString) {
      throw ProtocolError(
          "field 'spec' must be a string holding the campaign spec TOML");
    }
    req.spec_toml = spec->text;
  }
  if (const Json* from = doc.find("from")) {
    if (from->kind != Json::Kind::kNumber || from->number < 0) {
      throw ProtocolError("field 'from' must be a non-negative event index");
    }
    req.from = static_cast<std::uint64_t>(from->number);
  }
  if (const Json* follow = doc.find("follow")) {
    if (follow->kind != Json::Kind::kBool) {
      throw ProtocolError("field 'follow' must be a boolean");
    }
    req.follow = follow->boolean;
  }
  return req;
}

// ---- client -----------------------------------------------------------------

Client::Client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw ProtocolError(std::string("cannot create socket: ") +
                        std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd_);
    fd_ = -1;
    throw ProtocolError("socket path too long: '" + socket_path + "'");
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw ProtocolError("cannot connect to daemon socket '" + socket_path +
                        "': " + std::strerror(errno) +
                        " — is `specure serve` running?");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Json Client::request(const std::string& payload) {
  write_frame(fd_, payload);
  std::string response;
  if (!read_frame(fd_, response)) {
    throw ProtocolError("daemon closed the connection without a response");
  }
  return parse_json(response);
}

void Client::send(const std::string& payload) { write_frame(fd_, payload); }

bool Client::next(Json& out) {
  std::string response;
  if (!read_frame(fd_, response)) return false;
  out = parse_json(response);
  return true;
}

bool Client::next_raw(std::string& payload) { return read_frame(fd_, payload); }

}  // namespace specure::serve
