#include "serve/campaign_state.hpp"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "serve/state_io.hpp"
#include "util/strings.hpp"

namespace specure::serve {

namespace {

constexpr char kMagic[8] = {'S', 'P', 'C', 'S', 'T', 'A', 'T', 'E'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;

// ---- field encoders (layout is the format: bump kStateFormatVersion on
// any change) --------------------------------------------------------------

void write_program(ByteWriter& w, const riscv::Program& p) {
  w.u64(p.code.size());
  for (std::uint32_t word : p.code) w.u32(word);
  w.str(std::string_view(reinterpret_cast<const char*>(p.data.data()),
                         p.data.size()));
}

riscv::Program read_program(ByteReader& r, const char* what) {
  riscv::Program p;
  const std::uint64_t code = r.count(what, 4);
  p.code.reserve(code);
  for (std::uint64_t i = 0; i < code; ++i) p.code.push_back(r.u32(what));
  const std::string data = r.str(what);
  p.data.assign(data.begin(), data.end());
  return p;
}

void write_window(ByteWriter& w, const core::SpecWindow& win) {
  w.u64(win.start_cycle);
  w.u64(win.end_cycle);
  w.u64(win.pc);
  w.u32(win.inst);
  w.u8(win.mispredicted ? 1 : 0);
  w.u64(win.opener_insts.size());
  for (std::uint32_t inst : win.opener_insts) w.u32(inst);
}

core::SpecWindow read_window(ByteReader& r, const char* what) {
  core::SpecWindow win;
  win.start_cycle = r.u64(what);
  win.end_cycle = r.u64(what);
  win.pc = r.u64(what);
  win.inst = r.u32(what);
  win.mispredicted = r.u8(what) != 0;
  const std::uint64_t openers = r.count(what, 4);
  win.opener_insts.reserve(openers);
  for (std::uint64_t i = 0; i < openers; ++i)
    win.opener_insts.push_back(r.u32(what));
  return win;
}

void write_vuln(ByteWriter& w, const core::VulnReport& v) {
  w.u8(static_cast<std::uint8_t>(v.kind));
  write_window(w, v.window);
  w.str(v.sink_signal);
  w.u64(v.before);
  w.u64(v.after);
  w.u64(v.root_causes.size());
  for (const core::RootCause& rc : v.root_causes) {
    w.str(rc.source_signal);
    w.u64(rc.path.size());
    for (const std::string& hop : rc.path) w.str(hop);
  }
  w.str(v.cwe);
  w.str(v.signature);
  write_program(w, v.program);
}

core::VulnReport read_vuln(ByteReader& r) {
  core::VulnReport v;
  v.kind = static_cast<core::VulnKind>(r.u8("finding kind"));
  v.window = read_window(r, "finding window");
  v.sink_signal = r.str("finding sink signal");
  v.before = r.u64("finding before value");
  v.after = r.u64("finding after value");
  const std::uint64_t causes = r.count("finding root causes", 16);
  v.root_causes.reserve(causes);
  for (std::uint64_t i = 0; i < causes; ++i) {
    core::RootCause rc;
    rc.source_signal = r.str("root cause source");
    const std::uint64_t hops = r.count("root cause path", 8);
    rc.path.reserve(hops);
    for (std::uint64_t h = 0; h < hops; ++h)
      rc.path.push_back(r.str("root cause path hop"));
    v.root_causes.push_back(std::move(rc));
  }
  v.cwe = r.str("finding cwe");
  v.signature = r.str("finding signature");
  v.program = read_program(r, "finding program");
  return v;
}

void write_fuzz_job(ByteWriter& w, const fuzz::FuzzJob& job) {
  w.u64(job.iteration);
  write_program(w, job.program);
  w.u64(job.rng_seed);
  w.u8(job.has_parent ? 1 : 0);
  write_program(w, job.parent);
  w.u64(job.parent_hash);
  w.u64(job.divergence);
}

fuzz::FuzzJob read_fuzz_job(ByteReader& r) {
  fuzz::FuzzJob job;
  job.iteration = r.u64("in-flight job iteration");
  job.program = read_program(r, "in-flight job program");
  job.rng_seed = r.u64("in-flight job rng seed");
  job.has_parent = r.u8("in-flight job has_parent") != 0;
  job.parent = read_program(r, "in-flight job parent");
  job.parent_hash = r.u64("in-flight job parent hash");
  job.divergence = r.u64("in-flight job divergence");
  return job;
}

void write_bitmask(ByteWriter& w, const std::vector<bool>& mask) {
  w.u64(mask.size());
  std::string packed((mask.size() + 7) / 8, '\0');
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) packed[i / 8] |= static_cast<char>(1u << (i % 8));
  }
  w.str(packed);
}

std::vector<bool> read_bitmask(ByteReader& r, const char* what) {
  const std::uint64_t bits = r.u64(what);
  const std::string packed = r.str(what);
  if (packed.size() != (bits + 7) / 8) {
    throw StateError("campaign state is corrupted: " + std::string(what) +
                     " claims " + std::to_string(bits) + " bits but carries " +
                     std::to_string(packed.size()) + " bytes");
  }
  std::vector<bool> mask(bits);
  for (std::uint64_t i = 0; i < bits; ++i) {
    mask[i] = (static_cast<unsigned char>(packed[i / 8]) >> (i % 8)) & 1u;
  }
  return mask;
}

void write_frontier(ByteWriter& w, const core::CampaignFrontier& f) {
  w.u64(f.merged);
  w.u8(f.completed ? 1 : 0);

  // Fuzzer state.
  for (std::uint64_t word : f.fuzzer.rng_state) w.u64(word);
  w.u64(f.fuzzer.iteration);
  w.u64(f.fuzzer.corpus.size());
  for (const fuzz::CorpusEntry& e : f.fuzzer.corpus) {
    write_program(w, e.program);
    w.str(e.origin);
    w.f64(e.energy);
    w.u64(e.hits);
    w.u64(e.added_iteration);
  }
  w.u64(f.fuzzer.pending_seeds.size());
  for (const fuzz::Seed& s : f.fuzzer.pending_seeds) {
    w.str(s.name);
    write_program(w, s.program);
  }

  // In-flight window jobs.
  w.u64(f.in_flight.size());
  for (const fuzz::FuzzJob& job : f.in_flight) write_fuzz_job(w, job);

  // Merged result.
  w.u64(f.result.history.size());
  for (const core::IterationRecord& rec : f.result.history) {
    w.u64(rec.iteration);
    w.u64(rec.covered_pdlc);
    w.u64(rec.coverage_points);
    w.u64(rec.vulns_found);
    w.u64(rec.cycles);
  }
  w.u64(f.result.vulns.size());
  for (const core::VulnReport& v : f.result.vulns) write_vuln(w, v);
  w.u64(f.result.first_detection.size());
  for (const auto& [key, iter] : f.result.first_detection) {
    w.str(key);
    w.u64(iter);
  }
  w.u64(f.result.mst_sample.size());
  for (const core::SpecWindow& win : f.result.mst_sample)
    write_window(w, win);
  w.u64(f.result.total_windows);
  w.u64(f.result.mispredicted_windows);
  w.u64(f.result.pdlc_total);
  w.f64(f.result.seconds);

  // Coverage maps.
  write_bitmask(w, f.lp_covered);
  w.u64(f.coverage_points.size());
  for (const std::string& point : f.coverage_points) w.str(point);
  w.u64(f.toggle_bits);

  // Session counters.
  w.u64(f.last_gain_iteration);
  w.u64(f.last_progress);
  w.u64(f.batch_index);
  w.u64(f.merges_since_event);

  // Deferred waveforms.
  w.u64(f.pending_vcd.size());
  for (const core::PendingWaveform& p : f.pending_vcd) {
    write_program(w, p.program);
    w.u64(p.iteration);
    w.u64(p.vuln_begin);
    w.u64(p.vuln_end);
  }
  w.f64(f.prior_seconds);
}

core::CampaignFrontier read_frontier(ByteReader& r) {
  core::CampaignFrontier f;
  f.merged = r.u64("merged iteration count");
  f.completed = r.u8("completed flag") != 0;

  for (std::uint64_t& word : f.fuzzer.rng_state) word = r.u64("rng state");
  f.fuzzer.iteration = r.u64("fuzzer iteration cursor");
  const std::uint64_t corpus = r.count("corpus entries", 8 + 8 + 8 + 8 + 8);
  f.fuzzer.corpus.reserve(corpus);
  for (std::uint64_t i = 0; i < corpus; ++i) {
    fuzz::CorpusEntry e;
    e.program = read_program(r, "corpus program");
    e.origin = r.str("corpus origin");
    e.energy = r.f64("corpus energy");
    e.hits = r.u64("corpus hits");
    e.added_iteration = r.u64("corpus added_iteration");
    f.fuzzer.corpus.push_back(std::move(e));
  }
  const std::uint64_t seeds = r.count("pending seeds", 16);
  f.fuzzer.pending_seeds.reserve(seeds);
  for (std::uint64_t i = 0; i < seeds; ++i) {
    fuzz::Seed s;
    s.name = r.str("seed name");
    s.program = read_program(r, "seed program");
    f.fuzzer.pending_seeds.push_back(std::move(s));
  }

  const std::uint64_t in_flight = r.count("in-flight jobs", 40);
  f.in_flight.reserve(in_flight);
  for (std::uint64_t i = 0; i < in_flight; ++i)
    f.in_flight.push_back(read_fuzz_job(r));

  const std::uint64_t history = r.count("iteration history", 40);
  f.result.history.reserve(history);
  for (std::uint64_t i = 0; i < history; ++i) {
    core::IterationRecord rec;
    rec.iteration = r.u64("history iteration");
    rec.covered_pdlc = r.u64("history covered_pdlc");
    rec.coverage_points = r.u64("history coverage_points");
    rec.vulns_found = r.u64("history vulns_found");
    rec.cycles = r.u64("history cycles");
    f.result.history.push_back(rec);
  }
  const std::uint64_t vulns = r.count("findings", 32);
  f.result.vulns.reserve(vulns);
  for (std::uint64_t i = 0; i < vulns; ++i)
    f.result.vulns.push_back(read_vuln(r));
  const std::uint64_t detections = r.count("first-detection entries", 16);
  for (std::uint64_t i = 0; i < detections; ++i) {
    std::string key = r.str("first-detection signature");
    const std::uint64_t iter = r.u64("first-detection iteration");
    f.result.first_detection.emplace(std::move(key), iter);
  }
  const std::uint64_t mst = r.count("mst sample rows", 29);
  f.result.mst_sample.reserve(mst);
  for (std::uint64_t i = 0; i < mst; ++i)
    f.result.mst_sample.push_back(read_window(r, "mst sample row"));
  f.result.total_windows = r.u64("total windows");
  f.result.mispredicted_windows = r.u64("mispredicted windows");
  f.result.pdlc_total = r.u64("pdlc total");
  f.result.seconds = r.f64("result seconds");

  f.lp_covered = read_bitmask(r, "lp coverage mask");
  const std::uint64_t points = r.count("coverage points", 8);
  f.coverage_points.reserve(points);
  for (std::uint64_t i = 0; i < points; ++i)
    f.coverage_points.push_back(r.str("coverage point"));
  f.toggle_bits = r.u64("toggle bits");

  f.last_gain_iteration = r.u64("last gain iteration");
  f.last_progress = r.u64("last progress iteration");
  f.batch_index = r.u64("batch index");
  f.merges_since_event = r.u64("merges since event");

  const std::uint64_t waveforms = r.count("pending waveforms", 40);
  f.pending_vcd.reserve(waveforms);
  for (std::uint64_t i = 0; i < waveforms; ++i) {
    core::PendingWaveform p;
    p.program = read_program(r, "pending waveform program");
    p.iteration = r.u64("pending waveform iteration");
    p.vuln_begin = r.u64("pending waveform vuln begin");
    p.vuln_end = r.u64("pending waveform vuln end");
    f.pending_vcd.push_back(std::move(p));
  }
  f.prior_seconds = r.f64("prior seconds");
  return f;
}

}  // namespace

std::string encode_state(const core::CampaignSpec& spec,
                         const core::CampaignFrontier& frontier) {
  ByteWriter payload;
  payload.str(spec.to_toml());
  write_frontier(payload, frontier);

  ByteWriter out;
  out.bytes(kMagic, sizeof(kMagic));
  out.u32(kStateFormatVersion);
  out.u64(payload.size());
  out.u64(fnv1a(payload.data().data(), payload.size()));
  out.bytes(payload.data().data(), payload.size());
  return out.take();
}

CampaignState decode_state(std::string_view bytes, const std::string& origin) {
  if (bytes.size() < kHeaderBytes) {
    throw StateError("campaign state '" + origin + "' is truncated: " +
                     std::to_string(bytes.size()) +
                     " bytes, the header alone needs " +
                     std::to_string(kHeaderBytes) +
                     " — the file was cut off mid-write; resume from an "
                     "intact state file or restart without --resume");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw StateError(
        "'" + origin +
        "' is not a specure campaign state file (bad magic); expected a "
        "file written by state_out or `specure serve`");
  }
  ByteReader header(bytes.substr(sizeof(kMagic)));
  const std::uint32_t version = header.u32("format version");
  if (version != kStateFormatVersion) {
    throw StateError(
        "campaign state '" + origin + "' is format version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kStateFormatVersion) +
        " — resume it with the specure build that wrote it, or restart the "
        "campaign without --resume");
  }
  const std::uint64_t payload_len = header.u64("payload length");
  const std::uint64_t stored_sum = header.u64("payload checksum");
  const std::string_view payload =
      bytes.substr(kHeaderBytes);
  if (payload.size() != payload_len) {
    throw StateError(
        "campaign state '" + origin + "' is truncated or padded: header "
        "declares a " +
        std::to_string(payload_len) + "-byte payload but " +
        std::to_string(payload.size()) +
        " bytes follow — the file was cut off mid-write; resume from an "
        "intact state file or restart without --resume");
  }
  const std::uint64_t computed = fnv1a(payload.data(), payload.size());
  if (computed != stored_sum) {
    throw StateError("campaign state '" + origin +
                     "' is corrupted: payload checksum mismatch (stored 0x" +
                     util::hex(stored_sum) + ", computed 0x" +
                     util::hex(computed) +
                     ") — the file was damaged after it was written; resume "
                     "from an intact state file or restart without --resume");
  }

  ByteReader r(payload);
  CampaignState state;
  const std::string spec_toml = r.str("embedded spec");
  state.spec = core::CampaignSpec::from_toml_string(spec_toml);
  state.frontier = read_frontier(r);
  if (!r.at_end()) {
    throw StateError("campaign state '" + origin + "' has " +
                     std::to_string(r.remaining()) +
                     " unexpected trailing payload bytes — the file does not "
                     "match this build's format; refuse rather than guess");
  }
  return state;
}

void save_state_file(const std::string& path, const core::CampaignSpec& spec,
                     const core::CampaignFrontier& frontier) {
  const std::string bytes = encode_state(spec, frontier);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw StateError("cannot write campaign state: failed to open '" + tmp +
                       "' for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw StateError("cannot write campaign state: short write to '" + tmp +
                       "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw StateError("cannot write campaign state: rename '" + tmp +
                     "' -> '" + path + "' failed");
  }
}

CampaignState load_state_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StateError("cannot open campaign state file '" + path +
                     "': no such file or not readable");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return decode_state(buf.str(), path);
}

const std::vector<std::string>& result_neutral_keys() {
  // Every key here is documented (and tested) to never change a
  // CampaignResult — only wall-clock behaviour and side-output paths.
  static const std::vector<std::string> keys = {
      "jobs",          "pipeline",        "tier",
      "checkpoint",    "checkpoint_cache_mb", "progress_interval",
      "vcd_out",       "triage",          "triage_out",
      "state_out",     "state_interval",  "metrics",
      "trace_out"};
  return keys;
}

core::CampaignSpec resume_spec(const CampaignState& state,
                               const core::CampaignSpec& requested) {
  const std::set<std::string> neutral(result_neutral_keys().begin(),
                                      result_neutral_keys().end());

  // Compare the result-affecting fields via the flat key table (the same
  // surface operator== uses), collecting every mismatch.
  const std::vector<core::SpecField> stored_fields = state.spec.fields();
  const std::vector<core::SpecField> requested_fields = requested.fields();
  std::string mismatches;
  for (std::size_t i = 0; i < stored_fields.size(); ++i) {
    const core::SpecField& s = stored_fields[i];
    const core::SpecField& q = requested_fields[i];
    if (neutral.count(s.key) != 0) continue;
    if (s.value != q.value) {
      mismatches += "\n  " + s.key + ": state file has " + s.value +
                    ", requested spec has " + q.value;
    }
  }
  if (!mismatches.empty()) {
    throw StateError(
        "cannot resume: the requested spec changes result-affecting fields, "
        "which would break the bit-identity contract —" +
        mismatches +
        "\nresume with a matching spec (wall-clock fields like jobs/"
        "pipeline/vcd_out may differ), or restart without --resume");
  }

  // Adopt the requested wall-clock fields onto the stored spec.
  core::CampaignSpec merged = state.spec;
  for (const core::SpecField& q : requested_fields) {
    if (neutral.count(q.key) != 0) merged.set(q.key, q.value);
  }
  return merged;
}

}  // namespace specure::serve
