#include "rtl/lexer.hpp"

#include <array>
#include <cctype>
#include <stdexcept>

namespace specure::rtl {

namespace {

constexpr std::array<std::string_view, 26> kKeywords = {
    "module", "endmodule", "input",  "output",    "inout",   "wire",
    "reg",    "assign",    "always", "posedge",   "negedge", "begin",
    "end",    "if",        "else",   "case",      "endcase", "default",
    "or",     "parameter", "localparam", "integer", "genvar", "generate",
    "endgenerate", "initial"};

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char take() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  int line() const { return line_; }
  int col() const { return col_; }

  [[noreturn]] void fail(const std::string& what) const {
    throw LexError("lex error at " + std::to_string(line_) + ":" +
                   std::to_string(col_) + ": " + what);
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

unsigned digit_value(char c, unsigned base, Cursor& cur) {
  unsigned v;
  if (c >= '0' && c <= '9') v = static_cast<unsigned>(c - '0');
  else if (c >= 'a' && c <= 'f') v = static_cast<unsigned>(c - 'a' + 10);
  else if (c >= 'A' && c <= 'F') v = static_cast<unsigned>(c - 'A' + 10);
  else { cur.fail(std::string("bad digit '") + c + "'"); }
  if (v >= base) cur.fail(std::string("digit '") + c + "' out of base range");
  return v;
}

// Multi-char puncts, longest first.
constexpr std::array<std::string_view, 13> kPuncts3 = {
    "<<<", ">>>", "===", "!==", "<=", ">=", "==", "!=",
    "&&",  "||",  "<<",  ">>",  "@*"};

}  // namespace

bool is_keyword(std::string_view word) {
  for (auto kw : kKeywords) {
    if (kw == word) return true;
  }
  return false;
}

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  Cursor cur(source);

  while (!cur.done()) {
    const char c = cur.peek();
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.take();
      continue;
    }
    // Comments and directives.
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.take();
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.take();
      cur.take();
      while (!(cur.peek() == '*' && cur.peek(1) == '/')) {
        if (cur.done()) cur.fail("unterminated block comment");
        cur.take();
      }
      cur.take();
      cur.take();
      continue;
    }
    if (c == '`') {  // compiler directive: skip to end of line
      while (!cur.done() && cur.peek() != '\n') cur.take();
      continue;
    }

    Token tok;
    tok.line = cur.line();
    tok.col = cur.col();

    // Identifier / keyword.
    if (ident_start(c)) {
      std::string word;
      while (!cur.done() && ident_char(cur.peek())) word.push_back(cur.take());
      tok.text = std::move(word);
      tok.kind = is_keyword(tok.text) ? TokKind::kKeyword : TokKind::kIdent;
      out.push_back(std::move(tok));
      continue;
    }
    // Escaped identifier: \foo.bar  (terminated by whitespace).
    if (c == '\\') {
      cur.take();
      std::string word;
      while (!cur.done() && !std::isspace(static_cast<unsigned char>(cur.peek()))) {
        word.push_back(cur.take());
      }
      tok.text = std::move(word);
      tok.kind = TokKind::kIdent;
      out.push_back(std::move(tok));
      continue;
    }
    // Number: plain decimal, or [size]'<base><digits>.
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
      std::uint64_t size = 0;
      bool have_size = false;
      while (std::isdigit(static_cast<unsigned char>(cur.peek())) ||
             cur.peek() == '_') {
        const char d = cur.take();
        if (d == '_') continue;
        size = size * 10 + static_cast<std::uint64_t>(d - '0');
        have_size = true;
      }
      if (cur.peek() == '\'') {
        cur.take();
        char basech = cur.take();
        if (basech == 's' || basech == 'S') basech = cur.take();  // signed
        unsigned base = 0;
        switch (std::tolower(static_cast<unsigned char>(basech))) {
          case 'b': base = 2; break;
          case 'o': base = 8; break;
          case 'd': base = 10; break;
          case 'h': base = 16; break;
          default: cur.fail("bad base specifier");
        }
        std::uint64_t value = 0;
        bool any = false;
        while (ident_char(cur.peek())) {
          const char d = cur.take();
          if (d == '_') continue;
          if (d == 'x' || d == 'X' || d == 'z' || d == 'Z' || d == '?') {
            // x/z bits carry no information-flow content; treat as 0.
            value = value * base;
            any = true;
            continue;
          }
          value = value * base + digit_value(d, base, cur);
          any = true;
        }
        if (!any) cur.fail("based literal with no digits");
        tok.kind = TokKind::kNumber;
        tok.value = value;
        tok.width = have_size ? static_cast<unsigned>(size) : 32;
        out.push_back(std::move(tok));
        continue;
      }
      tok.kind = TokKind::kNumber;
      tok.value = size;
      tok.width = 32;
      out.push_back(std::move(tok));
      continue;
    }
    // Punctuation: try 3- and 2-char spellings first.
    bool matched = false;
    for (auto p : kPuncts3) {
      bool ok = true;
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (cur.peek(i) != p[i]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (std::size_t i = 0; i < p.size(); ++i) cur.take();
        tok.kind = TokKind::kPunct;
        tok.text = std::string(p);
        out.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static constexpr std::string_view kSingles = "()[]{}:;,.#@?=+-*/%<>!&|^~";
    if (kSingles.find(c) != std::string_view::npos) {
      cur.take();
      tok.kind = TokKind::kPunct;
      tok.text = std::string(1, c);
      out.push_back(std::move(tok));
      continue;
    }
    cur.fail(std::string("unexpected character '") + c + "'");
  }

  Token eof;
  eof.kind = TokKind::kEof;
  eof.line = cur.line();
  eof.col = cur.col();
  out.push_back(std::move(eof));
  return out;
}

}  // namespace specure::rtl
