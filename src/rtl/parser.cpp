#include "rtl/parser.hpp"

#include <fstream>
#include <sstream>

#include "rtl/lexer.hpp"

namespace specure::rtl {

namespace {

/// Binary operator precedence (higher binds tighter). Mirrors Verilog.
int precedence(std::string_view op) {
  if (op == "*" || op == "/" || op == "%") return 10;
  if (op == "+" || op == "-") return 9;
  if (op == "<<" || op == ">>" || op == "<<<" || op == ">>>") return 8;
  if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
  if (op == "==" || op == "!=" || op == "===" || op == "!==") return 6;
  if (op == "&") return 5;
  if (op == "^") return 4;
  if (op == "|") return 3;
  if (op == "&&") return 2;
  if (op == "||") return 1;
  return -1;
}

class Parser {
 public:
  explicit Parser(std::string_view source) : toks_(lex(source)) {}

  Design parse_design() {
    Design design;
    while (!at_eof()) {
      expect_kw("module");
      Module mod = parse_module();
      const std::string name = mod.name;
      design.modules.emplace(name, std::move(mod));
    }
    return design;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool at_eof() const { return peek().kind == TokKind::kEof; }

  [[noreturn]] void fail(const std::string& what) const {
    const Token& t = peek();
    throw ParseError("parse error at " + std::to_string(t.line) + ":" +
                     std::to_string(t.col) + ": " + what + " (got '" +
                     (t.kind == TokKind::kEof ? "<eof>" : t.text) + "')");
  }

  void expect_punct(std::string_view p) {
    if (!peek().is_punct(p)) fail("expected '" + std::string(p) + "'");
    take();
  }
  void expect_kw(std::string_view kw) {
    if (!peek().is_kw(kw)) fail("expected '" + std::string(kw) + "'");
    take();
  }
  std::string expect_ident() {
    if (peek().kind != TokKind::kIdent) fail("expected identifier");
    return take().text;
  }
  bool accept_punct(std::string_view p) {
    if (peek().is_punct(p)) {
      take();
      return true;
    }
    return false;
  }
  bool accept_kw(std::string_view kw) {
    if (peek().is_kw(kw)) {
      take();
      return true;
    }
    return false;
  }

  // ----------------------------------------------------------- modules ----

  Module parse_module() {
    Module mod;
    mod.name = expect_ident();
    if (accept_punct("#")) parse_module_params(mod);
    if (accept_punct("(")) parse_port_header(mod);
    expect_punct(";");
    while (!peek().is_kw("endmodule")) {
      if (at_eof()) fail("unterminated module '" + mod.name + "'");
      parse_item(mod);
    }
    expect_kw("endmodule");
    return mod;
  }

  void parse_module_params(Module& mod) {
    // #(parameter A = 1, parameter B = 2)
    expect_punct("(");
    while (!accept_punct(")")) {
      accept_kw("parameter");
      ParamDecl p;
      p.name = expect_ident();
      expect_punct("=");
      p.value = parse_expr();
      mod.params.push_back(std::move(p));
      if (!peek().is_punct(")")) expect_punct(",");
    }
  }

  void parse_port_header(Module& mod) {
    // Either ANSI (input [3:0] a, output reg b) or a plain name list.
    if (accept_punct(")")) return;
    for (;;) {
      if (peek().is_kw("input") || peek().is_kw("output") ||
          peek().is_kw("inout")) {
        NetDecl d = parse_ansi_port();
        mod.port_order.push_back(d.name);
        mod.nets.push_back(std::move(d));
      } else {
        mod.port_order.push_back(expect_ident());
      }
      if (accept_punct(")")) break;
      expect_punct(",");
    }
  }

  NetDecl parse_ansi_port() {
    NetDecl d;
    if (accept_kw("input")) d.kind = NetKind::kInput;
    else if (accept_kw("output")) d.kind = NetKind::kOutput;
    else if (accept_kw("inout")) d.kind = NetKind::kInout;
    d.is_reg = accept_kw("reg");
    accept_kw("wire");
    parse_optional_range(d.msb, d.lsb);
    d.name = expect_ident();
    return d;
  }

  void parse_optional_range(ExprPtr& msb, ExprPtr& lsb) {
    if (accept_punct("[")) {
      msb = parse_expr();
      expect_punct(":");
      lsb = parse_expr();
      expect_punct("]");
    }
  }

  // ------------------------------------------------------------- items ----

  void parse_item(Module& mod) {
    if (peek().is_kw("input") || peek().is_kw("output") ||
        peek().is_kw("inout") || peek().is_kw("wire") || peek().is_kw("reg") ||
        peek().is_kw("integer")) {
      parse_net_decl(mod);
      return;
    }
    if (peek().is_kw("parameter") || peek().is_kw("localparam")) {
      take();
      // Optional range on parameter decls.
      ExprPtr msb, lsb;
      parse_optional_range(msb, lsb);
      for (;;) {
        ParamDecl p;
        p.name = expect_ident();
        expect_punct("=");
        p.value = parse_expr();
        mod.params.push_back(std::move(p));
        if (!accept_punct(",")) break;
      }
      expect_punct(";");
      return;
    }
    if (peek().is_kw("assign")) {
      take();
      for (;;) {
        ContinuousAssign a;
        a.lhs = parse_lvalue();
        expect_punct("=");
        a.rhs = parse_expr();
        mod.assigns.push_back(std::move(a));
        if (!accept_punct(",")) break;
      }
      expect_punct(";");
      return;
    }
    if (peek().is_kw("always")) {
      take();
      mod.always_blocks.push_back(parse_always());
      return;
    }
    if (peek().is_kw("initial")) {
      // Initial blocks carry no synthesizable information flow; parse and
      // drop the body.
      take();
      StmtPtr ignored = parse_stmt();
      (void)ignored;
      return;
    }
    if (peek().kind == TokKind::kIdent) {
      parse_instance(mod);
      return;
    }
    fail("unexpected token in module body");
  }

  void parse_net_decl(Module& mod) {
    NetDecl proto;
    if (accept_kw("input")) proto.kind = NetKind::kInput;
    else if (accept_kw("output")) proto.kind = NetKind::kOutput;
    else if (accept_kw("inout")) proto.kind = NetKind::kInout;
    else if (accept_kw("wire")) proto.kind = NetKind::kWire;
    else if (accept_kw("reg")) proto.kind = NetKind::kReg;
    else if (accept_kw("integer")) proto.kind = NetKind::kInteger;
    if (proto.kind == NetKind::kInput || proto.kind == NetKind::kOutput) {
      proto.is_reg = accept_kw("reg");
      accept_kw("wire");
    }
    parse_optional_range(proto.msb, proto.lsb);
    for (;;) {
      NetDecl d;
      d.kind = proto.kind;
      d.is_reg = proto.is_reg;
      if (proto.msb) {
        d.msb = clone(*proto.msb);
        d.lsb = clone(*proto.lsb);
      }
      d.name = expect_ident();
      // Memory dimension: reg [7:0] mem [0:255];
      parse_optional_range(d.array_msb, d.array_lsb);
      mod.nets.push_back(std::move(d));
      if (!accept_punct(",")) break;
    }
    expect_punct(";");
  }

  AlwaysBlock parse_always() {
    AlwaysBlock blk;
    expect_punct("@");
    if (accept_punct("*")) {
      blk.combinational = true;
    } else if (peek().is_punct("(")) {
      take();
      if (accept_punct("*")) {
        blk.combinational = true;
        expect_punct(")");
      } else {
        bool any_edge = false;
        for (;;) {
          SensItem item;
          if (accept_kw("posedge")) {
            item.edge = EdgeKind::kPosedge;
            any_edge = true;
          } else if (accept_kw("negedge")) {
            item.edge = EdgeKind::kNegedge;
            any_edge = true;
          }
          item.signal = expect_ident();
          blk.sens.push_back(std::move(item));
          if (accept_kw("or") || accept_punct(",")) continue;
          break;
        }
        expect_punct(")");
        blk.combinational = !any_edge;
      }
    } else {
      fail("expected sensitivity list");
    }
    blk.body = parse_stmt();
    return blk;
  }

  void parse_instance(Module& mod) {
    Instance inst;
    inst.module_name = expect_ident();
    if (accept_punct("#")) {
      expect_punct("(");
      // Named overrides .P(expr) or positional expr list (named only in our
      // subset for clarity; positional params map to declaration order at
      // elaboration).
      std::size_t positional = 0;
      while (!accept_punct(")")) {
        if (accept_punct(".")) {
          const std::string pname = expect_ident();
          expect_punct("(");
          inst.param_overrides[pname] = parse_expr();
          expect_punct(")");
        } else {
          inst.param_overrides["$pos" + std::to_string(positional++)] =
              parse_expr();
        }
        if (!peek().is_punct(")")) expect_punct(",");
      }
    }
    inst.instance_name = expect_ident();
    expect_punct("(");
    if (!accept_punct(")")) {
      for (;;) {
        PortConnection conn;
        if (accept_punct(".")) {
          conn.port = expect_ident();
          expect_punct("(");
          if (!peek().is_punct(")")) conn.expr = parse_expr();
          expect_punct(")");
        } else {
          conn.expr = parse_expr();
        }
        inst.connections.push_back(std::move(conn));
        if (accept_punct(")")) break;
        expect_punct(",");
      }
    }
    expect_punct(";");
    mod.instances.push_back(std::move(inst));
  }

  // ------------------------------------------------------------- stmts ----

  StmtPtr parse_stmt() {
    auto s = std::make_unique<Stmt>();
    if (accept_kw("begin")) {
      // Optional block label ": name".
      if (accept_punct(":")) expect_ident();
      s->kind = StmtKind::kBlock;
      while (!accept_kw("end")) {
        if (at_eof()) fail("unterminated begin/end block");
        s->stmts.push_back(parse_stmt());
      }
      return s;
    }
    if (accept_kw("if")) {
      s->kind = StmtKind::kIf;
      expect_punct("(");
      s->cond = parse_expr();
      expect_punct(")");
      s->then_body = parse_stmt();
      if (accept_kw("else")) s->else_body = parse_stmt();
      return s;
    }
    if (accept_kw("case")) {
      s->kind = StmtKind::kCase;
      expect_punct("(");
      s->case_expr = parse_expr();
      expect_punct(")");
      while (!accept_kw("endcase")) {
        if (at_eof()) fail("unterminated case");
        CaseArm arm;
        if (accept_kw("default")) {
          accept_punct(":");
        } else {
          for (;;) {
            arm.labels.push_back(parse_expr());
            if (!accept_punct(",")) break;
          }
          expect_punct(":");
        }
        arm.body = parse_stmt();
        s->arms.push_back(std::move(arm));
      }
      return s;
    }
    if (accept_punct(";")) {
      s->kind = StmtKind::kNull;
      return s;
    }
    // Assignment: lvalue (=|<=) expr ;  The lvalue must be parsed with the
    // restricted grammar: the full expression parser would treat the
    // nonblocking-assign token '<=' as the less-equal comparison.
    s->lhs = parse_lvalue();
    if (accept_punct("<=")) {
      s->kind = StmtKind::kNonBlockingAssign;
    } else if (accept_punct("=")) {
      s->kind = StmtKind::kBlockingAssign;
    } else {
      fail("expected assignment operator");
    }
    s->rhs = parse_expr();
    expect_punct(";");
    return s;
  }

  // ------------------------------------------------------------- exprs ----

  /// Lvalue grammar: identifier with optional selects, or a concatenation
  /// of lvalues.
  ExprPtr parse_lvalue() {
    if (peek().is_punct("{")) {
      take();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kConcat;
      for (;;) {
        e->kids.push_back(parse_lvalue());
        if (!accept_punct(",")) break;
      }
      expect_punct("}");
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_binary(0);
    if (accept_punct("?")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kTernary;
      e->kids.push_back(std::move(cond));
      e->kids.push_back(parse_ternary());
      expect_punct(":");
      e->kids.push_back(parse_ternary());
      return e;
    }
    return cond;
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      if (peek().kind != TokKind::kPunct) break;
      const int prec = precedence(peek().text);
      if (prec < 0 || prec < min_prec) break;
      const std::string op = take().text;
      ExprPtr rhs = parse_binary(prec + 1);
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->op = op;
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (peek().kind == TokKind::kPunct) {
      const std::string& t = peek().text;
      if (t == "~" || t == "!" || t == "-" || t == "+" || t == "&" ||
          t == "|" || t == "^") {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kUnary;
        e->op = take().text;
        e->kids.push_back(parse_unary());
        return e;
      }
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr base = parse_primary();
    while (peek().is_punct("[")) {
      take();
      ExprPtr first = parse_expr();
      if (accept_punct(":")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kRange;
        e->name = base->name;
        e->kids.push_back(std::move(first));
        e->kids.push_back(parse_expr());
        expect_punct("]");
        base = std::move(e);
      } else {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIndex;
        e->name = base->name;
        e->kids.push_back(std::move(first));
        expect_punct("]");
        base = std::move(e);
      }
    }
    return base;
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    if (t.kind == TokKind::kNumber) {
      take();
      return make_number(t.value, t.width);
    }
    if (t.kind == TokKind::kIdent) {
      take();
      return make_ident(t.text);
    }
    if (t.is_punct("(")) {
      take();
      ExprPtr e = parse_expr();
      expect_punct(")");
      return e;
    }
    if (t.is_punct("{")) {
      take();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kConcat;
      for (;;) {
        e->kids.push_back(parse_expr());
        if (!accept_punct(",")) break;
      }
      expect_punct("}");
      // Replication {N{expr}} parses as concat of (N, expr) via nesting; we
      // accept the common explicit-concat spelling only.
      return e;
    }
    fail("expected expression");
  }

  static ExprPtr clone(const Expr& e) {
    auto out = std::make_unique<Expr>();
    out->kind = e.kind;
    out->value = e.value;
    out->width = e.width;
    out->name = e.name;
    out->op = e.op;
    for (const auto& kid : e.kids) out->kids.push_back(clone(*kid));
    return out;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Design parse(std::string_view source) {
  return Parser(source).parse_design();
}

Design parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open RTL file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace specure::rtl
