// Elaboration: AST -> flattened signal/flow model.
//
// Instantiates the module hierarchy starting from a top module, resolving
// parameters, assigning every net a hierarchical name ("top.df1.q"), and
// deriving *information-flow* edges:
//   - continuous assigns: every RHS identifier flows to every LHS target;
//   - procedural assigns: RHS identifiers plus enclosing control-condition
//     identifiers (implicit flows, configurable) flow to the LHS;
//   - port connections: parent expression -> child input port, and child
//     output port -> parent target.
// Clock/reset signals in sensitivity lists do NOT create flow edges — this
// matches the paper's worked IFG example (Listing 1), where no
// (clk -> q) edge appears.
//
// The result feeds ift::Ifg (DESIGN.md E1/E2).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rtl/ast.hpp"

namespace specure::rtl {

struct ElabSignal {
  std::string name;        ///< hierarchical name, e.g. "top.df1.q"
  unsigned width = 1;
  bool is_register = false;  ///< assigned under an edge-triggered always
  bool is_top_input = false;
  bool is_top_output = false;
};

struct ElabOptions {
  /// Include implicit flows from if/case conditions to assigned targets.
  bool implicit_flows = true;
  /// Maximum hierarchy depth (guards against recursive instantiation).
  unsigned max_depth = 64;
};

struct ElabError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class ElaboratedDesign {
 public:
  using SignalId = std::uint32_t;

  /// Add a signal; returns its id. Duplicate names throw.
  SignalId add_signal(ElabSignal sig);

  /// Add a flow edge src -> dst (self-loops and duplicates dropped).
  void add_flow(SignalId src, SignalId dst);

  const std::vector<ElabSignal>& signals() const { return signals_; }
  const std::vector<std::pair<SignalId, SignalId>>& flows() const {
    return flows_;
  }

  /// Lookup by hierarchical name; returns nullptr if absent.
  const ElabSignal* find(const std::string& name) const;
  /// Id lookup; throws ElabError if absent.
  SignalId id_of(const std::string& name) const;
  bool has(const std::string& name) const;

  std::size_t signal_count() const { return signals_.size(); }
  std::size_t flow_count() const { return flows_.size(); }

 private:
  std::vector<ElabSignal> signals_;
  std::vector<std::pair<SignalId, SignalId>> flows_;
  std::unordered_map<std::string, SignalId> index_;
  std::unordered_map<std::uint64_t, bool> flow_seen_;
};

/// Elaborate `top` within `design`. Throws ElabError on missing modules,
/// unresolvable constants, or duplicate signals.
ElaboratedDesign elaborate(const Design& design, const std::string& top,
                           const ElabOptions& options = {});

}  // namespace specure::rtl
