#include "rtl/elaborate.hpp"

#include <algorithm>
#include <map>

namespace specure::rtl {

ElaboratedDesign::SignalId ElaboratedDesign::add_signal(ElabSignal sig) {
  auto [it, inserted] =
      index_.emplace(sig.name, static_cast<SignalId>(signals_.size()));
  if (!inserted) throw ElabError("duplicate signal: " + sig.name);
  signals_.push_back(std::move(sig));
  return it->second;
}

void ElaboratedDesign::add_flow(SignalId src, SignalId dst) {
  if (src == dst) return;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src) << 32) | dst;
  if (!flow_seen_.emplace(key, true).second) return;
  flows_.emplace_back(src, dst);
}

const ElabSignal* ElaboratedDesign::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &signals_[it->second];
}

ElaboratedDesign::SignalId ElaboratedDesign::id_of(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) throw ElabError("unknown signal: " + name);
  return it->second;
}

bool ElaboratedDesign::has(const std::string& name) const {
  return index_.count(name) != 0;
}

namespace {

using ParamEnv = std::map<std::string, std::uint64_t>;

std::uint64_t const_eval(const Expr& e, const ParamEnv& params) {
  switch (e.kind) {
    case ExprKind::kNumber:
      return e.value;
    case ExprKind::kIdent: {
      auto it = params.find(e.name);
      if (it == params.end()) {
        throw ElabError("non-constant identifier in constant context: " +
                        e.name);
      }
      return it->second;
    }
    case ExprKind::kUnary: {
      const std::uint64_t v = const_eval(*e.kids[0], params);
      if (e.op == "~") return ~v;
      if (e.op == "!") return v == 0;
      if (e.op == "-") return 0 - v;
      if (e.op == "+") return v;
      throw ElabError("unsupported unary op in constant: " + e.op);
    }
    case ExprKind::kBinary: {
      const std::uint64_t a = const_eval(*e.kids[0], params);
      const std::uint64_t b = const_eval(*e.kids[1], params);
      if (e.op == "+") return a + b;
      if (e.op == "-") return a - b;
      if (e.op == "*") return a * b;
      if (e.op == "/") return b ? a / b : 0;
      if (e.op == "%") return b ? a % b : 0;
      if (e.op == "<<") return a << (b & 63);
      if (e.op == ">>") return a >> (b & 63);
      if (e.op == "==") return a == b;
      if (e.op == "!=") return a != b;
      if (e.op == "<") return a < b;
      if (e.op == ">") return a > b;
      if (e.op == "<=") return a <= b;
      if (e.op == ">=") return a >= b;
      if (e.op == "&") return a & b;
      if (e.op == "|") return a | b;
      if (e.op == "^") return a ^ b;
      throw ElabError("unsupported binary op in constant: " + e.op);
    }
    case ExprKind::kTernary:
      return const_eval(*e.kids[0], params) ? const_eval(*e.kids[1], params)
                                            : const_eval(*e.kids[2], params);
    default:
      throw ElabError("unsupported expression in constant context");
  }
}

/// Collect assignment-target base names from an lvalue expression
/// (identifier, bit/part select, or concatenation of those).
void collect_lvalue_names(const Expr& e, std::vector<std::string>& out) {
  switch (e.kind) {
    case ExprKind::kIdent:
    case ExprKind::kIndex:
    case ExprKind::kRange:
      out.push_back(e.name);
      // An index expression reads its index signals too, but as an lvalue
      // the index contributes flow handled by the caller via rhs idents.
      break;
    case ExprKind::kConcat:
      for (const auto& kid : e.kids) collect_lvalue_names(*kid, out);
      break;
    default:
      throw ElabError("unsupported lvalue expression");
  }
}

/// Collect identifiers read when an lvalue is *written* (array index
/// expressions: mem[addr] <= x reads addr).
void collect_lvalue_reads(const Expr& e, std::vector<std::string>& out) {
  switch (e.kind) {
    case ExprKind::kIndex:
    case ExprKind::kRange:
      for (const auto& kid : e.kids) collect_idents(*kid, out);
      break;
    case ExprKind::kConcat:
      for (const auto& kid : e.kids) collect_lvalue_reads(*kid, out);
      break;
    default:
      break;
  }
}

class Elaborator {
 public:
  Elaborator(const Design& design, const ElabOptions& options)
      : design_(design), options_(options) {}

  ElaboratedDesign run(const std::string& top) {
    const Module* mod = design_.find(top);
    if (mod == nullptr) throw ElabError("top module not found: " + top);
    instantiate(*mod, top, ParamEnv{}, 0, /*is_top=*/true);
    // Resolve deferred flows now that all signals exist.
    for (const auto& [src, dst] : pending_) {
      if (out_.has(src) && out_.has(dst)) {
        out_.add_flow(out_.id_of(src), out_.id_of(dst));
      }
    }
    return std::move(out_);
  }

 private:
  void instantiate(const Module& mod, const std::string& prefix,
                   const ParamEnv& overrides, unsigned depth, bool is_top) {
    if (depth > options_.max_depth) {
      throw ElabError("instantiation too deep (recursive hierarchy?) at " +
                      prefix);
    }
    // Parameter environment: defaults evaluated in order, then overrides.
    ParamEnv params;
    for (const auto& p : mod.params) {
      auto it = overrides.find(p.name);
      params[p.name] =
          it != overrides.end() ? it->second : const_eval(*p.value, params);
    }
    for (const auto& [name, value] : overrides) params[name] = value;

    // Declare signals.
    for (const auto& net : mod.nets) {
      ElabSignal sig;
      sig.name = prefix + "." + net.name;
      if (net.msb) {
        const std::uint64_t msb = const_eval(*net.msb, params);
        const std::uint64_t lsb = const_eval(*net.lsb, params);
        sig.width = static_cast<unsigned>(msb >= lsb ? msb - lsb + 1
                                                     : lsb - msb + 1);
      }
      sig.is_top_input = is_top && net.kind == NetKind::kInput;
      sig.is_top_output = is_top && net.kind == NetKind::kOutput;
      if (out_.has(sig.name)) {
        // Port re-declared in the body ("output q; ... reg q;"): merge the
        // declarations instead of rejecting.
        ElabSignal* existing = const_cast<ElabSignal*>(out_.find(sig.name));
        existing->width = std::max(existing->width, sig.width);
        existing->is_top_input |= sig.is_top_input;
        existing->is_top_output |= sig.is_top_output;
        continue;
      }
      out_.add_signal(std::move(sig));
    }

    // Continuous assigns.
    for (const auto& a : mod.assigns) {
      std::vector<std::string> targets, sources;
      collect_lvalue_names(*a.lhs, targets);
      collect_lvalue_reads(*a.lhs, sources);
      collect_idents(*a.rhs, sources);
      emit_flows(prefix, params, sources, targets);
    }

    // Always blocks.
    for (const auto& blk : mod.always_blocks) {
      std::vector<std::string> control;
      walk_stmt(*blk.body, prefix, params, control, !blk.combinational);
    }

    // Instances.
    for (const auto& inst : mod.instances) {
      const Module* child = design_.find(inst.module_name);
      if (child == nullptr) {
        throw ElabError("unknown module '" + inst.module_name +
                        "' instantiated at " + prefix);
      }
      const std::string child_prefix = prefix + "." + inst.instance_name;
      // Parameter overrides (named and positional).
      ParamEnv child_overrides;
      std::size_t pos_index = 0;
      for (const auto& [name, expr] : inst.param_overrides) {
        std::string pname = name;
        if (name.rfind("$pos", 0) == 0) {
          const std::size_t idx = pos_index++;
          if (idx >= child->params.size()) {
            throw ElabError("too many positional parameters for " +
                            inst.module_name);
          }
          pname = child->params[idx].name;
        }
        child_overrides[pname] = const_eval(*expr, params);
      }
      instantiate(*child, child_prefix, child_overrides, depth + 1, false);

      // Port connections.
      connect_ports(*child, inst, prefix, child_prefix, params);
    }
  }

  void connect_ports(const Module& child, const Instance& inst,
                     const std::string& parent_prefix,
                     const std::string& child_prefix, const ParamEnv& params) {
    // Build port name -> direction map from the child's net decls.
    std::map<std::string, NetKind> port_dir;
    for (const auto& net : child.nets) {
      if (net.kind == NetKind::kInput || net.kind == NetKind::kOutput ||
          net.kind == NetKind::kInout) {
        port_dir[net.name] = net.kind;
      }
    }
    std::size_t positional = 0;
    for (const auto& conn : inst.connections) {
      if (!conn.expr) continue;  // explicitly unconnected
      std::string port = conn.port;
      if (port.empty()) {
        if (positional >= child.port_order.size()) {
          throw ElabError("too many positional connections for " +
                          inst.module_name);
        }
        port = child.port_order[positional++];
      }
      auto dir_it = port_dir.find(port);
      if (dir_it == port_dir.end()) {
        throw ElabError("unknown port '" + port + "' on module " +
                        child.name);
      }
      const std::string child_sig = child_prefix + "." + port;
      std::vector<std::string> parent_names;
      collect_idents(*conn.expr, parent_names);
      for (const auto& pname : parent_names) {
        if (params.count(pname) != 0) continue;  // constant parameter
        const std::string parent_sig = parent_prefix + "." + pname;
        switch (dir_it->second) {
          case NetKind::kInput:
            pending_.emplace_back(parent_sig, child_sig);
            break;
          case NetKind::kOutput:
            pending_.emplace_back(child_sig, parent_sig);
            break;
          default:  // inout: both directions
            pending_.emplace_back(parent_sig, child_sig);
            pending_.emplace_back(child_sig, parent_sig);
            break;
        }
      }
    }
  }

  void walk_stmt(const Stmt& s, const std::string& prefix,
                 const ParamEnv& params, std::vector<std::string>& control,
                 bool edge_triggered) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& sub : s.stmts) {
          walk_stmt(*sub, prefix, params, control, edge_triggered);
        }
        break;
      case StmtKind::kBlockingAssign:
      case StmtKind::kNonBlockingAssign: {
        std::vector<std::string> targets, sources;
        collect_lvalue_names(*s.lhs, targets);
        collect_lvalue_reads(*s.lhs, sources);
        collect_idents(*s.rhs, sources);
        if (options_.implicit_flows) {
          sources.insert(sources.end(), control.begin(), control.end());
        }
        emit_flows(prefix, params, sources, targets);
        if (edge_triggered) {
          for (const auto& t : targets) mark_register(prefix + "." + t);
        }
        break;
      }
      case StmtKind::kIf: {
        const std::size_t mark = control.size();
        collect_idents(*s.cond, control);
        walk_stmt(*s.then_body, prefix, params, control, edge_triggered);
        if (s.else_body) {
          walk_stmt(*s.else_body, prefix, params, control, edge_triggered);
        }
        control.resize(mark);
        break;
      }
      case StmtKind::kCase: {
        const std::size_t mark = control.size();
        collect_idents(*s.case_expr, control);
        for (const auto& arm : s.arms) {
          for (const auto& label : arm.labels) collect_idents(*label, control);
        }
        for (const auto& arm : s.arms) {
          walk_stmt(*arm.body, prefix, params, control, edge_triggered);
        }
        control.resize(mark);
        break;
      }
      case StmtKind::kNull:
        break;
    }
  }

  void emit_flows(const std::string& prefix, const ParamEnv& params,
                  const std::vector<std::string>& sources,
                  const std::vector<std::string>& targets) {
    for (const auto& t : targets) {
      const std::string dst = prefix + "." + t;
      for (const auto& src_name : sources) {
        if (params.count(src_name) != 0) continue;  // parameters: constants
        pending_.emplace_back(prefix + "." + src_name, dst);
      }
    }
  }

  void mark_register(const std::string& name) {
    register_names_.push_back(name);
    if (out_.has(name)) {
      // Safe: add_signal never reorders; const_cast confined here.
      const ElabSignal* sig = out_.find(name);
      const_cast<ElabSignal*>(sig)->is_register = true;
    }
  }

  const Design& design_;
  const ElabOptions& options_;
  ElaboratedDesign out_;
  std::vector<std::pair<std::string, std::string>> pending_;
  std::vector<std::string> register_names_;
};

}  // namespace

ElaboratedDesign elaborate(const Design& design, const std::string& top,
                           const ElabOptions& options) {
  return Elaborator(design, options).run(top);
}

}  // namespace specure::rtl
