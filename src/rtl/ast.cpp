#include "rtl/ast.hpp"

namespace specure::rtl {

ExprPtr make_number(std::uint64_t value, unsigned width) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumber;
  e->value = value;
  e->width = width;
  return e;
}

ExprPtr make_ident(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIdent;
  e->name = std::move(name);
  return e;
}

void collect_idents(const Expr& e, std::vector<std::string>& out) {
  switch (e.kind) {
    case ExprKind::kIdent:
    case ExprKind::kIndex:
    case ExprKind::kRange:
      out.push_back(e.name);
      break;
    default:
      break;
  }
  for (const auto& kid : e.kids) {
    if (kid) collect_idents(*kid, out);
  }
}

}  // namespace specure::rtl
