// Abstract syntax tree for the Verilog subset. Nodes are plain structs with
// a kind tag; ownership is by std::unique_ptr down the tree. The elaborator
// (elaborate.hpp) walks this AST to produce a flattened signal/flow model.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace specure::rtl {

// ---------------------------------------------------------------- Expr ----

enum class ExprKind : std::uint8_t {
  kNumber,    ///< literal; value/width
  kIdent,     ///< signal or parameter reference
  kIndex,     ///< base[index]  (bit-select or memory word select)
  kRange,     ///< base[msb:lsb] (part-select; constant bounds)
  kUnary,     ///< op operand      (~ ! - & | ^)
  kBinary,    ///< lhs op rhs
  kTernary,   ///< cond ? then : else
  kConcat,    ///< {a, b, c}
};

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  // kNumber
  std::uint64_t value = 0;
  unsigned width = 32;
  // kIdent / kIndex / kRange: referenced name
  std::string name;
  // kUnary / kBinary: operator spelling ("~", "+", "==", "&&", ...)
  std::string op;
  // Children: kIndex -> {index}, kRange -> {msb, lsb},
  // kUnary -> {operand}, kBinary -> {lhs, rhs},
  // kTernary -> {cond, then, else}, kConcat -> elements.
  std::vector<std::unique_ptr<Expr>> kids;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr make_number(std::uint64_t value, unsigned width = 32);
ExprPtr make_ident(std::string name);

/// Collect the names of all identifiers appearing in an expression
/// (the information-flow sources of the expression).
void collect_idents(const Expr& e, std::vector<std::string>& out);

// ---------------------------------------------------------------- Stmt ----

enum class StmtKind : std::uint8_t {
  kBlock,        ///< begin ... end
  kBlockingAssign,
  kNonBlockingAssign,
  kIf,
  kCase,
  kNull,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct CaseArm {
  std::vector<ExprPtr> labels;  ///< empty => default arm
  StmtPtr body;
};

struct Stmt {
  StmtKind kind = StmtKind::kNull;
  // Assignments.
  ExprPtr lhs;   ///< kIdent / kIndex / kRange / kConcat of those
  ExprPtr rhs;
  // If.
  ExprPtr cond;
  StmtPtr then_body;
  StmtPtr else_body;  ///< may be null
  // Case.
  ExprPtr case_expr;
  std::vector<CaseArm> arms;
  // Block.
  std::vector<StmtPtr> stmts;
};

// --------------------------------------------------------------- Items ----

enum class NetKind : std::uint8_t { kWire, kReg, kInput, kOutput, kInout, kInteger };

struct NetDecl {
  NetKind kind = NetKind::kWire;
  bool is_reg = false;        ///< e.g. "output reg"
  std::string name;
  ExprPtr msb, lsb;           ///< null for scalar; constant expressions
  ExprPtr array_msb, array_lsb;  ///< non-null for memories: reg [..] m [msb:lsb]
};

struct ContinuousAssign {
  ExprPtr lhs;
  ExprPtr rhs;
};

enum class EdgeKind : std::uint8_t { kNone, kPosedge, kNegedge };

struct SensItem {
  EdgeKind edge = EdgeKind::kNone;
  std::string signal;
};

struct AlwaysBlock {
  bool combinational = false;     ///< @* or no-edge sensitivity list
  std::vector<SensItem> sens;
  StmtPtr body;
};

struct PortConnection {
  std::string port;   ///< empty for positional
  ExprPtr expr;       ///< may be null (unconnected)
};

struct Instance {
  std::string module_name;
  std::string instance_name;
  std::vector<PortConnection> connections;
  std::map<std::string, ExprPtr> param_overrides;
};

struct ParamDecl {
  std::string name;
  ExprPtr value;
};

struct Module {
  std::string name;
  std::vector<std::string> port_order;  ///< declared port order (for positional connects)
  std::vector<NetDecl> nets;
  std::vector<ParamDecl> params;
  std::vector<ContinuousAssign> assigns;
  std::vector<AlwaysBlock> always_blocks;
  std::vector<Instance> instances;
};

struct Design {
  std::map<std::string, Module> modules;

  const Module* find(const std::string& name) const {
    auto it = modules.find(name);
    return it == modules.end() ? nullptr : &it->second;
  }
};

}  // namespace specure::rtl
