// Lexer for the synthesizable Verilog subset Specure's offline phase
// consumes (the Pyverilog substitute, see DESIGN.md §1). Produces a flat
// token stream with line/column positions for diagnostics.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace specure::rtl {

enum class TokKind : std::uint8_t {
  kEof,
  kIdent,     ///< identifier or escaped identifier
  kKeyword,   ///< one of the reserved words below
  kNumber,    ///< decimal or based literal (4'b1010, 8'hff, 42)
  kPunct,     ///< operator / punctuation, text in `text`
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;          ///< identifier text / keyword / punct spelling
  std::uint64_t value = 0;   ///< numeric value for kNumber
  unsigned width = 32;       ///< declared width for based literals
  int line = 0;
  int col = 0;

  bool is_kw(std::string_view kw) const {
    return kind == TokKind::kKeyword && text == kw;
  }
  bool is_punct(std::string_view p) const {
    return kind == TokKind::kPunct && text == p;
  }
};

/// Thrown on malformed input (bad literal, unterminated comment, stray
/// character). Carries a human-readable message with position info.
struct LexError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Tokenize a complete source text. Comments (// and /* */) and
/// compiler directives (`timescale etc., to end of line) are skipped.
std::vector<Token> lex(std::string_view source);

/// True if the word is reserved in our subset.
bool is_keyword(std::string_view word);

}  // namespace specure::rtl
