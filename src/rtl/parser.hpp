// Recursive-descent parser for the Verilog subset. Accepts both ANSI
// (module m(input a, output reg [3:0] b);) and classic (ports declared in
// the body) header styles, continuous assigns, always blocks with
// if/case/begin-end, module instances with named or positional
// connections, and parameter declarations/overrides.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "rtl/ast.hpp"

namespace specure::rtl {

struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parse complete Verilog source into a Design. Throws ParseError/LexError
/// on malformed input.
Design parse(std::string_view source);

/// Parse a file from disk. Throws std::runtime_error if unreadable.
Design parse_file(const std::string& path);

}  // namespace specure::rtl
