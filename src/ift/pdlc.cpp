#include "ift/pdlc.hpp"

#include <algorithm>
#include <deque>

namespace specure::ift {

const std::vector<std::size_t>& PdlcList::by_sink(NodeId sink) const {
  auto it = by_sink_.find(sink);
  return it == by_sink_.end() ? empty_ : it->second;
}

const std::vector<std::size_t>& PdlcList::by_source(NodeId source) const {
  auto it = by_source_.find(source);
  return it == by_source_.end() ? empty_ : it->second;
}

void PdlcList::add(Pdlc channel) {
  const std::size_t idx = channels_.size();
  by_sink_[channel.sink].push_back(idx);
  by_source_[channel.source].push_back(idx);
  channels_.push_back(std::move(channel));
}

namespace {

bool is_source_candidate(const Node& n, const PdlcOptions& options) {
  if (n.role != Role::kMicroarchitectural) return false;
  return !options.register_sources_only || n.is_register;
}

/// Reverse search: one BFS per architectural sink over predecessor edges.
/// Every microarchitectural register reached yields one channel whose
/// witness path is reconstructed from BFS parents. Linear per sink.
void extract_reverse(const Ifg& ifg, const PdlcOptions& options,
                     PdlcList& out) {
  const std::size_t n = ifg.node_count();
  std::vector<NodeId> parent(n);
  std::vector<char> visited(n);

  for (NodeId sink = 0; sink < n; ++sink) {
    if (ifg.node(sink).role != Role::kArchitectural) continue;
    std::fill(visited.begin(), visited.end(), 0);
    std::deque<NodeId> queue;
    queue.push_back(sink);
    visited[sink] = 1;
    parent[sink] = kInvalidNode;

    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      if (cur != sink && is_source_candidate(ifg.node(cur), options)) {
        // Reconstruct source -> sink witness path via parents.
        Pdlc ch;
        ch.source = cur;
        ch.sink = sink;
        for (NodeId p = cur; p != kInvalidNode; p = parent[p]) {
          ch.path.push_back(p);
        }
        out.add(std::move(ch));
        // A register is opaque state: flows upstream of it form *other*
        // channels ending at this register, not longer paths through it.
        continue;
      }
      // Do not traverse beyond other architectural sinks either.
      if (cur != sink && ifg.node(cur).role == Role::kArchitectural) continue;
      for (NodeId pred : ifg.predecessors(cur)) {
        if (visited[pred]) continue;
        visited[pred] = 1;
        parent[pred] = cur;
        queue.push_back(pred);
      }
    }
  }
}

/// Forward enumeration (ablation baseline, D2): DFS from every candidate
/// source until an architectural node is reached. Worst-case quadratic in
/// V; kept only for the bench comparison.
void extract_forward(const Ifg& ifg, const PdlcOptions& options,
                     PdlcList& out) {
  const std::size_t n = ifg.node_count();
  std::vector<char> visited(n);
  std::vector<NodeId> parent(n);

  for (NodeId src = 0; src < n; ++src) {
    if (!is_source_candidate(ifg.node(src), options)) continue;
    std::fill(visited.begin(), visited.end(), 0);
    std::vector<NodeId> stack{src};
    visited[src] = 1;
    parent[src] = kInvalidNode;
    while (!stack.empty()) {
      const NodeId cur = stack.back();
      stack.pop_back();
      if (cur != src && ifg.node(cur).role == Role::kArchitectural) {
        Pdlc ch;
        ch.source = src;
        ch.sink = cur;
        for (NodeId p = cur; p != kInvalidNode; p = parent[p]) {
          ch.path.push_back(p);
        }
        std::reverse(ch.path.begin(), ch.path.end());
        out.add(std::move(ch));
        if (out.size() >= options.max_channels) return;
        continue;
      }
      // Stop at intermediate registers: they are distinct channel sources.
      if (cur != src && ifg.node(cur).is_register) continue;
      for (NodeId succ : ifg.successors(cur)) {
        if (visited[succ]) continue;
        visited[succ] = 1;
        parent[succ] = cur;
        stack.push_back(succ);
      }
    }
  }
}

}  // namespace

PdlcList extract_pdlc(const Ifg& ifg, const PdlcOptions& options) {
  PdlcList out;
  if (options.reverse) {
    extract_reverse(ifg, options, out);
  } else {
    extract_forward(ifg, options, out);
  }
  return out;
}

}  // namespace specure::ift
