// Potential Direct Leakage Channel (PDLC) extraction — §3.1 Step 2.
//
// A PDLC is a chain of IFG edges from a microarchitectural register to an
// architectural register. The paper extracts all such channels with a
// reverse ("skewed-aware join") search: paths are searched backwards from
// the architectural sinks, which reduces the complexity from O(V^2) to
// O(V) per sink class. We implement both directions — the reverse search
// is the production path; the forward enumeration is kept as the ablation
// baseline for DESIGN.md D2 and bench_offline_phase.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "ift/ifg.hpp"

namespace specure::ift {

struct Pdlc {
  NodeId source = kInvalidNode;  ///< microarchitectural register
  NodeId sink = kInvalidNode;    ///< architectural register
  std::vector<NodeId> path;      ///< witness path, source..sink inclusive
};

struct PdlcOptions {
  /// Use the reverse search (paper's approach). Forward enumeration is the
  /// D2 ablation baseline.
  bool reverse = true;
  /// Sources must be registers (state elements); if false any
  /// microarchitectural signal may start a channel.
  bool register_sources_only = true;
  /// Safety valve for the forward enumeration (it can blow up on dense
  /// graphs). The reverse search never hits this.
  std::size_t max_channels = 1'000'000;
};

class PdlcList {
 public:
  const std::vector<Pdlc>& channels() const { return channels_; }
  std::size_t size() const { return channels_.size(); }
  bool empty() const { return channels_.empty(); }
  const Pdlc& operator[](std::size_t i) const { return channels_[i]; }

  /// Channels ending at a given architectural sink.
  const std::vector<std::size_t>& by_sink(NodeId sink) const;
  /// Channels starting at a given microarchitectural source.
  const std::vector<std::size_t>& by_source(NodeId source) const;

  void add(Pdlc channel);

 private:
  std::vector<Pdlc> channels_;
  std::unordered_map<NodeId, std::vector<std::size_t>> by_sink_;
  std::unordered_map<NodeId, std::vector<std::size_t>> by_source_;
  std::vector<std::size_t> empty_;
};

/// Extract the PDLC list from a role-labeled IFG.
PdlcList extract_pdlc(const Ifg& ifg, const PdlcOptions& options = {});

}  // namespace specure::ift
