#include "ift/arch_regs.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "riscv/isa.hpp"

namespace specure::ift {

namespace {

/// Last hierarchy component of a signal name. Both '.' (RTL hierarchy)
/// and '$' (flattened-netlist convention) act as separators.
std::string_view last_component(std::string_view name) {
  const auto pos = name.find_last_of(".$");
  return pos == std::string_view::npos ? name : name.substr(pos + 1);
}

/// Strip a trailing "_<digits>" bank index ("x_5", "gpr_17").
std::string_view strip_bank_index(std::string_view name) {
  auto pos = name.size();
  while (pos > 0 && std::isdigit(static_cast<unsigned char>(name[pos - 1]))) {
    --pos;
  }
  if (pos > 0 && pos < name.size() && name[pos - 1] == '_') {
    return name.substr(0, pos - 1);
  }
  return name;
}

}  // namespace

ArchRegDb ArchRegDb::riscv() {
  ArchRegDb db;
  // Unprivileged spec: integer register file x0-x31.
  for (int i = 0; i < 32; ++i) {
    db.add({"x" + std::to_string(i), "unprivileged-v20191213", false});
  }
  // Unprivileged spec: FP register file f0-f31.
  for (int i = 0; i < 32; ++i) {
    db.add({"f" + std::to_string(i), "unprivileged-v20191213", false});
  }
  // The program counter is programmer-visible.
  db.add({"pc", "unprivileged-v20191213", false});
  // Privileged spec: every CSR MiniBOOM implements (by its CSR name). The
  // four Specure emulation CSRs are architecturally visible by construction.
  for (std::uint16_t addr : riscv::csr::kImplemented) {
    db.add({std::string(riscv::csr::name(addr)), "privileged-v20211203",
            false});
  }
  // Memory-mapped machine-level registers (CLINT layout).
  db.add({"mtime", "privileged-v20211203", true});
  db.add({"mtimecmp", "privileged-v20211203", true});
  db.add({"msip", "privileged-v20211203", true});
  return db;
}

void ArchRegDb::add(ArchRegEntry entry) { entries_.push_back(std::move(entry)); }

bool ArchRegDb::is_architectural(std::string_view signal_name) const {
  const std::string_view leaf = last_component(signal_name);
  const std::string_view base = strip_bank_index(leaf);
  for (const auto& e : entries_) {
    if (leaf == e.name || base == e.name) return true;
  }
  return false;
}

std::size_t ArchRegDb::label(Ifg& ifg) const {
  std::size_t labeled = 0;
  for (NodeId i = 0; i < ifg.node_count(); ++i) {
    if (ifg.node(i).role == Role::kArchitectural) continue;
    if (is_architectural(ifg.node(i).name)) {
      ifg.set_role(i, Role::kArchitectural);
      ++labeled;
    }
  }
  return labeled;
}

}  // namespace specure::ift
