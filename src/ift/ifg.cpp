#include "ift/ifg.hpp"

#include <ostream>
#include <stdexcept>

namespace specure::ift {

NodeId Ifg::add_node(std::string name, unsigned width, bool is_register,
                     Role role) {
  auto [it, inserted] =
      index_.emplace(name, static_cast<NodeId>(nodes_.size()));
  if (!inserted) throw std::runtime_error("IFG: duplicate node " + name);
  Node n;
  n.name = std::move(name);
  n.width = width;
  n.is_register = is_register;
  n.role = role;
  nodes_.push_back(std::move(n));
  succ_.emplace_back();
  pred_.emplace_back();
  return it->second;
}

void Ifg::add_edge(NodeId src, NodeId dst) {
  if (src == dst) return;
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    throw std::runtime_error("IFG: edge references unknown node");
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  if (!edge_seen_.emplace(key, true).second) return;
  succ_[src].push_back(dst);
  pred_[dst].push_back(src);
  ++edge_count_;
}

void Ifg::add_edge(const std::string& src, const std::string& dst) {
  add_edge(id_of(src), id_of(dst));
}

NodeId Ifg::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidNode : it->second;
}

NodeId Ifg::id_of(const std::string& name) const {
  const NodeId id = find(name);
  if (id == kInvalidNode) throw std::runtime_error("IFG: unknown node " + name);
  return id;
}

std::vector<NodeId> Ifg::nodes_with_role(Role role) const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].role == role) out.push_back(i);
  }
  return out;
}

std::vector<NodeId> Ifg::register_nodes() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_register) out.push_back(i);
  }
  return out;
}

void Ifg::write_dot(std::ostream& os) const {
  os << "digraph ifg {\n  rankdir=LR;\n";
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    os << "  n" << i << " [label=\"" << n.name << "\"";
    if (n.role == Role::kArchitectural) {
      os << ", shape=doublecircle, color=blue";
    } else if (n.is_register) {
      os << ", shape=box";
    }
    os << "];\n";
  }
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    for (NodeId j : succ_[i]) os << "  n" << i << " -> n" << j << ";\n";
  }
  os << "}\n";
}

Ifg Ifg::from_elaborated(const rtl::ElaboratedDesign& design) {
  Ifg g;
  for (const auto& sig : design.signals()) {
    g.add_node(sig.name, sig.width, sig.is_register,
               sig.is_register ? Role::kMicroarchitectural : Role::kWire);
  }
  for (const auto& [src, dst] : design.flows()) {
    g.add_edge(src, dst);
  }
  return g;
}

}  // namespace specure::ift
