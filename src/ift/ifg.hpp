// Information Flow Graph (IFG), the paper's §3.1 Step 1 artifact:
//   IFG = (R, F), R = all signals in the PUT, F = directed flow edges.
//
// An Ifg can be built from an elaborated RTL design (rtl::elaborate) or
// programmatically (the MiniBOOM simulator registers its structure
// directly). Nodes carry the register/architectural classification used by
// PDLC extraction (§3.1 Step 2).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/elaborate.hpp"

namespace specure::ift {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = ~0u;

/// Classification of a signal for leakage analysis.
enum class Role : std::uint8_t {
  kWire,              ///< combinational / non-state signal
  kMicroarchitectural,///< state invisible to the programmer
  kArchitectural,     ///< programmer-visible state (ISA registers, CSRs, ...)
};

struct Node {
  std::string name;
  unsigned width = 1;
  bool is_register = false;
  Role role = Role::kWire;
};

class Ifg {
 public:
  /// Add a node; name must be unique. Returns the node id.
  NodeId add_node(std::string name, unsigned width = 1,
                  bool is_register = false, Role role = Role::kWire);

  /// Add a directed flow edge (deduplicated; self-loops dropped).
  void add_edge(NodeId src, NodeId dst);
  void add_edge(const std::string& src, const std::string& dst);

  NodeId find(const std::string& name) const;  ///< kInvalidNode if absent
  NodeId id_of(const std::string& name) const; ///< throws if absent

  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& node(NodeId id) { return nodes_[id]; }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  const std::vector<NodeId>& successors(NodeId id) const { return succ_[id]; }
  const std::vector<NodeId>& predecessors(NodeId id) const { return pred_[id]; }

  /// All node ids with a given role / register flag.
  std::vector<NodeId> nodes_with_role(Role role) const;
  std::vector<NodeId> register_nodes() const;

  /// Set the role of a node by id or name.
  void set_role(NodeId id, Role role) { nodes_[id].role = role; }

  /// Graphviz DOT rendering (architectural nodes double-circled,
  /// registers boxed).
  void write_dot(std::ostream& os) const;

  /// Build from an elaborated RTL design: one node per signal, one edge per
  /// flow. Roles start as kWire/kMicroarchitectural (for registers) and are
  /// refined by the architectural-register database (arch_regs.hpp).
  static Ifg from_elaborated(const rtl::ElaboratedDesign& design);

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::unordered_map<std::string, NodeId> index_;
  std::unordered_map<std::uint64_t, bool> edge_seen_;
  std::size_t edge_count_ = 0;
};

}  // namespace specure::ift
