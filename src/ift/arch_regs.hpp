// Architectural-register database (§3.1 Step 2 of the paper).
//
// The paper extracts programmer-accessible state from the RISC-V privileged
// and unprivileged ISA specifications and uses it to label the IFG's
// architectural sinks. We encode the same information directly: integer
// registers x0-x31 (and ABI aliases), floating-point registers f0-f31, the
// program counter, every implemented CSR (including the paper's four
// emulation CSRs) and memory-mapped I/O registers.
//
// Signals are matched by hierarchical-name suffix: "core.arch_rf.x17"
// matches the "x17" entry; "core.csr.mwait_timer" matches "mwait_timer".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ift/ifg.hpp"

namespace specure::ift {

/// One programmer-visible register as documented in the ISA spec.
struct ArchRegEntry {
  std::string name;       ///< spec name ("x17", "mstatus", "pc", ...)
  std::string source;     ///< which spec volume documents it
  bool memory_mapped = false;
};

class ArchRegDb {
 public:
  /// Database preloaded with the RISC-V unprivileged + privileged state
  /// (plus Specure's emulation CSRs, which are architecturally visible by
  /// construction).
  static ArchRegDb riscv();

  /// An empty database (for custom PUTs).
  ArchRegDb() = default;

  /// Register an extra architectural name (e.g. an MMIO register).
  void add(ArchRegEntry entry);

  /// True if the hierarchical signal name denotes architectural state.
  /// Matching is by dot-separated last component, with an optional
  /// "<name>_<digits>" suffix for synthesized register banks.
  bool is_architectural(std::string_view signal_name) const;

  std::size_t size() const { return entries_.size(); }
  const std::vector<ArchRegEntry>& entries() const { return entries_; }

  /// Walk the IFG and set Role::kArchitectural on every matching node.
  /// Returns the number of nodes labeled.
  std::size_t label(Ifg& ifg) const;

 private:
  std::vector<ArchRegEntry> entries_;
};

}  // namespace specure::ift
