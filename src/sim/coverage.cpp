#include "sim/coverage.hpp"

namespace specure::sim {

void CoverageRecorder::branch(std::string_view site, bool taken) {
  points_.insert("b:" + std::string(site) + (taken ? ":t" : ":n"));
}

void CoverageRecorder::fsm(std::string_view machine, std::uint32_t state) {
  points_.insert("f:" + std::string(machine) + ":" + std::to_string(state));
}

void CoverageRecorder::condition(std::string_view site, bool value) {
  points_.insert("c:" + std::string(site) + (value ? ":1" : ":0"));
}

std::size_t CoverageRecorder::merge(const CoverageRecorder& other) {
  std::size_t fresh = 0;
  for (const auto& p : other.points_) {
    fresh += points_.insert(p).second;
  }
  toggle_bits_ += other.toggle_bits_;
  return fresh;
}

std::size_t CoverageRecorder::memory_bytes() const {
  std::size_t bytes = sizeof(CoverageRecorder);
  for (const auto& p : points_) {
    // Node + hash-bucket overhead is a rough 32 bytes per entry.
    bytes += p.capacity() + 32;
  }
  return bytes;
}

void CoverageRecorder::clear() {
  points_.clear();
  toggle_bits_ = 0;
}

}  // namespace specure::sim
