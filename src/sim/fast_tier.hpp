// Fast-functional prefix tier: the public surface shared by the
// simulator, the fuzz layer and the campaign worker.
//
// The fast tier executes the architecturally boring prefix of a program —
// straight-line ALU/load/store code in which speculation provably cannot
// arm — on the same core state as the detailed model, but with a
// function-pointer dispatch kernel and change-driven snapshot capture
// instead of the full ~300-signal sweep per cycle. It hands off to the
// detailed pipeline at the first instruction that could arm speculation
// (the handoff point), so the detailed run from the boundary onward — and
// therefore the trace, coverage, commit log and findings — is bit-identical
// to a cold detailed run of the whole program.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "riscv/decode.hpp"
#include "riscv/isa.hpp"

namespace specure::sim {

/// Ops the fast tier can execute bit-identically to the detailed core.
/// Everything excluded here either arms speculation (branches, JALR),
/// redirects or trains the predictor (JAL pushes the RAS), or serializes
/// with side effects the prefix must not reach (CSR ops can arm the
/// (M)WAIT monitor, FENCE/ECALL/EBREAK serialize). kIllegal stays
/// supported: it is the trap-halt path, identical in both tiers.
constexpr bool fast_tier_supported(riscv::Op op) {
  return !(riscv::is_control_flow(op) || riscv::is_csr(op) ||
           op == riscv::Op::kFence || op == riscv::Op::kEcall ||
           op == riscv::Op::kEbreak);
}

/// Index of the first instruction the fast tier must not execute: the
/// first op that can arm speculation (plus loads when `loads_arm`, i.e.
/// the active detector monitors the data cache). Returns `insts.size()`
/// when the whole program is fast-executable (the run completes entirely
/// in the fast tier).
inline std::size_t fast_handoff_scan(
    const std::vector<riscv::DecodedInst>& insts, bool loads_arm) {
  for (std::size_t i = 0; i < insts.size(); ++i) {
    if (!fast_tier_supported(insts[i].op)) return i;
    if (loads_arm && riscv::is_load(insts[i].op)) return i;
  }
  return insts.size();
}

/// Per-simulator fast-tier telemetry, aggregated per worker into
/// PipelineStats and the bench JSON.
struct TierStats {
  std::uint64_t fast_runs = 0;    ///< runs that entered the fast tier
  std::uint64_t fast_cycles = 0;  ///< cycles executed by the fast tier
  std::uint64_t handoffs = 0;     ///< boundary handoffs to the detailed core
  std::uint64_t fast_completions = 0;  ///< runs that never left the fast tier
  std::uint64_t fallbacks = 0;  ///< handoff at index 0 → pure detailed run
};

/// Optional wall-clock phase boundaries of a single tiered run, filled
/// by Simulator::run_tiered when the caller passes a non-null pointer —
/// the observability span hook (the campaign worker turns these into
/// fast_tier / detailed trace sub-spans). Clock reads happen only when
/// requested, so the nullptr path costs nothing; timing never feeds
/// back into simulation, so results are unaffected either way.
struct TierPhaseTimes {
  std::chrono::steady_clock::time_point fast_begin{};
  std::chrono::steady_clock::time_point fast_end{};
  std::chrono::steady_clock::time_point detailed_end{};
  bool entered_fast = false;        ///< fast_begin/fast_end are meaningful
  bool continued_detailed = false;  ///< detailed_end is meaningful
  std::size_t handoff_index = 0;    ///< clamped index actually used
};

/// What Simulator::run_fast_prefix did (test / introspection surface).
enum class FastPrefixOutcome {
  kNone,      ///< handoff at index 0: nothing executed, no boundary state
  kHandoff,   ///< stopped at the handoff boundary; checkpoint materialized
  kCompleted  ///< the whole run finished inside the fast tier
};

/// The fast tier's ALU dispatch kernel: one small function per opcode
/// instead of the detailed model's switch. Exposed for bench_micro.
using FastAluFn = std::uint64_t (*)(const riscv::DecodedInst&, std::uint64_t,
                                    std::uint64_t);

/// Function-pointer table indexed by `static_cast<size_t>(Op)`; entries
/// for non-ALU ops evaluate to 0 (never dispatched by the fast tier).
const FastAluFn* fast_alu_table();

/// The detailed model's switch-based ALU evaluator (reference kernel for
/// the bench_micro dispatch comparison).
std::uint64_t fast_alu_reference(const riscv::DecodedInst& d, std::uint64_t a,
                                 std::uint64_t b);

}  // namespace specure::sim
