// Rename stage: architectural-to-physical map table, free list and the
// physical register file, with per-branch checkpoints of the map table.
//
// On a misprediction the checkpoint is restored — unless the Zenbleed
// emulation is active (zenbleed_en CSR non-zero), in which case the
// rollback is suppressed exactly as the paper describes ("manipulating the
// maptable rollback mechanism to prevent the rollback of Register File
// changes"), so wrong-path register writes stay architecturally visible.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "sim/config.hpp"
#include "sim/dirty_set.hpp"

namespace specure::sim {

using PhysReg = std::uint16_t;

/// Snapshotable rename state (part of sim::CoreState). Includes the
/// per-branch map-table checkpoints so a restored core can still roll
/// back branches that were in flight when the snapshot was taken.
struct RenameState {
  std::array<PhysReg, 32> maptable{};
  std::vector<PhysReg> freelist;
  std::vector<std::uint64_t> prf;
  std::map<unsigned, std::array<PhysReg, 32>> checkpoints;
};

class RenameStage {
 public:
  explicit RenameStage(const CoreConfig& cfg);

  /// Attach the core's dirty set (capture engine contract): every mutation
  /// below marks the flat signal ids it touches. The maptable/freecount/
  /// prf bases are the block offsets from sim::signal_layout; `rfx_base`
  /// is the architectural-view block, marked whenever a mutation can move
  /// an arch register's value (the view is derived: rf.x[i] =
  /// prf[maptable[i]], so both a remap and a PRF write dirty it).
  void bind_dirty(DirtySet* dirty, std::size_t maptable_base,
                  std::size_t freecount_id, std::size_t prf_base,
                  std::size_t rfx_base) {
    dirty_ = dirty;
    maptable_base_ = maptable_base;
    freecount_id_ = freecount_id;
    prf_base_ = prf_base;
    rfx_base_ = rfx_base;
  }

  /// Current physical register holding architectural register `arch`.
  PhysReg map(unsigned arch) const { return maptable_[arch]; }

  /// Allocate a new physical destination for `arch` (x0 never renames).
  /// Returns false if the free list is exhausted (caller must stall).
  /// `old_phys` receives the previous mapping (to free at commit).
  bool allocate(unsigned arch, PhysReg& new_phys, PhysReg& old_phys);

  /// Checkpoint the map table, keyed by the ROB index of a branch.
  void checkpoint(unsigned rob_index);

  /// Misprediction rollback: restore the checkpoint taken at `rob_index`
  /// and drop younger checkpoints. When `suppress_restore` (Zenbleed) the
  /// map table is left as-is and only the checkpoint bookkeeping is
  /// cleaned up.
  void rollback(unsigned rob_index, bool suppress_restore);

  /// Branch resolved correctly: discard its checkpoint.
  void release_checkpoint(unsigned rob_index);

  /// Commit an instruction that renamed `old_phys` away: the old physical
  /// register is returned to the free list.
  void commit_free(PhysReg old_phys);

  /// Squash an instruction: its freshly allocated register returns to the
  /// free list (skipped under Zenbleed suppression, where the allocation
  /// escapes — the paper's "deallocate ... can be allocated by the victim"
  /// race is modeled as a leaked register).
  void squash_free(PhysReg new_phys);

  // Physical register file.
  std::uint64_t prf(PhysReg p) const { return prf_[p]; }
  void prf_write(PhysReg p, std::uint64_t value) {
    prf_[p] = value;
    if (dirty_ != nullptr) {
      dirty_->mark(prf_base_ + p);
      // A write to a currently-mapped physical register moves the
      // architectural view of its arch register.
      if (rev_[p] != kUnmapped) dirty_->mark(rfx_base_ + rev_[p]);
    }
  }

  /// Architectural view: value of arch register i through the map table.
  std::uint64_t arch_value(unsigned arch) const {
    return arch == 0 ? 0 : prf_[maptable_[arch]];
  }

  // Snapshot accessors.
  std::uint64_t maptable_raw(unsigned arch) const { return maptable_[arch]; }
  std::size_t free_count() const { return freelist_.size(); }
  unsigned phys_count() const { return cfg_.phys_regs; }

  // Checkpointing.
  void save(RenameState& out) const;
  void restore(const RenameState& state);

 private:
  static constexpr std::uint8_t kUnmapped = 0xff;

  /// Rebuild the phys->arch reverse map from the map table (after a
  /// rollback restore or a state restore).
  void rebuild_rev();

  const CoreConfig& cfg_;
  std::array<PhysReg, 32> maptable_{};
  std::vector<PhysReg> freelist_;
  std::vector<std::uint64_t> prf_;
  std::map<unsigned, std::array<PhysReg, 32>> checkpoints_;  ///< by ROB index

  // Dirty-set wiring (capture engine): null until bind_dirty.
  DirtySet* dirty_ = nullptr;
  std::size_t maptable_base_ = 0;
  std::size_t freecount_id_ = 0;
  std::size_t prf_base_ = 0;
  std::size_t rfx_base_ = 0;
  /// Arch register currently mapped to each physical register (kUnmapped
  /// when none) — lets prf_write dirty the derived rf.x view in O(1).
  std::vector<std::uint8_t> rev_;
};

}  // namespace specure::sim
