// Structural self-description of MiniBOOM: the canonical list of named
// signals (with widths and architectural/microarchitectural roles) and the
// static information-flow edges between them.
//
// Three consumers share this single source of truth:
//   1. Core — registers its SignalDb in exactly this order and fills
//      per-cycle snapshot values positionally;
//   2. build_ifg() — the Offline Phase IFG of the PUT (DESIGN.md E1);
//   3. emit_structural_verilog() — a Verilog rendering of the same
//      structure, used to exercise the RTL front-end on a processor-sized
//      input and to round-trip-check parser+elaborator against this model.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ift/ifg.hpp"
#include "sim/config.hpp"
#include "snapshot/signal_db.hpp"

namespace specure::sim {

enum class SigKind : std::uint8_t {
  kFetchPc,
  kRfX,          ///< architectural register view x<i>
  kCsr,          ///< CSR value, index into riscv::csr::kImplemented
  kMapTable,     ///< rename map table entry <i>
  kFreeCount,    ///< rename free-list occupancy
  kPrf,          ///< physical register p<i>
  kRobHead, kRobTail, kRobCount,
  kRobUnsafe,    ///< any unresolved speculative window open
  kRobSpecPc, kRobSpecInst,  ///< oldest unresolved branch (window opener)
  kBrupdValid, kBrupdMispredict,
  kCommitValid, kCommitPc, kCommitInst, kCommitRd,
  kBpGhist, kBpPht, kBtbTag, kBtbTarget, kRas, kRasTop,
  kDcValid, kDcTag, kDcData, kDcLru,
  kTlbValid, kTlbVpn, kTlbPpn,
  kExecResult,   ///< execute-stage result bus (wire)
  kLsuAddr,      ///< load/store address bus (wire)
  kLsuLoadData,  ///< load fill/response bus (wire)
  kLsuTaintedAccess,  ///< pulse: speculative access with tainted address
};

struct SigDesc {
  SigKind kind;
  unsigned i = 0;  ///< primary index (entry / set)
  unsigned j = 0;  ///< secondary index (way)
  std::string name;
  unsigned width = 64;
  snapshot::SignalClass cls = snapshot::SignalClass::kMicroarchitectural;
  bool is_register = true;
};

/// Canonical signal list for a configuration.
std::vector<SigDesc> describe_signals(const CoreConfig& cfg);

/// Static flow edges (by signal name) for a configuration. Includes the
/// (M)WAIT dcache->mwait_timer and zenbleed_en->rename->rf edges when the
/// corresponding emulations are configured.
std::vector<std::pair<std::string, std::string>> describe_flows(
    const CoreConfig& cfg);

/// Offline-phase IFG of MiniBOOM (roles already labeled).
ift::Ifg build_ifg(const CoreConfig& cfg);

/// Verilog rendering of the structure as one flat module "core" with '.'
/// replaced by '$' in signal names (parseable by rtl::parse; round-trip
/// tested against build_ifg()).
std::string emit_structural_verilog(const CoreConfig& cfg);

}  // namespace specure::sim
