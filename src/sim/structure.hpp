// Structural self-description of MiniBOOM: the canonical list of named
// signals (with widths and architectural/microarchitectural roles) and the
// static information-flow edges between them.
//
// Three consumers share this single source of truth:
//   1. Core — registers its SignalDb in exactly this order and fills
//      per-cycle snapshot values positionally;
//   2. build_ifg() — the Offline Phase IFG of the PUT (DESIGN.md E1);
//   3. emit_structural_verilog() — a Verilog rendering of the same
//      structure, used to exercise the RTL front-end on a processor-sized
//      input and to round-trip-check parser+elaborator against this model.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ift/ifg.hpp"
#include "sim/config.hpp"
#include "snapshot/signal_db.hpp"

namespace specure::sim {

enum class SigKind : std::uint8_t {
  kFetchPc,
  kRfX,          ///< architectural register view x<i>
  kCsr,          ///< CSR value, index into riscv::csr::kImplemented
  kMapTable,     ///< rename map table entry <i>
  kFreeCount,    ///< rename free-list occupancy
  kPrf,          ///< physical register p<i>
  kRobHead, kRobTail, kRobCount,
  kRobUnsafe,    ///< any unresolved speculative window open
  kRobSpecPc, kRobSpecInst,  ///< oldest unresolved branch (window opener)
  kBrupdValid, kBrupdMispredict,
  kCommitValid, kCommitPc, kCommitInst, kCommitRd,
  kBpGhist, kBpPht, kBtbTag, kBtbTarget, kRas, kRasTop,
  kDcValid, kDcTag, kDcData, kDcLru,
  kTlbValid, kTlbVpn, kTlbPpn,
  kExecResult,   ///< execute-stage result bus (wire)
  kLsuAddr,      ///< load/store address bus (wire)
  kLsuLoadData,  ///< load fill/response bus (wire)
  kLsuTaintedAccess,  ///< pulse: speculative access with tainted address
};

struct SigDesc {
  SigKind kind;
  unsigned i = 0;  ///< primary index (entry / set)
  unsigned j = 0;  ///< secondary index (way)
  std::string name;
  unsigned width = 64;
  snapshot::SignalClass cls = snapshot::SignalClass::kMicroarchitectural;
  bool is_register = true;
};

/// Canonical signal list for a configuration.
std::vector<SigDesc> describe_signals(const CoreConfig& cfg);

/// Flat-id offsets of every component's signal block in the
/// describe_signals() order — what the dirty-set capture engine hands to
/// each component so mark(id) is base + index arithmetic. Computed once
/// per Simulator; signal_layout() re-derives it from the actual desc list
/// and throws if a block is missing or not laid out as assumed (the
/// contiguity contract documented in ARCHITECTURE.md — anyone reordering
/// describe_signals() trips this immediately, not a silent stale trace).
struct SignalLayout {
  std::size_t signals = 0;    ///< total signal count
  std::size_t fetch_pc = 0;
  std::size_t rfx = 0;        ///< base of the 32 architectural registers
  std::size_t csr = 0;        ///< base of the implemented-CSR block
  std::size_t maptable = 0;   ///< base of the 32 map-table entries
  std::size_t freecount = 0;
  std::size_t prf = 0;        ///< base of the physical register file
  /// Base of the 12 contiguous ROB/pulse signals: head, tail, count,
  /// unsafe, spec_pc, spec_inst, brupdate_valid, brupdate_mispredict,
  /// commit valid/pc/inst/rd.
  std::size_t rob_head = 0;
  std::size_t bp_ghist = 0;
  std::size_t bp_pht = 0;     ///< base of the packed PHT words
  std::size_t btb = 0;        ///< base; entries interleave (tag_i, target_i)
  std::size_t ras = 0;        ///< base of the RAS entries
  std::size_t ras_top = 0;
  std::size_t dcache = 0;     ///< base of set 0; sets are contiguous
  std::size_t dcache_set_stride = 0;  ///< ways * (valid,tag,data) + lru
  std::size_t tlb = 0;        ///< base; entries interleave (valid,vpn,ppn)
  std::size_t tlb_signals = 0;
  std::size_t exec_result = 0;  ///< exec/lsu_addr/load_data/tainted block
};

/// Locate (and validate) the signal blocks of `descs` as produced by
/// describe_signals(cfg). Throws std::logic_error when the layout
/// contract is violated.
SignalLayout signal_layout(const std::vector<SigDesc>& descs,
                           const CoreConfig& cfg);

/// Static flow edges (by signal name) for a configuration. Includes the
/// (M)WAIT dcache->mwait_timer and zenbleed_en->rename->rf edges when the
/// corresponding emulations are configured.
std::vector<std::pair<std::string, std::string>> describe_flows(
    const CoreConfig& cfg);

/// Offline-phase IFG of MiniBOOM (roles already labeled).
ift::Ifg build_ifg(const CoreConfig& cfg);

/// Verilog rendering of the structure as one flat module "core" with '.'
/// replaced by '$' in signal names (parseable by rtl::parse; round-trip
/// tested against build_ifg()).
std::string emit_structural_verilog(const CoreConfig& cfg);

}  // namespace specure::sim
