// Fast-functional prefix tier (see fast_tier.hpp and the "Tiered
// execution" section of docs/ARCHITECTURE.md for the safety argument).
//
// The fast tier is NOT a separate ISS: it runs the same per-cycle stage
// order as Core::loop() on the same component state, restricted to the
// op set where speculation provably cannot arm. What it elides — and
// where the speedup comes from — is everything that exists only because
// of speculation:
//
//   * execute: in-order allocation with no squashes means ROB ring order
//     from head IS ascending seq order — no per-cycle vector + sort.
//   * no unsafe-entry scans (nothing in the prefix can be unsafe), no
//     control-resolution, no squash walks.
//   * issue dispatches through a per-opcode function-pointer table
//     instead of the nested format/op switches.
//
// Capture is NOT tier-specific anymore: both tiers share Core::capture()
// and its dirty-set engine (the components mark what they write; the
// trace re-records only that), so the handoff needs no capture-state
// reconciliation — the dirty set simply keeps accumulating across the
// boundary.

#include <array>

#include "sim/core_impl.hpp"

namespace specure::sim {

namespace {

using detail::Core;
using riscv::DecodedInst;
using riscv::Op;

constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kCount);

/// One tiny function per ALU opcode — the threaded-dispatch kernel.
template <Op kOp>
std::uint64_t alu_op(const DecodedInst& d, std::uint64_t a, std::uint64_t b) {
  const std::int64_t sa = static_cast<std::int64_t>(a);
  const std::int64_t sb = static_cast<std::int64_t>(b);
  auto sext32 = [](std::uint64_t v) {
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
  };
  (void)d; (void)sa; (void)sb; (void)sext32;  // per-op instantiations
  if constexpr (kOp == Op::kAddi || kOp == Op::kAdd) return a + b;
  if constexpr (kOp == Op::kSub) return a - b;
  if constexpr (kOp == Op::kSlti || kOp == Op::kSlt) return sa < sb ? 1 : 0;
  if constexpr (kOp == Op::kSltiu || kOp == Op::kSltu) return a < b ? 1 : 0;
  if constexpr (kOp == Op::kXori || kOp == Op::kXor) return a ^ b;
  if constexpr (kOp == Op::kOri || kOp == Op::kOr) return a | b;
  if constexpr (kOp == Op::kAndi || kOp == Op::kAnd) return a & b;
  if constexpr (kOp == Op::kSlli || kOp == Op::kSll) return a << (b & 63);
  if constexpr (kOp == Op::kSrli || kOp == Op::kSrl) return a >> (b & 63);
  if constexpr (kOp == Op::kSrai || kOp == Op::kSra) {
    return static_cast<std::uint64_t>(sa >> (b & 63));
  }
  if constexpr (kOp == Op::kAddiw || kOp == Op::kAddw) return sext32(a + b);
  if constexpr (kOp == Op::kSubw) return sext32(a - b);
  if constexpr (kOp == Op::kSlliw || kOp == Op::kSllw) {
    return sext32(a << (b & 31));
  }
  if constexpr (kOp == Op::kSrliw || kOp == Op::kSrlw) {
    return sext32(static_cast<std::uint32_t>(a) >> (b & 31));
  }
  if constexpr (kOp == Op::kSraiw || kOp == Op::kSraw) {
    return sext32(static_cast<std::uint64_t>(static_cast<std::int32_t>(a) >>
                                             (b & 31)));
  }
  if constexpr (kOp == Op::kLui) return static_cast<std::uint64_t>(d.imm);
  if constexpr (kOp == Op::kMul) return a * b;
  if constexpr (kOp == Op::kMulh) {
    return static_cast<std::uint64_t>(
        (static_cast<__int128>(sa) * static_cast<__int128>(sb)) >> 64);
  }
  if constexpr (kOp == Op::kDiv) {
    if (b == 0) return ~0ULL;
    if (sa == INT64_MIN && sb == -1) return a;
    return static_cast<std::uint64_t>(sa / sb);
  }
  if constexpr (kOp == Op::kDivu) return b == 0 ? ~0ULL : a / b;
  if constexpr (kOp == Op::kRem) {
    if (b == 0) return a;
    if (sa == INT64_MIN && sb == -1) return 0;
    return static_cast<std::uint64_t>(sa % sb);
  }
  if constexpr (kOp == Op::kRemu) return b == 0 ? a : a % b;
  return 0;  // non-ALU ops (never dispatched); kAuipc handled at issue
}

template <std::size_t... I>
constexpr std::array<FastAluFn, kOpCount> make_alu_table(
    std::index_sequence<I...>) {
  return {&alu_op<static_cast<Op>(I)>...};
}

constexpr std::array<FastAluFn, kOpCount> kAluTable =
    make_alu_table(std::make_index_sequence<kOpCount>{});

}  // namespace

const FastAluFn* fast_alu_table() { return kAluTable.data(); }

std::uint64_t fast_alu_reference(const riscv::DecodedInst& d, std::uint64_t a,
                                 std::uint64_t b) {
  return detail::eval_alu(d, a, b);
}

namespace detail {

void Core::fast_issue_alu(Core& c, RobEntry& e, std::uint64_t a,
                          std::uint64_t b) {
  c.allocate_rd(e);
  e.result = kAluTable[static_cast<std::size_t>(e.dec.op)](e.dec, a, b);
  if (e.dec.op == Op::kAuipc) {
    e.result = e.pc + static_cast<std::uint64_t>(e.dec.imm);
  }
  e.result_tainted = false;  // no speculation window in the prefix
  unsigned latency = 1;
  if (e.dec.op == Op::kMul || e.dec.op == Op::kMulh) latency = c.cfg_.mul_latency;
  if (e.dec.op == Op::kDiv || e.dec.op == Op::kDivu ||
      e.dec.op == Op::kRem || e.dec.op == Op::kRemu) {
    latency = c.cfg_.div_latency;
  }
  e.ready_cycle = c.cycle_ + latency;
  c.exec_result_ = e.result;
  c.fetch_pc_ += 4;
}

void Core::fx_alu_rr(Core& c, RobEntry& e, std::uint64_t v1, std::uint64_t v2,
                     RunResult&) {
  fast_issue_alu(c, e, v1, v2);
}

void Core::fx_alu_ri(Core& c, RobEntry& e, std::uint64_t v1, std::uint64_t,
                     RunResult&) {
  fast_issue_alu(c, e, v1, static_cast<std::uint64_t>(e.dec.imm));
}

void Core::fx_load(Core& c, RobEntry& e, std::uint64_t v1, std::uint64_t,
                   RunResult& res) {
  c.allocate_rd(e);
  const std::uint64_t va = v1 + static_cast<std::uint64_t>(e.dec.imm);
  std::uint64_t pa = va;
  const bool tlb_hit = c.tlb_.translate(va, pa);
  res.coverage.branch("tlb.hit", tlb_hit);
  c.lsu_addr_ = pa;
  e.mem_addr = pa;
  e.mem_size = riscv::access_size(e.dec.op);
  std::uint64_t raw = 0;
  const bool hit = c.dcache_.load(pa, e.mem_size, raw);
  res.coverage.branch("dcache.hit", hit);
  res.coverage.fsm("dcache.state", hit ? 0 : 1);
  c.lsu_load_data_ = raw;
  e.result = extend_load(e.dec.op, raw);
  e.result_tainted = false;  // in_window is provably false in the prefix
  e.ready_cycle =
      c.cycle_ + (hit ? c.cfg_.load_hit_latency : c.cfg_.load_miss_latency);
  c.fetch_pc_ += 4;
}

void Core::fx_store(Core& c, RobEntry& e, std::uint64_t v1, std::uint64_t v2,
                    RunResult& res) {
  const std::uint64_t va = v1 + static_cast<std::uint64_t>(e.dec.imm);
  std::uint64_t pa = va;
  const bool tlb_hit = c.tlb_.translate(va, pa);
  res.coverage.branch("tlb.hit", tlb_hit);
  c.lsu_addr_ = pa;
  e.is_store = true;
  e.mem_addr = pa;
  e.mem_size = riscv::access_size(e.dec.op);
  e.store_value = v2;
  e.ready_cycle = c.cycle_ + 1;  // memory effect deferred to commit
  c.fetch_pc_ += 4;
}

const Core::FastIssueFn* Core::fast_dispatch() {
  static const std::array<FastIssueFn, kOpCount> table = [] {
    std::array<FastIssueFn, kOpCount> t{};
    for (std::size_t i = 0; i < kOpCount; ++i) {
      const Op op = static_cast<Op>(i);
      if (!fast_tier_supported(op)) continue;  // structurally unreachable
      switch (riscv::format_of(op)) {
        case riscv::Format::kR:
        case riscv::Format::kU:
          t[i] = &fx_alu_rr;
          break;
        case riscv::Format::kI:
          t[i] = riscv::is_load(op) ? &fx_load : &fx_alu_ri;
          break;
        case riscv::Format::kS:
          t[i] = &fx_store;
          break;
        default:
          break;  // kIllegal takes the trap path before dispatch
      }
    }
    return t;
  }();
  return table.data();
}

void Core::fast_issue(RunResult& res) {
  if (halted_ || rob_full() || fetch_stalled_) return;
  const std::uint32_t word = fetch_word(fetch_pc_);
  const DecodedInst& dec = decode_at(fetch_pc_, word);
  res.coverage.branch("decode.valid", dec.valid());

  if (!dec.valid()) {
    // Illegal instruction (or the fall-off-end fetch of word 0): the
    // same trap model as the detailed issue stage.
    RobEntry& e = alloc_entry(dec);
    e.ready_cycle = cycle_ + 1;
    e.is_halt = true;
    fetch_stalled_ = true;
    return;
  }

  // No serializing ops reach here: CSR/FENCE/ECALL/EBREAK are handoff
  // triggers, clamped out of the prefix.
  const PhysReg p1 = rename_.map(dec.rs1);
  const PhysReg p2 = rename_.map(dec.rs2);
  if ((uses_rs1(dec) && !prf_ready_[p1]) ||
      (uses_rs2(dec) && !prf_ready_[p2])) {
    return;  // RAW stall
  }
  const std::uint64_t v1 = dec.rs1 == 0 ? 0 : rename_.prf(p1);
  const std::uint64_t v2 = dec.rs2 == 0 ? 0 : rename_.prf(p2);

  if (riscv::is_load(dec.op) &&
      store_overlap(v1 + static_cast<std::uint64_t>(dec.imm),
                    riscv::access_size(dec.op))) {
    return;  // store-to-load hazard stall
  }

  RobEntry& e = alloc_entry(dec);
  fast_dispatch()[static_cast<std::size_t>(dec.op)](*this, e, v1, v2, res);
}

void Core::fast_execute() {
  // In-order allocation with no squashes: ring order from the head is
  // ascending seq order, so this scan IS the detailed stage's sorted
  // oldest-first walk, minus the control/squash cases that cannot occur.
  unsigned slot = rob_head_;
  for (unsigned n = 0; n < rob_count_; ++n, slot = rob_next(slot)) {
    RobEntry& e = rob_[slot];
    if (e.done || cycle_ < e.ready_cycle) continue;
    if (e.writes_rd && e.dec.rd != 0) {
      rename_.prf_write(e.new_phys, e.result);
      prf_ready_[e.new_phys] = true;
      prf_taint_[e.new_phys] = false;
      exec_result_ = e.result;
    }
    e.done = true;
  }
}

void Core::fast_commit(RobEntry& e, RunResult& res) {
  CommitRecord rec;
  rec.cycle = cycle_;
  rec.pc = e.pc;
  rec.inst = e.dec.raw;
  if (e.writes_rd && e.dec.rd != 0) {
    rename_.commit_free(e.old_phys);
    rec.writes_rd = true;
    rec.rd = e.dec.rd;
  }
  if (e.is_store) {
    dcache_.store(e.mem_addr, e.mem_size, e.store_value);
    rec.is_store = true;
    rec.store_addr = e.mem_addr;
    res.coverage.branch("lsu.store_mapped",
                        mem_.data_mapped(e.mem_addr, e.mem_size));
  }
  // writes_csr is impossible in the prefix (CSR ops are handoff triggers).
  if (e.is_halt) halted_ = true;
  commit_valid_ = true;
  commit_pc_ = e.pc;
  commit_inst_ = e.dec.raw;
  commit_rd_ = e.writes_rd ? e.dec.rd : 0;
  ++res.instructions_committed;
  res.commits.push_back(rec);
}

void Core::fast_retire(RunResult& res) {
  for (unsigned n = 0; n < cfg_.retire_width; ++n) {
    if (rob_count_ == 0) return;
    RobEntry& head = rob_[rob_head_];
    if (!head.done) return;  // head is always valid, never ctrl/squashed
    fast_commit(head, res);
    if (halted_) return;  // halt commit leaves the head entry in place
    head.valid = false;
    rob_head_ = rob_next(rob_head_);
    --rob_count_;
  }
}

Core::FastExit Core::fast_loop(std::uint64_t handoff_pc, RunResult& res) {
  while (!halted_ && cycle_ < cfg_.max_cycles) {
    // The boundary is the end of the previous cycle: stop when the NEXT
    // fetch would touch the handoff instruction. In-flight ROB entries
    // are fine — the detailed loop continues them identically. The
    // straight-line prefix walks the PC in exact +4 steps, so equality
    // cannot be stepped over (handoff_pc 0 = no handoff: the whole run,
    // including the end-of-program trap, stays in this loop).
    if (fetch_pc_ == handoff_pc) return FastExit::kHandoff;
    ++cycle_;
    begin_cycle();
    fast_retire(res);
    fast_execute();
    fast_issue(res);
    csr_.tick();
    capture(res);
    if (rob_count_ == 0 && fetch_done()) break;
  }
  return FastExit::kDone;
}

}  // namespace detail
}  // namespace specure::sim
