// Configuration for the MiniBOOM processor model: microarchitectural
// parameters plus the vulnerability-emulation switches from the paper's
// §4.2 ((M)WAIT and Zenbleed) and the inherent speculative features
// (Spectre v1/v2 surface exists whenever speculation is on).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace specure::sim {

struct VulnConfig {
  /// Emulate the (M)WAIT vulnerability: three CSRs (mwait_en,
  /// monitor_addr, mwait_timer) and a data-cache hook that clears the
  /// timer when the monitored line changes — including changes caused by
  /// *speculative* accesses (the root cause).
  bool mwait_emulation = false;

  /// Emulate Zenbleed: when the zenbleed_en CSR is non-zero, the rename
  /// map-table checkpoint is NOT restored on misprediction rollback, so
  /// speculative register-file changes persist architecturally.
  bool zenbleed_emulation = false;
};

struct CoreConfig {
  // Pipeline shape.
  unsigned rob_entries = 16;
  unsigned phys_regs = 128;
  unsigned retire_width = 2;

  // Timing (cycles).
  unsigned branch_resolve_latency = 20;  ///< issue -> resolution
  unsigned jalr_resolve_latency = 16;
  unsigned load_hit_latency = 2;
  unsigned load_miss_latency = 12;
  unsigned mul_latency = 4;
  unsigned div_latency = 10;

  // Branch predictor.
  unsigned ghist_bits = 8;     ///< gshare history length
  unsigned pht_entries = 64;   ///< 2-bit counters
  unsigned btb_entries = 8;
  unsigned ras_entries = 4;

  // L1 data cache.
  unsigned dcache_sets = 8;
  unsigned dcache_ways = 2;
  unsigned dcache_line_bytes = 16;

  // TLB.
  unsigned tlb_entries = 4;
  unsigned page_bits = 12;

  // Execution limits.
  std::uint64_t max_cycles = 4096;

  // MWAIT emulation: countdown start value loaded when mwait_en is armed.
  std::uint64_t mwait_timer_start = 1024;

  /// Debug/verification: also record the dense reference trace (one full
  /// Snapshot per cycle) alongside the delta trace. Costs the old
  /// O(cycles × signals) memory — used by the trace differential suite
  /// and the dense-vs-delta bench, never by campaigns.
  bool record_dense_trace = false;

  VulnConfig vuln;
};

/// Negative-control configuration: branches resolve the cycle after they
/// issue, so no younger instruction ever executes under an open window —
/// an in-order-equivalent core. Used to show the entire finding surface
/// vanishes without speculation (the root-cause sanity check).
inline CoreConfig no_speculation_config() {
  CoreConfig cfg;
  cfg.branch_resolve_latency = 1;
  cfg.jalr_resolve_latency = 1;
  return cfg;
}

/// Validate the microarchitectural parameters against what the model
/// actually supports. Returns one actionable message per problem; empty
/// means the configuration is usable. (The campaign-spec layer folds these
/// into CampaignSpec::validate.)
std::vector<std::string> validate_config(const CoreConfig& cfg);

/// Core-level preset registry ("default", "no-spec", "mwait", "zenbleed",
/// "full"). Returns false when `name` is unknown, leaving `out` untouched.
bool lookup_core_preset(std::string_view name, CoreConfig& out);

/// Names accepted by lookup_core_preset, in registry order.
std::vector<std::string> core_preset_names();

}  // namespace specure::sim
