#include "sim/structure.hpp"

#include <sstream>
#include <stdexcept>

#include "riscv/isa.hpp"

namespace specure::sim {

using snapshot::SignalClass;

namespace {

constexpr unsigned kPhtBitsPerWord = 32;  ///< 2-bit counters packed 32/word

std::string idx_name(const std::string& base, unsigned i) {
  return base + "_" + std::to_string(i);
}
std::string idx2_name(const std::string& base, unsigned i, unsigned j) {
  return base + "_" + std::to_string(i) + "_" + std::to_string(j);
}

}  // namespace

std::vector<SigDesc> describe_signals(const CoreConfig& cfg) {
  std::vector<SigDesc> out;
  auto add = [&out](SigKind kind, unsigned i, unsigned j, std::string name,
                    unsigned width, SignalClass cls, bool is_register) {
    out.push_back({kind, i, j, std::move(name), width, cls, is_register});
  };

  // Fetch: the speculative fetch PC is microarchitectural state; the committed
  // PC (below, kCommitPc) is the architectural program counter.
  add(SigKind::kFetchPc, 0, 0, "core.fetch.spec_pc", 64,
      SignalClass::kMicroarchitectural, true);

  // Architectural register file view (through the rename map table).
  for (unsigned i = 0; i < 32; ++i) {
    add(SigKind::kRfX, i, 0, "core.rf.x" + std::to_string(i), 64,
        SignalClass::kArchitectural, true);
  }
  // CSRs (architecturally visible by definition).
  for (unsigned i = 0; i < riscv::csr::kImplemented.size(); ++i) {
    add(SigKind::kCsr, i, 0,
        "core.csr." + std::string(riscv::csr::name(riscv::csr::kImplemented[i])),
        64, SignalClass::kArchitectural, true);
  }
  // Rename.
  for (unsigned i = 0; i < 32; ++i) {
    add(SigKind::kMapTable, i, 0, idx_name("core.rename.maptable", i), 8,
        SignalClass::kMicroarchitectural, true);
  }
  add(SigKind::kFreeCount, 0, 0, "core.rename.freelist_count", 8,
      SignalClass::kMicroarchitectural, true);
  for (unsigned i = 0; i < cfg.phys_regs; ++i) {
    add(SigKind::kPrf, i, 0, "core.prf.p" + std::to_string(i), 64,
        SignalClass::kMicroarchitectural, true);
  }
  // ROB bookkeeping.
  add(SigKind::kRobHead, 0, 0, "core.rob.head", 8,
      SignalClass::kMicroarchitectural, true);
  add(SigKind::kRobTail, 0, 0, "core.rob.tail", 8,
      SignalClass::kMicroarchitectural, true);
  add(SigKind::kRobCount, 0, 0, "core.rob.count", 8,
      SignalClass::kMicroarchitectural, true);
  add(SigKind::kRobUnsafe, 0, 0, "core.rob.unsafe", 1,
      SignalClass::kMicroarchitectural, true);
  add(SigKind::kRobSpecPc, 0, 0, "core.rob.spec_pc", 64,
      SignalClass::kMicroarchitectural, true);
  add(SigKind::kRobSpecInst, 0, 0, "core.rob.spec_inst", 32,
      SignalClass::kMicroarchitectural, true);
  add(SigKind::kBrupdValid, 0, 0, "core.rob.brupdate_valid", 1,
      SignalClass::kMicroarchitectural, true);
  add(SigKind::kBrupdMispredict, 0, 0, "core.rob.brupdate_mispredict", 1,
      SignalClass::kMicroarchitectural, true);
  // Commit interface.
  add(SigKind::kCommitValid, 0, 0, "core.commit.valid", 1,
      SignalClass::kMicroarchitectural, true);
  add(SigKind::kCommitPc, 0, 0, "core.commit.pc", 64,
      SignalClass::kArchitectural, true);
  add(SigKind::kCommitInst, 0, 0, "core.commit.inst", 32,
      SignalClass::kMicroarchitectural, true);
  add(SigKind::kCommitRd, 0, 0, "core.commit.rd", 6,
      SignalClass::kMicroarchitectural, true);
  // Branch predictor.
  add(SigKind::kBpGhist, 0, 0, "core.bp.ghist", cfg.ghist_bits,
      SignalClass::kMicroarchitectural, true);
  const unsigned pht_words =
      (cfg.pht_entries + kPhtBitsPerWord - 1) / kPhtBitsPerWord;
  for (unsigned i = 0; i < pht_words; ++i) {
    add(SigKind::kBpPht, i, 0, idx_name("core.bp.pht", i), 64,
        SignalClass::kMicroarchitectural, true);
  }
  for (unsigned i = 0; i < cfg.btb_entries; ++i) {
    add(SigKind::kBtbTag, i, 0, idx_name("core.bp.btb_tag", i), 64,
        SignalClass::kMicroarchitectural, true);
    add(SigKind::kBtbTarget, i, 0, idx_name("core.bp.btb_target", i), 64,
        SignalClass::kMicroarchitectural, true);
  }
  for (unsigned i = 0; i < cfg.ras_entries; ++i) {
    add(SigKind::kRas, i, 0, idx_name("core.bp.ras", i), 64,
        SignalClass::kMicroarchitectural, true);
  }
  add(SigKind::kRasTop, 0, 0, "core.bp.ras_top", 4,
      SignalClass::kMicroarchitectural, true);
  // D-cache arrays.
  for (unsigned s = 0; s < cfg.dcache_sets; ++s) {
    for (unsigned w = 0; w < cfg.dcache_ways; ++w) {
      add(SigKind::kDcValid, s, w, idx2_name("core.dcache.valid", s, w), 1,
          SignalClass::kMicroarchitectural, true);
      add(SigKind::kDcTag, s, w, idx2_name("core.dcache.tag", s, w), 64,
          SignalClass::kMicroarchitectural, true);
      add(SigKind::kDcData, s, w, idx2_name("core.dcache.data", s, w), 64,
          SignalClass::kMicroarchitectural, true);
    }
    add(SigKind::kDcLru, s, 0, idx_name("core.dcache.lru", s), 4,
        SignalClass::kMicroarchitectural, true);
  }
  // TLB.
  for (unsigned i = 0; i < cfg.tlb_entries; ++i) {
    add(SigKind::kTlbValid, i, 0, idx_name("core.tlb.valid", i), 1,
        SignalClass::kMicroarchitectural, true);
    add(SigKind::kTlbVpn, i, 0, idx_name("core.tlb.vpn", i), 52,
        SignalClass::kMicroarchitectural, true);
    add(SigKind::kTlbPpn, i, 0, idx_name("core.tlb.ppn", i), 52,
        SignalClass::kMicroarchitectural, true);
  }
  // Wires (buses).
  add(SigKind::kExecResult, 0, 0, "core.exec.result", 64, SignalClass::kWire,
      false);
  add(SigKind::kLsuAddr, 0, 0, "core.lsu.addr", 64, SignalClass::kWire,
      false);
  add(SigKind::kLsuLoadData, 0, 0, "core.lsu.load_data", 64,
      SignalClass::kWire, false);
  // Pulse raised when a speculative load dereferences a tainted
  // (speculatively-loaded) address — the Spectre v1 gadget signature the
  // Vulnerability Detector keys on when the data cache is monitored.
  add(SigKind::kLsuTaintedAccess, 0, 0, "core.lsu.tainted_access", 1,
      SignalClass::kMicroarchitectural, true);
  return out;
}

SignalLayout signal_layout(const std::vector<SigDesc>& descs,
                           const CoreConfig& cfg) {
  SignalLayout lay;
  lay.signals = descs.size();
  bool have_rfx = false, have_csr = false, have_map = false, have_prf = false,
       have_pht = false, have_btb = false, have_ras = false, have_dc = false,
       have_tlb = false;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    switch (descs[i].kind) {
      case SigKind::kFetchPc: lay.fetch_pc = i; break;
      case SigKind::kRfX:
        if (!have_rfx) { lay.rfx = i; have_rfx = true; }
        break;
      case SigKind::kCsr:
        if (!have_csr) { lay.csr = i; have_csr = true; }
        break;
      case SigKind::kMapTable:
        if (!have_map) { lay.maptable = i; have_map = true; }
        break;
      case SigKind::kFreeCount: lay.freecount = i; break;
      case SigKind::kPrf:
        if (!have_prf) { lay.prf = i; have_prf = true; }
        break;
      case SigKind::kRobHead: lay.rob_head = i; break;
      case SigKind::kBpGhist: lay.bp_ghist = i; break;
      case SigKind::kBpPht:
        if (!have_pht) { lay.bp_pht = i; have_pht = true; }
        break;
      case SigKind::kBtbTag:
        if (!have_btb) { lay.btb = i; have_btb = true; }
        break;
      case SigKind::kRas:
        if (!have_ras) { lay.ras = i; have_ras = true; }
        break;
      case SigKind::kRasTop: lay.ras_top = i; break;
      case SigKind::kDcValid:
        if (!have_dc) { lay.dcache = i; have_dc = true; }
        break;
      case SigKind::kTlbValid:
        if (!have_tlb) { lay.tlb = i; have_tlb = true; }
        break;
      case SigKind::kExecResult: lay.exec_result = i; break;
      default: break;
    }
  }
  lay.dcache_set_stride = std::size_t{3} * cfg.dcache_ways + 1;
  lay.tlb_signals = std::size_t{3} * cfg.tlb_entries;

  // Validate every contiguity / interleaving assumption the dirty-set
  // marks rely on. A reordered describe_signals() must fail here, loudly,
  // not record a stale trace.
  auto expect = [&descs](std::size_t id, SigKind kind, const char* what) {
    if (id >= descs.size() || descs[id].kind != kind) {
      throw std::logic_error(std::string("signal_layout: ") + what +
                             " violates the describe_signals layout "
                             "contract (see ARCHITECTURE.md)");
    }
  };
  expect(lay.fetch_pc, SigKind::kFetchPc, "fetch_pc");
  for (std::size_t i = 0; i < 32; ++i) {
    expect(lay.rfx + i, SigKind::kRfX, "rf.x block");
    expect(lay.maptable + i, SigKind::kMapTable, "maptable block");
  }
  for (std::size_t i = 0; i < riscv::csr::kImplemented.size(); ++i) {
    expect(lay.csr + i, SigKind::kCsr, "csr block");
  }
  expect(lay.freecount, SigKind::kFreeCount, "freelist_count");
  for (std::size_t i = 0; i < cfg.phys_regs; ++i) {
    expect(lay.prf + i, SigKind::kPrf, "prf block");
  }
  static constexpr SigKind kRobBlock[12] = {
      SigKind::kRobHead,     SigKind::kRobTail,
      SigKind::kRobCount,    SigKind::kRobUnsafe,
      SigKind::kRobSpecPc,   SigKind::kRobSpecInst,
      SigKind::kBrupdValid,  SigKind::kBrupdMispredict,
      SigKind::kCommitValid, SigKind::kCommitPc,
      SigKind::kCommitInst,  SigKind::kCommitRd};
  for (std::size_t k = 0; k < 12; ++k) {
    expect(lay.rob_head + k, kRobBlock[k], "rob/commit block");
  }
  for (std::size_t i = 0; i < cfg.btb_entries; ++i) {
    expect(lay.btb + 2 * i, SigKind::kBtbTag, "btb tag/target interleave");
    expect(lay.btb + 2 * i + 1, SigKind::kBtbTarget,
           "btb tag/target interleave");
  }
  for (std::size_t i = 0; i < cfg.ras_entries; ++i) {
    expect(lay.ras + i, SigKind::kRas, "ras block");
  }
  expect(lay.ras_top, SigKind::kRasTop, "ras_top");
  for (std::size_t s = 0; s < cfg.dcache_sets; ++s) {
    const std::size_t base = lay.dcache + s * lay.dcache_set_stride;
    for (std::size_t w = 0; w < cfg.dcache_ways; ++w) {
      expect(base + 3 * w, SigKind::kDcValid, "dcache set block");
      expect(base + 3 * w + 1, SigKind::kDcTag, "dcache set block");
      expect(base + 3 * w + 2, SigKind::kDcData, "dcache set block");
    }
    expect(base + 3 * cfg.dcache_ways, SigKind::kDcLru, "dcache set block");
  }
  for (std::size_t i = 0; i < cfg.tlb_entries; ++i) {
    expect(lay.tlb + 3 * i, SigKind::kTlbValid, "tlb entry interleave");
    expect(lay.tlb + 3 * i + 1, SigKind::kTlbVpn, "tlb entry interleave");
    expect(lay.tlb + 3 * i + 2, SigKind::kTlbPpn, "tlb entry interleave");
  }
  static constexpr SigKind kWireBlock[4] = {
      SigKind::kExecResult, SigKind::kLsuAddr, SigKind::kLsuLoadData,
      SigKind::kLsuTaintedAccess};
  for (std::size_t k = 0; k < 4; ++k) {
    expect(lay.exec_result + k, kWireBlock[k], "exec/lsu wire block");
  }
  return lay;
}

std::vector<std::pair<std::string, std::string>> describe_flows(
    const CoreConfig& cfg) {
  std::vector<std::pair<std::string, std::string>> f;
  auto edge = [&f](std::string a, std::string b) {
    f.emplace_back(std::move(a), std::move(b));
  };
  const unsigned pht_words =
      (cfg.pht_entries + kPhtBitsPerWord - 1) / kPhtBitsPerWord;

  // Branch predictor <-> fetch.
  edge("core.bp.ghist", "core.fetch.spec_pc");
  for (unsigned i = 0; i < pht_words; ++i) {
    edge(idx_name("core.bp.pht", i), "core.fetch.spec_pc");
    edge("core.fetch.spec_pc", idx_name("core.bp.pht", i));
  }
  for (unsigned i = 0; i < cfg.btb_entries; ++i) {
    edge(idx_name("core.bp.btb_target", i), "core.fetch.spec_pc");
    edge(idx_name("core.bp.btb_tag", i), "core.fetch.spec_pc");
    edge("core.fetch.spec_pc", idx_name("core.bp.btb_tag", i));
    edge("core.exec.result", idx_name("core.bp.btb_target", i));
  }
  for (unsigned i = 0; i < cfg.ras_entries; ++i) {
    edge(idx_name("core.bp.ras", i), "core.fetch.spec_pc");
    edge("core.fetch.spec_pc", idx_name("core.bp.ras", i));
  }
  edge("core.bp.ras_top", "core.fetch.spec_pc");
  edge("core.fetch.spec_pc", "core.bp.ghist");
  edge("core.fetch.spec_pc", "core.bp.ras_top");

  // Fetch -> ROB window bookkeeping and the architectural PC.
  edge("core.fetch.spec_pc", "core.rob.spec_pc");
  edge("core.fetch.spec_pc", "core.rob.spec_inst");
  edge("core.fetch.spec_pc", "core.rob.unsafe");
  edge("core.fetch.spec_pc", "core.commit.pc");
  edge("core.rob.head", "core.commit.valid");
  edge("core.rob.head", "core.commit.pc");
  edge("core.rob.head", "core.commit.inst");
  edge("core.rob.head", "core.commit.rd");
  edge("core.rob.unsafe", "core.rob.brupdate_valid");
  edge("core.rob.unsafe", "core.rob.brupdate_mispredict");
  edge("core.rob.tail", "core.rob.count");
  edge("core.rob.head", "core.rob.count");
  edge("core.rob.spec_pc", "core.rob.brupdate_valid");

  // Execute datapath: PRF -> result bus -> PRF (ALU), plus CSR reads.
  for (unsigned i = 0; i < cfg.phys_regs; ++i) {
    edge("core.prf.p" + std::to_string(i), "core.exec.result");
    edge("core.exec.result", "core.prf.p" + std::to_string(i));
  }
  for (unsigned c = 0; c < riscv::csr::kImplemented.size(); ++c) {
    const std::string csr_sig =
        "core.csr." +
        std::string(riscv::csr::name(riscv::csr::kImplemented[c]));
    edge(csr_sig, "core.exec.result");       // CSR read
    edge("core.exec.result", csr_sig);       // commit-time CSR write
  }

  // Rename: map table selects which physical register backs each
  // architectural register; PRF data flows into the architectural view.
  for (unsigned i = 0; i < 32; ++i) {
    const std::string rf = "core.rf.x" + std::to_string(i);
    edge(idx_name("core.rename.maptable", i), rf);
    for (unsigned p = 0; p < cfg.phys_regs; ++p) {
      edge("core.prf.p" + std::to_string(p), rf);
    }
    edge("core.rename.freelist_count", idx_name("core.rename.maptable", i));
  }

  // LSU / D-cache: address from PRF; data from cache arrays.
  edge("core.exec.result", "core.lsu.addr");
  for (unsigned s = 0; s < cfg.dcache_sets; ++s) {
    for (unsigned w = 0; w < cfg.dcache_ways; ++w) {
      edge("core.lsu.addr", idx2_name("core.dcache.valid", s, w));
      edge("core.lsu.addr", idx2_name("core.dcache.tag", s, w));
      edge("core.lsu.addr", idx2_name("core.dcache.data", s, w));
      edge(idx2_name("core.dcache.data", s, w), "core.lsu.load_data");
      edge(idx2_name("core.dcache.valid", s, w), "core.lsu.load_data");
      edge(idx2_name("core.dcache.tag", s, w), "core.lsu.load_data");
      edge("core.lsu.addr", idx_name("core.dcache.lru", s));
    }
  }
  edge("core.lsu.load_data", "core.exec.result");
  edge("core.lsu.addr", "core.lsu.tainted_access");
  edge("core.lsu.load_data", "core.lsu.tainted_access");

  // TLB: indexed by address, translation feeds the address path.
  for (unsigned i = 0; i < cfg.tlb_entries; ++i) {
    edge("core.lsu.addr", idx_name("core.tlb.valid", i));
    edge("core.lsu.addr", idx_name("core.tlb.vpn", i));
    edge(idx_name("core.tlb.ppn", i), "core.lsu.addr");
    edge(idx_name("core.tlb.vpn", i), "core.lsu.addr");
  }

  // (M)WAIT emulation (§4.2): the data cache clears the mwait timer when
  // the monitored line changes — a direct microarchitectural->architectural
  // channel that exists only when the emulation is configured in.
  if (cfg.vuln.mwait_emulation) {
    for (unsigned s = 0; s < cfg.dcache_sets; ++s) {
      for (unsigned w = 0; w < cfg.dcache_ways; ++w) {
        edge(idx2_name("core.dcache.valid", s, w), "core.csr.mwait_timer");
        edge(idx2_name("core.dcache.tag", s, w), "core.csr.mwait_timer");
        edge(idx2_name("core.dcache.data", s, w), "core.csr.mwait_timer");
      }
    }
    edge("core.csr.monitor_addr", "core.csr.mwait_timer");
    edge("core.csr.mwait_en", "core.csr.mwait_timer");
  }
  // Zenbleed emulation (§4.2): zenbleed_en gates the map-table rollback,
  // so it controls (flows into) every map-table entry.
  if (cfg.vuln.zenbleed_emulation) {
    for (unsigned i = 0; i < 32; ++i) {
      edge("core.csr.zenbleed_en", idx_name("core.rename.maptable", i));
    }
  }
  return f;
}

ift::Ifg build_ifg(const CoreConfig& cfg) {
  ift::Ifg g;
  for (const auto& sig : describe_signals(cfg)) {
    ift::Role role = ift::Role::kWire;
    if (sig.cls == SignalClass::kArchitectural) {
      role = ift::Role::kArchitectural;
    } else if (sig.cls == SignalClass::kMicroarchitectural) {
      role = ift::Role::kMicroarchitectural;
    }
    g.add_node(sig.name, sig.width, sig.is_register, role);
  }
  for (const auto& [src, dst] : describe_flows(cfg)) {
    g.add_edge(src, dst);
  }
  return g;
}

std::string emit_structural_verilog(const CoreConfig& cfg) {
  const auto signals = describe_signals(cfg);
  const auto flows = describe_flows(cfg);

  // Flatten hierarchy with '$', the conventional separator in synthesized
  // netlists; the arch-register database splits on it when classifying.
  auto flat = [](std::string name) {
    for (char& c : name) {
      if (c == '.') c = '$';
    }
    return name;
  };

  // Group flows by destination.
  std::map<std::string, std::vector<std::string>> drivers;
  for (const auto& [src, dst] : flows) drivers[dst].push_back(src);

  std::ostringstream os;
  os << "// Structural model of MiniBOOM, generated by\n"
     << "// specure::sim::emit_structural_verilog. One reg/wire per signal;\n"
     << "// one always block per registered destination; XOR-reduction\n"
     << "// stands in for the actual next-state function (information flow\n"
     << "// is what matters for the offline phase, not the logic).\n";
  os << "module core(input clk);\n";
  for (const auto& sig : signals) {
    const unsigned msb = sig.width - 1;
    if (sig.is_register) {
      os << "  reg [" << msb << ":0] " << flat(sig.name) << ";\n";
    } else {
      os << "  wire [" << msb << ":0] " << flat(sig.name) << ";\n";
    }
  }
  for (const auto& sig : signals) {
    auto it = drivers.find(sig.name);
    if (it == drivers.end()) {
      // Undriven register: emit a self-hold so elaboration still sees a
      // state element (self-loops carry no flow).
      if (sig.is_register) {
        os << "  always @(posedge clk) " << flat(sig.name) << " <= "
           << flat(sig.name) << ";\n";
      }
      continue;
    }
    std::string rhs;
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (i != 0) rhs += " ^ ";
      rhs += flat(it->second[i]);
    }
    if (sig.is_register) {
      os << "  always @(posedge clk) " << flat(sig.name) << " <= " << rhs
         << ";\n";
    } else {
      os << "  assign " << flat(sig.name) << " = " << rhs << ";\n";
    }
  }
  os << "endmodule\n";
  return os.str();
}

}  // namespace specure::sim
