#include "sim/csr_file.hpp"

namespace specure::sim {

namespace csr = riscv::csr;

CsrFile::CsrFile(const CoreConfig& cfg) : cfg_(cfg) { reset(); }

void CsrFile::reset() {
  values_ = {};
  write(csr::kMisa, (1ULL << 63) | (1 << 8));  // RV64I
}

std::size_t CsrFile::index_of(std::uint16_t addr) const {
  for (std::size_t i = 0; i < csr::kImplemented.size(); ++i) {
    if (csr::kImplemented[i] == addr) return i;
  }
  return csr::kImplemented.size();
}

bool CsrFile::implemented(std::uint16_t addr) const {
  return index_of(addr) < csr::kImplemented.size();
}

std::uint64_t CsrFile::read(std::uint16_t addr) const {
  const std::size_t i = index_of(addr);
  return i < values_.size() ? values_[i] : 0;
}

void CsrFile::write(std::uint16_t addr, std::uint64_t value) {
  const std::size_t i = index_of(addr);
  if (i >= values_.size()) return;
  values_[i] = value;
  mark(i);
  if (addr == csr::kMwaitEn && cfg_.vuln.mwait_emulation && value != 0) {
    const std::size_t timer = index_of(csr::kMwaitTimer);
    values_[timer] = cfg_.mwait_timer_start;
    mark(timer);
  }
}

void CsrFile::tick() {
  if (!cfg_.vuln.mwait_emulation) return;
  if (values_[index_of(csr::kMwaitEn)] == 0) return;
  const std::size_t ti = index_of(csr::kMwaitTimer);
  std::uint64_t& timer = values_[ti];
  if (timer > 1) {
    --timer;
    mark(ti);
  } else if (timer == 0) {
    // Paper: "If the timer reaches zero, it is set to one" — the wake flag.
    timer = 1;
    mark(ti);
  }
}

void CsrFile::on_monitored_line_change() {
  if (!cfg_.vuln.mwait_emulation) return;
  if (values_[index_of(csr::kMwaitEn)] == 0) return;
  const std::size_t ti = index_of(csr::kMwaitTimer);
  values_[ti] = 0;
  mark(ti);
}

bool CsrFile::monitoring(std::uint64_t line_base, unsigned line_bytes) const {
  if (!cfg_.vuln.mwait_emulation) return false;
  if (read(csr::kMwaitEn) == 0) return false;
  const std::uint64_t monitored = read(csr::kMonitorAddr);
  return (monitored & ~static_cast<std::uint64_t>(line_bytes - 1)) ==
         line_base;
}

}  // namespace specure::sim
