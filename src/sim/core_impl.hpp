// The core's per-run execution engine, shared by core.cpp (detailed
// pipeline, checkpointing) and fast_tier.cpp (fast-functional prefix
// tier). Not part of the public API — include sim/core.hpp and drive a
// Simulator instead.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/core.hpp"
#include "sim/dirty_set.hpp"
#include "sim/fast_tier.hpp"
#include "util/bits.hpp"

namespace specure::sim::detail {

namespace csr = riscv::csr;
using riscv::DecodedInst;
using riscv::Op;

/// Evaluate an ALU/shift/compare/mul/div operation on resolved operands.
inline std::uint64_t eval_alu(const DecodedInst& d, std::uint64_t a,
                              std::uint64_t b) {
  const std::int64_t sa = static_cast<std::int64_t>(a);
  const std::int64_t sb = static_cast<std::int64_t>(b);
  auto sext32 = [](std::uint64_t v) {
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
  };
  switch (d.op) {
    case Op::kAddi: case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kSlti: case Op::kSlt: return sa < sb ? 1 : 0;
    case Op::kSltiu: case Op::kSltu: return a < b ? 1 : 0;
    case Op::kXori: case Op::kXor: return a ^ b;
    case Op::kOri: case Op::kOr: return a | b;
    case Op::kAndi: case Op::kAnd: return a & b;
    case Op::kSlli: case Op::kSll: return a << (b & 63);
    case Op::kSrli: case Op::kSrl: return a >> (b & 63);
    case Op::kSrai: case Op::kSra:
      return static_cast<std::uint64_t>(sa >> (b & 63));
    case Op::kAddiw: case Op::kAddw: return sext32(a + b);
    case Op::kSubw: return sext32(a - b);
    case Op::kSlliw: case Op::kSllw: return sext32(a << (b & 31));
    case Op::kSrliw: case Op::kSrlw:
      return sext32(static_cast<std::uint32_t>(a) >> (b & 31));
    case Op::kSraiw: case Op::kSraw:
      return sext32(static_cast<std::uint64_t>(
          static_cast<std::int32_t>(a) >> (b & 31)));
    case Op::kLui: return static_cast<std::uint64_t>(d.imm);
    case Op::kMul: return a * b;
    case Op::kMulh:
      return static_cast<std::uint64_t>(
          (static_cast<__int128>(sa) * static_cast<__int128>(sb)) >> 64);
    case Op::kDiv:
      if (b == 0) return ~0ULL;
      if (sa == INT64_MIN && sb == -1) return a;
      return static_cast<std::uint64_t>(sa / sb);
    case Op::kDivu: return b == 0 ? ~0ULL : a / b;
    case Op::kRem:
      if (b == 0) return a;
      if (sa == INT64_MIN && sb == -1) return 0;
      return static_cast<std::uint64_t>(sa % sb);
    case Op::kRemu: return b == 0 ? a : a % b;
    default: return 0;
  }
}

inline bool branch_taken(Op op, std::uint64_t a, std::uint64_t b) {
  const std::int64_t sa = static_cast<std::int64_t>(a);
  const std::int64_t sb = static_cast<std::int64_t>(b);
  switch (op) {
    case Op::kBeq: return a == b;
    case Op::kBne: return a != b;
    case Op::kBlt: return sa < sb;
    case Op::kBge: return sa >= sb;
    case Op::kBltu: return a < b;
    case Op::kBgeu: return a >= b;
    default: return false;
  }
}

inline std::uint64_t extend_load(Op op, std::uint64_t raw) {
  switch (op) {
    case Op::kLb: return static_cast<std::uint64_t>(util::sext(raw, 8));
    case Op::kLh: return static_cast<std::uint64_t>(util::sext(raw, 16));
    case Op::kLw: return static_cast<std::uint64_t>(util::sext(raw, 32));
    default: return raw;  // LD and the unsigned variants
  }
}

/// One core executing one program (cold, resumed from a Checkpoint, or
/// tiered: fast prefix + detailed remainder on the same state). Lives for
/// the duration of a Simulator::run / run_from / run_tiered call.
class Core {
 public:
  Core(const CoreConfig& cfg, const std::vector<SigDesc>& descs,
       const SignalLayout& layout, const snapshot::SignalDb& db,
       riscv::DecodedProgram& decode_buf)
      : cfg_(cfg),
        descs_(descs),
        layout_(layout),
        db_(db),
        bp_(cfg),
        csr_(cfg),
        rename_(cfg),
        tlb_(cfg),
        dcache_(cfg, mem_),
        rob_(cfg.rob_entries),
        prf_ready_(cfg.phys_regs, true),
        prf_taint_(cfg.phys_regs, false),
        decode_buf_(decode_buf) {
    dcache_.set_line_change_hook([this](std::uint64_t line, DcacheEvent ev) {
      on_cache_line_event(line, ev);
    });
    // Dirty-set capture engine: components mark the signal ids they write;
    // capture() re-records only those (plus the always-dirty base set).
    dirty_.init(descs_.size());
    // Base set — signals derived or (re)written unconditionally every
    // cycle: the fetch PC, the 12-signal ROB/pulse block (cursors, the
    // oldest-unsafe window view, the brupdate and commit pulses) and the
    // exec/LSU wire block (incl. the tainted_access pulse). begin_cycle()
    // clears the pulses and the window view follows the ROB scan, so no
    // single component can own their marks.
    dirty_.base_mark(layout_.fetch_pc);
    for (std::size_t k = 0; k < 12; ++k) dirty_.base_mark(layout_.rob_head + k);
    for (std::size_t k = 0; k < 4; ++k) {
      dirty_.base_mark(layout_.exec_result + k);
    }
    rename_.bind_dirty(&dirty_, layout_.maptable, layout_.freecount,
                       layout_.prf, layout_.rfx);
    csr_.bind_dirty(&dirty_, layout_.csr);
    bp_.bind_dirty(&dirty_, layout_.bp_ghist, layout_.bp_pht, layout_.btb,
                   layout_.ras, layout_.ras_top);
    dcache_.bind_dirty(&dirty_, layout_.dcache, layout_.dcache_set_stride);
    tlb_.bind_dirty(&dirty_, layout_.tlb);
  }

  /// Cold run, optionally emitting resume checkpoints.
  void run(const riscv::Program& program, RunResult& res,
           const CheckpointOptions* ck, std::vector<Checkpoint>* out,
           const riscv::DecodedProgram* predecoded = nullptr) {
    res.reset();
    if (cfg_.record_dense_trace) {
      res.dense_trace = std::make_unique<snapshot::DenseTrace>(&db_);
    }
    mem_.load(program);
    set_decode(program, predecoded);
    fetch_pc_ = riscv::kCodeBase;
    loop(res, ck, out);
    finish(res);
  }

  /// Tiered cold run: execute the prefix up to `handoff_index` in the
  /// fast tier, then continue the detailed pipeline on the same state —
  /// bit-identical to run(). Index 0 falls back to a pure detailed run;
  /// an index at or past the code length means the whole run (including
  /// the end-of-program trap) stays in the fast tier. The caller decides
  /// the handoff policy (fuzz::handoff_index); the index is defensively
  /// re-clamped here to the first op the fast tier cannot execute.
  void run_tiered(const riscv::Program& program, std::size_t handoff_index,
                  RunResult& res, const CheckpointOptions* ck,
                  std::vector<Checkpoint>* out, TierStats* stats,
                  const riscv::DecodedProgram* predecoded = nullptr,
                  TierPhaseTimes* phases = nullptr) {
    res.reset();
    mem_.load(program);
    set_decode(program, predecoded);
    fetch_pc_ = riscv::kCodeBase;
    const std::size_t idx =
        std::min(handoff_index, fast_handoff_scan(*decoded_, false));
    if (phases != nullptr) phases->handoff_index = idx;
    if (idx == 0) {
      if (stats != nullptr) ++stats->fallbacks;
      loop(res, ck, out);
      finish(res);
      return;
    }
    if (stats != nullptr) ++stats->fast_runs;
    if (phases != nullptr) {
      phases->entered_fast = true;
      phases->fast_begin = std::chrono::steady_clock::now();
    }
    const std::uint64_t fast_from = cycle_;
    const FastExit exit = fast_loop(handoff_pc_of(idx), res);
    if (stats != nullptr) stats->fast_cycles += cycle_ - fast_from;
    if (phases != nullptr) phases->fast_end = std::chrono::steady_clock::now();
    if (exit == FastExit::kHandoff) {
      if (stats != nullptr) ++stats->handoffs;
      // The detailed loop continues on this very core state — the
      // handoff is zero-copy; no checkpoint materialization needed.
      loop(res, ck, out);
      if (phases != nullptr) {
        phases->continued_detailed = true;
        phases->detailed_end = std::chrono::steady_clock::now();
      }
    } else if (stats != nullptr) {
      ++stats->fast_completions;
    }
    finish(res);
  }

  /// Fast prefix only: stop at the handoff boundary and materialize it as
  /// a Checkpoint exactly like push_checkpoint would — the proof surface
  /// that the boundary is a CoreState-compatible snapshot the detailed
  /// run_from path can resume (tests drive run_from(boundary, ...)).
  FastPrefixOutcome run_fast_prefix(const riscv::Program& program,
                                    std::size_t handoff_index, RunResult& res,
                                    Checkpoint& boundary, TierStats* stats) {
    res.reset();
    mem_.load(program);
    set_decode(program, nullptr);
    fetch_pc_ = riscv::kCodeBase;
    const std::size_t idx =
        std::min(handoff_index, fast_handoff_scan(*decoded_, false));
    if (idx == 0) return FastPrefixOutcome::kNone;
    if (stats != nullptr) ++stats->fast_runs;
    const std::uint64_t fast_from = cycle_;
    const FastExit exit = fast_loop(handoff_pc_of(idx), res);
    if (stats != nullptr) stats->fast_cycles += cycle_ - fast_from;
    if (exit == FastExit::kDone) {
      if (stats != nullptr) ++stats->fast_completions;
      finish(res);
      return FastPrefixOutcome::kCompleted;
    }
    if (stats != nullptr) ++stats->handoffs;
    save_state(boundary.state);
    boundary.cycle = cycle_;
    boundary.fetch_watermark = fetch_watermark_;
    boundary.commit_count = res.commits.size();
    boundary.instructions_committed = res.instructions_committed;
    boundary.coverage = res.coverage;
    res.cycles = cycle_;
    return FastPrefixOutcome::kHandoff;
  }

  /// Resume `program` from a checkpoint of its parent. The caller
  /// (Simulator::run_from) has already seeded `res` with the prefix
  /// trace, commits, coverage and instruction count.
  void resume(const Checkpoint& cp, const riscv::Program& program,
              RunResult& res) {
    restore_state(cp.state);
    // The restored memory is the parent's image at the checkpoint cycle;
    // only the code differs between parent and child below the fetch
    // watermark contract, so patching the code image suffices.
    mem_.set_code(program.code);
    set_decode(program, nullptr);
    loop(res, nullptr, nullptr);
    finish(res);
  }

 private:
  void loop(RunResult& res, const CheckpointOptions* ck,
            std::vector<Checkpoint>* out) {
    // Checkpoint cadence: geometric at first (the fetch watermark races
    // through the program in the earliest cycles, so late saves there
    // would skip the low-watermark states mutants actually resume from),
    // then steady every `interval` cycles. A tiered run enters here at
    // the handoff cycle, so the geometric ramp restarts at the boundary.
    std::uint64_t gap =
        ck != nullptr ? std::min<std::uint64_t>(8, ck->interval) : 0;
    std::uint64_t next_save = cycle_ + gap;
    while (!halted_ && cycle_ < cfg_.max_cycles) {
      ++cycle_;
      begin_cycle();
      retire(res);
      execute_and_resolve(res);
      issue(res);
      csr_.tick();
      capture(res);
      // The end-of-run probe below observes the code image via
      // fetch_word(), so a checkpoint saved after it has the probe's
      // index folded into its watermark — resume re-evaluates the probe
      // on the child's image and cannot diverge.
      if (rob_count_ == 0 && fetch_done()) break;
      if (ck != nullptr && cycle_ >= next_save) {
        if (!halted_) push_checkpoint(*ck, *out, res);
        gap = std::min(gap * 2, ck->interval);
        next_save = cycle_ + gap;
      }
    }
  }

  /// Shared run epilogue (loop exit or fast-tier completion).
  void finish(RunResult& res) {
    res.cycles = cycle_;
    res.halted_clean = halted_ || (rob_count_ == 0 && fetch_done());
    res.final_data = mem_.data_image();
  }

  // ------------------------------------------------------------ helpers --
  unsigned rob_next(unsigned i) const {
    return (i + 1) % static_cast<unsigned>(rob_.size());
  }
  bool rob_full() const { return rob_count_ == rob_.size(); }

  /// Every instruction-memory observation funnels through here so the
  /// fetch watermark (max code word index the run has depended on) stays
  /// exact — it is what bounds checkpoint reuse for mutated programs.
  /// The index is clamped to the image length: a beyond-image fetch
  /// (wrong-path jump to garbage) observes only (word = 0, index >=
  /// length), which fuzz::first_divergence already accounts for by
  /// capping the divergence at the shorter length when lengths differ —
  /// so such probes must not disqualify in-image prefix reuse.
  std::uint32_t fetch_word(std::uint64_t pc) {
    if (pc >= riscv::kCodeBase) {
      const std::uint64_t index = std::min<std::uint64_t>(
          (pc - riscv::kCodeBase) / 4, mem_.code_words());
      if (index > fetch_watermark_) fetch_watermark_ = index;
    }
    return mem_.fetch(pc);
  }

  bool fetch_done() {
    return fetch_word(fetch_pc_) == 0 && fetch_pc_ >= riscv::kCodeBase &&
           (fetch_pc_ - riscv::kCodeBase) / 4 >= mem_.code_words();
  }

  // --------------------------------------------------------- decode cache --
  /// Point the fetch path at a per-program DecodedInst array: the
  /// caller's predecoded program when provided (decoded once per worker),
  /// else the simulator's scratch buffer, rebuilt for this program. The
  /// fetch path then reads DecodedInsts by index instead of re-decoding
  /// the same word every cycle (stalled issues re-enter issue() each
  /// cycle).
  void set_decode(const riscv::Program& program,
                  const riscv::DecodedProgram* predecoded) {
    if (predecoded != nullptr) {
      decoded_ = &predecoded->insts;
      return;
    }
    decode_buf_.build(program.code);
    decoded_ = &decode_buf_.insts;
  }

  const DecodedInst& decode_at(std::uint64_t pc, std::uint32_t word) {
    if (pc >= riscv::kCodeBase && (pc & 3) == 0) {
      const std::uint64_t index = (pc - riscv::kCodeBase) / 4;
      if (index < decoded_->size()) return (*decoded_)[index];
    }
    // Off-image or misaligned fetch: `word` is 0 there (Memory::fetch),
    // identical to the pre-cache decode(0) path.
    scratch_dec_ = riscv::decode(word);
    return scratch_dec_;
  }

  /// PC of the handoff instruction; 0 (never fetched) when the index is
  /// at or past the code length, so the fast tier runs the end-of-program
  /// trap itself instead of handing off at the fall-off PC.
  std::uint64_t handoff_pc_of(std::size_t idx) const {
    if (idx >= decoded_->size()) return 0;
    return riscv::kCodeBase + 4 * static_cast<std::uint64_t>(idx);
  }

  // --------------------------------------------------------- checkpoints --
  void save_state(CoreState& s) const {
    mem_.save(s.mem);
    bp_.save(s.bp);
    csr_.save(s.csr);
    rename_.save(s.rename);
    tlb_.save(s.tlb);
    dcache_.save(s.dcache);
    s.rob = rob_;
    s.rob_head = rob_head_;
    s.rob_tail = rob_tail_;
    s.rob_count = rob_count_;
    s.seq = seq_;
    s.prf_ready = prf_ready_;
    s.prf_taint = prf_taint_;
    s.fetch_pc = fetch_pc_;
    s.cycle = cycle_;
    s.halted = halted_;
    s.fetch_stalled = fetch_stalled_;
    s.fetch_watermark = fetch_watermark_;
    s.brupdate_valid = brupdate_valid_;
    s.brupdate_mispredict = brupdate_mispredict_;
    s.commit_valid = commit_valid_;
    s.commit_pc = commit_pc_;
    s.commit_inst = commit_inst_;
    s.commit_rd = commit_rd_;
    s.tainted_access = tainted_access_;
    s.exec_result = exec_result_;
    s.lsu_addr = lsu_addr_;
    s.lsu_load_data = lsu_load_data_;
  }

  void restore_state(const CoreState& s) {
    mem_.restore(s.mem);
    bp_.restore(s.bp);
    csr_.restore(s.csr);
    rename_.restore(s.rename);
    tlb_.restore(s.tlb);
    dcache_.restore(s.dcache);
    rob_ = s.rob;
    rob_head_ = s.rob_head;
    rob_tail_ = s.rob_tail;
    rob_count_ = s.rob_count;
    seq_ = s.seq;
    prf_ready_ = s.prf_ready;
    prf_taint_ = s.prf_taint;
    fetch_pc_ = s.fetch_pc;
    cycle_ = s.cycle;
    halted_ = s.halted;
    fetch_stalled_ = s.fetch_stalled;
    fetch_watermark_ = s.fetch_watermark;
    brupdate_valid_ = s.brupdate_valid;
    brupdate_mispredict_ = s.brupdate_mispredict;
    commit_valid_ = s.commit_valid;
    commit_pc_ = s.commit_pc;
    commit_inst_ = s.commit_inst;
    commit_rd_ = s.commit_rd;
    tainted_access_ = s.tainted_access;
    exec_result_ = s.exec_result;
    lsu_addr_ = s.lsu_addr;
    lsu_load_data_ = s.lsu_load_data;
    unsafe_count_ = count_unsafe();
  }

  void push_checkpoint(const CheckpointOptions& opt,
                       std::vector<Checkpoint>& out, const RunResult& res) {
    Checkpoint cp;
    save_state(cp.state);
    cp.cycle = cycle_;
    cp.fetch_watermark = fetch_watermark_;
    cp.commit_count = res.commits.size();
    cp.instructions_committed = res.instructions_committed;
    cp.coverage = res.coverage;
    if (!out.empty() && out.back().fetch_watermark == fetch_watermark_) {
      // Same watermark plateau (e.g. a loop spinning below it): a later
      // cycle strictly dominates, so overwrite instead of accumulating.
      out.back() = std::move(cp);
      return;
    }
    if (out.size() >= opt.max_checkpoints) {
      // At capacity on a new plateau: thin the densest region (smallest
      // cycle gap to its predecessor) instead of dropping the new, deep
      // point — late resume points are the ones that skip the most work.
      std::size_t victim = 1;
      std::uint64_t best_gap = ~std::uint64_t{0};
      for (std::size_t i = 1; i < out.size(); ++i) {
        const std::uint64_t gap = out[i].cycle - out[i - 1].cycle;
        if (gap < best_gap) {
          best_gap = gap;
          victim = i;
        }
      }
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    out.push_back(std::move(cp));
  }

  bool store_overlap(std::uint64_t addr, unsigned size) const {
    for (const auto& e : rob_) {
      if (!e.valid || e.squashed || !e.is_store) continue;
      if (addr < e.mem_addr + e.mem_size && e.mem_addr < addr + size) {
        return true;
      }
    }
    return false;
  }

  /// O(1) open-window test: unsafe_count_ counts ROB entries with
  /// (valid && unsafe && !resolved && !squashed) — incremented at
  /// branch/JALR issue, decremented on resolve and on squash-release,
  /// recomputed on restore. It gates the per-cycle oldest_unsafe() scan,
  /// which otherwise ran O(rob) even with no window open.
  bool any_unsafe() const { return unsafe_count_ != 0; }

  unsigned count_unsafe() const {
    unsigned n = 0;
    for (const auto& e : rob_) {
      if (e.valid && e.unsafe && !e.resolved && !e.squashed) ++n;
    }
    return n;
  }

  const RobEntry* oldest_unsafe() const {
    const RobEntry* best = nullptr;
    for (const auto& e : rob_) {
      if (e.valid && e.unsafe && !e.resolved && !e.squashed) {
        if (best == nullptr || e.seq < best->seq) best = &e;
      }
    }
    return best;
  }

  void on_cache_line_event(std::uint64_t line, DcacheEvent ev) {
    if (ev == DcacheEvent::kHit) return;
    if (csr_.monitoring(line, cfg_.dcache_line_bytes)) {
      csr_.on_monitored_line_change();
    }
  }

  // ------------------------------------------------------------- stages --
  void begin_cycle() {
    brupdate_valid_ = false;
    brupdate_mispredict_ = false;
    commit_valid_ = false;
    commit_inst_ = 0;
    commit_rd_ = 0;
    tainted_access_ = false;
  }

  void retire(RunResult& res) {
    for (unsigned n = 0; n < cfg_.retire_width; ++n) {
      if (rob_count_ == 0) return;
      RobEntry& head = rob_[rob_head_];
      if (!head.valid || !head.done) return;
      if (head.is_ctrl && !head.resolved) return;
      if (!head.squashed) {
        commit(head, res);
        if (halted_) return;
      }
      head.valid = false;
      rob_head_ = rob_next(rob_head_);
      --rob_count_;
    }
  }

  void commit(RobEntry& e, RunResult& res) {
    CommitRecord rec;
    rec.cycle = cycle_;
    rec.pc = e.pc;
    rec.inst = e.dec.raw;
    if (e.writes_rd && e.dec.rd != 0) {
      rename_.commit_free(e.old_phys);
      rec.writes_rd = true;
      rec.rd = e.dec.rd;
    }
    if (e.is_store) {
      dcache_.store(e.mem_addr, e.mem_size, e.store_value);
      rec.is_store = true;
      rec.store_addr = e.mem_addr;
      res.coverage.branch("lsu.store_mapped",
                          mem_.data_mapped(e.mem_addr, e.mem_size));
    }
    if (e.writes_csr) {
      csr_.write(e.csr_addr, e.csr_wval);
      rec.writes_csr = true;
      rec.csr = e.csr_addr;
    }
    if (e.is_halt) halted_ = true;
    commit_valid_ = true;
    commit_pc_ = e.pc;
    commit_inst_ = e.dec.raw;
    commit_rd_ = e.writes_rd ? e.dec.rd : 0;
    ++res.instructions_committed;
    res.commits.push_back(rec);
  }

  void execute_and_resolve(RunResult& res) {
    // Oldest-first scan so an older misprediction squashes younger work
    // before that work writes back.
    std::vector<RobEntry*> order;
    for (auto& e : rob_) {
      if (e.valid && !e.done) order.push_back(&e);
    }
    std::sort(order.begin(), order.end(),
              [](const RobEntry* a, const RobEntry* b) { return a->seq < b->seq; });
    for (RobEntry* e : order) {
      if (e->squashed || e->done) continue;
      if (cycle_ < e->ready_cycle) continue;
      if (e->is_ctrl) {
        resolve_control(*e, res);
      } else {
        writeback(*e);
      }
    }
  }

  void writeback(RobEntry& e) {
    if (e.writes_rd && e.dec.rd != 0) {
      rename_.prf_write(e.new_phys, e.result);
      prf_ready_[e.new_phys] = true;
      prf_taint_[e.new_phys] = e.result_tainted;
      exec_result_ = e.result;
    }
    e.done = true;
  }

  void resolve_control(RobEntry& e, RunResult& res) {
    e.resolved = true;
    e.done = true;
    if (e.unsafe) --unsafe_count_;
    brupdate_valid_ = true;
    e.mispredicted = e.actual_next != e.pred_next;
    res.coverage.branch("rob.resolve_mispredict", e.mispredicted);

    // Train the predictor with the true outcome (wrong-path training of
    // other branches already happened — and persists: the v2 surface).
    if (riscv::is_branch(e.dec.op)) {
      bp_.update_branch(e.pc, e.actual_taken,
                        e.pc + static_cast<std::uint64_t>(e.dec.imm));
    } else {
      bp_.update_indirect(e.pc, e.actual_next);
    }
    if (e.writes_rd && e.dec.rd != 0) {
      rename_.prf_write(e.new_phys, e.result);
      prf_ready_[e.new_phys] = true;
      prf_taint_[e.new_phys] = false;
    }
    if (!e.mispredicted) {
      rename_.release_checkpoint(entry_slot(e));
      return;
    }
    brupdate_mispredict_ = true;
    const bool suppress = cfg_.vuln.zenbleed_emulation &&
                          csr_.read(csr::kZenbleedEn) != 0;
    res.coverage.condition("rename.rollback_suppressed", suppress);
    squash_younger(e.seq, suppress);
    rename_.rollback(entry_slot(e), suppress);
    fetch_pc_ = e.actual_next;
    fetch_stalled_ = false;  // a wrong-path trap no longer blocks fetch
  }

  void squash_younger(std::uint64_t branch_seq, bool suppress) {
    for (auto& e : rob_) {
      if (!e.valid || e.squashed || e.seq <= branch_seq) continue;
      e.squashed = true;
      e.done = true;
      if (e.unsafe && !e.resolved) {
        rename_.release_checkpoint(entry_slot(e));
        e.resolved = true;
        --unsafe_count_;
      }
      if (e.writes_rd && e.dec.rd != 0) {
        if (!suppress) {
          rename_.squash_free(e.new_phys);
        }
        // The register must not wedge consumers that already renamed it.
        prf_ready_[e.new_phys] = true;
      }
    }
  }

  void issue(RunResult& res) {
    if (halted_ || rob_full() || fetch_stalled_) return;
    const std::uint32_t word = fetch_word(fetch_pc_);
    const DecodedInst& dec = decode_at(fetch_pc_, word);
    res.coverage.branch("decode.valid", dec.valid());

    if (!dec.valid()) {
      // Illegal instruction: occupies a slot; committing one halts the
      // core (trap model). Wrong-path illegals get squashed as usual.
      // Fetch must not run past a pending trap.
      RobEntry& e = alloc_entry(dec);
      e.ready_cycle = cycle_ + 1;
      e.is_halt = true;
      fetch_stalled_ = true;
      return;
    }

    // Serializing instructions (CSR/FENCE/ECALL/EBREAK) issue alone.
    const bool serializing = riscv::is_csr(dec.op) || dec.op == Op::kFence ||
                             dec.op == Op::kEcall || dec.op == Op::kEbreak;
    if (serializing && rob_count_ != 0) return;  // stall until drained

    // Source readiness (in-order issue stalls on RAW hazards).
    const bool needs_rs1 = uses_rs1(dec);
    const bool needs_rs2 = uses_rs2(dec);
    const PhysReg p1 = rename_.map(dec.rs1);
    const PhysReg p2 = rename_.map(dec.rs2);
    if ((needs_rs1 && !prf_ready_[p1]) || (needs_rs2 && !prf_ready_[p2])) {
      return;  // stall
    }
    const std::uint64_t v1 = dec.rs1 == 0 ? 0 : rename_.prf(p1);
    const std::uint64_t v2 = dec.rs2 == 0 ? 0 : rename_.prf(p2);
    const bool t1 = dec.rs1 != 0 && prf_taint_[p1];
    const bool t2 = dec.rs2 != 0 && prf_taint_[p2];

    // Store-to-load hazard: loads wait for older in-flight stores to the
    // same bytes to drain (memory is updated at commit).
    if (riscv::is_load(dec.op) &&
        store_overlap(v1 + static_cast<std::uint64_t>(dec.imm),
                      riscv::access_size(dec.op))) {
      return;  // stall
    }

    const bool in_window = any_unsafe();
    RobEntry& e = alloc_entry(dec);

    switch (riscv::format_of(dec.op)) {
      case riscv::Format::kR:
      case riscv::Format::kU:
        issue_alu(e, v1, v2, t1 || t2);
        break;
      case riscv::Format::kI:
        if (riscv::is_load(dec.op)) {
          issue_load(e, v1, t1, in_window, res);
        } else if (dec.op == Op::kJalr) {
          issue_jalr(e, v1);
        } else {
          issue_alu(e, v1, static_cast<std::uint64_t>(dec.imm), t1);
        }
        break;
      case riscv::Format::kS:
        issue_store(e, v1, v2, res);
        break;
      case riscv::Format::kB:
        issue_branch(e, v1, v2, res);
        break;
      case riscv::Format::kJ:
        issue_jal(e);
        break;
      case riscv::Format::kCsr:
      case riscv::Format::kCsrImm:
        issue_csr(e, v1, res);
        break;
      case riscv::Format::kSys:
        e.ready_cycle = cycle_ + 1;
        e.is_halt = dec.op == Op::kEcall || dec.op == Op::kEbreak;
        if (e.is_halt) {
          fetch_stalled_ = true;  // fetch must not run past a pending trap
        } else {
          fetch_pc_ += 4;
        }
        break;
    }
  }

  RobEntry& alloc_entry(const DecodedInst& dec) {
    RobEntry& e = rob_[rob_tail_];
    e = RobEntry{};
    e.valid = true;
    e.seq = ++seq_;
    e.pc = fetch_pc_;
    e.dec = dec;
    rob_tail_ = rob_next(rob_tail_);
    ++rob_count_;
    return e;
  }

  void allocate_rd(RobEntry& e) {
    if (e.dec.rd == 0) return;
    PhysReg np = 0, op = 0;
    if (!rename_.allocate(e.dec.rd, np, op)) {
      // Free list exhausted (possible after heavy Zenbleed leakage):
      // degrade to a no-op write so the pipeline cannot deadlock.
      return;
    }
    e.writes_rd = true;
    e.new_phys = np;
    e.old_phys = op;
    prf_ready_[np] = false;
  }

  void issue_alu(RobEntry& e, std::uint64_t a, std::uint64_t b, bool taint) {
    allocate_rd(e);
    e.result = eval_alu(e.dec, a, b);
    if (e.dec.op == Op::kAuipc) {
      e.result = e.pc + static_cast<std::uint64_t>(e.dec.imm);
    }
    e.result_tainted = taint;
    unsigned latency = 1;
    if (e.dec.op == Op::kMul || e.dec.op == Op::kMulh) latency = cfg_.mul_latency;
    if (e.dec.op == Op::kDiv || e.dec.op == Op::kDivu ||
        e.dec.op == Op::kRem || e.dec.op == Op::kRemu) {
      latency = cfg_.div_latency;
    }
    e.ready_cycle = cycle_ + latency;
    exec_result_ = e.result;
    fetch_pc_ += 4;
  }

  void issue_load(RobEntry& e, std::uint64_t base, bool addr_taint,
                  bool in_window, RunResult& res) {
    allocate_rd(e);
    const std::uint64_t va = base + static_cast<std::uint64_t>(e.dec.imm);
    std::uint64_t pa = va;
    const bool tlb_hit = tlb_.translate(va, pa);
    res.coverage.branch("tlb.hit", tlb_hit);
    lsu_addr_ = pa;
    e.mem_addr = pa;
    e.mem_size = riscv::access_size(e.dec.op);

    // The cache access happens NOW — speculatively. Fills and evictions
    // caused here persist even if this load is squashed.
    std::uint64_t raw = 0;
    const bool hit = dcache_.load(pa, e.mem_size, raw);
    res.coverage.branch("dcache.hit", hit);
    res.coverage.fsm("dcache.state", hit ? 0 : 1);
    lsu_load_data_ = raw;
    e.result = extend_load(e.dec.op, raw);
    // Taint: speculatively loaded data, or data reached through a tainted
    // (speculative-load-derived) address — the Spectre gadget signature.
    e.result_tainted = in_window;
    if (addr_taint && in_window) {
      tainted_access_ = true;
      res.coverage.condition("lsu.tainted_spec_access", true);
    }
    e.ready_cycle =
        cycle_ + (hit ? cfg_.load_hit_latency : cfg_.load_miss_latency);
    fetch_pc_ += 4;
  }

  void issue_store(RobEntry& e, std::uint64_t base, std::uint64_t value,
                   RunResult& res) {
    const std::uint64_t va = base + static_cast<std::uint64_t>(e.dec.imm);
    std::uint64_t pa = va;
    const bool tlb_hit = tlb_.translate(va, pa);
    res.coverage.branch("tlb.hit", tlb_hit);
    lsu_addr_ = pa;
    e.is_store = true;
    e.mem_addr = pa;
    e.mem_size = riscv::access_size(e.dec.op);
    e.store_value = value;
    e.ready_cycle = cycle_ + 1;  // memory effect deferred to commit
    fetch_pc_ += 4;
  }

  void issue_branch(RobEntry& e, std::uint64_t a, std::uint64_t b,
                    RunResult& res) {
    const Prediction pred = bp_.predict_branch(e.pc);
    res.coverage.branch("bp.pred_taken", pred.taken);
    const std::uint64_t taken_target =
        e.pc + static_cast<std::uint64_t>(e.dec.imm);
    e.is_ctrl = true;
    e.unsafe = true;
    ++unsafe_count_;
    e.pred_taken = pred.taken;
    e.pred_next = pred.taken ? taken_target : e.pc + 4;
    e.actual_taken = branch_taken(e.dec.op, a, b);
    e.actual_next = e.actual_taken ? taken_target : e.pc + 4;
    e.ready_cycle = cycle_ + cfg_.branch_resolve_latency;
    rename_.checkpoint(entry_slot(e));
    fetch_pc_ = e.pred_next;
  }

  void issue_jal(RobEntry& e) {
    allocate_rd(e);
    e.result = e.pc + 4;
    e.ready_cycle = cycle_ + 1;
    if (e.dec.rd == 1) bp_.ras_push(e.pc + 4);
    fetch_pc_ = e.pc + static_cast<std::uint64_t>(e.dec.imm);
  }

  void issue_jalr(RobEntry& e, std::uint64_t base) {
    allocate_rd(e);
    e.result = e.pc + 4;
    e.is_ctrl = true;
    e.unsafe = true;
    ++unsafe_count_;
    e.actual_next = (base + static_cast<std::uint64_t>(e.dec.imm)) & ~1ULL;
    // Return prediction via RAS; other indirects via BTB; fall back to +4.
    std::uint64_t predicted = e.pc + 4;
    if (e.dec.rd == 0 && e.dec.rs1 == 1) {
      const std::uint64_t ras = bp_.ras_pop();
      if (ras != 0) predicted = ras;
    } else {
      const Prediction pred = bp_.predict_indirect(e.pc);
      if (pred.btb_hit) predicted = pred.target;
    }
    e.pred_next = predicted;
    e.ready_cycle = cycle_ + cfg_.jalr_resolve_latency;
    rename_.checkpoint(entry_slot(e));
    if (e.dec.rd == 1) bp_.ras_push(e.pc + 4);
    fetch_pc_ = e.pred_next;
  }

  void issue_csr(RobEntry& e, std::uint64_t rs1_value, RunResult& res) {
    allocate_rd(e);
    const std::uint64_t old = csr_.read(e.dec.csr);
    res.coverage.condition("csr.implemented", csr_.implemented(e.dec.csr));
    e.result = old;
    const std::uint64_t operand =
        riscv::format_of(e.dec.op) == riscv::Format::kCsrImm
            ? e.dec.zimm
            : rs1_value;
    bool write = false;
    std::uint64_t next = old;
    switch (e.dec.op) {
      case Op::kCsrrw: case Op::kCsrrwi:
        next = operand;
        write = true;
        break;
      case Op::kCsrrs: case Op::kCsrrsi:
        next = old | operand;
        write = operand != 0;
        break;
      case Op::kCsrrc: case Op::kCsrrci:
        next = old & ~operand;
        write = operand != 0;
        break;
      default: break;
    }
    if (write && csr_.implemented(e.dec.csr)) {
      e.writes_csr = true;
      e.csr_addr = e.dec.csr;
      e.csr_wval = next;
    }
    e.ready_cycle = cycle_ + 1;
    fetch_pc_ += 4;
  }

  static bool uses_rs1(const DecodedInst& d) {
    switch (riscv::format_of(d.op)) {
      case riscv::Format::kR: case riscv::Format::kS: case riscv::Format::kB:
        return true;
      case riscv::Format::kI:
        return true;
      case riscv::Format::kCsr:
        return true;
      default:
        return false;
    }
  }
  static bool uses_rs2(const DecodedInst& d) {
    switch (riscv::format_of(d.op)) {
      case riscv::Format::kR: case riscv::Format::kS: case riscv::Format::kB:
        return true;
      default:
        return false;
    }
  }

  // ----------------------------------------------------------- snapshot --
  /// Per-cycle trace capture, shared by the detailed loop and the fast
  /// tier. Delta-native recording: each recorded signal is compared
  /// against the trace's live previous-value array and stored only as a
  /// (cycle, signal, value) change event; toggle coverage falls out of
  /// the same comparison.
  ///
  /// The hot (non-dense) path walks only the dirty set — the signal ids
  /// components marked as written this cycle plus the always-dirty base
  /// set — instead of sweeping all ~300 schema signals. A conservative
  /// superset dirty set is exact: re-recording an unchanged value appends
  /// no event, so the stream is byte-identical to a full sweep as long as
  /// every signal that DID change is marked (the component author's
  /// obligation, see ARCHITECTURE.md). The first captured tick seeds the
  /// live array with a full sweep; a checkpoint-resumed run needs no such
  /// reseed because fork_into reconstructed the live array to exactly the
  /// restored CoreState's values, and the resumed cycle's own marks cover
  /// everything it mutates from there.
  void capture(RunResult& res) {
    const bool first = res.trace.empty();
    res.trace.begin_cycle(cycle_);
    const RobEntry* spec = unsafe_count_ != 0 ? oldest_unsafe() : nullptr;
    if (res.dense_trace) {
      // Dense-reference path (differential suite only): the oracle needs
      // every signal's value, so the full sweep — and the per-cycle
      // Snapshot materialization — live here, off the hot path.
      snapshot::Snapshot dense;
      dense.cycle = cycle_;
      dense.values.resize(descs_.size());
      std::uint64_t toggles = 0;
      for (std::size_t i = 0; i < descs_.size(); ++i) {
        const std::uint64_t v = value_of(descs_[i], spec);
        toggles += res.trace.record(static_cast<snapshot::SignalId>(i), v);
        dense.values[i] = v;
      }
      if (!first) res.coverage.toggles(toggles);
      res.dense_trace->push(std::move(dense));
    } else if (first) {
      for (std::size_t i = 0; i < descs_.size(); ++i) {
        res.trace.record(static_cast<snapshot::SignalId>(i),
                         value_of(descs_[i], spec));
      }
    } else {
      const std::uint64_t toggles = res.trace.record_dirty(
          dirty_.words(),
          [this, spec](std::size_t id) { return value_of(descs_[id], spec); });
      res.coverage.toggles(toggles);
    }
    dirty_.reset_to_base();
  }

  std::uint64_t value_of(const SigDesc& d, const RobEntry* spec) const {
    switch (d.kind) {
      case SigKind::kFetchPc: return fetch_pc_;
      case SigKind::kRfX: return rename_.arch_value(d.i);
      case SigKind::kCsr: return csr_.value_at(d.i);
      case SigKind::kMapTable: return rename_.maptable_raw(d.i);
      case SigKind::kFreeCount: return rename_.free_count();
      case SigKind::kPrf: return rename_.prf(static_cast<PhysReg>(d.i));
      case SigKind::kRobHead: return rob_head_;
      case SigKind::kRobTail: return rob_tail_;
      case SigKind::kRobCount: return rob_count_;
      case SigKind::kRobUnsafe: return spec != nullptr;
      case SigKind::kRobSpecPc: return spec ? spec->pc : 0;
      case SigKind::kRobSpecInst: return spec ? spec->dec.raw : 0;
      case SigKind::kBrupdValid: return brupdate_valid_;
      case SigKind::kBrupdMispredict: return brupdate_mispredict_;
      case SigKind::kCommitValid: return commit_valid_;
      case SigKind::kCommitPc: return commit_pc_;
      case SigKind::kCommitInst: return commit_inst_;
      case SigKind::kCommitRd: return commit_rd_;
      case SigKind::kBpGhist: return bp_.ghist();
      case SigKind::kBpPht: {
        // Pack 32 2-bit counters per word.
        std::uint64_t packed = 0;
        for (unsigned k = 0; k < 32; ++k) {
          const unsigned idx = d.i * 32 + k;
          if (idx < bp_.pht().size()) {
            packed |= static_cast<std::uint64_t>(bp_.pht()[idx] & 3)
                      << (2 * k);
          }
        }
        return packed;
      }
      case SigKind::kBtbTag: return bp_.btb_tags()[d.i];
      case SigKind::kBtbTarget: return bp_.btb_targets()[d.i];
      case SigKind::kRas: return bp_.ras()[d.i];
      case SigKind::kRasTop: return bp_.ras_top();
      case SigKind::kDcValid: return dcache_.valid(d.i, d.j);
      case SigKind::kDcTag: return dcache_.tag(d.i, d.j);
      case SigKind::kDcData: return dcache_.data_digest(d.i, d.j);
      case SigKind::kDcLru: return dcache_.lru(d.i);
      case SigKind::kTlbValid: return tlb_.valid(d.i);
      case SigKind::kTlbVpn: return tlb_.vpn(d.i);
      case SigKind::kTlbPpn: return tlb_.ppn(d.i);
      case SigKind::kExecResult: return exec_result_;
      case SigKind::kLsuAddr: return lsu_addr_;
      case SigKind::kLsuLoadData: return lsu_load_data_;
      case SigKind::kLsuTaintedAccess: return tainted_access_;
    }
    return 0;
  }

  /// Slot index of an entry (used as the rename checkpoint key).
  unsigned entry_slot(const RobEntry& e) const {
    return static_cast<unsigned>(&e - rob_.data());
  }

  // ----------------------------------------------------------- fast tier --
  // Defined in fast_tier.cpp. The fast tier runs the same per-cycle stage
  // order as loop() over the same state — including the shared dirty-set
  // capture() — restricted to straight-line ALU/load/store/trap code in
  // which no ROB entry can become unsafe, which is what lets it skip the
  // squash/resolve logic and the execute-stage sort.
  enum class FastExit { kHandoff, kDone };

  /// Function-pointer dispatch: one issue handler per opcode.
  using FastIssueFn = void (*)(Core&, RobEntry&, std::uint64_t, std::uint64_t,
                               RunResult&);

  FastExit fast_loop(std::uint64_t handoff_pc, RunResult& res);
  void fast_retire(RunResult& res);
  void fast_commit(RobEntry& e, RunResult& res);
  void fast_execute();
  void fast_issue(RunResult& res);
  static void fast_issue_alu(Core& c, RobEntry& e, std::uint64_t a,
                             std::uint64_t b);
  static void fx_alu_rr(Core& c, RobEntry& e, std::uint64_t v1,
                        std::uint64_t v2, RunResult& res);
  static void fx_alu_ri(Core& c, RobEntry& e, std::uint64_t v1,
                        std::uint64_t v2, RunResult& res);
  static void fx_load(Core& c, RobEntry& e, std::uint64_t v1,
                      std::uint64_t v2, RunResult& res);
  static void fx_store(Core& c, RobEntry& e, std::uint64_t v1,
                       std::uint64_t v2, RunResult& res);
  static const FastIssueFn* fast_dispatch();

  const CoreConfig& cfg_;
  const std::vector<SigDesc>& descs_;
  const SignalLayout& layout_;
  const snapshot::SignalDb& db_;

  Memory mem_;
  BranchPredictor bp_;
  CsrFile csr_;
  RenameStage rename_;
  Tlb tlb_;
  Dcache dcache_;

  std::vector<RobEntry> rob_;
  unsigned rob_head_ = 0;
  unsigned rob_tail_ = 0;
  unsigned rob_count_ = 0;
  unsigned unsafe_count_ = 0;  ///< open speculative windows (see any_unsafe)
  std::uint64_t seq_ = 0;

  std::vector<bool> prf_ready_;
  std::vector<bool> prf_taint_;

  std::uint64_t fetch_pc_ = 0;
  std::uint64_t cycle_ = 0;
  bool halted_ = false;
  bool fetch_stalled_ = false;  ///< pending trap (ECALL/EBREAK/illegal)
  std::uint64_t fetch_watermark_ = 0;

  riscv::DecodedProgram& decode_buf_;  ///< simulator-owned scratch buffer
  const std::vector<DecodedInst>* decoded_ = nullptr;  ///< active decode
  DecodedInst scratch_dec_;            ///< off-image decode_at() result

  /// The capture engine's change list: components mark into it as they
  /// write (bound in the constructor), capture() drains it every cycle.
  DirtySet dirty_;

  // Pulse / bus state for snapshots.
  bool brupdate_valid_ = false;
  bool brupdate_mispredict_ = false;
  bool commit_valid_ = false;
  std::uint64_t commit_pc_ = 0;
  std::uint64_t commit_inst_ = 0;
  std::uint64_t commit_rd_ = 0;
  bool tainted_access_ = false;
  std::uint64_t exec_result_ = 0;
  std::uint64_t lsu_addr_ = 0;
  std::uint64_t lsu_load_data_ = 0;
};

}  // namespace specure::sim::detail
