// L1 data cache: set-associative, LRU, write-through (memory holds the
// authoritative data; the cache tracks tags/valid/LRU plus a per-line data
// digest exposed to snapshots). Cache state changes caused by speculative
// accesses persist across pipeline squashes — the classic Spectre residue.
//
// For the (M)WAIT emulation the cache reports every change to a monitored
// line (fill, eviction, or data write) via a callback, matching the
// paper's "modified BOOM's data cache to turn off the timer ... with
// corresponding cache line changes".
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/config.hpp"
#include "sim/dirty_set.hpp"
#include "sim/memory.hpp"

namespace specure::sim {

enum class DcacheEvent : std::uint8_t { kHit, kFill, kEviction, kWrite };

/// Snapshotable cache state (part of sim::CoreState). The line-change
/// hook is wiring, not state, and is never saved or restored.
struct DcacheState {
  struct Line {
    bool valid = false;
    std::uint64_t tag = 0;
    std::uint64_t digest = 0;
  };
  std::vector<Line> lines;
  std::vector<std::uint8_t> lru;
};

class Dcache {
 public:
  Dcache(const CoreConfig& cfg, Memory& mem);

  /// Notifies on every state change of a line: (line_base_addr, event).
  using LineChangeHook = std::function<void(std::uint64_t, DcacheEvent)>;
  void set_line_change_hook(LineChangeHook hook) { hook_ = std::move(hook); }

  /// Attach the core's dirty set. Any mapped access can rotate the set's
  /// LRU (even a hit) and a miss fills/evicts a way, so load()/store()
  /// mark the accessed set's whole signal block: `set_stride` ids
  /// (ways × valid/tag/data + lru) starting at `dcache_base +
  /// set * set_stride`. Conservative per-set marking is exact — unchanged
  /// values record no events.
  void bind_dirty(DirtySet* dirty, std::size_t dcache_base,
                  std::size_t set_stride) {
    dirty_ = dirty;
    dcache_base_ = dcache_base;
    set_stride_ = set_stride;
  }

  /// Access for a load. Returns true on hit; on miss the line is filled
  /// (and an LRU victim possibly evicted). Always reads the data through
  /// to `value`.
  bool load(std::uint64_t addr, unsigned size, std::uint64_t& value);

  /// Access for a (committed) store: write-through to memory; if the line
  /// is resident its digest is refreshed, otherwise it is filled
  /// (write-allocate).
  void store(std::uint64_t addr, unsigned size, std::uint64_t value);

  // Snapshot accessors (per set/way).
  bool valid(unsigned set, unsigned way) const;
  std::uint64_t tag(unsigned set, unsigned way) const;
  std::uint64_t data_digest(unsigned set, unsigned way) const;
  std::uint8_t lru(unsigned set) const { return lru_[set]; }

  unsigned sets() const { return cfg_.dcache_sets; }
  unsigned ways() const { return cfg_.dcache_ways; }

  std::uint64_t line_base(std::uint64_t addr) const;
  /// True if the line containing addr is currently resident.
  bool line_resident(std::uint64_t addr) const;

  // Checkpointing.
  void save(DcacheState& out) const;
  void restore(const DcacheState& state);

 private:
  struct Line {
    bool valid = false;
    std::uint64_t tag = 0;      ///< full line base address
    std::uint64_t digest = 0;   ///< XOR digest of line contents
  };

  unsigned set_index(std::uint64_t addr) const;
  std::uint64_t compute_digest(std::uint64_t line_addr) const;
  Line* lookup(std::uint64_t addr);
  void fill(std::uint64_t addr);
  void mark_set(std::uint64_t addr) {
    if (dirty_ != nullptr) {
      dirty_->mark_range(dcache_base_ + set_index(addr) * set_stride_,
                         set_stride_);
    }
  }

  const CoreConfig& cfg_;
  Memory& mem_;
  std::vector<Line> lines_;      ///< sets * ways, row-major by set
  std::vector<std::uint8_t> lru_;  ///< way index of LRU entry per set
  LineChangeHook hook_;
  DirtySet* dirty_ = nullptr;
  std::size_t dcache_base_ = 0;
  std::size_t set_stride_ = 0;
};

}  // namespace specure::sim
