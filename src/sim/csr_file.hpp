// CSR file with the paper's (M)WAIT emulation logic (§4.2).
//
// CSR writes take effect at *commit* (serialized, like real CSR side
// effects), so squashed CSR instructions never alter this state — except
// through the emulated (M)WAIT bug, where the data cache clears
// mwait_timer on monitored-line changes including ones caused by
// speculative (later-squashed) memory accesses. That asynchronous clear is
// the architecture-visible leak Specure must find.
#pragma once

#include <array>
#include <cstdint>

#include "riscv/isa.hpp"
#include "sim/config.hpp"
#include "sim/dirty_set.hpp"

namespace specure::sim {

/// Snapshotable CSR state (part of sim::CoreState).
struct CsrState {
  std::array<std::uint64_t, riscv::csr::kImplemented.size()> values{};
};

class CsrFile {
 public:
  explicit CsrFile(const CoreConfig& cfg);

  /// Attach the core's dirty set; `csr_base` is the flat id of CSR index
  /// 0 (the block is contiguous in kImplemented order). Every mutation —
  /// write(), the tick() countdown, the monitored-line clear — marks the
  /// touched CSR's id. Null until bound (the constructor-time reset()
  /// runs unbound, which is fine: the first capture sweeps everything).
  void bind_dirty(DirtySet* dirty, std::size_t csr_base) {
    dirty_ = dirty;
    csr_base_ = csr_base;
  }

  /// Back to power-on state (fresh values + MISA), so a CsrFile can be
  /// reused across runs without reconstructing — the class holds its
  /// config by reference and is deliberately not assignable.
  void reset();

  std::uint64_t read(std::uint16_t addr) const;
  /// Commit-time write. Arming mwait_en loads the countdown timer.
  void write(std::uint16_t addr, std::uint64_t value);
  bool implemented(std::uint16_t addr) const;

  /// Per-cycle (M)WAIT timer behaviour: countdown while armed; when the
  /// timer reaches zero it is set to one (the "wake" indication the paper
  /// describes). No-op unless mwait emulation is configured and armed.
  void tick();

  /// Data-cache hook target: a monitored-line change zeroes the timer.
  void on_monitored_line_change();

  /// True when (M)WAIT emulation is configured, armed, and the given line
  /// base matches the monitored address's line.
  bool monitoring(std::uint64_t line_base, unsigned line_bytes) const;

  // Named accessors for snapshot export.
  std::uint64_t value_at(std::size_t index) const { return values_[index]; }
  static constexpr std::size_t count() {
    return riscv::csr::kImplemented.size();
  }

  // Checkpointing.
  void save(CsrState& out) const { out.values = values_; }
  void restore(const CsrState& state) { values_ = state.values; }

 private:
  std::size_t index_of(std::uint16_t addr) const;
  void mark(std::size_t index) {
    if (dirty_ != nullptr) dirty_->mark(csr_base_ + index);
  }

  const CoreConfig& cfg_;
  std::array<std::uint64_t, riscv::csr::kImplemented.size()> values_{};
  DirtySet* dirty_ = nullptr;
  std::size_t csr_base_ = 0;
};

}  // namespace specure::sim
