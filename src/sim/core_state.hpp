// CoreState — the complete per-run microarchitectural state of the
// MiniBOOM core as one snapshotable value: every component's state
// (memory image, branch predictor, CSR file, rename stage, TLB, data
// cache) plus the pipeline itself (ROB contents, register-ready/taint
// bits, fetch/cycle cursors and the per-cycle pulse signals).
//
// Core::save_state/restore_state copy a live core to/from a CoreState;
// together with snapshot::Trace::fork_at this is what makes
// Simulator::run_from possible: a campaign worker checkpoints a corpus
// parent mid-run and resumes mutants from the deepest checkpoint whose
// fetch watermark precedes the mutation's first divergent instruction
// (see docs/ARCHITECTURE.md, "Checkpointed incremental simulation").
//
// Everything here is plain copyable data — no pointers into the live
// core, no hooks (the dcache line-change hook is wiring, re-attached by
// the owning Core), and no RNG cursors (the core model is fully
// deterministic; per-job RNG streams live in the fuzz layer).
#pragma once

#include <cstdint>
#include <vector>

#include "riscv/decode.hpp"
#include "sim/bpred.hpp"
#include "sim/cache.hpp"
#include "sim/csr_file.hpp"
#include "sim/memory.hpp"
#include "sim/rename.hpp"
#include "sim/tlb.hpp"

namespace specure::sim {

/// One reorder-buffer slot. Lives in core_state.hpp (not core.cpp) so a
/// CoreState can carry in-flight instructions across save/restore.
struct RobEntry {
  bool valid = false;
  std::uint64_t seq = 0;  ///< monotonically increasing issue order
  std::uint64_t pc = 0;
  riscv::DecodedInst dec;
  bool done = false;
  bool squashed = false;
  std::uint64_t ready_cycle = 0;

  bool writes_rd = false;
  PhysReg new_phys = 0;
  PhysReg old_phys = 0;
  std::uint64_t result = 0;
  bool result_tainted = false;

  bool is_ctrl = false;       ///< conditional branch or JALR
  bool unsafe = false;        ///< unresolved speculative window opener
  bool resolved = false;
  bool mispredicted = false;
  bool pred_taken = false;
  std::uint64_t pred_next = 0;
  bool actual_taken = false;
  std::uint64_t actual_next = 0;

  bool is_store = false;
  std::uint64_t mem_addr = 0;
  std::uint64_t store_value = 0;
  unsigned mem_size = 0;

  bool writes_csr = false;
  std::uint16_t csr_addr = 0;
  std::uint64_t csr_wval = 0;

  bool is_halt = false;  ///< ECALL/EBREAK
};

struct CoreState {
  // Component state.
  MemoryState mem;
  BpredState bp;
  CsrState csr;
  RenameState rename;
  TlbState tlb;
  DcacheState dcache;

  // Pipeline state.
  std::vector<RobEntry> rob;
  unsigned rob_head = 0;
  unsigned rob_tail = 0;
  unsigned rob_count = 0;
  std::uint64_t seq = 0;
  std::vector<bool> prf_ready;
  std::vector<bool> prf_taint;

  // Cursors and flags.
  std::uint64_t fetch_pc = 0;
  std::uint64_t cycle = 0;
  bool halted = false;
  bool fetch_stalled = false;
  /// Highest code-image word index any fetch has observed so far,
  /// including wrong-path and end-of-program probes. A checkpoint is
  /// valid for a mutant iff the mutant's first divergent instruction
  /// index is strictly greater than this watermark.
  std::uint64_t fetch_watermark = 0;

  // Per-cycle pulse / bus values (captured signals).
  bool brupdate_valid = false;
  bool brupdate_mispredict = false;
  bool commit_valid = false;
  std::uint64_t commit_pc = 0;
  std::uint64_t commit_inst = 0;
  std::uint64_t commit_rd = 0;
  bool tainted_access = false;
  std::uint64_t exec_result = 0;
  std::uint64_t lsu_addr = 0;
  std::uint64_t lsu_load_data = 0;

  /// Approximate heap footprint, the unit the worker-side checkpoint
  /// cache budgets (`checkpoint_cache_mb`).
  std::size_t memory_bytes() const;
};

}  // namespace specure::sim
