// Per-cycle dirty-signal bitset — the capture engine's change list.
//
// Every microarch component holds a pointer to the core's DirtySet and
// marks the flat signal ids it writes as it writes them; capture() then
// walks only the set bits (plus the always-dirty base set) instead of
// sweeping the whole schema. A conservative superset is exact: the
// delta-native Trace appends an event only when a value actually changed,
// so marking too much costs one value_of() call, never a wrong event.
#pragma once

#include <cstdint>
#include <vector>

namespace specure::sim {

class DirtySet {
 public:
  /// Size the bitset for `n_signals` flat ids and clear both the live and
  /// the base set.
  void init(std::size_t n_signals) {
    words_.assign((n_signals + 63) / 64, 0);
    base_.assign(words_.size(), 0);
  }

  void mark(std::size_t id) {
    words_[id >> 6] |= std::uint64_t{1} << (id & 63);
  }

  void mark_range(std::size_t from, std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) mark(from + k);
  }

  /// Add a signal to the always-dirty base set (and to the live set, so
  /// the first cycle after init is covered too). Base signals are derived
  /// or pulse values no single component owns — re-evaluated every cycle.
  void base_mark(std::size_t id) {
    base_[id >> 6] |= std::uint64_t{1} << (id & 63);
    mark(id);
  }

  /// End-of-capture reset: the next cycle starts from the base set.
  void reset_to_base() { words_ = base_; }

  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::vector<std::uint64_t> words_;  ///< this cycle's dirty set
  std::vector<std::uint64_t> base_;   ///< always-dirty signals
};

}  // namespace specure::sim
