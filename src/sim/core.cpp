#include "sim/core.hpp"

#include <stdexcept>
#include <string>

#include "sim/core_impl.hpp"

namespace specure::sim {

using detail::Core;

void RunResult::reset() {
  trace.reset();
  dense_trace.reset();
  commits.clear();
  coverage.clear();
  cycles = 0;
  instructions_committed = 0;
  halted_clean = false;
  final_data.clear();
}

std::size_t Checkpoint::memory_bytes() const {
  return state.memory_bytes() + coverage.memory_bytes() + sizeof(Checkpoint);
}

Simulator::Simulator(CoreConfig cfg) : cfg_(cfg) {
  descs_ = describe_signals(cfg_);
  layout_ = signal_layout(descs_, cfg_);
  for (const auto& d : descs_) {
    db_.add(d.name, d.width, d.cls, d.is_register);
  }
}

const riscv::DecodedProgram& Simulator::decode(
    const riscv::Program& program) const {
  decode_scratch_.build(program.code);
  return decode_scratch_;
}

RunResult Simulator::run(const riscv::Program& program) const {
  RunResult res(&db_);
  run(program, res);
  return res;
}

void Simulator::run(const riscv::Program& program, RunResult& out) const {
  Core core(cfg_, descs_, layout_, db_, decode_scratch_);
  core.run(program, out, nullptr, nullptr);
}

void Simulator::run(const riscv::Program& program,
                    const CheckpointOptions& options,
                    std::vector<Checkpoint>& checkpoints,
                    RunResult& out) const {
  if (cfg_.record_dense_trace) {
    throw std::runtime_error(
        "checkpointed runs do not support record_dense_trace (the dense "
        "reference recorder has no resume prefix); use the cold path");
  }
  checkpoints.clear();
  Core core(cfg_, descs_, layout_, db_, decode_scratch_);
  core.run(program, out, &options, &checkpoints);
}

void Simulator::run_tiered(const riscv::Program& program,
                           std::size_t handoff_index, RunResult& out,
                           TierStats* stats,
                           const riscv::DecodedProgram* predecoded,
                           TierPhaseTimes* phases) const {
  if (cfg_.record_dense_trace) {
    // The dense reference recorder needs the full per-cycle sweep; take
    // the detailed path (this is the debug-only differential config).
    if (stats != nullptr) ++stats->fallbacks;
    Core core(cfg_, descs_, layout_, db_, decode_scratch_);
    core.run(program, out, nullptr, nullptr, predecoded);
    return;
  }
  Core core(cfg_, descs_, layout_, db_, decode_scratch_);
  core.run_tiered(program, handoff_index, out, nullptr, nullptr, stats,
                  predecoded, phases);
}

void Simulator::run_tiered(const riscv::Program& program,
                           std::size_t handoff_index,
                           const CheckpointOptions& options,
                           std::vector<Checkpoint>& checkpoints,
                           RunResult& out, TierStats* stats,
                           const riscv::DecodedProgram* predecoded,
                           TierPhaseTimes* phases) const {
  if (cfg_.record_dense_trace) {
    throw std::runtime_error(
        "checkpointed runs do not support record_dense_trace (the dense "
        "reference recorder has no resume prefix); use the cold path");
  }
  checkpoints.clear();
  Core core(cfg_, descs_, layout_, db_, decode_scratch_);
  core.run_tiered(program, handoff_index, out, &options, &checkpoints, stats,
                  predecoded, phases);
}

FastPrefixOutcome Simulator::run_fast_prefix(const riscv::Program& program,
                                             std::size_t handoff_index,
                                             RunResult& out,
                                             Checkpoint& boundary,
                                             TierStats* stats) const {
  if (cfg_.record_dense_trace) {
    throw std::runtime_error(
        "run_fast_prefix does not support record_dense_trace; use the "
        "cold path");
  }
  Core core(cfg_, descs_, layout_, db_, decode_scratch_);
  return core.run_fast_prefix(program, handoff_index, out, boundary, stats);
}

void Simulator::run_from(const Checkpoint& checkpoint,
                         const snapshot::Trace& parent_trace,
                         const std::vector<CommitRecord>& parent_commits,
                         const riscv::Program& program,
                         RunResult& out) const {
  if (cfg_.record_dense_trace) {
    throw std::runtime_error(
        "run_from does not support record_dense_trace; use the cold path");
  }
  if (checkpoint.commit_count > parent_commits.size()) {
    throw std::runtime_error(
        "run_from: checkpoint commit prefix (" +
        std::to_string(checkpoint.commit_count) +
        " records) exceeds the parent commit log (" +
        std::to_string(parent_commits.size()) + ")");
  }
  // Seed the run accumulators with the parent prefix, reusing out's
  // buffers; the core then continues from checkpoint.cycle + 1.
  parent_trace.fork_into(checkpoint.cycle, out.trace);
  out.dense_trace.reset();
  out.commits.assign(parent_commits.begin(),
                     parent_commits.begin() +
                         static_cast<std::ptrdiff_t>(checkpoint.commit_count));
  out.coverage = checkpoint.coverage;
  out.instructions_committed = checkpoint.instructions_committed;
  out.cycles = 0;
  out.halted_clean = false;
  out.final_data.clear();
  Core core(cfg_, descs_, layout_, db_, decode_scratch_);
  core.resume(checkpoint, program, out);
}

}  // namespace specure::sim
