#include "sim/bpred.hpp"

#include "util/bits.hpp"

namespace specure::sim {

BranchPredictor::BranchPredictor(const CoreConfig& cfg)
    : cfg_(cfg),
      pht_(cfg.pht_entries, 1),  // weakly not-taken
      btb_tag_(cfg.btb_entries, 0),
      btb_target_(cfg.btb_entries, 0),
      ras_(cfg.ras_entries, 0) {}

std::size_t BranchPredictor::pht_index(std::uint64_t pc) const {
  const std::uint64_t hist = ghist_ & util::mask(cfg_.ghist_bits);
  return static_cast<std::size_t>(((pc >> 2) ^ hist) % pht_.size());
}

std::size_t BranchPredictor::btb_index(std::uint64_t pc) const {
  return static_cast<std::size_t>((pc >> 2) % btb_tag_.size());
}

Prediction BranchPredictor::predict_branch(std::uint64_t pc) const {
  Prediction p;
  p.taken = pht_[pht_index(pc)] >= 2;
  const std::size_t bi = btb_index(pc);
  p.btb_hit = btb_tag_[bi] == pc;
  p.target = p.btb_hit ? btb_target_[bi] : 0;
  return p;
}

Prediction BranchPredictor::predict_indirect(std::uint64_t pc) const {
  Prediction p;
  const std::size_t bi = btb_index(pc);
  p.btb_hit = btb_tag_[bi] == pc;
  p.taken = p.btb_hit;
  p.target = p.btb_hit ? btb_target_[bi] : 0;
  return p;
}

void BranchPredictor::update_branch(std::uint64_t pc, bool taken,
                                    std::uint64_t target) {
  const std::size_t pi = pht_index(pc);
  std::uint8_t& ctr = pht_[pi];
  if (taken && ctr < 3) ++ctr;
  if (!taken && ctr > 0) --ctr;
  if (taken) {
    const std::size_t bi = btb_index(pc);
    btb_tag_[bi] = pc;
    btb_target_[bi] = target;
    if (dirty_ != nullptr) {
      dirty_->mark(btb_base_ + 2 * bi);
      dirty_->mark(btb_base_ + 2 * bi + 1);
    }
  }
  ghist_ = ((ghist_ << 1) | (taken ? 1 : 0)) & util::mask(cfg_.ghist_bits);
  if (dirty_ != nullptr) {
    dirty_->mark(ghist_id_);
    dirty_->mark(pht_base_ + pi / 32);  // 32 packed counters per word
  }
}

void BranchPredictor::update_indirect(std::uint64_t pc, std::uint64_t target) {
  const std::size_t bi = btb_index(pc);
  btb_tag_[bi] = pc;
  btb_target_[bi] = target;
  if (dirty_ != nullptr) {
    dirty_->mark(btb_base_ + 2 * bi);
    dirty_->mark(btb_base_ + 2 * bi + 1);
  }
}

void BranchPredictor::ras_push(std::uint64_t return_pc) {
  if (ras_top_ < ras_.size()) {
    if (dirty_ != nullptr) {
      dirty_->mark(ras_base_ + ras_top_);
      dirty_->mark(ras_top_id_);
    }
    ras_[ras_top_++] = return_pc;
  } else {
    // Overflow: shift (oldest entry lost), stack stays full.
    for (std::size_t i = 1; i < ras_.size(); ++i) ras_[i - 1] = ras_[i];
    ras_.back() = return_pc;
    if (dirty_ != nullptr) dirty_->mark_range(ras_base_, ras_.size());
  }
}

std::uint64_t BranchPredictor::ras_pop() {
  if (ras_top_ == 0) return 0;
  if (dirty_ != nullptr) dirty_->mark(ras_top_id_);
  return ras_[--ras_top_];
}

void BranchPredictor::save(BpredState& out) const {
  out.ghist = ghist_;
  out.pht = pht_;
  out.btb_tag = btb_tag_;
  out.btb_target = btb_target_;
  out.ras = ras_;
  out.ras_top = ras_top_;
}

void BranchPredictor::restore(const BpredState& state) {
  ghist_ = state.ghist;
  pht_ = state.pht;
  btb_tag_ = state.btb_tag;
  btb_target_ = state.btb_target;
  ras_ = state.ras;
  ras_top_ = state.ras_top;
}

}  // namespace specure::sim
