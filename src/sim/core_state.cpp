#include "sim/core_state.hpp"

namespace specure::sim {

std::size_t CoreState::memory_bytes() const {
  std::size_t bytes = sizeof(CoreState);
  bytes += mem.code.size() * sizeof(std::uint32_t);
  bytes += mem.data.size();
  bytes += bp.pht.size();
  bytes += (bp.btb_tag.size() + bp.btb_target.size() + bp.ras.size()) *
           sizeof(std::uint64_t);
  bytes += rename.freelist.size() * sizeof(PhysReg);
  bytes += rename.prf.size() * sizeof(std::uint64_t);
  bytes += rename.checkpoints.size() *
           (sizeof(unsigned) + sizeof(std::array<PhysReg, 32>));
  bytes += tlb.valid.size();
  bytes += (tlb.vpn.size() + tlb.ppn.size()) * sizeof(std::uint64_t);
  bytes += dcache.lines.size() * sizeof(DcacheState::Line);
  bytes += dcache.lru.size();
  bytes += rob.size() * sizeof(RobEntry);
  bytes += (prf_ready.size() + prf_taint.size()) / 8;
  return bytes;
}

}  // namespace specure::sim
