#include "sim/tlb.hpp"

namespace specure::sim {

Tlb::Tlb(const CoreConfig& cfg)
    : cfg_(cfg),
      valid_(cfg.tlb_entries, 0),
      vpn_(cfg.tlb_entries, 0),
      ppn_(cfg.tlb_entries, 0) {}

bool Tlb::translate(std::uint64_t va, std::uint64_t& pa) {
  pa = va;  // identity mapping
  const std::uint64_t page = va >> cfg_.page_bits;
  for (unsigned i = 0; i < valid_.size(); ++i) {
    if (valid_[i] && vpn_[i] == page) return true;
  }
  valid_[next_victim_] = 1;
  vpn_[next_victim_] = page;
  ppn_[next_victim_] = page;
  if (dirty_ != nullptr) {
    dirty_->mark_range(tlb_base_ + std::size_t{3} * next_victim_, 3);
  }
  next_victim_ = (next_victim_ + 1) % valid_.size();
  return false;
}

void Tlb::save(TlbState& out) const {
  out.valid = valid_;
  out.vpn = vpn_;
  out.ppn = ppn_;
  out.next_victim = next_victim_;
}

void Tlb::restore(const TlbState& state) {
  valid_ = state.valid;
  vpn_ = state.vpn;
  ppn_ = state.ppn;
  next_victim_ = state.next_victim;
}

}  // namespace specure::sim
