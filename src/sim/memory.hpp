// Flat behavioural memory backing the MiniBOOM core: a read-only code
// image and a small writable data region (riscv::kDataBase/kDataSize).
// Accesses outside the mapped regions report a fault instead of trapping
// the host.
#pragma once

#include <cstdint>
#include <vector>

#include "riscv/program.hpp"

namespace specure::sim {

/// Snapshotable memory image (part of sim::CoreState).
struct MemoryState {
  std::vector<std::uint32_t> code;
  std::vector<std::uint8_t> data;
};

class Memory {
 public:
  /// Load a program image: code at kCodeBase, data at kDataBase.
  void load(const riscv::Program& program);

  /// Fetch one instruction word; returns 0 (illegal) outside the image.
  std::uint32_t fetch(std::uint64_t pc) const;

  /// True if [addr, addr+size) lies fully inside the data region.
  bool data_mapped(std::uint64_t addr, unsigned size) const;

  /// Little-endian data read/write of 1/2/4/8 bytes. Unmapped accesses
  /// return 0 / are dropped; callers should check data_mapped() first when
  /// fault distinction matters.
  std::uint64_t read(std::uint64_t addr, unsigned size) const;
  void write(std::uint64_t addr, unsigned size, std::uint64_t value);

  std::size_t code_words() const { return code_.size(); }

  /// The full data-region image (for end-of-run architectural comparison).
  const std::vector<std::uint8_t>& data_image() const { return data_; }

  // Checkpointing: copy-out / copy-in of the whole image.
  void save(MemoryState& out) const;
  void restore(const MemoryState& state);

  /// Replace only the code image. Checkpoint resume restores the parent's
  /// memory and patches the child's code over it; validity (no prefix
  /// fetch ever observed a differing word, identical data images) is the
  /// caller's contract, established via fuzz::first_divergence.
  void set_code(const std::vector<std::uint32_t>& code) { code_ = code; }

 private:
  std::vector<std::uint32_t> code_;
  std::vector<std::uint8_t> data_;
};

}  // namespace specure::sim
