// Flat behavioural memory backing the MiniBOOM core: a read-only code
// image and a small writable data region (riscv::kDataBase/kDataSize).
// Accesses outside the mapped regions report a fault instead of trapping
// the host.
#pragma once

#include <cstdint>
#include <vector>

#include "riscv/program.hpp"

namespace specure::sim {

class Memory {
 public:
  /// Load a program image: code at kCodeBase, data at kDataBase.
  void load(const riscv::Program& program);

  /// Fetch one instruction word; returns 0 (illegal) outside the image.
  std::uint32_t fetch(std::uint64_t pc) const;

  /// True if [addr, addr+size) lies fully inside the data region.
  bool data_mapped(std::uint64_t addr, unsigned size) const;

  /// Little-endian data read/write of 1/2/4/8 bytes. Unmapped accesses
  /// return 0 / are dropped; callers should check data_mapped() first when
  /// fault distinction matters.
  std::uint64_t read(std::uint64_t addr, unsigned size) const;
  void write(std::uint64_t addr, unsigned size, std::uint64_t value);

  std::size_t code_words() const { return code_.size(); }

  /// The full data-region image (for end-of-run architectural comparison).
  const std::vector<std::uint8_t>& data_image() const { return data_; }

 private:
  std::vector<std::uint32_t> code_;
  std::vector<std::uint8_t> data_;
};

}  // namespace specure::sim
