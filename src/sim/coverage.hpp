// Traditional code-coverage instrumentation for the PUT: branch, FSM and
// condition coverage points plus the toggle coverage derived from
// snapshots. This is the feedback signal of the *baseline* fuzzer the
// paper compares against (TheHuzz-style "FSM, toggle, branch, condition"
// coverage, §4.2), and also part of the Microarchitecture Visualizer's
// outputs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace specure::sim {

/// Accumulates covered points during one simulation run. The point
/// universe is stable across runs (ids are hashes of site names), so maps
/// from different runs can be merged to compute campaign coverage.
class CoverageRecorder {
 public:
  /// Record a two-way branch decision at a named RTL site.
  void branch(std::string_view site, bool taken);

  /// Record an FSM occupying a state.
  void fsm(std::string_view machine, std::uint32_t state);

  /// Record a boolean condition evaluation (condition coverage).
  void condition(std::string_view site, bool value);

  /// Record a signal bit-toggle count bucket (toggle coverage summary).
  void toggles(std::uint64_t bits_toggled) { toggle_bits_ += bits_toggled; }

  /// Covered point keys: "b:<site>:<dir>", "f:<machine>:<state>",
  /// "c:<site>:<val>".
  const std::unordered_set<std::string>& points() const { return points_; }
  std::uint64_t toggle_bits() const { return toggle_bits_; }

  std::size_t point_count() const { return points_.size(); }

  /// Approximate heap footprint (checkpoint-cache budgeting).
  std::size_t memory_bytes() const;

  /// Merge another run's points into this accumulator. Returns the number
  /// of *new* points contributed (the fuzzer's "is this input interesting"
  /// signal).
  std::size_t merge(const CoverageRecorder& other);

  /// Overwrite the accumulator from a saved point list + toggle count
  /// (campaign state restore; the serializer saves points() sorted so the
  /// on-disk form is deterministic, order here is irrelevant).
  void restore(const std::vector<std::string>& points,
               std::uint64_t toggle_bits) {
    points_.clear();
    points_.insert(points.begin(), points.end());
    toggle_bits_ = toggle_bits;
  }

  void clear();

 private:
  std::unordered_set<std::string> points_;
  std::uint64_t toggle_bits_ = 0;
};

}  // namespace specure::sim
