#include "sim/iss.hpp"

#include "util/bits.hpp"

namespace specure::sim {

using riscv::DecodedInst;
using riscv::Op;

namespace {

std::uint64_t alu(const DecodedInst& d, std::uint64_t a, std::uint64_t b) {
  const std::int64_t sa = static_cast<std::int64_t>(a);
  const std::int64_t sb = static_cast<std::int64_t>(b);
  auto sext32 = [](std::uint64_t v) {
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
  };
  switch (d.op) {
    case Op::kAddi: case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kSlti: case Op::kSlt: return sa < sb ? 1 : 0;
    case Op::kSltiu: case Op::kSltu: return a < b ? 1 : 0;
    case Op::kXori: case Op::kXor: return a ^ b;
    case Op::kOri: case Op::kOr: return a | b;
    case Op::kAndi: case Op::kAnd: return a & b;
    case Op::kSlli: case Op::kSll: return a << (b & 63);
    case Op::kSrli: case Op::kSrl: return a >> (b & 63);
    case Op::kSrai: case Op::kSra:
      return static_cast<std::uint64_t>(sa >> (b & 63));
    case Op::kAddiw: case Op::kAddw: return sext32(a + b);
    case Op::kSubw: return sext32(a - b);
    case Op::kSlliw: case Op::kSllw: return sext32(a << (b & 31));
    case Op::kSrliw: case Op::kSrlw:
      return sext32(static_cast<std::uint32_t>(a) >> (b & 31));
    case Op::kSraiw: case Op::kSraw:
      return sext32(static_cast<std::uint64_t>(
          static_cast<std::int32_t>(a) >> (b & 31)));
    case Op::kLui: return static_cast<std::uint64_t>(d.imm);
    case Op::kMul: return a * b;
    case Op::kMulh:
      return static_cast<std::uint64_t>(
          (static_cast<__int128>(sa) * static_cast<__int128>(sb)) >> 64);
    case Op::kDiv:
      if (b == 0) return ~0ULL;
      if (sa == INT64_MIN && sb == -1) return a;
      return static_cast<std::uint64_t>(sa / sb);
    case Op::kDivu: return b == 0 ? ~0ULL : a / b;
    case Op::kRem:
      if (b == 0) return a;
      if (sa == INT64_MIN && sb == -1) return 0;
      return static_cast<std::uint64_t>(sa % sb);
    case Op::kRemu: return b == 0 ? a : a % b;
    default: return 0;
  }
}

bool taken(Op op, std::uint64_t a, std::uint64_t b) {
  const std::int64_t sa = static_cast<std::int64_t>(a);
  const std::int64_t sb = static_cast<std::int64_t>(b);
  switch (op) {
    case Op::kBeq: return a == b;
    case Op::kBne: return a != b;
    case Op::kBlt: return sa < sb;
    case Op::kBge: return sa >= sb;
    case Op::kBltu: return a < b;
    case Op::kBgeu: return a >= b;
    default: return false;
  }
}

}  // namespace

IssResult Iss::run(const riscv::Program& program,
                   std::uint64_t max_instructions) {
  IssResult res;
  run(program, res, max_instructions);
  return res;
}

void Iss::run(const riscv::Program& program, IssResult& out,
              std::uint64_t max_instructions) {
  decode_.build(program.code);
  run(program, decode_, out, max_instructions);
}

void Iss::run(const riscv::Program& program, const riscv::DecodedProgram& dec,
              IssResult& out, std::uint64_t max_instructions) {
  IssResult& res = out;
  res.regs.fill(0);
  res.pc = 0;
  res.instructions = 0;
  res.halted_clean = false;
  mem_.load(program);
  csr_.reset();
  std::uint64_t pc = riscv::kCodeBase;
  auto& x = res.regs;

  // In-image aligned fetches read the predecoded array by index;
  // everything else (misaligned, off-image) fetches word 0 and decodes
  // to the illegal/trap path — exactly the per-instruction decode(w)
  // behavior this cache replaces.
  const auto decode_at = [&](std::uint64_t at) -> DecodedInst {
    if (at >= riscv::kCodeBase && (at & 3) == 0) {
      const std::uint64_t index = (at - riscv::kCodeBase) / 4;
      if (index < dec.insts.size()) return dec.insts[index];
    }
    return riscv::decode(mem_.fetch(at));
  };

  while (res.instructions < max_instructions) {
    const DecodedInst d = decode_at(pc);
    ++res.instructions;
    if (!d.valid()) {  // illegal or fall-off: trap model halts the core
      res.halted_clean = true;
      break;
    }
    std::uint64_t next = pc + 4;
    const std::uint64_t v1 = x[d.rs1];
    const std::uint64_t v2 = x[d.rs2];
    std::uint64_t rd_val = 0;
    bool write_rd = false;

    switch (riscv::format_of(d.op)) {
      case riscv::Format::kR:
        rd_val = alu(d, v1, v2);
        write_rd = true;
        break;
      case riscv::Format::kU:
        rd_val = d.op == Op::kAuipc
                     ? pc + static_cast<std::uint64_t>(d.imm)
                     : static_cast<std::uint64_t>(d.imm);
        write_rd = true;
        break;
      case riscv::Format::kI:
        if (riscv::is_load(d.op)) {
          const std::uint64_t addr =
              v1 + static_cast<std::uint64_t>(d.imm);
          const unsigned size = riscv::access_size(d.op);
          std::uint64_t raw = mem_.read(addr, size);
          switch (d.op) {
            case Op::kLb: rd_val = static_cast<std::uint64_t>(util::sext(raw, 8)); break;
            case Op::kLh: rd_val = static_cast<std::uint64_t>(util::sext(raw, 16)); break;
            case Op::kLw: rd_val = static_cast<std::uint64_t>(util::sext(raw, 32)); break;
            default: rd_val = raw; break;
          }
          write_rd = true;
        } else if (d.op == Op::kJalr) {
          rd_val = pc + 4;
          write_rd = true;
          next = (v1 + static_cast<std::uint64_t>(d.imm)) & ~1ULL;
        } else {
          rd_val = alu(d, v1, static_cast<std::uint64_t>(d.imm));
          write_rd = true;
        }
        break;
      case riscv::Format::kS:
        mem_.write(v1 + static_cast<std::uint64_t>(d.imm),
                   riscv::access_size(d.op), v2);
        break;
      case riscv::Format::kB:
        if (taken(d.op, v1, v2)) next = pc + static_cast<std::uint64_t>(d.imm);
        break;
      case riscv::Format::kJ:
        rd_val = pc + 4;
        write_rd = true;
        next = pc + static_cast<std::uint64_t>(d.imm);
        break;
      case riscv::Format::kCsr:
      case riscv::Format::kCsrImm: {
        const std::uint64_t old = csr_.read(d.csr);
        const std::uint64_t operand =
            riscv::format_of(d.op) == riscv::Format::kCsrImm ? d.zimm : v1;
        std::uint64_t nv = old;
        bool write = false;
        switch (d.op) {
          case Op::kCsrrw: case Op::kCsrrwi: nv = operand; write = true; break;
          case Op::kCsrrs: case Op::kCsrrsi:
            nv = old | operand;
            write = operand != 0;
            break;
          case Op::kCsrrc: case Op::kCsrrci:
            nv = old & ~operand;
            write = operand != 0;
            break;
          default: break;
        }
        if (write && csr_.implemented(d.csr)) csr_.write(d.csr, nv);
        rd_val = old;
        write_rd = true;
        break;
      }
      case riscv::Format::kSys:
        if (d.op == Op::kEcall || d.op == Op::kEbreak) {
          res.halted_clean = true;
          res.pc = pc;
          if (write_rd && d.rd != 0) x[d.rd] = rd_val;
          return;
        }
        break;
    }
    if (write_rd && d.rd != 0) x[d.rd] = rd_val;
    pc = next;
  }
  res.pc = pc;
}

}  // namespace specure::sim
