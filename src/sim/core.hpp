// MiniBOOM: a cycle-level, speculative, out-of-order-retirement RISC-V
// core — the processor-under-test substitute for BOOM (DESIGN.md §1).
//
// The model is in-order single-issue with delayed branch resolution, which
// yields genuine speculative windows: instructions issued after an
// unresolved branch execute speculatively (loads really access the data
// cache, allocations really happen in the rename stage) and are squashed
// on misprediction by restoring the rename map-table checkpoint. Cache,
// TLB and predictor state deliberately survive squashes (the Spectre
// residue); the (M)WAIT and Zenbleed emulations from the paper's §4.2 are
// switchable via CoreConfig::vuln.
//
// Simulator is the reusable harness: it owns the snapshot schema and runs
// one Program per run() call on a fresh core, producing the per-cycle
// snapshot trace, the commit log, and code coverage — everything the
// Online Phase consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "riscv/decode.hpp"
#include "riscv/program.hpp"
#include "sim/bpred.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/coverage.hpp"
#include "sim/csr_file.hpp"
#include "sim/memory.hpp"
#include "sim/rename.hpp"
#include "sim/structure.hpp"
#include "sim/tlb.hpp"
#include "snapshot/snapshot.hpp"

namespace specure::sim {

/// One committed (architecturally retired) instruction. The Vulnerability
/// Detector uses this log to discharge architectural-state changes that
/// are explained by bona-fide commits (DESIGN.md D4/D5).
struct CommitRecord {
  std::uint64_t cycle = 0;
  std::uint64_t pc = 0;
  std::uint32_t inst = 0;
  bool writes_rd = false;
  std::uint8_t rd = 0;
  bool writes_csr = false;
  std::uint16_t csr = 0;
  bool is_store = false;
  std::uint64_t store_addr = 0;
};

struct RunResult {
  snapshot::Trace trace;
  /// Dense reference recording of the same run; only populated when
  /// CoreConfig::record_dense_trace is set (trace differential suite).
  std::unique_ptr<snapshot::DenseTrace> dense_trace;
  std::vector<CommitRecord> commits;
  CoverageRecorder coverage;
  std::uint64_t cycles = 0;
  std::uint64_t instructions_committed = 0;
  bool halted_clean = false;  ///< ECALL/EBREAK commit or fall-off-end
  /// Final data-memory image (committed stores applied), for
  /// architectural end-state comparison.
  std::vector<std::uint8_t> final_data;

  explicit RunResult(const snapshot::SignalDb* db) : trace(db) {}
};

class Simulator {
 public:
  explicit Simulator(CoreConfig cfg);

  /// Simulate one program on a cold core.
  RunResult run(const riscv::Program& program) const;

  const snapshot::SignalDb& signal_db() const { return db_; }
  const CoreConfig& config() const { return cfg_; }
  const std::vector<SigDesc>& signal_descs() const { return descs_; }

 private:
  CoreConfig cfg_;
  std::vector<SigDesc> descs_;
  snapshot::SignalDb db_;
};

}  // namespace specure::sim
