// MiniBOOM: a cycle-level, speculative, out-of-order-retirement RISC-V
// core — the processor-under-test substitute for BOOM (DESIGN.md §1).
//
// The model is in-order single-issue with delayed branch resolution, which
// yields genuine speculative windows: instructions issued after an
// unresolved branch execute speculatively (loads really access the data
// cache, allocations really happen in the rename stage) and are squashed
// on misprediction by restoring the rename map-table checkpoint. Cache,
// TLB and predictor state deliberately survive squashes (the Spectre
// residue); the (M)WAIT and Zenbleed emulations from the paper's §4.2 are
// switchable via CoreConfig::vuln.
//
// Simulator is the reusable harness: it owns the snapshot schema and runs
// one Program per run() call on a fresh core, producing the per-cycle
// snapshot trace, the commit log, and code coverage — everything the
// Online Phase consumes.
//
// Beyond the cold path, a run can emit Checkpoints (full CoreState plus
// the run-accumulator cursors at that cycle), and run_from() resumes a
// *different* program from a checkpoint of its parent — bit-identical to
// a cold run of that program whenever the mutation's first divergent
// instruction index lies strictly beyond the checkpoint's fetch
// watermark. This is the campaign's prefix-reuse fast path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "riscv/decode.hpp"
#include "riscv/program.hpp"
#include "sim/bpred.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/core_state.hpp"
#include "sim/coverage.hpp"
#include "sim/csr_file.hpp"
#include "sim/fast_tier.hpp"
#include "sim/memory.hpp"
#include "sim/rename.hpp"
#include "sim/structure.hpp"
#include "sim/tlb.hpp"
#include "snapshot/snapshot.hpp"

namespace specure::sim {

/// One committed (architecturally retired) instruction. The Vulnerability
/// Detector uses this log to discharge architectural-state changes that
/// are explained by bona-fide commits (DESIGN.md D4/D5).
struct CommitRecord {
  std::uint64_t cycle = 0;
  std::uint64_t pc = 0;
  std::uint32_t inst = 0;
  bool writes_rd = false;
  std::uint8_t rd = 0;
  bool writes_csr = false;
  std::uint16_t csr = 0;
  bool is_store = false;
  std::uint64_t store_addr = 0;
};

struct RunResult {
  snapshot::Trace trace;
  /// Dense reference recording of the same run; only populated when
  /// CoreConfig::record_dense_trace is set (trace differential suite).
  std::unique_ptr<snapshot::DenseTrace> dense_trace;
  std::vector<CommitRecord> commits;
  CoverageRecorder coverage;
  std::uint64_t cycles = 0;
  std::uint64_t instructions_committed = 0;
  bool halted_clean = false;  ///< ECALL/EBREAK commit or fall-off-end
  /// Final data-memory image (committed stores applied), for
  /// architectural end-state comparison.
  std::vector<std::uint8_t> final_data;

  explicit RunResult(const snapshot::SignalDb* db) : trace(db) {}

  /// Drop the previous run's contents but keep every allocated buffer
  /// (trace columns, commit log, data image), so one RunResult can be
  /// reused across a worker's iterations without per-run reallocation.
  void reset();
};

/// A resumable mid-run snapshot: the complete core state at the end of
/// one cycle plus the run-accumulator cursors needed to seed the resumed
/// RunResult. The trace and commit-log prefixes are *not* stored here —
/// they are shared with the parent's RunResult and sliced on use
/// (Trace::fork_at / the first `commit_count` commit records), so a set
/// of checkpoints over one run costs one CoreState each, not one trace
/// each.
struct Checkpoint {
  CoreState state;
  std::uint64_t cycle = 0;
  /// CoreState::fetch_watermark at save time; a mutant may resume here
  /// iff its first divergent instruction index is > this.
  std::uint64_t fetch_watermark = 0;
  std::size_t commit_count = 0;  ///< prefix length into the parent commits
  std::uint64_t instructions_committed = 0;
  CoverageRecorder coverage;  ///< copied at save (not prefix-recoverable)

  std::size_t memory_bytes() const;
};

/// Cadence of checkpoint emission during a parent run. Within one
/// fetch-watermark plateau (e.g. a loop spinning below the watermark)
/// only the latest checkpoint is kept; past `max_checkpoints` distinct
/// plateaus, the densest-spaced stored point is thinned so deep, late
/// resume points are still retained under the same bound.
struct CheckpointOptions {
  /// Steady-state cycles between save attempts; the first attempts come
  /// geometrically (8, 16, 32, ...) so early low-watermark states are
  /// not skipped.
  std::uint64_t interval = 64;
  std::size_t max_checkpoints = 32;
};

class Simulator {
 public:
  explicit Simulator(CoreConfig cfg);

  /// Simulate one program on a cold core.
  RunResult run(const riscv::Program& program) const;

  /// Buffer-reusing cold run: `out` is reset (keeping capacity) and
  /// refilled. `out` must have been constructed against a SignalDb with
  /// this simulator's schema.
  void run(const riscv::Program& program, RunResult& out) const;

  /// Cold run that additionally emits resume checkpoints at the given
  /// cadence into `checkpoints` (cleared first). Unsupported (throws)
  /// when record_dense_trace is set.
  void run(const riscv::Program& program, const CheckpointOptions& options,
           std::vector<Checkpoint>& checkpoints, RunResult& out) const;

  /// Resume `program` from a checkpoint taken during a run of its parent
  /// program. `parent_trace` / `parent_commits` are the parent run's full
  /// trace and commit log; their prefixes up to the checkpoint seed
  /// `out`. The caller must have established validity: identical data
  /// images and first divergent code index > checkpoint.fetch_watermark
  /// (see fuzz::first_divergence). The result is then bit-identical to a
  /// cold run of `program`.
  void run_from(const Checkpoint& checkpoint,
                const snapshot::Trace& parent_trace,
                const std::vector<CommitRecord>& parent_commits,
                const riscv::Program& program, RunResult& out) const;

  /// Decode `program` into this simulator's scratch buffer and return it
  /// — pass the result back to run_tiered as `predecoded` so a program
  /// is decoded once per worker iteration (handoff scan + simulation).
  /// The reference is invalidated by the next decode()/run*() call.
  const riscv::DecodedProgram& decode(const riscv::Program& program) const;

  /// Tiered cold run: the fast-functional tier executes the prefix up to
  /// `handoff_index` (the first instruction that can arm speculation —
  /// see fuzz::handoff_index — defensively re-clamped here), then the
  /// detailed pipeline continues on the same core state. Bit-identical
  /// trace, commits, coverage and end state to run(). Index 0 degrades
  /// to a pure detailed run; an index at or past the code length runs
  /// entirely in the fast tier. `predecoded`, when given, must be this
  /// simulator's decode() result for `program`. Falls back to the
  /// detailed path (counted in stats->fallbacks) under
  /// record_dense_trace, which the fast tier does not support.
  /// `phases`, when given, receives the run's fast/detailed wall-clock
  /// boundaries (observability span hook; nullptr costs nothing).
  void run_tiered(const riscv::Program& program, std::size_t handoff_index,
                  RunResult& out, TierStats* stats = nullptr,
                  const riscv::DecodedProgram* predecoded = nullptr,
                  TierPhaseTimes* phases = nullptr) const;

  /// Tiered cold run that additionally emits resume checkpoints (all at
  /// or past the handoff boundary: the fast tier substitutes for shallow
  /// resumes, so no prefix checkpoints are saved). Throws under
  /// record_dense_trace, like the checkpointed run().
  void run_tiered(const riscv::Program& program, std::size_t handoff_index,
                  const CheckpointOptions& options,
                  std::vector<Checkpoint>& checkpoints, RunResult& out,
                  TierStats* stats = nullptr,
                  const riscv::DecodedProgram* predecoded = nullptr,
                  TierPhaseTimes* phases = nullptr) const;

  /// Fast prefix only (test / introspection surface): execute up to the
  /// handoff boundary and materialize it into `boundary` — a Checkpoint
  /// exactly like the detailed run's push_checkpoint would save, which
  /// run_from(boundary, out.trace, out.commits, program, ...) resumes.
  /// On kCompleted `out` is the full run; on kNone (handoff at index 0)
  /// nothing was executed.
  FastPrefixOutcome run_fast_prefix(const riscv::Program& program,
                                    std::size_t handoff_index, RunResult& out,
                                    Checkpoint& boundary,
                                    TierStats* stats = nullptr) const;

  const snapshot::SignalDb& signal_db() const { return db_; }
  const CoreConfig& config() const { return cfg_; }
  const std::vector<SigDesc>& signal_descs() const { return descs_; }

 private:
  CoreConfig cfg_;
  std::vector<SigDesc> descs_;
  /// Flat-id block offsets of descs_ (validated once at construction) —
  /// what the per-component dirty-set hooks index by.
  SignalLayout layout_;
  snapshot::SignalDb db_;
  /// Per-program decode buffer, reused across runs (capacity persists).
  /// Simulator stays logically const across runs but is NOT safe for
  /// concurrent use from multiple threads — every existing holder
  /// (campaign workers, minimizer probe workers, session/baseline sims)
  /// is thread-private by construction.
  mutable riscv::DecodedProgram decode_scratch_;
};

}  // namespace specure::sim
