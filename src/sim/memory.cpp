#include "sim/memory.hpp"

namespace specure::sim {

using riscv::kCodeBase;
using riscv::kDataBase;
using riscv::kDataSize;

void Memory::load(const riscv::Program& program) {
  code_ = program.code;
  data_.assign(kDataSize, 0);
  for (std::size_t i = 0; i < program.data.size() && i < data_.size(); ++i) {
    data_[i] = program.data[i];
  }
}

void Memory::save(MemoryState& out) const {
  out.code = code_;
  out.data = data_;
}

void Memory::restore(const MemoryState& state) {
  code_ = state.code;
  data_ = state.data;
}

std::uint32_t Memory::fetch(std::uint64_t pc) const {
  if (pc < kCodeBase || (pc & 3) != 0) return 0;
  const std::uint64_t index = (pc - kCodeBase) / 4;
  if (index >= code_.size()) return 0;
  return code_[index];
}

bool Memory::data_mapped(std::uint64_t addr, unsigned size) const {
  // Overflow-safe: fuzzed programs routinely produce addresses near 2^64,
  // where a naive addr+size comparison would wrap and pass.
  if (addr < kDataBase) return false;
  const std::uint64_t offset = addr - kDataBase;
  return offset < data_.size() && size <= data_.size() - offset;
}

std::uint64_t Memory::read(std::uint64_t addr, unsigned size) const {
  if (!data_mapped(addr, size)) return 0;
  std::uint64_t v = 0;
  for (unsigned i = 0; i < size; ++i) {
    v |= static_cast<std::uint64_t>(data_[addr - kDataBase + i]) << (8 * i);
  }
  return v;
}

void Memory::write(std::uint64_t addr, unsigned size, std::uint64_t value) {
  if (!data_mapped(addr, size)) return;
  for (unsigned i = 0; i < size; ++i) {
    data_[addr - kDataBase + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

}  // namespace specure::sim
