// Branch prediction unit: gshare direction predictor (global history XOR
// PC indexing a 2-bit counter table), a direct-mapped BTB for targets, and
// a return address stack. All predictor state is microarchitectural and is
// deliberately NOT rolled back on misprediction — updates from wrong-path
// training persist, which is the Spectre v2 (branch target injection)
// surface.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/dirty_set.hpp"

namespace specure::sim {

struct Prediction {
  bool taken = false;
  bool btb_hit = false;
  std::uint64_t target = 0;
};

/// Snapshotable predictor state (part of sim::CoreState).
struct BpredState {
  std::uint64_t ghist = 0;
  std::vector<std::uint8_t> pht;
  std::vector<std::uint64_t> btb_tag;
  std::vector<std::uint64_t> btb_target;
  std::vector<std::uint64_t> ras;
  unsigned ras_top = 0;
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const CoreConfig& cfg);

  /// Attach the core's dirty set (capture engine contract). The PHT is
  /// exposed to snapshots as packed words of 32 2-bit counters, so a
  /// counter update dirties word `pht_index / 32`; BTB entries interleave
  /// as (tag_i, target_i) pairs at `btb_base + 2 * i`.
  void bind_dirty(DirtySet* dirty, std::size_t ghist_id, std::size_t pht_base,
                  std::size_t btb_base, std::size_t ras_base,
                  std::size_t ras_top_id) {
    dirty_ = dirty;
    ghist_id_ = ghist_id;
    pht_base_ = pht_base;
    btb_base_ = btb_base;
    ras_base_ = ras_base;
    ras_top_id_ = ras_top_id;
  }

  /// Predict a conditional branch at `pc`.
  Prediction predict_branch(std::uint64_t pc) const;

  /// Predict an indirect jump (JALR) target; btb_hit=false means no
  /// prediction (fall back to stall-until-resolve semantics modeled as
  /// predicting pc+4).
  Prediction predict_indirect(std::uint64_t pc) const;

  /// Update on branch resolution.
  void update_branch(std::uint64_t pc, bool taken, std::uint64_t target);
  /// Update on indirect-jump resolution.
  void update_indirect(std::uint64_t pc, std::uint64_t target);

  /// Return address stack.
  void ras_push(std::uint64_t return_pc);
  std::uint64_t ras_pop();  ///< 0 when empty

  // State exposure for snapshots / IFG.
  std::uint64_t ghist() const { return ghist_; }
  const std::vector<std::uint8_t>& pht() const { return pht_; }
  const std::vector<std::uint64_t>& btb_tags() const { return btb_tag_; }
  const std::vector<std::uint64_t>& btb_targets() const { return btb_target_; }
  const std::vector<std::uint64_t>& ras() const { return ras_; }
  unsigned ras_top() const { return ras_top_; }

  // Checkpointing.
  void save(BpredState& out) const;
  void restore(const BpredState& state);

 private:
  std::size_t pht_index(std::uint64_t pc) const;
  std::size_t btb_index(std::uint64_t pc) const;

  DirtySet* dirty_ = nullptr;
  std::size_t ghist_id_ = 0;
  std::size_t pht_base_ = 0;
  std::size_t btb_base_ = 0;
  std::size_t ras_base_ = 0;
  std::size_t ras_top_id_ = 0;

  const CoreConfig& cfg_;
  std::uint64_t ghist_ = 0;
  std::vector<std::uint8_t> pht_;       ///< 2-bit counters
  std::vector<std::uint64_t> btb_tag_;  ///< 0 = invalid
  std::vector<std::uint64_t> btb_target_;
  std::vector<std::uint64_t> ras_;
  unsigned ras_top_ = 0;  ///< number of valid entries
};

}  // namespace specure::sim
