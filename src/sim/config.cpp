#include "sim/config.hpp"

namespace specure::sim {

namespace {

bool power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

struct CorePreset {
  const char* name;
  CoreConfig (*make)();
};

const CorePreset kCorePresets[] = {
    {"default", [] { return CoreConfig{}; }},
    {"no-spec", [] { return no_speculation_config(); }},
    {"mwait",
     [] {
       CoreConfig cfg;
       cfg.vuln.mwait_emulation = true;
       return cfg;
     }},
    {"zenbleed",
     [] {
       CoreConfig cfg;
       cfg.vuln.zenbleed_emulation = true;
       return cfg;
     }},
    {"full",
     [] {
       CoreConfig cfg;
       cfg.vuln.mwait_emulation = true;
       cfg.vuln.zenbleed_emulation = true;
       return cfg;
     }},
};

}  // namespace

std::vector<std::string> validate_config(const CoreConfig& cfg) {
  std::vector<std::string> problems;
  const auto bad = [&](std::string msg) { problems.push_back(std::move(msg)); };

  if (cfg.rob_entries < 2) {
    bad("rob_entries must be >= 2 (got " + std::to_string(cfg.rob_entries) +
        "); a 1-entry ROB cannot hold an unresolved branch plus a younger "
        "instruction, so nothing speculative ever executes");
  }
  if (cfg.phys_regs < 40) {
    bad("phys_regs must be >= 40 (got " + std::to_string(cfg.phys_regs) +
        "); 32 physical registers back the architectural file and rename "
        "needs headroom beyond that");
  }
  if (cfg.retire_width == 0) bad("retire_width must be >= 1 (got 0)");
  if (cfg.branch_resolve_latency == 0) {
    bad("branch_resolve_latency must be >= 1 (got 0); branches cannot "
        "resolve before they issue");
  }
  if (cfg.jalr_resolve_latency == 0) {
    bad("jalr_resolve_latency must be >= 1 (got 0)");
  }
  if (!power_of_two(cfg.dcache_line_bytes) || cfg.dcache_line_bytes < 8) {
    bad("dcache_line_bytes must be a power of two >= 8 (got " +
        std::to_string(cfg.dcache_line_bytes) +
        "); line masks assume power-of-two lines of at least one "
        "64-bit word");
  }
  if (cfg.dcache_sets == 0) bad("dcache_sets must be >= 1 (got 0)");
  if (cfg.dcache_ways == 0) bad("dcache_ways must be >= 1 (got 0)");
  if (cfg.pht_entries == 0) bad("pht_entries must be >= 1 (got 0)");
  if (cfg.btb_entries == 0) bad("btb_entries must be >= 1 (got 0)");
  if (cfg.ras_entries == 0) bad("ras_entries must be >= 1 (got 0)");
  if (cfg.ghist_bits > 32) {
    bad("ghist_bits must be <= 32 (got " + std::to_string(cfg.ghist_bits) +
        ")");
  }
  if (cfg.tlb_entries == 0) bad("tlb_entries must be >= 1 (got 0)");
  if (cfg.page_bits < 4 || cfg.page_bits > 30) {
    bad("page_bits must be in [4, 30] (got " + std::to_string(cfg.page_bits) +
        ")");
  }
  if (cfg.max_cycles < 64) {
    bad("max_cycles must be >= 64 (got " + std::to_string(cfg.max_cycles) +
        "); shorter runs cannot even drain the pipeline");
  }
  return problems;
}

bool lookup_core_preset(std::string_view name, CoreConfig& out) {
  for (const CorePreset& p : kCorePresets) {
    if (name == p.name) {
      out = p.make();
      return true;
    }
  }
  return false;
}

std::vector<std::string> core_preset_names() {
  std::vector<std::string> names;
  for (const CorePreset& p : kCorePresets) names.emplace_back(p.name);
  return names;
}

}  // namespace specure::sim
