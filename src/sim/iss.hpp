// Architectural instruction-set simulator: a sequential, non-speculative
// reference executor for the same RV64I+Zicsr+M subset MiniBOOM runs.
//
// Two uses:
//   1. differential testing — with no vulnerability emulation armed,
//      MiniBOOM's committed architectural state must equal the ISS state
//      on every program (speculation must be invisible);
//   2. it is exactly the "golden reference model" a TheHuzz-style flow
//      compares against, documenting what Specure's no-golden-model
//      detection avoids needing.
#pragma once

#include <array>
#include <cstdint>

#include "riscv/decode.hpp"
#include "riscv/program.hpp"
#include "sim/config.hpp"
#include "sim/csr_file.hpp"
#include "sim/memory.hpp"

namespace specure::sim {

struct IssResult {
  std::array<std::uint64_t, 32> regs{};
  std::uint64_t pc = 0;                 ///< final (halt) PC
  std::uint64_t instructions = 0;       ///< executed count
  bool halted_clean = false;            ///< ECALL/EBREAK/illegal/fall-off
};

class Iss {
 public:
  explicit Iss(const CoreConfig& cfg) : cfg_(cfg), csr_(cfg) {}

  /// Execute sequentially for at most `max_instructions`. Every run
  /// starts from power-on state (memory reloaded, CSRs reset), so one
  /// Iss can be reused across programs.
  IssResult run(const riscv::Program& program,
                std::uint64_t max_instructions = 100000);

  /// Buffer-reusing overload (mirrors Simulator::run(p, RunResult&)):
  /// `out` is reset and refilled; the program is decoded once into an
  /// internal DecodedInst array instead of once per executed instruction.
  void run(const riscv::Program& program, IssResult& out,
           std::uint64_t max_instructions = 100000);

  /// Same, executing over a caller-provided decode of `program` (e.g.
  /// Simulator::decode's buffer), so differential harnesses decode each
  /// program exactly once across both executors.
  void run(const riscv::Program& program, const riscv::DecodedProgram& dec,
           IssResult& out, std::uint64_t max_instructions = 100000);

  const CsrFile& csr() const { return csr_; }
  const Memory& memory() const { return mem_; }

 private:
  CoreConfig cfg_;
  Memory mem_;
  CsrFile csr_;
  riscv::DecodedProgram decode_;  ///< per-run decode cache (reused buffer)
};

}  // namespace specure::sim
