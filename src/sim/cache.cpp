#include "sim/cache.hpp"

namespace specure::sim {

Dcache::Dcache(const CoreConfig& cfg, Memory& mem)
    : cfg_(cfg),
      mem_(mem),
      lines_(cfg.dcache_sets * cfg.dcache_ways),
      lru_(cfg.dcache_sets, 0) {}

std::uint64_t Dcache::line_base(std::uint64_t addr) const {
  return addr & ~static_cast<std::uint64_t>(cfg_.dcache_line_bytes - 1);
}

unsigned Dcache::set_index(std::uint64_t addr) const {
  return static_cast<unsigned>((addr / cfg_.dcache_line_bytes) %
                               cfg_.dcache_sets);
}

std::uint64_t Dcache::compute_digest(std::uint64_t line_addr) const {
  std::uint64_t digest = 0;
  for (unsigned off = 0; off < cfg_.dcache_line_bytes; off += 8) {
    digest ^= mem_.read(line_addr + off, 8) + 0x9e3779b97f4a7c15ULL +
              (digest << 6) + (digest >> 2);
  }
  return digest;
}

Dcache::Line* Dcache::lookup(std::uint64_t addr) {
  const std::uint64_t base = line_base(addr);
  const unsigned set = set_index(addr);
  for (unsigned w = 0; w < cfg_.dcache_ways; ++w) {
    Line& line = lines_[set * cfg_.dcache_ways + w];
    if (line.valid && line.tag == base) {
      lru_[set] = static_cast<std::uint8_t>((w + 1) % cfg_.dcache_ways);
      return &line;
    }
  }
  return nullptr;
}

void Dcache::fill(std::uint64_t addr) {
  const std::uint64_t base = line_base(addr);
  const unsigned set = set_index(addr);
  const unsigned victim = lru_[set];
  Line& line = lines_[set * cfg_.dcache_ways + victim];
  if (line.valid && hook_) hook_(line.tag, DcacheEvent::kEviction);
  line.valid = true;
  line.tag = base;
  line.digest = compute_digest(base);
  lru_[set] = static_cast<std::uint8_t>((victim + 1) % cfg_.dcache_ways);
  if (hook_) hook_(base, DcacheEvent::kFill);
}

bool Dcache::load(std::uint64_t addr, unsigned size, std::uint64_t& value) {
  value = mem_.read(addr, size);
  if (!mem_.data_mapped(addr, size)) return true;  // bypass: no cache effect
  mark_set(addr);  // even a hit rotates the LRU cursor
  if (lookup(addr) != nullptr) {
    if (hook_) hook_(line_base(addr), DcacheEvent::kHit);
    return true;
  }
  fill(addr);
  return false;
}

void Dcache::store(std::uint64_t addr, unsigned size, std::uint64_t value) {
  mem_.write(addr, size, value);
  if (!mem_.data_mapped(addr, size)) return;
  mark_set(addr);
  Line* line = lookup(addr);
  if (line == nullptr) {
    fill(addr);  // fill() digests the already-updated memory
  } else {
    line->digest = compute_digest(line->tag);
  }
  if (hook_) hook_(line_base(addr), DcacheEvent::kWrite);
}

bool Dcache::valid(unsigned set, unsigned way) const {
  return lines_[set * cfg_.dcache_ways + way].valid;
}
std::uint64_t Dcache::tag(unsigned set, unsigned way) const {
  return lines_[set * cfg_.dcache_ways + way].tag;
}
std::uint64_t Dcache::data_digest(unsigned set, unsigned way) const {
  return lines_[set * cfg_.dcache_ways + way].digest;
}

void Dcache::save(DcacheState& out) const {
  out.lines.resize(lines_.size());
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    out.lines[i] = {lines_[i].valid, lines_[i].tag, lines_[i].digest};
  }
  out.lru = lru_;
}

void Dcache::restore(const DcacheState& state) {
  lines_.resize(state.lines.size());
  for (std::size_t i = 0; i < state.lines.size(); ++i) {
    lines_[i] = {state.lines[i].valid, state.lines[i].tag,
                 state.lines[i].digest};
  }
  lru_ = state.lru;
}

bool Dcache::line_resident(std::uint64_t addr) const {
  const std::uint64_t base = line_base(addr);
  const unsigned set = set_index(addr);
  for (unsigned w = 0; w < cfg_.dcache_ways; ++w) {
    const Line& line = lines_[set * cfg_.dcache_ways + w];
    if (line.valid && line.tag == base) return true;
  }
  return false;
}

}  // namespace specure::sim
