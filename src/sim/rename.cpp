#include "sim/rename.hpp"

#include <algorithm>

namespace specure::sim {

RenameStage::RenameStage(const CoreConfig& cfg)
    : cfg_(cfg), prf_(cfg.phys_regs, 0), rev_(cfg.phys_regs, kUnmapped) {
  // Identity initial mapping: arch i -> phys i; the rest are free.
  for (unsigned i = 0; i < 32; ++i) maptable_[i] = static_cast<PhysReg>(i);
  for (unsigned p = cfg.phys_regs; p-- > 32;) {
    freelist_.push_back(static_cast<PhysReg>(p));
  }
  rebuild_rev();
}

void RenameStage::rebuild_rev() {
  std::fill(rev_.begin(), rev_.end(), kUnmapped);
  for (unsigned i = 0; i < 32; ++i) {
    rev_[maptable_[i]] = static_cast<std::uint8_t>(i);
  }
}

bool RenameStage::allocate(unsigned arch, PhysReg& new_phys,
                           PhysReg& old_phys) {
  if (arch == 0) {  // x0 is hardwired zero; no rename.
    new_phys = 0;
    old_phys = 0;
    return true;
  }
  if (freelist_.empty()) return false;
  new_phys = freelist_.back();
  freelist_.pop_back();
  old_phys = maptable_[arch];
  // The architectural register keeps its old value until the producer
  // writes back: seed the new physical register with the old contents so
  // the map-table view never exposes stale data from a previous
  // allocation.
  prf_[new_phys] = prf_[old_phys];
  maptable_[arch] = new_phys;
  rev_[old_phys] = kUnmapped;
  rev_[new_phys] = static_cast<std::uint8_t>(arch);
  if (dirty_ != nullptr) {
    dirty_->mark(maptable_base_ + arch);
    dirty_->mark(freecount_id_);
    dirty_->mark(prf_base_ + new_phys);
    dirty_->mark(rfx_base_ + arch);  // same value through a new phys reg
  }
  return true;
}

void RenameStage::checkpoint(unsigned rob_index) {
  checkpoints_[rob_index] = maptable_;
}

void RenameStage::rollback(unsigned rob_index, bool suppress_restore) {
  auto it = checkpoints_.find(rob_index);
  if (it != checkpoints_.end()) {
    if (!suppress_restore) {
      maptable_ = it->second;
      rebuild_rev();
      if (dirty_ != nullptr) {
        // Any subset of the 32 mappings may have reverted, and with them
        // the derived architectural views. Conservative is exact.
        dirty_->mark_range(maptable_base_, 32);
        dirty_->mark_range(rfx_base_, 32);
      }
    }
    // Drop this and all younger checkpoints. Checkpoint keys are ROB
    // indices of still-unresolved branches; "younger" here is handled by
    // the core, which rolls back the youngest mispredicted branch first
    // and squashes the rest individually.
    checkpoints_.erase(it);
  }
}

void RenameStage::release_checkpoint(unsigned rob_index) {
  checkpoints_.erase(rob_index);
}

void RenameStage::commit_free(PhysReg old_phys) {
  // Initial identity mappings (phys 1..31) are freed too once their arch
  // register is renamed and committed; phys 0 is the constant zero.
  if (old_phys != 0) {
    freelist_.push_back(old_phys);
    if (dirty_ != nullptr) dirty_->mark(freecount_id_);
  }
}

void RenameStage::squash_free(PhysReg new_phys) {
  if (new_phys != 0) {
    freelist_.push_back(new_phys);
    if (dirty_ != nullptr) dirty_->mark(freecount_id_);
  }
}

void RenameStage::save(RenameState& out) const {
  out.maptable = maptable_;
  out.freelist = freelist_;
  out.prf = prf_;
  out.checkpoints = checkpoints_;
}

void RenameStage::restore(const RenameState& state) {
  maptable_ = state.maptable;
  freelist_ = state.freelist;
  prf_ = state.prf;
  checkpoints_ = state.checkpoints;
  rebuild_rev();
}

}  // namespace specure::sim
