#include "sim/rename.hpp"

#include <algorithm>

namespace specure::sim {

RenameStage::RenameStage(const CoreConfig& cfg)
    : cfg_(cfg), prf_(cfg.phys_regs, 0) {
  // Identity initial mapping: arch i -> phys i; the rest are free.
  for (unsigned i = 0; i < 32; ++i) maptable_[i] = static_cast<PhysReg>(i);
  for (unsigned p = cfg.phys_regs; p-- > 32;) {
    freelist_.push_back(static_cast<PhysReg>(p));
  }
}

bool RenameStage::allocate(unsigned arch, PhysReg& new_phys,
                           PhysReg& old_phys) {
  if (arch == 0) {  // x0 is hardwired zero; no rename.
    new_phys = 0;
    old_phys = 0;
    return true;
  }
  if (freelist_.empty()) return false;
  new_phys = freelist_.back();
  freelist_.pop_back();
  old_phys = maptable_[arch];
  // The architectural register keeps its old value until the producer
  // writes back: seed the new physical register with the old contents so
  // the map-table view never exposes stale data from a previous
  // allocation.
  prf_[new_phys] = prf_[old_phys];
  maptable_[arch] = new_phys;
  return true;
}

void RenameStage::checkpoint(unsigned rob_index) {
  checkpoints_[rob_index] = maptable_;
}

void RenameStage::rollback(unsigned rob_index, bool suppress_restore) {
  auto it = checkpoints_.find(rob_index);
  if (it != checkpoints_.end()) {
    if (!suppress_restore) maptable_ = it->second;
    // Drop this and all younger checkpoints. Checkpoint keys are ROB
    // indices of still-unresolved branches; "younger" here is handled by
    // the core, which rolls back the youngest mispredicted branch first
    // and squashes the rest individually.
    checkpoints_.erase(it);
  }
}

void RenameStage::release_checkpoint(unsigned rob_index) {
  checkpoints_.erase(rob_index);
}

void RenameStage::commit_free(PhysReg old_phys) {
  // Initial identity mappings (phys 1..31) are freed too once their arch
  // register is renamed and committed; phys 0 is the constant zero.
  if (old_phys != 0) freelist_.push_back(old_phys);
}

void RenameStage::squash_free(PhysReg new_phys) {
  if (new_phys != 0) freelist_.push_back(new_phys);
}

void RenameStage::save(RenameState& out) const {
  out.maptable = maptable_;
  out.freelist = freelist_;
  out.prf = prf_;
  out.checkpoints = checkpoints_;
}

void RenameStage::restore(const RenameState& state) {
  maptable_ = state.maptable;
  freelist_ = state.freelist;
  prf_ = state.prf;
  checkpoints_ = state.checkpoints;
}

}  // namespace specure::sim
