// Toy TLB: identity translation with a small fully-associative cache of
// page translations. The translations themselves are trivial (VA == PA),
// but the *residency* state is genuine microarchitectural residue that
// speculative accesses leave behind (a TLB side-channel surface; cf.
// TLBleed). Exposed to snapshots and to the IFG.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/dirty_set.hpp"

namespace specure::sim {

/// Snapshotable TLB state (part of sim::CoreState).
struct TlbState {
  std::vector<char> valid;
  std::vector<std::uint64_t> vpn;
  std::vector<std::uint64_t> ppn;
  unsigned next_victim = 0;
};

class Tlb {
 public:
  explicit Tlb(const CoreConfig& cfg);

  /// Attach the core's dirty set; entries interleave as (valid_i, vpn_i,
  /// ppn_i) triples starting at `tlb_base`. A translate() miss fills the
  /// round-robin victim and marks exactly that entry's triple.
  void bind_dirty(DirtySet* dirty, std::size_t tlb_base) {
    dirty_ = dirty;
    tlb_base_ = tlb_base;
  }

  /// Translate a virtual address. Returns true on TLB hit; a miss inserts
  /// the translation (round-robin replacement). `pa` is always valid.
  bool translate(std::uint64_t va, std::uint64_t& pa);

  bool valid(unsigned i) const { return valid_[i]; }
  std::uint64_t vpn(unsigned i) const { return vpn_[i]; }
  std::uint64_t ppn(unsigned i) const { return ppn_[i]; }
  unsigned entries() const { return static_cast<unsigned>(vpn_.size()); }

  // Checkpointing.
  void save(TlbState& out) const;
  void restore(const TlbState& state);

 private:
  const CoreConfig& cfg_;
  std::vector<char> valid_;
  std::vector<std::uint64_t> vpn_;
  std::vector<std::uint64_t> ppn_;
  unsigned next_victim_ = 0;
  DirtySet* dirty_ = nullptr;
  std::size_t tlb_base_ = 0;
};

}  // namespace specure::sim
