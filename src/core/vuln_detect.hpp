// Vulnerability Detector — §3.2: direct-channel leakage detection without
// a golden model.
//
// A vulnerability is an *architectural* state change across a
// misspeculated (rolled-back) window that is not explained by the PUT's
// own commit stream. Each finding is cross-referenced against the PDLC
// list to name the microarchitectural root cause and a witness leakage
// path (the paper's root-cause report, CWE-1342).
//
// When `monitor_cache` is set (the paper's Spectre experiment: "we added a
// data cache to the PDLC list"), persistent data-cache changes inside a
// misspeculated window that coincide with a tainted speculative access are
// reported as cache-residue findings (Spectre v1/v2 class).
#pragma once

#include <string>
#include <vector>

#include "core/leakage.hpp"
#include "ift/pdlc.hpp"
#include "riscv/program.hpp"
#include "sim/core.hpp"

namespace specure::core {

enum class VulnKind : std::uint8_t {
  kDirectLeak,    ///< architectural delta with no commit explanation
  kCacheResidue,  ///< persistent secret-dependent cache change (Spectre)
};

struct RootCause {
  std::string source_signal;          ///< microarchitectural register
  std::vector<std::string> path;      ///< witness PDLC path source..sink
};

struct VulnReport {
  VulnKind kind = VulnKind::kDirectLeak;
  SpecWindow window;
  std::string sink_signal;            ///< leaked-to architectural signal
  std::uint64_t before = 0, after = 0;
  std::vector<RootCause> root_causes;
  std::string cwe = "CWE-1342";
  /// Structural leakage signature (triage/signature.hpp), rendered as a
  /// string whose prefix is finding_key(). Filled by analyze(); the
  /// campaign dedup axis and the triage minimizer's reproduction oracle.
  std::string signature;
  /// The test input that triggered the finding. The detector never sees
  /// the program, so the campaign worker stamps it after analyze(); empty
  /// for callers that analyze a bare RunResult.
  riscv::Program program;
};

/// Coarse finding bucket ("direct-leak:core.rf.x7") — kind + sink (+
/// opener class for cache residue). The pre-triage dedup axis, retained
/// as the grouping key in reports.
std::string finding_key(const VulnReport& report);

/// The campaign dedup key: the structural signature when present, else
/// the coarse finding_key (reports built before the signature pass).
/// Always contains finding_key(report) as a prefix, so substring stop
/// conditions keep matching.
std::string dedup_key(const VulnReport& report);

struct DetectorOptions {
  bool monitor_cache = false;  ///< §4.2 Spectre mode

  /// Commit drain horizon (cycles past the window end). Correct-path
  /// instructions that wrote back inside a window can still be draining
  /// from the ROB when it closes; their commits land shortly after.
  /// A commit within this horizon discharges the matching architectural
  /// delta. Squashed (transient) instructions never commit at any
  /// horizon, so genuine leaks stay detectable (DESIGN.md D5).
  std::uint64_t commit_drain_horizon = 48;
};

class VulnerabilityDetector {
 public:
  /// `ifg` and `pdlc` come from the Offline Phase; signal names in the
  /// trace schema and the IFG must agree (they do for MiniBOOM, both
  /// derive from sim::describe_signals).
  VulnerabilityDetector(const ift::Ifg& ifg, const ift::PdlcList& pdlc,
                        const snapshot::SignalDb& db,
                        DetectorOptions options = {});

  /// Analyze one simulation run.
  std::vector<VulnReport> analyze(const sim::RunResult& run,
                                  const std::vector<SpecWindow>& windows) const;

 private:
  bool delta_explained_by_commits(
      const snapshot::SignalDb& db, snapshot::SignalId sig,
      const std::vector<sim::CommitRecord>& commits, std::uint64_t from,
      std::uint64_t to) const;

  std::vector<RootCause> find_root_causes(const std::string& sink_name,
                                          const snapshot::Trace& trace,
                                          std::uint64_t from,
                                          std::uint64_t to) const;

  const ift::Ifg& ifg_;
  const ift::PdlcList& pdlc_;
  const snapshot::SignalDb& db_;
  DetectorOptions options_;
};

std::string_view vuln_kind_name(VulnKind kind);

}  // namespace specure::core
