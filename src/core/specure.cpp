#include "core/specure.hpp"

#include <chrono>
#include <memory>
#include <thread>

namespace specure::core {

SpecureEngine::SpecureEngine(const EngineOptions& options)
    : options_(options),
      offline_(run_offline_phase(options.core, options.pdlc)),
      sim_(options.core) {}

std::size_t SpecureEngine::resolved_jobs() const {
  std::size_t jobs = options_.jobs;
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  // More workers than in-flight jobs per batch would sit idle.
  const std::size_t batch = options_.batch_size == 0 ? 1 : options_.batch_size;
  return jobs < batch ? jobs : batch;
}

CampaignResult SpecureEngine::run(
    std::uint64_t iterations,
    const std::function<bool(const CampaignResult&)>& stop) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t jobs = resolved_jobs();
  const std::size_t batch_size =
      options_.batch_size == 0 ? 1 : options_.batch_size;

  CampaignScheduler scheduler(options_.fuzzer, options_.rng_seed, iterations);
  ResultMerger merger(offline_, sim_.signal_db(), options_.feedback,
                      options_.lp_policy, options_.mst_sample_rows);

  // One simulator per worker, built on the first run() and reused across
  // campaigns; unique_ptr keeps the simulators (and the internal
  // references the LP prober and detector hold into them) at stable
  // addresses.
  if (workers_.empty()) {
    workers_.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      workers_.push_back(std::make_unique<CampaignWorker>(
          options_.core, offline_, options_.lp_policy, options_.detector));
    }
    pool_ = std::make_unique<util::ThreadPool>(jobs);
  }
  util::ThreadPool& pool = *pool_;

  bool stopped = false;
  std::vector<WorkerResult> results;
  while (!stopped) {
    const std::vector<fuzz::FuzzJob> batch = scheduler.next_batch(batch_size);
    if (batch.empty()) break;

    results.clear();
    results.resize(batch.size());
    // The merger is quiescent until the batch completes, so its covered
    // bitmap is a stable read-only snapshot for every worker.
    const std::vector<bool>& lp_covered = merger.lp_covered_mask();
    pool.parallel_for(batch.size(), [&](std::size_t task, std::size_t ctx) {
      results[task] = workers_[ctx]->process(batch[task], &lp_covered);
    });

    // Merge in iteration order; feedback earned here shapes the corpus the
    // next batch is drawn from (batch-synchronous semantics).
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (merger.merge(std::move(results[i]))) {
        scheduler.feedback(batch[i].program, batch[i].iteration);
      }
      if (stop && stop(merger.result())) {
        stopped = true;
        break;
      }
    }
  }

  CampaignResult result = merger.take_result();
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

}  // namespace specure::core
