#include "core/specure.hpp"

#include <chrono>

namespace specure::core {

std::string finding_key(const VulnReport& report) {
  std::string key =
      std::string(vuln_kind_name(report.kind)) + ":" + report.sink_signal;
  if (report.kind == VulnKind::kCacheResidue) {
    // Conditional-branch (v1-class) and indirect-jump (v2-class) windows
    // are distinct vulnerabilities even when the residue lands in the
    // same structure.
    key += report.window.has_indirect_opener() ? ":indirect" : ":conditional";
  }
  return key;
}

SpecureEngine::SpecureEngine(const EngineOptions& options)
    : options_(options),
      offline_(run_offline_phase(options.core, options.pdlc)),
      sim_(options.core) {}

CampaignResult SpecureEngine::run(
    std::uint64_t iterations,
    const std::function<bool(const CampaignResult&)>& stop) {
  const auto t0 = std::chrono::steady_clock::now();
  CampaignResult result;
  result.pdlc_total = offline_.pdlc.size();

  fuzz::Fuzzer fuzzer(options_.fuzzer, options_.rng_seed);
  LpCoverageMap lp(offline_.ifg, offline_.pdlc, sim_.signal_db(),
                   options_.lp_policy);
  VulnerabilityDetector detector(offline_.ifg, offline_.pdlc,
                                 sim_.signal_db(), options_.detector);
  sim::CoverageRecorder code_cov;

  for (std::uint64_t iter = 1; iter <= iterations; ++iter) {
    const riscv::Program program = fuzzer.next();
    const sim::RunResult run = sim_.run(program);
    const std::vector<SpecWindow> windows = extract_mst(run.trace);
    const snapshot::TraceDeltas deltas(run.trace);

    result.total_windows += windows.size();
    for (const auto& w : windows) {
      result.mispredicted_windows += w.mispredicted;
      if (result.mst_sample.size() < options_.mst_sample_rows &&
          w.mispredicted) {
        result.mst_sample.push_back(w);
      }
    }

    const std::size_t lp_new = lp.update(deltas, windows);
    const std::size_t cov_new = code_cov.merge(run.coverage);

    // Vulnerability detection runs regardless of the guidance mode.
    bool new_finding = false;
    for (auto& report : detector.analyze(run, windows)) {
      const std::string key = finding_key(report);
      if (result.first_detection.emplace(key, iter).second) {
        result.vulns.push_back(std::move(report));
        new_finding = true;
      }
    }

    // Feedback: the configured coverage metric guides corpus growth; a
    // vulnerability always counts as interesting (Figure 1's
    // "Vulnerability Feedback" arrow).
    const bool interesting =
        new_finding || (options_.feedback == FeedbackMode::kLeakagePath
                            ? lp_new > 0
                            : cov_new > 0);
    if (interesting) fuzzer.report_interesting(program);

    IterationRecord rec;
    rec.iteration = iter;
    rec.covered_pdlc = lp.covered();
    rec.coverage_points = code_cov.point_count();
    rec.vulns_found = result.vulns.size();
    rec.cycles = run.cycles;
    result.history.push_back(rec);

    if (stop && stop(result)) break;
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

}  // namespace specure::core
