#include "core/specure.hpp"

namespace specure::core {

CampaignSpec EngineOptions::to_spec() const {
  CampaignSpec spec;
  spec.name = "engine-options";
  spec.core = core;
  spec.fuzzer = fuzzer;
  spec.feedback = feedback;
  spec.detector = detector;
  spec.lp_policy = lp_policy;
  spec.pdlc = pdlc;
  spec.rng_seed = rng_seed;
  spec.mst_sample_rows = mst_sample_rows;
  spec.jobs = jobs;
  // The old engine treated batch_size == 0 as 1; CampaignSpec::validate
  // rejects 0, so coerce here to keep the shim's exact-behaviour promise.
  spec.batch_size = batch_size == 0 ? 1 : batch_size;
  return spec;
}

SpecureEngine::SpecureEngine(const EngineOptions& options)
    : session_(options.to_spec()) {
  // One standing stop condition reads the per-run user callback, so
  // repeated run() calls never stack conditions.
  session_.add_stop([this](const CampaignResult& r) {
    return user_stop_ != nullptr && user_stop_(r);
  });
}

CampaignResult SpecureEngine::run(
    std::uint64_t iterations,
    const std::function<bool(const CampaignResult&)>& stop) {
  session_.set_iteration_budget(iterations);
  user_stop_ = stop;
  CampaignResult result = session_.run();
  user_stop_ = nullptr;
  return result;
}

}  // namespace specure::core
