#include "core/campaign_spec.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/strings.hpp"

namespace specure::core {

namespace {

// ---------------------------------------------------------- value parsing --

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  if (value.empty()) throw SpecError(key + ": empty value, expected integer");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size() || value[0] == '-') {
    throw SpecError(key + ": '" + value + "' is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

std::uint64_t parse_u64_max(const std::string& key, const std::string& value,
                            std::uint64_t max) {
  const std::uint64_t v = parse_u64(key, value);
  if (v > max) {
    throw SpecError(key + ": " + value + " exceeds the maximum of " +
                    std::to_string(max));
  }
  return v;
}

unsigned parse_unsigned(const std::string& key, const std::string& value) {
  return static_cast<unsigned>(
      parse_u64_max(key, value, std::numeric_limits<unsigned>::max()));
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "on" || value == "yes") {
    return true;
  }
  if (value == "false" || value == "0" || value == "off" || value == "no") {
    return false;
  }
  throw SpecError(key + ": '" + value + "' is not a bool (use true/false)");
}

double parse_double(const std::string& key, const std::string& value) {
  if (value.empty()) throw SpecError(key + ": empty value, expected number");
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || v < 0) {
    throw SpecError(key + ": '" + value + "' is not a non-negative number");
  }
  return v;
}

std::string render_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

// -------------------------------------------------------------- key table --

struct KeyDef {
  const char* key;
  const char* section;
  bool quoted;  ///< string-typed in TOML / JSON
  std::string (*get)(const CampaignSpec&);
  void (*set)(CampaignSpec&, const std::string&);
};

#define SPEC_U64(KEY, SECTION, FIELD)                                       \
  KeyDef{KEY, SECTION, false,                                               \
         [](const CampaignSpec& s) { return std::to_string(s.FIELD); },     \
         [](CampaignSpec& s, const std::string& v) {                        \
           s.FIELD = parse_u64(KEY, v);                                     \
         }}

#define SPEC_UNSIGNED(KEY, SECTION, FIELD)                                  \
  KeyDef{KEY, SECTION, false,                                               \
         [](const CampaignSpec& s) { return std::to_string(s.FIELD); },     \
         [](CampaignSpec& s, const std::string& v) {                        \
           s.FIELD = parse_unsigned(KEY, v);                                \
         }}

#define SPEC_SIZE(KEY, SECTION, FIELD)                                      \
  KeyDef{KEY, SECTION, false,                                               \
         [](const CampaignSpec& s) { return std::to_string(s.FIELD); },     \
         [](CampaignSpec& s, const std::string& v) {                        \
           s.FIELD = static_cast<std::size_t>(parse_u64(KEY, v));           \
         }}

#define SPEC_BOOL(KEY, SECTION, FIELD)                                      \
  KeyDef{KEY, SECTION, false,                                               \
         [](const CampaignSpec& s) {                                        \
           return std::string(s.FIELD ? "true" : "false");                  \
         },                                                                 \
         [](CampaignSpec& s, const std::string& v) {                        \
           s.FIELD = parse_bool(KEY, v);                                    \
         }}

const std::vector<KeyDef>& key_table() {
  static const std::vector<KeyDef> kKeys = {
      KeyDef{"name", "", true,
             [](const CampaignSpec& s) { return s.name; },
             [](CampaignSpec& s, const std::string& v) {
               if (v.empty()) throw SpecError("name: must not be empty");
               s.name = v;
             }},
      // -- core ------------------------------------------------------------
      SPEC_UNSIGNED("rob_entries", "core", core.rob_entries),
      SPEC_UNSIGNED("phys_regs", "core", core.phys_regs),
      SPEC_UNSIGNED("retire_width", "core", core.retire_width),
      SPEC_UNSIGNED("branch_resolve_latency", "core",
                    core.branch_resolve_latency),
      SPEC_UNSIGNED("jalr_resolve_latency", "core", core.jalr_resolve_latency),
      SPEC_UNSIGNED("load_hit_latency", "core", core.load_hit_latency),
      SPEC_UNSIGNED("load_miss_latency", "core", core.load_miss_latency),
      SPEC_UNSIGNED("mul_latency", "core", core.mul_latency),
      SPEC_UNSIGNED("div_latency", "core", core.div_latency),
      SPEC_UNSIGNED("ghist_bits", "core", core.ghist_bits),
      SPEC_UNSIGNED("pht_entries", "core", core.pht_entries),
      SPEC_UNSIGNED("btb_entries", "core", core.btb_entries),
      SPEC_UNSIGNED("ras_entries", "core", core.ras_entries),
      SPEC_UNSIGNED("dcache_sets", "core", core.dcache_sets),
      SPEC_UNSIGNED("dcache_ways", "core", core.dcache_ways),
      SPEC_UNSIGNED("dcache_line_bytes", "core", core.dcache_line_bytes),
      SPEC_UNSIGNED("tlb_entries", "core", core.tlb_entries),
      SPEC_UNSIGNED("page_bits", "core", core.page_bits),
      SPEC_U64("max_cycles", "core", core.max_cycles),
      SPEC_U64("mwait_timer_start", "core", core.mwait_timer_start),
      SPEC_BOOL("mwait", "core", core.vuln.mwait_emulation),
      SPEC_BOOL("zenbleed", "core", core.vuln.zenbleed_emulation),
      // Debug/differential switch: record the dense reference trace next
      // to the delta trace. Workers drop to the cold detailed path
      // (checkpoint + fast tier bypassed), so campaign results must be
      // identical with it on or off — CI's capture-differential smoke
      // diffs the two reports. Deliberately NOT result-neutral for
      // serve's dedup key: a dense run is a different execution plan.
      SPEC_BOOL("dense_trace", "core", core.record_dense_trace),
      // -- fuzzer ----------------------------------------------------------
      SPEC_BOOL("special_seeds", "fuzzer", fuzzer.use_special_seeds),
      SPEC_SIZE("random_seed_count", "fuzzer", fuzzer.random_seed_count),
      SPEC_SIZE("random_seed_len", "fuzzer", fuzzer.random_seed_len),
      SPEC_SIZE("corpus_max", "fuzzer", fuzzer.corpus_max),
      SPEC_UNSIGNED("splice_percent", "fuzzer", fuzzer.splice_percent),
      SPEC_UNSIGNED("mutation_min_stack", "fuzzer", fuzzer.mutator.min_stack),
      SPEC_UNSIGNED("mutation_max_stack", "fuzzer", fuzzer.mutator.max_stack),
      SPEC_SIZE("max_code_len", "fuzzer", fuzzer.mutator.max_code_len),
      SPEC_SIZE("max_data_len", "fuzzer", fuzzer.mutator.max_data_len),
      KeyDef{"replay_program", "fuzzer", true,
             [](const CampaignSpec& s) { return s.fuzzer.replay_program_hex; },
             [](CampaignSpec& s, const std::string& v) {
               s.fuzzer.replay_program_hex = v;
             }},
      // -- campaign --------------------------------------------------------
      KeyDef{"feedback", "campaign", true,
             [](const CampaignSpec& s) {
               return std::string(feedback_mode_name(s.feedback));
             },
             [](CampaignSpec& s, const std::string& v) {
               if (v == "lp") {
                 s.feedback = FeedbackMode::kLeakagePath;
               } else if (v == "codecov") {
                 s.feedback = FeedbackMode::kCodeCoverage;
               } else {
                 throw SpecError("feedback: '" + v +
                                 "' is not a feedback mode (lp | codecov)");
               }
             }},
      KeyDef{"lp_policy", "campaign", true,
             [](const CampaignSpec& s) {
               return std::string(lp_policy_name(s.lp_policy));
             },
             [](CampaignSpec& s, const std::string& v) {
               if (v == "all-signals") {
                 s.lp_policy = LpPolicy::kAllSignals;
               } else if (v == "endpoints") {
                 s.lp_policy = LpPolicy::kEndpoints;
               } else {
                 throw SpecError(
                     "lp_policy: '" + v +
                     "' is not a policy (all-signals | endpoints)");
               }
             }},
      SPEC_BOOL("monitor_cache", "campaign", detector.monitor_cache),
      SPEC_U64("commit_drain_horizon", "campaign",
               detector.commit_drain_horizon),
      SPEC_U64("seed", "campaign", rng_seed),
      SPEC_SIZE("jobs", "campaign", jobs),
      KeyDef{"batch", "campaign", false,
             [](const CampaignSpec& s) { return std::to_string(s.batch_size); },
             [](CampaignSpec& s, const std::string& v) {
               s.batch_size = static_cast<std::size_t>(parse_u64("batch", v));
             }},
      KeyDef{"pipeline", "campaign", true,
             [](const CampaignSpec& s) {
               return std::string(pipeline_mode_name(s.pipeline));
             },
             [](CampaignSpec& s, const std::string& v) {
               if (v == "window") {
                 s.pipeline = PipelineMode::kWindow;
               } else if (v == "barrier") {
                 s.pipeline = PipelineMode::kBarrier;
               } else {
                 throw SpecError("pipeline: '" + v +
                                 "' is not an executor (window | barrier)");
               }
             }},
      KeyDef{"tier", "campaign", true,
             [](const CampaignSpec& s) {
               return std::string(tier_mode_name(s.tier));
             },
             [](CampaignSpec& s, const std::string& v) {
               if (v == "detailed") {
                 s.tier = TierMode::kDetailed;
               } else if (v == "fast") {
                 s.tier = TierMode::kFast;
               } else {
                 throw SpecError("tier: '" + v +
                                 "' is not a tier (detailed | fast)");
               }
             }},
      SPEC_BOOL("checkpoint", "campaign", checkpoint),
      SPEC_SIZE("checkpoint_cache_mb", "campaign", checkpoint_cache_mb),
      SPEC_SIZE("mst_rows", "campaign", mst_sample_rows),
      SPEC_U64("progress_interval", "campaign", progress_interval),
      KeyDef{"vcd_out", "campaign", true,
             [](const CampaignSpec& s) { return s.vcd_out; },
             [](CampaignSpec& s, const std::string& v) { s.vcd_out = v; }},
      KeyDef{"triage", "campaign", true,
             [](const CampaignSpec& s) {
               return std::string(triage_mode_name(s.triage));
             },
             [](CampaignSpec& s, const std::string& v) {
               if (v == "off") {
                 s.triage = TriageMode::kOff;
               } else if (v == "on") {
                 s.triage = TriageMode::kOn;
               } else if (v == "full") {
                 s.triage = TriageMode::kFull;
               } else {
                 throw SpecError("triage: '" + v +
                                 "' is not a triage mode (off | on | full)");
               }
             }},
      KeyDef{"triage_out", "campaign", true,
             [](const CampaignSpec& s) { return s.triage_out; },
             [](CampaignSpec& s, const std::string& v) { s.triage_out = v; }},
      KeyDef{"state_out", "campaign", true,
             [](const CampaignSpec& s) { return s.state_out; },
             [](CampaignSpec& s, const std::string& v) { s.state_out = v; }},
      KeyDef{"state_interval", "campaign", false,
             [](const CampaignSpec& s) {
               return render_double(s.state_interval);
             },
             [](CampaignSpec& s, const std::string& v) {
               s.state_interval = parse_double("state_interval", v);
             }},
      SPEC_BOOL("metrics", "campaign", metrics),
      KeyDef{"trace_out", "campaign", true,
             [](const CampaignSpec& s) { return s.trace_out; },
             [](CampaignSpec& s, const std::string& v) { s.trace_out = v; }},
      // -- offline ---------------------------------------------------------
      SPEC_BOOL("pdlc_reverse", "offline", pdlc.reverse),
      SPEC_BOOL("pdlc_register_sources_only", "offline",
                pdlc.register_sources_only),
      SPEC_SIZE("pdlc_max_channels", "offline", pdlc.max_channels),
      // -- budget ----------------------------------------------------------
      SPEC_U64("iterations", "budget", budget.iterations),
      SPEC_U64("max_vulns", "budget", budget.max_vulns),
      KeyDef{"max_seconds", "budget", false,
             [](const CampaignSpec& s) { return render_double(s.budget.max_seconds); },
             [](CampaignSpec& s, const std::string& v) {
               s.budget.max_seconds = parse_double("max_seconds", v);
             }},
      SPEC_U64("plateau", "budget", budget.plateau),
  };
  return kKeys;
}

#undef SPEC_U64
#undef SPEC_UNSIGNED
#undef SPEC_SIZE
#undef SPEC_BOOL

const KeyDef* find_key(const std::string& key) {
  for (const KeyDef& def : key_table()) {
    if (key == def.key) return &def;
  }
  return nullptr;
}

[[noreturn]] void throw_unknown_key(const std::string& key) {
  std::string msg = "unknown spec key '" + key + "'";
  const std::string hint = util::closest_match(key, CampaignSpec::keys());
  if (!hint.empty()) msg += " — did you mean '" + hint + "'?";
  msg += " (see `specure presets --keys` for the full list)";
  throw SpecError(msg);
}

// ----------------------------------------------------------------- presets --

struct PresetDef {
  PresetInfo info;
  void (*apply)(CampaignSpec&);
};

const std::vector<PresetDef>& preset_table() {
  static const std::vector<PresetDef> kPresets = {
      {{"default", "LP-coverage feedback on the baseline MiniBOOM core"},
       [](CampaignSpec&) {}},
      {{"lp",
        "explicit Leakage-Path-coverage feedback (Figure 2, Specure side)"},
       [](CampaignSpec&) {}},
      {{"codecov",
        "traditional code-coverage feedback (Figure 2 baseline, TheHuzz-style)"},
       [](CampaignSpec& s) { s.feedback = FeedbackMode::kCodeCoverage; }},
      // Core-level shapes come from the sim-layer registry, the single
      // source for CoreConfig presets.
      {{"mwait", "(M)WAIT vulnerability emulation armed (paper §4.2)"},
       [](CampaignSpec& s) { sim::lookup_core_preset("mwait", s.core); }},
      {{"zenbleed", "Zenbleed rollback-bug emulation armed (paper §4.2)"},
       [](CampaignSpec& s) { sim::lookup_core_preset("zenbleed", s.core); }},
      {{"no-spec",
        "no-speculation negative control — the finding surface must vanish"},
       [](CampaignSpec& s) { sim::lookup_core_preset("no-spec", s.core); }},
      {{"cache-monitor",
        "data cache added to the monitored sinks (the paper's Spectre hunt)"},
       [](CampaignSpec& s) { s.detector.monitor_cache = true; }},
      {{"full",
        "every emulation armed plus cache monitoring (widest finding surface)"},
       [](CampaignSpec& s) {
         sim::lookup_core_preset("full", s.core);
         s.detector.monitor_cache = true;
       }},
  };
  return kPresets;
}

}  // namespace

std::string_view feedback_mode_name(FeedbackMode mode) {
  return mode == FeedbackMode::kLeakagePath ? "lp" : "codecov";
}

std::string_view lp_policy_name(LpPolicy policy) {
  return policy == LpPolicy::kAllSignals ? "all-signals" : "endpoints";
}

std::string_view pipeline_mode_name(PipelineMode mode) {
  return mode == PipelineMode::kWindow ? "window" : "barrier";
}

std::string_view tier_mode_name(TierMode mode) {
  return mode == TierMode::kFast ? "fast" : "detailed";
}

std::string_view triage_mode_name(TriageMode mode) {
  switch (mode) {
    case TriageMode::kOff: return "off";
    case TriageMode::kOn: return "on";
    case TriageMode::kFull: return "full";
  }
  return "?";
}

const std::vector<PresetInfo>& CampaignSpec::presets() {
  static const std::vector<PresetInfo> kInfos = [] {
    std::vector<PresetInfo> infos;
    for (const PresetDef& def : preset_table()) infos.push_back(def.info);
    return infos;
  }();
  return kInfos;
}

CampaignSpec CampaignSpec::preset(std::string_view name) {
  for (const PresetDef& def : preset_table()) {
    if (name == def.info.name) {
      CampaignSpec spec;
      spec.name = def.info.name;
      def.apply(spec);
      return spec;
    }
  }
  std::vector<std::string> names;
  for (const PresetDef& def : preset_table()) names.push_back(def.info.name);
  std::string msg = "unknown preset '" + std::string(name) + "'";
  const std::string hint = util::closest_match(name, names);
  if (!hint.empty()) msg += " — did you mean '" + hint + "'?";
  msg += " (available: " + util::join(names, ", ") + ")";
  throw SpecError(msg);
}

void CampaignSpec::set(const std::string& key, const std::string& value) {
  const KeyDef* def = find_key(key);
  if (def == nullptr) throw_unknown_key(key);
  def->set(*this, value);
}

void CampaignSpec::apply_override(const std::string& assignment) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw SpecError("override '" + assignment +
                    "' is not of the form key=value");
  }
  set(std::string(util::trim(assignment.substr(0, eq))),
      std::string(util::trim(assignment.substr(eq + 1))));
}

std::vector<std::string> CampaignSpec::keys() {
  std::vector<std::string> out;
  for (const KeyDef& def : key_table()) out.emplace_back(def.key);
  return out;
}

std::vector<SpecField> CampaignSpec::fields() const {
  std::vector<SpecField> out;
  for (const KeyDef& def : key_table()) {
    out.push_back({def.key, def.section, def.get(*this), def.quoted});
  }
  return out;
}

std::string CampaignSpec::to_toml() const {
  std::ostringstream os;
  os << "# specure campaign spec (TOML subset; see `specure presets --keys`)\n";
  std::string section;
  for (const SpecField& f : fields()) {
    if (f.section != section) {
      section = f.section;
      os << "\n[" << section << "]\n";
    }
    os << f.key << " = ";
    if (f.quoted) {
      os << '"' << f.value << '"';
    } else {
      os << f.value;
    }
    os << "\n";
  }
  return os.str();
}

namespace {

/// Strip a trailing comment that is not inside a quoted string.
std::string_view strip_comment(std::string_view line) {
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_string = !in_string;
    if (line[i] == '#' && !in_string) return line.substr(0, i);
  }
  return line;
}

const std::vector<std::string>& known_sections() {
  static const std::vector<std::string> kSections = [] {
    std::vector<std::string> sections = {""};
    for (const KeyDef& def : key_table()) {
      if (std::find(sections.begin(), sections.end(), def.section) ==
          sections.end()) {
        sections.emplace_back(def.section);
      }
    }
    return sections;
  }();
  return kSections;
}

}  // namespace

CampaignSpec CampaignSpec::from_toml(std::istream& in) {
  struct Assignment {
    std::string key;
    std::string value;
    std::size_t line;
  };
  std::vector<Assignment> assignments;
  std::string preset_name;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string_view line = util::trim(strip_comment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw SpecError("line " + std::to_string(line_no) +
                        ": unterminated section header '" + std::string(line) +
                        "'");
      }
      const std::string section(util::trim(line.substr(1, line.size() - 2)));
      const auto& sections = known_sections();
      if (std::find(sections.begin(), sections.end(), section) ==
          sections.end()) {
        std::string msg = "line " + std::to_string(line_no) +
                          ": unknown section [" + section + "]";
        const std::string hint = util::closest_match(section, sections);
        if (!hint.empty()) msg += " — did you mean [" + hint + "]?";
        throw SpecError(msg);
      }
      continue;  // sections only organise the file; keys are globally flat
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw SpecError("line " + std::to_string(line_no) +
                      ": expected `key = value`, got '" + std::string(line) +
                      "'");
    }
    const std::string key(util::trim(line.substr(0, eq)));
    std::string value(util::trim(line.substr(eq + 1)));
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    } else if (!value.empty() && value.front() == '"') {
      throw SpecError("line " + std::to_string(line_no) + ": " + key +
                      ": unterminated string");
    }
    if (key == "preset") {
      if (!preset_name.empty()) {
        throw SpecError("line " + std::to_string(line_no) +
                        ": duplicate `preset` key");
      }
      preset_name = value;
      continue;
    }
    assignments.push_back({key, std::move(value), line_no});
  }

  CampaignSpec spec =
      preset_name.empty() ? CampaignSpec{} : CampaignSpec::preset(preset_name);
  for (const Assignment& a : assignments) {
    try {
      spec.set(a.key, a.value);
    } catch (const SpecError& e) {
      throw SpecError("line " + std::to_string(a.line) + ": " + e.what());
    }
  }
  return spec;
}

CampaignSpec CampaignSpec::from_toml_string(const std::string& text) {
  std::istringstream in(text);
  return from_toml(in);
}

void CampaignSpec::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw SpecError("cannot open '" + path + "' for writing");
  out << to_toml();
  if (!out.flush()) throw SpecError("write to '" + path + "' failed");
}

CampaignSpec CampaignSpec::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SpecError("cannot open spec file '" + path + "'");
  try {
    return from_toml(in);
  } catch (const SpecError& e) {
    throw SpecError(path + ": " + e.what());
  }
}

void CampaignSpec::validate() const {
  std::vector<std::string> problems = sim::validate_config(core);
  const auto bad = [&](std::string msg) { problems.push_back(std::move(msg)); };

  if (batch_size == 0) {
    bad("batch must be >= 1 (got 0); use 1 for the classic serial "
        "feedback loop");
  }
  // `jobs` and `batch` interact through the sliding window: the executor
  // keeps at most `batch` jobs in flight across the whole window (job k
  // is generated only after iteration k - batch merged), so a worker
  // count above the batch size can never be saturated. Session resolves
  // jobs = 0 to all hardware threads and clips the result to batch_size;
  // that clip is a resolution rule, not an error, so an explicit
  // jobs > batch spec stays valid (it just runs with batch workers).
  if (budget.iterations == 0) {
    bad("iterations must be >= 1 (got 0); campaigns need an iteration "
        "budget");
  }
  if (fuzzer.corpus_max == 0) bad("corpus_max must be >= 1 (got 0)");
  if (fuzzer.splice_percent > 100) {
    bad("splice_percent must be <= 100 (got " +
        std::to_string(fuzzer.splice_percent) + ")");
  }
  if (!fuzzer.use_special_seeds && fuzzer.random_seed_count == 0) {
    bad("random_seed_count must be >= 1 when special_seeds is off — the "
        "corpus would start empty");
  }
  if (fuzzer.mutator.min_stack == 0 ||
      fuzzer.mutator.min_stack > fuzzer.mutator.max_stack) {
    bad("mutation stack bounds must satisfy 1 <= mutation_min_stack <= "
        "mutation_max_stack (got " +
        std::to_string(fuzzer.mutator.min_stack) + ".." +
        std::to_string(fuzzer.mutator.max_stack) + ")");
  }
  if (fuzzer.mutator.max_code_len == 0) {
    bad("max_code_len must be >= 1 (got 0)");
  }
  if (pdlc.max_channels == 0) bad("pdlc_max_channels must be >= 1 (got 0)");
  if (!fuzzer.replay_program_hex.empty()) {
    try {
      const riscv::Program p = riscv::Program::from_hex(
          fuzzer.replay_program_hex);
      if (p.empty()) bad("replay_program decodes to an empty program");
    } catch (const std::exception& e) {
      bad(std::string("replay_program: ") + e.what());
    }
  }
  if (triage == TriageMode::kFull && triage_out.empty()) {
    bad("triage_out must name a directory when triage = full");
  }
  if (state_interval > 0 && state_out.empty()) {
    bad("state_interval needs state_out — a cadence without a state file "
        "path writes nothing");
  }
  if (checkpoint && checkpoint_cache_mb == 0) {
    bad("checkpoint_cache_mb must be >= 1 when checkpoint is on (use "
        "checkpoint=off to disable the fast path instead)");
  }

  if (!problems.empty()) {
    throw SpecError("invalid spec '" + name + "':\n  - " +
                    util::join(problems, "\n  - "));
  }
}

bool CampaignSpec::operator==(const CampaignSpec& other) const {
  const auto a = fields();
  const auto b = other.fields();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].value != b[i].value) return false;
  }
  return true;
}

}  // namespace specure::core
