// Campaign simulation worker — the parallel middle of the Online Phase
// pipeline (scheduler → simulation workers → result merger).
//
// Each worker owns a private sim::Simulator (schema-identical across
// workers: all derive from the same CoreConfig, so snapshot signal ids
// agree) and performs the entire per-iteration heavy lifting off-thread:
// simulate the program on a cold core, extract the misspeculation table,
// probe LP coverage straight off the delta-native trace, and run the
// vulnerability detector. The output is a compact WorkerResult — the
// run trace (already O(changes), not O(cycles × signals)) is dropped
// before the result travels to the merger, so a deep batch stays cheap
// to buffer.
//
// process() is const and touches only worker-owned or read-only shared
// state (the OfflineResult's IFG/PDLC), so any number of workers may run
// concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "core/coverage_calc.hpp"
#include "core/mst.hpp"
#include "core/offline.hpp"
#include "core/vuln_detect.hpp"
#include "fuzz/corpus.hpp"
#include "sim/core.hpp"

namespace specure::core {

/// Everything the merger needs from one simulated iteration, in a form
/// that is independent of merge order and campaign state.
struct WorkerResult {
  std::uint64_t iteration = 0;
  std::vector<SpecWindow> windows;
  /// LP channels exercised by this run (LpCoverageMap::probe output).
  std::vector<std::size_t> lp_hits;
  sim::CoverageRecorder coverage;
  /// Candidate findings; deduplication happens in the merger.
  std::vector<VulnReport> reports;
  std::uint64_t cycles = 0;
};

class CampaignWorker {
 public:
  CampaignWorker(const sim::CoreConfig& core, const OfflineResult& offline,
                 LpPolicy lp_policy, const DetectorOptions& detector);

  /// Simulate and analyze one job. Thread-safe with respect to other
  /// workers' process() calls. `lp_already_covered`, when given, is the
  /// merger map's covered_mask() frozen for the duration of the batch;
  /// channels covered there are not re-probed, so worker cost falls as
  /// campaign coverage saturates (matching the serial engine's update()).
  WorkerResult process(const fuzz::FuzzJob& job,
                       const std::vector<bool>* lp_already_covered =
                           nullptr) const;

  const sim::Simulator& simulator() const { return sim_; }

 private:
  sim::Simulator sim_;
  LpCoverageMap lp_probe_;  ///< used const-only (probe), never committed
  VulnerabilityDetector detector_;
};

}  // namespace specure::core
