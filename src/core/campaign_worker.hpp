// Campaign simulation worker — the parallel middle of the Online Phase
// pipeline (scheduler → simulation workers → result merger).
//
// Each worker owns a private sim::Simulator (schema-identical across
// workers: all derive from the same CoreConfig, so snapshot signal ids
// agree) and performs the entire per-iteration heavy lifting off-thread:
// simulate the program, extract the misspeculation table, probe LP
// coverage straight off the delta-native trace, and run the
// vulnerability detector. The output is a compact WorkerResult — the
// run trace (already O(changes), not O(cycles × signals)) stays in the
// worker's reusable scratch RunResult, so a deep batch stays cheap to
// buffer and no trace/commit/data buffers are reallocated per run.
//
// Simulation takes the checkpoint fast path when it can: every cold run
// emits a checkpoint set as a side effect (~1% overhead) and donates its
// trace, commit log and checkpoints to a budgeted LRU cache keyed by
// program hash (CheckpointCache) — so when a run's program later becomes
// a corpus parent, its checkpoints are already waiting. A job carrying
// mutation locality (FuzzJob::parent + divergence) resumes from the
// deepest parent checkpoint whose fetch watermark precedes the
// divergence — bit-identical to the cold run by the Simulator::run_from
// contract — and falls back to the cold path on any miss. The
// scheduler's parent-affinity routing sends all children of one parent
// to the same worker so its cache sees every reuse.
//
// process() touches worker-owned state (scratch buffers, the checkpoint
// cache) plus read-only shared state (the OfflineResult's IFG/PDLC), so
// any number of workers may run concurrently as long as each instance is
// driven by one thread at a time — which the session's per-worker job
// groups guarantee.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/coverage_calc.hpp"
#include "core/mst.hpp"
#include "core/offline.hpp"
#include "core/vuln_detect.hpp"
#include "fuzz/corpus.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/core.hpp"

namespace specure::core {

/// Observability wiring the session hands each worker before a run():
/// registry counters (checkpoint-cache hit/miss on the worker's lane)
/// and, when tracing, the span recorder the worker emits execute /
/// fast_tier / detailed / checkpoint_resume spans into. All-default
/// (null) wiring makes every instrumentation site a no-op; nothing here
/// ever affects simulation results.
struct WorkerObservability {
  obs::Registry* registry = nullptr;
  obs::TraceRecorder* tracer = nullptr;
  std::size_t lane = 0;
};

/// Everything the merger needs from one simulated iteration, in a form
/// that is independent of merge order and campaign state.
struct WorkerResult {
  std::uint64_t iteration = 0;
  std::vector<SpecWindow> windows;
  /// LP channels exercised by this run (LpCoverageMap::probe output).
  std::vector<std::size_t> lp_hits;
  sim::CoverageRecorder coverage;
  /// Candidate findings; deduplication happens in the merger.
  std::vector<VulnReport> reports;
  std::uint64_t cycles = 0;
};

/// Worker-side checkpoint policy (derived from the spec's `checkpoint`
/// and `checkpoint_cache_mb` keys).
struct WorkerCheckpointOptions {
  bool enabled = true;
  std::size_t cache_bytes = 64ull << 20;
  sim::CheckpointOptions cadence;
  /// Resuming shallower than this many cycles is not worth the state
  /// restore + trace fork; take the cold path instead.
  std::uint64_t min_resume_cycles = 48;
};

/// Worker-side tier policy (derived from the spec's `tier` key and the
/// active detector preset).
struct WorkerTierOptions {
  /// Run cold jobs through the fast-functional prefix tier
  /// (Simulator::run_tiered) instead of the detailed-only path. Results
  /// are bit-identical either way; this is purely a throughput policy.
  bool fast = true;
  /// The detector monitors the data cache (cache-monitor / full
  /// presets), so loads can arm its observation window: hand off at the
  /// first load too, not just at control flow.
  bool loads_arm = false;
  /// A prefix shorter than this many instructions is not worth the
  /// fast-tier entry + boundary materialization into the detailed core;
  /// take the plain detailed path instead (the tier analogue of
  /// WorkerCheckpointOptions::min_resume_cycles). Runs that complete
  /// entirely inside the fast tier are exempt — they never pay the
  /// handoff, so they win at any length.
  std::size_t min_handoff_insts = 24;
};

/// Wall-clock telemetry of the fast path (never affects results).
struct CheckpointStats {
  std::uint64_t resumed = 0;        ///< jobs served by run_from
  std::uint64_t cold = 0;           ///< jobs served by the cold path
  std::uint64_t insertions = 0;     ///< cold runs donated to the cache
  std::uint64_t evictions = 0;      ///< LRU entries dropped for budget
  std::uint64_t resumed_cycles = 0; ///< prefix cycles skipped in total
};

/// Budgeted LRU map: program hash → that run's full trace, commit log
/// and checkpoint set. One entry serves every child of the program once
/// it becomes a corpus parent; the budget (bytes, not entries) bounds
/// worker memory. Lookups on behalf of children LRU-bump the entry, so
/// live parents survive the churn of never-selected runs.
class CheckpointCache {
 public:
  struct Entry {
    riscv::Program program;  ///< collision guard: verified on find()
    snapshot::Trace trace{nullptr};
    std::vector<sim::CommitRecord> commits;
    std::vector<sim::Checkpoint> points;  ///< ascending by cycle
    std::size_t bytes = 0;
    std::uint64_t stamp = 0;  ///< LRU clock

    /// Deepest checkpoint usable for a child whose first divergent
    /// instruction index is `divergence`, ignoring checkpoints shallower
    /// than `min_cycles`; nullptr when none qualifies.
    const sim::Checkpoint* best_for(std::size_t divergence,
                                    std::uint64_t min_cycles) const;
  };

  explicit CheckpointCache(std::size_t budget_bytes)
      : budget_(budget_bytes) {}

  /// Lookup + LRU bump. Verifies the stored program against `expected`
  /// so a hash collision degrades to a miss, never a wrong resume.
  Entry* find(std::uint64_t hash, const riscv::Program& expected);

  /// Insert (computing the entry's byte size), evicting least-recently
  /// used entries until the budget holds. Returns the stored entry, or
  /// nullptr when the entry alone exceeds the whole budget. When
  /// `recycled` is non-null it receives one evicted entry (if any was
  /// dropped), so the caller can reclaim its buffers instead of freeing
  /// and reallocating them next run.
  Entry* insert(std::uint64_t hash, Entry entry, CheckpointStats& stats,
                Entry* recycled = nullptr);

  std::size_t size() const { return map_.size(); }
  std::size_t total_bytes() const { return total_; }

 private:
  std::unordered_map<std::uint64_t, Entry> map_;
  std::size_t budget_;
  std::size_t total_ = 0;
  std::uint64_t clock_ = 0;
};

class CampaignWorker {
 public:
  CampaignWorker(const sim::CoreConfig& core, const OfflineResult& offline,
                 LpPolicy lp_policy, const DetectorOptions& detector,
                 const WorkerCheckpointOptions& checkpoint = {},
                 const WorkerTierOptions& tier = {});

  /// Simulate and analyze one job, writing into `out` (cleared first;
  /// its windows/lp_hits/coverage buffers are reused, so recycling one
  /// shell across iterations costs no allocator round trips). Safe to
  /// run concurrently with other workers' process() calls; a single
  /// worker must be driven by one thread at a time. `lp_already_covered`,
  /// when given, is the merger's atomic covered shadow; channels covered
  /// there are not re-probed, so worker cost falls as campaign coverage
  /// saturates (matching the serial engine's update()). The shadow may
  /// be mutated concurrently by the merger — stale reads only cost a
  /// redundant probe, never a result difference.
  void process(const fuzz::FuzzJob& job,
               const util::AtomicBitset* lp_already_covered,
               WorkerResult& out);

  /// Convenience form returning a fresh WorkerResult.
  WorkerResult process(const fuzz::FuzzJob& job,
                       const util::AtomicBitset* lp_already_covered =
                           nullptr) {
    WorkerResult out;
    process(job, lp_already_covered, out);
    return out;
  }

  /// (Re)wire observability; called by the session at run() setup (the
  /// recorder is rebuilt per traced run). Passing a default-constructed
  /// value detaches the worker from any previous registry/recorder.
  void set_observability(const WorkerObservability& hooks);

  const sim::Simulator& simulator() const { return sim_; }
  const CheckpointStats& checkpoint_stats() const { return stats_; }
  const CheckpointCache& checkpoint_cache() const { return cache_; }
  /// Cumulative across the worker's lifetime (the session snapshots a
  /// baseline per run() to report per-run deltas).
  const sim::TierStats& tier_stats() const { return tier_stats_; }

 private:
  /// Run the job into the scratch RunResult, via checkpoint resume when
  /// a usable parent checkpoint exists, cold otherwise.
  const sim::RunResult& simulate(const fuzz::FuzzJob& job);

  sim::Simulator sim_;
  LpCoverageMap lp_probe_;  ///< used const-only (probe), never committed
  VulnerabilityDetector detector_;
  WorkerCheckpointOptions checkpoint_;
  WorkerTierOptions tier_;
  CheckpointCache cache_;
  CheckpointStats stats_;
  sim::TierStats tier_stats_;
  sim::RunResult scratch_;  ///< reused across iterations (buffer reuse)
  /// Checkpoints emitted by the most recent cold run, pending donation
  /// to the cache once process() is done with the trace.
  std::vector<sim::Checkpoint> pending_points_;

  // Observability (see set_observability). The counters are inert when
  // no registry is attached; tracer_ == nullptr skips every span site.
  obs::Counter cache_hits_;
  obs::Counter cache_misses_;
  obs::TraceRecorder* tracer_ = nullptr;
  std::size_t lane_ = 0;
  /// How simulate() served the most recent job (execute-span tags).
  bool last_resumed_ = false;
  std::uint64_t last_resume_cycle_ = 0;
  std::size_t last_handoff_ = 0;
};

}  // namespace specure::core
