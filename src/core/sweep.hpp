// Sweep — run N campaign specs as one experiment and compare them.
//
// The paper's evaluation is a matrix of scenarios (LP vs code-coverage
// feedback, emulations on/off, the no-speculation control, ...); a Sweep
// makes such a matrix one call:
//
//   Sweep sweep;
//   sweep.add(CampaignSpec::preset("lp"));
//   sweep.add(CampaignSpec::preset("codecov"));
//   auto rows = sweep.run();             // scenarios run concurrently
//   Sweep::write_table(std::cout, rows); // per-scenario comparison
//
// Scenarios are distributed over one shared util::ThreadPool; each
// scenario's own simulation workers are scaled down so the machine is not
// oversubscribed. That rescaling never touches results: a campaign's
// outcome is independent of its worker count (the batch-determinism
// contract), so a sweep row is bit-identical to running its spec alone.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/campaign_spec.hpp"
#include "core/result_merger.hpp"

namespace specure::core {

/// One scenario's outcome. When `error` is non-empty the scenario failed
/// (invalid spec, exception mid-campaign) and `result` is empty; the
/// other scenarios still run to completion.
struct SweepOutcome {
  CampaignSpec spec;
  CampaignResult result;
  std::string error;

  bool ok() const { return error.empty(); }
};

class Sweep {
 public:
  /// Called (serialized, from the finishing worker) as each scenario
  /// completes; `index` is the add() position.
  using Observer = std::function<void(std::size_t index, const SweepOutcome&)>;

  Sweep& add(CampaignSpec spec);
  std::size_t size() const { return specs_.size(); }

  Sweep& on_scenario_done(Observer fn);

  /// Run every scenario; `concurrency` caps how many run at once
  /// (0 = min(hardware threads, scenario count)). Outcomes are returned
  /// in add() order regardless of completion order.
  std::vector<SweepOutcome> run(std::size_t concurrency = 0);

  /// Fixed-width per-scenario comparison (coverage, vulns, iters/sec).
  static void write_table(std::ostream& os,
                          const std::vector<SweepOutcome>& rows);
  /// JSON array of scenarios, each with its resolved spec echo and the
  /// campaign summary numbers.
  static void write_json(std::ostream& os,
                         const std::vector<SweepOutcome>& rows);

 private:
  std::vector<CampaignSpec> specs_;
  Observer done_;
};

}  // namespace specure::core
