// Leakage Detector — §3.2 Step 2: for each misspeculated window, diff the
// snapshots at the window's start and end. The differing signals are the
// potential information-leakage locations handed to the Vulnerability
// Detector.
#pragma once

#include <vector>

#include "core/mst.hpp"
#include "snapshot/snapshot.hpp"

namespace specure::core {

struct WindowLeakage {
  SpecWindow window;
  /// Signals whose value differs between window start and end — i.e.
  /// state changes that *survived* the rollback.
  std::vector<snapshot::SignalDelta> deltas;
};

/// Analyze every misspeculated window in the trace. Correctly-predicted
/// windows are skipped: their younger instructions were real work and the
/// hyper-property only concerns misspeculated execution.
std::vector<WindowLeakage> detect_leakage(
    const snapshot::Trace& trace, const std::vector<SpecWindow>& windows);

}  // namespace specure::core
