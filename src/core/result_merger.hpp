// Result merger — the single-threaded tail of the Online Phase pipeline
// (scheduler → simulation workers → result merger).
//
// The merger consumes WorkerResults strictly in iteration order and owns
// every piece of cross-iteration campaign state: the authoritative LP
// coverage map, the merged code-coverage point set, vulnerability
// deduplication by structural leakage signature (dedup_key), the MST
// sample, and the per-iteration history. Because workers hand over order-independent facts and the
// merger applies them in a fixed order, a campaign's CampaignResult is
// bit-identical regardless of how many worker threads produced the
// results.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/campaign_worker.hpp"
#include "core/coverage_calc.hpp"
#include "core/mst.hpp"
#include "core/offline.hpp"
#include "core/vuln_detect.hpp"
#include "sim/coverage.hpp"
#include "util/atomic_bitset.hpp"

namespace specure::core {

enum class FeedbackMode : std::uint8_t {
  kLeakagePath,   ///< Specure's LP coverage (novel metric)
  kCodeCoverage,  ///< traditional coverage, the baseline in Fig. 2
};

struct IterationRecord {
  std::uint64_t iteration = 0;
  std::size_t covered_pdlc = 0;     ///< cumulative LP coverage
  std::size_t coverage_points = 0;  ///< cumulative code-coverage points
  std::size_t vulns_found = 0;      ///< cumulative distinct findings
  std::uint64_t cycles = 0;         ///< simulated cycles this iteration
};

struct CampaignResult {
  std::vector<IterationRecord> history;
  /// Distinct findings, deduplicated by structural leakage signature
  /// (dedup_key); two findings with the same kind+sink but e.g. disjoint
  /// taint paths are distinct entries. finding_key() is the coarse bucket.
  std::vector<VulnReport> vulns;
  /// First-detection iteration per dedup key (signature string; its
  /// prefix is the coarse finding key, so substring stops keep working).
  std::map<std::string, std::uint64_t> first_detection;
  std::vector<SpecWindow> mst_sample;
  std::size_t total_windows = 0;
  std::size_t mispredicted_windows = 0;
  std::size_t pdlc_total = 0;
  double seconds = 0;
};

/// Number of distinct coarse finding_key buckets among a result's vulns
/// (vulns.size() counts unique signatures; this counts kind+sink groups).
std::size_t coarse_bucket_count(const CampaignResult& result);

class ResultMerger {
 public:
  ResultMerger(const OfflineResult& offline, const snapshot::SignalDb& db,
               FeedbackMode feedback, LpPolicy lp_policy,
               std::size_t mst_sample_rows);

  /// Apply one iteration's results. Must be called in iteration order.
  /// Returns true when the input was interesting (new coverage under the
  /// configured feedback metric, or a new finding) and should be fed back
  /// to the corpus.
  ///
  /// The by-ref form only moves out what the merged state keeps (the
  /// deduplicated reports); windows/lp_hits/coverage retain their
  /// buffers, so the caller can recycle `result` as the scratch shell
  /// for a later iteration (the pipelined executor's slot reuse).
  bool merge(WorkerResult& result);
  bool merge(WorkerResult&& result) { return merge(result); }

  /// The campaign state accumulated so far (live view, e.g. for stop
  /// predicates and progress reporting).
  const CampaignResult& result() const { return result_; }

  /// The authoritative LP covered bitmap (merger-thread view).
  const std::vector<bool>& lp_covered_mask() const {
    return lp_.covered_mask();
  }

  /// Atomic shadow of the covered bitmap, safe to read from workers
  /// while the merger keeps merging (the pipelined executor has no
  /// quiescent point). Monotonic and always a subset of the committed
  /// state, so worker probes that race with merges can only skip
  /// channels commit() would have filtered idempotently — the merged
  /// campaign result never depends on the interleaving.
  const util::AtomicBitset& lp_covered_shadow() const {
    return covered_shadow_;
  }

  /// The merged code-coverage accumulator (for campaign state capture).
  const sim::CoverageRecorder& code_coverage() const { return code_cov_; }

  /// Restore the merger to a previously captured campaign frontier:
  /// the accumulated result, the LP covered mask (covered_mask() at
  /// capture time, republished to the atomic shadow) and the merged
  /// code-coverage point set. The next merge() continues exactly where
  /// the captured campaign left off.
  void restore(const CampaignResult& result, const std::vector<bool>& lp_mask,
               const std::vector<std::string>& coverage_points,
               std::uint64_t toggle_bits);

  /// Move the finished result out; the merger is spent afterwards.
  CampaignResult take_result() { return std::move(result_); }

 private:
  FeedbackMode feedback_;
  std::size_t mst_sample_rows_;
  LpCoverageMap lp_;
  util::AtomicBitset covered_shadow_;
  sim::CoverageRecorder code_cov_;
  CampaignResult result_;
};

}  // namespace specure::core
