// Offline Phase (§3.1): derive the PUT's Information Flow Graph and the
// Potential Direct Leakage Channel list, either from the MiniBOOM
// structural model or from arbitrary Verilog RTL through the rtl/ift
// front-end.
#pragma once

#include <chrono>
#include <string>

#include "ift/arch_regs.hpp"
#include "ift/ifg.hpp"
#include "ift/pdlc.hpp"
#include "sim/config.hpp"

namespace specure::core {

struct OfflineResult {
  ift::Ifg ifg;
  ift::PdlcList pdlc;
  double ifg_seconds = 0;   ///< IFG extraction time (paper: ~9 min on BOOM)
  double pdlc_seconds = 0;  ///< PDLC extraction time (paper: ~3 min)
};

/// Offline phase for the MiniBOOM PUT: the IFG comes from the simulator's
/// structural self-description (already role-labeled).
OfflineResult run_offline_phase(const sim::CoreConfig& config,
                                const ift::PdlcOptions& options = {});

/// Offline phase for external RTL: parse + elaborate the Verilog source,
/// build the IFG, label architectural registers with `db`, extract PDLC.
OfflineResult run_offline_phase_rtl(const std::string& verilog_source,
                                    const std::string& top_module,
                                    const ift::ArchRegDb& db,
                                    const ift::PdlcOptions& options = {});

}  // namespace specure::core
