// Session — the campaign facade over the scheduler → workers → merger
// pipeline, driven by a declarative CampaignSpec.
//
// A Session replaces the old ad-hoc stop lambda with a typed event /
// observer API and composable stop conditions:
//
//   Session session(CampaignSpec::preset("zenbleed"));
//   session.on_vuln([](const VulnEvent& e) { ... })         // new finding
//          .on_new_coverage([](const CoverageEvent& e) { ... })
//          .on_progress([](const ProgressEvent& e) { ... }) // every N iters
//          .on_batch_merged([](const BatchEvent& e) { ... })
//          .add_stop(Session::stop_on_finding("core.rf."));
//   CampaignResult result = session.run();
//
// Stop conditions compose: the spec's budgets (iteration cap, max_vulns,
// max_seconds, coverage plateau) are enforced automatically, and every
// condition added with add_stop() is OR-ed in. All observers run on the
// merger thread, strictly in iteration order, after the iteration that
// triggered them was merged — so the campaign state they see is exactly
// the deterministic, thread-count-independent state of the batch
// pipeline. Observers and deterministic stop conditions never perturb the
// campaign result (the batch-determinism contract of core/specure.hpp
// holds through this API; only max_seconds is inherently wall-clock).
//
// run() may be called repeatedly; each call is a fresh campaign from the
// same spec (simulators and the thread pool are built once and reused).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign_spec.hpp"
#include "core/campaign_worker.hpp"
#include "core/offline.hpp"
#include "core/result_merger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/core.hpp"
#include "triage/triage.hpp"
#include "util/thread_pool.hpp"

namespace specure::core {

/// Periodic heartbeat, every CampaignSpec::progress_interval iterations.
struct ProgressEvent {
  std::uint64_t iteration = 0;         ///< merged iterations so far
  std::uint64_t budget_iterations = 0; ///< the campaign's iteration budget
  std::size_t covered_pdlc = 0;
  std::size_t coverage_points = 0;
  std::size_t vulns = 0;
  double seconds = 0;                  ///< elapsed wall-clock
};

/// The just-merged iteration produced new coverage (either metric).
struct CoverageEvent {
  std::uint64_t iteration = 0;
  std::size_t new_lp_channels = 0;      ///< LP channels first covered here
  std::size_t new_coverage_points = 0;  ///< code-cov points first seen here
  std::size_t covered_pdlc = 0;         ///< cumulative
  std::size_t coverage_points = 0;      ///< cumulative
};

/// A new distinct finding (after merger deduplication).
struct VulnEvent {
  std::uint64_t iteration = 0;
  const VulnReport& report;
};

/// A whole window of batch_size iterations finished merging (corpus
/// feedback is now applied). Under the sliding-window executor this is a
/// cadence marker — every batch_size merges — not a convoy boundary.
struct BatchEvent {
  std::uint64_t batch_index = 0;        ///< 0-based
  std::size_t batch_jobs = 0;           ///< iterations merged in this window
  std::uint64_t merged_iterations = 0;  ///< campaign total so far
  double seconds = 0;                   ///< elapsed wall-clock
};

/// One confirmed finding awaiting its deferred waveform export (vcd_out):
/// recorded at merge time, re-simulated and written after the campaign
/// loop. Part of the resume frontier so a paused campaign still writes
/// the complete deterministic waveform set when it eventually finishes.
struct PendingWaveform {
  riscv::Program program;
  std::uint64_t iteration = 0;
  std::size_t vuln_begin = 0;  ///< index range into CampaignResult::vulns
  std::size_t vuln_end = 0;
};

/// The resume frontier: everything the campaign pipeline needs to
/// continue from a merge boundary as if it had never stopped. Captured on
/// the merge strand after iteration `merged` merged and the window was
/// refilled, so the invariant holds: the fuzzer has issued every job
/// through `merged + in_flight.size()`, corpus feedback is applied
/// through `merged`, and the not-yet-merged jobs ride along verbatim
/// (they cannot be regenerated — drawing them mutated corpus energy).
/// Resuming re-dispatches in_flight and then draws the next job from the
/// restored fuzzer, which by the sliding-window generation contract is
/// exactly the job the uninterrupted campaign would have drawn — so the
/// final CampaignResult is bit-identical at a fixed seed for any --jobs.
/// Serialized by serve/campaign_state into the durable state file.
struct CampaignFrontier {
  std::uint64_t merged = 0;  ///< iterations merged (== result.history.size())
  /// True when the campaign actually finished (budget, stop condition):
  /// resuming a completed frontier returns the stored result instead of
  /// running — stop conditions already fired and must not re-evaluate.
  bool completed = false;
  fuzz::FuzzerState fuzzer;
  std::vector<fuzz::FuzzJob> in_flight;  ///< iterations merged+1..issued
  CampaignResult result;
  std::vector<bool> lp_covered;
  std::vector<std::string> coverage_points;  ///< sorted (stable on disk)
  std::uint64_t toggle_bits = 0;
  std::uint64_t last_gain_iteration = 0;
  std::uint64_t last_progress = 0;
  std::uint64_t batch_index = 0;
  std::uint64_t merges_since_event = 0;
  std::vector<PendingWaveform> pending_vcd;
  double prior_seconds = 0;  ///< wall-clock accumulated across segments
};

/// Wall-clock telemetry of one simulation worker in the campaign
/// executor. alignas(64): adjacent workers update their entries
/// concurrently, so each gets its own cache line.
struct alignas(64) PipelineWorkerStats {
  double execute_seconds = 0;     ///< time inside CampaignWorker::process
  double queue_wait_seconds = 0;  ///< time parked waiting for a job
  std::uint64_t jobs = 0;         ///< jobs this worker simulated
  // Tier telemetry for this run (deltas of the worker's cumulative
  // sim::TierStats): fast-tier cycles executed, handoffs to the detailed
  // core, and handoff-at-0 fallbacks to a pure detailed run.
  std::uint64_t fast_cycles = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t tier_fallbacks = 0;
};

/// Per-stage timing of the most recent run() — the diagnosis surface for
/// scaling regressions (`specure run --stats`, bench JSON metrics).
/// Pure wall-clock telemetry: never part of CampaignResult, never
/// affects results. Since the obs layer landed this is a *view*:
/// materialized at the end of run() from the session's metrics registry
/// (this run's counter deltas), not accumulated independently.
struct PipelineStats {
  double generate_seconds = 0;     ///< scheduler/fuzzer job generation
  double merge_seconds = 0;        ///< in-order merging + observers
  double result_wait_seconds = 0;  ///< merger parked on the completion ring
  double vcd_seconds = 0;          ///< deferred waveform drain (vcd_out)
  std::vector<PipelineWorkerStats> workers;  ///< one entry per worker
};

class Session {
 public:
  /// A composable stop condition, evaluated after every merged iteration
  /// (including mid-batch). Returning true ends the campaign.
  using StopCondition = std::function<bool(const CampaignResult&)>;

  /// Validates the spec (throws SpecError) and runs the offline phase.
  explicit Session(CampaignSpec spec);

  // Observers; all optional, chainable, may be registered repeatedly
  // (every registered callback fires).
  Session& on_progress(std::function<void(const ProgressEvent&)> fn);
  Session& on_new_coverage(std::function<void(const CoverageEvent&)> fn);
  Session& on_vuln(std::function<void(const VulnEvent&)> fn);
  Session& on_batch_merged(std::function<void(const BatchEvent&)> fn);
  /// Fires once per finding after the post-campaign triage stage
  /// minimized it (spec.triage = on | full), in finding order.
  Session& on_finding_minimized(
      std::function<void(const triage::MinimizedEvent&)> fn);
  /// Durable-state sink: fires on the merge strand with the current
  /// resume frontier. Cadence captures fire when at least
  /// `min_interval_seconds` of run wall-clock passed since this sink last
  /// fired (0 = every merge boundary); the final frontier — completed or
  /// paused — always fires every sink (and may repeat the last cadence
  /// boundary; state writers are idempotent by construction). Like every
  /// observer, sinks never perturb the campaign result.
  Session& on_frontier(std::function<void(const CampaignFrontier&)> sink,
                       double min_interval_seconds = 0);
  Session& add_stop(StopCondition fn);

  /// Ready-made stop conditions for add_stop().
  static StopCondition stop_after_iterations(std::uint64_t n);
  static StopCondition stop_after_vulns(std::size_t n);
  /// Stop once any finding key contains `key_substring`.
  static StopCondition stop_on_finding(std::string key_substring);

  /// Override the spec's iteration budget for subsequent run() calls
  /// (used by the deprecated SpecureEngine shim; prefer setting
  /// spec.budget.iterations before constructing the Session).
  void set_iteration_budget(std::uint64_t iterations);

  /// Run one full campaign under the spec's budgets and the registered
  /// stop conditions.
  CampaignResult run();

  /// Continue the next run() from a captured frontier instead of starting
  /// fresh (durable-state resume, `specure run --resume`, the serve
  /// daemon's restart recovery). The frontier must come from a campaign
  /// with the same result-affecting spec fields; wall-clock-only fields
  /// (jobs, pipeline, checkpoint, intervals, output paths) may differ —
  /// the result stays bit-identical either way.
  void resume_from(CampaignFrontier frontier);

  /// Ask the running campaign to pause at the next merge boundary
  /// (async-signal-safe: one relaxed atomic store — the CLI's
  /// SIGINT/SIGTERM handler calls this). run() then returns the partial
  /// result, paused() turns true, and the next run() continues from the
  /// captured frontier.
  void request_pause() {
    pause_requested_.store(true, std::memory_order_relaxed);
  }

  /// Pause once `merged_iterations` total campaign iterations have merged
  /// (the serve daemon's time-slice boundary). 0 disables. A target at or
  /// below the current merge count pauses at the next boundary.
  void request_pause_at(std::uint64_t merged_iterations) {
    pause_at_.store(merged_iterations, std::memory_order_relaxed);
  }

  /// True when the most recent run() ended in a pause rather than a
  /// completed campaign (its frontier is pending: the next run()
  /// continues where it left off).
  bool paused() const { return paused_; }

  /// After a paused run(): produce the side outputs the campaign has
  /// earned so far — drain the deferred VCD waveforms and run finding
  /// triage on the partial result — without consuming the pause frontier,
  /// so a later resume_from()/run() still completes the campaign (and
  /// re-derives the same outputs at the true end, superseding these).
  /// `specure run`'s SIGINT/SIGTERM path: an interrupted campaign keeps
  /// its report, triage and waveforms AND stays resumable. No-op unless
  /// paused().
  void finalize_interrupted();

  const CampaignSpec& spec() const { return spec_; }
  const OfflineResult& offline() const { return offline_; }
  const sim::Simulator& simulator() const { return sim_; }

  /// The triage stage's output for the most recent run(); nullptr when
  /// spec.triage is off or the campaign found nothing.
  const triage::TriageReport* triage_report() const {
    return triage_report_.get();
  }

  /// The worker count run() will actually use (resolves jobs == 0 and
  /// clips to the batch size — the sliding window keeps at most
  /// batch_size jobs in flight, so extra workers could never be fed).
  std::size_t resolved_jobs() const;

  /// Per-stage timing of the most recent run() (wall-clock telemetry;
  /// empty before the first run).
  const PipelineStats& pipeline_stats() const { return pipeline_stats_; }

  /// Point-in-time copy of the session's metrics registry: stage/worker
  /// counters (cumulative across run() calls), campaign gauges, and —
  /// when spec.metrics is on — the per-iteration latency histograms
  /// behind the --stats percentiles and the serve `metrics` verb. Safe
  /// to call from any thread while a campaign runs (the serve daemon
  /// scrapes live); empty before the first run().
  obs::Snapshot metrics_snapshot() const {
    return metrics_ != nullptr ? metrics_->snapshot() : obs::Snapshot{};
  }

  /// Test-only hook: runs on the worker thread before each job is
  /// processed (pipeline_test injects adversarial per-job delays to
  /// stress the in-order merge). Must not touch campaign state.
  void set_test_job_delay(
      std::function<void(const fuzz::FuzzJob&, std::size_t)> fn) {
    test_job_delay_ = std::move(fn);
  }

 private:
  CampaignSpec spec_;
  OfflineResult offline_;
  sim::Simulator sim_;
  /// Worker pool, built lazily on the first run() and reused by later
  /// campaigns (simulator construction is not free).
  std::vector<std::unique_ptr<CampaignWorker>> workers_;
  std::unique_ptr<util::ThreadPool> pool_;

  std::vector<std::function<void(const ProgressEvent&)>> progress_observers_;
  std::vector<std::function<void(const CoverageEvent&)>> coverage_observers_;
  std::vector<std::function<void(const VulnEvent&)>> vuln_observers_;
  std::vector<std::function<void(const BatchEvent&)>> batch_observers_;
  std::vector<std::function<void(const triage::MinimizedEvent&)>>
      minimized_observers_;
  std::vector<std::pair<std::function<void(const CampaignFrontier&)>, double>>
      frontier_sinks_;
  /// Pending resume frontier: set by resume_from() or by a pause; the
  /// next run() consumes it.
  std::unique_ptr<CampaignFrontier> resume_;
  std::atomic<bool> pause_requested_{false};
  std::atomic<std::uint64_t> pause_at_{0};
  bool paused_ = false;
  double prior_seconds_ = 0;
  std::vector<StopCondition> stops_;
  std::unique_ptr<triage::TriageReport> triage_report_;
  PipelineStats pipeline_stats_;
  /// Metrics registry: built at run() setup with one shard per pipeline
  /// lane (workers + merge strand), grown when a later run() resolves
  /// more jobs, cumulative across campaigns. unique_ptr: instrument
  /// handles point into it, so it must be address-stable.
  std::unique_ptr<obs::Registry> metrics_;
  /// Span recorder for the current/most recent traced run (rebuilt per
  /// run() when spec.trace_out is set; null otherwise).
  std::unique_ptr<obs::TraceRecorder> tracer_;
  std::size_t merge_lane_ = 0;  ///< registry shard of the merge strand
  std::function<void(const fuzz::FuzzJob&, std::size_t)> test_job_delay_;
};

}  // namespace specure::core
