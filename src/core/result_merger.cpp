#include "core/result_merger.hpp"

#include <set>

namespace specure::core {

std::size_t coarse_bucket_count(const CampaignResult& result) {
  std::set<std::string> buckets;
  for (const VulnReport& v : result.vulns) buckets.insert(finding_key(v));
  return buckets.size();
}

ResultMerger::ResultMerger(const OfflineResult& offline,
                           const snapshot::SignalDb& db,
                           FeedbackMode feedback, LpPolicy lp_policy,
                           std::size_t mst_sample_rows)
    : feedback_(feedback),
      mst_sample_rows_(mst_sample_rows),
      lp_(offline.ifg, offline.pdlc, db, lp_policy),
      covered_shadow_(lp_.total()) {
  result_.pdlc_total = offline.pdlc.size();
}

void ResultMerger::restore(const CampaignResult& result,
                           const std::vector<bool>& lp_mask,
                           const std::vector<std::string>& coverage_points,
                           std::uint64_t toggle_bits) {
  result_ = result;
  lp_.restore_covered(lp_mask);
  for (std::size_t c = 0; c < lp_mask.size(); ++c) {
    if (lp_mask[c]) covered_shadow_.set(c);
  }
  code_cov_.restore(coverage_points, toggle_bits);
}

bool ResultMerger::merge(WorkerResult& result) {
  result_.total_windows += result.windows.size();
  for (const auto& w : result.windows) {
    result_.mispredicted_windows += w.mispredicted;
    if (result_.mst_sample.size() < mst_sample_rows_ && w.mispredicted) {
      result_.mst_sample.push_back(w);
    }
  }

  const std::size_t lp_new = lp_.commit(result.lp_hits);
  // Publish the commits to the atomic shadow workers read concurrently
  // (fetch_or makes re-publishing already-set channels free).
  for (const std::size_t c : result.lp_hits) covered_shadow_.set(c);
  const std::size_t cov_new = code_cov_.merge(result.coverage);

  // Vulnerability detection counts regardless of the guidance mode.
  // Deduplication is by structural leakage signature (dedup_key), so
  // same-sink findings with different leak mechanisms both survive.
  bool new_finding = false;
  for (auto& report : result.reports) {
    const std::string key = dedup_key(report);
    if (result_.first_detection.emplace(key, result.iteration).second) {
      result_.vulns.push_back(std::move(report));
      new_finding = true;
    }
  }

  IterationRecord rec;
  rec.iteration = result.iteration;
  rec.covered_pdlc = lp_.covered();
  rec.coverage_points = code_cov_.point_count();
  rec.vulns_found = result_.vulns.size();
  rec.cycles = result.cycles;
  result_.history.push_back(rec);

  // Feedback: the configured coverage metric guides corpus growth; a
  // vulnerability always counts as interesting (Figure 1's
  // "Vulnerability Feedback" arrow).
  return new_finding || (feedback_ == FeedbackMode::kLeakagePath
                             ? lp_new > 0
                             : cov_new > 0);
}

}  // namespace specure::core
