#include "core/campaign_worker.hpp"

#include <algorithm>
#include <chrono>

#include "fuzz/mutator.hpp"
#include "snapshot/snapshot.hpp"

namespace specure::core {

const sim::Checkpoint* CheckpointCache::Entry::best_for(
    std::size_t divergence, std::uint64_t min_cycles) const {
  // Points are ascending by cycle and their watermarks are
  // non-decreasing, so the first qualifying point from the back is the
  // deepest resume.
  for (auto it = points.rbegin(); it != points.rend(); ++it) {
    if (it->fetch_watermark < static_cast<std::uint64_t>(divergence)) {
      return it->cycle >= min_cycles ? &*it : nullptr;
    }
  }
  return nullptr;
}

CheckpointCache::Entry* CheckpointCache::find(
    std::uint64_t hash, const riscv::Program& expected) {
  const auto it = map_.find(hash);
  if (it == map_.end()) return nullptr;
  if (!(it->second.program == expected)) return nullptr;  // hash collision
  it->second.stamp = ++clock_;
  return &it->second;
}

CheckpointCache::Entry* CheckpointCache::insert(std::uint64_t hash,
                                                Entry entry,
                                                CheckpointStats& stats,
                                                Entry* recycled) {
  entry.bytes = sizeof(Entry) + entry.trace.memory_bytes() +
                entry.commits.size() * sizeof(sim::CommitRecord) +
                entry.program.code.size() * sizeof(std::uint32_t) +
                entry.program.data.size();
  for (const sim::Checkpoint& cp : entry.points) {
    entry.bytes += cp.memory_bytes();
  }
  if (entry.bytes > budget_) return nullptr;  // never cacheable
  // Replacing an existing entry (the fuzzer regenerated an identical
  // program) must release its accounted bytes first, or total_ inflates
  // by the replaced size on every duplicate.
  const auto existing = map_.find(hash);
  if (existing != map_.end()) {
    total_ -= existing->second.bytes;
    map_.erase(existing);
  }
  while (total_ + entry.bytes > budget_ && !map_.empty()) {
    auto victim = map_.begin();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (it->second.stamp < victim->second.stamp) victim = it;
    }
    total_ -= victim->second.bytes;
    if (recycled != nullptr) *recycled = std::move(victim->second);
    map_.erase(victim);
    ++stats.evictions;
  }
  entry.stamp = ++clock_;
  total_ += entry.bytes;
  auto [it, inserted] = map_.emplace(hash, std::move(entry));
  (void)inserted;
  return &it->second;
}

CampaignWorker::CampaignWorker(const sim::CoreConfig& core,
                               const OfflineResult& offline,
                               LpPolicy lp_policy,
                               const DetectorOptions& detector,
                               const WorkerCheckpointOptions& checkpoint,
                               const WorkerTierOptions& tier)
    : sim_(core),
      lp_probe_(offline.ifg, offline.pdlc, sim_.signal_db(), lp_policy),
      detector_(offline.ifg, offline.pdlc, sim_.signal_db(), detector),
      checkpoint_(checkpoint),
      tier_(tier),
      cache_(checkpoint.cache_bytes),
      scratch_(&sim_.signal_db()) {}

void CampaignWorker::set_observability(const WorkerObservability& hooks) {
  tracer_ = hooks.tracer;
  lane_ = hooks.lane;
  if (hooks.registry != nullptr) {
    cache_hits_ = hooks.registry->counter("checkpoint/cache_hits");
    cache_misses_ = hooks.registry->counter("checkpoint/cache_misses");
  } else {
    cache_hits_ = obs::Counter();
    cache_misses_ = obs::Counter();
  }
}

const sim::RunResult& CampaignWorker::simulate(const fuzz::FuzzJob& job) {
  pending_points_.clear();
  last_resumed_ = false;
  last_resume_cycle_ = 0;
  last_handoff_ = 0;
  const bool fast_path =
      checkpoint_.enabled && !sim_.config().record_dense_trace;
  const bool tiered = tier_.fast && !sim_.config().record_dense_trace;

  // The handoff point: first instruction that can arm speculation under
  // the active detector policy, capped at the mutant's first divergence
  // from its parent (past that index the decode scan describes the
  // parent's prefix, not necessarily the mutant's — the cap keeps the
  // fast tier inside the provably shared straight-line region).
  std::size_t handoff = 0;
  const riscv::DecodedProgram* dec = nullptr;  // one decode per job
  if (tiered) {
    dec = &sim_.decode(job.program);
    handoff = fuzz::handoff_index(*dec, tier_.loads_arm);
    if (job.has_parent) handoff = std::min(handoff, job.divergence);
    // Shallow prefixes cost more to hand off than to just re-run in the
    // detailed core: clamp to 0, which run_tiered treats as a pure
    // detailed run (a TierStats fallback) while still reusing `dec`.
    // Whole-run fast completions are exempt — they never pay a handoff.
    if (handoff < tier_.min_handoff_insts && handoff < dec->insts.size()) {
      handoff = 0;
    }
  }

  if (fast_path && job.has_parent && job.divergence > 0) {
    CheckpointCache::Entry* entry = cache_.find(job.parent_hash, job.parent);
    if (entry != nullptr) {
      const sim::Checkpoint* cp =
          entry->best_for(job.divergence, checkpoint_.min_resume_cycles);
      // A tiered worker only resumes from checkpoints at/past the
      // handoff: re-running the prefix in the fast tier dominates a
      // shallower state restore + trace fork.
      if (cp != nullptr &&
          (!tiered || cp->fetch_watermark >= static_cast<std::uint64_t>(
                                                 handoff))) {
        ++stats_.resumed;
        stats_.resumed_cycles += cp->cycle;
        last_resumed_ = true;
        last_resume_cycle_ = cp->cycle;
        cache_hits_.add(lane_);
        if (tracer_ != nullptr) {
          const auto r0 = std::chrono::steady_clock::now();
          sim_.run_from(*cp, entry->trace, entry->commits, job.program,
                        scratch_);
          tracer_->record(
              lane_, "checkpoint_resume", "sim", r0,
              std::chrono::steady_clock::now(), job.iteration,
              {"resume_cycle", static_cast<std::int64_t>(cp->cycle)},
              {"watermark",
               static_cast<std::int64_t>(cp->fetch_watermark)});
        } else {
          sim_.run_from(*cp, entry->trace, entry->commits, job.program,
                        scratch_);
        }
        return scratch_;
      }
    }
  }
  ++stats_.cold;
  cache_misses_.add(lane_);
  last_handoff_ = handoff;
  if (tiered) {
    // `dec` (the handoff scan's decode) is still valid: no run happened
    // in between, so the simulator skips a second decode.
    sim::TierPhaseTimes phases;
    sim::TierPhaseTimes* p = tracer_ != nullptr ? &phases : nullptr;
    if (fast_path) {
      sim_.run_tiered(job.program, handoff, checkpoint_.cadence,
                      pending_points_, scratch_, &tier_stats_, dec, p);
    } else {
      sim_.run_tiered(job.program, handoff, scratch_, &tier_stats_, dec, p);
    }
    if (tracer_ != nullptr && phases.entered_fast) {
      last_handoff_ = phases.handoff_index;
      tracer_->record(
          lane_, "fast_tier", "sim", phases.fast_begin, phases.fast_end,
          job.iteration,
          {"handoff", static_cast<std::int64_t>(phases.handoff_index)});
      if (phases.continued_detailed) {
        tracer_->record(lane_, "detailed", "sim", phases.fast_end,
                        phases.detailed_end, job.iteration);
      }
    }
  } else if (fast_path) {
    // Emit checkpoints as a side effect (~1% of the run): if this
    // program later becomes a corpus parent, its resume points are
    // already on this worker (parent-affinity routes its children here).
    sim_.run(job.program, checkpoint_.cadence, pending_points_, scratch_);
  } else {
    sim_.run(job.program, scratch_);
  }
  return scratch_;
}

void CampaignWorker::process(const fuzz::FuzzJob& job,
                             const util::AtomicBitset* lp_already_covered,
                             WorkerResult& out) {
  std::chrono::steady_clock::time_point e0;
  if (tracer_ != nullptr) e0 = std::chrono::steady_clock::now();
  // Recycle the shell's coverage buckets into the scratch RunResult
  // before the run (the simulator resets them keeping capacity), closing
  // the buffer-reuse loop across the executor's queue boundary.
  scratch_.coverage = std::move(out.coverage);
  const sim::RunResult& run = simulate(job);

  out.iteration = job.iteration;
  extract_mst(run.trace, out.windows);
  lp_probe_.probe(run.trace, out.windows, lp_already_covered, out.lp_hits);
  out.reports = detector_.analyze(run, out.windows);
  // The detector never sees the test input; stamp it so confirmed
  // findings stay re-simulatable (waveform export, triage minimization).
  for (VulnReport& report : out.reports) report.program = job.program;
  out.coverage = std::move(scratch_.coverage);
  out.cycles = run.cycles;

  // Donate the finished cold run to the checkpoint cache (the analysis
  // above is done with the trace; the merger never sees it anyway). An
  // evicted entry hands its trace/commit buffers back to the scratch
  // RunResult, so steady-state donation costs no allocator round trips.
  if (!pending_points_.empty()) {
    ++stats_.insertions;
    CheckpointCache::Entry fresh;
    fresh.program = job.program;
    fresh.points = std::move(pending_points_);
    fresh.trace = std::move(scratch_.trace);
    fresh.commits = std::move(scratch_.commits);
    CheckpointCache::Entry recycled;
    cache_.insert(job.program.hash(), std::move(fresh), stats_, &recycled);
    if (!recycled.program.empty()) {  // an entry was actually evicted
      scratch_.trace = std::move(recycled.trace);
      scratch_.commits = std::move(recycled.commits);
    }
    pending_points_.clear();
  }

  if (tracer_ != nullptr) {
    tracer_->record(
        lane_, "execute", "pipeline", e0, std::chrono::steady_clock::now(),
        job.iteration, {"cache_hit", last_resumed_ ? 1 : 0},
        {"handoff", static_cast<std::int64_t>(last_handoff_)},
        {"resume_cycle", static_cast<std::int64_t>(last_resume_cycle_)});
  }
}

}  // namespace specure::core
