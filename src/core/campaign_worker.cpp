#include "core/campaign_worker.hpp"

#include "snapshot/snapshot.hpp"

namespace specure::core {

CampaignWorker::CampaignWorker(const sim::CoreConfig& core,
                               const OfflineResult& offline,
                               LpPolicy lp_policy,
                               const DetectorOptions& detector)
    : sim_(core),
      lp_probe_(offline.ifg, offline.pdlc, sim_.signal_db(), lp_policy),
      detector_(offline.ifg, offline.pdlc, sim_.signal_db(), detector) {}

WorkerResult CampaignWorker::process(
    const fuzz::FuzzJob& job,
    const std::vector<bool>* lp_already_covered) const {
  sim::RunResult run = sim_.run(job.program);

  WorkerResult out;
  out.iteration = job.iteration;
  out.windows = extract_mst(run.trace);
  out.lp_hits = lp_probe_.probe(run.trace, out.windows, lp_already_covered);
  out.reports = detector_.analyze(run, out.windows);
  // The detector never sees the test input; stamp it so confirmed
  // findings stay re-simulatable (waveform export, triage minimization).
  for (VulnReport& report : out.reports) report.program = job.program;
  out.coverage = std::move(run.coverage);
  out.cycles = run.cycles;
  return out;
}

}  // namespace specure::core
