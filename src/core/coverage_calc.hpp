// Coverage Calculator — §3.2: the novel Leakage Path (LP) coverage metric.
//
// LP coverage counts, per PDLC, whether the channel's signals toggled
// inside a speculative window — guiding the fuzzer toward inputs that
// exercise potential leakage channels *while speculating*, instead of
// generic code coverage. Two covering policies are provided (DESIGN.md
// D1): kAllSignals (every signal on the witness path toggled within one
// window) and kEndpoints (source and sink toggled within one window).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/mst.hpp"
#include "ift/pdlc.hpp"
#include "snapshot/snapshot.hpp"
#include "util/atomic_bitset.hpp"

namespace specure::core {

enum class LpPolicy : std::uint8_t { kAllSignals, kEndpoints };

class LpCoverageMap {
 public:
  LpCoverageMap(const ift::Ifg& ifg, const ift::PdlcList& pdlc,
                const snapshot::SignalDb& db,
                LpPolicy policy = LpPolicy::kAllSignals);

  /// Account one run: returns the number of *newly* covered channels.
  /// The trace is delta-native, so each window's change mask costs only
  /// the events inside the window — the old separate TraceDeltas rebuild
  /// pass is gone. The DenseTrace overload is the reference path used by
  /// the differential suite.
  std::size_t update(const snapshot::Trace& trace,
                     const std::vector<SpecWindow>& windows);
  std::size_t update(const snapshot::DenseTrace& trace,
                     const std::vector<SpecWindow>& windows);

  /// Thread-safe half of update(): the channels this run exercised
  /// (all path signals toggled inside one speculative window). Workers
  /// call probe() concurrently on their own run data; the single-threaded
  /// merger then applies the hits with commit(). probe()+commit() is
  /// equivalent to update() on one map. `already_covered`, when given, is
  /// the merger's atomic covered shadow: channels set there are skipped,
  /// which restores update()'s cheap saturated-coverage path. The shadow
  /// may be concurrently updated by the merger (pipelined executor) — a
  /// stale read just re-probes a channel commit() filters idempotently,
  /// so results never depend on the interleaving. Also usable with the
  /// out-param overload to reuse the hit vector's capacity.
  std::vector<std::size_t> probe(
      const snapshot::Trace& trace,
      const std::vector<SpecWindow>& windows,
      const util::AtomicBitset* already_covered = nullptr) const;
  void probe(const snapshot::Trace& trace,
             const std::vector<SpecWindow>& windows,
             const util::AtomicBitset* already_covered,
             std::vector<std::size_t>& out) const;

  /// Mark probed channels covered; returns the number newly covered.
  /// Idempotent: already-covered channels count zero.
  std::size_t commit(const std::vector<std::size_t>& channels);

  std::size_t covered() const { return covered_count_; }
  const std::vector<bool>& covered_mask() const { return covered_; }

  /// Overwrite the covered set from a previously saved covered_mask()
  /// (campaign state restore). The mask must come from the same channel
  /// universe — i.e. a map built from the same offline result and policy.
  void restore_covered(const std::vector<bool>& mask) {
    if (mask.size() != covered_.size()) {
      throw std::logic_error("LP coverage restore: channel count mismatch");
    }
    covered_ = mask;
    covered_count_ = 0;
    for (const bool c : covered_) covered_count_ += c;
  }
  std::size_t total() const { return covered_.size(); }
  bool is_covered(std::size_t channel) const { return covered_[channel]; }

 private:
  /// Per channel, the snapshot signal ids of its path (policy-dependent).
  std::vector<std::vector<snapshot::SignalId>> channel_signals_;
  std::vector<bool> covered_;
  std::size_t covered_count_ = 0;
};

}  // namespace specure::core
