#include "core/leakage.hpp"

namespace specure::core {

std::vector<WindowLeakage> detect_leakage(
    const snapshot::Trace& trace, const std::vector<SpecWindow>& windows) {
  std::vector<WindowLeakage> out;
  for (const auto& w : windows) {
    if (!w.mispredicted) continue;
    WindowLeakage leak;
    leak.window = w;
    leak.deltas = snapshot::diff(trace.at_cycle(w.start_cycle),
                                 trace.at_cycle(w.end_cycle));
    out.push_back(std::move(leak));
  }
  return out;
}

}  // namespace specure::core
