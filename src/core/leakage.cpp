#include "core/leakage.hpp"

namespace specure::core {

std::vector<WindowLeakage> detect_leakage(
    const snapshot::Trace& trace, const std::vector<SpecWindow>& windows) {
  std::vector<WindowLeakage> out;
  for (const auto& w : windows) {
    if (!w.mispredicted) continue;
    WindowLeakage leak;
    leak.window = w;
    // Window-oriented delta query: only the signals with change events
    // inside the window are diff candidates, no snapshot pair needed.
    leak.deltas = trace.diff(w.start_cycle, w.end_cycle);
    out.push_back(std::move(leak));
  }
  return out;
}

}  // namespace specure::core
