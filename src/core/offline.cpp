#include "core/offline.hpp"

#include "rtl/elaborate.hpp"
#include "rtl/parser.hpp"
#include "sim/structure.hpp"

namespace specure::core {

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

OfflineResult run_offline_phase(const sim::CoreConfig& config,
                                const ift::PdlcOptions& options) {
  OfflineResult out;
  auto t0 = std::chrono::steady_clock::now();
  out.ifg = sim::build_ifg(config);
  out.ifg_seconds = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  out.pdlc = ift::extract_pdlc(out.ifg, options);
  out.pdlc_seconds = seconds_since(t0);
  return out;
}

OfflineResult run_offline_phase_rtl(const std::string& verilog_source,
                                    const std::string& top_module,
                                    const ift::ArchRegDb& db,
                                    const ift::PdlcOptions& options) {
  OfflineResult out;
  auto t0 = std::chrono::steady_clock::now();
  const rtl::Design design = rtl::parse(verilog_source);
  const rtl::ElaboratedDesign elab = rtl::elaborate(design, top_module);
  out.ifg = ift::Ifg::from_elaborated(elab);
  db.label(out.ifg);
  out.ifg_seconds = seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  out.pdlc = ift::extract_pdlc(out.ifg, options);
  out.pdlc_seconds = seconds_since(t0);
  return out;
}

}  // namespace specure::core
