#include "core/campaign_scheduler.hpp"

#include <algorithm>

namespace specure::core {

CampaignScheduler::CampaignScheduler(const fuzz::FuzzerOptions& options,
                                     std::uint64_t rng_seed,
                                     std::uint64_t total_iterations)
    : fuzzer_(options, rng_seed), total_iterations_(total_iterations) {}

std::vector<fuzz::FuzzJob> CampaignScheduler::next_batch(
    std::size_t batch_size) {
  const std::uint64_t remaining = total_iterations_ - issued_;
  const std::size_t count = static_cast<std::size_t>(
      std::min<std::uint64_t>(std::max<std::size_t>(batch_size, 1),
                              remaining));
  if (count == 0) return {};
  issued_ += count;
  return fuzzer_.next_batch(count);
}

bool CampaignScheduler::next_job(fuzz::FuzzJob& out) {
  if (issued_ >= total_iterations_) return false;
  ++issued_;
  out = fuzzer_.next_job();
  return true;
}

std::size_t CampaignScheduler::worker_for(const fuzz::FuzzJob& job,
                                          std::size_t workers) {
  if (workers <= 1) return 0;
  if (job.has_parent) {
    return static_cast<std::size_t>(job.parent_hash % workers);
  }
  // Parentless jobs (seeds, randoms) spread round-robin by iteration.
  return static_cast<std::size_t>(job.iteration % workers);
}

void CampaignScheduler::feedback(const riscv::Program& program,
                                 std::uint64_t iteration) {
  fuzzer_.report_interesting(program, iteration);
}

}  // namespace specure::core
