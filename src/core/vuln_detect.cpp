#include "core/vuln_detect.hpp"

#include <algorithm>

#include "riscv/isa.hpp"
#include "triage/signature.hpp"
#include "util/strings.hpp"

namespace specure::core {

std::string_view vuln_kind_name(VulnKind kind) {
  switch (kind) {
    case VulnKind::kDirectLeak: return "direct-leak";
    case VulnKind::kCacheResidue: return "cache-residue";
  }
  return "?";
}

std::string finding_key(const VulnReport& report) {
  std::string key =
      std::string(vuln_kind_name(report.kind)) + ":" + report.sink_signal;
  if (report.kind == VulnKind::kCacheResidue) {
    // Conditional-branch (v1-class) and indirect-jump (v2-class) windows
    // are distinct vulnerabilities even when the residue lands in the
    // same structure.
    key += report.window.has_indirect_opener() ? ":indirect" : ":conditional";
  }
  return key;
}

std::string dedup_key(const VulnReport& report) {
  return report.signature.empty() ? finding_key(report) : report.signature;
}

VulnerabilityDetector::VulnerabilityDetector(const ift::Ifg& ifg,
                                             const ift::PdlcList& pdlc,
                                             const snapshot::SignalDb& db,
                                             DetectorOptions options)
    : ifg_(ifg), pdlc_(pdlc), db_(db), options_(options) {}

bool VulnerabilityDetector::delta_explained_by_commits(
    const snapshot::SignalDb& db, snapshot::SignalId sig,
    const std::vector<sim::CommitRecord>& commits, std::uint64_t from,
    std::uint64_t to) const {
  const std::string& name = db.info(sig).name;
  // Commits up to the drain horizon past the window end still explain
  // in-window writebacks of correct-path instructions (see
  // DetectorOptions::commit_drain_horizon).
  const std::uint64_t horizon = to + options_.commit_drain_horizon;
  auto in_window = [from, horizon](const sim::CommitRecord& c) {
    return c.cycle > from && c.cycle <= horizon;
  };
  if (util::starts_with(name, "core.rf.x")) {
    const unsigned reg = static_cast<unsigned>(
        std::stoul(name.substr(std::string("core.rf.x").size())));
    for (const auto& c : commits) {
      if (in_window(c) && c.writes_rd && c.rd == reg) return true;
    }
    return false;
  }
  if (util::starts_with(name, "core.csr.")) {
    const std::string csr_name = name.substr(std::string("core.csr.").size());
    for (const auto& c : commits) {
      if (in_window(c) && c.writes_csr &&
          riscv::csr::name(c.csr) == csr_name) {
        return true;
      }
    }
    return false;
  }
  if (name == "core.commit.pc") {
    // The architectural PC advances with every bona-fide commit.
    return std::any_of(commits.begin(), commits.end(), in_window);
  }
  return false;
}

std::vector<RootCause> VulnerabilityDetector::find_root_causes(
    const std::string& sink_name, const snapshot::Trace& trace,
    std::uint64_t from, std::uint64_t to) const {
  std::vector<RootCause> out;
  const ift::NodeId sink = ifg_.find(sink_name);
  if (sink == ift::kInvalidNode) return out;
  const auto changed = trace.changed_mask(from, to);
  for (std::size_t idx : pdlc_.by_sink(sink)) {
    const ift::Pdlc& ch = pdlc_[idx];
    const std::string& src_name = ifg_.node(ch.source).name;
    const snapshot::SignalId sid = db_.find(src_name);
    if (sid == snapshot::kInvalidSignal || !changed[sid]) continue;
    RootCause rc;
    rc.source_signal = src_name;
    for (ift::NodeId n : ch.path) rc.path.push_back(ifg_.node(n).name);
    out.push_back(std::move(rc));
    if (out.size() >= 8) break;  // bound the report
  }
  return out;
}

std::vector<VulnReport> VulnerabilityDetector::analyze(
    const sim::RunResult& run, const std::vector<SpecWindow>& windows) const {
  std::vector<VulnReport> reports;
  const auto leaks = detect_leakage(run.trace, windows);
  const auto tainted_id = db_.find("core.lsu.tainted_access");

  for (const auto& leak : leaks) {
    const std::uint64_t from = leak.window.start_cycle;
    const std::uint64_t to = leak.window.end_cycle;
    bool cache_changed = false;

    // The window-opening instruction itself is not transient — it resolves
    // and commits. A JALR opener writes its link register at resolution
    // (inside the window) but commits just after it closes, so its rd
    // write is discharged structurally.
    const riscv::DecodedInst opener = riscv::decode(leak.window.inst);
    const bool opener_writes_rd =
        opener.op == riscv::Op::kJalr && opener.rd != 0;
    const std::string opener_rf =
        "core.rf.x" + std::to_string(opener.rd);

    // Window-local pass: the reports plus the window's full unexplained
    // architectural delta mask — the signature's diff-mask component is
    // shared by every finding in the window.
    std::vector<VulnReport> window_reports;
    std::vector<std::string> unexplained_mask;
    for (const auto& delta : leak.deltas) {
      const auto& info = db_.info(delta.id);
      if (util::starts_with(info.name, "core.dcache.")) cache_changed = true;
      if (info.cls != snapshot::SignalClass::kArchitectural) continue;
      if (opener_writes_rd && info.name == opener_rf) continue;
      if (delta_explained_by_commits(db_, delta.id, run.commits, from, to)) {
        continue;
      }
      unexplained_mask.push_back(info.name);
      VulnReport rep;
      rep.kind = VulnKind::kDirectLeak;
      rep.window = leak.window;
      rep.sink_signal = info.name;
      rep.before = delta.before;
      rep.after = delta.after;
      rep.root_causes = find_root_causes(info.name, run.trace, from, to);
      window_reports.push_back(std::move(rep));
    }

    if (options_.monitor_cache && cache_changed &&
        tainted_id != snapshot::kInvalidSignal) {
      // Spectre mode: a tainted (secret-derived-address) speculative
      // access inside this squashed window left persistent cache residue.
      // Pulse detection walks the signal's change events in (from, to]
      // instead of materializing every in-window snapshot.
      if (run.trace.any_nonzero(tainted_id, from, to)) {
        VulnReport rep;
        rep.kind = VulnKind::kCacheResidue;
        rep.window = leak.window;
        rep.sink_signal = "core.dcache";
        for (const auto& delta : leak.deltas) {
          const auto& info = db_.info(delta.id);
          if (util::starts_with(info.name, "core.dcache.") &&
              rep.root_causes.size() < 8) {
            rep.root_causes.push_back(
                {info.name, {"core.lsu.addr", info.name}});
          }
        }
        window_reports.push_back(std::move(rep));
      }
    }

    for (auto& rep : window_reports) {
      rep.signature =
          triage::compute_signature(rep, unexplained_mask).key();
      reports.push_back(std::move(rep));
    }
  }
  return reports;
}

}  // namespace specure::core
