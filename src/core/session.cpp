#include "core/session.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/campaign_scheduler.hpp"
#include "snapshot/vcd.hpp"
#include "util/fs.hpp"

namespace specure::core {

namespace {

/// Fail before the campaign starts, not at the first confirmed finding.
/// Throws SpecError, which the CLI maps to a usage error; `key` names
/// the spec key in the message (vcd_out / triage_out).
void ensure_dir_writable(const std::string& dir, const char* key) {
  const std::string problem = util::ensure_dir_writable(dir);
  if (!problem.empty()) {
    throw SpecError(std::string(key) + " directory '" + dir + "' " + problem);
  }
}

/// Waveform filename component for a scenario: spec names are free-form,
/// so path separators and blanks are flattened.
std::string sanitized_scenario_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '/' || c == '\\' || c == ' ' || c == '\t') c = '_';
  }
  return out;
}

}  // namespace

Session::Session(CampaignSpec spec)
    : spec_((spec.validate(), std::move(spec))),
      offline_(run_offline_phase(spec_.core, spec_.pdlc)),
      sim_(spec_.core) {}

Session& Session::on_progress(std::function<void(const ProgressEvent&)> fn) {
  progress_observers_.push_back(std::move(fn));
  return *this;
}

Session& Session::on_new_coverage(
    std::function<void(const CoverageEvent&)> fn) {
  coverage_observers_.push_back(std::move(fn));
  return *this;
}

Session& Session::on_vuln(std::function<void(const VulnEvent&)> fn) {
  vuln_observers_.push_back(std::move(fn));
  return *this;
}

Session& Session::on_batch_merged(std::function<void(const BatchEvent&)> fn) {
  batch_observers_.push_back(std::move(fn));
  return *this;
}

Session& Session::on_finding_minimized(
    std::function<void(const triage::MinimizedEvent&)> fn) {
  minimized_observers_.push_back(std::move(fn));
  return *this;
}

Session& Session::add_stop(StopCondition fn) {
  stops_.push_back(std::move(fn));
  return *this;
}

Session::StopCondition Session::stop_after_iterations(std::uint64_t n) {
  return [n](const CampaignResult& r) { return r.history.size() >= n; };
}

Session::StopCondition Session::stop_after_vulns(std::size_t n) {
  return [n](const CampaignResult& r) { return r.vulns.size() >= n; };
}

Session::StopCondition Session::stop_on_finding(std::string key_substring) {
  return [key = std::move(key_substring)](const CampaignResult& r) {
    for (const auto& [finding, iteration] : r.first_detection) {
      if (finding.find(key) != std::string::npos) return true;
    }
    return false;
  };
}

void Session::set_iteration_budget(std::uint64_t iterations) {
  spec_.budget.iterations = iterations;
}

std::size_t Session::resolved_jobs() const {
  std::size_t jobs = spec_.jobs;
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  // More workers than in-flight jobs per batch would sit idle.
  const std::size_t batch = spec_.batch_size == 0 ? 1 : spec_.batch_size;
  return jobs < batch ? jobs : batch;
}

CampaignResult Session::run() {
  if (!spec_.vcd_out.empty()) ensure_dir_writable(spec_.vcd_out, "vcd_out");
  if (spec_.triage == TriageMode::kFull) {
    ensure_dir_writable(spec_.triage_out, "triage_out");
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const std::size_t jobs = resolved_jobs();
  const std::size_t batch_size = spec_.batch_size == 0 ? 1 : spec_.batch_size;
  const CampaignBudget& budget = spec_.budget;

  CampaignScheduler scheduler(spec_.fuzzer, spec_.rng_seed,
                              budget.iterations);
  ResultMerger merger(offline_, sim_.signal_db(), spec_.feedback,
                      spec_.lp_policy, spec_.mst_sample_rows);

  // One simulator per worker, built on the first run() and reused across
  // campaigns; unique_ptr keeps the simulators (and the internal
  // references the LP prober and detector hold into them) at stable
  // addresses.
  if (workers_.empty()) {
    WorkerCheckpointOptions checkpoint;
    // The dense reference recorder has no resume prefix; fall back to
    // all-cold rather than rejecting the (debug-only) combination.
    checkpoint.enabled = spec_.checkpoint && !spec_.core.record_dense_trace;
    // The spec budget is the campaign total; each worker gets an even
    // share (affinity shards parents, so shares don't overlap).
    checkpoint.cache_bytes =
        std::max<std::size_t>((spec_.checkpoint_cache_mb << 20) / jobs,
                              std::size_t{1} << 20);
    workers_.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      workers_.push_back(std::make_unique<CampaignWorker>(
          spec_.core, offline_, spec_.lp_policy, spec_.detector,
          checkpoint));
    }
    pool_ = std::make_unique<util::ThreadPool>(jobs);
  }
  util::ThreadPool& pool = *pool_;

  // Plateau bookkeeping: the iteration at which the feedback metric (LP
  // coverage under lp feedback, code-coverage points under codecov) last
  // grew. Deterministic — it only depends on merged campaign state.
  std::uint64_t last_gain_iteration = 0;
  std::uint64_t last_progress = 0;
  std::uint64_t batch_index = 0;

  bool stopped = false;
  std::vector<WorkerResult> results;
  std::vector<std::vector<std::size_t>> groups(jobs);
  while (!stopped) {
    const std::vector<fuzz::FuzzJob> batch = scheduler.next_batch(batch_size);
    if (batch.empty()) break;

    results.clear();
    results.resize(batch.size());
    // Parent-affinity routing: each job is pinned to the worker that
    // holds (or will build) its corpus parent's checkpoint set, so the
    // per-worker checkpoint caches see every reuse opportunity. The
    // assignment depends only on job content — never on timing — so
    // results stay bit-identical for any worker count.
    for (auto& group : groups) group.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      groups[CampaignScheduler::worker_for(batch[i], jobs)].push_back(i);
    }
    // Rebalance: a batch dominated by one parent (small early corpus,
    // replay seeds) would otherwise serialize on a single worker. Spill
    // overflow beyond an even share to the least-loaded groups — worker
    // results are assignment-independent, so this affects only which
    // cache sees which job, never the campaign result.
    if (jobs > 1) {
      const std::size_t share = (batch.size() + jobs - 1) / jobs;
      std::vector<std::size_t> overflow;
      for (auto& group : groups) {
        while (group.size() > share) {
          overflow.push_back(group.back());
          group.pop_back();
        }
      }
      for (const std::size_t task : overflow) {
        auto* least = &groups.front();
        for (auto& group : groups) {
          if (group.size() < least->size()) least = &group;
        }
        least->push_back(task);
      }
    }
    // The merger is quiescent until the batch completes, so its covered
    // bitmap is a stable read-only snapshot for every worker.
    const std::vector<bool>& lp_covered = merger.lp_covered_mask();
    pool.parallel_for(jobs, [&](std::size_t worker, std::size_t) {
      for (const std::size_t task : groups[worker]) {
        results[task] = workers_[worker]->process(batch[task], &lp_covered);
      }
    });

    // Merge in iteration order; feedback earned here shapes the corpus the
    // next batch is drawn from (batch-synchronous semantics). Observers
    // fire here, on the merger thread, after each merged iteration.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const CampaignResult& live = merger.result();
      const std::size_t prev_lp =
          live.history.empty() ? 0 : live.history.back().covered_pdlc;
      const std::size_t prev_points =
          live.history.empty() ? 0 : live.history.back().coverage_points;
      const std::size_t prev_vulns = live.vulns.size();

      if (merger.merge(std::move(results[i]))) {
        scheduler.feedback(batch[i].program, batch[i].iteration);
      }

      const CampaignResult& r = merger.result();
      const IterationRecord& rec = r.history.back();

      if (rec.covered_pdlc > prev_lp || rec.coverage_points > prev_points) {
        const CoverageEvent event{rec.iteration,
                                  rec.covered_pdlc - prev_lp,
                                  rec.coverage_points - prev_points,
                                  rec.covered_pdlc, rec.coverage_points};
        for (const auto& fn : coverage_observers_) fn(event);
      }
      for (std::size_t v = prev_vulns; v < r.vulns.size(); ++v) {
        const VulnEvent event{rec.iteration, r.vulns[v]};
        for (const auto& fn : vuln_observers_) fn(event);
      }
      if (!spec_.vcd_out.empty() && r.vulns.size() > prev_vulns) {
        // One waveform per confirmed (post-dedup) finding. The worker's
        // trace is gone by merge time, so the program is re-simulated once
        // on the session simulator — same config, same seed-free cold
        // core, hence the identical trace — and only the vulnerability
        // window is written. Findings are rare, so this stays cheap, and
        // merge order makes the file set deterministic across jobs. The
        // scenario name prefixes the file so concurrent Sweep scenarios
        // can share one vcd_out directory without colliding.
        const sim::RunResult rerun = sim_.run(batch[i].program);
        for (std::size_t v = prev_vulns; v < r.vulns.size(); ++v) {
          const SpecWindow& w = r.vulns[v].window;
          snapshot::write_vcd_window_file(
              spec_.vcd_out + "/" + sanitized_scenario_name(spec_.name) +
                  "_vuln_iter" + std::to_string(rec.iteration) + "_" +
                  std::to_string(v) + ".vcd",
              rerun.trace, w.start_cycle, w.end_cycle);
        }
      }
      if (spec_.progress_interval != 0 &&
          rec.iteration >= last_progress + spec_.progress_interval) {
        last_progress = rec.iteration;
        const ProgressEvent event{rec.iteration,     budget.iterations,
                                  rec.covered_pdlc,  rec.coverage_points,
                                  r.vulns.size(),    elapsed()};
        for (const auto& fn : progress_observers_) fn(event);
      }

      // Budgets + custom stop conditions, all evaluated after the merge.
      const std::size_t metric = spec_.feedback == FeedbackMode::kLeakagePath
                                     ? rec.covered_pdlc
                                     : rec.coverage_points;
      const std::size_t prev_metric =
          spec_.feedback == FeedbackMode::kLeakagePath ? prev_lp : prev_points;
      if (metric > prev_metric) last_gain_iteration = rec.iteration;

      if (budget.max_vulns != 0 && r.vulns.size() >= budget.max_vulns) {
        stopped = true;
      }
      if (budget.plateau != 0 &&
          rec.iteration - last_gain_iteration >= budget.plateau) {
        stopped = true;
      }
      if (budget.max_seconds > 0 && elapsed() >= budget.max_seconds) {
        stopped = true;
      }
      for (const StopCondition& stop : stops_) {
        if (stopped) break;
        if (stop(r)) stopped = true;
      }
      if (stopped) break;
    }

    if (!stopped) {  // a stop mid-batch leaves the batch partially merged
      const BatchEvent event{batch_index++, batch.size(),
                             merger.result().history.size()
                                 ? merger.result().history.back().iteration
                                 : 0,
                             elapsed()};
      for (const auto& fn : batch_observers_) fn(event);
    }
  }

  CampaignResult result = merger.take_result();
  result.seconds = elapsed();

  // Post-campaign triage: minimize every confirmed finding (and package
  // repro bundles under `full`). Runs strictly after the campaign loop on
  // the already-merged findings, so the CampaignResult above is identical
  // whether triage is on or off.
  triage_report_.reset();
  if (spec_.triage != TriageMode::kOff && !result.vulns.empty()) {
    std::vector<triage::TriageInput> inputs;
    inputs.reserve(result.vulns.size());
    for (const VulnReport& v : result.vulns) {
      inputs.push_back({dedup_key(v), v.program});
    }
    triage::TriageOptions options;
    options.mode = spec_.triage;
    options.out_dir = spec_.triage_out;
    // The campaign's batch-size clip on `jobs` does not apply here:
    // minimization rounds fan out dozens of candidates regardless of the
    // batch shape, so triage gets the spec's raw worker request (0 = all
    // hardware threads, resolved by the Minimizer).
    options.jobs = spec_.jobs;
    triage_report_ = std::make_unique<triage::TriageReport>(triage::run_triage(
        spec_, offline_, inputs, options,
        [this](const triage::MinimizedEvent& event) {
          for (const auto& fn : minimized_observers_) fn(event);
        }));
  }
  return result;
}

}  // namespace specure::core
