#include "core/session.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/campaign_scheduler.hpp"
#include "snapshot/vcd.hpp"
#include "util/fs.hpp"
#include "util/ring.hpp"

namespace specure::core {

namespace {

/// Fail before the campaign starts, not at the first confirmed finding.
/// Throws SpecError, which the CLI maps to a usage error; `key` names
/// the spec key in the message (vcd_out / triage_out).
void ensure_dir_writable(const std::string& dir, const char* key) {
  const std::string problem = util::ensure_dir_writable(dir);
  if (!problem.empty()) {
    throw SpecError(std::string(key) + " directory '" + dir + "' " + problem);
  }
}

/// Waveform filename component for a scenario: spec names are free-form,
/// so path separators and blanks are flattened.
std::string sanitized_scenario_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '/' || c == '\\' || c == ' ' || c == '\t') c = '_';
  }
  return out;
}

/// Total retained span capacity of a traced run, split across lanes
/// (see obs::TraceRecorder): enough for the most recent ~20k iterations
/// of a pipelined campaign at a few tens of MB, independent of campaign
/// length.
constexpr std::size_t kTraceCapacityEvents = std::size_t{1} << 17;

std::uint64_t delta_counter(const obs::Snapshot& end,
                            const obs::Snapshot& base, const char* name) {
  return end.counter_value(name) - base.counter_value(name);
}

std::uint64_t delta_shard(const obs::Snapshot& end, const obs::Snapshot& base,
                          const char* name, std::size_t shard) {
  const obs::CounterSnapshot* e = end.counter(name);
  const obs::CounterSnapshot* b = base.counter(name);
  const std::uint64_t ev =
      e != nullptr && shard < e->shards.size() ? e->shards[shard] : 0;
  const std::uint64_t bv =
      b != nullptr && shard < b->shards.size() ? b->shards[shard] : 0;
  return ev - bv;
}

/// PipelineStats as a view over the registry: this run()'s deltas
/// between the baseline snapshot (taken at setup) and now.
PipelineStats pipeline_stats_view(const obs::Snapshot& base,
                                  const obs::Snapshot& end,
                                  std::size_t jobs) {
  PipelineStats out;
  const auto secs = [&](const char* name) {
    return static_cast<double>(delta_counter(end, base, name)) / 1e9;
  };
  out.generate_seconds = secs("stage/generate_ns");
  out.merge_seconds = secs("stage/merge_ns");
  out.result_wait_seconds = secs("stage/result_wait_ns");
  out.vcd_seconds = secs("stage/vcd_ns");
  out.workers.resize(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    PipelineWorkerStats& ws = out.workers[w];
    ws.execute_seconds =
        static_cast<double>(delta_shard(end, base, "worker/execute_ns", w)) /
        1e9;
    ws.queue_wait_seconds =
        static_cast<double>(
            delta_shard(end, base, "worker/queue_wait_ns", w)) /
        1e9;
    ws.jobs = delta_shard(end, base, "worker/jobs", w);
    ws.fast_cycles = delta_shard(end, base, "tier/fast_cycles", w);
    ws.handoffs = delta_shard(end, base, "tier/handoffs", w);
    ws.tier_fallbacks = delta_shard(end, base, "tier/fallbacks", w);
  }
  return out;
}

}  // namespace

Session::Session(CampaignSpec spec)
    : spec_((spec.validate(), std::move(spec))),
      offline_(run_offline_phase(spec_.core, spec_.pdlc)),
      sim_(spec_.core),
      // Constructed eagerly (not lazily in run()) so the pointer never
      // mutates once the session is shared — the serve daemon scrapes
      // metrics_snapshot() from connection threads while the runner is
      // inside run(). resolved_jobs() is constant for the session's
      // life, so the run()-time rebuild guard only fires if a run ever
      // needs more lanes than this (it cannot today).
      metrics_(std::make_unique<obs::Registry>(resolved_jobs() + 1)) {}

Session& Session::on_progress(std::function<void(const ProgressEvent&)> fn) {
  progress_observers_.push_back(std::move(fn));
  return *this;
}

Session& Session::on_new_coverage(
    std::function<void(const CoverageEvent&)> fn) {
  coverage_observers_.push_back(std::move(fn));
  return *this;
}

Session& Session::on_vuln(std::function<void(const VulnEvent&)> fn) {
  vuln_observers_.push_back(std::move(fn));
  return *this;
}

Session& Session::on_batch_merged(std::function<void(const BatchEvent&)> fn) {
  batch_observers_.push_back(std::move(fn));
  return *this;
}

Session& Session::on_finding_minimized(
    std::function<void(const triage::MinimizedEvent&)> fn) {
  minimized_observers_.push_back(std::move(fn));
  return *this;
}

Session& Session::on_frontier(
    std::function<void(const CampaignFrontier&)> sink,
    double min_interval_seconds) {
  frontier_sinks_.emplace_back(std::move(sink), min_interval_seconds);
  return *this;
}

Session& Session::add_stop(StopCondition fn) {
  stops_.push_back(std::move(fn));
  return *this;
}

void Session::resume_from(CampaignFrontier frontier) {
  resume_ = std::make_unique<CampaignFrontier>(std::move(frontier));
  paused_ = false;
}

Session::StopCondition Session::stop_after_iterations(std::uint64_t n) {
  return [n](const CampaignResult& r) { return r.history.size() >= n; };
}

Session::StopCondition Session::stop_after_vulns(std::size_t n) {
  return [n](const CampaignResult& r) { return r.vulns.size() >= n; };
}

Session::StopCondition Session::stop_on_finding(std::string key_substring) {
  return [key = std::move(key_substring)](const CampaignResult& r) {
    for (const auto& [finding, iteration] : r.first_detection) {
      if (finding.find(key) != std::string::npos) return true;
    }
    return false;
  };
}

void Session::set_iteration_budget(std::uint64_t iterations) {
  spec_.budget.iterations = iterations;
}

std::size_t Session::resolved_jobs() const {
  std::size_t jobs = spec_.jobs;
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  // The sliding window keeps at most batch_size jobs in flight across
  // the whole campaign (job k is generated only after iteration
  // k - batch_size merged), so workers beyond that count could never be
  // fed a job; clip rather than park idle threads.
  const std::size_t batch = spec_.batch_size == 0 ? 1 : spec_.batch_size;
  return jobs < batch ? jobs : batch;
}

CampaignResult Session::run() {
  // Resuming a completed frontier: the campaign already ended (budget or
  // stop condition) — re-running would re-evaluate stops one iteration
  // too late and diverge, so hand back the stored result instead.
  if (resume_ && resume_->completed) {
    CampaignResult done = std::move(resume_->result);
    resume_.reset();
    paused_ = false;
    return done;
  }

  if (!spec_.vcd_out.empty()) ensure_dir_writable(spec_.vcd_out, "vcd_out");
  if (spec_.triage == TriageMode::kFull) {
    ensure_dir_writable(spec_.triage_out, "triage_out");
  }
  if (!spec_.state_out.empty()) {
    // The state file's parent directory must exist and be writable
    // before the campaign starts — a failing cadence write mid-campaign
    // would silently lose the resume story.
    const std::size_t slash = spec_.state_out.find_last_of('/');
    ensure_dir_writable(
        slash == std::string::npos ? "." : spec_.state_out.substr(0, slash),
        "state_out");
  }
  if (!spec_.trace_out.empty()) {
    const std::size_t slash = spec_.trace_out.find_last_of('/');
    ensure_dir_writable(
        slash == std::string::npos ? "." : spec_.trace_out.substr(0, slash),
        "trace_out");
  }
  const auto t0 = std::chrono::steady_clock::now();
  // Wall-clock within this run() segment; elapsed() adds the time the
  // campaign accumulated before a pause, so max_seconds budgets and
  // report timings span resumes.
  const auto raw_elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const auto elapsed = [&] { return prior_seconds_ + raw_elapsed(); };
  const std::size_t jobs = resolved_jobs();
  const std::size_t window = spec_.batch_size == 0 ? 1 : spec_.batch_size;
  const CampaignBudget& budget = spec_.budget;

  // One simulator per worker, built on the first run() and reused across
  // campaigns; unique_ptr keeps the simulators (and the internal
  // references the LP prober and detector hold into them) at stable
  // addresses. Grown, never shrunk: a later run() may resolve more jobs
  // (the serve daemon rescales a tenant's share as campaigns come and
  // go), and worker caches are wall-clock-only state either way.
  if (workers_.size() < jobs) {
    WorkerCheckpointOptions checkpoint;
    // The dense reference recorder has no resume prefix; fall back to
    // all-cold rather than rejecting the (debug-only) combination.
    checkpoint.enabled = spec_.checkpoint && !spec_.core.record_dense_trace;
    // The spec budget is the campaign total; each worker gets an even
    // share (affinity shards parents, so shares don't overlap).
    checkpoint.cache_bytes =
        std::max<std::size_t>((spec_.checkpoint_cache_mb << 20) / jobs,
                              std::size_t{1} << 20);
    WorkerTierOptions tier;
    tier.fast = spec_.tier == TierMode::kFast;
    // Cache-monitoring detectors observe loads, so the fast prefix must
    // stop at the first load as well (fuzz::handoff_index policy).
    tier.loads_arm = spec_.detector.monitor_cache;
    workers_.reserve(jobs);
    for (std::size_t w = workers_.size(); w < jobs; ++w) {
      workers_.push_back(std::make_unique<CampaignWorker>(
          spec_.core, offline_, spec_.lp_policy, spec_.detector,
          checkpoint, tier));
    }
  }

  pipeline_stats_ = PipelineStats{};
  pipeline_stats_.workers.resize(jobs);
  // Worker tier stats are cumulative across run() calls; snapshot a
  // baseline so this run reports its own deltas.
  std::vector<sim::TierStats> tier_baseline(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    tier_baseline[w] = workers_[w]->tier_stats();
  }
  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto secs = [](std::chrono::steady_clock::duration d) {
    return std::chrono::duration<double>(d).count();
  };
  const auto to_ns = [](std::chrono::steady_clock::duration d) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
  };

  // ---- observability setup ----------------------------------------------
  // One registry shard per pipeline lane: workers 0..jobs-1, merge
  // strand at lane `jobs`. The registry is cumulative across run()
  // calls (Prometheus counters are monotonic) and only rebuilt when a
  // later run() needs more lanes; handles are re-fetched every run, so
  // a rebuild is transparent here.
  const bool tracing = !spec_.trace_out.empty();
  const bool hist = spec_.metrics;
  merge_lane_ = jobs;
  if (metrics_ == nullptr || metrics_->shards() < jobs + 1) {
    metrics_ = std::make_unique<obs::Registry>(jobs + 1);
  }
  obs::Registry& reg = *metrics_;
  struct {
    obs::Counter generate, merge, result_wait, vcd;     // merge strand
    obs::Counter execute, queue_wait, jobs_done;        // per worker
    obs::Counter fast_cycles, handoffs, fallbacks;      // tier mirror
    obs::Counter iterations, findings;
    obs::Gauge covered_pdlc, coverage_points;
    obs::Histogram h_generate, h_queue, h_execute, h_result, h_merge,
        h_iter;
  } o;
  o.generate = reg.counter("stage/generate_ns");
  o.merge = reg.counter("stage/merge_ns");
  o.result_wait = reg.counter("stage/result_wait_ns");
  o.vcd = reg.counter("stage/vcd_ns");
  o.execute = reg.counter("worker/execute_ns");
  o.queue_wait = reg.counter("worker/queue_wait_ns");
  o.jobs_done = reg.counter("worker/jobs");
  o.fast_cycles = reg.counter("tier/fast_cycles");
  o.handoffs = reg.counter("tier/handoffs");
  o.fallbacks = reg.counter("tier/fallbacks");
  o.iterations = reg.counter("campaign/iterations");
  o.findings = reg.counter("campaign/findings");
  o.covered_pdlc = reg.gauge("campaign/covered_pdlc");
  o.coverage_points = reg.gauge("campaign/coverage_points");
  if (hist) {
    // Registered only when spec.metrics is on, so a metrics=off session
    // exports no empty histogram families.
    o.h_generate = reg.histogram("hist/generate_ns");
    o.h_queue = reg.histogram("hist/queue_wait_ns");
    o.h_execute = reg.histogram("hist/execute_ns");
    o.h_result = reg.histogram("hist/result_wait_ns");
    o.h_merge = reg.histogram("hist/merge_ns");
    o.h_iter = reg.histogram("hist/iter_latency_ns");
  }
  tracer_.reset();
  if (tracing) {
    tracer_ = std::make_unique<obs::TraceRecorder>(jobs + 1,
                                                   kTraceCapacityEvents);
    for (std::size_t w = 0; w < jobs; ++w) {
      tracer_->set_lane_name(w, "worker " + std::to_string(w));
    }
    tracer_->set_lane_name(merge_lane_, "merge strand");
  }
  // Workers beyond this run's job count (a previous run resolved more)
  // are detached so no stale recorder pointer survives.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w]->set_observability(
        w < jobs ? WorkerObservability{&reg, tracer_.get(), w}
                 : WorkerObservability{});
  }
  // Baseline for this run's PipelineStats view (registry deltas).
  const obs::Snapshot obs_base = reg.snapshot();

  // ---- shared in-order merge step ---------------------------------------
  // Both executors implement the same generation contract (job k is
  // generated from the merged state through iteration k - window) and
  // funnel every result through this single-threaded step, strictly in
  // iteration order — which is what makes the CampaignResult independent
  // of the executor and the worker count.
  std::uint64_t last_gain_iteration = 0;
  std::uint64_t last_progress = 0;
  std::uint64_t batch_index = 0;
  std::size_t merges_since_event = 0;
  bool stopped = false;
  bool paused = false;

  // Deferred waveform export: confirmed findings are recorded here at
  // merge time and re-simulated after the campaign loop (the merge strand
  // is the scaling bottleneck; a re-simulation per finding on it was the
  // single largest serial term). Merge order pins the file set.
  std::vector<PendingWaveform> pending_vcd;

  // ---- durable-state bookkeeping (resume frontier) -----------------------
  // `inflight` mirrors, on the merge strand, the jobs issued but not yet
  // merged (never more than one window): every job enters through
  // draw_job and leaves in merge_one, so at any merge boundary the deque
  // is exactly the frontier's in_flight list. `replay` holds a resumed
  // frontier's in-flight jobs; draw_job serves them before asking the
  // scheduler, which re-dispatches the interrupted window verbatim (the
  // jobs cannot be regenerated — drawing them mutated corpus energy).
  std::deque<fuzz::FuzzJob> inflight;
  std::deque<fuzz::FuzzJob> replay;
  std::uint64_t merged_total = 0;

  CampaignScheduler scheduler(spec_.fuzzer, spec_.rng_seed,
                              budget.iterations);
  ResultMerger merger(offline_, sim_.signal_db(), spec_.feedback,
                      spec_.lp_policy, spec_.mst_sample_rows);

  if (resume_) {
    const CampaignFrontier& f = *resume_;
    scheduler.restore(f.fuzzer);
    merger.restore(f.result, f.lp_covered, f.coverage_points, f.toggle_bits);
    replay.assign(f.in_flight.begin(), f.in_flight.end());
    merged_total = f.merged;
    last_gain_iteration = f.last_gain_iteration;
    last_progress = f.last_progress;
    batch_index = f.batch_index;
    merges_since_event = static_cast<std::size_t>(f.merges_since_event);
    pending_vcd.assign(f.pending_vcd.begin(), f.pending_vcd.end());
    prior_seconds_ = f.prior_seconds;
    resume_.reset();
  } else {
    prior_seconds_ = 0;
  }
  paused_ = false;

  // Issue timestamps for the iteration-latency histogram (draw -> merge,
  // the full pipeline residence time of one iteration). Indexed by slot,
  // like everything else keyed on absolute iteration numbers.
  std::vector<std::chrono::steady_clock::time_point> issue_ts(
      hist ? window : 0);

  const auto draw_job = [&](fuzz::FuzzJob& out) {
    if (!replay.empty()) {
      out = std::move(replay.front());
      replay.pop_front();
    } else if (!scheduler.next_job(out)) {
      return false;
    }
    inflight.push_back(out);
    if (!issue_ts.empty()) {
      issue_ts[(out.iteration - 1) % window] = now();
    }
    return true;
  };

  const auto merge_one = [&](WorkerResult& result, const fuzz::FuzzJob& job,
                             std::chrono::steady_clock::time_point m0) {
    inflight.pop_front();  // `job` is always the oldest in-flight iteration
    ++merged_total;
    o.iterations.add(merge_lane_);
    if (!issue_ts.empty()) {
      o.h_iter.record(merge_lane_,
                      to_ns(m0 - issue_ts[(job.iteration - 1) % window]));
    }
    const CampaignResult& live = merger.result();
    const std::size_t prev_lp =
        live.history.empty() ? 0 : live.history.back().covered_pdlc;
    const std::size_t prev_points =
        live.history.empty() ? 0 : live.history.back().coverage_points;
    const std::size_t prev_vulns = live.vulns.size();

    if (merger.merge(result)) {
      scheduler.feedback(job.program, job.iteration);
    }

    const CampaignResult& r = merger.result();
    const IterationRecord& rec = r.history.back();
    o.findings.add(merge_lane_, r.vulns.size() - prev_vulns);
    o.covered_pdlc.set(rec.covered_pdlc);
    o.coverage_points.set(rec.coverage_points);

    if (rec.covered_pdlc > prev_lp || rec.coverage_points > prev_points) {
      const CoverageEvent event{rec.iteration,
                                rec.covered_pdlc - prev_lp,
                                rec.coverage_points - prev_points,
                                rec.covered_pdlc, rec.coverage_points};
      for (const auto& fn : coverage_observers_) fn(event);
    }
    for (std::size_t v = prev_vulns; v < r.vulns.size(); ++v) {
      const VulnEvent event{rec.iteration, r.vulns[v]};
      for (const auto& fn : vuln_observers_) fn(event);
    }
    if (!spec_.vcd_out.empty() && r.vulns.size() > prev_vulns) {
      pending_vcd.push_back(
          {job.program, rec.iteration, prev_vulns, r.vulns.size()});
    }
    if (spec_.progress_interval != 0 &&
        rec.iteration >= last_progress + spec_.progress_interval) {
      last_progress = rec.iteration;
      const ProgressEvent event{rec.iteration,     budget.iterations,
                                rec.covered_pdlc,  rec.coverage_points,
                                r.vulns.size(),    elapsed()};
      for (const auto& fn : progress_observers_) fn(event);
    }

    // Budgets + custom stop conditions, all evaluated after the merge.
    const std::size_t metric = spec_.feedback == FeedbackMode::kLeakagePath
                                   ? rec.covered_pdlc
                                   : rec.coverage_points;
    const std::size_t prev_metric =
        spec_.feedback == FeedbackMode::kLeakagePath ? prev_lp : prev_points;
    if (metric > prev_metric) last_gain_iteration = rec.iteration;

    if (budget.max_vulns != 0 && r.vulns.size() >= budget.max_vulns) {
      stopped = true;
    }
    if (budget.plateau != 0 &&
        rec.iteration - last_gain_iteration >= budget.plateau) {
      stopped = true;
    }
    if (budget.max_seconds > 0 && elapsed() >= budget.max_seconds) {
      stopped = true;
    }
    for (const StopCondition& stop : stops_) {
      if (stopped) break;
      if (stop(r)) stopped = true;
    }

    // A full window of iterations merged: fire the cadence event (a stop
    // mid-window leaves the window partially merged, eventless — same as
    // the old mid-batch stop).
    ++merges_since_event;
    if (!stopped && merges_since_event == window) {
      const BatchEvent event{batch_index++, merges_since_event,
                             rec.iteration, elapsed()};
      merges_since_event = 0;
      for (const auto& fn : batch_observers_) fn(event);
    }
  };

  // ---- frontier capture + pause hook -------------------------------------
  // Both executors call post_merge() after every merge_one + window
  // refill — the only points where the frontier invariant holds (jobs
  // issued through merged + |inflight|, feedback applied through merged).
  const auto capture_frontier = [&](bool completed) {
    CampaignFrontier f;
    f.merged = merged_total;
    f.completed = completed;
    f.fuzzer = scheduler.save_state();
    f.in_flight.assign(inflight.begin(), inflight.end());
    f.result = merger.result();
    f.result.seconds = elapsed();
    f.lp_covered = merger.lp_covered_mask();
    const auto& points = merger.code_coverage().points();
    f.coverage_points.assign(points.begin(), points.end());
    std::sort(f.coverage_points.begin(), f.coverage_points.end());
    f.toggle_bits = merger.code_coverage().toggle_bits();
    f.last_gain_iteration = last_gain_iteration;
    f.last_progress = last_progress;
    f.batch_index = batch_index;
    f.merges_since_event = merges_since_event;
    f.pending_vcd = pending_vcd;
    f.prior_seconds = f.result.seconds;
    return f;
  };

  // Per-sink cadence clock (run wall-clock of the last fire), so two
  // sinks with different intervals throttle independently.
  std::vector<double> sink_last_fire(frontier_sinks_.size(), 0);
  const auto post_merge = [&]() -> bool {  // true = pause at this boundary
    if (!frontier_sinks_.empty()) {
      const double t = raw_elapsed();
      bool any_due = false;
      for (std::size_t i = 0; i < frontier_sinks_.size(); ++i) {
        if (t - sink_last_fire[i] >= frontier_sinks_[i].second) {
          any_due = true;
        }
      }
      if (any_due) {
        const CampaignFrontier f = capture_frontier(false);
        for (std::size_t i = 0; i < frontier_sinks_.size(); ++i) {
          if (t - sink_last_fire[i] >= frontier_sinks_[i].second) {
            sink_last_fire[i] = t;
            frontier_sinks_[i].first(f);
          }
        }
      }
    }
    if (pause_requested_.load(std::memory_order_relaxed)) return true;
    const std::uint64_t at = pause_at_.load(std::memory_order_relaxed);
    return at != 0 && merged_total >= at;
  };

  // ---- barrier executor (reference) -------------------------------------
  // One window at a time: execute every pending job with a parallel_for
  // convoy, then merge in order, generating job k + window right after
  // iteration k merges. Same operation sequence as the pipelined
  // executor, so bit-identical results — kept as the differential
  // reference and as the inline path for jobs == 1 (where a pipeline
  // cannot overlap anything and thread handoff would be pure overhead).
  const auto run_barrier = [&] {
    if (!pool_ || pool_->contexts() < jobs) {
      pool_ = std::make_unique<util::ThreadPool>(jobs);
    }
    util::ThreadPool& pool = *pool_;
    const util::AtomicBitset& covered = merger.lp_covered_shadow();

    std::vector<fuzz::FuzzJob> pending;
    std::vector<fuzz::FuzzJob> next;
    pending.reserve(window);
    next.reserve(window);
    {
      const auto g0 = now();
      fuzz::FuzzJob job;
      while (pending.size() < window && draw_job(job)) {
        pending.push_back(std::move(job));
      }
      const auto g1 = now();
      o.generate.add(merge_lane_, to_ns(g1 - g0));
      if (tracing) {
        tracer_->record(merge_lane_, "generate", "pipeline", g0, g1);
      }
    }

    std::vector<WorkerResult> results(window);
    std::vector<std::vector<std::size_t>> groups(jobs);
    while (!stopped && !paused && !pending.empty()) {
      // Parent-affinity routing: each job is pinned to the worker that
      // holds (or will build) its corpus parent's checkpoint set, so the
      // per-worker checkpoint caches see every reuse opportunity. The
      // assignment depends only on job content — never on timing — so
      // results stay bit-identical for any worker count.
      for (auto& group : groups) group.clear();
      for (std::size_t i = 0; i < pending.size(); ++i) {
        groups[CampaignScheduler::worker_for(pending[i], jobs)].push_back(i);
      }
      // Rebalance: a window dominated by one parent (small early corpus,
      // replay seeds) would otherwise serialize on a single worker. Spill
      // overflow beyond an even share to the least-loaded groups — worker
      // results are assignment-independent, so this affects only which
      // cache sees which job, never the campaign result.
      if (jobs > 1) {
        const std::size_t share = (pending.size() + jobs - 1) / jobs;
        std::vector<std::size_t> overflow;
        for (auto& group : groups) {
          while (group.size() > share) {
            overflow.push_back(group.back());
            group.pop_back();
          }
        }
        for (const std::size_t task : overflow) {
          auto* least = &groups.front();
          for (auto& group : groups) {
            if (group.size() < least->size()) least = &group;
          }
          least->push_back(task);
        }
      }
      pool.parallel_for(jobs, [&](std::size_t worker, std::size_t) {
        for (const std::size_t task : groups[worker]) {
          const auto j0 = now();
          if (test_job_delay_) test_job_delay_(pending[task], worker);
          workers_[worker]->process(pending[task], &covered, results[task]);
          const std::uint64_t d = to_ns(now() - j0);
          o.execute.add(worker, d);
          o.h_execute.record(worker, d);
        }
        o.jobs_done.add(worker, groups[worker].size());
      });

      next.clear();
      for (std::size_t i = 0; i < pending.size(); ++i) {
        {
          const auto m0 = now();
          merge_one(results[i], pending[i], m0);
          const auto m1 = now();
          const std::uint64_t d = to_ns(m1 - m0);
          o.merge.add(merge_lane_, d);
          o.h_merge.record(merge_lane_, d);
          if (tracing) {
            tracer_->record(merge_lane_, "merge", "pipeline", m0, m1,
                            pending[i].iteration);
          }
        }
        if (stopped) break;
        const auto g0 = now();
        fuzz::FuzzJob job;
        const bool drew = draw_job(job);
        const auto g1 = now();
        const std::uint64_t gd = to_ns(g1 - g0);
        o.generate.add(merge_lane_, gd);
        if (drew) {
          o.h_generate.record(merge_lane_, gd);
          if (tracing) {
            tracer_->record(merge_lane_, "generate", "pipeline", g0, g1,
                            job.iteration);
          }
          next.push_back(std::move(job));
        }
        // Pause boundary: the frontier invariant holds right here (merge
        // + refill done). The rest of this window stays un-merged — its
        // jobs are in `inflight`, so the frontier re-executes them.
        if (post_merge()) {
          paused = true;
          break;
        }
      }
      pending.swap(next);
    }
  };

  // ---- pipelined sliding-window executor --------------------------------
  // No barrier anywhere: jobs flow to workers through per-worker SPSC
  // queues, results flow back through one MPSC ring, and this (caller)
  // thread merges strictly in iteration order, dispatching job k + window
  // the moment iteration k merges. Workers never park while in-flight
  // work exists, and the merge strand overlaps simulation completely.
  const auto run_window = [&] {
    // One slot per in-flight iteration: the job rides out to the worker
    // and the result rides back in the same slot, so the result shells
    // (windows/lp_hits/coverage buffers) recycle automatically when the
    // slot is reused by a later iteration. alignas(64): neighbouring
    // slots are written by different workers concurrently.
    struct alignas(64) Slot {
      fuzz::FuzzJob job;
      WorkerResult result;
    };
    std::vector<Slot> slots(window);
    // In-flight jobs never exceed the window, so capacity window + 1
    // guarantees push() always succeeds (no producer-side blocking).
    std::vector<std::unique_ptr<util::SpscRing<std::uint32_t>>> job_queues;
    job_queues.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      job_queues.push_back(
          std::make_unique<util::SpscRing<std::uint32_t>>(window + 1));
    }
    util::MpscRing<std::uint32_t> completed(window + jobs + 1);
    constexpr std::uint32_t kErrorSignal = 0xffffffffu;
    std::mutex error_mu;
    std::exception_ptr worker_error;

    const util::AtomicBitset& covered = merger.lp_covered_shadow();

    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      threads.emplace_back([&, w] {
        util::SpscRing<std::uint32_t>& queue = *job_queues[w];
        try {
          std::uint32_t s = 0;
          for (;;) {
            const auto w0 = now();
            if (!queue.pop_wait(s)) break;  // closed and drained
            const auto w1 = now();
            const std::uint64_t wd = to_ns(w1 - w0);
            o.queue_wait.add(w, wd);
            o.h_queue.record(w, wd);
            if (tracing) {
              tracer_->record(w, "queue_wait", "pipeline", w0, w1);
            }
            Slot& slot = slots[s];
            if (test_job_delay_) test_job_delay_(slot.job, w);
            workers_[w]->process(slot.job, &covered, slot.result);
            const std::uint64_t ed = to_ns(now() - w1);
            o.execute.add(w, ed);
            o.h_execute.record(w, ed);
            o.jobs_done.add(w);
            completed.push(s);
          }
        } catch (...) {
          {
            std::lock_guard<std::mutex> lk(error_mu);
            if (!worker_error) worker_error = std::current_exception();
          }
          completed.push(kErrorSignal);
        }
      });
    }

    // Dispatch bookkeeping — all merger-thread-private and a pure
    // function of merged campaign state, so the worker assignment (and
    // with it the checkpoint-cache population) is deterministic. Spill
    // beyond an even share mirrors the barrier executor's rebalance:
    // affinity is a cache hint, never a serialization point.
    std::vector<std::size_t> slot_worker(window, 0);
    std::vector<std::size_t> load(jobs, 0);
    std::vector<bool> ready(window, false);
    const std::size_t share = (window + jobs - 1) / jobs;
    // Absolute campaign counters (resume continues mid-stream; slot
    // indices are functions of absolute iteration numbers, so the slot
    // mapping is identical to the uninterrupted run's).
    std::uint64_t issued = merged_total;
    std::uint64_t merged = merged_total;

    // The most recent dispatch's parent-affinity decision (merge-strand
    // private), tagged onto the generate span when tracing.
    std::size_t last_affinity = 0;
    std::size_t last_assigned = 0;

    const auto dispatch = [&](fuzz::FuzzJob&& job) {
      const auto s =
          static_cast<std::uint32_t>((job.iteration - 1) % window);
      const std::size_t affinity = CampaignScheduler::worker_for(job, jobs);
      std::size_t w = affinity;
      if (load[w] >= share) {
        std::size_t least = 0;
        for (std::size_t i = 1; i < jobs; ++i) {
          if (load[i] < load[least]) least = i;
        }
        w = least;
      }
      last_affinity = affinity;
      last_assigned = w;
      slot_worker[s] = w;
      ++load[w];
      slots[s].job = std::move(job);
      ++issued;
      if (!job_queues[w]->push(s)) {
        throw std::logic_error("pipeline job queue overflow (window bug)");
      }
    };

    {
      const auto g0 = now();
      fuzz::FuzzJob job;
      while (issued - merged < window && draw_job(job)) {
        dispatch(std::move(job));
      }
      const auto g1 = now();
      o.generate.add(merge_lane_, to_ns(g1 - g0));
      if (tracing) {
        tracer_->record(merge_lane_, "generate", "pipeline", g0, g1);
      }
    }

    bool failed = false;
    while (!stopped && !paused && !failed && merged < issued) {
      std::uint32_t s = 0;
      {
        const auto r0 = now();
        if (!completed.pop_wait(s)) break;  // unreachable: never closed
        const auto r1 = now();
        const std::uint64_t d = to_ns(r1 - r0);
        o.result_wait.add(merge_lane_, d);
        o.h_result.record(merge_lane_, d);
        if (tracing) {
          tracer_->record(merge_lane_, "result_wait", "pipeline", r0, r1);
        }
      }
      if (s == kErrorSignal) {
        failed = true;
        break;
      }
      ready[s] = true;
      // Merge every contiguous ready iteration, refilling the window
      // after each merge (the freed slot is exactly the one iteration
      // merged + window maps to).
      for (;;) {
        const std::size_t ns = static_cast<std::size_t>(merged % window);
        if (!ready[ns]) break;
        ready[ns] = false;
        Slot& slot = slots[ns];
        --load[slot_worker[ns]];
        {
          const auto m0 = now();
          merge_one(slot.result, slot.job, m0);
          const auto m1 = now();
          const std::uint64_t d = to_ns(m1 - m0);
          o.merge.add(merge_lane_, d);
          o.h_merge.record(merge_lane_, d);
          if (tracing) {
            tracer_->record(merge_lane_, "merge", "pipeline", m0, m1,
                            slot.job.iteration);
          }
        }
        ++merged;
        if (stopped) break;
        const auto g0 = now();
        fuzz::FuzzJob job;
        const bool drew = draw_job(job);
        std::uint64_t drawn_iteration = 0;
        if (drew) {
          drawn_iteration = job.iteration;
          dispatch(std::move(job));
        }
        const auto g1 = now();
        const std::uint64_t gd = to_ns(g1 - g0);
        o.generate.add(merge_lane_, gd);
        if (drew) {
          o.h_generate.record(merge_lane_, gd);
          if (tracing) {
            tracer_->record(
                merge_lane_, "generate", "pipeline", g0, g1, drawn_iteration,
                {"affinity_worker", static_cast<std::int64_t>(last_affinity)},
                {"assigned_worker", static_cast<std::int64_t>(last_assigned)},
                {"spilled", last_assigned != last_affinity ? 1 : 0});
          }
        }
        if (post_merge()) {
          paused = true;
          break;
        }
      }
    }

    // Shutdown (normal completion, stop condition, or worker failure):
    // close the queues — workers finish what is already queued (at most
    // one window across all of them) and exit; leftover completions are
    // drained and discarded, leaving the merged result exactly at the
    // stopping iteration.
    for (auto& queue : job_queues) queue->close();
    for (auto& t : threads) t.join();
    std::uint32_t s = 0;
    while (completed.pop(s)) {
    }
    if (worker_error) std::rethrow_exception(worker_error);
  };

  if (spec_.pipeline == PipelineMode::kBarrier || jobs == 1) {
    run_barrier();
  } else {
    run_window();
  }

  // Mirror this run's tier deltas into the registry (the simulator
  // accumulates TierStats internally; the registry is the export
  // surface), then materialize PipelineStats as the registry delta over
  // this run's baseline. Workers have quiesced by here (threads joined,
  // parallel_for returned), so plain reads are race-free.
  for (std::size_t w = 0; w < jobs; ++w) {
    const sim::TierStats& ts = workers_[w]->tier_stats();
    o.fast_cycles.add(w, ts.fast_cycles - tier_baseline[w].fast_cycles);
    o.handoffs.add(w, ts.handoffs - tier_baseline[w].handoffs);
    o.fallbacks.add(w, ts.fallbacks - tier_baseline[w].fallbacks);
  }
  pipeline_stats_ = pipeline_stats_view(obs_base, reg.snapshot(), jobs);

  const auto flush_trace = [&] {
    if (tracer_ != nullptr) {
      std::ofstream out(spec_.trace_out,
                        std::ios::trunc | std::ios::binary);
      tracer_->write_chrome_trace(out);
    }
  };

  pause_requested_.store(false, std::memory_order_relaxed);
  pause_at_.store(0, std::memory_order_relaxed);

  // A pause that landed exactly on the campaign's last merge is a
  // completion: nothing is in flight and the budget is fully issued.
  if (paused && inflight.empty() && scheduler.exhausted()) paused = false;

  if (paused) {
    // Paused mid-campaign: capture the frontier, hand it to every sink
    // (the durable-state write), stash it so the next run() continues,
    // and return the partial result. The deferred waveform drain and
    // triage wait for the completing segment — pending_vcd rides in the
    // frontier — so the eventual file set and triage report are exactly
    // the uninterrupted run's.
    CampaignFrontier frontier = capture_frontier(false);
    for (auto& [sink, interval] : frontier_sinks_) sink(frontier);
    CampaignResult result = merger.take_result();
    result.seconds = elapsed();
    resume_ = std::make_unique<CampaignFrontier>(std::move(frontier));
    paused_ = true;
    triage_report_.reset();
    // The trace of the truncated segment is still written (and
    // rewritten if finalize_interrupted() later drains waveforms) so an
    // interrupted campaign leaves an inspectable timeline behind.
    flush_trace();
    return result;
  }

  // Final partial window: merged but never announced (mirrors the old
  // engine's tail batch event).
  if (!stopped && merges_since_event > 0 &&
      !merger.result().history.empty()) {
    const BatchEvent event{batch_index++, merges_since_event,
                           merger.result().history.back().iteration,
                           elapsed()};
    for (const auto& fn : batch_observers_) fn(event);
  }

  // The completed frontier still goes to every sink: a durable state
  // file whose `completed` flag is set is how a restarted daemon (or a
  // --resume of a finished campaign) knows to report the stored result
  // instead of re-running.
  if (!frontier_sinks_.empty()) {
    const CampaignFrontier frontier = capture_frontier(true);
    for (auto& [sink, interval] : frontier_sinks_) sink(frontier);
  }

  // Deferred waveform export, off the merge strand. One waveform per
  // confirmed (post-dedup) finding. The worker's trace is gone by merge
  // time, so the program is re-simulated once on the session simulator —
  // same config, same seed-free cold core, hence the identical trace —
  // and only the vulnerability window is written. Merge order pinned the
  // pending list, so the file set is deterministic across jobs and
  // executors. The scenario name prefixes the file so concurrent Sweep
  // scenarios can share one vcd_out directory without colliding.
  if (!pending_vcd.empty()) {
    const auto v0 = now();
    for (const PendingWaveform& pending : pending_vcd) {
      const sim::RunResult rerun = sim_.run(pending.program);
      for (std::size_t v = pending.vuln_begin; v < pending.vuln_end; ++v) {
        const SpecWindow& w = merger.result().vulns[v].window;
        snapshot::write_vcd_window_file(
            spec_.vcd_out + "/" + sanitized_scenario_name(spec_.name) +
                "_vuln_iter" + std::to_string(pending.iteration) + "_" +
                std::to_string(v) + ".vcd",
            rerun.trace, w.start_cycle, w.end_cycle);
      }
    }
    const auto v1 = now();
    o.vcd.add(merge_lane_, to_ns(v1 - v0));
    if (tracing) {
      tracer_->record(merge_lane_, "vcd_drain", "pipeline", v0, v1);
    }
    // The stats view above was built before this drain ran; patch the
    // wall clock in directly so the --stats footer still accounts it.
    pipeline_stats_.vcd_seconds += secs(v1 - v0);
  }

  flush_trace();

  CampaignResult result = merger.take_result();
  result.seconds = elapsed();

  // Post-campaign triage: minimize every confirmed finding (and package
  // repro bundles under `full`). Runs strictly after the campaign loop on
  // the already-merged findings, so the CampaignResult above is identical
  // whether triage is on or off.
  triage_report_.reset();
  if (spec_.triage != TriageMode::kOff && !result.vulns.empty()) {
    std::vector<triage::TriageInput> inputs;
    inputs.reserve(result.vulns.size());
    for (const VulnReport& v : result.vulns) {
      inputs.push_back({dedup_key(v), v.program});
    }
    triage::TriageOptions options;
    options.mode = spec_.triage;
    options.out_dir = spec_.triage_out;
    // The campaign's batch-size clip on `jobs` does not apply here:
    // minimization rounds fan out dozens of candidates regardless of the
    // batch shape, so triage gets the spec's raw worker request (0 = all
    // hardware threads, resolved by the Minimizer).
    options.jobs = spec_.jobs;
    triage_report_ = std::make_unique<triage::TriageReport>(triage::run_triage(
        spec_, offline_, inputs, options,
        [this](const triage::MinimizedEvent& event) {
          for (const auto& fn : minimized_observers_) fn(event);
        }));
  }
  return result;
}

void Session::finalize_interrupted() {
  if (!paused_ || !resume_) return;
  const CampaignFrontier& f = *resume_;

  // Drain the frontier's deferred waveforms (same re-simulation scheme as
  // the completed path; the frontier pinned the pending list at the merge
  // boundary, so the file set matches what the resumed campaign will
  // eventually write for these findings). The drain is timed into the
  // same stage counter / span / --stats field the completed path uses —
  // an interrupted run's footer accounts its waveform cost too.
  if (!spec_.vcd_out.empty() && !f.pending_vcd.empty()) {
    const auto v0 = std::chrono::steady_clock::now();
    for (const PendingWaveform& pending : f.pending_vcd) {
      const sim::RunResult rerun = sim_.run(pending.program);
      for (std::size_t v = pending.vuln_begin; v < pending.vuln_end; ++v) {
        const SpecWindow& w = f.result.vulns[v].window;
        snapshot::write_vcd_window_file(
            spec_.vcd_out + "/" + sanitized_scenario_name(spec_.name) +
                "_vuln_iter" + std::to_string(pending.iteration) + "_" +
                std::to_string(v) + ".vcd",
            rerun.trace, w.start_cycle, w.end_cycle);
      }
    }
    const auto v1 = std::chrono::steady_clock::now();
    const auto drained =
        std::chrono::duration_cast<std::chrono::nanoseconds>(v1 - v0);
    if (metrics_ != nullptr) {
      metrics_->counter("stage/vcd_ns")
          .add(merge_lane_, static_cast<std::uint64_t>(drained.count()));
    }
    pipeline_stats_.vcd_seconds +=
        std::chrono::duration<double>(drained).count();
    if (tracer_ != nullptr && !spec_.trace_out.empty()) {
      tracer_->record(merge_lane_, "vcd_drain", "pipeline", v0, v1);
      std::ofstream out(spec_.trace_out,
                        std::ios::trunc | std::ios::binary);
      tracer_->write_chrome_trace(out);
    }
  }

  // Triage the findings confirmed so far.
  triage_report_.reset();
  if (spec_.triage != TriageMode::kOff && !f.result.vulns.empty()) {
    std::vector<triage::TriageInput> inputs;
    inputs.reserve(f.result.vulns.size());
    for (const VulnReport& v : f.result.vulns) {
      inputs.push_back({dedup_key(v), v.program});
    }
    triage::TriageOptions options;
    options.mode = spec_.triage;
    options.out_dir = spec_.triage_out;
    options.jobs = spec_.jobs;
    triage_report_ = std::make_unique<triage::TriageReport>(triage::run_triage(
        spec_, offline_, inputs, options,
        [this](const triage::MinimizedEvent& event) {
          for (const auto& fn : minimized_observers_) fn(event);
        }));
  }
}

}  // namespace specure::core
