#include "core/coverage_calc.hpp"

namespace specure::core {

LpCoverageMap::LpCoverageMap(const ift::Ifg& ifg, const ift::PdlcList& pdlc,
                             const snapshot::SignalDb& db, LpPolicy policy) {
  channel_signals_.reserve(pdlc.size());
  for (const auto& ch : pdlc.channels()) {
    std::vector<snapshot::SignalId> sigs;
    auto push = [&sigs, &ifg, &db](ift::NodeId n) {
      const snapshot::SignalId sid = db.find(ifg.node(n).name);
      if (sid != snapshot::kInvalidSignal) sigs.push_back(sid);
    };
    if (policy == LpPolicy::kEndpoints) {
      push(ch.source);
      push(ch.sink);
    } else {
      for (ift::NodeId n : ch.path) push(n);
    }
    channel_signals_.push_back(std::move(sigs));
  }
  covered_.assign(channel_signals_.size(), false);
}

namespace {
template <typename MaskSource>
std::size_t update_impl(const MaskSource& source,
                        const std::vector<SpecWindow>& windows,
                        const std::vector<std::vector<snapshot::SignalId>>&
                            channel_signals,
                        std::vector<bool>& covered,
                        std::size_t& covered_count) {
  std::size_t fresh = 0;
  for (const auto& w : windows) {
    // Per-window change mask; the paper counts PDLC signal toggles inside
    // the speculative window.
    const auto changed = source.changed_mask(w.start_cycle, w.end_cycle);
    for (std::size_t c = 0; c < channel_signals.size(); ++c) {
      if (covered[c] || channel_signals[c].empty()) continue;
      bool all = true;
      for (const auto sid : channel_signals[c]) {
        if (!changed[sid]) {
          all = false;
          break;
        }
      }
      if (all) {
        covered[c] = true;
        ++covered_count;
        ++fresh;
      }
    }
  }
  return fresh;
}
}  // namespace

std::size_t LpCoverageMap::update(const snapshot::Trace& trace,
                                  const std::vector<SpecWindow>& windows) {
  return update_impl(trace, windows, channel_signals_, covered_,
                     covered_count_);
}

std::size_t LpCoverageMap::update(const snapshot::DenseTrace& trace,
                                  const std::vector<SpecWindow>& windows) {
  return update_impl(trace, windows, channel_signals_, covered_,
                     covered_count_);
}

std::vector<std::size_t> LpCoverageMap::probe(
    const snapshot::Trace& trace,
    const std::vector<SpecWindow>& windows,
    const util::AtomicBitset* already_covered) const {
  std::vector<std::size_t> out;
  probe(trace, windows, already_covered, out);
  return out;
}

void LpCoverageMap::probe(const snapshot::Trace& trace,
                          const std::vector<SpecWindow>& windows,
                          const util::AtomicBitset* already_covered,
                          std::vector<std::size_t>& out) const {
  out.clear();
  std::vector<bool> hit(channel_signals_.size(), false);
  for (const auto& w : windows) {
    const auto changed = trace.changed_mask(w.start_cycle, w.end_cycle);
    for (std::size_t c = 0; c < channel_signals_.size(); ++c) {
      if (hit[c] || channel_signals_[c].empty()) continue;
      if (already_covered && already_covered->test(c)) continue;
      bool all = true;
      for (const auto sid : channel_signals_[c]) {
        if (!changed[sid]) {
          all = false;
          break;
        }
      }
      if (all) hit[c] = true;
    }
  }
  for (std::size_t c = 0; c < hit.size(); ++c) {
    if (hit[c]) out.push_back(c);
  }
}

std::size_t LpCoverageMap::commit(const std::vector<std::size_t>& channels) {
  std::size_t fresh = 0;
  for (const std::size_t c : channels) {
    if (!covered_[c]) {
      covered_[c] = true;
      ++covered_count_;
      ++fresh;
    }
  }
  return fresh;
}

}  // namespace specure::core
