#include "core/sweep.hpp"

#include <algorithm>
#include <mutex>
#include <ostream>
#include <thread>

#include "core/report.hpp"
#include "core/session.hpp"
#include "util/thread_pool.hpp"

namespace specure::core {

Sweep& Sweep::add(CampaignSpec spec) {
  specs_.push_back(std::move(spec));
  return *this;
}

Sweep& Sweep::on_scenario_done(Observer fn) {
  done_ = std::move(fn);
  return *this;
}

std::vector<SweepOutcome> Sweep::run(std::size_t concurrency) {
  const std::size_t n = specs_.size();
  std::vector<SweepOutcome> rows(n);
  if (n == 0) return rows;

  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::size_t conc = concurrency == 0 ? std::min(hw, n) : concurrency;
  conc = std::clamp<std::size_t>(conc, 1, n);
  // Divide the machine between scenario-level and simulation-level
  // parallelism: scenarios whose spec left jobs at 0 (= all hardware)
  // get an equal share instead. Results are unaffected — jobs is
  // wall-clock-only under the batch-determinism contract.
  const std::size_t jobs_share = std::max<std::size_t>(1, hw / conc);

  util::ThreadPool pool(conc);
  std::mutex done_mu;
  pool.parallel_for(n, [&](std::size_t index, std::size_t) {
    SweepOutcome& row = rows[index];
    row.spec = specs_[index];
    try {
      CampaignSpec scaled = specs_[index];
      if (scaled.jobs == 0) scaled.jobs = jobs_share;
      Session session(scaled);
      row.result = session.run();
    } catch (const std::exception& e) {
      row.error = e.what();
    }
    if (done_) {
      const std::lock_guard<std::mutex> lock(done_mu);
      done_(index, row);
    }
  });
  return rows;
}

namespace {

double iters_per_second(const CampaignResult& r) {
  return r.seconds > 0 ? static_cast<double>(r.history.size()) / r.seconds
                       : 0.0;
}

}  // namespace

void Sweep::write_table(std::ostream& os,
                        const std::vector<SweepOutcome>& rows) {
  char line[256];
  std::snprintf(line, sizeof line,
                "%-16s %-10s %-14s %-10s %-10s %-11s %-9s\n", "scenario",
                "iters", "lp-cov", "code-cov", "sigs", "iters/sec",
                "seconds");
  os << line;
  for (const SweepOutcome& row : rows) {
    if (!row.ok()) {
      std::snprintf(line, sizeof line, "%-16s FAILED: %s\n",
                    row.spec.name.c_str(), row.error.c_str());
      os << line;
      continue;
    }
    const CampaignResult& r = row.result;
    const std::size_t lp =
        r.history.empty() ? 0 : r.history.back().covered_pdlc;
    const std::size_t points =
        r.history.empty() ? 0 : r.history.back().coverage_points;
    const std::string lp_cov =
        std::to_string(lp) + "/" + std::to_string(r.pdlc_total);
    // Unique leakage signatures, with the coarse kind+sink bucket count
    // in parentheses — rows are comparable by *distinct mechanisms*.
    const std::string sigs = std::to_string(r.vulns.size()) + "(" +
                             std::to_string(coarse_bucket_count(r)) + ")";
    std::snprintf(line, sizeof line,
                  "%-16s %-10zu %-14s %-10zu %-10s %-11.1f %-9.3f\n",
                  row.spec.name.c_str(), r.history.size(), lp_cov.c_str(),
                  points, sigs.c_str(), iters_per_second(r), r.seconds);
    os << line;
  }
}

void Sweep::write_json(std::ostream& os,
                       const std::vector<SweepOutcome>& rows) {
  os << "{\n  \"scenarios\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepOutcome& row = rows[i];
    os << (i == 0 ? "" : ",") << "\n    {\"scenario\": \""
       << json_escape(row.spec.name) << "\"";
    if (!row.ok()) {
      os << ", \"error\": \"" << json_escape(row.error) << "\"}";
      continue;
    }
    const CampaignResult& r = row.result;
    const std::size_t lp =
        r.history.empty() ? 0 : r.history.back().covered_pdlc;
    const std::size_t points =
        r.history.empty() ? 0 : r.history.back().coverage_points;
    os << ", \"iterations\": " << r.history.size()
       << ", \"covered_pdlc\": " << lp << ", \"pdlc_total\": " << r.pdlc_total
       << ", \"coverage_points\": " << points
       // vulns counts unique leakage signatures (the dedup axis);
       // coarse_keys counts the kind+sink buckets they group into.
       << ", \"vulns\": " << r.vulns.size()
       << ", \"coarse_keys\": " << coarse_bucket_count(r)
       << ", \"iters_per_sec\": " << iters_per_second(r)
       << ", \"seconds\": " << r.seconds << ", \"spec\": "
       << spec_json(row.spec) << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace specure::core
