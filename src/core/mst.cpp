#include "core/mst.hpp"

#include <algorithm>
#include <cctype>

#include "riscv/disasm.hpp"
#include "util/strings.hpp"

namespace specure::core {

bool SpecWindow::has_indirect_opener() const {
  return std::any_of(opener_insts.begin(), opener_insts.end(),
                     [](std::uint32_t w) {
                       return riscv::decode(w).op == riscv::Op::kJalr;
                     });
}

std::vector<SpecWindow> extract_mst(const snapshot::Trace& trace) {
  std::vector<SpecWindow> out;
  if (trace.empty()) return out;
  const auto& db = trace.db();
  const auto unsafe_id = db.id_of("core.rob.unsafe");
  const auto pc_id = db.id_of("core.rob.spec_pc");
  const auto inst_id = db.id_of("core.rob.spec_inst");
  const auto mispred_id = db.id_of("core.rob.brupdate_mispredict");

  bool open = false;
  SpecWindow cur;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& snap = trace[i];
    const bool unsafe = snap.values[unsafe_id] != 0;
    if (unsafe && !open) {
      open = true;
      cur = SpecWindow{};
      cur.start_cycle = snap.cycle;
      cur.pc = snap.values[pc_id];
      cur.inst = static_cast<std::uint32_t>(snap.values[inst_id]);
    }
    if (open && unsafe) {
      const auto opener = static_cast<std::uint32_t>(snap.values[inst_id]);
      if (std::find(cur.opener_insts.begin(), cur.opener_insts.end(),
                    opener) == cur.opener_insts.end()) {
        cur.opener_insts.push_back(opener);
      }
    }
    if (open && snap.values[mispred_id] != 0) cur.mispredicted = true;
    if (!unsafe && open) {
      open = false;
      cur.end_cycle = snap.cycle;
      out.push_back(cur);
    }
  }
  return out;
}

std::string format_mst_row(std::size_t id, const SpecWindow& w) {
  std::string hex = util::hex(w.inst, 8);
  for (char& c : hex) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return std::to_string(id) + "\t" + std::to_string(w.start_cycle) + "\t" +
         std::to_string(w.end_cycle) + "\t" + hex + "\t" +
         riscv::disassemble(w.inst, w.pc);
}

}  // namespace specure::core
