#include "core/mst.hpp"

#include <algorithm>
#include <cctype>

#include "riscv/disasm.hpp"
#include "util/strings.hpp"

namespace specure::core {

bool SpecWindow::has_indirect_opener() const {
  return std::any_of(opener_insts.begin(), opener_insts.end(),
                     [](std::uint32_t w) {
                       return riscv::decode(w).op == riscv::Op::kJalr;
                     });
}

std::vector<SpecWindow> extract_mst(const snapshot::Trace& trace) {
  std::vector<SpecWindow> out;
  extract_mst(trace, out);
  return out;
}

void extract_mst(const snapshot::Trace& trace,
                 std::vector<SpecWindow>& out) {
  out.clear();
  if (trace.empty()) return;
  const auto& db = trace.db();
  const std::vector<snapshot::SignalId> ids = {
      db.id_of("core.rob.unsafe"),
      db.id_of("core.rob.spec_pc"),
      db.id_of("core.rob.spec_inst"),
      db.id_of("core.rob.brupdate_mispredict"),
  };

  // One pass over the delta stream: the four window-indicator signals are
  // tracked through their change events, so the scan costs O(cycles +
  // changes) instead of materializing every snapshot.
  bool open = false;
  SpecWindow cur;
  trace.scan(ids, [&](std::uint64_t cycle,
                      const std::vector<std::uint64_t>& v) {
    const bool unsafe = v[0] != 0;
    if (unsafe && !open) {
      open = true;
      cur = SpecWindow{};
      cur.start_cycle = cycle;
      cur.pc = v[1];
      cur.inst = static_cast<std::uint32_t>(v[2]);
    }
    if (open && unsafe) {
      const auto opener = static_cast<std::uint32_t>(v[2]);
      if (std::find(cur.opener_insts.begin(), cur.opener_insts.end(),
                    opener) == cur.opener_insts.end()) {
        cur.opener_insts.push_back(opener);
      }
    }
    if (open && v[3] != 0) cur.mispredicted = true;
    if (!unsafe && open) {
      open = false;
      cur.end_cycle = cycle;
      out.push_back(cur);
    }
  });
}

std::string format_mst_row(std::size_t id, const SpecWindow& w) {
  std::string hex = util::hex(w.inst, 8);
  for (char& c : hex) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return std::to_string(id) + "\t" + std::to_string(w.start_cycle) + "\t" +
         std::to_string(w.end_cycle) + "\t" + hex + "\t" +
         riscv::disassemble(w.inst, w.pc);
}

}  // namespace specure::core
