// SpecureEngine: the Online Phase orchestrator (Figure 1), wiring the
// Hardware Fuzzer, the Microarchitecture Visualizer (simulation +
// snapshots), the Leakage Detector, the Vulnerability Detector and the
// Coverage Calculator into one campaign loop.
//
// The engine supports both feedback modes compared in the paper's Figure 2
// and §4.2: the novel Leakage Path coverage, and the traditional code
// coverage (toggle/branch/FSM/condition) a TheHuzz-style fuzzer uses.
//
// Parallel campaign architecture
// ------------------------------
// Each fuzzing iteration simulates one program on a cold core, which makes
// the Online Phase embarrassingly parallel. run() is a three-layer
// pipeline:
//
//   CampaignScheduler --> N x CampaignWorker --> ResultMerger
//
// The scheduler draws a batch of (iteration, program, derived_rng_seed)
// jobs from the fuzzer; the jobs are simulated and analyzed concurrently
// by `jobs` workers, each owning a private sim::Simulator; the merger then
// applies LP-coverage commits, code-coverage merges, vulnerability
// deduplication, MST sampling and corpus feedback strictly in iteration
// order.
//
// Determinism contract (batch-synchronous feedback): every program of
// batch k is generated from the corpus state after batch k-1 was fully
// merged, so corpus updates earned in batch k take effect in batch k+1.
// Consequently a campaign with a fixed rng_seed and batch_size produces a
// bit-identical CampaignResult regardless of `jobs` — thread count only
// changes wall-clock time. batch_size == 1 (the default) degenerates to
// the classic serial generate → simulate → feed-back loop and reproduces
// the pre-pipeline engine's results exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign_scheduler.hpp"
#include "core/campaign_worker.hpp"
#include "core/offline.hpp"
#include "core/result_merger.hpp"
#include "fuzz/corpus.hpp"
#include "sim/core.hpp"
#include "util/thread_pool.hpp"

namespace specure::core {

struct EngineOptions {
  sim::CoreConfig core;
  fuzz::FuzzerOptions fuzzer;
  FeedbackMode feedback = FeedbackMode::kLeakagePath;
  DetectorOptions detector;
  LpPolicy lp_policy = LpPolicy::kAllSignals;
  ift::PdlcOptions pdlc;
  std::uint64_t rng_seed = 1;
  std::size_t mst_sample_rows = 16;  ///< MST rows retained for reporting

  /// Simulation worker count; 0 means std::thread::hardware_concurrency.
  /// Never affects campaign results, only wall-clock time.
  std::size_t jobs = 1;
  /// Jobs scheduled (and simulated concurrently) per batch. Corpus
  /// feedback earned in batch k takes effect in batch k+1, so raising the
  /// batch size trades feedback latency for parallelism. 1 reproduces the
  /// classic per-iteration feedback loop exactly.
  std::size_t batch_size = 1;
};

class SpecureEngine {
 public:
  explicit SpecureEngine(const EngineOptions& options);

  /// Run `iterations` fuzzing rounds. If `stop` is set, the campaign ends
  /// early once it returns true (inspected after every merged iteration,
  /// including mid-batch).
  CampaignResult run(std::uint64_t iterations,
                     const std::function<bool(const CampaignResult&)>& stop =
                         nullptr);

  const OfflineResult& offline() const { return offline_; }
  const sim::Simulator& simulator() const { return sim_; }

  /// The worker count run() will actually use (resolves jobs == 0).
  std::size_t resolved_jobs() const;

 private:
  EngineOptions options_;
  OfflineResult offline_;
  sim::Simulator sim_;
  /// Worker pool, built lazily on the first run() and reused by later
  /// campaigns (simulator construction is not free).
  std::vector<std::unique_ptr<CampaignWorker>> workers_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace specure::core
