// SpecureEngine: the deprecated flat-options facade over the Online Phase
// pipeline, kept as a thin shim for one release. New code should use the
// declarative API instead:
//
//   core::CampaignSpec  — serializable scenario description + presets
//                         (core/campaign_spec.hpp)
//   core::Session       — event/observer facade over the pipeline
//                         (core/session.hpp)
//   core::Sweep         — multi-scenario comparison driver
//                         (core/sweep.hpp)
//
// Parallel campaign architecture
// ------------------------------
// Each fuzzing iteration simulates one program on a cold core, which makes
// the Online Phase embarrassingly parallel. A campaign is a three-layer
// pipeline (implemented in Session::run):
//
//   CampaignScheduler --> N x CampaignWorker --> ResultMerger
//
// The scheduler streams (iteration, program, derived_rng_seed) jobs from
// the fuzzer into a sliding window of at most batch_size in-flight
// iterations; the jobs are simulated and analyzed concurrently by `jobs`
// workers, each owning a private sim::Simulator; the merger consumes
// completions strictly in iteration order, applying LP-coverage commits,
// code-coverage merges, vulnerability deduplication, MST sampling and
// corpus feedback — and refills the window after every merge, so no
// worker ever waits on a batch barrier.
//
// Determinism contract (sliding-window feedback): job k is generated
// from the merged campaign state through iteration k - batch_size (the
// window width), so corpus updates earned at iteration j take effect at
// iteration j + batch_size. That generation schedule is a pure function
// of (rng_seed, batch_size) — independent of `jobs`, of worker timing,
// and of which executor runs the window (the pipelined default or the
// `pipeline = barrier` reference) — so a campaign with a fixed rng_seed
// and batch_size produces a bit-identical CampaignResult regardless of
// thread count; only wall-clock time changes. batch_size == 1 degenerates
// to the classic serial generate → simulate → feed-back loop and
// reproduces the pre-pipeline engine's results exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/session.hpp"

namespace specure::core {

/// DEPRECATED: flat option struct predating CampaignSpec. Kept as a shim
/// for one release; use CampaignSpec (which adds presets, key=value
/// overrides, TOML load/save and budgets) for new code.
struct EngineOptions {
  sim::CoreConfig core;
  fuzz::FuzzerOptions fuzzer;
  FeedbackMode feedback = FeedbackMode::kLeakagePath;
  DetectorOptions detector;
  LpPolicy lp_policy = LpPolicy::kAllSignals;
  ift::PdlcOptions pdlc;
  std::uint64_t rng_seed = 1;
  std::size_t mst_sample_rows = 16;  ///< MST rows retained for reporting

  /// Simulation worker count; 0 (the default, matching the CLI) means
  /// std::thread::hardware_concurrency. Never affects campaign results,
  /// only wall-clock time.
  std::size_t jobs = 0;
  /// Jobs scheduled (and simulated concurrently) per batch. Corpus
  /// feedback earned in batch k takes effect in batch k+1, so raising the
  /// batch size trades feedback latency for parallelism. 1 reproduces the
  /// classic per-iteration feedback loop exactly.
  std::size_t batch_size = 1;

  /// The equivalent declarative spec (every field copied; the spec's
  /// budgets keep their defaults — SpecureEngine::run passes the
  /// iteration budget explicitly).
  CampaignSpec to_spec() const;
};

/// DEPRECATED: use core::Session. This shim forwards construction and
/// run() onto a Session so old call sites keep the exact same behaviour
/// (and determinism) through the new pipeline path.
class SpecureEngine {
 public:
  explicit SpecureEngine(const EngineOptions& options);

  /// Run `iterations` fuzzing rounds. If `stop` is set, the campaign ends
  /// early once it returns true (inspected after every merged iteration,
  /// including mid-batch).
  CampaignResult run(std::uint64_t iterations,
                     const std::function<bool(const CampaignResult&)>& stop =
                         nullptr);

  const OfflineResult& offline() const { return session_.offline(); }
  const sim::Simulator& simulator() const { return session_.simulator(); }

  /// The worker count run() will actually use (resolves jobs == 0).
  std::size_t resolved_jobs() const { return session_.resolved_jobs(); }

 private:
  Session session_;
  std::function<bool(const CampaignResult&)> user_stop_;
};

}  // namespace specure::core
