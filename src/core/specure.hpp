// SpecureEngine: the Online Phase orchestrator (Figure 1), wiring the
// Hardware Fuzzer, the Microarchitecture Visualizer (simulation +
// snapshots), the Leakage Detector, the Vulnerability Detector and the
// Coverage Calculator into one campaign loop.
//
// The engine supports both feedback modes compared in the paper's Figure 2
// and §4.2: the novel Leakage Path coverage, and the traditional code
// coverage (toggle/branch/FSM/condition) a TheHuzz-style fuzzer uses.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/coverage_calc.hpp"
#include "core/mst.hpp"
#include "core/offline.hpp"
#include "core/vuln_detect.hpp"
#include "fuzz/corpus.hpp"
#include "sim/core.hpp"

namespace specure::core {

enum class FeedbackMode : std::uint8_t {
  kLeakagePath,   ///< Specure's LP coverage (novel metric)
  kCodeCoverage,  ///< traditional coverage, the baseline in Fig. 2
};

struct EngineOptions {
  sim::CoreConfig core;
  fuzz::FuzzerOptions fuzzer;
  FeedbackMode feedback = FeedbackMode::kLeakagePath;
  DetectorOptions detector;
  LpPolicy lp_policy = LpPolicy::kAllSignals;
  ift::PdlcOptions pdlc;
  std::uint64_t rng_seed = 1;
  std::size_t mst_sample_rows = 16;  ///< MST rows retained for reporting
};

struct IterationRecord {
  std::uint64_t iteration = 0;
  std::size_t covered_pdlc = 0;     ///< cumulative LP coverage
  std::size_t coverage_points = 0;  ///< cumulative code-coverage points
  std::size_t vulns_found = 0;      ///< cumulative distinct findings
  std::uint64_t cycles = 0;         ///< simulated cycles this iteration
};

struct CampaignResult {
  std::vector<IterationRecord> history;
  std::vector<VulnReport> vulns;  ///< distinct findings (by kind+sink)
  /// First-detection iteration per finding key ("direct-leak:core.rf.x7").
  std::map<std::string, std::uint64_t> first_detection;
  std::vector<SpecWindow> mst_sample;
  std::size_t total_windows = 0;
  std::size_t mispredicted_windows = 0;
  std::size_t pdlc_total = 0;
  double seconds = 0;
};

/// Key used for deduplicating findings across iterations.
std::string finding_key(const VulnReport& report);

class SpecureEngine {
 public:
  explicit SpecureEngine(const EngineOptions& options);

  /// Run `iterations` fuzzing rounds. If `stop` is set, the campaign ends
  /// early once it returns true (inspected after every iteration).
  CampaignResult run(std::uint64_t iterations,
                     const std::function<bool(const CampaignResult&)>& stop =
                         nullptr);

  const OfflineResult& offline() const { return offline_; }
  const sim::Simulator& simulator() const { return sim_; }

 private:
  EngineOptions options_;
  OfflineResult offline_;
  sim::Simulator sim_;
};

}  // namespace specure::core
