// Campaign report rendering: human-readable text and machine-readable
// JSON for CI pipelines / triage tooling. Covers the vulnerability
// findings (with root causes and windows), the Misspeculation Table
// sample and the campaign statistics.
#pragma once

#include <iosfwd>
#include <string>

#include "core/specure.hpp"

namespace specure::core {

/// Human-readable campaign report (the paper's "root cause report").
void write_text_report(std::ostream& os, const CampaignResult& result);

/// JSON document with the full campaign result. Stable schema:
/// { "campaign": {...}, "findings": [...], "mst": [...], "history": [...] }
/// History is downsampled to at most `history_points` entries.
void write_json_report(std::ostream& os, const CampaignResult& result,
                       std::size_t history_points = 64);

/// Convenience: JSON to string.
std::string json_report(const CampaignResult& result,
                        std::size_t history_points = 64);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& text);

}  // namespace specure::core
