// Campaign report rendering: human-readable text and machine-readable
// JSON for CI pipelines / triage tooling. Covers the vulnerability
// findings (with root causes and windows), the Misspeculation Table
// sample, the campaign statistics, and — when a CampaignSpec is given —
// an echo of the resolved scenario so a report is self-describing and
// the exact campaign can be reproduced from it.
#pragma once

#include <iosfwd>
#include <string>

#include "core/campaign_spec.hpp"
#include "core/result_merger.hpp"

namespace specure::core {

/// Human-readable campaign report (the paper's "root cause report").
/// With a spec, the header carries a scenario section (name, feedback
/// mode, seed, execution shape, armed emulations).
void write_text_report(std::ostream& os, const CampaignResult& result,
                       const CampaignSpec* spec = nullptr);

/// JSON document with the full campaign result. Stable schema:
/// { "campaign": {...}, "spec": {...}?, "findings": [...], "mst": [...],
///   "history": [...] }
/// The "spec" object (present when `spec` is given) holds every resolved
/// CampaignSpec field keyed by its flat override key, so the report
/// round-trips back into a CampaignSpec. History is downsampled to at
/// most `history_points` entries.
void write_json_report(std::ostream& os, const CampaignResult& result,
                       std::size_t history_points = 64,
                       const CampaignSpec* spec = nullptr);

/// Convenience: JSON to string.
std::string json_report(const CampaignResult& result,
                        std::size_t history_points = 64,
                        const CampaignSpec* spec = nullptr);

/// The resolved spec as a flat JSON object ({"name": "...", "rob_entries":
/// 16, ...}); the "spec" member of write_json_report and the per-scenario
/// echo in Sweep::write_json.
std::string spec_json(const CampaignSpec& spec);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& text);

/// The slice of a JSON report the triage pipeline consumes: the resolved
/// spec plus each finding's signature and triggering program. Written by
/// write_json_report; parsed back by parse_json_report for
/// `specure triage REPORT.json`.
struct ParsedReportFinding {
  std::string signature;
  riscv::Program program;
};

struct ParsedReport {
  CampaignSpec spec;
  bool has_spec = false;  ///< the report carried a "spec" object
  std::vector<ParsedReportFinding> findings;
};

/// Parse a report produced by write_json_report (a strict-enough JSON
/// subset reader — objects, arrays, strings, numbers, bools). Throws
/// SpecError with context on malformed input or on reports from builds
/// that predate per-finding programs.
ParsedReport parse_json_report(std::istream& is);

}  // namespace specure::core
