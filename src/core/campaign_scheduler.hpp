// Campaign scheduler — the job-producing end of the Online Phase pipeline
// (scheduler → simulation workers → result merger).
//
// The scheduler owns the Hardware Fuzzer and draws batches of
// (iteration, program, derived_rng_seed) jobs from it. All programs of a
// batch are generated from the corpus state at the start of the batch;
// corpus feedback routed back through feedback() between batches is what
// gives the engine its batch-synchronous semantics (see specure.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "fuzz/corpus.hpp"

namespace specure::core {

class CampaignScheduler {
 public:
  /// `total_iterations` bounds the campaign: batches are clipped so the
  /// scheduler never issues more than that many jobs in total.
  CampaignScheduler(const fuzz::FuzzerOptions& options,
                    std::uint64_t rng_seed, std::uint64_t total_iterations);

  /// Draw the next batch (at most `batch_size` jobs, fewer near the end).
  /// Empty result means the campaign budget is exhausted.
  std::vector<fuzz::FuzzJob> next_batch(std::size_t batch_size);

  /// Draw one job (the sliding-window executor's per-merge refill).
  /// False means the campaign budget is exhausted. Drawing n jobs this
  /// way consumes exactly the stream of one next_batch(n) call.
  bool next_job(fuzz::FuzzJob& out);

  /// Corpus feedback from the merger: the program run as `iteration` was
  /// interesting (new coverage or a finding). Takes effect for every batch
  /// drawn after this call.
  void feedback(const riscv::Program& program, std::uint64_t iteration);

  /// Parent-affinity routing: the worker index that should simulate
  /// `job`. All children of one corpus parent land on the same worker —
  /// the one holding that parent's checkpoint set — so the per-worker
  /// checkpoint caches see every reuse opportunity. Deterministic in the
  /// job's content alone, so routing never affects campaign results,
  /// only which worker pays which cost.
  static std::size_t worker_for(const fuzz::FuzzJob& job,
                                std::size_t workers);

  std::uint64_t issued() const { return issued_; }
  /// True once the campaign's iteration budget is fully issued.
  bool exhausted() const { return issued_ >= total_iterations_; }
  const fuzz::Fuzzer& fuzzer() const { return fuzzer_; }

  /// Campaign checkpoint/restore: the fuzzer state is the whole
  /// deterministic scheduler state (issued_ mirrors the fuzzer's
  /// iteration cursor).
  fuzz::FuzzerState save_state() const { return fuzzer_.save_state(); }
  void restore(const fuzz::FuzzerState& state) {
    fuzzer_.restore_state(state);
    issued_ = state.iteration;
  }

 private:
  fuzz::Fuzzer fuzzer_;
  std::uint64_t total_iterations_;
  std::uint64_t issued_ = 0;
};

}  // namespace specure::core
