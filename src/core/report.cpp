#include "core/report.hpp"

#include <ostream>
#include <sstream>

#include "core/mst.hpp"
#include "riscv/disasm.hpp"

namespace specure::core {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_text_report(std::ostream& os, const CampaignResult& result,
                       const CampaignSpec* spec) {
  os << "Specure campaign report\n"
     << "=======================\n";
  if (spec != nullptr) {
    os << "scenario:              " << spec->name << "\n"
       << "feedback:              " << feedback_mode_name(spec->feedback)
       << " (" << lp_policy_name(spec->lp_policy) << ")\n"
       << "rng seed:              " << spec->rng_seed << "\n"
       << "execution:             jobs=" << spec->jobs
       << " batch=" << spec->batch_size << "\n"
       << "emulations:            mwait="
       << (spec->core.vuln.mwait_emulation ? "on" : "off") << " zenbleed="
       << (spec->core.vuln.zenbleed_emulation ? "on" : "off")
       << " cache-monitor="
       << (spec->detector.monitor_cache ? "on" : "off") << "\n";
  }
  os << "iterations:            " << result.history.size() << "\n"
     << "wall-clock seconds:    " << result.seconds << "\n"
     << "iterations/sec:        "
     << (result.seconds > 0
             ? static_cast<double>(result.history.size()) / result.seconds
             : 0.0)
     << "\n"
     << "speculative windows:   " << result.total_windows << " ("
     << result.mispredicted_windows << " misspeculated)\n"
     << "PDLC channels:         " << result.pdlc_total << "\n";
  if (!result.history.empty()) {
    os << "LP coverage:           " << result.history.back().covered_pdlc
       << "\n"
       << "code coverage points:  " << result.history.back().coverage_points
       << "\n";
  }
  os << "findings:              " << result.vulns.size() << "\n\n";

  for (std::size_t i = 0; i < result.vulns.size(); ++i) {
    const VulnReport& v = result.vulns[i];
    os << "[" << i + 1 << "] " << vuln_kind_name(v.kind) << " (" << v.cwe
       << ")\n"
       << "    sink:   " << v.sink_signal << " (0x" << std::hex << v.before
       << " -> 0x" << v.after << std::dec << ")\n"
       << "    window: cycles [" << v.window.start_cycle << ", "
       << v.window.end_cycle << "], opened by "
       << riscv::disassemble(v.window.inst, v.window.pc) << "\n";
    auto it = result.first_detection.find(finding_key(v));
    if (it != result.first_detection.end()) {
      os << "    first detected at iteration " << it->second << "\n";
    }
    for (const RootCause& rc : v.root_causes) {
      os << "    root cause: " << rc.source_signal;
      if (rc.path.size() > 1) {
        os << " (path:";
        for (const auto& hop : rc.path) os << " " << hop;
        os << ")";
      }
      os << "\n";
    }
  }

  if (!result.mst_sample.empty()) {
    os << "\nMisspeculation Table (sample)\n"
       << "ID\tStart\tEnd\tInstruction\tInstruction(Readable)\n";
    for (std::size_t i = 0; i < result.mst_sample.size(); ++i) {
      os << format_mst_row(i + 1, result.mst_sample[i]) << "\n";
    }
  }
}

std::string spec_json(const CampaignSpec& spec) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const SpecField& f : spec.fields()) {
    os << (first ? "" : ", ") << '"' << json_escape(f.key) << "\": ";
    if (f.quoted) {
      os << '"' << json_escape(f.value) << '"';
    } else {
      os << f.value;
    }
    first = false;
  }
  os << "}";
  return os.str();
}

void write_json_report(std::ostream& os, const CampaignResult& result,
                       std::size_t history_points, const CampaignSpec* spec) {
  os << "{\n  \"campaign\": {"
     << "\"iterations\": " << result.history.size()
     << ", \"seconds\": " << result.seconds
     << ", \"windows\": " << result.total_windows
     << ", \"mispredicted_windows\": " << result.mispredicted_windows
     << ", \"pdlc_total\": " << result.pdlc_total;
  if (!result.history.empty()) {
    os << ", \"covered_pdlc\": " << result.history.back().covered_pdlc
       << ", \"coverage_points\": " << result.history.back().coverage_points;
  }
  os << "},\n";
  if (spec != nullptr) {
    os << "  \"spec\": " << spec_json(*spec) << ",\n";
  }
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < result.vulns.size(); ++i) {
    const VulnReport& v = result.vulns[i];
    os << (i == 0 ? "" : ",") << "\n    {\"kind\": \""
       << vuln_kind_name(v.kind) << "\", \"key\": \""
       << json_escape(finding_key(v)) << "\", \"cwe\": \""
       << json_escape(v.cwe) << "\", \"sink\": \""
       << json_escape(v.sink_signal) << "\", \"before\": " << v.before
       << ", \"after\": " << v.after
       << ", \"window\": {\"start\": " << v.window.start_cycle
       << ", \"end\": " << v.window.end_cycle
       << ", \"opener\": \""
       << json_escape(riscv::disassemble(v.window.inst, v.window.pc))
       << "\"}, \"root_causes\": [";
    for (std::size_t r = 0; r < v.root_causes.size(); ++r) {
      os << (r == 0 ? "" : ", ") << "\""
         << json_escape(v.root_causes[r].source_signal) << "\"";
    }
    os << "]}";
  }
  os << "\n  ],\n  \"mst\": [";
  for (std::size_t i = 0; i < result.mst_sample.size(); ++i) {
    const SpecWindow& w = result.mst_sample[i];
    os << (i == 0 ? "" : ",") << "\n    {\"start\": " << w.start_cycle
       << ", \"end\": " << w.end_cycle << ", \"inst\": " << w.inst
       << ", \"readable\": \""
       << json_escape(riscv::disassemble(w.inst, w.pc)) << "\"}";
  }
  os << "\n  ],\n  \"history\": [";
  const std::size_t stride =
      result.history.empty()
          ? 1
          : std::max<std::size_t>(1, result.history.size() / history_points);
  bool first = true;
  for (std::size_t i = stride - 1; i < result.history.size(); i += stride) {
    const IterationRecord& rec = result.history[i];
    os << (first ? "" : ",") << "\n    {\"iteration\": " << rec.iteration
       << ", \"covered_pdlc\": " << rec.covered_pdlc
       << ", \"coverage_points\": " << rec.coverage_points
       << ", \"vulns\": " << rec.vulns_found << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

std::string json_report(const CampaignResult& result,
                        std::size_t history_points,
                        const CampaignSpec* spec) {
  std::ostringstream os;
  write_json_report(os, result, history_points, spec);
  return os.str();
}

}  // namespace specure::core
