#include "core/report.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/mst.hpp"
#include "riscv/disasm.hpp"

namespace specure::core {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_text_report(std::ostream& os, const CampaignResult& result,
                       const CampaignSpec* spec) {
  os << "Specure campaign report\n"
     << "=======================\n";
  if (spec != nullptr) {
    os << "scenario:              " << spec->name << "\n"
       << "feedback:              " << feedback_mode_name(spec->feedback)
       << " (" << lp_policy_name(spec->lp_policy) << ")\n"
       << "rng seed:              " << spec->rng_seed << "\n"
       << "execution:             jobs=" << spec->jobs
       << " batch=" << spec->batch_size << "\n"
       << "emulations:            mwait="
       << (spec->core.vuln.mwait_emulation ? "on" : "off") << " zenbleed="
       << (spec->core.vuln.zenbleed_emulation ? "on" : "off")
       << " cache-monitor="
       << (spec->detector.monitor_cache ? "on" : "off") << "\n";
  }
  os << "iterations:            " << result.history.size() << "\n"
     << "wall-clock seconds:    " << result.seconds << "\n"
     << "iterations/sec:        "
     << (result.seconds > 0
             ? static_cast<double>(result.history.size()) / result.seconds
             : 0.0)
     << "\n"
     << "speculative windows:   " << result.total_windows << " ("
     << result.mispredicted_windows << " misspeculated)\n"
     << "PDLC channels:         " << result.pdlc_total << "\n";
  if (!result.history.empty()) {
    os << "LP coverage:           " << result.history.back().covered_pdlc
       << "\n"
       << "code coverage points:  " << result.history.back().coverage_points
       << "\n";
  }
  os << "findings:              " << result.vulns.size() << " ("
     << coarse_bucket_count(result) << " coarse buckets)\n\n";

  for (std::size_t i = 0; i < result.vulns.size(); ++i) {
    const VulnReport& v = result.vulns[i];
    os << "[" << i + 1 << "] " << vuln_kind_name(v.kind) << " (" << v.cwe
       << ")\n"
       << "    sink:   " << v.sink_signal << " (0x" << std::hex << v.before
       << " -> 0x" << v.after << std::dec << ")\n"
       << "    window: cycles [" << v.window.start_cycle << ", "
       << v.window.end_cycle << "], opened by "
       << riscv::disassemble(v.window.inst, v.window.pc) << "\n";
    if (!v.signature.empty()) {
      os << "    signature: " << v.signature << "\n";
    }
    auto it = result.first_detection.find(dedup_key(v));
    if (it != result.first_detection.end()) {
      os << "    first detected at iteration " << it->second << "\n";
    }
    for (const RootCause& rc : v.root_causes) {
      os << "    root cause: " << rc.source_signal;
      if (rc.path.size() > 1) {
        os << " (path:";
        for (const auto& hop : rc.path) os << " " << hop;
        os << ")";
      }
      os << "\n";
    }
  }

  if (!result.mst_sample.empty()) {
    os << "\nMisspeculation Table (sample)\n"
       << "ID\tStart\tEnd\tInstruction\tInstruction(Readable)\n";
    for (std::size_t i = 0; i < result.mst_sample.size(); ++i) {
      os << format_mst_row(i + 1, result.mst_sample[i]) << "\n";
    }
  }
}

std::string spec_json(const CampaignSpec& spec) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const SpecField& f : spec.fields()) {
    os << (first ? "" : ", ") << '"' << json_escape(f.key) << "\": ";
    if (f.quoted) {
      os << '"' << json_escape(f.value) << '"';
    } else {
      os << f.value;
    }
    first = false;
  }
  os << "}";
  return os.str();
}

void write_json_report(std::ostream& os, const CampaignResult& result,
                       std::size_t history_points, const CampaignSpec* spec) {
  os << "{\n  \"campaign\": {"
     << "\"iterations\": " << result.history.size()
     << ", \"seconds\": " << result.seconds
     << ", \"windows\": " << result.total_windows
     << ", \"mispredicted_windows\": " << result.mispredicted_windows
     << ", \"pdlc_total\": " << result.pdlc_total;
  if (!result.history.empty()) {
    os << ", \"covered_pdlc\": " << result.history.back().covered_pdlc
       << ", \"coverage_points\": " << result.history.back().coverage_points;
  }
  os << "},\n";
  if (spec != nullptr) {
    os << "  \"spec\": " << spec_json(*spec) << ",\n";
  }
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < result.vulns.size(); ++i) {
    const VulnReport& v = result.vulns[i];
    os << (i == 0 ? "" : ",") << "\n    {\"kind\": \""
       << vuln_kind_name(v.kind) << "\", \"key\": \""
       << json_escape(finding_key(v)) << "\", \"signature\": \""
       << json_escape(v.signature) << "\", \"program\": \""
       << v.program.to_hex() << "\", \"cwe\": \""
       << json_escape(v.cwe) << "\", \"sink\": \""
       << json_escape(v.sink_signal) << "\", \"before\": " << v.before
       << ", \"after\": " << v.after
       << ", \"window\": {\"start\": " << v.window.start_cycle
       << ", \"end\": " << v.window.end_cycle
       << ", \"opener\": \""
       << json_escape(riscv::disassemble(v.window.inst, v.window.pc))
       << "\"}, \"root_causes\": [";
    for (std::size_t r = 0; r < v.root_causes.size(); ++r) {
      os << (r == 0 ? "" : ", ") << "\""
         << json_escape(v.root_causes[r].source_signal) << "\"";
    }
    os << "]}";
  }
  os << "\n  ],\n  \"mst\": [";
  for (std::size_t i = 0; i < result.mst_sample.size(); ++i) {
    const SpecWindow& w = result.mst_sample[i];
    os << (i == 0 ? "" : ",") << "\n    {\"start\": " << w.start_cycle
       << ", \"end\": " << w.end_cycle << ", \"inst\": " << w.inst
       << ", \"readable\": \""
       << json_escape(riscv::disassemble(w.inst, w.pc)) << "\"}";
  }
  os << "\n  ],\n  \"history\": [";
  const std::size_t stride =
      result.history.empty()
          ? 1
          : std::max<std::size_t>(1, result.history.size() / history_points);
  bool first = true;
  for (std::size_t i = stride - 1; i < result.history.size(); i += stride) {
    const IterationRecord& rec = result.history[i];
    os << (first ? "" : ",") << "\n    {\"iteration\": " << rec.iteration
       << ", \"covered_pdlc\": " << rec.covered_pdlc
       << ", \"coverage_points\": " << rec.coverage_points
       << ", \"vulns\": " << rec.vulns_found << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

std::string json_report(const CampaignResult& result,
                        std::size_t history_points,
                        const CampaignSpec* spec) {
  std::ostringstream os;
  write_json_report(os, result, history_points, spec);
  return os.str();
}

// ------------------------------------------------------------ JSON reader --
//
// A small recursive-descent parser for the subset write_json_report
// emits: objects, arrays, strings with the escapes json_escape produces,
// numbers, bools, null. Values are held in a flat variant-ish node; only
// the spec object and the findings array are extracted.

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  ///< string payload, or the raw number token
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::istream& is) : is_(is) {}

  JsonValue parse() {
    const JsonValue v = value();
    skip_ws();
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw SpecError("JSON report: " + why);
  }

  int peek() {
    skip_ws();
    return is_.peek();
  }

  void skip_ws() {
    while (std::isspace(is_.peek())) is_.get();
  }

  void expect(char c) {
    skip_ws();
    const int got = is_.get();
    if (got != c) {
      fail(std::string("expected '") + c + "', got " +
           (got == EOF ? std::string("end of input")
                       : "'" + std::string(1, static_cast<char>(got)) + "'"));
    }
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.text = string();
        return v;
      }
      case 't':
      case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    if (peek() == '}') {
      is_.get();
      return v;
    }
    for (;;) {
      std::string key = string();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      if (peek() == ',') {
        is_.get();
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    if (peek() == ']') {
      is_.get();
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      if (peek() == ',') {
        is_.get();
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      const int c = is_.get();
      if (c == EOF) fail("unterminated string");
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      const int esc = is_.get();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const int h = is_.get();
            if (!std::isxdigit(h)) fail("bad \\u escape");
            code = code * 16 +
                   static_cast<unsigned>(
                       std::isdigit(h) ? h - '0' : std::tolower(h) - 'a' + 10);
          }
          // Reports only escape control characters; anything else in the
          // BMP is passed through byte-wise (good enough for our writer).
          out.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    skip_ws();
    while (std::isdigit(is_.peek()) || is_.peek() == '-' ||
           is_.peek() == '+' || is_.peek() == '.' || is_.peek() == 'e' ||
           is_.peek() == 'E') {
      v.text.push_back(static_cast<char>(is_.get()));
    }
    if (v.text.empty()) fail("expected a value");
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    std::string word;
    while (std::isalpha(is_.peek())) word.push_back(static_cast<char>(is_.get()));
    if (word == "true") {
      v.boolean = true;
    } else if (word == "false") {
      v.boolean = false;
    } else {
      fail("bad literal '" + word + "'");
    }
    v.text = word;
    return v;
  }

  JsonValue null() {
    std::string word;
    while (std::isalpha(is_.peek())) word.push_back(static_cast<char>(is_.get()));
    if (word != "null") fail("bad literal '" + word + "'");
    return JsonValue{};
  }

  std::istream& is_;
};

/// Render a scalar node back to the text CampaignSpec::set accepts.
std::string scalar_text(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    default: return v.text;
  }
}

}  // namespace

ParsedReport parse_json_report(std::istream& is) {
  const JsonValue root = JsonParser(is).parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw SpecError("JSON report: top level is not an object");
  }
  ParsedReport out;
  if (const JsonValue* spec = root.find("spec")) {
    out.has_spec = true;
    for (const auto& [key, value] : spec->members) {
      try {
        out.spec.set(key, scalar_text(value));
      } catch (const SpecError& e) {
        throw SpecError(std::string("JSON report: spec.") + key + ": " +
                        e.what());
      }
    }
  }
  const JsonValue* findings = root.find("findings");
  if (findings == nullptr || findings->kind != JsonValue::Kind::kArray) {
    throw SpecError("JSON report: no findings array");
  }
  for (const JsonValue& f : findings->items) {
    const JsonValue* signature = f.find("signature");
    const JsonValue* program = f.find("program");
    if (signature == nullptr || program == nullptr ||
        program->text.empty()) {
      throw SpecError(
          "JSON report: finding lacks signature/program fields — "
          "regenerate the report with this build (`specure run --json`)");
    }
    ParsedReportFinding finding;
    finding.signature = signature->text;
    try {
      finding.program = riscv::Program::from_hex(program->text);
    } catch (const std::exception& e) {
      throw SpecError(std::string("JSON report: finding program: ") +
                      e.what());
    }
    out.findings.push_back(std::move(finding));
  }
  return out;
}

}  // namespace specure::core
