// Misspeculation Table (MST) extraction — §3.2 Leakage Detector, Step 1.
//
// Speculative windows are recovered purely from the PUT's snapshot trace
// by watching the ROB's window indicator signals (core.rob.unsafe,
// core.rob.spec_pc/spec_inst and the brupdate pulses), exactly as the
// paper does with BOOM's RoB in-queue "unsafe" and "brupdate" signals.
// Each maximal unsafe interval yields one MST row (paper Table 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/snapshot.hpp"

namespace specure::core {

struct SpecWindow {
  std::uint64_t start_cycle = 0;  ///< cycle the window opened (unsafe rose)
  std::uint64_t end_cycle = 0;    ///< first cycle after the window closed
  std::uint64_t pc = 0;           ///< PC of the window-opening instruction
  std::uint32_t inst = 0;         ///< raw instruction word
  bool mispredicted = false;      ///< a brupdate flagged a misprediction
  /// All distinct control instructions observed as the oldest-unresolved
  /// window opener while the window was live (overlapping speculation
  /// merges into one unsafe interval; rob.spec_inst walks through the
  /// openers as older branches resolve).
  std::vector<std::uint32_t> opener_insts;

  /// True if any opener is an indirect jump (Spectre v2-class window).
  bool has_indirect_opener() const;
};

/// Scan a trace and build the MST. Windows still open at end-of-trace are
/// dropped (they never resolved, so no before/after pair exists). The
/// out-param overload clears `out` first and reuses its capacity (the
/// campaign workers' per-slot buffer recycling).
std::vector<SpecWindow> extract_mst(const snapshot::Trace& trace);
void extract_mst(const snapshot::Trace& trace, std::vector<SpecWindow>& out);

/// Render an MST row like the paper's Table 1:
/// "1  34594  34625  FBEC52E3  BGE S8, T5, 0x800025B0".
std::string format_mst_row(std::size_t id, const SpecWindow& window);

}  // namespace specure::core
