// CampaignSpec — the declarative description of one fuzzing campaign.
//
// A spec bundles everything that determines a campaign's outcome (core
// preset + overrides, fuzzer options, feedback mode, detector set, RNG
// seed, batch shape) plus its budgets (iteration / vulnerability /
// wall-clock / coverage-plateau) into one serializable value, so a whole
// experiment is one file and the paper's evaluation matrix is a handful
// of named presets:
//
//   CampaignSpec spec = CampaignSpec::preset("zenbleed");
//   spec.set("rob_entries", "32");            // key=value overrides
//   spec.budget.iterations = 5000;
//   spec.save("zenbleed_rob32.toml");         // TOML subset, reloadable
//   CampaignResult result = Session(spec).run();
//
// Every field that can affect the campaign result is covered by the flat
// key table (CampaignSpec::keys), which backs four things at once: CLI
// key=value overrides, the TOML-subset load/save, the resolved-spec echo
// embedded in reports, and spec equality. A spec saved with save() reloads
// to a bit-identical campaign result at a fixed seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/result_merger.hpp"
#include "core/vuln_detect.hpp"
#include "fuzz/corpus.hpp"
#include "ift/pdlc.hpp"
#include "sim/config.hpp"

namespace specure::core {

/// Thrown for every spec-layer failure: unknown preset or key, value
/// parse error, failed validation, malformed TOML, I/O error. The message
/// is always actionable (names the key, the offending value, the
/// accepted form, and a "did you mean" hint where one exists).
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Campaign budgets: the composable stop conditions a Session enforces.
/// Every budget with value 0 is disabled (except iterations).
struct CampaignBudget {
  std::uint64_t iterations = 1000;  ///< hard iteration cap (always on)
  std::uint64_t max_vulns = 0;      ///< stop after N distinct findings
  double max_seconds = 0;           ///< wall-clock cap (non-deterministic)
  /// Stop once the feedback metric (LP coverage, or code-coverage points
  /// under codecov feedback) has not grown for this many iterations.
  std::uint64_t plateau = 0;
};

struct PresetInfo {
  std::string name;
  std::string description;
};

/// Post-campaign triage depth. kOn minimizes every confirmed finding and
/// fires on_finding_minimized events; kFull additionally writes one repro
/// bundle (repro.S / repro.toml / repro.vcd) per unique signature into
/// CampaignSpec::triage_out.
enum class TriageMode : std::uint8_t { kOff, kOn, kFull };

std::string_view triage_mode_name(TriageMode mode);

/// Campaign executor strategy. Both modes implement the same sliding-
/// window generation contract (job k is generated from the merged state
/// through iteration k - batch_size), so they produce bit-identical
/// CampaignResults at a fixed seed; they differ only in wall-clock
/// behaviour. kWindow overlaps generation, simulation and merging with
/// no global barrier; kBarrier executes one window at a time with a
/// convoy barrier between execute and merge — kept as the reference
/// executor the pipelined path is differentially pinned against.
enum class PipelineMode : std::uint8_t { kWindow, kBarrier };

std::string_view pipeline_mode_name(PipelineMode mode);

/// Execution tier policy. kFast runs each cold job's straight-line
/// prefix (up to the first instruction that can arm speculation for the
/// active detector) through the fast-functional tier and hands off to
/// the detailed core at the boundary; kDetailed runs everything on the
/// detailed core. Bit-identical CampaignResults either way (pinned by
/// the tiered differential suite) — only wall-clock behaviour differs.
enum class TierMode : std::uint8_t { kDetailed, kFast };

std::string_view tier_mode_name(TierMode mode);

struct SpecField {
  std::string key;      ///< flat override key, e.g. "rob_entries"
  std::string section;  ///< TOML section: "", "core", "fuzzer", ...
  std::string value;    ///< resolved value rendered as text
  bool quoted = false;  ///< string-typed (quoted in TOML / JSON)
};

struct CampaignSpec {
  std::string name = "default";   ///< scenario label used in reports
  sim::CoreConfig core;
  fuzz::FuzzerOptions fuzzer;
  FeedbackMode feedback = FeedbackMode::kLeakagePath;
  DetectorOptions detector;
  LpPolicy lp_policy = LpPolicy::kAllSignals;
  ift::PdlcOptions pdlc;
  std::uint64_t rng_seed = 1;
  std::size_t mst_sample_rows = 16;
  /// Simulation worker count; 0 = all hardware threads. Never affects
  /// campaign results, only wall-clock time.
  std::size_t jobs = 0;
  /// The sliding-window width W: job k is generated from the merged
  /// campaign state through iteration k - W, so at most W jobs are ever
  /// in flight (see core/specure.hpp). Raising W trades corpus-feedback
  /// latency for parallelism; 1 reproduces the classic serial
  /// generate -> simulate -> feed-back loop exactly.
  std::size_t batch_size = 32;
  /// Executor strategy: window (pipelined, default) | barrier (the
  /// batch-synchronous reference executor). Never affects campaign
  /// results — both implement the same generation contract — only
  /// wall-clock scaling.
  PipelineMode pipeline = PipelineMode::kWindow;
  /// Execution tier: fast (fast-functional prefix tier + detailed
  /// continuation, default) | detailed (everything on the detailed
  /// core). Never affects campaign results. Automatically degraded to
  /// detailed when record_dense_trace is set.
  TierMode tier = TierMode::kFast;
  /// Checkpointed incremental simulation: workers cache per-corpus-parent
  /// checkpoint sets and resume mutants from the deepest checkpoint
  /// preceding their first divergent instruction. Results are
  /// bit-identical to the cold path (pinned by the checkpoint
  /// differential suite); off forces every run cold. Automatically
  /// bypassed when record_dense_trace is set.
  bool checkpoint = true;
  /// Total checkpoint-cache budget in MiB, split evenly across workers
  /// (parent-affinity shards parents across workers, so per-worker
  /// shares see the parents they are responsible for). LRU beyond it.
  std::size_t checkpoint_cache_mb = 64;
  /// on_progress event cadence in merged iterations; 0 disables.
  std::uint64_t progress_interval = 500;
  /// When non-empty: directory that receives one VCD waveform per
  /// confirmed (deduplicated) vulnerability window, named
  /// <scenario>_vuln_iter<N>_<index>.vcd. Created if missing; Session
  /// probes writability before the campaign starts (SpecError if not).
  /// Deterministic across jobs. Empty = off.
  std::string vcd_out;
  /// Post-campaign finding triage: off | on (minimize + events) | full
  /// (minimize + repro bundles under triage_out). Never perturbs the
  /// CampaignResult — triage runs after the campaign loop finished.
  TriageMode triage = TriageMode::kOff;
  /// Directory that receives the repro bundles when triage = full.
  std::string triage_out = "specure-triage";
  /// When non-empty: path of the durable campaign state file (the resume
  /// frontier, serve/campaign_state format). Written atomically from the
  /// merge strand at `state_interval` cadence and always when the
  /// campaign ends or pauses, so a killed campaign resumes bit-identical
  /// via `specure run --resume FILE`. Empty = off. Wall-clock-only: never
  /// affects the CampaignResult.
  std::string state_out;
  /// Minimum seconds between cadence state writes (state_out). 0 writes
  /// only the final/pause state. Non-deterministic cadence by nature —
  /// but every written state resumes to the same result, so the interval
  /// is wall-clock-only.
  double state_interval = 0;
  /// Per-iteration metrics histograms (queue-wait / execute / merge /
  /// iteration-latency percentiles in `--stats`, bench JSON and the
  /// serve `metrics` verb). Stage counters are always maintained; this
  /// key only gates the per-iteration histogram records. Pure wall-clock
  /// telemetry — never affects the CampaignResult (pinned by the on/off
  /// differential in obs_test).
  bool metrics = true;
  /// When non-empty: write a Chrome trace-event JSON of the most recent
  /// run()'s pipeline spans (generate / queue-wait / execute with
  /// fast-tier, detailed and checkpoint-resume sub-spans / result-wait /
  /// merge / vcd-drain) to this path — loadable in Perfetto or
  /// chrome://tracing. Ring-buffered: long campaigns keep the most
  /// recent window of events at bounded memory. Empty = off.
  /// Wall-clock-only: never affects the CampaignResult.
  std::string trace_out;
  CampaignBudget budget;

  // ---- named scenario presets -------------------------------------------
  /// Registry of the paper's evaluation scenarios ("default", "lp",
  /// "codecov", "mwait", "zenbleed", "no-spec", "cache-monitor", "full").
  static const std::vector<PresetInfo>& presets();
  /// Look up a preset by name; throws SpecError with a "did you mean"
  /// hint for unknown names.
  static CampaignSpec preset(std::string_view name);

  // ---- key=value overrides ----------------------------------------------
  /// Set one field from its flat key ("rob_entries", "feedback", ...).
  /// Throws SpecError on unknown keys (with suggestion) or bad values.
  void set(const std::string& key, const std::string& value);
  /// Parse and apply one "key=value" assignment.
  void apply_override(const std::string& assignment);
  /// All known override keys, in declaration order.
  static std::vector<std::string> keys();

  // ---- serialization (TOML subset) --------------------------------------
  /// Every field as (key, section, rendered value). The single source for
  /// to_toml(), the JSON spec echo in reports, and operator==.
  std::vector<SpecField> fields() const;
  std::string to_toml() const;
  /// Parse a spec from the TOML subset written by to_toml(): [section]
  /// headers, key = value lines, "#" comments, quoted strings, integers,
  /// bools. A `preset = "name"` key (anywhere) seeds the spec before the
  /// remaining keys apply. Throws SpecError with a line number.
  static CampaignSpec from_toml(std::istream& in);
  static CampaignSpec from_toml_string(const std::string& text);
  void save(const std::string& path) const;
  static CampaignSpec load(const std::string& path);

  /// Check the spec is runnable; throws SpecError listing every problem.
  void validate() const;

  bool operator==(const CampaignSpec& other) const;
};

std::string_view feedback_mode_name(FeedbackMode mode);
std::string_view lp_policy_name(LpPolicy policy);

}  // namespace specure::core
