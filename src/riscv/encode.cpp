#include "riscv/encode.hpp"

#include "util/bits.hpp"

namespace specure::riscv {

using util::bits;

namespace {

struct EncInfo {
  std::uint32_t opcode;
  std::uint32_t f3;
  std::uint32_t f7;
};

// Table of (opcode, funct3, funct7) per Op; immediates are placed by format.
EncInfo info_of(Op op) {
  switch (op) {
    case Op::kAddi: return {0x13, 0, 0};
    case Op::kSlti: return {0x13, 2, 0};
    case Op::kSltiu: return {0x13, 3, 0};
    case Op::kXori: return {0x13, 4, 0};
    case Op::kOri: return {0x13, 6, 0};
    case Op::kAndi: return {0x13, 7, 0};
    case Op::kSlli: return {0x13, 1, 0x00};
    case Op::kSrli: return {0x13, 5, 0x00};
    case Op::kSrai: return {0x13, 5, 0x20};
    case Op::kAddiw: return {0x1b, 0, 0};
    case Op::kSlliw: return {0x1b, 1, 0x00};
    case Op::kSrliw: return {0x1b, 5, 0x00};
    case Op::kSraiw: return {0x1b, 5, 0x20};
    case Op::kAdd: return {0x33, 0, 0x00};
    case Op::kSub: return {0x33, 0, 0x20};
    case Op::kSll: return {0x33, 1, 0x00};
    case Op::kSlt: return {0x33, 2, 0x00};
    case Op::kSltu: return {0x33, 3, 0x00};
    case Op::kXor: return {0x33, 4, 0x00};
    case Op::kSrl: return {0x33, 5, 0x00};
    case Op::kSra: return {0x33, 5, 0x20};
    case Op::kOr: return {0x33, 6, 0x00};
    case Op::kAnd: return {0x33, 7, 0x00};
    case Op::kAddw: return {0x3b, 0, 0x00};
    case Op::kSubw: return {0x3b, 0, 0x20};
    case Op::kSllw: return {0x3b, 1, 0x00};
    case Op::kSrlw: return {0x3b, 5, 0x00};
    case Op::kSraw: return {0x3b, 5, 0x20};
    case Op::kMul: return {0x33, 0, 0x01};
    case Op::kMulh: return {0x33, 1, 0x01};
    case Op::kDiv: return {0x33, 4, 0x01};
    case Op::kDivu: return {0x33, 5, 0x01};
    case Op::kRem: return {0x33, 6, 0x01};
    case Op::kRemu: return {0x33, 7, 0x01};
    case Op::kLui: return {0x37, 0, 0};
    case Op::kAuipc: return {0x17, 0, 0};
    case Op::kJal: return {0x6f, 0, 0};
    case Op::kJalr: return {0x67, 0, 0};
    case Op::kBeq: return {0x63, 0, 0};
    case Op::kBne: return {0x63, 1, 0};
    case Op::kBlt: return {0x63, 4, 0};
    case Op::kBge: return {0x63, 5, 0};
    case Op::kBltu: return {0x63, 6, 0};
    case Op::kBgeu: return {0x63, 7, 0};
    case Op::kLb: return {0x03, 0, 0};
    case Op::kLh: return {0x03, 1, 0};
    case Op::kLw: return {0x03, 2, 0};
    case Op::kLd: return {0x03, 3, 0};
    case Op::kLbu: return {0x03, 4, 0};
    case Op::kLhu: return {0x03, 5, 0};
    case Op::kLwu: return {0x03, 6, 0};
    case Op::kSb: return {0x23, 0, 0};
    case Op::kSh: return {0x23, 1, 0};
    case Op::kSw: return {0x23, 2, 0};
    case Op::kSd: return {0x23, 3, 0};
    case Op::kCsrrw: return {0x73, 1, 0};
    case Op::kCsrrs: return {0x73, 2, 0};
    case Op::kCsrrc: return {0x73, 3, 0};
    case Op::kCsrrwi: return {0x73, 5, 0};
    case Op::kCsrrsi: return {0x73, 6, 0};
    case Op::kCsrrci: return {0x73, 7, 0};
    case Op::kFence: return {0x0f, 0, 0};
    case Op::kEcall: return {0x73, 0, 0};
    case Op::kEbreak: return {0x73, 0, 0};
    default: return {0, 0, 0};
  }
}

}  // namespace

std::uint32_t encode(Op op, std::uint8_t rd, std::uint8_t rs1,
                     std::uint8_t rs2, std::int64_t imm, std::uint16_t csr) {
  const EncInfo e = info_of(op);
  const std::uint64_t u = static_cast<std::uint64_t>(imm);
  const std::uint32_t rdf = (rd & 0x1f) << 7;
  const std::uint32_t rs1f = (rs1 & 0x1f) << 15;
  const std::uint32_t rs2f = (rs2 & 0x1f) << 20;
  const std::uint32_t f3f = e.f3 << 12;

  switch (format_of(op)) {
    case Format::kR:
      return (e.f7 << 25) | rs2f | rs1f | f3f | rdf | e.opcode;
    case Format::kI: {
      if (op == Op::kSlli || op == Op::kSrli || op == Op::kSrai) {
        const std::uint32_t shamt = static_cast<std::uint32_t>(u & 0x3f);
        return ((e.f7 >> 1) << 26) | (shamt << 20) | rs1f | f3f | rdf | e.opcode;
      }
      if (op == Op::kSlliw || op == Op::kSrliw || op == Op::kSraiw) {
        const std::uint32_t shamt = static_cast<std::uint32_t>(u & 0x1f);
        return (e.f7 << 25) | (shamt << 20) | rs1f | f3f | rdf | e.opcode;
      }
      return (static_cast<std::uint32_t>(u & 0xfff) << 20) | rs1f | f3f | rdf |
             e.opcode;
    }
    case Format::kS: {
      const std::uint32_t lo = static_cast<std::uint32_t>(bits(u, 0, 5));
      const std::uint32_t hi = static_cast<std::uint32_t>(bits(u, 5, 7));
      return (hi << 25) | rs2f | rs1f | f3f | (lo << 7) | e.opcode;
    }
    case Format::kB: {
      const std::uint32_t b12 = static_cast<std::uint32_t>(bits(u, 12, 1));
      const std::uint32_t b11 = static_cast<std::uint32_t>(bits(u, 11, 1));
      const std::uint32_t b10_5 = static_cast<std::uint32_t>(bits(u, 5, 6));
      const std::uint32_t b4_1 = static_cast<std::uint32_t>(bits(u, 1, 4));
      return (b12 << 31) | (b10_5 << 25) | rs2f | rs1f | f3f | (b4_1 << 8) |
             (b11 << 7) | e.opcode;
    }
    case Format::kU:
      return (static_cast<std::uint32_t>(bits(u, 12, 20)) << 12) | rdf |
             e.opcode;
    case Format::kJ: {
      const std::uint32_t b20 = static_cast<std::uint32_t>(bits(u, 20, 1));
      const std::uint32_t b10_1 = static_cast<std::uint32_t>(bits(u, 1, 10));
      const std::uint32_t b11 = static_cast<std::uint32_t>(bits(u, 11, 1));
      const std::uint32_t b19_12 = static_cast<std::uint32_t>(bits(u, 12, 8));
      return (b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) | rdf |
             e.opcode;
    }
    case Format::kCsr:
    case Format::kCsrImm:
      return (static_cast<std::uint32_t>(csr & 0xfff) << 20) | rs1f | f3f |
             rdf | e.opcode;
    case Format::kSys:
      if (op == Op::kEbreak) return 0x00100073;
      if (op == Op::kEcall) return 0x00000073;
      return e.opcode;  // FENCE with all-zero fields.
  }
  return 0;
}

std::uint32_t enc_r(Op op, std::uint8_t rd, std::uint8_t rs1,
                    std::uint8_t rs2) {
  return encode(op, rd, rs1, rs2, 0);
}
std::uint32_t enc_i(Op op, std::uint8_t rd, std::uint8_t rs1,
                    std::int64_t imm) {
  return encode(op, rd, rs1, 0, imm);
}
std::uint32_t enc_s(Op op, std::uint8_t rs1, std::uint8_t rs2,
                    std::int64_t imm) {
  return encode(op, 0, rs1, rs2, imm);
}
std::uint32_t enc_b(Op op, std::uint8_t rs1, std::uint8_t rs2,
                    std::int64_t off) {
  return encode(op, 0, rs1, rs2, off);
}
std::uint32_t enc_u(Op op, std::uint8_t rd, std::int64_t imm) {
  return encode(op, rd, 0, 0, imm);
}
std::uint32_t enc_j(std::uint8_t rd, std::int64_t off) {
  return encode(Op::kJal, rd, 0, 0, off);
}
std::uint32_t enc_csr(Op op, std::uint8_t rd, std::uint8_t rs1_or_zimm,
                      std::uint16_t csr) {
  return encode(op, rd, rs1_or_zimm, 0, 0, csr);
}
std::uint32_t enc_nop() { return enc_i(Op::kAddi, 0, 0, 0); }
std::uint32_t enc_ecall() { return 0x00000073; }

}  // namespace specure::riscv
