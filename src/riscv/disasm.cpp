#include "riscv/disasm.hpp"

#include <string>

#include "util/strings.hpp"

namespace specure::riscv {

namespace {

std::string reg(std::uint8_t idx) {
  return std::string(kAbiNames[idx & 0x1f]);
}

std::string target_hex(std::uint64_t pc, std::int64_t off) {
  const std::uint64_t target = pc + static_cast<std::uint64_t>(off);
  std::string s = util::hex(target);
  // Upper-case hex to match the paper's rendering (0x800025B0).
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return "0x" + s;
}

}  // namespace

std::string disassemble(const DecodedInst& d, std::uint64_t pc) {
  const std::string m(mnemonic(d.op));
  switch (format_of(d.op)) {
    case Format::kR:
      return m + " " + reg(d.rd) + ", " + reg(d.rs1) + ", " + reg(d.rs2);
    case Format::kI:
      if (is_load(d.op)) {
        return m + " " + reg(d.rd) + ", " + std::to_string(d.imm) + "(" +
               reg(d.rs1) + ")";
      }
      if (d.op == Op::kJalr) {
        return m + " " + reg(d.rd) + ", " + std::to_string(d.imm) + "(" +
               reg(d.rs1) + ")";
      }
      return m + " " + reg(d.rd) + ", " + reg(d.rs1) + ", " +
             std::to_string(d.imm);
    case Format::kS:
      return m + " " + reg(d.rs2) + ", " + std::to_string(d.imm) + "(" +
             reg(d.rs1) + ")";
    case Format::kB:
      return m + " " + reg(d.rs1) + ", " + reg(d.rs2) + ", " +
             target_hex(pc, d.imm);
    case Format::kU:
      return m + " " + reg(d.rd) + ", " +
             util::hex0x(static_cast<std::uint64_t>(d.imm) >> 12 & 0xfffff);
    case Format::kJ:
      return m + " " + reg(d.rd) + ", " + target_hex(pc, d.imm);
    case Format::kCsr:
      return m + " " + reg(d.rd) + ", " + std::string(csr::name(d.csr)) +
             ", " + reg(d.rs1);
    case Format::kCsrImm:
      return m + " " + reg(d.rd) + ", " + std::string(csr::name(d.csr)) +
             ", " + std::to_string(d.zimm);
    case Format::kSys:
      return m;
  }
  return m;
}

std::string disassemble(std::uint32_t word, std::uint64_t pc) {
  return disassemble(decode(word), pc);
}

}  // namespace specure::riscv
