#include "riscv/disasm.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "riscv/encode.hpp"
#include "util/strings.hpp"

namespace specure::riscv {

namespace {

std::string reg(std::uint8_t idx) {
  return std::string(kAbiNames[idx & 0x1f]);
}

std::string target_hex(std::uint64_t pc, std::int64_t off) {
  const std::uint64_t target = pc + static_cast<std::uint64_t>(off);
  std::string s = util::hex(target);
  // Upper-case hex to match the paper's rendering (0x800025B0).
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return "0x" + s;
}

/// CSR rendering: the implemented set by name, everything else (the
/// fuzzer draws from the whole machine-mode address space) as the raw
/// hex address — "csr_unknown" would not survive a reassembly round-trip.
std::string csr_text(std::uint16_t addr) {
  const std::string_view name = csr::name(addr);
  if (name == "csr_unknown") return util::hex0x(addr);
  return std::string(name);
}

}  // namespace

std::string disassemble(const DecodedInst& d, std::uint64_t pc) {
  const std::string m(mnemonic(d.op));
  switch (format_of(d.op)) {
    case Format::kR:
      return m + " " + reg(d.rd) + ", " + reg(d.rs1) + ", " + reg(d.rs2);
    case Format::kI:
      if (is_load(d.op)) {
        return m + " " + reg(d.rd) + ", " + std::to_string(d.imm) + "(" +
               reg(d.rs1) + ")";
      }
      if (d.op == Op::kJalr) {
        return m + " " + reg(d.rd) + ", " + std::to_string(d.imm) + "(" +
               reg(d.rs1) + ")";
      }
      return m + " " + reg(d.rd) + ", " + reg(d.rs1) + ", " +
             std::to_string(d.imm);
    case Format::kS:
      return m + " " + reg(d.rs2) + ", " + std::to_string(d.imm) + "(" +
             reg(d.rs1) + ")";
    case Format::kB:
      return m + " " + reg(d.rs1) + ", " + reg(d.rs2) + ", " +
             target_hex(pc, d.imm);
    case Format::kU:
      return m + " " + reg(d.rd) + ", " +
             util::hex0x(static_cast<std::uint64_t>(d.imm) >> 12 & 0xfffff);
    case Format::kJ:
      return m + " " + reg(d.rd) + ", " + target_hex(pc, d.imm);
    case Format::kCsr:
      return m + " " + reg(d.rd) + ", " + csr_text(d.csr) + ", " + reg(d.rs1);
    case Format::kCsrImm:
      return m + " " + reg(d.rd) + ", " + csr_text(d.csr) + ", " +
             std::to_string(d.zimm);
    case Format::kSys:
      return m;
  }
  return m;
}

std::string disassemble(std::uint32_t word, std::uint64_t pc) {
  return disassemble(decode(word), pc);
}

namespace {

[[noreturn]] void bad_asm(std::string_view text, const std::string& why) {
  throw std::runtime_error("cannot assemble '" + std::string(text) +
                           "': " + why);
}

/// Mnemonic -> Op over the whole ISA table.
Op op_of_mnemonic(std::string_view m) {
  for (unsigned o = 1; o < static_cast<unsigned>(Op::kCount); ++o) {
    if (mnemonic(static_cast<Op>(o)) == m) return static_cast<Op>(o);
  }
  return Op::kIllegal;
}

std::uint8_t reg_of(std::string_view text, std::string_view token) {
  for (std::uint8_t i = 0; i < 32; ++i) {
    if (kAbiNames[i] == token) return i;
  }
  bad_asm(text, "'" + std::string(token) + "' is not a register");
}

std::int64_t int_of(std::string_view text, std::string_view token) {
  std::string t(token);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(t.c_str(), &end, 0);  // base 0: 0x / dec
  if (errno != 0 || end != t.c_str() + t.size() || t.empty()) {
    bad_asm(text, "'" + t + "' is not a number");
  }
  return v;
}

std::uint64_t uhex_of(std::string_view text, std::string_view token) {
  std::string t(token);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(t.c_str(), &end, 16);
  if (errno != 0 || end != t.c_str() + t.size() || t.empty()) {
    bad_asm(text, "'" + t + "' is not a hex value");
  }
  return v;
}

std::uint16_t csr_of(std::string_view text, std::string_view token) {
  for (const std::uint16_t addr : csr::kImplemented) {
    if (csr::name(addr) == token) return addr;
  }
  if (util::starts_with(token, "0x")) {
    return static_cast<std::uint16_t>(uhex_of(text, token.substr(2)) & 0xfff);
  }
  bad_asm(text, "'" + std::string(token) + "' is not a CSR");
}

}  // namespace

std::uint32_t assemble(std::string_view text, std::uint64_t pc) {
  // Tokenize: the mnemonic, then operands split on ", " with the
  // load/store "imm(reg)" form broken into two tokens.
  std::vector<std::string> tok;
  std::string current;
  for (const char c : text) {
    if (c == ' ' || c == ',' || c == '(' || c == ')') {
      if (!current.empty()) tok.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tok.push_back(std::move(current));
  if (tok.empty()) bad_asm(text, "empty line");

  const Op op = op_of_mnemonic(tok[0]);
  if (op == Op::kIllegal) bad_asm(text, "unknown mnemonic '" + tok[0] + "'");
  const auto want = [&](std::size_t n) {
    if (tok.size() != n + 1) {
      bad_asm(text, "expected " + std::to_string(n) + " operands, got " +
                        std::to_string(tok.size() - 1));
    }
  };

  switch (format_of(op)) {
    case Format::kR:
      want(3);
      return enc_r(op, reg_of(text, tok[1]), reg_of(text, tok[2]),
                   reg_of(text, tok[3]));
    case Format::kI:
      want(3);
      if (is_load(op) || op == Op::kJalr) {  // "RD, imm(RS1)"
        return enc_i(op, reg_of(text, tok[1]), reg_of(text, tok[3]),
                     int_of(text, tok[2]));
      }
      return enc_i(op, reg_of(text, tok[1]), reg_of(text, tok[2]),
                   int_of(text, tok[3]));
    case Format::kS:
      want(3);  // "RS2, imm(RS1)"
      return enc_s(op, reg_of(text, tok[3]), reg_of(text, tok[1]),
                   int_of(text, tok[2]));
    case Format::kB: {
      want(3);  // target is an absolute address, relative to this pc
      const std::uint64_t target = uhex_of(
          text, util::starts_with(tok[3], "0x") ? tok[3].substr(2) : tok[3]);
      return enc_b(op, reg_of(text, tok[1]), reg_of(text, tok[2]),
                   static_cast<std::int64_t>(target - pc));
    }
    case Format::kU:
      want(2);  // imm20, shifted back into the U-type position
      return enc_u(op, reg_of(text, tok[1]),
                   static_cast<std::int64_t>(uhex_of(
                       text, util::starts_with(tok[2], "0x") ? tok[2].substr(2)
                                                             : tok[2]))
                       << 12);
    case Format::kJ: {
      want(2);
      const std::uint64_t target = uhex_of(
          text, util::starts_with(tok[2], "0x") ? tok[2].substr(2) : tok[2]);
      return enc_j(reg_of(text, tok[1]),
                   static_cast<std::int64_t>(target - pc));
    }
    case Format::kCsr:
      want(3);  // "RD, csr, RS1"
      return enc_csr(op, reg_of(text, tok[1]), reg_of(text, tok[3]),
                     csr_of(text, tok[2]));
    case Format::kCsrImm:
      want(3);  // "RD, csr, zimm"
      return enc_csr(op, reg_of(text, tok[1]),
                     static_cast<std::uint8_t>(int_of(text, tok[3]) & 0x1f),
                     csr_of(text, tok[2]));
    case Format::kSys:
      want(0);
      // ECALL/EBREAK/FENCE all encode from zeroed fields (EBREAK's
      // distinguishing bit comes from the op itself).
      return encode(op, 0, 0, 0, 0);
  }
  bad_asm(text, "unhandled format");
}

}  // namespace specure::riscv
