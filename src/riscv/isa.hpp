// RISC-V ISA definitions for the subset MiniBOOM implements:
// RV64I base integer ISA + Zicsr + MUL/DIV from M. This is the instruction
// vocabulary the fuzzer mutates over and the simulator executes.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace specure::riscv {

/// Mnemonic-level operation. kIllegal marks undecodable words; the
/// simulator treats them as no-ops that still occupy pipeline slots
/// (BOOM would raise an illegal-instruction trap; we model the trap as a
/// pipeline flush with no architectural write).
enum class Op : std::uint8_t {
  kIllegal,
  // RV64I register-immediate.
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAddiw, kSlliw, kSrliw, kSraiw,
  // RV64I register-register.
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kAddw, kSubw, kSllw, kSrlw, kSraw,
  // Upper-immediate / jumps.
  kLui, kAuipc, kJal, kJalr,
  // Conditional branches.
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  // Loads / stores.
  kLb, kLh, kLw, kLd, kLbu, kLhu, kLwu,
  kSb, kSh, kSw, kSd,
  // M subset.
  kMul, kMulh, kDiv, kDivu, kRem, kRemu,
  // Zicsr.
  kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
  // System / memory ordering (modeled as pipeline-serializing no-ops).
  kFence, kEcall, kEbreak,
  kCount,
};

/// Encoding format of an Op (drives encoder, mutators and generators).
enum class Format : std::uint8_t { kR, kI, kS, kB, kU, kJ, kCsr, kCsrImm, kSys };

/// ABI register names, upper-cased to match the paper's Table 1 rendering
/// (e.g. "BGE S8, T5, 0x800025B0").
constexpr std::array<std::string_view, 32> kAbiNames = {
    "ZERO", "RA", "SP", "GP", "TP", "T0", "T1", "T2",
    "S0",   "S1", "A0", "A1", "A2", "A3", "A4", "A5",
    "A6",   "A7", "S2", "S3", "S4", "S5", "S6", "S7",
    "S8",   "S9", "S10", "S11", "T3", "T4", "T5", "T6"};

/// CSR addresses. Standard machine-mode CSRs plus the four custom CSRs the
/// paper adds to BOOM to emulate the (M)WAIT and Zenbleed vulnerabilities
/// (placed in the custom read/write range 0x800-0x8ff).
namespace csr {
constexpr std::uint16_t kMstatus = 0x300;
constexpr std::uint16_t kMisa = 0x301;
constexpr std::uint16_t kMtvec = 0x305;
constexpr std::uint16_t kMscratch = 0x340;
constexpr std::uint16_t kMepc = 0x341;
constexpr std::uint16_t kMcause = 0x342;
constexpr std::uint16_t kMcycle = 0xb00;
constexpr std::uint16_t kMinstret = 0xb02;
// Paper §4.2: new CSRs for (M)WAIT emulation.
constexpr std::uint16_t kMwaitEn = 0x800;
constexpr std::uint16_t kMonitorAddr = 0x801;
constexpr std::uint16_t kMwaitTimer = 0x802;
// Paper §4.2: new CSR for Zenbleed emulation.
constexpr std::uint16_t kZenbleedEn = 0x803;

/// All CSRs MiniBOOM implements, in a fixed order used by the CSR file.
constexpr std::array<std::uint16_t, 12> kImplemented = {
    kMstatus, kMisa,    kMtvec,      kMscratch,   kMepc,       kMcause,
    kMcycle,  kMinstret, kMwaitEn,   kMonitorAddr, kMwaitTimer, kZenbleedEn};

/// CSR addresses the fuzzer's instruction generator draws from: the
/// implemented set plus the standard machine-mode address space from the
/// privileged spec (a fuzzer targets the ISA's CSR list, not the PUT's
/// implemented subset — most picks land on unimplemented CSRs, exactly as
/// on real hardware).
const std::vector<std::uint16_t>& fuzz_csr_pool();

std::string_view name(std::uint16_t addr);
}  // namespace csr

/// Classification helpers over Op.
constexpr bool is_branch(Op op) {
  return op >= Op::kBeq && op <= Op::kBgeu;
}
constexpr bool is_jump(Op op) { return op == Op::kJal || op == Op::kJalr; }
constexpr bool is_load(Op op) { return op >= Op::kLb && op <= Op::kLwu; }
constexpr bool is_store(Op op) { return op >= Op::kSb && op <= Op::kSd; }
constexpr bool is_csr(Op op) { return op >= Op::kCsrrw && op <= Op::kCsrrci; }
constexpr bool is_control_flow(Op op) { return is_branch(op) || is_jump(op); }

/// Format of each op.
Format format_of(Op op);

/// Mnemonic text ("ADD", "BGE", ...), upper-case.
std::string_view mnemonic(Op op);

/// Byte size of a load/store access (1/2/4/8).
unsigned access_size(Op op);

/// True for load ops that zero-extend (LBU/LHU/LWU).
constexpr bool load_unsigned(Op op) {
  return op == Op::kLbu || op == Op::kLhu || op == Op::kLwu;
}

}  // namespace specure::riscv
