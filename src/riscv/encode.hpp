// Instruction encoders. Used by the program builder, the special-seed
// generators and the instruction-aware mutators. Each encoder produces a
// word that decode() maps back to the same fields (round-trip tested).
#pragma once

#include <cstdint>

#include "riscv/isa.hpp"

namespace specure::riscv {

/// Generic encoder: builds the word for `op` from the given fields. Fields
/// not used by the op's format are ignored. imm is truncated to the
/// format's immediate width. For CSR ops pass the CSR address via `csr`;
/// CSRR*I take the 5-bit immediate via `rs1`.
std::uint32_t encode(Op op, std::uint8_t rd, std::uint8_t rs1,
                     std::uint8_t rs2, std::int64_t imm,
                     std::uint16_t csr = 0);

// Convenience wrappers for the common shapes.
std::uint32_t enc_r(Op op, std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
std::uint32_t enc_i(Op op, std::uint8_t rd, std::uint8_t rs1, std::int64_t imm);
std::uint32_t enc_s(Op op, std::uint8_t rs1, std::uint8_t rs2, std::int64_t imm);
std::uint32_t enc_b(Op op, std::uint8_t rs1, std::uint8_t rs2, std::int64_t off);
std::uint32_t enc_u(Op op, std::uint8_t rd, std::int64_t imm);
std::uint32_t enc_j(std::uint8_t rd, std::int64_t off);
std::uint32_t enc_csr(Op op, std::uint8_t rd, std::uint8_t rs1_or_zimm,
                      std::uint16_t csr);
std::uint32_t enc_nop();
std::uint32_t enc_ecall();

}  // namespace specure::riscv
