#include "riscv/program.hpp"

#include <stdexcept>

#include "util/bits.hpp"

namespace specure::riscv {

std::vector<std::uint8_t> Program::to_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(8 + code.size() * 4 + data.size());
  auto put_u32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put_u32(static_cast<std::uint32_t>(code.size()));
  for (std::uint32_t w : code) put_u32(w);
  put_u32(static_cast<std::uint32_t>(data.size()));
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::uint64_t Program::hash() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(code.size());
  for (const std::uint32_t w : code) mix(w);
  mix(data.size());
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

Program Program::from_bytes(const std::vector<std::uint8_t>& bytes) {
  Program p;
  std::size_t pos = 0;
  auto get_u32 = [&bytes, &pos]() -> std::uint32_t {
    std::uint32_t v = 0;
    for (int i = 0; i < 4 && pos < bytes.size(); ++i, ++pos) {
      v |= static_cast<std::uint32_t>(bytes[pos]) << (8 * i);
    }
    return v;
  };
  const std::uint32_t ninst = get_u32();
  for (std::uint32_t i = 0; i < ninst && pos + 4 <= bytes.size() + 4; ++i) {
    if (pos >= bytes.size()) break;
    p.code.push_back(get_u32());
  }
  const std::uint32_t ndata = get_u32();
  for (std::uint32_t i = 0; i < ndata && pos < bytes.size(); ++i, ++pos) {
    p.data.push_back(bytes[pos]);
  }
  return p;
}

std::string Program::to_hex() const {
  static const char* kDigits = "0123456789abcdef";
  const std::vector<std::uint8_t> bytes = to_bytes();
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Program Program::from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw std::runtime_error("program hex has odd length " +
                             std::to_string(hex.size()));
  }
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<std::uint8_t> bytes;
  bytes.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::runtime_error(std::string("program hex has non-hex "
                                           "character '") +
                               hex[hi < 0 ? i : i + 1] + "'");
    }
    bytes.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return from_bytes(bytes);
}

ProgramBuilder& ProgramBuilder::raw(std::uint32_t word) {
  code_.push_back(word);
  return *this;
}

ProgramBuilder& ProgramBuilder::addi(std::uint8_t rd, std::uint8_t rs1,
                                     std::int64_t imm) {
  return raw(enc_i(Op::kAddi, rd, rs1, imm));
}

ProgramBuilder& ProgramBuilder::li(std::uint8_t rd, std::int64_t value) {
  // Standard RV64 constant materialization: LUI+ADDI when the value is a
  // sign-extended 32-bit quantity; otherwise build the upper part
  // recursively and shift it into place (SLLI+ADDI chain).
  const std::int64_t lo = util::sext(static_cast<std::uint64_t>(value), 12);
  if (value == util::sext(static_cast<std::uint64_t>(value), 32)) {
    const std::int64_t hi = value - lo;
    if (hi != 0) {
      raw(enc_u(Op::kLui, rd, hi));
      if (lo != 0) raw(enc_i(Op::kAddi, rd, rd, lo));
    } else {
      raw(enc_i(Op::kAddi, rd, 0, lo));
    }
    return *this;
  }
  li(rd, (value - lo) >> 12);
  raw(enc_i(Op::kSlli, rd, rd, 12));
  if (lo != 0) raw(enc_i(Op::kAddi, rd, rd, lo));
  return *this;
}

ProgramBuilder& ProgramBuilder::add(std::uint8_t rd, std::uint8_t rs1,
                                    std::uint8_t rs2) {
  return raw(enc_r(Op::kAdd, rd, rs1, rs2));
}
ProgramBuilder& ProgramBuilder::sub(std::uint8_t rd, std::uint8_t rs1,
                                    std::uint8_t rs2) {
  return raw(enc_r(Op::kSub, rd, rs1, rs2));
}
ProgramBuilder& ProgramBuilder::xor_(std::uint8_t rd, std::uint8_t rs1,
                                     std::uint8_t rs2) {
  return raw(enc_r(Op::kXor, rd, rs1, rs2));
}
ProgramBuilder& ProgramBuilder::slli(std::uint8_t rd, std::uint8_t rs1,
                                     unsigned shamt) {
  return raw(enc_i(Op::kSlli, rd, rs1, shamt));
}
ProgramBuilder& ProgramBuilder::ld(std::uint8_t rd, std::uint8_t rs1,
                                   std::int64_t off) {
  return raw(enc_i(Op::kLd, rd, rs1, off));
}
ProgramBuilder& ProgramBuilder::lw(std::uint8_t rd, std::uint8_t rs1,
                                   std::int64_t off) {
  return raw(enc_i(Op::kLw, rd, rs1, off));
}
ProgramBuilder& ProgramBuilder::lb(std::uint8_t rd, std::uint8_t rs1,
                                   std::int64_t off) {
  return raw(enc_i(Op::kLb, rd, rs1, off));
}
ProgramBuilder& ProgramBuilder::sd(std::uint8_t rs2, std::uint8_t rs1,
                                   std::int64_t off) {
  return raw(enc_s(Op::kSd, rs1, rs2, off));
}
ProgramBuilder& ProgramBuilder::sw(std::uint8_t rs2, std::uint8_t rs1,
                                   std::int64_t off) {
  return raw(enc_s(Op::kSw, rs1, rs2, off));
}
ProgramBuilder& ProgramBuilder::jalr(std::uint8_t rd, std::uint8_t rs1,
                                     std::int64_t off) {
  return raw(enc_i(Op::kJalr, rd, rs1, off));
}
ProgramBuilder& ProgramBuilder::csrrw(std::uint8_t rd, std::uint16_t csr,
                                      std::uint8_t rs1) {
  return raw(enc_csr(Op::kCsrrw, rd, rs1, csr));
}
ProgramBuilder& ProgramBuilder::csrrs(std::uint8_t rd, std::uint16_t csr,
                                      std::uint8_t rs1) {
  return raw(enc_csr(Op::kCsrrs, rd, rs1, csr));
}
ProgramBuilder& ProgramBuilder::csrrwi(std::uint8_t rd, std::uint16_t csr,
                                       std::uint8_t zimm) {
  return raw(enc_csr(Op::kCsrrwi, rd, zimm, csr));
}
ProgramBuilder& ProgramBuilder::nop() { return raw(enc_nop()); }
ProgramBuilder& ProgramBuilder::ecall() { return raw(enc_ecall()); }

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  labels_[name] = code_.size();
  return *this;
}

ProgramBuilder& ProgramBuilder::branch(Op op, std::uint8_t rs1,
                                       std::uint8_t rs2,
                                       const std::string& target) {
  fixups_.push_back({code_.size(), op, 0, rs1, rs2, target});
  code_.push_back(0);
  return *this;
}

ProgramBuilder& ProgramBuilder::jal(std::uint8_t rd,
                                    const std::string& target) {
  fixups_.push_back({code_.size(), Op::kJal, rd, 0, 0, target});
  code_.push_back(0);
  return *this;
}

ProgramBuilder& ProgramBuilder::la(std::uint8_t rd,
                                   const std::string& target) {
  fixups_.push_back({code_.size(), Op::kAuipc, rd, 0, 0, target});
  code_.push_back(0);
  code_.push_back(0);
  return *this;
}

ProgramBuilder& ProgramBuilder::with_data(std::vector<std::uint8_t> data) {
  data_ = std::move(data);
  return *this;
}

ProgramBuilder& ProgramBuilder::data_u64(std::size_t offset,
                                         std::uint64_t value) {
  if (data_.size() < offset + 8) data_.resize(offset + 8, 0);
  for (int i = 0; i < 8; ++i) {
    data_[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
  return *this;
}

Program ProgramBuilder::build() {
  for (const Fixup& f : fixups_) {
    auto it = labels_.find(f.target);
    if (it == labels_.end()) {
      throw std::runtime_error("ProgramBuilder: undefined label '" + f.target +
                               "'");
    }
    const std::int64_t off =
        (static_cast<std::int64_t>(it->second) -
         static_cast<std::int64_t>(f.index)) *
        4;
    if (f.op == Op::kJal) {
      code_[f.index] = enc_j(f.rd, off);
    } else if (f.op == Op::kAuipc) {
      // la: AUIPC rd, 0 ; ADDI rd, rd, offset  (offset fits 12 bits for
      // the program sizes seeds use).
      code_[f.index] = enc_u(Op::kAuipc, f.rd, 0);
      code_[f.index + 1] = enc_i(Op::kAddi, f.rd, f.rd, off);
    } else {
      code_[f.index] = enc_b(f.op, f.rs1, f.rs2, off);
    }
  }
  Program p;
  p.code = code_;
  p.data = data_;
  return p;
}

namespace {

// Ops the random generator draws from, weighted towards the categories the
// paper's fuzzer needs (control flow + memory + CSR to reach speculative
// windows and leakage channels).
constexpr Op kAluOps[] = {Op::kAddi, Op::kSlti,  Op::kXori, Op::kOri,
                          Op::kAndi, Op::kSlli,  Op::kSrli, Op::kSrai,
                          Op::kAdd,  Op::kSub,   Op::kSll,  Op::kXor,
                          Op::kOr,   Op::kAnd,   Op::kSltu, Op::kAddw,
                          Op::kSubw, Op::kMul,   Op::kDiv,  Op::kLui};
constexpr Op kBranchOps[] = {Op::kBeq, Op::kBne,  Op::kBlt,
                             Op::kBge, Op::kBltu, Op::kBgeu};
constexpr Op kLoadOps[] = {Op::kLb, Op::kLh,  Op::kLw,  Op::kLd,
                           Op::kLbu, Op::kLhu, Op::kLwu};
constexpr Op kStoreOps[] = {Op::kSb, Op::kSh, Op::kSw, Op::kSd};
constexpr Op kCsrOps[] = {Op::kCsrrw, Op::kCsrrs,  Op::kCsrrc,
                          Op::kCsrrwi, Op::kCsrrsi, Op::kCsrrci};

template <std::size_t N>
Op pick_op(util::Rng& rng, const Op (&ops)[N]) {
  return ops[rng.below(N)];
}

}  // namespace

std::uint32_t random_instruction(util::Rng& rng, std::size_t inst_index,
                                 std::size_t program_len) {
  const std::uint8_t rd = static_cast<std::uint8_t>(rng.below(32));
  const std::uint8_t rs1 = static_cast<std::uint8_t>(rng.below(32));
  const std::uint8_t rs2 = static_cast<std::uint8_t>(rng.below(32));
  const std::uint64_t kind = rng.below(100);

  if (kind < 45) {  // ALU
    const Op op = pick_op(rng, kAluOps);
    const std::int64_t imm = util::sext(rng.next(), 12);
    if (op == Op::kSlli || op == Op::kSrli || op == Op::kSrai) {
      return enc_i(op, rd, rs1, static_cast<std::int64_t>(rng.below(64)));
    }
    return encode(op, rd, rs1, rs2, op == Op::kLui ? (imm << 12) : imm);
  }
  if (kind < 62) {  // branch, with a bounded forward/backward offset
    const Op op = pick_op(rng, kBranchOps);
    const std::int64_t span = 8;
    std::int64_t lo = -std::min<std::int64_t>(span, static_cast<std::int64_t>(inst_index));
    std::int64_t hi = std::min<std::int64_t>(
        span, static_cast<std::int64_t>(program_len - inst_index));
    if (hi < 1) hi = 1;
    if (lo > hi) lo = hi;
    const std::int64_t delta =
        lo + static_cast<std::int64_t>(
                 rng.below(static_cast<std::uint64_t>(hi - lo + 1)));
    return enc_b(op, rs1, rs2, (delta == 0 ? 1 : delta) * 4);
  }
  if (kind < 78) {  // load, data-region relative via x31-style base pattern
    const Op op = pick_op(rng, kLoadOps);
    const std::int64_t off =
        static_cast<std::int64_t>(rng.below(512)) * access_size(op);
    return enc_i(op, rd, rs1, off & 0x7ff);
  }
  if (kind < 88) {  // store
    const Op op = pick_op(rng, kStoreOps);
    const std::int64_t off =
        static_cast<std::int64_t>(rng.below(512)) * access_size(op);
    return enc_s(op, rs1, rs2, off & 0x7ff);
  }
  if (kind < 96) {  // CSR access, drawn from the ISA's CSR address list
    const Op op = pick_op(rng, kCsrOps);
    const auto& pool = csr::fuzz_csr_pool();
    const std::uint16_t addr = pool[rng.below(pool.size())];
    return enc_csr(op, rd, rs1, addr);
  }
  // Jumps.
  if (rng.chance(1, 2)) {
    const std::int64_t delta =
        1 + static_cast<std::int64_t>(rng.below(4));
    return enc_j(rd, delta * 4);
  }
  return enc_i(Op::kJalr, rd, rs1, static_cast<std::int64_t>(rng.below(256)) * 4);
}

Program random_program(util::Rng& rng, std::size_t len, std::size_t data_len) {
  Program p;
  p.code.reserve(len);
  // Prologue: point x10 (A0) at the data region so random loads/stores hit
  // mapped memory often enough to exercise the cache.
  ProgramBuilder prologue;
  prologue.li(10, static_cast<std::int64_t>(kDataBase));
  for (std::uint32_t w : prologue.build().code) p.code.push_back(w);
  for (std::size_t i = p.code.size(); i < len; ++i) {
    p.code.push_back(random_instruction(rng, i, len));
  }
  p.data.resize(data_len);
  for (auto& b : p.data) b = static_cast<std::uint8_t>(rng.below(256));
  return p;
}

}  // namespace specure::riscv
