// 32-bit RISC-V instruction word -> DecodedInst. The decoder accepts the
// RV64I + Zicsr + MUL/DIV subset from isa.hpp; anything else decodes to
// Op::kIllegal (with fields zeroed) so the fuzzer can feed arbitrary bytes.
#pragma once

#include <cstdint>

#include "riscv/isa.hpp"

namespace specure::riscv {

struct DecodedInst {
  Op op = Op::kIllegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int64_t imm = 0;       ///< Sign-extended immediate (format-dependent).
  std::uint16_t csr = 0;      ///< CSR address for Zicsr ops.
  std::uint8_t zimm = 0;      ///< 5-bit immediate for CSRR*I.
  std::uint32_t raw = 0;      ///< Original instruction word.

  bool valid() const { return op != Op::kIllegal; }
};

/// Decode one instruction word.
DecodedInst decode(std::uint32_t word);

}  // namespace specure::riscv
