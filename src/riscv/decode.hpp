// 32-bit RISC-V instruction word -> DecodedInst. The decoder accepts the
// RV64I + Zicsr + MUL/DIV subset from isa.hpp; anything else decodes to
// Op::kIllegal (with fields zeroed) so the fuzzer can feed arbitrary bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "riscv/isa.hpp"

namespace specure::riscv {

struct DecodedInst {
  Op op = Op::kIllegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int64_t imm = 0;       ///< Sign-extended immediate (format-dependent).
  std::uint16_t csr = 0;      ///< CSR address for Zicsr ops.
  std::uint8_t zimm = 0;      ///< 5-bit immediate for CSRR*I.
  std::uint32_t raw = 0;      ///< Original instruction word.

  bool valid() const { return op != Op::kIllegal; }
};

/// Decode one instruction word.
DecodedInst decode(std::uint32_t word);

/// A whole program decoded once, indexable by code-word index. One buffer
/// is shared per worker between the detailed simulator, the fast tier and
/// the ISS so a program is decoded at most once per run (build() keeps the
/// vector's capacity across programs).
struct DecodedProgram {
  std::vector<DecodedInst> insts;

  void build(const std::vector<std::uint32_t>& code) {
    insts.clear();
    insts.reserve(code.size());
    for (const std::uint32_t word : code) insts.push_back(decode(word));
  }
};

}  // namespace specure::riscv
