#include "riscv/isa.hpp"

namespace specure::riscv {

Format format_of(Op op) {
  switch (op) {
    case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt:
    case Op::kSltu: case Op::kXor: case Op::kSrl: case Op::kSra:
    case Op::kOr: case Op::kAnd: case Op::kAddw: case Op::kSubw:
    case Op::kSllw: case Op::kSrlw: case Op::kSraw:
    case Op::kMul: case Op::kMulh: case Op::kDiv: case Op::kDivu:
    case Op::kRem: case Op::kRemu:
      return Format::kR;
    case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
    case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
    case Op::kSrai: case Op::kAddiw: case Op::kSlliw: case Op::kSrliw:
    case Op::kSraiw: case Op::kJalr:
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
    case Op::kLbu: case Op::kLhu: case Op::kLwu:
      return Format::kI;
    case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd:
      return Format::kS;
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
      return Format::kB;
    case Op::kLui: case Op::kAuipc:
      return Format::kU;
    case Op::kJal:
      return Format::kJ;
    case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
      return Format::kCsr;
    case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci:
      return Format::kCsrImm;
    default:
      return Format::kSys;
  }
}

std::string_view mnemonic(Op op) {
  switch (op) {
    case Op::kIllegal: return "ILLEGAL";
    case Op::kAddi: return "ADDI";
    case Op::kSlti: return "SLTI";
    case Op::kSltiu: return "SLTIU";
    case Op::kXori: return "XORI";
    case Op::kOri: return "ORI";
    case Op::kAndi: return "ANDI";
    case Op::kSlli: return "SLLI";
    case Op::kSrli: return "SRLI";
    case Op::kSrai: return "SRAI";
    case Op::kAddiw: return "ADDIW";
    case Op::kSlliw: return "SLLIW";
    case Op::kSrliw: return "SRLIW";
    case Op::kSraiw: return "SRAIW";
    case Op::kAdd: return "ADD";
    case Op::kSub: return "SUB";
    case Op::kSll: return "SLL";
    case Op::kSlt: return "SLT";
    case Op::kSltu: return "SLTU";
    case Op::kXor: return "XOR";
    case Op::kSrl: return "SRL";
    case Op::kSra: return "SRA";
    case Op::kOr: return "OR";
    case Op::kAnd: return "AND";
    case Op::kAddw: return "ADDW";
    case Op::kSubw: return "SUBW";
    case Op::kSllw: return "SLLW";
    case Op::kSrlw: return "SRLW";
    case Op::kSraw: return "SRAW";
    case Op::kLui: return "LUI";
    case Op::kAuipc: return "AUIPC";
    case Op::kJal: return "JAL";
    case Op::kJalr: return "JALR";
    case Op::kBeq: return "BEQ";
    case Op::kBne: return "BNE";
    case Op::kBlt: return "BLT";
    case Op::kBge: return "BGE";
    case Op::kBltu: return "BLTU";
    case Op::kBgeu: return "BGEU";
    case Op::kLb: return "LB";
    case Op::kLh: return "LH";
    case Op::kLw: return "LW";
    case Op::kLd: return "LD";
    case Op::kLbu: return "LBU";
    case Op::kLhu: return "LHU";
    case Op::kLwu: return "LWU";
    case Op::kSb: return "SB";
    case Op::kSh: return "SH";
    case Op::kSw: return "SW";
    case Op::kSd: return "SD";
    case Op::kMul: return "MUL";
    case Op::kMulh: return "MULH";
    case Op::kDiv: return "DIV";
    case Op::kDivu: return "DIVU";
    case Op::kRem: return "REM";
    case Op::kRemu: return "REMU";
    case Op::kCsrrw: return "CSRRW";
    case Op::kCsrrs: return "CSRRS";
    case Op::kCsrrc: return "CSRRC";
    case Op::kCsrrwi: return "CSRRWI";
    case Op::kCsrrsi: return "CSRRSI";
    case Op::kCsrrci: return "CSRRCI";
    case Op::kFence: return "FENCE";
    case Op::kEcall: return "ECALL";
    case Op::kEbreak: return "EBREAK";
    case Op::kCount: break;
  }
  return "?";
}

unsigned access_size(Op op) {
  switch (op) {
    case Op::kLb: case Op::kLbu: case Op::kSb: return 1;
    case Op::kLh: case Op::kLhu: case Op::kSh: return 2;
    case Op::kLw: case Op::kLwu: case Op::kSw: return 4;
    case Op::kLd: case Op::kSd: return 8;
    default: return 0;
  }
}

namespace csr {

const std::vector<std::uint16_t>& fuzz_csr_pool() {
  static const std::vector<std::uint16_t> kPool = [] {
    std::vector<std::uint16_t> pool(kImplemented.begin(), kImplemented.end());
    // Machine information registers.
    for (std::uint16_t a : {0xf11, 0xf12, 0xf13, 0xf14}) pool.push_back(a);
    // Machine trap setup/handling.
    for (std::uint16_t a : {0x302, 0x303, 0x304, 0x306, 0x343, 0x344}) {
      pool.push_back(a);
    }
    // PMP configuration/address registers.
    for (std::uint16_t a = 0x3a0; a <= 0x3a3; ++a) pool.push_back(a);
    for (std::uint16_t a = 0x3b0; a <= 0x3bf; ++a) pool.push_back(a);
    // Hardware performance counters.
    for (std::uint16_t a = 0xb03; a <= 0xb1f; ++a) pool.push_back(a);
    for (std::uint16_t a = 0x323; a <= 0x33f; ++a) pool.push_back(a);
    // User counters.
    for (std::uint16_t a : {0xc00, 0xc01, 0xc02}) pool.push_back(a);
    return pool;
  }();
  return kPool;
}

std::string_view name(std::uint16_t addr) {
  switch (addr) {
    case kMstatus: return "mstatus";
    case kMisa: return "misa";
    case kMtvec: return "mtvec";
    case kMscratch: return "mscratch";
    case kMepc: return "mepc";
    case kMcause: return "mcause";
    case kMcycle: return "mcycle";
    case kMinstret: return "minstret";
    case kMwaitEn: return "mwait_en";
    case kMonitorAddr: return "monitor_addr";
    case kMwaitTimer: return "mwait_timer";
    case kZenbleedEn: return "zenbleed_en";
    default: return "csr_unknown";
  }
}
}  // namespace csr

}  // namespace specure::riscv
