#include "riscv/decode.hpp"

#include "util/bits.hpp"

namespace specure::riscv {

using util::bits;
using util::sext;

namespace {

std::int64_t imm_i(std::uint32_t w) { return sext(bits(w, 20, 12), 12); }

std::int64_t imm_s(std::uint32_t w) {
  return sext(bits(w, 25, 7) << 5 | bits(w, 7, 5), 12);
}

std::int64_t imm_b(std::uint32_t w) {
  const std::uint64_t v = (bits(w, 31, 1) << 12) | (bits(w, 7, 1) << 11) |
                          (bits(w, 25, 6) << 5) | (bits(w, 8, 4) << 1);
  return sext(v, 13);
}

std::int64_t imm_u(std::uint32_t w) {
  return sext(bits(w, 12, 20) << 12, 32);
}

std::int64_t imm_j(std::uint32_t w) {
  const std::uint64_t v = (bits(w, 31, 1) << 20) | (bits(w, 12, 8) << 12) |
                          (bits(w, 20, 1) << 11) | (bits(w, 21, 10) << 1);
  return sext(v, 21);
}

Op decode_op_imm(std::uint32_t f3, std::uint32_t f7_shift) {
  switch (f3) {
    case 0: return Op::kAddi;
    case 1: return f7_shift == 0 ? Op::kSlli : Op::kIllegal;
    case 2: return Op::kSlti;
    case 3: return Op::kSltiu;
    case 4: return Op::kXori;
    case 5:
      if (f7_shift == 0x00) return Op::kSrli;
      if (f7_shift == 0x10) return Op::kSrai;
      return Op::kIllegal;
    case 6: return Op::kOri;
    case 7: return Op::kAndi;
  }
  return Op::kIllegal;
}

Op decode_op_imm32(std::uint32_t f3, std::uint32_t f7) {
  switch (f3) {
    case 0: return Op::kAddiw;
    case 1: return f7 == 0 ? Op::kSlliw : Op::kIllegal;
    case 5:
      if (f7 == 0x00) return Op::kSrliw;
      if (f7 == 0x20) return Op::kSraiw;
      return Op::kIllegal;
  }
  return Op::kIllegal;
}

Op decode_op_reg(std::uint32_t f3, std::uint32_t f7) {
  if (f7 == 0x01) {  // M extension subset.
    switch (f3) {
      case 0: return Op::kMul;
      case 1: return Op::kMulh;
      case 4: return Op::kDiv;
      case 5: return Op::kDivu;
      case 6: return Op::kRem;
      case 7: return Op::kRemu;
    }
    return Op::kIllegal;
  }
  switch (f3) {
    case 0:
      if (f7 == 0x00) return Op::kAdd;
      if (f7 == 0x20) return Op::kSub;
      return Op::kIllegal;
    case 1: return f7 == 0 ? Op::kSll : Op::kIllegal;
    case 2: return f7 == 0 ? Op::kSlt : Op::kIllegal;
    case 3: return f7 == 0 ? Op::kSltu : Op::kIllegal;
    case 4: return f7 == 0 ? Op::kXor : Op::kIllegal;
    case 5:
      if (f7 == 0x00) return Op::kSrl;
      if (f7 == 0x20) return Op::kSra;
      return Op::kIllegal;
    case 6: return f7 == 0 ? Op::kOr : Op::kIllegal;
    case 7: return f7 == 0 ? Op::kAnd : Op::kIllegal;
  }
  return Op::kIllegal;
}

Op decode_op_reg32(std::uint32_t f3, std::uint32_t f7) {
  switch (f3) {
    case 0:
      if (f7 == 0x00) return Op::kAddw;
      if (f7 == 0x20) return Op::kSubw;
      return Op::kIllegal;
    case 1: return f7 == 0 ? Op::kSllw : Op::kIllegal;
    case 5:
      if (f7 == 0x00) return Op::kSrlw;
      if (f7 == 0x20) return Op::kSraw;
      return Op::kIllegal;
  }
  return Op::kIllegal;
}

Op decode_branch(std::uint32_t f3) {
  switch (f3) {
    case 0: return Op::kBeq;
    case 1: return Op::kBne;
    case 4: return Op::kBlt;
    case 5: return Op::kBge;
    case 6: return Op::kBltu;
    case 7: return Op::kBgeu;
  }
  return Op::kIllegal;
}

Op decode_load(std::uint32_t f3) {
  switch (f3) {
    case 0: return Op::kLb;
    case 1: return Op::kLh;
    case 2: return Op::kLw;
    case 3: return Op::kLd;
    case 4: return Op::kLbu;
    case 5: return Op::kLhu;
    case 6: return Op::kLwu;
  }
  return Op::kIllegal;
}

Op decode_store(std::uint32_t f3) {
  switch (f3) {
    case 0: return Op::kSb;
    case 1: return Op::kSh;
    case 2: return Op::kSw;
    case 3: return Op::kSd;
  }
  return Op::kIllegal;
}

Op decode_system(std::uint32_t f3, std::uint32_t imm12) {
  switch (f3) {
    case 0:
      if (imm12 == 0) return Op::kEcall;
      if (imm12 == 1) return Op::kEbreak;
      return Op::kIllegal;
    case 1: return Op::kCsrrw;
    case 2: return Op::kCsrrs;
    case 3: return Op::kCsrrc;
    case 5: return Op::kCsrrwi;
    case 6: return Op::kCsrrsi;
    case 7: return Op::kCsrrci;
  }
  return Op::kIllegal;
}

}  // namespace

DecodedInst decode(std::uint32_t word) {
  DecodedInst d;
  d.raw = word;
  const std::uint32_t opcode = static_cast<std::uint32_t>(bits(word, 0, 7));
  const std::uint32_t f3 = static_cast<std::uint32_t>(bits(word, 12, 3));
  const std::uint32_t f7 = static_cast<std::uint32_t>(bits(word, 25, 7));
  d.rd = static_cast<std::uint8_t>(bits(word, 7, 5));
  d.rs1 = static_cast<std::uint8_t>(bits(word, 15, 5));
  d.rs2 = static_cast<std::uint8_t>(bits(word, 20, 5));

  switch (opcode) {
    case 0x13:  // OP-IMM
      // RV64 shifts use a 6-bit shamt; the distinguishing funct field is
      // bits [31:26].
      d.op = decode_op_imm(f3, static_cast<std::uint32_t>(bits(word, 26, 6)));
      if (d.op == Op::kSlli || d.op == Op::kSrli || d.op == Op::kSrai) {
        d.imm = static_cast<std::int64_t>(bits(word, 20, 6));
      } else {
        d.imm = imm_i(word);
      }
      break;
    case 0x1b:  // OP-IMM-32
      d.op = decode_op_imm32(f3, f7);
      if (d.op == Op::kSlliw || d.op == Op::kSrliw || d.op == Op::kSraiw) {
        d.imm = static_cast<std::int64_t>(bits(word, 20, 5));
      } else {
        d.imm = imm_i(word);
      }
      break;
    case 0x33:  // OP
      d.op = decode_op_reg(f3, f7);
      break;
    case 0x3b:  // OP-32
      d.op = decode_op_reg32(f3, f7);
      break;
    case 0x37:  // LUI
      d.op = Op::kLui;
      d.imm = imm_u(word);
      break;
    case 0x17:  // AUIPC
      d.op = Op::kAuipc;
      d.imm = imm_u(word);
      break;
    case 0x6f:  // JAL
      d.op = Op::kJal;
      d.imm = imm_j(word);
      break;
    case 0x67:  // JALR
      d.op = f3 == 0 ? Op::kJalr : Op::kIllegal;
      d.imm = imm_i(word);
      break;
    case 0x63:  // BRANCH
      d.op = decode_branch(f3);
      d.imm = imm_b(word);
      break;
    case 0x03:  // LOAD
      d.op = decode_load(f3);
      d.imm = imm_i(word);
      break;
    case 0x23:  // STORE
      d.op = decode_store(f3);
      d.imm = imm_s(word);
      break;
    case 0x0f:  // FENCE
      d.op = Op::kFence;
      break;
    case 0x73:  // SYSTEM
      d.op = decode_system(f3, static_cast<std::uint32_t>(bits(word, 20, 12)));
      if (is_csr(d.op)) {
        d.csr = static_cast<std::uint16_t>(bits(word, 20, 12));
        d.zimm = d.rs1;  // CSRR*I reuse the rs1 field as a 5-bit immediate.
      }
      break;
    default:
      d.op = Op::kIllegal;
      break;
  }
  if (d.op == Op::kIllegal) {
    d.rd = d.rs1 = d.rs2 = 0;
    d.imm = 0;
    d.csr = 0;
    d.zimm = 0;
  }
  return d;
}

}  // namespace specure::riscv
