// Disassembler producing the readable rendering used in the paper's
// Table 1, e.g. "BGE S8, T5, 0x800025B0" (ABI register names, branch and
// jump targets resolved against the instruction's own PC), plus the
// inverse: assemble() parses that exact rendering back to the word.
// Every instruction the generators can emit round-trips
// assemble(disassemble(w, pc), pc) == w — the triage repro.S writer
// depends on the text being re-assemblable (riscv_test pins this).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "riscv/decode.hpp"

namespace specure::riscv {

/// Disassemble a decoded instruction. `pc` is used to render absolute
/// branch/JAL/AUIPC targets as the paper does.
std::string disassemble(const DecodedInst& inst, std::uint64_t pc);

/// Convenience: decode + disassemble a raw word.
std::string disassemble(std::uint32_t word, std::uint64_t pc);

/// Parse one line of disassemble() output back into the instruction word
/// (branch/JAL targets are resolved against `pc`, the address the line
/// was disassembled at). Throws std::runtime_error naming the offending
/// token on text this module did not produce.
std::uint32_t assemble(std::string_view text, std::uint64_t pc);

}  // namespace specure::riscv
