// Disassembler producing the readable rendering used in the paper's
// Table 1, e.g. "BGE S8, T5, 0x800025B0" (ABI register names, branch and
// jump targets resolved against the instruction's own PC).
#pragma once

#include <cstdint>
#include <string>

#include "riscv/decode.hpp"

namespace specure::riscv {

/// Disassemble a decoded instruction. `pc` is used to render absolute
/// branch/JAL/AUIPC targets as the paper does.
std::string disassemble(const DecodedInst& inst, std::uint64_t pc);

/// Convenience: decode + disassemble a raw word.
std::string disassemble(std::uint32_t word, std::uint64_t pc);

}  // namespace specure::riscv
