// Test-input representation. A Program is the unit the fuzzer mutates and
// the simulator executes: a code image (32-bit words, loaded at kCodeBase)
// plus an initial data-memory image (loaded at kDataBase).
//
// ProgramBuilder is a tiny label-based assembler used by the special-seed
// generators, the examples and the tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "riscv/encode.hpp"
#include "util/rng.hpp"

namespace specure::riscv {

/// Memory layout constants shared by program generation and the simulator.
constexpr std::uint64_t kCodeBase = 0x8000'0000;
constexpr std::uint64_t kDataBase = 0x8001'0000;
constexpr std::uint64_t kDataSize = 0x1'0000;  ///< 64 KiB data region.

struct Program {
  std::vector<std::uint32_t> code;
  std::vector<std::uint8_t> data;

  bool empty() const { return code.empty(); }

  /// Flat byte serialization (little-endian code words, then a length-
  /// prefixed data image). Used for corpus storage and byte-level mutation.
  std::vector<std::uint8_t> to_bytes() const;
  static Program from_bytes(const std::vector<std::uint8_t>& bytes);

  /// Lowercase hex rendering of to_bytes(), the self-contained program
  /// encoding embedded in JSON reports and repro.toml `replay_program`
  /// keys. from_hex() throws std::runtime_error on odd length or
  /// non-hex characters.
  std::string to_hex() const;
  static Program from_hex(const std::string& hex);

  /// FNV-1a over code words and data bytes (length-delimited). Used as
  /// the corpus-parent identity for checkpoint caching and worker
  /// affinity; collisions are tolerated (cache lookups re-verify by full
  /// program comparison).
  std::uint64_t hash() const;

  bool operator==(const Program&) const = default;
};

/// Label-based program builder.
class ProgramBuilder {
 public:
  /// Append a raw, already-encoded instruction.
  ProgramBuilder& raw(std::uint32_t word);

  // Common instructions (thin wrappers over the encoders).
  ProgramBuilder& addi(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm);
  ProgramBuilder& li(std::uint8_t rd, std::int64_t value);  ///< LUI+ADDI combo.
  ProgramBuilder& add(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
  ProgramBuilder& sub(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
  ProgramBuilder& xor_(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
  ProgramBuilder& slli(std::uint8_t rd, std::uint8_t rs1, unsigned shamt);
  ProgramBuilder& ld(std::uint8_t rd, std::uint8_t rs1, std::int64_t off);
  ProgramBuilder& lw(std::uint8_t rd, std::uint8_t rs1, std::int64_t off);
  ProgramBuilder& lb(std::uint8_t rd, std::uint8_t rs1, std::int64_t off);
  ProgramBuilder& sd(std::uint8_t rs2, std::uint8_t rs1, std::int64_t off);
  ProgramBuilder& sw(std::uint8_t rs2, std::uint8_t rs1, std::int64_t off);
  ProgramBuilder& jalr(std::uint8_t rd, std::uint8_t rs1, std::int64_t off);
  ProgramBuilder& csrrw(std::uint8_t rd, std::uint16_t csr, std::uint8_t rs1);
  ProgramBuilder& csrrs(std::uint8_t rd, std::uint16_t csr, std::uint8_t rs1);
  ProgramBuilder& csrrwi(std::uint8_t rd, std::uint16_t csr, std::uint8_t zimm);
  ProgramBuilder& nop();
  ProgramBuilder& ecall();

  // Label management: branches/jumps to not-yet-defined labels are fixed up
  // in build().
  ProgramBuilder& label(const std::string& name);
  ProgramBuilder& branch(Op op, std::uint8_t rs1, std::uint8_t rs2,
                         const std::string& target);
  ProgramBuilder& jal(std::uint8_t rd, const std::string& target);
  /// Load the absolute address of a label (AUIPC+ADDI pair).
  ProgramBuilder& la(std::uint8_t rd, const std::string& target);

  /// Set the initial data image.
  ProgramBuilder& with_data(std::vector<std::uint8_t> data);
  /// Store a 64-bit little-endian value at a data-image offset.
  ProgramBuilder& data_u64(std::size_t offset, std::uint64_t value);

  /// Resolve labels and produce the program. Throws std::runtime_error on
  /// undefined labels.
  Program build();

  std::size_t size() const { return code_.size(); }

 private:
  struct Fixup {
    std::size_t index;
    Op op;
    std::uint8_t rd, rs1, rs2;
    std::string target;
  };
  std::vector<std::uint32_t> code_;
  std::vector<std::uint8_t> data_;
  std::map<std::string, std::size_t> labels_;
  std::vector<Fixup> fixups_;
};

/// Generate one random, *valid* instruction word (used by the
/// instruction-aware mutator so mutated programs stay mostly decodable).
/// Offsets of control flow stay within [-window, +window] instructions.
std::uint32_t random_instruction(util::Rng& rng, std::size_t inst_index,
                                 std::size_t program_len);

/// Generate a fully random program of `len` instructions plus a random
/// data image.
Program random_program(util::Rng& rng, std::size_t len,
                       std::size_t data_len = 256);

}  // namespace specure::riscv
