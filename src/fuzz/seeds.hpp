// Special input seeds (§3.2): programs with transient-execution windows
// covering branch misprediction, branch-target injection, and
// return-stack-buffer manipulation. These are the generic "window opener"
// seeds the paper adds to the initial corpus; they deliberately do NOT arm
// any of the emulated vulnerabilities — the fuzzer has to discover the CSR
// interactions by mutation, exactly as in the paper's campaigns.
#pragma once

#include <string>
#include <vector>

#include "riscv/program.hpp"
#include "util/rng.hpp"

namespace specure::fuzz {

struct Seed {
  std::string name;
  riscv::Program program;
};

/// Branch-misprediction seed: trains a bounds-check branch taken, then
/// violates it; the wrong path performs a dependent double load (the
/// Spectre v1 gadget shape).
Seed make_branch_mispredict_seed(util::Rng& rng);

/// Branch-target-injection seed: an indirect jump whose BTB entry was
/// trained to a different target (Spectre v2 shape).
Seed make_bti_seed(util::Rng& rng);

/// Return-stack seed: call/return mismatch so the RAS mispredicts.
Seed make_rsb_seed(util::Rng& rng);

/// All special seeds.
std::vector<Seed> special_seeds(util::Rng& rng);

/// Random seeds: plain random programs.
std::vector<Seed> random_seeds(util::Rng& rng, std::size_t count,
                               std::size_t program_len = 96);

}  // namespace specure::fuzz
