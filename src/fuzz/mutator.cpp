#include "fuzz/mutator.hpp"

#include <algorithm>

#include "riscv/decode.hpp"
#include "sim/fast_tier.hpp"

namespace specure::fuzz {

using riscv::Program;

std::string_view mutation_name(MutationOp op) {
  switch (op) {
    case MutationOp::kBitFlip: return "bit_flip";
    case MutationOp::kByteFlip: return "byte_flip";
    case MutationOp::kSwapInstructions: return "swap";
    case MutationOp::kDeleteInstruction: return "delete";
    case MutationOp::kCloneInstruction: return "clone";
    case MutationOp::kReplaceInstruction: return "replace";
    case MutationOp::kInsertInstruction: return "insert";
    case MutationOp::kMutateImmediate: return "imm_tweak";
    case MutationOp::kMutateData: return "data";
    case MutationOp::kCount: break;
  }
  return "?";
}

namespace {

void ensure_nonempty(Program& p) {
  if (p.code.empty()) p.code.push_back(riscv::enc_nop());
}

}  // namespace

Program apply_mutation(const Program& input, MutationOp op, util::Rng& rng) {
  Program p = input;
  ensure_nonempty(p);
  const std::size_t n = p.code.size();
  switch (op) {
    case MutationOp::kBitFlip: {
      const std::size_t i = rng.below(n);
      p.code[i] ^= 1u << rng.below(32);
      break;
    }
    case MutationOp::kByteFlip: {
      const std::size_t i = rng.below(n);
      p.code[i] ^= 0xffu << (8 * rng.below(4));
      break;
    }
    case MutationOp::kSwapInstructions: {
      const std::size_t i = rng.below(n);
      const std::size_t j = rng.below(n);
      std::swap(p.code[i], p.code[j]);
      break;
    }
    case MutationOp::kDeleteInstruction: {
      if (n > 1) {
        p.code.erase(p.code.begin() + static_cast<long>(rng.below(n)));
      }
      break;
    }
    case MutationOp::kCloneInstruction: {
      const std::size_t i = rng.below(n);
      const std::size_t j = rng.below(n + 1);
      p.code.insert(p.code.begin() + static_cast<long>(j), p.code[i]);
      break;
    }
    case MutationOp::kReplaceInstruction: {
      const std::size_t i = rng.below(n);
      p.code[i] = riscv::random_instruction(rng, i, n);
      break;
    }
    case MutationOp::kInsertInstruction: {
      const std::size_t j = rng.below(n + 1);
      p.code.insert(p.code.begin() + static_cast<long>(j),
                    riscv::random_instruction(rng, j, n + 1));
      break;
    }
    case MutationOp::kMutateImmediate: {
      const std::size_t i = rng.below(n);
      const auto d = riscv::decode(p.code[i]);
      if (d.valid()) {
        // Re-encode with a perturbed immediate; keeps the op and registers.
        const std::int64_t delta =
            static_cast<std::int64_t>(rng.below(64)) - 32;
        std::int64_t imm = d.imm + delta;
        if (riscv::is_branch(d.op) || d.op == riscv::Op::kJal) {
          imm &= ~1LL;  // keep control-flow targets halfword aligned
        }
        p.code[i] = riscv::encode(d.op, d.rd, d.rs1, d.rs2, imm, d.csr);
      } else {
        p.code[i] ^= 0xff0;
      }
      break;
    }
    case MutationOp::kMutateData: {
      if (p.data.empty()) p.data.resize(64, 0);
      const std::size_t i = rng.below(p.data.size());
      p.data[i] = static_cast<std::uint8_t>(rng.below(256));
      break;
    }
    case MutationOp::kCount:
      break;
  }
  ensure_nonempty(p);
  return p;
}

Program mutate(const Program& input, util::Rng& rng,
               const MutatorOptions& options) {
  Program p = input;
  const unsigned stack = static_cast<unsigned>(
      rng.range(options.min_stack, options.max_stack));
  for (unsigned k = 0; k < stack; ++k) {
    const auto op =
        static_cast<MutationOp>(rng.below(static_cast<std::uint64_t>(
            MutationOp::kCount)));
    p = apply_mutation(p, op, rng);
  }
  if (p.code.size() > options.max_code_len) {
    p.code.resize(options.max_code_len);
  }
  if (p.data.size() > options.max_data_len) {
    p.data.resize(options.max_data_len);
  }
  return p;
}

std::size_t first_divergence(const Program& parent, const Program& child) {
  const std::size_t data_max = std::max(parent.data.size(), child.data.size());
  for (std::size_t i = 0; i < data_max; ++i) {
    const std::uint8_t a = i < parent.data.size() ? parent.data[i] : 0;
    const std::uint8_t b = i < child.data.size() ? child.data[i] : 0;
    if (a != b) return 0;
  }
  const std::size_t code_max = std::max(parent.code.size(), child.code.size());
  std::size_t first = kNoDivergence;
  for (std::size_t i = 0; i < code_max; ++i) {
    const std::uint32_t a = i < parent.code.size() ? parent.code[i] : 0;
    const std::uint32_t b = i < child.code.size() ? child.code[i] : 0;
    if (a != b) {
      first = i;
      break;
    }
  }
  if (parent.code.size() != child.code.size()) {
    first = std::min(first,
                     std::min(parent.code.size(), child.code.size()));
  }
  return first;
}

std::size_t handoff_index(const riscv::DecodedProgram& dec, bool loads_arm) {
  return sim::fast_handoff_scan(dec.insts, loads_arm);
}

Program splice(const Program& a, const Program& b, util::Rng& rng) {
  Program out;
  const std::size_t cut_a = a.code.empty() ? 0 : rng.below(a.code.size());
  const std::size_t cut_b = b.code.empty() ? 0 : rng.below(b.code.size());
  out.code.assign(a.code.begin(), a.code.begin() + static_cast<long>(cut_a));
  out.code.insert(out.code.end(), b.code.begin() + static_cast<long>(cut_b),
                  b.code.end());
  out.data = rng.chance(1, 2) ? a.data : b.data;
  if (out.code.empty()) out.code.push_back(riscv::enc_nop());
  return out;
}

}  // namespace specure::fuzz
