#include "fuzz/seeds.hpp"

namespace specure::fuzz {

using riscv::Op;
using riscv::ProgramBuilder;

namespace {
constexpr std::uint8_t A0 = 10, T0 = 5, T1 = 6, T2 = 7, T3 = 28, T4 = 29,
                       T5 = 30, RA = 1, S0 = 8;

/// Emit the Spectre-shaped dependent double load gadget:
/// t3 = mem[a0 + x*8]; t5 = mem[a0 + 256 + (t3 & 63)*8].
void emit_gadget(ProgramBuilder& b, std::uint8_t x_reg) {
  b.slli(T3, x_reg, 3);
  b.add(T3, T3, A0);
  b.ld(T3, T3, 0);
  b.raw(riscv::enc_i(Op::kAndi, T3, T3, 63));
  b.slli(T3, T3, 3);
  b.add(T4, T3, A0);
  b.ld(T5, T4, 256);
}
}  // namespace

Seed make_branch_mispredict_seed(util::Rng& rng) {
  // Bounds check "if (x < 8) use arr[x]" executed with x = 0..4 (branch
  // not taken, matching the predictor's reset state), then once with
  // x = 200: the skip branch is taken but predicted not-taken, so the
  // gadget runs transiently with the out-of-bounds index.
  ProgramBuilder b;
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(T2, 8);  // bound
  for (int i = 0; i < 5; ++i) {
    const std::string skip = "skip" + std::to_string(i);
    b.li(T1, i);
    b.branch(Op::kBge, T1, T2, skip);  // in bounds: not taken
    emit_gadget(b, T1);
    b.label(skip);
  }
  b.li(T1, 200);                       // out of bounds
  b.branch(Op::kBge, T1, T2, "done");  // taken, predicted not-taken
  emit_gadget(b, T1);                  // transient out-of-bounds gadget
  b.label("done");
  b.ecall();
  Seed s;
  s.name = "branch_mispredict";
  s.program = b.build();
  s.program.data.resize(2048);
  for (auto& byte : s.program.data) {
    byte = static_cast<std::uint8_t>(rng.below(256));
  }
  return s;
}

Seed make_bti_seed(util::Rng& rng) {
  // Branch-target injection: an indirect jump at a fixed PC first trains
  // the BTB towards victim_a, then jumps to victim_b; the BTB predicts
  // victim_a, transiently executing its gadget.
  ProgramBuilder b;
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(S0, 0);              // pass counter
  b.la(T0, "victim_a");
  b.label("dispatch");
  b.jalr(T2, T0, 0);        // the polymorphic indirect jump
  b.label("back");
  b.addi(S0, S0, 1);
  b.la(T0, "victim_b");     // retarget for the second pass
  b.li(T1, 2);
  b.branch(Op::kBlt, S0, T1, "dispatch");
  b.ecall();
  b.label("victim_a");
  emit_gadget(b, S0);       // transient on the second pass
  b.jal(0, "back");
  b.label("victim_b");
  b.nop();
  b.jal(0, "back");
  Seed s;
  s.name = "branch_target_injection";
  s.program = b.build();
  s.program.data.resize(1024);
  for (auto& byte : s.program.data) {
    byte = static_cast<std::uint8_t>(rng.below(256));
  }
  return s;
}

Seed make_rsb_seed(util::Rng& rng) {
  // Return-stack manipulation: the callee bumps RA before returning, so
  // the RAS-predicted return point (holding a gadget) runs transiently.
  ProgramBuilder b;
  b.li(A0, static_cast<std::int64_t>(riscv::kDataBase));
  b.li(S0, 9);
  b.jal(RA, "func");
  // RAS predicts a return to here: transient gadget.
  emit_gadget(b, S0);
  b.nop();
  b.nop();
  b.label("landing");
  b.ecall();
  b.label("func");
  // Redirect the return address past the gadget to the landing pad, then
  // return: the RAS still predicts the original call site.
  b.la(T1, "landing");
  b.addi(RA, T1, 0);
  b.jalr(0, RA, 0);  // ret — RAS-predicted, actually manipulated
  Seed s;
  s.name = "rsb_manipulation";
  s.program = b.build();
  s.program.data.resize(1024);
  for (auto& byte : s.program.data) {
    byte = static_cast<std::uint8_t>(rng.below(256));
  }
  return s;
}

std::vector<Seed> special_seeds(util::Rng& rng) {
  std::vector<Seed> out;
  out.push_back(make_branch_mispredict_seed(rng));
  out.push_back(make_bti_seed(rng));
  out.push_back(make_rsb_seed(rng));
  return out;
}

std::vector<Seed> random_seeds(util::Rng& rng, std::size_t count,
                               std::size_t program_len) {
  std::vector<Seed> out;
  for (std::size_t i = 0; i < count; ++i) {
    Seed s;
    s.name = "random" + std::to_string(i);
    s.program = riscv::random_program(rng, program_len);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace specure::fuzz
