// Mutation engine over riscv::Program test inputs, implementing the
// operator families from the paper's fuzzing background (§2): bit/byte
// flipping, swapping, deleting and cloning — plus instruction-aware
// replacement/insertion so mutated programs stay mostly decodable, and a
// splice (crossover) operator for corpus recombination.
#pragma once

#include <string_view>

#include "riscv/program.hpp"
#include "util/rng.hpp"

namespace specure::riscv {
struct DecodedProgram;
}

namespace specure::fuzz {

enum class MutationOp : std::uint8_t {
  kBitFlip,
  kByteFlip,
  kSwapInstructions,
  kDeleteInstruction,
  kCloneInstruction,
  kReplaceInstruction,  ///< instruction-aware: new random valid instruction
  kInsertInstruction,
  kMutateImmediate,     ///< tweak an immediate field in place
  kMutateData,          ///< perturb the data image
  kCount,
};

std::string_view mutation_name(MutationOp op);

/// Apply one specific operator. Always returns a structurally valid
/// Program (code non-empty, bounded length).
riscv::Program apply_mutation(const riscv::Program& input, MutationOp op,
                              util::Rng& rng);

struct MutatorOptions {
  unsigned min_stack = 1;   ///< minimum operators applied per mutation
  unsigned max_stack = 4;   ///< maximum operators applied per mutation
  std::size_t max_code_len = 256;
  std::size_t max_data_len = 1024;
};

/// Apply a random stack of operators.
riscv::Program mutate(const riscv::Program& input, util::Rng& rng,
                      const MutatorOptions& options = {});

/// Crossover: head of `a` spliced with tail of `b`.
riscv::Program splice(const riscv::Program& a, const riscv::Program& b,
                      util::Rng& rng);

/// Sentinel for first_divergence: the two programs are observationally
/// identical (a resumed run may use any checkpoint).
inline constexpr std::size_t kNoDivergence = static_cast<std::size_t>(-1);

/// First instruction index at which running `child` could observe a
/// difference from `parent` — the mutation-locality report the
/// checkpoint fast path keys on. A checkpoint of the parent is valid for
/// the child iff its fetch watermark is strictly below this index.
///
/// Rules: any data-image difference returns 0 (loads can reach the whole
/// image from cycle one); otherwise the first differing code word,
/// except that differing code *lengths* cap the result at the shorter
/// length (the simulator's end-of-program probe observes the length).
/// Zero-padding beyond each image matches Memory::fetch semantics.
std::size_t first_divergence(const riscv::Program& parent,
                             const riscv::Program& child);

/// Index of the first instruction that can arm speculation for the
/// active scenario — where the tiered simulator must hand the program
/// from the fast-functional prefix tier to the detailed core. Branches,
/// jumps and serializing ops always arm; loads additionally arm when
/// `loads_arm` (the preset's detector monitors the data cache). Returns
/// `dec.insts.size()` when the whole program is prefix-executable. The
/// campaign worker takes the minimum of this and the job's
/// first_divergence index (both are code-word indices), so a mutant
/// never fast-forwards past the point where it stops matching its
/// parent's prefix.
std::size_t handoff_index(const riscv::DecodedProgram& dec, bool loads_arm);

}  // namespace specure::fuzz
