// Feedback-driven corpus with an AFL-style power schedule: inputs that
// produced new coverage are kept and preferentially selected/mutated;
// energy decays as an entry is reused so the fuzzer keeps exploring.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/mutator.hpp"
#include "fuzz/seeds.hpp"
#include "riscv/program.hpp"
#include "util/rng.hpp"

namespace specure::fuzz {

struct CorpusEntry {
  riscv::Program program;
  std::string origin;      ///< seed name or "mutation"
  double energy = 1.0;
  std::uint64_t hits = 0;  ///< times selected
  std::uint64_t added_iteration = 0;
};

class Corpus {
 public:
  explicit Corpus(std::size_t max_entries = 256) : max_entries_(max_entries) {}

  void add(riscv::Program program, std::string origin,
           std::uint64_t iteration);

  /// Weighted random selection by energy. Corpus must be non-empty.
  const CorpusEntry& select(util::Rng& rng);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<CorpusEntry>& entries() const { return entries_; }

  /// Replace the entry set wholesale (campaign state restore). Entry
  /// order is part of the deterministic contract: select() walks entries
  /// in order, so a restored corpus must present them exactly as saved.
  void restore(std::vector<CorpusEntry> entries) {
    entries_ = std::move(entries);
  }

 private:
  std::vector<CorpusEntry> entries_;
  std::size_t max_entries_;
};

struct FuzzerOptions {
  bool use_special_seeds = true;   ///< §3.2 transient-window seeds
  std::size_t random_seed_count = 4;
  std::size_t random_seed_len = 96;
  MutatorOptions mutator;
  std::size_t corpus_max = 256;
  /// Probability (percent) of splicing two corpus entries instead of
  /// mutating one.
  unsigned splice_percent = 15;
  /// When non-empty: a riscv::Program::to_hex() image replayed as the
  /// very first test input (iteration 1), ahead of every other seed. The
  /// self-contained repro mechanism — a triage repro.toml is a campaign
  /// spec with replay_program set and a one-iteration budget, so
  /// `specure run repro.toml` re-triggers the finding exactly.
  std::string replay_program_hex;
};

/// One unit of campaign work handed to a simulation worker: the test
/// input, its iteration number (for in-order merging and corpus
/// bookkeeping) and a derived per-iteration RNG seed so any stochastic
/// worker-side component stays deterministic regardless of which thread
/// runs the job.
struct FuzzJob {
  std::uint64_t iteration = 0;
  riscv::Program program;
  std::uint64_t rng_seed = 0;
  /// Mutation locality (the checkpoint fast path): the corpus entry this
  /// program was mutated from, its identity hash, and the first
  /// instruction index at which the mutant can observably diverge from
  /// it (first_divergence). has_parent is false for seed replays and
  /// corpus-empty randoms; those always take the cold path.
  bool has_parent = false;
  riscv::Program parent;
  std::uint64_t parent_hash = 0;
  std::size_t divergence = 0;
};

/// Everything that determines the fuzzer's future output stream, as one
/// plain value: the RNG state, the iteration cursor, the corpus entries
/// (order matters — select() walks them in order) and the not-yet-served
/// seeds. save_state()/restore_state() round-trips it, which is the
/// fuzzing half of the durable campaign frontier (serve/campaign_state):
/// a fuzzer restored from a state drawn after job I continues with job
/// I + 1 exactly as the uninterrupted fuzzer would have.
struct FuzzerState {
  std::array<std::uint64_t, 4> rng_state{};
  std::uint64_t iteration = 0;
  std::vector<CorpusEntry> corpus;
  std::vector<Seed> pending_seeds;
};

/// The Hardware Fuzzer component (§3.2): owns the corpus, generates the
/// next test input, and accepts interestingness feedback from the
/// coverage/vulnerability components.
///
/// Batch generation (next_batch) draws every program in the batch from the
/// corpus state at the start of the batch; feedback reported afterwards
/// (report_interesting with an explicit iteration) lands before the next
/// batch is drawn. With a batch size of 1 this degenerates to the classic
/// generate → simulate → feed-back loop.
class Fuzzer {
 public:
  Fuzzer(const FuzzerOptions& options, std::uint64_t rng_seed);

  /// Produce the next test input (seed replay first, then mutations).
  riscv::Program next();

  /// Produce the next test input as a campaign job (the single-job form
  /// the sliding-window executor draws from). Consumes the same RNG
  /// stream as one call to next().
  FuzzJob next_job();

  /// Produce the next `count` test inputs as campaign jobs. Exactly
  /// `count` next_job() draws — same stream, same jobs.
  std::vector<FuzzJob> next_batch(std::size_t count);

  /// Feedback: the input was interesting (new coverage / vulnerability) —
  /// keep it in the corpus. The overload without an iteration stamps the
  /// entry with the current iteration (serial-loop usage); batch merging
  /// passes the iteration the program actually ran as.
  void report_interesting(const riscv::Program& program);
  void report_interesting(const riscv::Program& program,
                          std::uint64_t iteration);

  std::uint64_t iteration() const { return iteration_; }
  const Corpus& corpus() const { return corpus_; }

  /// Snapshot / restore the deterministic generation state. The derived
  /// job-seed base is not part of the state: it is a pure function of the
  /// construction seed, so the restoring fuzzer (built from the same
  /// spec) recomputes it. last_/gen_parent_ are dead between next_job()
  /// calls and are likewise excluded.
  FuzzerState save_state() const;
  void restore_state(const FuzzerState& state);

 private:
  riscv::Program generate();

  FuzzerOptions options_;
  util::Rng rng_;
  Corpus corpus_;
  std::vector<Seed> pending_seeds_;
  std::uint64_t iteration_ = 0;
  std::uint64_t job_seed_base_ = 0;  ///< base for per-iteration RNG seeds
  riscv::Program last_;
  /// Mutation parent of the most recent generate() (for FuzzJob
  /// locality reporting); has_parent is false for seeds and randoms.
  riscv::Program gen_parent_;
  bool gen_has_parent_ = false;
};

}  // namespace specure::fuzz
