#include "fuzz/corpus.hpp"

#include <algorithm>

namespace specure::fuzz {

void Corpus::add(riscv::Program program, std::string origin,
                 std::uint64_t iteration) {
  if (entries_.size() >= max_entries_) {
    // Evict the lowest-energy entry to bound memory.
    auto victim = std::min_element(
        entries_.begin(), entries_.end(),
        [](const CorpusEntry& a, const CorpusEntry& b) {
          return a.energy < b.energy;
        });
    *victim = CorpusEntry{};
    victim->program = std::move(program);
    victim->origin = std::move(origin);
    victim->added_iteration = iteration;
    return;
  }
  CorpusEntry e;
  e.program = std::move(program);
  e.origin = std::move(origin);
  e.added_iteration = iteration;
  entries_.push_back(std::move(e));
}

const CorpusEntry& Corpus::select(util::Rng& rng) {
  double total = 0;
  for (const auto& e : entries_) total += e.energy;
  double pick = rng.uniform01() * total;
  for (auto& e : entries_) {
    pick -= e.energy;
    if (pick <= 0) {
      ++e.hits;
      e.energy *= 0.97;  // decay: favour fresher entries over time
      return e;
    }
  }
  auto& last = entries_.back();
  ++last.hits;
  return last;
}

Fuzzer::Fuzzer(const FuzzerOptions& options, std::uint64_t rng_seed)
    : options_(options),
      rng_(rng_seed),
      corpus_(options.corpus_max),
      job_seed_base_(util::Rng::derive_seed(rng_seed, 0x10b5eedULL)) {
  util::Rng seed_rng = rng_.fork();
  if (options_.use_special_seeds) {
    for (auto& s : special_seeds(seed_rng)) {
      pending_seeds_.push_back(std::move(s));
    }
  }
  for (auto& s : random_seeds(seed_rng, options_.random_seed_count,
                              options_.random_seed_len)) {
    pending_seeds_.push_back(std::move(s));
  }
  if (!options_.replay_program_hex.empty()) {
    // Pending seeds are served back-first, so pushing the replay seed
    // last makes it iteration 1 (validate() already vetted the hex).
    Seed replay;
    replay.name = "replay";
    replay.program = riscv::Program::from_hex(options_.replay_program_hex);
    pending_seeds_.push_back(std::move(replay));
  }
}

riscv::Program Fuzzer::next() {
  ++iteration_;
  return generate();
}

FuzzJob Fuzzer::next_job() {
  FuzzJob job;
  job.iteration = ++iteration_;
  job.program = generate();
  job.rng_seed = util::Rng::derive_seed(job_seed_base_, job.iteration);
  if (gen_has_parent_) {
    job.has_parent = true;
    job.parent = gen_parent_;
    job.parent_hash = gen_parent_.hash();
    job.divergence = first_divergence(gen_parent_, job.program);
  }
  return job;
}

std::vector<FuzzJob> Fuzzer::next_batch(std::size_t count) {
  std::vector<FuzzJob> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) batch.push_back(next_job());
  return batch;
}

riscv::Program Fuzzer::generate() {
  gen_has_parent_ = false;
  if (!pending_seeds_.empty()) {
    Seed s = std::move(pending_seeds_.back());
    pending_seeds_.pop_back();
    corpus_.add(s.program, s.name, iteration_);
    last_ = s.program;
    return s.program;
  }
  if (corpus_.empty()) {
    last_ = riscv::random_program(rng_, options_.random_seed_len);
    return last_;
  }
  if (corpus_.size() >= 2 && rng_.chance(options_.splice_percent, 100)) {
    const auto& a = corpus_.select(rng_);
    const auto& b = corpus_.select(rng_);
    last_ = mutate(splice(a.program, b.program, rng_), rng_,
                   options_.mutator);
    // The splice head donor is the locality parent: the spliced prefix
    // (and often more, post-mutation) is shared with it.
    gen_parent_ = a.program;
    gen_has_parent_ = true;
    return last_;
  }
  const auto& base = corpus_.select(rng_);
  last_ = mutate(base.program, rng_, options_.mutator);
  gen_parent_ = base.program;
  gen_has_parent_ = true;
  return last_;
}

FuzzerState Fuzzer::save_state() const {
  FuzzerState state;
  state.rng_state = rng_.state();
  state.iteration = iteration_;
  state.corpus = corpus_.entries();
  state.pending_seeds = pending_seeds_;
  return state;
}

void Fuzzer::restore_state(const FuzzerState& state) {
  rng_.set_state(state.rng_state);
  iteration_ = state.iteration;
  corpus_.restore(state.corpus);
  pending_seeds_ = state.pending_seeds;
  gen_has_parent_ = false;
}

void Fuzzer::report_interesting(const riscv::Program& program) {
  report_interesting(program, iteration_);
}

void Fuzzer::report_interesting(const riscv::Program& program,
                                std::uint64_t iteration) {
  corpus_.add(program, "mutation", iteration);
}

}  // namespace specure::fuzz
