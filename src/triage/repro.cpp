#include "triage/repro.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/mst.hpp"
#include "riscv/disasm.hpp"
#include "snapshot/vcd.hpp"
#include "triage/signature.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace specure::triage {

namespace {

/// Directory-name component from a free-form scenario name.
std::string sanitized(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '/' || c == '\\' || c == ' ' || c == '\t') c = '_';
  }
  return out;
}

void ensure_dir(const std::string& dir) {
  const std::string problem = util::ensure_dir_writable(dir);
  if (!problem.empty()) {
    throw core::SpecError("repro bundle directory '" + dir + "' " + problem);
  }
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw core::SpecError("cannot open '" + path + "' for writing");
  }
  return out;
}

/// The repro campaign: the finding's spec, replaying exactly the
/// minimized program for one iteration. Budgets and side outputs that
/// could mask or dilute the replay are cleared.
core::CampaignSpec repro_spec(const core::CampaignSpec& spec,
                              const riscv::Program& program,
                              const std::string& digest) {
  core::CampaignSpec out = spec;
  out.name = spec.name + "-repro-" + digest;
  out.fuzzer.replay_program_hex = program.to_hex();
  out.budget = core::CampaignBudget{};
  out.budget.iterations = 1;
  out.batch_size = 1;
  out.jobs = 1;
  out.triage = core::TriageMode::kOff;
  // Environment-dependent paths must not leak into the bundle: the same
  // finding triaged into two different --out directories (or jobs
  // counts) writes byte-identical repro.toml files.
  out.triage_out = core::CampaignSpec{}.triage_out;
  out.vcd_out.clear();
  return out;
}

void write_repro_asm(std::ostream& os, const core::CampaignSpec& spec,
                     const MinimizeResult& minimized,
                     const core::VulnReport* report,
                     const std::string& digest) {
  os << "# specure repro " << digest << " — scenario '" << spec.name << "'\n"
     << "# signature: " << minimized.signature << "\n";
  if (report != nullptr) {
    os << "# sink: " << report->sink_signal << ", window cycles ["
       << report->window.start_cycle << ", " << report->window.end_cycle
       << "), opened by "
       << riscv::disassemble(report->window.inst, report->window.pc) << "\n";
    for (const core::RootCause& rc : report->root_causes) {
      os << "# root cause: " << rc.source_signal << " ("
         << util::join(rc.path, " -> ") << ")\n";
    }
  }
  os << "# minimized " << minimized.original_len << " -> "
     << minimized.minimized_len << " instructions; re-run: specure run "
     << "repro.toml (exit 2 re-triggers this signature)\n"
     << "# instructions marked '# leak' resisted NOP substitution; the "
     << "rest is offset-preserving padding\n\n";

  std::vector<bool> leak(minimized.program.code.size(), false);
  for (const std::size_t i : minimized.leak_instructions) leak[i] = true;
  for (std::size_t i = 0; i < minimized.program.code.size(); ++i) {
    const std::uint64_t pc = riscv::kCodeBase + i * 4;
    char head[32];
    std::snprintf(head, sizeof head, "%08llx: %08x  ",
                  static_cast<unsigned long long>(pc),
                  minimized.program.code[i]);
    const std::string text = riscv::disassemble(minimized.program.code[i], pc);
    os << "    " << head << text;
    if (leak[i]) {
      for (std::size_t pad = text.size(); pad < 28; ++pad) os << ' ';
      os << "  # leak";
    }
    os << "\n";
  }

  if (!minimized.program.data.empty()) {
    os << "\n# data image (" << minimized.program.data.size()
       << " bytes, loaded at " << util::hex0x(riscv::kDataBase) << "):\n";
    for (std::size_t i = 0; i < minimized.program.data.size(); i += 32) {
      os << "#   " << util::hex(i, 4) << ":";
      for (std::size_t b = i;
           b < std::min(minimized.program.data.size(), i + 32); ++b) {
        os << " " << util::hex(minimized.program.data[b], 2);
      }
      os << "\n";
    }
  }
}

}  // namespace

ReproBundle write_repro_bundle(const std::string& out_dir,
                               const core::CampaignSpec& spec,
                               const MinimizeResult& minimized,
                               Minimizer& minimizer) {
  ReproBundle bundle;
  bundle.signature = minimized.signature;
  bundle.digest = signature_digest(minimized.signature);
  bundle.dir = out_dir + "/" + sanitized(spec.name) + "_" + bundle.digest;
  ensure_dir(bundle.dir);

  // One probe of the minimized program supplies the report (window, root
  // causes) for the repro.S annotations and the trace for the waveform.
  const Minimizer::ProbeOutcome outcome =
      minimizer.probe_full(minimized.program);
  const core::VulnReport* report = nullptr;
  for (const core::VulnReport& r : outcome.reports) {
    if (r.signature == minimized.signature) {
      report = &r;
      break;
    }
  }

  {
    std::ofstream out = open_out(bundle.dir + "/repro.S");
    write_repro_asm(out, spec, minimized, report, bundle.digest);
  }
  repro_spec(spec, minimized.program, bundle.digest)
      .save(bundle.dir + "/repro.toml");
  if (report != nullptr) {
    snapshot::write_vcd_window_file(bundle.dir + "/repro.vcd",
                                    outcome.run.trace,
                                    report->window.start_cycle,
                                    report->window.end_cycle);
  }

  // Verification by re-execution: load the file we just wrote, decode its
  // replay program, and re-detect. Only a bundle whose repro.toml
  // actually re-triggers the signature is reported verified.
  const core::CampaignSpec reloaded =
      core::CampaignSpec::load(bundle.dir + "/repro.toml");
  const riscv::Program replay =
      riscv::Program::from_hex(reloaded.fuzzer.replay_program_hex);
  for (const core::VulnReport& r : minimizer.probe(replay)) {
    if (r.signature == minimized.signature) {
      bundle.verified = true;
      break;
    }
  }
  return bundle;
}

}  // namespace specure::triage
