#include "triage/triage.hpp"

#include <chrono>
#include <cstdio>
#include <ostream>
#include <set>

#include "core/report.hpp"
#include "triage/repro.hpp"
#include "triage/signature.hpp"
#include "util/fs.hpp"

namespace specure::triage {

namespace {

/// Fail before any minimization work: create the bundle root and probe
/// it for writability, mirroring the vcd_out contract.
void ensure_out_dir_writable(const std::string& dir) {
  const std::string problem = util::ensure_dir_writable(dir);
  if (!problem.empty()) {
    throw core::SpecError("triage_out directory '" + dir + "' " + problem);
  }
}

/// The coarse finding_key is the signature's prefix (everything before
/// the '#' separator); signatures predating the triage layer have no
/// separator and are their own bucket.
std::string coarse_of(const std::string& signature) {
  const std::size_t hash = signature.find('#');
  return hash == std::string::npos ? signature : signature.substr(0, hash);
}

}  // namespace

TriageReport run_triage(const core::CampaignSpec& spec,
                        const core::OfflineResult& offline,
                        const std::vector<TriageInput>& findings,
                        const TriageOptions& options,
                        const MinimizedObserver& observer) {
  const auto t0 = std::chrono::steady_clock::now();
  TriageReport report;
  if (findings.empty()) return report;
  if (options.mode == core::TriageMode::kFull) {
    ensure_out_dir_writable(options.out_dir);
  }

  Minimizer minimizer(spec.core, offline, spec.detector, options.jobs);
  std::set<std::string> seen;
  for (const TriageInput& input : findings) {
    if (input.signature.empty() || !seen.insert(input.signature).second) {
      continue;
    }
    MinimizeResult minimized =
        minimizer.minimize(input.program, input.signature);

    TriagedFinding finding;
    finding.signature = input.signature;
    finding.digest = signature_digest(input.signature);
    finding.coarse = coarse_of(input.signature);
    finding.original = input.program;
    finding.minimized = minimized.program;
    finding.leak_instructions = std::move(minimized.leak_instructions);
    finding.probes = minimized.probes;
    finding.reproduced = minimized.reproduced;
    report.probes_total += minimized.probes;

    if (options.mode == core::TriageMode::kFull && minimized.reproduced) {
      const ReproBundle bundle =
          write_repro_bundle(options.out_dir, spec, minimized, minimizer);
      finding.bundle_dir = bundle.dir;
      finding.verified = bundle.verified;
    }

    if (observer) {
      MinimizedEvent event;
      event.signature = finding.signature;
      event.digest = finding.digest;
      event.original_len = minimized.original_len;
      event.minimized_len = minimized.minimized_len;
      event.probes = minimized.probes;
      event.reproduced = minimized.reproduced;
      event.bundle_dir = finding.bundle_dir;
      event.verified = finding.verified;
      observer(event);
    }
    report.findings.push_back(std::move(finding));
  }
  report.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return report;
}

void write_triage_table(std::ostream& os, const TriageReport& report) {
  char line[512];
  std::snprintf(line, sizeof line, "%-18s %-34s %-10s %-8s %-9s %s\n",
                "digest", "coarse key", "insts", "probes", "verified",
                "bundle");
  os << line;
  for (const TriagedFinding& f : report.findings) {
    std::string insts = std::to_string(f.original.code.size()) + "->" +
                        std::to_string(f.minimized.code.size());
    if (!f.reproduced) insts = "(no repro)";
    std::snprintf(line, sizeof line, "%-18s %-34s %-10s %-8zu %-9s %s\n",
                  f.digest.c_str(), f.coarse.c_str(), insts.c_str(), f.probes,
                  f.bundle_dir.empty() ? "-" : (f.verified ? "yes" : "NO"),
                  f.bundle_dir.empty() ? "-" : f.bundle_dir.c_str());
    os << line;
  }
}

void write_triage_json(std::ostream& os, const TriageReport& report) {
  os << "{\n  \"probes\": " << report.probes_total
     << ", \"seconds\": " << report.seconds << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const TriagedFinding& f = report.findings[i];
    os << (i == 0 ? "" : ",") << "\n    {\"digest\": \""
       << core::json_escape(f.digest) << "\", \"signature\": \""
       << core::json_escape(f.signature) << "\", \"coarse\": \""
       << core::json_escape(f.coarse) << "\""
       << ", \"original_insts\": " << f.original.code.size()
       << ", \"minimized_insts\": " << f.minimized.code.size()
       << ", \"probes\": " << f.probes
       << ", \"reproduced\": " << (f.reproduced ? "true" : "false")
       << ", \"verified\": " << (f.verified ? "true" : "false")
       << ", \"program\": \"" << f.minimized.to_hex() << "\"";
    if (!f.bundle_dir.empty()) {
      os << ", \"bundle\": \"" << core::json_escape(f.bundle_dir) << "\"";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace specure::triage
