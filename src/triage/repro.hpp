// Repro bundle writer — the triage layer's end product.
//
// For one minimized finding, write_repro_bundle() creates
// `<out_dir>/<scenario>_<digest>/` holding:
//
//   repro.S     annotated disassembly of the minimized program (leak-
//               relevant instructions marked, data image appended) in the
//               exact rendering riscv::assemble() parses back;
//   repro.toml  a self-contained CampaignSpec: the campaign's spec with
//               `replay_program` set to the minimized program and a
//               one-iteration budget, so `specure run repro.toml`
//               re-triggers the finding (exit 2, same signature);
//   repro.vcd   the waveform of the leaking speculative window only
//               (snapshot::write_vcd_window_file).
//
// The bundle is verified by re-execution before it is reported: the
// written repro.toml is loaded back, its replay program decoded and
// re-simulated, and the bundle is only marked `verified` when the target
// signature is among the re-detected findings.
#pragma once

#include <string>

#include "core/campaign_spec.hpp"
#include "triage/minimizer.hpp"

namespace specure::triage {

struct ReproBundle {
  std::string dir;        ///< bundle directory (out_dir/<scenario>_<digest>)
  std::string signature;  ///< the finding's signature key
  std::string digest;     ///< signature_digest(signature)
  bool verified = false;  ///< repro.toml re-triggered the same signature
};

/// Write one bundle for a minimized finding. `spec` is the campaign the
/// finding came from; `minimizer` supplies the probe simulator for the
/// waveform export and the verification re-run. Throws core::SpecError
/// when the directory cannot be created or written.
ReproBundle write_repro_bundle(const std::string& out_dir,
                               const core::CampaignSpec& spec,
                               const MinimizeResult& minimized,
                               Minimizer& minimizer);

}  // namespace specure::triage
