#include "triage/signature.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace specure::triage {

namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::string LeakSignature::key() const {
  // The exact finding_key as a prefix, then the structural fields.
  std::string out = coarse;
  out += "#" + shape;
  out += "|t" + std::to_string(taint_path_len);
  out += "|src=" + util::join(taint_sources, ",");
  out += "|mask=" + util::join(diff_mask, ",");
  return out;
}

std::string LeakSignature::digest() const { return signature_digest(key()); }

std::string signature_digest(const std::string& key) {
  return util::hex(fnv1a(key), 16);
}

std::string normalize_structure(std::string name) {
  // Strip trailing _<digits> segments: tag_0_1 -> tag_0 -> tag.
  for (;;) {
    const std::size_t us = name.rfind('_');
    if (us == std::string::npos || us + 1 >= name.size()) return name;
    bool digits = true;
    for (std::size_t i = us + 1; i < name.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
        digits = false;
        break;
      }
    }
    if (!digits) return name;
    name.erase(us);
  }
}

namespace {

std::vector<std::string> normalized_set(std::vector<std::string> names) {
  for (std::string& n : names) n = normalize_structure(std::move(n));
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace

LeakSignature compute_signature(const core::VulnReport& report,
                                std::vector<std::string> unexplained_mask) {
  LeakSignature sig;
  sig.coarse = core::finding_key(report);
  sig.kind = std::string(core::vuln_kind_name(report.kind));
  sig.sink = report.sink_signal;
  sig.shape = report.window.has_indirect_opener() ? "indirect" : "conditional";
  if (!report.window.mispredicted) sig.shape += ":pred";
  for (const core::RootCause& rc : report.root_causes) {
    const std::size_t len = rc.path.empty() ? 1 : rc.path.size();
    if (sig.taint_path_len == 0 || len < sig.taint_path_len) {
      sig.taint_path_len = len;
    }
    sig.taint_sources.push_back(rc.source_signal);
  }
  sig.taint_sources = normalized_set(std::move(sig.taint_sources));
  sig.diff_mask = normalized_set(std::move(unexplained_mask));
  return sig;
}

}  // namespace specure::triage
