// Triage driver — the post-campaign stage that turns raw findings into
// actionable evidence: minimize each unique-signature finding on the
// worker pool (triage/minimizer.hpp), then optionally package a repro
// bundle per signature (triage/repro.hpp).
//
// Triage never touches campaign state: it runs after the campaign loop
// finished, on the findings the merger confirmed, so enabling it cannot
// perturb a CampaignResult. Its own output is deterministic too — the
// minimizer is bit-identical across jobs counts and findings are
// processed in confirmation order.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/campaign_spec.hpp"
#include "core/offline.hpp"
#include "triage/minimizer.hpp"

namespace specure::triage {

/// One finding entering triage: its signature key and the test input
/// that triggered it (from a CampaignResult or a parsed JSON report).
struct TriageInput {
  std::string signature;
  riscv::Program program;
};

/// Fired (on the calling thread, in finding order) after each finding
/// finished minimizing — the Session::on_finding_minimized payload.
struct MinimizedEvent {
  std::string signature;
  std::string digest;
  std::size_t original_len = 0;
  std::size_t minimized_len = 0;
  std::size_t probes = 0;
  bool reproduced = false;   ///< signature reproduced on the original
  std::string bundle_dir;    ///< empty unless a bundle was written
  bool verified = false;     ///< bundle's repro.toml re-triggered it
};

struct TriagedFinding {
  std::string signature;
  std::string digest;
  std::string coarse;        ///< finding_key bucket (signature prefix)
  riscv::Program original;
  riscv::Program minimized;
  std::vector<std::size_t> leak_instructions;
  std::size_t probes = 0;
  bool reproduced = false;
  std::string bundle_dir;
  bool verified = false;
};

struct TriageReport {
  std::vector<TriagedFinding> findings;
  std::size_t probes_total = 0;
  double seconds = 0;
};

struct TriageOptions {
  core::TriageMode mode = core::TriageMode::kOn;
  std::string out_dir;    ///< bundle root, used when mode == kFull
  std::size_t jobs = 0;   ///< probe workers; 0 = all hardware threads
};

using MinimizedObserver = std::function<void(const MinimizedEvent&)>;

/// Triage a set of findings under `spec`'s core/detector configuration.
/// Inputs are deduplicated by signature (first occurrence wins); with
/// mode == kFull, `out_dir` is created and probed for writability up
/// front (core::SpecError on failure). `observer` may be null.
TriageReport run_triage(const core::CampaignSpec& spec,
                        const core::OfflineResult& offline,
                        const std::vector<TriageInput>& findings,
                        const TriageOptions& options,
                        const MinimizedObserver& observer = nullptr);

/// Fixed-width per-finding summary (digest, lengths, probes, verified).
void write_triage_table(std::ostream& os, const TriageReport& report);

/// JSON rendering of the triage report for CI pipelines.
void write_triage_json(std::ostream& os, const TriageReport& report);

}  // namespace specure::triage
