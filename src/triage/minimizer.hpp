// Test-case minimizer — delta debugging against the leakage signature.
//
// A raw finding's program is a mutated fuzz input of up to hundreds of
// instructions; almost all of them are noise. The minimizer reduces it to
// the smallest program that still reproduces the *same structural leakage
// signature* (triage/signature.hpp), in four phases:
//
//   1. ddmin over instruction chunks: remove aligned chunks, halving the
//      chunk size as removals stop reproducing;
//   2. per-instruction NOP substitution (keeps branch offsets intact
//      while neutralizing the instruction);
//   3. operand canonicalization: re-encode surviving instructions with
//      zeroed immediates via riscv/encode + decode;
//   4. a second ddmin pass that deletes the NOP runs phase 2 created
//      where control flow tolerates it.
//
// Every candidate is re-simulated on a per-worker sim::Simulator and a
// reduction is kept only if the target signature is among the re-detected
// findings. Candidates within one phase round are probed concurrently on
// the worker pool, but acceptance is deterministic: the lowest candidate
// index that reproduces wins the round, so the minimized program is
// bit-identical at a fixed seed for any jobs count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/offline.hpp"
#include "core/vuln_detect.hpp"
#include "riscv/program.hpp"
#include "sim/core.hpp"
#include "util/thread_pool.hpp"

namespace specure::triage {

struct MinimizeResult {
  riscv::Program program;        ///< the minimized test input
  std::string signature;         ///< the reproduced signature key
  std::size_t original_len = 0;  ///< instructions before minimization
  std::size_t minimized_len = 0; ///< instructions after minimization
  std::size_t probes = 0;        ///< candidate simulations spent
  /// Indices (into program.code) of the leak-relevant instructions: the
  /// survivors that resisted NOP substitution. Everything else in the
  /// minimized program is offset-preserving padding.
  std::vector<std::size_t> leak_instructions;
  /// False when the target signature did not even reproduce on the
  /// original program (stale report, config drift); program is then the
  /// unmodified input.
  bool reproduced = false;
};

class Minimizer {
 public:
  /// Builds `jobs` probe workers (one simulator + detector each; 0 = all
  /// hardware threads) over the campaign's core config and offline
  /// artifacts — signal schemas agree across workers by construction.
  Minimizer(const sim::CoreConfig& core, const core::OfflineResult& offline,
            const core::DetectorOptions& detector, std::size_t jobs);
  ~Minimizer();

  Minimizer(const Minimizer&) = delete;
  Minimizer& operator=(const Minimizer&) = delete;

  /// Minimize `program` while preserving `signature`.
  MinimizeResult minimize(const riscv::Program& program,
                          const std::string& signature);

  /// Simulate + detect on one probe worker: the signatures (and full
  /// reports) the program triggers. Also the repro verifier's oracle.
  std::vector<core::VulnReport> probe(const riscv::Program& program) const;

  /// probe() plus the run itself, for consumers that also need the trace
  /// (the repro writer's waveform export) — one simulation, not two.
  struct ProbeOutcome {
    sim::RunResult run;
    std::vector<core::VulnReport> reports;
  };
  ProbeOutcome probe_full(const riscv::Program& program) const;

  std::size_t jobs() const { return workers_.size(); }

 private:
  struct ProbeWorker;

  /// Probe every candidate concurrently; out[i] = candidate i reproduces
  /// the target signature. Returns the lowest reproducing index or npos.
  std::size_t best_candidate(const std::vector<riscv::Program>& candidates,
                             const std::string& signature,
                             std::size_t* probes);

  std::vector<std::unique_ptr<ProbeWorker>> workers_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace specure::triage
