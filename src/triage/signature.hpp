// Structural leakage signatures — the triage layer's dedup axis.
//
// The coarse finding_key (kind + sink) collapses findings that leak into
// the same architectural register through entirely different mechanisms:
// two windows with disjoint taint paths dedup to one report. A
// LeakSignature captures the *shape* of a leak instead:
//
//   - kind and sink signal (the coarse key, kept as a prefix),
//   - the misspeculation shape (opener class, misprediction),
//   - the taint path through the IFT graph (witness path length and the
//     set of root-cause source *structures*),
//   - the window's diff mask — the *unexplained* architectural deltas
//     from Trace::diff across the window, with cycle offsets normalized
//     out (only which signals leaked, never when or what value).
//
// Everything value- and position-dependent (leaked data, absolute
// cycles, window length, the program's address, per-entry structure
// indices like the cache line in core.dcache.tag_0_1) is deliberately
// excluded or normalized away: the minimizer keeps a reduction only if
// the signature reproduces, so the signature must be invariant under
// deleting leak-irrelevant instructions — which shifts addresses, cache
// lines and speculation-window extents without changing the mechanism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/vuln_detect.hpp"

namespace specure::triage {

struct LeakSignature {
  std::string coarse;                      ///< finding_key(report) prefix
  std::string kind;                        ///< vuln_kind_name
  std::string sink;                        ///< leaked-to signal
  std::string shape;                       ///< "conditional"/"indirect" [+":pred"]
  std::size_t taint_path_len = 0;          ///< shortest witness path, 0 = none
  /// Sorted root-cause source structures (entry indices normalized:
  /// core.dcache.tag_0_1 -> core.dcache.tag).
  std::vector<std::string> taint_sources;
  /// Sorted unexplained architectural deltas across the window, indices
  /// normalized the same way.
  std::vector<std::string> diff_mask;

  /// Canonical string rendering. Starts with finding_key(report) so
  /// substring matching against the coarse key keeps working in stop
  /// conditions and bench helpers.
  std::string key() const;

  /// Short stable digest of key() (FNV-1a, 16 hex chars) used in repro
  /// bundle directory names.
  std::string digest() const;
};

/// Digest of an already-rendered signature key (for callers that only
/// carry the string, e.g. triage of a parsed JSON report).
std::string signature_digest(const std::string& key);

/// Strip per-entry structure indices from a signal name:
/// "core.dcache.tag_0_1" -> "core.dcache.tag". Which *structure* a leak
/// flows through identifies the mechanism; which entry it lands in is an
/// addressing accident.
std::string normalize_structure(std::string name);

/// Build the signature for one report. `unexplained_mask` is the window's
/// full set of unexplained architectural delta signal names (the report's
/// own sink plus its siblings), as collected by the detector.
LeakSignature compute_signature(const core::VulnReport& report,
                                std::vector<std::string> unexplained_mask);

}  // namespace specure::triage
